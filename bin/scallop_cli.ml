(* Command-line front end for the Scallop reproduction: list and run the
   paper's experiments, or print the capacity model for a given meeting
   shape. *)

open Cmdliner

let quick_arg =
  let doc = "Run a reduced-scale version of the experiment." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  let run () =
    let table =
      Scallop_util.Table.create ~title:"Experiments (paper artefacts)"
        ~columns:[ "id"; "title"; "paper claim" ]
    in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Scallop_util.Table.add_row table [ e.id; e.title; e.paper_claim ])
      Experiments.Registry.all;
    Scallop_util.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible table and figure.")
    Term.(const run $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids (see $(b,list)); empty means all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick ids =
    match ids with
    | [] ->
        Experiments.Registry.run_all ~quick ();
        Ok ()
    | ids ->
        List.fold_left
          (fun acc id ->
            match Experiments.Registry.find id with
            | Some e ->
                e.run ~quick ();
                acc
            | None -> Error (`Msg (Printf.sprintf "unknown experiment %S (try 'list')" id)))
          (Ok ()) ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments (all by default).")
    Term.(term_result (const run $ quick_arg $ ids))

let capacity_cmd =
  let participants =
    Arg.(value & opt int 10 & info [ "n"; "participants" ] ~doc:"Participants per meeting.")
  in
  let senders =
    Arg.(value & opt (some int) None & info [ "s"; "senders" ] ~doc:"Senders (default: all).")
  in
  let run participants senders =
    let senders = Option.value senders ~default:participants in
    let table =
      Scallop_util.Table.create
        ~title:
          (Printf.sprintf "Meetings supported (%d participants, %d senders)" participants
             senders)
        ~columns:[ "design"; "meetings"; "bottleneck"; "gain vs 32-core server" ]
    in
    let designs =
      if participants = 2 then [ ("two-party", Scallop.Capacity.Two_party) ]
      else
        [
          ("NRA", Scallop.Capacity.Nra);
          ("RA-R", Scallop.Capacity.Ra_r);
          ("RA-SR", Scallop.Capacity.Ra_sr);
        ]
    in
    List.iter
      (fun (name, design) ->
        let what, meetings =
          Scallop.Capacity.bottleneck design ~participants ~senders ()
        in
        let gain = Scallop.Capacity.gain_over_software design ~participants ~senders () in
        Scallop_util.Table.add_row table
          [ name; string_of_int meetings; what; Printf.sprintf "%.1fx" gain ])
      designs;
    Scallop_util.Table.print table
  in
  Cmd.v
    (Cmd.info "capacity" ~doc:"Print the capacity model for a meeting shape.")
    Term.(const run $ participants $ senders)

let simulate_cmd =
  let participants =
    Arg.(value & opt int 3 & info [ "n"; "participants" ] ~doc:"Participants.")
  in
  let senders =
    Arg.(value & opt (some int) None & info [ "s"; "senders" ] ~doc:"Senders (default: all).")
  in
  let seconds =
    Arg.(value & opt float 10.0 & info [ "d"; "duration" ] ~doc:"Simulated seconds.")
  in
  let downlink_mbps =
    Arg.(value & opt (some float) None
         & info [ "downlink" ] ~doc:"Cap the last participant's downlink (Mb/s).")
  in
  let ctrl_rtt_ms =
    Arg.(value & opt int 0
         & info [ "ctrl-rtt-ms" ] ~doc:"Controller-to-agent control channel RTT (ms).")
  in
  let ctrl_loss =
    Arg.(value & opt float 0.0
         & info [ "ctrl-loss" ] ~doc:"Control channel iid loss probability per direction.")
  in
  let ctrl_batch =
    Arg.(value & flag
         & info [ "ctrl-batch" ]
             ~doc:"Batch the controller's session mutations: wire ops are buffered \
                   per switch and flushed as one $(b,Rpc.Batch) per touched switch at \
                   each operation boundary (one round trip instead of one per op).")
  in
  let ctrl_window =
    Arg.(value & opt int Scallop.Rpc_transport.default.Scallop.Rpc_transport.window
         & info [ "ctrl-window" ] ~docv:"N"
             ~doc:"In-flight pipelining window of the control-plane transport's \
                   asynchronous submit lane (>= 1; heartbeat probes are exempt).")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"After the run, verify cross-layer state invariants and fail on any violation.")
  in
  let paranoid =
    Arg.(value & flag
         & info [ "paranoid" ]
             ~doc:"Run the data plane in differential mode: every egress datagram is \
                   materialized by both the zero-copy fast path and the record slow \
                   path and byte-compared; any divergence aborts the run.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Inject a seed-derived fault schedule against the switch: one \
                   power-cycle, one control partition and one degraded-control burst, \
                   spread disjointly over the run. Arms the controller's heartbeat \
                   failure detector; the run is extended past the last fault so every \
                   repair (epoch-triggered resync or deferred-queue drain) completes. \
                   Deterministic: the same seeds reproduce the identical run.")
  in
  let chaos_seed =
    Arg.(value & opt int 1
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Seed for the --chaos fault schedule (placement and durations).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON of the run to $(docv) (open in \
                   chrome://tracing or Perfetto). Virtual-time timestamps make the \
                   file byte-identical across runs with the same seed.")
  in
  let trace_level =
    let levels =
      [
        ("off", Scallop_obs.Trace.Off);
        ("rpc", Scallop_obs.Trace.Rpc);
        ("packet", Scallop_obs.Trace.Packet);
        ("verbose", Scallop_obs.Trace.Verbose);
      ]
    in
    Arg.(value & opt (enum levels) Scallop_obs.Trace.Packet
         & info [ "trace-level" ] ~docv:"LEVEL"
             ~doc:"Trace detail when --trace-out is given: $(b,rpc) (control-plane \
                   spans only), $(b,packet) (adds per-packet causal events), \
                   $(b,verbose) (adds suppressed replicas). Default: packet.")
  in
  let mc =
    Arg.(value & flag
         & info [ "mc" ]
             ~doc:"Attach the temporal protocol checker to the run: every \
                   control-plane trace event is evaluated online against the \
                   $(b,Scallop_mc) rule catalogue (exactly-once, epoch \
                   monotonicity, batch order, quiet-heal, ...) and any \
                   violation fails the command.")
  in
  let run participants senders seconds downlink_mbps ctrl_rtt_ms ctrl_loss ctrl_batch
      ctrl_window check paranoid chaos chaos_seed trace_out trace_level mc =
   try
    let senders = Option.value senders ~default:participants in
    if trace_out <> None then Scallop_obs.Trace.set_level trace_level;
    let checker =
      if mc then begin
        if not (Scallop_obs.Trace.enabled Scallop_obs.Trace.Rpc) then
          Scallop_obs.Trace.set_level Scallop_obs.Trace.Rpc;
        Scallop_obs.Trace.reset ();
        let c = Scallop_mc.Temporal.create (Scallop_mc.Rules.all ()) in
        Scallop_mc.Temporal.attach c;
        Some c
      end
      else None
    in
    let control =
      let base =
        Scallop.Rpc_transport.degraded ~loss:ctrl_loss
          ~rtt_ns:(Netsim.Engine.ms ctrl_rtt_ms) ()
      in
      { base with Scallop.Rpc_transport.window = ctrl_window }
    in
    let stack =
      Experiments.Common.make_scallop ~seed:99 ~control ~batch:ctrl_batch ()
    in
    if paranoid then
      Scallop.Dataplane.set_mode stack.Experiments.Common.dp Scallop.Dataplane.Paranoid;
    let _mid, members =
      Experiments.Common.scallop_meeting stack ~participants ~senders ()
    in
    Option.iter
      (fun mbps ->
        Netsim.Link.set_rate
          (Netsim.Network.downlink stack.Experiments.Common.network
             ~ip:(Experiments.Common.client_ip (participants - 1)))
          (mbps *. 1e6))
      downlink_mbps;
    let run_until = ref (Netsim.Engine.sec seconds) in
    if chaos then begin
      Scallop.Controller.start_health stack.Experiments.Common.controller;
      let schedule =
        Netsim.Chaos.generate
          (Scallop_util.Rng.create chaos_seed)
          ~nodes:1
          ~horizon_ns:(Netsim.Engine.sec seconds)
          ~crashes:1 ~partitions:1 ~loss_bursts:1 ~loss:0.3 ~disjoint:true ()
        (* meeting setup over a lossy control channel consumes virtual
           time; anchor the schedule at "now" so no fault is in the past *)
        |> Netsim.Chaos.shift (Netsim.Engine.now stack.Experiments.Common.engine)
      in
      Printf.printf "chaos schedule:\n%s\n" (Netsim.Chaos.describe schedule);
      let chan =
        Scallop.Controller.control_channel stack.Experiments.Common.controller 0
      in
      Netsim.Chaos.install stack.Experiments.Common.engine schedule
        ~crash:(fun _ -> Scallop.Switch_agent.crash stack.Experiments.Common.agent)
        ~restart:(fun _ -> Scallop.Switch_agent.restart stack.Experiments.Common.agent)
        ~set_loss:(fun _ loss ->
          Netsim.Link.set_loss (Scallop.Rpc_transport.Client.request_link chan) loss;
          Netsim.Link.set_loss (Scallop.Rpc_transport.Client.reply_link chan) loss);
      (* leave room after the last heal for detection + repair *)
      run_until :=
        max !run_until (Netsim.Chaos.horizon_end schedule + Netsim.Engine.sec 5.0)
    end;
    Netsim.Engine.run stack.Experiments.Common.engine ~until:!run_until;
    if chaos then begin
      Scallop.Controller.stop_health stack.Experiments.Common.controller;
      List.iter
        (fun (e : Scallop.Controller.recovery_event) ->
          Printf.printf
            "recovery: %s of sw%d — detected %.1f ms, recovered %.1f ms (%d RPCs)\n"
            (match e.Scallop.Controller.re_kind with
            | `Resync -> "resync"
            | `Drain -> "drain")
            e.Scallop.Controller.re_agent
            (float_of_int e.Scallop.Controller.re_detected_ns /. 1e6)
            (float_of_int e.Scallop.Controller.re_recovered_ns /. 1e6)
            e.Scallop.Controller.re_ops)
        (List.rev
           (Scallop.Controller.recovery_log stack.Experiments.Common.controller));
      Printf.printf "post-chaos agent state: %s\n"
        (Scallop.Controller.health_name
           (Scallop.Controller.agent_health stack.Experiments.Common.controller 0))
    end;
    let table =
      Scallop_util.Table.create ~title:"Per-stream receive quality"
        ~columns:[ "receiver"; "sender"; "decoded fps"; "jitter (ms)"; "freezes" ]
    in
    let pids = List.map fst members in
    List.iter
      (fun rx_pid ->
        List.iter
          (fun tx_pid ->
            if rx_pid <> tx_pid then
              match
                Scallop.Controller.recv_connection stack.Experiments.Common.controller
                  rx_pid ~from:tx_pid
              with
              | None -> ()
              | Some conn -> (
                  match Webrtc.Client.receiver conn with
                  | None -> ()
                  | Some rx ->
                      Scallop_util.Table.add_row table
                        [
                          string_of_int rx_pid;
                          string_of_int tx_pid;
                          Scallop_util.Table.cell_f ~decimals:1
                            (float_of_int (Codec.Video_receiver.frames_decoded rx)
                            /. seconds);
                          Scallop_util.Table.cell_f (Codec.Video_receiver.jitter_ms rx);
                          Scallop_util.Table.cell_i (Codec.Video_receiver.freezes rx);
                        ]))
          pids)
      pids;
    Scallop_util.Table.print table;
    let c = Scallop.Dataplane.ingress_counters stack.Experiments.Common.dp in
    let dp_pkts = c.rtp_audio_pkts + c.rtp_video_pkts + c.rtcp_sr_sdes_pkts in
    let astats = Scallop.Switch_agent.stats stack.Experiments.Common.agent in
    Printf.printf "data plane: %d pkts; agent CPU copies: %d; migrations: %d
" dp_pkts
      (Scallop.Dataplane.cpu_pkts stack.Experiments.Common.dp)
      astats.migrations;
    let cstats = Scallop.Controller.stats stack.Experiments.Common.controller in
    Printf.printf
      "control plane: %d RPCs on the wire (%d retries, %d failures), %d received by agent
"
      cstats.control_requests cstats.control_retries cstats.control_failures
      astats.rpc_calls;
    let fp = Scallop.Dataplane.fastpath_stats stack.Experiments.Common.dp in
    Printf.printf
      "fast path: %d fast / %d slow ingress, %d replica copies; PRE cache: %d hits, \
       %d misses, %d invalidations, %d resident\n"
      fp.Scallop.Dataplane.fp_fast_pkts fp.Scallop.Dataplane.fp_slow_pkts
      fp.Scallop.Dataplane.fp_replica_copies fp.Scallop.Dataplane.fp_cache_hits
      fp.Scallop.Dataplane.fp_cache_misses fp.Scallop.Dataplane.fp_cache_invalidations
      fp.Scallop.Dataplane.fp_cache_entries;
    Printf.printf
      "replica pool: %d recycled / %d fresh checkouts, high water %d, %d still live\n"
      fp.Scallop.Dataplane.fp_pool_recycled fp.Scallop.Dataplane.fp_pool_fresh
      fp.Scallop.Dataplane.fp_pool_high_water fp.Scallop.Dataplane.fp_pool_live;
    if paranoid then
      Printf.printf "paranoid: %d egress datagrams byte-compared, %d mismatches\n"
        fp.Scallop.Dataplane.fp_paranoid_checks
        fp.Scallop.Dataplane.fp_paranoid_mismatches;
    (* the trace note goes to stderr so stdout stays byte-identical to an
       untraced run — CI diffs the two to prove tracing is inert *)
    Option.iter
      (fun path ->
        Scallop_obs.Trace.write_chrome_json path;
        Printf.eprintf "trace: %d event(s) written to %s (%d dropped)\n"
          (List.length (Scallop_obs.Trace.events ()))
          path
          (Scallop_obs.Trace.dropped ()))
      trace_out;
    let mc_result =
      match checker with
      | None -> Ok ()
      | Some c ->
          Scallop_mc.Temporal.detach ();
          let now = Netsim.Engine.now stack.Experiments.Common.engine in
          let violations = Scallop_mc.Temporal.finish ~now c in
          if violations = [] then begin
            Printf.printf "mc: %d trace event(s) checked, no protocol violations\n"
              (Scallop_mc.Temporal.events_seen c);
            Ok ()
          end
          else begin
            List.iter
              (fun v -> Format.printf "mc: %a@." Scallop_mc.Temporal.pp_violation v)
              violations;
            Error
              (`Msg
                (Printf.sprintf "mc: %d protocol violation(s)"
                   (List.length violations)))
          end
    in
    let check_result =
      if check then begin
        let findings = Scallop_analysis.verify stack.Experiments.Common.controller in
        let errors = Scallop_analysis.errors findings in
        if findings = [] then begin
          Printf.printf "state check: clean\n";
          Ok ()
        end
        else begin
          print_endline (Scallop_analysis.report findings);
          if errors = [] then begin
            Printf.printf "state check: %d warning(s), no errors\n" (List.length findings);
            Ok ()
          end
          else
            Error
              (`Msg
                (Printf.sprintf "state check: %d invariant violation(s)"
                   (List.length errors)))
        end
      end
      else Ok ()
    in
    (match mc_result with Error _ as e -> e | Ok () -> check_result)
   with Scallop.Rpc_transport.Timed_out { op; attempts; _ } ->
    Error
      (`Msg
        (Printf.sprintf
           "control plane dead: %s gave up after %d attempts (lower --ctrl-loss?)" op
           attempts))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one meeting through Scallop and print a QoE report.")
    Term.(term_result
            (const run $ participants $ senders $ seconds $ downlink_mbps $ ctrl_rtt_ms
             $ ctrl_loss $ ctrl_batch $ ctrl_window $ check $ paranoid $ chaos
             $ chaos_seed $ trace_out $ trace_level $ mc))

let check_cmd =
  let ctrl_rtt_ms =
    Arg.(value & opt int 2
         & info [ "ctrl-rtt-ms" ] ~doc:"Controller-to-agent control channel RTT (ms).")
  in
  let ctrl_loss =
    Arg.(value & opt float 0.0
         & info [ "ctrl-loss" ] ~doc:"Control channel iid loss probability per direction.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.") in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one machine-readable JSON document (per-point findings, \
                   error count, clean flag) instead of the human report. The \
                   finding encoding is shared with $(b,explore).")
  in
  let failover =
    Arg.(value & flag
         & info [ "failover" ]
             ~doc:
               "Run the controller tier as the fault-tolerant primary/standby \
                pair, kill the acting primary mid-churn, and continue against \
                the promoted standby (its state rebuilt from the intent \
                journal). Every verification point then also checks the \
                cluster invariants: single acting primary and journal-replay \
                fidelity.")
  in
  let journal_out =
    Arg.(value & opt (some string) None
         & info [ "journal-out" ] ~docv:"FILE"
             ~doc:
               "With $(b,--failover): write the intent journal's dump (live \
                entries plus snapshot marker) to $(docv) at end of run — the \
                CI chaos gate's journal artifact.")
  in
  let run ctrl_rtt_ms ctrl_loss seed json failover journal_out =
    try
      let module Addr = Scallop_util.Addr in
      let module Rng = Scallop_util.Rng in
      let engine = Netsim.Engine.create () in
      let rng = Rng.create seed in
      let network = Netsim.Network.create engine (Rng.split rng) in
      let fast =
        { Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
      in
      let switch ip_str obs_label =
        let ip = Addr.ip_of_string ip_str in
        Netsim.Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
        let dp = Scallop.Dataplane.create engine network ~ip ~obs_label () in
        let agent = Scallop.Switch_agent.create engine dp () in
        (agent, dp)
      in
      let s0 = switch "10.0.0.1" "sw0" and s1 = switch "10.0.0.2" "sw1" in
      let control =
        Scallop.Rpc_transport.degraded ~loss:ctrl_loss
          ~rtt_ns:(Netsim.Engine.ms ctrl_rtt_ms) ()
      in
      let cluster =
        if failover then
          Some
            (Scallop.Cluster.create engine network (Rng.split rng)
               ~agents:[ s0; s1 ] ~control ())
        else None
      in
      let controller =
        match cluster with
        | Some cl -> Scallop.Cluster.primary cl
        | None ->
            Scallop.Controller.create engine network (Rng.split rng)
              ~agents:[ s0; s1 ] ~control ()
      in
      let ctrl () =
        match cluster with
        | Some cl -> Scallop.Cluster.endpoint cl
        | None -> controller
      in
      let client idx =
        let ip = Addr.ip_of_string (Printf.sprintf "10.0.3.%d" (idx + 1)) in
        Netsim.Network.add_host network ~ip ();
        Webrtc.Client.create engine network (Rng.split rng)
          (Webrtc.Client.default_config ~ip)
      in
      let total_errors = ref 0 in
      let points = ref [] in
      let slo = Scallop_obs.Slo.create () in
      let verify_point label =
        (* QoE SLOs ride along with the state checks: any burn over the
           live collectors surfaces here too *)
        ignore (Scallop_obs.Slo.evaluate slo ~now_ns:(Netsim.Engine.now engine));
        let findings =
          Scallop_analysis.verify (ctrl ())
          @
          match cluster with
          | Some cl -> Scallop_analysis.check_cluster cl
          | None -> []
        in
        let errors = Scallop_analysis.errors findings in
        if json then points := (label, findings) :: !points
        else begin
          Printf.printf "%-34s %d finding(s), %d error(s)\n" label
            (List.length findings) (List.length errors);
          if findings <> [] then print_endline (Scallop_analysis.report findings)
        end;
        total_errors := !total_errors + List.length errors
      in
      let run_for seconds =
        Netsim.Engine.run engine
          ~until:(Netsim.Engine.now engine + Netsim.Engine.sec seconds)
      in
      (* a cascaded meeting: senders on both switches, plus mid-call churn
         and a screen share — every controller trigger the paper names *)
      let mid = Scallop.Controller.create_meeting (ctrl ()) in
      let c = Array.init 6 client in
      let p0 = Scallop.Controller.join ~home:0 (ctrl ()) mid c.(0) ~send_media:true in
      let _p1 = Scallop.Controller.join ~home:0 (ctrl ()) mid c.(1) ~send_media:true in
      let p2 = Scallop.Controller.join ~home:1 (ctrl ()) mid c.(2) ~send_media:true in
      let p3 = Scallop.Controller.join ~home:1 (ctrl ()) mid c.(3) ~send_media:false in
      run_for 2.0;
      verify_point "cascaded meeting (4 members)";
      Scallop.Controller.start_screen_share (ctrl ()) p0;
      run_for 1.0;
      verify_point "screen share started";
      (* kill mid-churn: intent so far is only in the journal; the rest of
         the workload runs against the promoted standby, whose state was
         rebuilt by replay (allocators included — the pids above stay
         valid) and whose fenced resync re-owns both agents *)
      (match cluster with
      | Some cl ->
          Scallop.Cluster.kill_primary cl;
          run_for 1.0;
          verify_point "primary killed, standby promoted"
      | None -> ());
      Scallop.Controller.stop_screen_share (ctrl ()) p0;
      Scallop.Controller.leave (ctrl ()) p2;
      Scallop.Controller.leave (ctrl ()) p3;
      run_for 1.0;
      verify_point "remote members left";
      let mid2 = Scallop.Controller.create_meeting (ctrl ()) in
      let p4 = Scallop.Controller.join (ctrl ()) mid2 c.(4) ~send_media:true in
      let _p5 = Scallop.Controller.join (ctrl ()) mid2 c.(5) ~send_media:true in
      run_for 2.0;
      verify_point "second meeting up";
      Scallop.Controller.leave (ctrl ()) p4;
      Scallop.Controller.leave (ctrl ()) p0;
      run_for 1.0;
      verify_point "after churn";
      (match cluster with
      | Some cl ->
          Option.iter
            (fun path ->
              let oc = open_out path in
              output_string oc (Scallop.Journal.dump (Scallop.Cluster.journal cl));
              close_out oc)
            journal_out;
          Scallop.Cluster.stop cl
      | None -> ());
      let slo_alerts = Scallop_obs.Slo.alerts slo in
      if json then begin
        let module J = Scallop_mc.Mc_json in
        print_endline
          (J.obj
             [
               ( "points",
                 J.arr
                   (List.rev_map
                      (fun (label, findings) ->
                        J.obj
                          [
                            ("label", J.str label);
                            ("findings", J.arr (List.map J.finding findings));
                          ])
                      !points) );
               ( "slo_alerts",
                 J.arr
                   (List.map
                      (fun a -> J.str (Scallop_obs.Slo.alert_str a))
                      slo_alerts) );
               ("errors", J.int !total_errors);
               ("clean", J.bool (!total_errors = 0));
             ])
      end
      else begin
        List.iter
          (fun a ->
            Printf.printf "slo alert: %s\n" (Scallop_obs.Slo.alert_str a))
          slo_alerts;
        if slo_alerts = [] then Printf.printf "slo: no QoE burn\n";
        (* the registry-backed view of both switches (fast path, PRE cache,
           agent and controller RPC counters), one sorted dump instead of a
           bespoke printf per series *)
        print_string (Scallop_obs.Metrics.dump ())
      end;
      if !total_errors = 0 then begin
        if not json then Printf.printf "all state checks clean\n";
        Ok ()
      end
      else
        Error
          (`Msg (Printf.sprintf "state check: %d invariant violation(s)" !total_errors))
    with Scallop.Rpc_transport.Timed_out { op; attempts; _ } ->
      Error
        (`Msg
          (Printf.sprintf
             "control plane dead: %s gave up after %d attempts (lower --ctrl-loss?)" op
             attempts))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Drive a cascaded meeting through churn and statically verify the \
          controller/agent/data-plane state invariants at every quiescent point.")
    Term.(term_result
            (const run $ ctrl_rtt_ms $ ctrl_loss $ seed $ json $ failover
             $ journal_out))

let metrics_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the registry as JSON instead of Prometheus text.")
  in
  let participants =
    Arg.(value & opt int 3 & info [ "n"; "participants" ] ~doc:"Participants.")
  in
  let seconds =
    Arg.(value & opt float 2.0 & info [ "d"; "duration" ] ~doc:"Simulated seconds.")
  in
  let run json participants seconds =
    let stack = Experiments.Common.make_scallop ~seed:99 () in
    let _mid, _members =
      Experiments.Common.scallop_meeting stack ~participants ~senders:participants ()
    in
    (* the failure detector registers the scallop_ctrl_health_* /
       recovery-log metrics; run it so the dump covers them *)
    Scallop.Controller.start_health stack.Experiments.Common.controller;
    Netsim.Engine.run stack.Experiments.Common.engine
      ~until:(Netsim.Engine.sec seconds);
    Scallop.Controller.stop_health stack.Experiments.Common.controller;
    print_string
      (if json then Scallop_obs.Metrics.dump_json () else Scallop_obs.Metrics.dump ())
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a short canonical meeting and dump every registry-backed metric \
          (data-plane fast path, PRE cache, control-plane RPC) in Prometheus text \
          or JSON form.")
    Term.(const run $ json $ participants $ seconds)

let qoe_cmd =
  let module Qc = Experiments.Qoe_chaos in
  let module Slo = Scallop_obs.Slo in
  let module Qoe = Scallop_obs.Qoe in
  let module Attrib = Scallop_obs.Attrib in
  let quick = quick_arg in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Scenario seed.") in
  let loss =
    Arg.(value & opt float 0.3
         & info [ "loss" ] ~doc:"Loss probability injected on the victim's downlink.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full report (alerts, findings, per-stream summaries) \
                   as one JSON document instead of the human tables.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Also write the JSON report to $(docv) (the CI artifact).")
  in
  let expect_burn =
    Arg.(value & flag
         & info [ "expect-burn" ]
             ~doc:"Fail unless at least one SLO alert fired and the attribution \
                   named the injected link — the CI qoe gate's assertion.")
  in
  let report_json (r : Qc.result) =
    let fs = Printf.sprintf "%.6g" in
    let alert (a : Slo.alert) =
      Printf.sprintf
        "{\"slo\": \"%s\", \"stream\": \"%s\", \"at_ns\": %d, \"burn_long\": \
         %s, \"burn_short\": %s, \"window_ns\": [%d, %d]}"
        a.Slo.a_slo
        (Qoe.key_str a.Slo.a_key)
        a.Slo.a_at_ns (fs a.Slo.a_burn_long) (fs a.Slo.a_burn_short)
        a.Slo.a_from_ns a.Slo.a_until_ns
    in
    let summary (s : Qoe.summary) =
      Printf.sprintf
        "{\"stream\": \"%s\", \"packets\": %d, \"gap_packets\": %d, \
         \"recovered\": %d, \"frames\": %d, \"freezes\": %d, \"frozen_ms\": \
         %s, \"loss_ratio\": %s}"
        (Qoe.key_str s.Qoe.s_key)
        s.Qoe.s_packets s.Qoe.s_gap_packets s.Qoe.s_recovered s.Qoe.s_frames
        s.Qoe.s_freeze_count (fs s.Qoe.s_frozen_ms) (fs s.Qoe.s_loss_ratio)
    in
    Printf.sprintf
      "{\"victim\": %d, \"victim_link\": \"%s\", \"loss\": %s, \"burst_s\": \
       [%s, %s],\n\
       \"alerts\": [%s],\n\
       \"findings\": [%s],\n\
       \"summaries\": [%s],\n\
       \"link_named\": %b, \"roundtrip\": %b}"
      r.Qc.victim r.Qc.victim_link (fs r.Qc.loss) (fs r.Qc.burst_from_s)
      (fs r.Qc.burst_until_s)
      (String.concat ", " (List.map alert r.Qc.alerts))
      (String.concat ",\n" (List.map Attrib.finding_to_json r.Qc.findings))
      (String.concat ", " (List.map summary r.Qc.summaries))
      r.Qc.link_named r.Qc.roundtrip_ok
  in
  let run quick seed loss json json_out expect_burn =
    let r = Qc.compute ~quick ~seed ~loss () in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (report_json r);
        output_char oc '\n';
        close_out oc)
      json_out;
    if json then print_endline (report_json r)
    else begin
      Printf.printf
        "chaos: %.0f%% loss on %s (victim p%d) during [%.1fs, %.1fs]\n\n"
        (100.0 *. r.Qc.loss) r.Qc.victim_link r.Qc.victim r.Qc.burst_from_s
        r.Qc.burst_until_s;
      Scallop_util.Table.print (Qc.summary_table r.Qc.summaries);
      List.iter
        (fun a -> Printf.printf "slo alert: %s\n" (Slo.alert_str a))
        r.Qc.alerts;
      print_newline ();
      List.iter
        (fun f -> Printf.printf "finding: %s\n" (Attrib.render f))
        r.Qc.findings;
      Printf.printf
        "\nqoe report: %d alert(s), %d finding(s); faulty link %s: %s; json \
         round-trip: %s\n"
        (List.length r.Qc.alerts)
        (List.length r.Qc.findings)
        r.Qc.victim_link
        (if r.Qc.link_named then "named" else "NOT NAMED")
        (if r.Qc.roundtrip_ok then "ok" else "FAILED")
    end;
    if not r.Qc.roundtrip_ok then
      Error (`Msg "qoe: finding JSON failed to round-trip")
    else if expect_burn && r.Qc.alerts = [] then
      Error (`Msg "qoe: expected an SLO alert, none fired")
    else if expect_burn && not r.Qc.link_named then
      Error
        (`Msg
          (Printf.sprintf "qoe: attribution did not name the faulty link %s"
             r.Qc.victim_link))
    else Ok ()
  in
  Cmd.v
    (Cmd.info "qoe"
       ~doc:
         "Run the QoE observability drill: inject loss on one receiver's named \
          downlink, fire SLO burn-rate alerts from the live QoE collectors, and \
          attribute the burn back through the deterministic trace to the faulty \
          link.")
    Term.(term_result
            (const run $ quick $ seed $ loss $ json $ json_out $ expect_burn))

let trace_cmd =
  let meetings =
    Arg.(value & opt int 19_704 & info [ "meetings" ] ~doc:"Meetings to synthesize.")
  in
  let days = Arg.(value & opt int 14 & info [ "days" ] ~doc:"Horizon in days.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Generator seed.") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Directory for CSV dumps.")
  in
  let run meetings days seed csv =
    (match csv with
    | None -> ()
    | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Scallop_util.Table.set_csv_sink
          (Some
             (fun ~title ~csv ->
               let name =
                 String.map
                   (fun c -> if ('a' <= Char.lowercase_ascii c && Char.lowercase_ascii c <= 'z') || ('0' <= c && c <= '9') then c else '_')
                   title
               in
               let oc = open_out (Filename.concat dir (name ^ ".csv")) in
               output_string oc csv;
               close_out oc)));
    let dataset = Trace.Dataset.generate (Scallop_util.Rng.create seed) ~days ~meetings () in
    Printf.printf "synthesized %d meetings over %d days (%.0f%% two-party)

"
      (Array.length dataset.Trace.Dataset.meetings)
      days
      (100.0 *. Trace.Dataset.two_party_fraction dataset);
    let fig2 =
      Scallop_util.Table.create ~title:"streams at the SFU per meeting size"
        ~columns:[ "participants"; "min"; "median"; "max"; "2N^2 bound" ]
    in
    List.iter
      (fun (size, mn, md, mx, bound) ->
        if size <= 40 then
          Scallop_util.Table.add_row fig2
            [
              string_of_int size; string_of_int mn;
              Scallop_util.Table.cell_f ~decimals:1 md; string_of_int mx;
              string_of_int bound;
            ])
      (Trace.Dataset.fig2_rows dataset);
    Scallop_util.Table.print fig2;
    let meetings_ts, participants_ts =
      Trace.Dataset.concurrency_series dataset ~bin_ns:3_600_000_000_000
    in
    let conc =
      Scallop_util.Table.create ~title:"hourly concurrency"
        ~columns:[ "hour"; "meetings"; "participants" ]
    in
    let parts = Scallop_util.Timeseries.bins participants_ts in
    Array.iteri
      (fun i (time, m) ->
        if i < Array.length parts then
          Scallop_util.Table.add_row conc
            [
              string_of_int (time / 3_600_000_000_000);
              Scallop_util.Table.cell_f ~decimals:0 m;
              Scallop_util.Table.cell_f ~decimals:0 (snd parts.(i));
            ])
      (Scallop_util.Timeseries.bins meetings_ts);
    (match csv with
    | Some _ -> Scallop_util.Table.print conc
    | None -> Printf.printf "(pass --csv DIR to dump the %d-hour concurrency series)
"
                (Array.length (Scallop_util.Timeseries.bins meetings_ts)));
    Scallop_util.Table.set_csv_sink None
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Synthesize the campus workload and dump its distributions.")
    Term.(const run $ meetings $ days $ seed $ csv)

let explore_cmd =
  let module Mc = Scallop_mc in
  let mutations_conv =
    Arg.enum
      (List.map (fun m -> (Scallop.Mutation.name m, m)) Scallop.Mutation.all)
  in
  let mutate =
    Arg.(value & opt_all mutations_conv []
         & info [ "mutate" ] ~docv:"DEFECT"
             ~doc:
               (Printf.sprintf
                  "Enable a seeded protocol defect for every explored schedule \
                   (repeatable). One of: %s. The search is expected to find a \
                   violating schedule — the mutation CI gate asserts it does."
                  (String.concat ", "
                     (List.map
                        (fun m -> Printf.sprintf "$(b,%s)" (Scallop.Mutation.name m))
                        Scallop.Mutation.all))))
  in
  let runs =
    Arg.(value & opt int Mc.Explore.default_budget.Mc.Explore.b_max_runs
         & info [ "runs" ] ~docv:"N" ~doc:"Schedule budget: simulations allowed.")
  in
  let depth =
    Arg.(value & opt int Mc.Explore.default_budget.Mc.Explore.b_max_depth
         & info [ "depth" ] ~docv:"N"
             ~doc:"Deepest choice position the DFS may branch on.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"CHOICES"
             ~doc:"Skip the search: run the single schedule pinned by this \
                   comma-separated choice sequence (as printed for a \
                   counterexample) and report its violations.")
  in
  let ties =
    Arg.(value & flag
         & info [ "ties" ]
             ~doc:"Also branch on same-timestamp event permutations (the \
                   engine's tie-break chooser) inside the choice window.")
  in
  let no_channel =
    Arg.(value & flag
         & info [ "no-channel" ]
             ~doc:"Disable delivery-fate (deliver/delay/drop) choice points on \
                   the control channel.")
  in
  let no_faults =
    Arg.(value & flag
         & info [ "no-faults" ]
             ~doc:"Disable the crash/restart decision grid.")
  in
  let cluster =
    Arg.(value & flag
         & info [ "cluster" ]
             ~doc:
               "Run the controller tier as the fault-tolerant primary/standby \
                pair: the fault grid gains kill-primary and force-promote \
                decision points, and the end-state check adds the cluster \
                invariants (single acting primary, journal-replay fidelity). \
                Implied by $(b,--mutate skip-fencing-check).")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Simulation seed.") in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the search result as one JSON document (finding \
                   encoding shared with $(b,check --json)).")
  in
  let seq_out =
    Arg.(value & opt (some string) None
         & info [ "seq-out" ] ~docv:"FILE"
             ~doc:"Write the counterexample's (or replayed schedule's) choice \
                   sequence to $(docv) — the CI artifact that pins a failing \
                   interleaving.")
  in
  let dump =
    Arg.(value & flag
         & info [ "dump" ]
             ~doc:"With $(b,--replay): print every trace event as it happens \
                   (timestamp, name, args) — the schedule's full timeline, for \
                   debugging a counterexample.")
  in
  let run mutate runs depth replay ties no_channel no_faults cluster seed json
      seq_out dump =
    let config =
      {
        Mc.Scenario.default with
        Mc.Scenario.sc_seed = seed;
        sc_mutations = mutate;
        sc_ties = ties;
        sc_channel = not no_channel;
        sc_faults = not no_faults;
        sc_cluster =
          (* the skip-fencing-check defect only has observable effect in a
             run with two controller instances to race *)
          cluster || List.mem Scallop.Mutation.Skip_fencing_check mutate;
      }
    in
    let budget =
      {
        Mc.Explore.default_budget with
        Mc.Explore.b_max_runs = runs;
        b_max_depth = depth;
      }
    in
    let write_seq chosen =
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Mc.Choice.to_string chosen);
          output_char oc '\n';
          close_out oc)
        seq_out
    in
    let report_outcome (o : Mc.Scenario.outcome) =
      List.iter
        (fun v -> Format.printf "violation: %a@." Mc.Temporal.pp_violation v)
        o.Mc.Scenario.o_violations;
      List.iter
        (fun (f : Scallop_analysis.finding) ->
          Format.printf "end-state: %a@." Scallop_analysis.pp_finding f)
        o.Mc.Scenario.o_findings;
      Printf.printf "choices: %s\n" (Mc.Choice.to_string o.Mc.Scenario.o_chosen)
    in
    match replay with
    | Some seq ->
        let forced =
          try Mc.Choice.of_string seq
          with Invalid_argument m -> failwith m
        in
        let on_event =
          if dump then
            Some
              (fun (ev : Scallop_obs.Trace.event) ->
                Printf.printf "%10dns %-14s %s\n" ev.Scallop_obs.Trace.ts
                  ev.Scallop_obs.Trace.name
                  (String.concat " "
                     (List.map
                        (fun (k, v) ->
                          Printf.sprintf "%s=%s" k
                            (match v with
                            | Scallop_obs.Trace.S s -> s
                            | Scallop_obs.Trace.I n -> string_of_int n))
                        ev.Scallop_obs.Trace.args)))
          else None
        in
        let o = Mc.Scenario.run ~config ?on_event ~forced () in
        write_seq o.Mc.Scenario.o_chosen;
        if json then print_endline (Mc.Mc_json.outcome o)
        else begin
          Printf.printf
            "replayed %d choice point(s), %d trace event(s), end at %.3fs\n"
            (List.length o.Mc.Scenario.o_log)
            o.Mc.Scenario.o_events
            (float_of_int o.Mc.Scenario.o_now /. 1e9);
          report_outcome o
        end;
        if Mc.Scenario.failed o then
          Error
            (`Msg
              (Printf.sprintf "replay: %d violation(s)"
                 (List.length o.Mc.Scenario.o_violations)))
        else Ok ()
    | None -> (
        let result = Mc.Explore.search_scenario ~budget ~config () in
        let s = result.Mc.Explore.r_stats in
        if json then print_endline (Mc.Mc_json.explore_report result)
        else
          Printf.printf
            "explored %d schedule(s) (%d memo hit(s), %d pruned, %d distinct \
             end state(s), deepest branch at choice %d)\n"
            s.Mc.Explore.s_runs s.Mc.Explore.s_memo_hits s.Mc.Explore.s_pruned
            s.Mc.Explore.s_states s.Mc.Explore.s_deepest;
        match result.Mc.Explore.r_counterexample with
        | None -> Ok ()
        | Some o ->
            write_seq o.Mc.Scenario.o_chosen;
            if not json then begin
              Printf.printf "counterexample found:\n";
              report_outcome o
            end;
            Error
              (`Msg
                (Printf.sprintf
                   "exploration found a violating schedule (%d violation(s)); \
                    replay with --replay '%s'"
                   (List.length o.Mc.Scenario.o_violations)
                   (Mc.Choice.to_string o.Mc.Scenario.o_chosen))))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore control-plane schedules (crash/restart timing, \
          control-channel delivery fates, same-timestamp permutations) under a \
          bounded budget, checking every run against the temporal protocol \
          rules. Prints a replayable choice sequence for any violation found.")
    Term.(term_result
            (const run $ mutate $ runs $ depth $ replay $ ties $ no_channel
             $ no_faults $ cluster $ seed $ json $ seq_out $ dump))

let () =
  let doc = "Scallop (SIGCOMM'25) reproduction: SDN-based selective forwarding unit" in
  let info = Cmd.info "scallop" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; capacity_cmd; simulate_cmd; check_cmd; explore_cmd;
            metrics_cmd; qoe_cmd; trace_cmd;
          ]))
