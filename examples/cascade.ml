(* Cascading SFUs (Appendix A): one controller, two Scallop switches, one
   meeting whose participants are split across them. The upstream switch
   forwards each sender's full-quality stream once to the downstream
   switch, which replicates and rate-adapts for its local receivers.

     dune exec examples/cascade.exe *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link

let () =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let network = Network.create engine (Rng.split rng) in
  let port = { Link.default with rate_bps = 100e9; propagation_ns = 1_000 } in
  let switch name ip_str =
    let ip = Addr.ip_of_string ip_str in
    Network.add_host network ~ip ~uplink:port ~downlink:port ();
    let dp = Scallop.Dataplane.create engine network ~ip () in
    let agent = Scallop.Switch_agent.create engine dp () in
    Printf.printf "switch %-6s at %s\n" name ip_str;
    (agent, dp)
  in
  let east = switch "east" "10.0.0.1" in
  let west = switch "west" "10.0.0.2" in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ east; west ] ()
  in
  let meeting = Scallop.Controller.create_meeting controller in
  let join i ~home =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.9.%d" (i + 1)) in
    Network.add_host network ~ip ();
    let client =
      Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)
    in
    Scallop.Controller.join ~home controller meeting client ~send_media:true
  in
  (* two participants on each coast *)
  let e0 = join 0 ~home:0 and _e1 = join 1 ~home:0 in
  let w0 = join 2 ~home:1 and _w1 = join 3 ~home:1 in
  Engine.run engine ~until:(Engine.sec 10.0);

  let rx pid ~from =
    Scallop.Controller.recv_connection controller pid ~from
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  Printf.printf "\nwest participant decoding an east sender: %d frames, %d freezes\n"
    (Codec.Video_receiver.frames_decoded (rx w0 ~from:e0))
    (Codec.Video_receiver.freezes (rx w0 ~from:e0));
  Printf.printf "east participant decoding a west sender: %d frames, %d freezes\n"
    (Codec.Video_receiver.frames_decoded (rx e0 ~from:w0))
    (Codec.Video_receiver.freezes (rx e0 ~from:w0));
  let _, dp_e = east and _, dp_w = west in
  Printf.printf
    "\neach sender's media crossed the inter-switch link exactly once:\n\
    \  east switch egress %d pkts, west switch egress %d pkts\n"
    (Scallop.Dataplane.egress_pkts dp_e)
    (Scallop.Dataplane.egress_pkts dp_w);
  let a_e, _ = east and a_w, _ = west in
  Printf.printf "agent RPCs: east %d, west %d (one controller drives both)\n"
    (Scallop.Switch_agent.stats a_e).rpc_calls
    (Scallop.Switch_agent.stats a_w).rpc_calls
