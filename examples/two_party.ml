(* Two-party meetings take Scallop's unicast fast path: no replication
   tree is allocated at all, which is what lets a single switch hold
   ~533K concurrent two-party calls (paper §6.1). This example shows the
   fast path in action and the capacity math behind it, then adds a third
   participant and watches the agent migrate the meeting onto a tree.

     dune exec examples/two_party.exe *)

module Engine = Netsim.Engine

let designs t = function
  | Scallop.Trees.Two_party -> ignore t; "two-party unicast"
  | Scallop.Trees.Nra -> "NRA tree"
  | Scallop.Trees.Ra_r -> "RA-R trees"
  | Scallop.Trees.Ra_sr -> "RA-SR trees"

let () =
  let stack = Experiments.Common.make_scallop ~seed:9 () in
  let meeting, _members = Experiments.Common.scallop_meeting stack ~participants:2 ~senders:2 () in
  let agent_meeting = Scallop.Controller.agent_meeting_id stack.controller meeting in
  Experiments.Common.run_for stack.engine ~seconds:5.0;
  Printf.printf "with 2 participants: design = %s, PRE trees in use = %d\n"
    (designs () (Scallop.Switch_agent.meeting_design stack.agent agent_meeting))
    (Tofino.Pre.trees_used (Scallop.Dataplane.pre stack.dp));

  (* a third participant joins: the agent builds a tree and migrates *)
  let client =
    Experiments.Common.add_client stack.engine stack.network stack.rng ~index:2 ()
  in
  let _pid = Scallop.Controller.join stack.controller meeting client ~send_media:true in
  Experiments.Common.run_for stack.engine ~seconds:5.0;
  Printf.printf "with 3 participants: design = %s, PRE trees in use = %d, migrations = %d\n\n"
    (designs () (Scallop.Switch_agent.meeting_design stack.agent agent_meeting))
    (Tofino.Pre.trees_used (Scallop.Dataplane.pre stack.dp))
    (Scallop.Switch_agent.stats stack.agent).migrations;

  (* the capacity story the fast path buys *)
  let two_party =
    Scallop.Capacity.meetings_supported Scallop.Capacity.Two_party ~participants:2 ~senders:2 ()
  in
  let software =
    Sfu.Capacity.meetings_supported ~participants:2 ~senders:2 ~media_types:2 ()
  in
  Printf.printf "capacity: %d concurrent two-party meetings on one switch vs %d on a 32-core server (%.0fx)\n"
    two_party software
    (float_of_int two_party /. float_of_int software)
