(* Rate adaptation end to end (the Fig. 14 scenario as a worked example):
   a three-party call in which one participant's downlink deteriorates,
   GCC at that receiver detects the congestion, its REMB feedback reaches
   the switch agent, and the agent re-programs the data plane to drop SVC
   enhancement layers — while the stream keeps playing with no freezes.

     dune exec examples/rate_adaptation.exe *)

module Engine = Netsim.Engine
module Link = Netsim.Link
module Dd = Av1.Dd

let () =
  let stack = Experiments.Common.make_scallop ~seed:42 () in
  let _meeting, members =
    Experiments.Common.scallop_meeting stack ~participants:3 ~senders:3 ()
  in
  let pids = List.map fst members in
  let victim = List.nth pids 2 in
  let victim_ip = Experiments.Common.client_ip 2 in
  let agent_meeting = Scallop.Controller.agent_meeting_id stack.controller 0 in

  let report label =
    let target =
      Scallop.Switch_agent.current_target stack.agent ~meeting:agent_meeting
        ~sender:(List.hd pids) ~receiver:victim
    in
    let rx =
      Scallop.Controller.recv_connection stack.controller victim ~from:(List.hd pids)
      |> Option.get |> Webrtc.Client.receiver |> Option.get
    in
    Printf.printf "%-28s target=%4.1f fps  decoded=%4d  freezes=%d  est=%s\n" label
      (Dd.fps_of_target target)
      (Codec.Video_receiver.frames_decoded rx)
      (Codec.Video_receiver.freezes rx)
      (match
         Scallop.Controller.recv_connection stack.controller victim ~from:(List.hd pids)
         |> Option.get |> Webrtc.Client.gcc_estimate
       with
      | Some e -> Printf.sprintf "%.2f Mb/s" (float_of_int e /. 1e6)
      | None -> "-")
  in

  Experiments.Common.run_for stack.engine ~seconds:15.0;
  report "healthy downlink:";

  (* the victim's downlink drops to 3.8 Mb/s — not enough for two full
     2.5 Mb/s streams, enough for two 15 fps ones *)
  Link.set_rate (Netsim.Network.downlink stack.network ~ip:victim_ip) 3.8e6;
  Experiments.Common.run_for stack.engine ~seconds:15.0;
  report "after first degradation:";

  (* and further down to 2.4 Mb/s: only the 7.5 fps base layers fit *)
  Link.set_rate (Netsim.Network.downlink stack.network ~ip:victim_ip) 2.4e6;
  Experiments.Common.run_for stack.engine ~seconds:15.0;
  report "after second degradation:";

  Printf.printf
    "\nswitch agent: %d REMBs analyzed, %d decode-target changes, %d tree migrations\n"
    (Scallop.Switch_agent.stats stack.agent).rembs_analyzed
    (Scallop.Switch_agent.stats stack.agent).target_changes
    (Scallop.Switch_agent.stats stack.agent).migrations
