(* Quickstart: a three-party video conference through the Scallop SFU.

   Walks the full life of a meeting: build the simulated network, attach
   the Tofino data plane + switch agent + controller, sign three WebRTC
   clients in, run ten simulated seconds of media, and inspect what each
   participant decoded and how little the control plane had to touch.

     dune exec examples/quickstart.exe *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network

let () =
  (* 1. Simulation fabric: a deterministic event engine and a star network. *)
  let engine = Engine.create () in
  let rng = Rng.create 2024 in
  let network = Network.create engine (Rng.split rng) in

  (* 2. The switch: a host with fast ports running the Scallop data plane,
     a switch agent on its CPU, and the (logically centralized) controller. *)
  let switch_ip = Addr.ip_of_string "10.0.0.1" in
  let port = { Netsim.Link.default with rate_bps = 100e9; propagation_ns = 1_000 } in
  Network.add_host network ~ip:switch_ip ~uplink:port ~downlink:port ();
  let dataplane = Scallop.Dataplane.create engine network ~ip:switch_ip () in
  let agent = Scallop.Switch_agent.create engine dataplane () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dataplane) ] ()
  in

  (* 3. Three participants, each a full WebRTC endpoint on its own host. *)
  let meeting = Scallop.Controller.create_meeting controller in
  let join i =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.1.%d" (i + 1)) in
    Network.add_host network ~ip ();
    let client =
      Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)
    in
    let pid = Scallop.Controller.join controller meeting client ~send_media:true in
    (pid, client)
  in
  let participants = List.init 3 join in

  (* 4. Run ten seconds of virtual time. *)
  Engine.run engine ~until:(Engine.sec 10.0);

  (* 5. What did everyone see? *)
  List.iter
    (fun (pid, _) ->
      List.iter
        (fun (from, _) ->
          if from <> pid then
            match Scallop.Controller.recv_connection controller pid ~from with
            | Some conn ->
                let rx = Option.get (Webrtc.Client.receiver conn) in
                Printf.printf
                  "participant %d <- participant %d: %d frames decoded, %d freezes, jitter %.2f ms\n"
                  pid from
                  (Codec.Video_receiver.frames_decoded rx)
                  (Codec.Video_receiver.freezes rx)
                  (Codec.Video_receiver.jitter_ms rx)
            | None -> ())
        participants)
    participants;
  let c = Scallop.Dataplane.ingress_counters dataplane in
  let dp = c.rtp_audio_pkts + c.rtp_video_pkts + c.rtcp_sr_sdes_pkts in
  Printf.printf
    "\ndata plane forwarded %d packets; switch agent handled %d CPU-port copies (%d STUN answered)\n"
    dp
    (Scallop.Dataplane.cpu_pkts dataplane)
    (Scallop.Switch_agent.stats agent).stun_answered;
  Printf.printf "controller exchanged %d SDP messages and made %d agent RPCs\n"
    (Scallop.Controller.stats controller).sdp_messages
    (Scallop.Switch_agent.stats agent).rpc_calls
