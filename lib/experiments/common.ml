module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link

type scallop_stack = {
  engine : Engine.t;
  rng : Rng.t;
  network : Network.t;
  dp : Scallop.Dataplane.t;
  agent : Scallop.Switch_agent.t;
  controller : Scallop.Controller.t;
}

let fast_link =
  { Link.default with rate_bps = infinity; propagation_ns = 100_000; queue_bytes = max_int / 2 }

(* Access links carry a deep (bufferbloat-style) queue: congestion shows
   up as delay first, which is exactly the signal GCC adapts on before
   tail-drop loss sets in. *)
let client_link ?(rate_bps = 100e6) ?(propagation_ns = 5_000_000) () =
  { Link.default with rate_bps; propagation_ns; queue_bytes = 1_000_000 }

let sfu_ip = Addr.ip_of_string "10.0.0.1"

let make_scallop ?(seed = 1) ?(rewrite = Scallop.Seq_rewrite.S_LM) ?(switch_link = fast_link)
    ?(control = Scallop.Rpc_transport.default) ?(batch = false) () =
  (* a fresh world: stale same-key QoE collectors from a previous stack in
     this process would otherwise be reused and keep accumulating *)
  Scallop_obs.Qoe.reset ();
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  Network.add_host network ~ip:sfu_ip ~uplink:switch_link ~downlink:switch_link ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
  let agent = Scallop.Switch_agent.create engine dp ~rewrite () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ~control
      ~batch ()
  in
  { engine; rng; network; dp; agent; controller }

(* A scallop stack whose controller tier is the fault-tolerant pair: an
   acting primary and a journal-tailing standby under the cluster's
   heartbeat manager. The [scallop_stack] view inside it points its
   [controller] field at the initial primary — helpers like
   [scallop_meeting] work unchanged as long as they run before the first
   failover; afterwards route ops through [Scallop.Cluster.endpoint]. *)
type cluster_stack = { base : scallop_stack; cluster : Scallop.Cluster.t }

let make_cluster ?(seed = 1) ?(rewrite = Scallop.Seq_rewrite.S_LM)
    ?(switch_link = fast_link) ?(control = Scallop.Rpc_transport.default)
    ?(batch = false) ?cluster_config () =
  Scallop_obs.Qoe.reset ();
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  Network.add_host network ~ip:sfu_ip ~uplink:switch_link ~downlink:switch_link ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
  let agent = Scallop.Switch_agent.create engine dp ~rewrite () in
  let cluster =
    Scallop.Cluster.create ?config:cluster_config engine network (Rng.split rng)
      ~agents:[ (agent, dp) ] ~control ~batch ()
  in
  {
    base =
      { engine; rng; network; dp; agent; controller = Scallop.Cluster.primary cluster };
    cluster;
  }

type software_stack = {
  s_engine : Engine.t;
  s_rng : Rng.t;
  s_network : Network.t;
  server : Sfu.Server.t;
}

let make_software ?(seed = 1) ?(cpu = Netsim.Cpu_queue.default_server) ?(switch_link = fast_link)
    () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  Network.add_host network ~ip:sfu_ip ~uplink:switch_link ~downlink:switch_link ();
  let server = Sfu.Server.create engine network (Rng.split rng) ~ip:sfu_ip ~cpu () in
  { s_engine = engine; s_rng = rng; s_network = network; server }

let client_ip index =
  Addr.ip_of_string (Printf.sprintf "10.0.%d.%d" (1 + (index / 250)) ((index mod 250) + 1))

let add_client engine network rng ~index ?(config = Webrtc.Client.default_config)
    ?(uplink = client_link ()) ?(downlink = client_link ()) () =
  let ip = client_ip index in
  Network.add_host network ~ip ~uplink ~downlink ();
  Webrtc.Client.create engine network (Rng.split rng) (config ~ip)

let scallop_meeting stack ~participants ~senders ?config ?uplink ?downlink ?(index_base = 0) () =
  let mid = Scallop.Controller.create_meeting stack.controller in
  let members =
    List.init participants (fun i ->
        let client =
          add_client stack.engine stack.network stack.rng ~index:(index_base + i) ?config
            ?uplink ?downlink ()
        in
        let pid =
          Scallop.Controller.join stack.controller mid client ~send_media:(i < senders)
        in
        (pid, client))
  in
  (mid, members)

let software_meeting stack ~participants ~senders ?config ?uplink ?downlink ?(index_base = 0) () =
  let meeting = Sfu.Server.create_meeting stack.server in
  let members =
    List.init participants (fun i ->
        let client =
          add_client stack.s_engine stack.s_network stack.s_rng ~index:(index_base + i)
            ?config ?uplink ?downlink ()
        in
        let pid = Sfu.Server.join stack.server ~meeting ~client ~send_media:(i < senders) in
        (pid, client))
  in
  (meeting, members)

let run_for engine ~seconds =
  Engine.run engine ~until:(Engine.now engine + Engine.sec seconds)
