module Engine = Netsim.Engine
module Link = Netsim.Link
module Chaos = Netsim.Chaos
module Rng = Scallop_util.Rng
module Table = Scallop_util.Table
module C = Scallop.Controller
module A = Scallop.Switch_agent
module T = Scallop.Rpc_transport
module An = Scallop_analysis

type recovery = {
  kind : string;  (** "resync" | "drain" *)
  detected_ms : float;
  recovered_ms : float;
  latency_ms : float;
  ops : int;
}

type result = {
  schedule : Chaos.schedule;
  recoveries : recovery list;  (** oldest first *)
  partition_egress : (int * int) list;
      (** per partition fault: egress replicas emitted inside the window *)
  deferred_drained : int;  (** ops queued against Dead switches, total *)
  findings_after : An.finding list;
}

(* One switch, a live meeting, and a seed-derived fault schedule: a full
   power-cycle (state wiped, epoch bumped -> full resync on heal) plus a
   control partition (state intact -> deferred ops drain on heal) plus a
   degraded-control burst, with churn (a join and a leave) landing while
   faults are active. *)
let compute ?(quick = false) ?(seed = 97) () =
  let stack = Common.make_scallop ~seed () in
  let horizon = Engine.sec (if quick then 20.0 else 40.0) in
  let participants = if quick then 3 else 5 in
  let mid, parts = Common.scallop_meeting stack ~participants ~senders:2 () in
  C.start_health stack.controller;
  let chaos_rng = Rng.split stack.rng in
  let schedule =
    Chaos.generate chaos_rng ~nodes:1 ~horizon_ns:horizon ~crashes:1 ~partitions:1
      ~loss_bursts:1 ~loss:0.3 ~disjoint:true ()
  in
  let chan = C.control_channel stack.controller 0 in
  let set_loss _node loss =
    Link.set_loss (T.Client.request_link chan) loss;
    Link.set_loss (T.Client.reply_link chan) loss
  in
  Chaos.install stack.engine schedule
    ~crash:(fun _ -> A.crash stack.agent)
    ~restart:(fun _ -> A.restart stack.agent)
    ~set_loss;
  (* media-continuity probes around every partition window *)
  let partition_egress = ref [] in
  List.iter
    (fun fault ->
      match fault with
      | Chaos.Partition { from_ns; until_ns; _ } ->
          let at_start = ref 0 in
          Engine.at stack.engine ~time:from_ns (fun () ->
              at_start := Scallop.Dataplane.egress_pkts stack.dp);
          Engine.at stack.engine ~time:until_ns (fun () ->
              partition_egress :=
                (from_ns, Scallop.Dataplane.egress_pkts stack.dp - !at_start)
                :: !partition_egress)
      | Chaos.Crash_restart _ | Chaos.Control_loss _ -> ())
    schedule;
  (* churn in the thick of the fault window: both ops either complete
     normally or are deferred against a Dead switch and replayed *)
  let deferred_seen = ref 0 in
  let note_deferred () =
    let intent = C.introspect stack.controller in
    List.iter
      (fun (h : C.health_view) -> deferred_seen := max !deferred_seen h.C.hv_deferred)
      intent.C.in_health
  in
  Engine.at stack.engine ~time:(horizon * 2 / 5) (fun () ->
      let client =
        Common.add_client stack.engine stack.network stack.rng ~index:(participants + 1)
          ()
      in
      ignore (C.join stack.controller mid client ~send_media:true);
      note_deferred ());
  Engine.at stack.engine
    ~time:(horizon / 2)
    (fun () ->
      (match List.rev parts with
      | (pid, _) :: _ -> C.leave stack.controller pid
      | [] -> ());
      note_deferred ());
  let run_until = max horizon (Chaos.horizon_end schedule + Engine.sec 5.0) in
  Engine.run ~until:run_until stack.engine;
  C.stop_health stack.controller;
  let recoveries =
    List.rev_map
      (fun (e : C.recovery_event) ->
        {
          kind = (match e.C.re_kind with `Resync -> "resync" | `Drain -> "drain");
          detected_ms = float_of_int e.C.re_detected_ns /. 1e6;
          recovered_ms = float_of_int e.C.re_recovered_ns /. 1e6;
          latency_ms = float_of_int (e.C.re_recovered_ns - e.C.re_detected_ns) /. 1e6;
          ops = e.C.re_ops;
        })
      (C.recovery_log stack.controller)
  in
  {
    schedule;
    recoveries;
    partition_egress = List.rev !partition_egress;
    deferred_drained = !deferred_seen;
    findings_after = An.verify stack.controller;
  }

let run ?quick () =
  let r = compute ?quick () in
  Printf.printf "Fault schedule (seed-derived, virtual time):\n%s\n\n"
    (Chaos.describe r.schedule);
  let table =
    Table.create ~title:"Failure recovery (detection -> clean state)"
      ~columns:[ "repair"; "detected ms"; "recovered ms"; "latency ms"; "RPCs" ]
  in
  List.iter
    (fun rec_ ->
      Table.add_row table
        [
          rec_.kind;
          Table.cell_f ~decimals:1 rec_.detected_ms;
          Table.cell_f ~decimals:1 rec_.recovered_ms;
          Table.cell_f ~decimals:1 rec_.latency_ms;
          Table.cell_i rec_.ops;
        ])
    r.recoveries;
  Table.print table;
  List.iter
    (fun (from_ns, pkts) ->
      Printf.printf
        "Partition at %.1f ms: data plane kept forwarding — %d egress replicas during \
         the control outage.\n"
        (float_of_int from_ns /. 1e6)
        pkts)
    r.partition_egress;
  Printf.printf "Peak ops deferred against a Dead switch: %d\n" r.deferred_drained;
  let errs = An.errors r.findings_after in
  Printf.printf "Post-recovery verification: %d finding(s), %d error(s).\n"
    (List.length r.findings_after) (List.length errs);
  if errs <> [] then print_endline (An.report errs);
  Printf.printf
    "The controller detects the outage by missed heartbeats, keeps intent mutations in a\n\
     bounded deferred queue, and converges by epoch: same epoch drains the queue, a new\n\
     epoch replays the whole meeting from intent. Media through a partitioned switch\n\
     never stops; only a power-cycled switch drops media until resync.\n\n"
