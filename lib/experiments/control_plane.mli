(** Control-plane sensitivity sweep: how controller↔agent RTT and loss
    shape participant join latency.

    The paper's controller is off the media path and only acts on joins,
    leaves and stream changes (§5.1), so a degraded management network
    shows up purely as signaling latency. Each sweep point runs the same
    meeting with the control channel set to a given RTT and iid loss and
    measures per-join virtual latency plus the retry/duplicate traffic
    the {!Scallop.Rpc_transport} layer generates to stay reliable. *)

type point = {
  rtt_ms : int;
  loss : float;
  joins : int;  (** joins that completed (all of them, thanks to retries) *)
  mean_join_ms : float;
  max_join_ms : float;
  wire_requests : int;  (** request datagrams sent, retransmissions included *)
  retries : int;
  failures : int;  (** calls that exhausted every retry *)
  agent_rpc_calls : int;  (** request messages the agent saw on the wire *)
}

val measure : ?participants:int -> rtt_ms:int -> loss:float -> unit -> point
val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> unit -> unit
