(** End-to-end QoE observability drill: a healthy meeting, a seeded loss
    burst on one receiver's named downlink, SLO burn-rate alerts fired by
    the {!Scallop_obs.Slo} engine, and trace-linked attribution
    ({!Scallop_obs.Attrib}) walking the alert back to the faulty link.
    The scenario behind [scallop_cli qoe] and the CI qoe gate. *)

type result = {
  victim : int;  (** participant id of the afflicted receiver *)
  victim_link : string;  (** named downlink the loss was injected on *)
  loss : float;
  burst_from_s : float;
  burst_until_s : float;
  alerts : Scallop_obs.Slo.alert list;  (** every alert fired, oldest first *)
  findings : Scallop_obs.Attrib.finding list;
      (** attribution of the first alert against the victim *)
  summaries : Scallop_obs.Qoe.summary list;
  link_named : bool;  (** some finding cites [victim_link] *)
  roundtrip_ok : bool;
      (** every finding's JSON parses back to an equal finding *)
}

val compute : ?quick:bool -> ?seed:int -> ?loss:float -> unit -> result
(** Deterministic: the same [seed] yields identical alerts and findings.
    Resets the trace ring and the QoE registry, and restores the previous
    trace level on return. *)

val summary_table : Scallop_obs.Qoe.summary list -> Scallop_util.Table.t

val run : ?quick:bool -> unit -> unit
