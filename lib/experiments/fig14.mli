(** Fig. 14 — Scallop-based rate adaptation.

    A three-party call where all participants send and receive video.
    Participant 3's downlink deteriorates twice (at one and two thirds of
    the run), forcing the switch agent to step its decode target down from
    30 to 15 to 7.5 fps. The experiment reports the senders' frame rates
    (unchanged), participant 3's receive frame rate (stepping down), and
    participant 3's receive bitrate per sender — while asserting the
    stream stays decodable with no freezes. *)

type sample = {
  t_s : float;
  send_fps : float;  (** participant 1's send rate *)
  p3_recv_fps : float;  (** averaged over both streams *)
  p3_recv_kbps : float;
}

type result = {
  series : sample list;
  final_target : Av1.Dd.decode_target;
  freezes : int;
  initial_fps : float;
  mid_fps : float;  (** after the first constraint *)
  late_fps : float;  (** after the second constraint *)
  p3_qoe : Scallop_obs.Qoe.summary list;
      (** the QoE engine's view of the constrained receiver's video legs:
          temporal-layer residency, mouth-to-ear tails, freeze/loss ratios *)
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
