module Engine = Netsim.Engine
module Table = Scallop_util.Table

type point = {
  rtt_ms : int;
  loss : float;
  joins : int;
  mean_join_ms : float;
  max_join_ms : float;
  wire_requests : int;
  retries : int;
  failures : int;
  agent_rpc_calls : int;
}

(* Retries make calls on a lossy channel succeed with overwhelming
   probability (p_fail ~= (2*loss)^attempts per call), so the sweep can
   push loss high without joins failing outright. *)
let sweep_config ~rtt_ms ~loss =
  let base = Scallop.Rpc_transport.degraded ~loss ~rtt_ns:(Engine.ms rtt_ms) () in
  { base with Scallop.Rpc_transport.max_retries = 10 }

let measure ?(participants = 4) ~rtt_ms ~loss () =
  let control = sweep_config ~rtt_ms ~loss in
  let stack = Common.make_scallop ~seed:83 ~control () in
  let mid = Scallop.Controller.create_meeting stack.controller in
  let latencies =
    List.init participants (fun i ->
        let client =
          Common.add_client stack.engine stack.network stack.rng ~index:i ()
        in
        let started = Engine.now stack.engine in
        let _pid =
          Scallop.Controller.join stack.controller mid client ~send_media:(i < 2)
        in
        float_of_int (Engine.now stack.engine - started) /. 1e6)
  in
  let cstats = Scallop.Controller.stats stack.controller in
  let astats = Scallop.Switch_agent.stats stack.agent in
  {
    rtt_ms;
    loss;
    joins = List.length latencies;
    mean_join_ms = List.fold_left ( +. ) 0.0 latencies /. float_of_int participants;
    max_join_ms = List.fold_left Float.max 0.0 latencies;
    wire_requests = cstats.control_requests;
    retries = cstats.control_retries;
    failures = cstats.control_failures;
    agent_rpc_calls = astats.rpc_calls;
  }

let compute ?(quick = false) () =
  let rtts = if quick then [ 0; 20; 50 ] else [ 0; 5; 20; 50; 100 ] in
  let losses = if quick then [ 0.0; 0.2 ] else [ 0.0; 0.1; 0.3 ] in
  List.concat_map
    (fun rtt_ms -> List.map (fun loss -> measure ~rtt_ms ~loss ()) losses)
    rtts

let run ?quick () =
  let points = compute ?quick () in
  let table =
    Table.create ~title:"Control-plane RTT/loss vs participant join latency"
      ~columns:
        [ "ctrl RTT ms"; "ctrl loss"; "joins"; "mean join ms"; "max join ms";
          "wire reqs"; "retries"; "failures"; "agent msgs" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [ Table.cell_i p.rtt_ms; Table.cell_pct p.loss; Table.cell_i p.joins;
          Table.cell_f ~decimals:1 p.mean_join_ms;
          Table.cell_f ~decimals:1 p.max_join_ms; Table.cell_i p.wire_requests;
          Table.cell_i p.retries; Table.cell_i p.failures;
          Table.cell_i p.agent_rpc_calls ])
    points;
  Table.print table;
  Printf.printf
    "Join latency scales with control RTT (several serial RPCs per join) and loss adds retry\n\
     timeouts; with an ideal channel joins are instantaneous, matching the direct-call design.\n\n"
