(** Controller-failover drill: recovery latency vs journal size.

    Grows the intent journal with pair-target churn, kills the acting
    primary, and measures detection+takeover latency, service-resume
    latency, and the crash-rebuild replay suffix — with compaction off
    vs the cluster default — to show takeover is detection-bound while
    rebuild cost is bounded by the compaction cadence. *)

type point = {
  churn_ops : int;
  compact_every : int;
  appended : int;
  live_at_kill : int;
  compactions : int;
  promote_ms : float;
  resume_ms : float;
  rebuild_replayed : int;
  findings_after : Scallop_analysis.finding list;
}

type result = { points : point list; beat_ms : float }

val compute : ?quick:bool -> ?seed:int -> unit -> result
val run : ?quick:bool -> unit -> unit
