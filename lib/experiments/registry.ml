type entry = {
  id : string;
  title : string;
  paper_claim : string;
  run : ?quick:bool -> unit -> unit;
}

let all =
  [
    {
      id = "fig2";
      title = "Media streams at the SFU vs meeting size";
      paper_claim = "~200 streams at 10 participants, >700 at 25";
      run = (fun ?quick () -> Fig2.run ?quick ());
    };
    {
      id = "fig3_4";
      title = "Software SFU jitter and frame rate under load";
      paper_claim = "100% CPU ~80 participants; fps drops from ~60";
      run = (fun ?quick () -> Fig3_4.run ?quick ());
    };
    {
      id = "tab1";
      title = "Control/data-plane packet split (3-party meeting)";
      paper_claim = "96.46% of packets / 99.65% of bytes in the data plane";
      run = (fun ?quick () -> Table1.run ?quick ());
    };
    {
      id = "replay";
      title = "Campus-trace replay (1 headline claim)";
      paper_claim = "96.5% of packets / 99.7% of bytes stay in the data plane under churn";
      run = (fun ?quick () -> Replay.run ?quick ());
    };
    {
      id = "tab2";
      title = "Packet-capture summary (Appendix C)";
      paper_claim = "per-flow / per-stream structure of a campus capture";
      run = (fun ?quick () -> Table2.run ?quick ());
    };
    {
      id = "fig14";
      title = "Scallop rate adaptation without freezes";
      paper_claim = "30 -> 15 fps steps at the constrained receiver, no freezes";
      run = (fun ?quick () -> Fig14.run ?quick ());
    };
    {
      id = "fig15";
      title = "Scalability gain over a 32-core server";
      paper_claim = "7-210x more meetings";
      run = (fun ?quick () -> Fig15.run ?quick ());
    };
    {
      id = "fig16";
      title = "Best/worst-case meetings supported";
      paper_claim = "Scallop ahead of software at every configuration";
      run = (fun ?quick () -> Fig16.run ?quick ());
    };
    {
      id = "fig17";
      title = "Replication-tree design capacities";
      paper_claim = "128K NRA / 42.7K RA-R / 4.3K RA-SR(10p) / 533K two-party";
      run = (fun ?quick () -> Fig17.run ?quick ());
    };
    {
      id = "fig18";
      title = "Sequence-rewriting retransmission overhead";
      paper_claim = "<5% at 10% loss, ~7.5% at 20%, <20% at 40%";
      run = (fun ?quick () -> Fig18.run ?quick ());
    };
    {
      id = "fig19";
      title = "Per-packet forwarding latency";
      paper_claim = "26.8x lower median, 8.5x lower p99";
      run = (fun ?quick () -> Fig19.run ?quick ());
    };
    {
      id = "tab3";
      title = "Tofino resource utilization";
      paper_claim = "fits in 7/5 stages, every resource <22%";
      run = (fun ?quick () -> Table3.run ?quick ());
    };
    {
      id = "fig20_21";
      title = "Campus concurrency over two weeks";
      paper_claim = "diurnal weekday peaks, quiet weekends";
      run = (fun ?quick () -> Fig20_21.run ?quick ());
    };
    {
      id = "fig22";
      title = "Software SFU vs switch agent byte rates";
      paper_claim = "~1250 Mb/s vs ~4.4 Mb/s at campus peak";
      run = (fun ?quick () -> Fig22.run ?quick ());
    };
    {
      id = "fig23_25";
      title = "Per-receiver and per-layer forwarded bytes";
      paper_claim = "enhancement templates vanish when a receiver is reduced";
      run = (fun ?quick () -> Fig23_25.run ?quick ());
    };
    {
      id = "feedback_modes";
      title = "REMB vs TWCC switch-agent load (5.2)";
      paper_claim = "sender-driven TWCC needs one feedback packet per 10-20 media packets";
      run = (fun ?quick () -> Feedback_modes.run ?quick ());
    };
    {
      id = "simulcast";
      title = "Simulcast rendition splicing (3)";
      paper_claim = "Zoom combines Simulcast and SVC; adaptation = forwarding a labeled subset";
      run = (fun ?quick () -> Simulcast_exp.run ?quick ());
    };
    {
      id = "control_plane";
      title = "Control-plane RTT/loss vs join latency";
      paper_claim = "the controller acts only on session changes (5.1), so control-path \
                     degradation costs signaling latency, never media quality";
      run = (fun ?quick () -> Control_plane.run ?quick ());
    };
    {
      id = "failover";
      title = "Failure recovery: crash/partition chaos vs clean re-convergence";
      paper_claim = "the data plane forwards last-known state through control outages; \
                     the controller re-converges by epoch (resync) or queue drain";
      run = (fun ?quick () -> Failover.run ?quick ());
    };
    {
      id = "ctrl_failover";
      title = "Controller failover: recovery latency vs journal size";
      paper_claim = "the controller holds only restartable session state (5.1); a \
                     standby rebuilds it from journaled intent, so takeover is \
                     detection-bound and rebuild is bounded by compaction";
      run = (fun ?quick () -> Ctrl_failover.run ?quick ());
    };
    {
      id = "ctrl_churn";
      title = "Control-plane churn: per-op vs batched RPC throughput";
      paper_claim = "the controller acts only on session changes (5.1); batching its \
                     wire ops keeps join latency flat as churn concentrates";
      run = (fun ?quick () -> Ctrl_churn.run ?quick ());
    };
    {
      id = "qoe_chaos";
      title = "QoE SLO burn-rate alerting and trace-linked attribution";
      paper_claim = "loss injected on one named downlink fires an SLO alert whose \
                     attribution cites that link and a replayable trace window";
      run = (fun ?quick () -> Qoe_chaos.run ?quick ());
    };
    {
      id = "ablations";
      title = "Design-choice ablations (feedback filter, sequence rewriting)";
      paper_claim = "naive feedback converges to the slowest receiver (5.3); raw gaps trigger endless retransmissions (6.2)";
      run = (fun ?quick () -> Ablations.run ?quick ());
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick () =
  List.iter
    (fun e ->
      Printf.printf "--- %s: %s\n    paper: %s\n\n" e.id e.title e.paper_claim;
      e.run ?quick ())
    all
