module Table = Scallop_util.Table
module Timeseries = Scallop_util.Timeseries
module Link = Netsim.Link

type sample = { t_s : float; send_fps : float; p3_recv_fps : float; p3_recv_kbps : float }

type result = {
  series : sample list;
  final_target : Av1.Dd.decode_target;
  freezes : int;
  initial_fps : float;
  mid_fps : float;
  late_fps : float;
  p3_qoe : Scallop_obs.Qoe.summary list;
}

(* Downlink caps chosen so GCC's post-overuse estimate (0.85x the measured
   receive rate) lands in the affordability band of the intended layer:
   4.2 Mb/s forces both received streams to 15 fps, 2.4 Mb/s to 7.5 fps. *)
let first_cap = 4.2e6
let second_cap = 2.4e6

let compute ?(quick = false) () =
  let phase = if quick then 12.0 else 30.0 in
  let stack = Common.make_scallop ~seed:23 () in
  let _mid, members = Common.scallop_meeting stack ~participants:3 ~senders:3 () in
  let pids = List.map fst members in
  let p1 = List.nth pids 0 and p2 = List.nth pids 1 and p3 = List.nth pids 2 in
  let p3_ip = Common.client_ip 2 in
  Common.run_for stack.engine ~seconds:phase;
  Link.set_rate (Netsim.Network.downlink stack.network ~ip:p3_ip) first_cap;
  Common.run_for stack.engine ~seconds:phase;
  Link.set_rate (Netsim.Network.downlink stack.network ~ip:p3_ip) second_cap;
  Common.run_for stack.engine ~seconds:phase;
  (* collect series *)
  let send_conn = Option.get (Scallop.Controller.send_connection stack.controller p1) in
  let send_series = Option.get (Webrtc.Client.send_fps_series send_conn) in
  let rx_conns =
    List.filter_map
      (fun from -> Scallop.Controller.recv_connection stack.controller p3 ~from)
      [ p1; p2 ]
  in
  let receivers = List.filter_map Webrtc.Client.receiver rx_conns in
  let fps_bins rx = Timeseries.bins (Codec.Video_receiver.fps_series rx) in
  let rate_bins rx = Timeseries.bins (Codec.Video_receiver.bitrate_series rx) in
  let horizon = int_of_float (3.0 *. phase) in
  let at_bin bins s =
    Array.fold_left
      (fun acc (time, v) -> if time / 1_000_000_000 = s then acc +. v else acc)
      0.0 bins
  in
  let send_bins = Timeseries.bins send_series in
  let series =
    List.init horizon (fun s ->
        let p3_fps =
          List.fold_left (fun acc rx -> acc +. at_bin (fps_bins rx) s) 0.0 receivers
          /. float_of_int (List.length receivers)
        in
        let p3_bytes = List.fold_left (fun acc rx -> acc +. at_bin (rate_bins rx) s) 0.0 receivers in
        {
          t_s = float_of_int s;
          send_fps = at_bin send_bins s;
          p3_recv_fps = p3_fps;
          p3_recv_kbps = p3_bytes *. 8.0 /. 1000.0;
        })
  in
  let mean_fps lo hi =
    let xs = List.filter (fun x -> x.t_s >= lo && x.t_s < hi) series in
    List.fold_left (fun acc x -> acc +. x.p3_recv_fps) 0.0 xs /. float_of_int (max 1 (List.length xs))
  in
  let freezes =
    List.fold_left (fun acc rx -> acc + Codec.Video_receiver.freezes rx) 0 receivers
  in
  let final_target =
    Scallop.Switch_agent.current_target stack.agent
      ~meeting:(Scallop.Controller.agent_meeting_id stack.controller 0)
      ~sender:p1 ~receiver:p3
  in
  (* the QoE engine's independent view of the constrained receiver: the
     same no-freeze claim plus layer residency and mouth-to-ear tails *)
  let now_ns = Netsim.Engine.now stack.engine in
  let p3_qoe =
    List.filter_map
      (fun c ->
        let k = Scallop_obs.Qoe.key_of c in
        if k.Scallop_obs.Qoe.k_receiver = p3 && k.Scallop_obs.Qoe.k_kind = Scallop_obs.Qoe.Video
        then Some (Scallop_obs.Qoe.summary c ~now_ns)
        else None)
      (Scallop_obs.Qoe.all ())
  in
  {
    series;
    final_target;
    freezes;
    initial_fps = mean_fps (phase -. 6.0) phase;
    mid_fps = mean_fps ((2.0 *. phase) -. 6.0) (2.0 *. phase);
    late_fps = mean_fps ((3.0 *. phase) -. 6.0) (3.0 *. phase);
    p3_qoe;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 14: Scallop rate adaptation (P3 downlink constrained twice)"
      ~columns:[ "t (s)"; "P1 send fps"; "P3 recv fps"; "P3 recv kb/s" ]
  in
  List.iter
    (fun s ->
      if int_of_float s.t_s mod 3 = 0 then
        Table.add_row table
          [
            Table.cell_f ~decimals:0 s.t_s;
            Table.cell_f ~decimals:1 s.send_fps;
            Table.cell_f ~decimals:1 s.p3_recv_fps;
            Table.cell_f ~decimals:0 s.p3_recv_kbps;
          ])
    r.series;
  Table.print table;
  Printf.printf
    "phases: %.1f -> %.1f -> %.1f fps (paper: 30 -> 15 with no freezes); freezes=%d\n"
    r.initial_fps r.mid_fps r.late_fps r.freezes;
  List.iter
    (fun (s : Scallop_obs.Qoe.summary) ->
      Printf.printf
        "qoe engine %s: layers %.0f/%.0f/%.0f%%, m2e p50/p99 %s/%s ms, \
         freeze ratio %.2f%%, loss %.2f%%\n"
        (Scallop_obs.Qoe.key_str s.Scallop_obs.Qoe.s_key)
        (100.0 *. s.Scallop_obs.Qoe.s_layer_share.(0))
        (100.0 *. s.Scallop_obs.Qoe.s_layer_share.(1))
        (100.0 *. s.Scallop_obs.Qoe.s_layer_share.(2))
        (match s.Scallop_obs.Qoe.s_m2e_p50_ms with
        | None -> "-"
        | Some v -> Printf.sprintf "%.1f" v)
        (match s.Scallop_obs.Qoe.s_m2e_p99_ms with
        | None -> "-"
        | Some v -> Printf.sprintf "%.1f" v)
        (100.0 *. s.Scallop_obs.Qoe.s_freeze_ratio)
        (100.0 *. s.Scallop_obs.Qoe.s_loss_ratio))
    r.p3_qoe;
  print_newline ()
