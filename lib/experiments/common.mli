(** Shared scenario plumbing for the paper-reproduction experiments: a
    Scallop stack (data plane + switch agent + controller) and a software
    split-proxy stack, each with helpers to spin up N-party meetings of
    WebRTC clients over the simulated network. *)

type scallop_stack = {
  engine : Netsim.Engine.t;
  rng : Scallop_util.Rng.t;
  network : Netsim.Network.t;
  dp : Scallop.Dataplane.t;
  agent : Scallop.Switch_agent.t;
  controller : Scallop.Controller.t;
}

val make_scallop :
  ?seed:int ->
  ?rewrite:Scallop.Seq_rewrite.variant ->
  ?switch_link:Netsim.Link.config ->
  ?control:Scallop.Rpc_transport.config ->
  ?batch:bool ->
  unit ->
  scallop_stack
(** [control] configures the controller↔agent RPC channel (latency,
    loss, retry policy); the default ideal channel leaves every other
    experiment byte-identical to direct calls. [batch] (default false)
    turns on the controller's control-plane batching mode
    ({!Scallop.Controller.create}). *)

type cluster_stack = { base : scallop_stack; cluster : Scallop.Cluster.t }
(** A scallop stack whose controller tier is the fault-tolerant
    primary/standby pair. [base.controller] is the initial primary —
    existing helpers ({!scallop_meeting}) work unchanged before the
    first failover; afterwards, route operations through
    {!Scallop.Cluster.endpoint}. *)

val make_cluster :
  ?seed:int ->
  ?rewrite:Scallop.Seq_rewrite.variant ->
  ?switch_link:Netsim.Link.config ->
  ?control:Scallop.Rpc_transport.config ->
  ?batch:bool ->
  ?cluster_config:Scallop.Cluster.config ->
  unit ->
  cluster_stack

type software_stack = {
  s_engine : Netsim.Engine.t;
  s_rng : Scallop_util.Rng.t;
  s_network : Netsim.Network.t;
  server : Sfu.Server.t;
}

val make_software :
  ?seed:int ->
  ?cpu:Netsim.Cpu_queue.config ->
  ?switch_link:Netsim.Link.config ->
  unit ->
  software_stack

val fast_link : Netsim.Link.config
(** Effectively unconstrained: infinite rate, 100 µs propagation. *)

val client_link : ?rate_bps:float -> ?propagation_ns:int -> unit -> Netsim.Link.config
(** 100 Mb/s, 5 ms by default. *)

val add_client :
  Netsim.Engine.t ->
  Netsim.Network.t ->
  Scallop_util.Rng.t ->
  index:int ->
  ?config:(ip:int -> Webrtc.Client.config) ->
  ?uplink:Netsim.Link.config ->
  ?downlink:Netsim.Link.config ->
  unit ->
  Webrtc.Client.t
(** Registers host 10.0.(1+index/250).(index mod 250 + 1). *)

val client_ip : int -> int

val scallop_meeting :
  scallop_stack ->
  participants:int ->
  senders:int ->
  ?config:(ip:int -> Webrtc.Client.config) ->
  ?uplink:Netsim.Link.config ->
  ?downlink:Netsim.Link.config ->
  ?index_base:int ->
  unit ->
  Scallop.Controller.meeting_id * (Scallop.Controller.participant_id * Webrtc.Client.t) list
(** The first [senders] participants send video+audio; the rest receive
    only. *)

val software_meeting :
  software_stack ->
  participants:int ->
  senders:int ->
  ?config:(ip:int -> Webrtc.Client.config) ->
  ?uplink:Netsim.Link.config ->
  ?downlink:Netsim.Link.config ->
  ?index_base:int ->
  unit ->
  Sfu.Server.meeting_id * (Sfu.Server.participant_id * Webrtc.Client.t) list

val run_for : Netsim.Engine.t -> seconds:float -> unit
