(* Control-plane churn macro-benchmark: replay the diurnal campus trace's
   join/leave/migrate/share sequence with the inter-event gaps removed, so
   the control plane itself is the bottleneck (the trace's session churn
   compressed 100-1000x onto the controller). The same deterministic event
   schedule runs twice — per-op RPCs vs batched ([Controller.create
   ~batch:true]) — over a degraded control channel, and the ratio of
   virtual-time operation throughput is the batching speedup the CI gate
   checks. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Stats = Scallop_util.Stats
module Table = Scallop_util.Table

(* One session-level operation against the controller. [slot] identifies
   a participant within its meeting; [home] is a switch index. A migrate
   is a leave immediately followed by a join homed on another switch —
   the controller rebuilds the member's legs (and any cascade relays)
   there. *)
type ev =
  | Join of { meeting : int; slot : int }  (** homed on the meeting's primary *)
  | Leave of { meeting : int; slot : int }
  | Migrate of { meeting : int; slot : int; home : int }
  | Share_start of { meeting : int; slot : int }
  | Share_stop of { meeting : int; slot : int }

(* Derive a schedule from the campus dataset: meetings large enough to
   have real fan-out (the two-party majority exercises almost no
   control-plane work per op), joins spread over the first half of the
   meeting, a mid-life migrate and a screen-share episode, then leaves.
   Events are tagged with their trace timestamp, interleaved across
   concurrent meetings by sorting, and then replayed back-to-back. *)
let schedule ~seed ~meetings ~min_size ~max_size =
  let rng = Rng.create (seed + 7) in
  let ds = Trace.Dataset.generate rng ~meetings:(meetings * 20) () in
  let picked =
    Array.to_list ds.Trace.Dataset.meetings
    |> List.filter (fun m -> m.Trace.Dataset.size >= min_size)
    |> List.sort (fun a b -> compare a.Trace.Dataset.start_ns b.Trace.Dataset.start_ns)
    |> List.filteri (fun i _ -> i < meetings)
  in
  let events = ref [] in
  let add ts ev = events := (ts, ev) :: !events in
  List.iteri
    (fun mi m ->
      let k = min max_size m.Trace.Dataset.size in
      let t0 = m.Trace.Dataset.start_ns in
      let dur = m.Trace.Dataset.duration_ns in
      let at frac = t0 + int_of_float (frac *. float_of_int dur) in
      for j = 0 to k - 1 do
        add (at (0.4 *. float_of_int j /. float_of_int k)) (Join { meeting = mi; slot = j })
      done;
      add (at 0.45) (Share_start { meeting = mi; slot = 0 });
      add (at 0.55) (Share_stop { meeting = mi; slot = 0 });
      (* one member hops to the other switch mid-meeting: the relay
         machinery (Appendix A) is the heaviest per-op sequence there is *)
      if k >= 3 then
        add (at 0.6) (Migrate { meeting = mi; slot = 1; home = (mi + 1) mod 2 });
      for j = 0 to k - 1 do
        add (at (0.7 +. (0.3 *. float_of_int j /. float_of_int k)))
          (Leave { meeting = mi; slot = j })
      done)
    picked;
  List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  |> List.map snd

(* A two-switch world: cross-switch homes force cascade relays, which is
   where per-op control traffic is heaviest. *)
let make_world ~seed ~control ~batch =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  let mk i =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.0.%d" (i + 1)) in
    Network.add_host network ~ip ~uplink:Common.fast_link ~downlink:Common.fast_link ();
    let dp =
      Scallop.Dataplane.create engine network ~ip
        ~obs_label:(Printf.sprintf "churn%d" i) ()
    in
    let agent = Scallop.Switch_agent.create engine dp () in
    (agent, dp)
  in
  let agents = [ mk 0; mk 1 ] in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents ~control ~batch ()
  in
  (engine, network, rng, controller)

type side = {
  ops : int;
  elapsed_s : float;  (** virtual seconds the replay occupied *)
  ops_per_sec : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  wire_requests : int;
  retries : int;
  failures : int;
  batches : int;
  batched_ops : int;
}

type result = {
  events : int;
  loss : float;
  rtt_ms : int;
  per_op : side;
  batched : side;
  speedup : float;  (** batched ops/sec over per-op ops/sec *)
}

(* The bench measures control-plane work only, so clients are media-quiet:
   no RTP and no periodic feedback/STUN timers (virtual time advances only
   inside blocking RPCs, but every live timer still costs real events on
   each engine pump — at a few hundred participants that dwarfs the RPCs
   being measured). The controller's registration path is identical either
   way. *)
let quiet_config ~ip =
  let c = Webrtc.Client.default_config ~ip in
  let never = Engine.sec 1e7 in
  {
    c with
    Webrtc.Client.send_video = false;
    send_audio = false;
    sr_interval_ns = never;
    remb_poll_interval_ns = never;
    nack_poll_interval_ns = never;
    stun_interval_ns = never;
    rr_interval_ns = never;
  }

let replay ~seed ~control ~batch events =
  let engine, network, rng, controller = make_world ~seed ~control ~batch in
  let clients = Hashtbl.create 64 in
  let pids = Hashtbl.create 64 in
  let mids = Hashtbl.create 16 in
  let next_client = ref 0 in
  let mid_of mi =
    match Hashtbl.find_opt mids mi with
    | Some mid -> mid
    | None ->
        let mid = Scallop.Controller.create_meeting controller in
        Hashtbl.replace mids mi mid;
        mid
  in
  let client_of key =
    match Hashtbl.find_opt clients key with
    | Some c -> c
    | None ->
        let c =
          Common.add_client engine network rng ~index:!next_client
            ~config:quiet_config ()
        in
        incr next_client;
        Hashtbl.replace clients key c;
        c
  in
  let latencies = ref [] in
  let ops = ref 0 in
  let t_start = Engine.now engine in
  let timed f =
    let t0 = Engine.now engine in
    f ();
    incr ops;
    latencies := float_of_int (Engine.now engine - t0) /. 1e6 :: !latencies
  in
  List.iter
    (fun ev ->
      match ev with
      | Join { meeting; slot } ->
          timed (fun () ->
              let pid =
                Scallop.Controller.join controller (mid_of meeting)
                  (client_of (meeting, slot))
                  ~send_media:true
              in
              Hashtbl.replace pids (meeting, slot) pid)
      | Leave { meeting; slot } ->
          Hashtbl.find_opt pids (meeting, slot)
          |> Option.iter (fun pid ->
                 timed (fun () ->
                     Scallop.Controller.leave controller pid;
                     Hashtbl.remove pids (meeting, slot)))
      | Migrate { meeting; slot; home } ->
          Hashtbl.find_opt pids (meeting, slot)
          |> Option.iter (fun pid ->
                 timed (fun () ->
                     Scallop.Controller.leave controller pid;
                     let pid' =
                       Scallop.Controller.join ~home controller (mid_of meeting)
                         (client_of (meeting, slot))
                         ~send_media:true
                     in
                     Hashtbl.replace pids (meeting, slot) pid'))
      | Share_start { meeting; slot } ->
          Hashtbl.find_opt pids (meeting, slot)
          |> Option.iter (fun pid ->
                 timed (fun () -> Scallop.Controller.start_screen_share controller pid))
      | Share_stop { meeting; slot } ->
          Hashtbl.find_opt pids (meeting, slot)
          |> Option.iter (fun pid ->
                 timed (fun () -> Scallop.Controller.stop_screen_share controller pid)))
    events;
  let elapsed_s = float_of_int (Engine.now engine - t_start) /. 1e9 in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let cstats = Scallop.Controller.stats controller in
  let sum f =
    List.fold_left
      (fun acc idx ->
        let s =
          Scallop.Rpc_transport.Client.stats
            (Scallop.Controller.control_channel controller idx)
        in
        acc + f s)
      0 [ 0; 1 ]
  in
  {
    ops = !ops;
    elapsed_s;
    ops_per_sec = (if elapsed_s > 0.0 then float_of_int !ops /. elapsed_s else 0.0);
    mean_ms =
      (if lat = [||] then 0.0
       else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat));
    p50_ms = (if lat = [||] then 0.0 else Stats.percentile_of_array lat 50.0);
    p99_ms = (if lat = [||] then 0.0 else Stats.percentile_of_array lat 99.0);
    wire_requests = cstats.Scallop.Controller.control_requests;
    retries = cstats.Scallop.Controller.control_retries;
    failures = cstats.Scallop.Controller.control_failures;
    batches = sum (fun (s : Scallop.Rpc_transport.Client.stats) -> s.batches);
    batched_ops = sum (fun (s : Scallop.Rpc_transport.Client.stats) -> s.batched_ops);
  }

(* The CI gate runs this at 30% control loss. [max_retries] is raised so
   no operation fails outright at that loss rate (p_give_up ~ 0.5^17 per
   call); the fixed seed keeps both sides deterministic. *)
let compute ?(quick = false) ?(loss = 0.3) ?(rtt_ms = 20) () =
  let meetings = if quick then 4 else 10 in
  let events =
    schedule ~seed:4242 ~meetings ~min_size:(if quick then 10 else 12)
      ~max_size:(if quick then 10 else 12)
  in
  let control =
    let base = Scallop.Rpc_transport.degraded ~loss ~rtt_ns:(Engine.ms rtt_ms) () in
    { base with Scallop.Rpc_transport.max_retries = 16 }
  in
  let per_op = replay ~seed:4242 ~control ~batch:false events in
  let batched = replay ~seed:4242 ~control ~batch:true events in
  {
    events = List.length events;
    loss;
    rtt_ms;
    per_op;
    batched;
    speedup =
      (if per_op.ops_per_sec > 0.0 then batched.ops_per_sec /. per_op.ops_per_sec
       else 0.0);
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Control-plane churn: per-op vs batched (%d events, %.0f%% loss, %d ms RTT)"
           r.events (100.0 *. r.loss) r.rtt_ms)
      ~columns:
        [ "mode"; "ops"; "virt s"; "ops/s"; "mean ms"; "p50 ms"; "p99 ms";
          "wire reqs"; "retries"; "fail"; "batches"; "batched ops" ]
  in
  let row name (s : side) =
    Table.add_row table
      [ name; Table.cell_i s.ops; Table.cell_f ~decimals:1 s.elapsed_s;
        Table.cell_f ~decimals:2 s.ops_per_sec; Table.cell_f ~decimals:0 s.mean_ms;
        Table.cell_f ~decimals:0 s.p50_ms; Table.cell_f ~decimals:0 s.p99_ms;
        Table.cell_i s.wire_requests; Table.cell_i s.retries; Table.cell_i s.failures;
        Table.cell_i s.batches; Table.cell_i s.batched_ops ]
  in
  row "per-op" r.per_op;
  row "batched" r.batched;
  Table.print table;
  Printf.printf
    "Batching speedup: %.1fx ops/sec (gate: >= 5x). A k-member join costs O(k) serial\n\
     round trips per-op but one Rpc.Batch per touched switch batched, so the gap widens\n\
     with fan-out and with loss (each eliminated RPC also eliminates its retry ladder).\n\n"
    r.speedup
