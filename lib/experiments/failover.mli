(** Failure-recovery experiment: a live meeting survives a seed-derived
    chaos schedule — a switch power-cycle, a controller↔switch control
    partition, and a degraded-control burst — with churn landing
    mid-outage.

    Measures, all in virtual time: detection→recovery latency per repair
    (a full intent resync after the reboot, a deferred-queue drain after
    the partition), media continuity through the partition (egress
    replicas emitted while control is severed), and a full
    {!Scallop_analysis} verification after the last heal, which must be
    error-free. *)

type recovery = {
  kind : string;  (** ["resync"] or ["drain"] *)
  detected_ms : float;  (** when the failure detector declared Dead *)
  recovered_ms : float;  (** when the repair committed *)
  latency_ms : float;
  ops : int;  (** RPCs the repair took *)
}

type result = {
  schedule : Netsim.Chaos.schedule;
  recoveries : recovery list;  (** oldest first *)
  partition_egress : (int * int) list;
      (** (partition start ns, egress replicas during the outage) *)
  deferred_drained : int;  (** peak ops queued against a Dead switch *)
  findings_after : Scallop_analysis.finding list;  (** post-recovery verify *)
}

val compute : ?quick:bool -> ?seed:int -> unit -> result
val run : ?quick:bool -> unit -> unit
