module Table = Scallop_util.Table

type result = {
  remb_cpu_pps : float;
  twcc_cpu_pps : float;
  remb_cpu_kbps : float;
  twcc_cpu_kbps : float;
  load_ratio : float;
}

let agent_load ~seconds mode =
  let stack = Common.make_scallop ~seed:61 () in
  let config ~ip = { (Webrtc.Client.default_config ~ip) with feedback_mode = mode } in
  let _ = Common.scallop_meeting stack ~participants:3 ~senders:3 ~config () in
  Common.run_for stack.engine ~seconds;
  let stats = Scallop.Switch_agent.stats stack.agent in
  ( float_of_int stats.cpu_packets /. seconds,
    float_of_int stats.cpu_bytes *. 8.0 /. 1000.0 /. seconds )

let compute ?(quick = false) () =
  let seconds = if quick then 30.0 else 120.0 in
  let remb_cpu_pps, remb_cpu_kbps = agent_load ~seconds Webrtc.Client.Remb in
  let twcc_cpu_pps, twcc_cpu_kbps = agent_load ~seconds Webrtc.Client.Twcc in
  {
    remb_cpu_pps;
    twcc_cpu_pps;
    remb_cpu_kbps;
    twcc_cpu_kbps;
    load_ratio = twcc_cpu_pps /. Float.max 0.01 remb_cpu_pps;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Feedback mode vs switch-agent load (5.2), 3-party meeting"
      ~columns:[ "mode"; "CPU-port packets/s"; "CPU-port kb/s" ]
  in
  Table.add_row table
    [ "REMB (receiver-driven)"; Table.cell_f ~decimals:1 r.remb_cpu_pps;
      Table.cell_f ~decimals:1 r.remb_cpu_kbps ];
  Table.add_row table
    [ "TWCC (sender-driven)"; Table.cell_f ~decimals:1 r.twcc_cpu_pps;
      Table.cell_f ~decimals:1 r.twcc_cpu_kbps ];
  Table.print table;
  Printf.printf
    "TWCC loads the agent %.1fx more (paper 5.2: one TWCC per 10-20 media packets is why Scallop adopts REMB)\n\n"
    r.load_ratio
