module Engine = Netsim.Engine
module Link = Netsim.Link
module Network = Netsim.Network
module Table = Scallop_util.Table
module Trace = Scallop_obs.Trace
module Qoe = Scallop_obs.Qoe
module Slo = Scallop_obs.Slo
module Attrib = Scallop_obs.Attrib

type result = {
  victim : int;  (* participant id of the afflicted receiver *)
  victim_link : string;
  loss : float;
  burst_from_s : float;
  burst_until_s : float;
  alerts : Slo.alert list;  (* every alert fired, oldest first *)
  findings : Attrib.finding list;  (* attribution of the first victim alert *)
  summaries : Qoe.summary list;
  link_named : bool;  (* some finding cites the injected link *)
  roundtrip_ok : bool;  (* finding JSON parses back to the same finding *)
}

(* One meeting, a healthy warm-up, then a seed-independent loss burst
   injected on the last (receive-only) participant's named downlink. The
   QoE collectors feed the SLO engine, which is evaluated every 500 ms of
   virtual time; the first alert against the victim is attributed back
   through the trace to the faulty link. Deterministic: the same seed
   produces the identical alerts and findings. *)
let compute ?(quick = false) ?(seed = 7) ?(loss = 0.3) () =
  let prev_level = Trace.level () in
  Trace.set_level Trace.Packet;
  Trace.reset ();
  Qoe.reset ();
  let stack = Common.make_scallop ~seed () in
  let participants = 3 and senders = 2 in
  let _mid, members = Common.scallop_meeting stack ~participants ~senders () in
  let victim = fst (List.nth members (participants - 1)) in
  let victim_ip = Common.client_ip (participants - 1) in
  let downlink = Network.downlink stack.Common.network ~ip:victim_ip in
  let victim_link = Link.name downlink in
  let slo = Slo.create () in
  Engine.every stack.Common.engine ~interval:(Engine.ms 500) (fun () ->
      ignore (Slo.evaluate slo ~now_ns:(Engine.now stack.Common.engine));
      true);
  let warm = if quick then 4.0 else 8.0 in
  let burst = if quick then 3.0 else 4.0 in
  let cool = if quick then 3.0 else 6.0 in
  Engine.at stack.Common.engine ~time:(Engine.sec warm) (fun () ->
      Link.set_loss downlink loss);
  Engine.at stack.Common.engine
    ~time:(Engine.sec (warm +. burst))
    (fun () -> Link.set_loss downlink 0.0);
  Common.run_for stack.Common.engine ~seconds:(warm +. burst +. cool);
  let now_ns = Engine.now stack.Common.engine in
  let alerts = Slo.alerts slo in
  let victim_alerts =
    List.filter (fun (a : Slo.alert) -> a.Slo.a_key.Qoe.k_receiver = victim) alerts
  in
  let findings =
    match victim_alerts with [] -> [] | a :: _ -> Attrib.of_alert a
  in
  let link_named =
    List.exists
      (fun (f : Attrib.finding) ->
        f.Attrib.f_component = "link" && f.Attrib.f_subject = victim_link)
      findings
  in
  let roundtrip_ok =
    List.for_all
      (fun f -> Attrib.finding_of_json (Attrib.finding_to_json f) = Some f)
      findings
  in
  let summaries = List.map (fun c -> Qoe.summary c ~now_ns) (Qoe.all ()) in
  Trace.set_level prev_level;
  {
    victim;
    victim_link;
    loss;
    burst_from_s = warm;
    burst_until_s = warm +. burst;
    alerts;
    findings;
    summaries;
    link_named;
    roundtrip_ok;
  }

let opt_ms = function None -> "-" | Some v -> Printf.sprintf "%.1f" v

let summary_table summaries =
  let table =
    Table.create ~title:"Per-stream QoE (engine view)"
      ~columns:
        [
          "stream"; "pkts"; "gaps"; "rec"; "frames"; "T0/T1/T2 %"; "freezes";
          "frozen ms"; "m2e p50"; "m2e p99"; "loss %";
        ]
  in
  List.iter
    (fun (s : Qoe.summary) ->
      Table.add_row table
        [
          Qoe.key_str s.Qoe.s_key;
          string_of_int s.Qoe.s_packets;
          string_of_int s.Qoe.s_gap_packets;
          string_of_int s.Qoe.s_recovered;
          string_of_int s.Qoe.s_frames;
          (if s.Qoe.s_key.Qoe.k_kind = Qoe.Video then
             Printf.sprintf "%.0f/%.0f/%.0f"
               (100.0 *. s.Qoe.s_layer_share.(0))
               (100.0 *. s.Qoe.s_layer_share.(1))
               (100.0 *. s.Qoe.s_layer_share.(2))
           else "-");
          string_of_int s.Qoe.s_freeze_count;
          Table.cell_f ~decimals:0 s.Qoe.s_frozen_ms;
          opt_ms s.Qoe.s_m2e_p50_ms;
          opt_ms s.Qoe.s_m2e_p99_ms;
          Table.cell_f ~decimals:2 (100.0 *. s.Qoe.s_loss_ratio);
        ])
    summaries;
  table

let run ?quick () =
  let r = compute ?quick () in
  Printf.printf
    "chaos: %.0f%% loss on %s (victim p%d) during [%.1fs, %.1fs]\n\n"
    (100.0 *. r.loss) r.victim_link r.victim r.burst_from_s r.burst_until_s;
  Table.print (summary_table r.summaries);
  List.iter (fun a -> Printf.printf "slo alert: %s\n" (Slo.alert_str a)) r.alerts;
  if r.alerts = [] then print_endline "slo alert: none (unexpected)";
  print_newline ();
  List.iter (fun f -> Printf.printf "finding: %s\n" (Attrib.render f)) r.findings;
  Printf.printf
    "\nqoe report: %d alert(s), %d finding(s); faulty link %s: %s; json \
     round-trip: %s\n\n"
    (List.length r.alerts) (List.length r.findings) r.victim_link
    (if r.link_named then "named" else "NOT NAMED")
    (if r.roundtrip_ok then "ok" else "FAILED")
