(** Control-plane churn macro-benchmark: the campus trace's
    join/leave/migrate/screen-share sequence replayed back-to-back (its
    session churn compressed 100-1000x onto the controller) over a lossy
    control channel, once with per-op RPCs and once with control-plane
    batching. The CI gate requires batched throughput to be at least 5x
    per-op throughput at 30% control loss. *)

type side = {
  ops : int;
  elapsed_s : float;  (** virtual seconds the replay occupied *)
  ops_per_sec : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  wire_requests : int;
  retries : int;
  failures : int;
  batches : int;
  batched_ops : int;
}

type result = {
  events : int;
  loss : float;
  rtt_ms : int;
  per_op : side;
  batched : side;
  speedup : float;  (** batched ops/sec over per-op ops/sec *)
}

val compute : ?quick:bool -> ?loss:float -> ?rtt_ms:int -> unit -> result
(** Deterministic (fixed seed): both sides replay the identical event
    schedule. Defaults: 30% loss each way, 20 ms control RTT. *)

val run : ?quick:bool -> unit -> unit
