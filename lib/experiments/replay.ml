module Table = Scallop_util.Table
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine

type result = {
  meetings_replayed : int;
  peak_participants : int;
  joins : int;
  leaves : int;
  data_plane_packet_fraction : float;
  data_plane_byte_fraction : float;
  migrations : int;
  freezes : int;
}

(* Compress one busy trace hour into the simulated window: a meeting that
   starts s seconds into the hour joins at s/compression. *)
let compute ?(quick = false) () =
  let window_s = if quick then 20.0 else 60.0 in
  let max_participants = if quick then 24 else 60 in
  let compression = 3600.0 /. window_s in
  let dataset = Trace.Dataset.generate (Rng.create 7) ~days:3 ~meetings:4000 () in
  (* the busiest weekday hour: 10:00-11:00 on day 2 *)
  let hour_ns = 3_600_000_000_000 in
  let win_lo = (2 * 24 * hour_ns) + (10 * hour_ns) in
  let win_hi = win_lo + hour_ns in
  let candidates =
    Array.to_list dataset.Trace.Dataset.meetings
    |> List.filter (fun m ->
           m.Trace.Dataset.start_ns >= win_lo
           && m.Trace.Dataset.start_ns < win_hi
           && m.Trace.Dataset.size <= 6)
  in
  let stack = Common.make_scallop ~seed:81 () in
  let joins = ref 0 and leaves = ref 0 and live = ref 0 and peak = ref 0 in
  let replayed = ref 0 in
  let index = ref 0 in
  let receivers = ref [] in
  let schedule_meeting (m : Trace.Dataset.meeting) =
    if !index + m.Trace.Dataset.size <= max_participants * 4 then begin
      incr replayed;
      let start_s = float_of_int (m.Trace.Dataset.start_ns - win_lo) /. 1e9 /. compression in
      let dur_s =
        Float.max 4.0 (float_of_int m.Trace.Dataset.duration_ns /. 1e9 /. compression)
      in
      Engine.at stack.Common.engine ~time:(Engine.sec start_s) (fun () ->
          if !live + m.Trace.Dataset.size <= max_participants then begin
            let mid = Scallop.Controller.create_meeting stack.Common.controller in
            let members =
              List.init m.Trace.Dataset.size (fun _ ->
                  let i = !index in
                  incr index;
                  let client =
                    Common.add_client stack.Common.engine stack.Common.network
                      stack.Common.rng ~index:i ()
                  in
                  incr joins;
                  incr live;
                  peak := max !peak !live;
                  (Scallop.Controller.join stack.Common.controller mid client
                     ~send_media:true, client))
            in
            List.iter
              (fun (_, c) ->
                receivers :=
                  (Webrtc.Client.connections c |> List.filter_map Webrtc.Client.receiver)
                  @ !receivers)
              members;
            Engine.schedule stack.Common.engine ~after:(Engine.sec dur_s) (fun () ->
                List.iter
                  (fun (pid, _) ->
                    incr leaves;
                    decr live;
                    Scallop.Controller.leave stack.Common.controller pid)
                  members)
          end)
    end
  in
  List.iter schedule_meeting candidates;
  Common.run_for stack.Common.engine ~seconds:window_s;
  let c = Scallop.Dataplane.ingress_counters stack.Common.dp in
  let dp_p = c.rtp_audio_pkts + c.rtp_video_pkts + c.rtcp_sr_sdes_pkts in
  let cpu_p = c.rtcp_rr_pkts + c.rtcp_remb_pkts + c.stun_pkts + c.rtp_av1_ds_pkts in
  let dp_b = c.rtp_audio_bytes + c.rtp_video_bytes + c.rtcp_sr_sdes_bytes in
  let cpu_b = c.rtcp_rr_bytes + c.rtcp_remb_bytes + c.stun_bytes + c.rtp_av1_ds_bytes in
  let freezes =
    List.fold_left (fun acc rx -> acc + Codec.Video_receiver.freezes rx) 0 !receivers
  in
  {
    meetings_replayed = !replayed;
    peak_participants = !peak;
    joins = !joins;
    leaves = !leaves;
    data_plane_packet_fraction = float_of_int dp_p /. float_of_int (dp_p + cpu_p);
    data_plane_byte_fraction = float_of_int dp_b /. float_of_int (dp_b + cpu_b);
    migrations = (Scallop.Switch_agent.stats stack.Common.agent).migrations;
    freezes;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Campus-trace replay through Scallop (1 headline)"
      ~columns:[ "metric"; "value" ]
  in
  Table.add_row table [ "meetings replayed"; Table.cell_i r.meetings_replayed ];
  Table.add_row table [ "peak concurrent participants"; Table.cell_i r.peak_participants ];
  Table.add_row table [ "joins / leaves"; Printf.sprintf "%d / %d" r.joins r.leaves ];
  Table.add_row table [ "tree migrations"; Table.cell_i r.migrations ];
  Table.add_row table
    [ "data-plane packets"; Table.cell_pct r.data_plane_packet_fraction ];
  Table.add_row table [ "data-plane bytes"; Table.cell_pct r.data_plane_byte_fraction ];
  Table.add_row table [ "decoder freezes"; Table.cell_i r.freezes ];
  Table.print table;
  print_string "paper 1: 96.5% of packets and 99.7% of bytes entirely in the data plane\n\n"
