(* Controller-failover drill: recovery latency vs journal size.

   One primary/standby cluster per point. Churn (repeated pair-target
   pins, one journal entry each) grows the intent journal to a target
   size, then the primary is killed and three latencies are read off
   the virtual clock: detection+takeover (kill -> standby acting),
   service resumption (kill -> first mutation accepted again), and the
   crash-rebuild replay cost (journal entries a restarted instance must
   re-execute). Each journal size runs twice — compaction off and the
   cluster default — so the table shows what the standby-driven
   snapshots buy: takeover stays detection-bound (about two beat
   intervals) no matter how much history exists, while the rebuild's
   replay suffix is bounded by the compaction cadence instead of the
   total churn. *)

module Engine = Netsim.Engine
module C = Scallop.Controller
module Cl = Scallop.Cluster
module J = Scallop.Journal
module An = Scallop_analysis
module Table = Scallop_util.Table

type point = {
  churn_ops : int;  (** journaled churn ops before the kill *)
  compact_every : int;  (** 0 = compaction disabled *)
  appended : int;  (** total journal appends at the kill *)
  live_at_kill : int;  (** live (uncompacted) entries at the kill *)
  compactions : int;
  promote_ms : float;  (** kill -> standby holds the Acting role *)
  resume_ms : float;  (** kill -> first mutation accepted again *)
  rebuild_replayed : int;
      (** entries a freshly restarted instance replays (its snapshot
          restore covers the rest) *)
  findings_after : An.finding list;  (** endpoint verify + cluster check *)
}

let measure ~churn ~compact_every ~seed =
  let cs =
    Common.make_cluster ~seed
      ~cluster_config:{ Cl.default with Cl.compact_every }
      ()
  in
  let stack = cs.Common.base in
  let cluster = cs.Common.cluster in
  let engine = stack.Common.engine in
  let _mid, parts = Common.scallop_meeting stack ~participants:4 ~senders:2 () in
  Cl.start_health cluster;
  Common.run_for engine ~seconds:0.5;
  let pids = List.map fst parts in
  let s0 = List.nth pids 0 and s1 = List.nth pids 1 in
  let r0 = List.nth pids 2 and r1 = List.nth pids 3 in
  for i = 0 to churn - 1 do
    Engine.at engine
      ~time:(Engine.ms (500 + (i * 5)))
      (fun () ->
        C.set_pair_target (Cl.endpoint cluster)
          ~sender:(if i mod 2 = 0 then s0 else s1)
          ~receiver:(if i mod 2 = 0 then r0 else r1)
          (Av1.Dd.target_of_index (i mod 3)))
  done;
  Common.run_for engine ~seconds:(0.5 +. (0.005 *. float_of_int churn) +. 0.5);
  let j = Cl.journal cluster in
  let appended = J.appended j in
  let live_at_kill = J.length j in
  let compactions = J.compactions j in
  let t_kill = Engine.now engine in
  Cl.kill_primary cluster;
  let promote_ns = ref (-1) in
  let resume_ns = ref (-1) in
  Engine.every engine ~interval:(Engine.ms 1) (fun () ->
      if !promote_ns < 0 && C.role (Cl.standby cluster) = C.Acting then
        promote_ns := Engine.now engine - t_kill;
      if !promote_ns >= 0 && !resume_ns < 0 then begin
        match
          C.set_pair_target (Cl.endpoint cluster) ~sender:s0 ~receiver:r0
            (Av1.Dd.target_of_index 1)
        with
        | () -> resume_ns := Engine.now engine - t_kill
        | exception (C.Unavailable | C.Deposed_primary) -> ()
      end;
      !resume_ns < 0);
  Common.run_for engine ~seconds:3.0;
  (* crash rebuild: the suffix a restarted instance replays is exactly
     the live log (its snapshot restore covers everything compacted) *)
  let rebuild_replayed = J.length j in
  Cl.restart_killed cluster;
  Common.run_for engine ~seconds:1.0;
  Cl.stop cluster;
  let ep = Cl.endpoint cluster in
  {
    churn_ops = churn;
    compact_every;
    appended;
    live_at_kill;
    compactions;
    promote_ms = float_of_int !promote_ns /. 1e6;
    resume_ms = float_of_int !resume_ns /. 1e6;
    rebuild_replayed;
    findings_after = An.verify ep @ An.check_cluster cluster;
  }

type result = { points : point list; beat_ms : float }

let compute ?(quick = false) ?(seed = 47) () =
  let sizes = if quick then [ 16; 64 ] else [ 32; 128; 512 ] in
  let modes = [ 0; Cl.default.Cl.compact_every ] in
  let points =
    List.concat_map
      (fun churn ->
        List.map (fun compact_every -> measure ~churn ~compact_every ~seed) modes)
      sizes
  in
  { points; beat_ms = float_of_int Cl.default.Cl.beat_every_ns /. 1e6 }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Controller failover: recovery latency vs journal size (%.0f ms beats)"
           r.beat_ms)
      ~columns:
        [ "churn ops"; "compact"; "appended"; "live@kill"; "snapshots";
          "promote ms"; "resume ms"; "rebuild replay"; "clean" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [ Table.cell_i p.churn_ops;
          (if p.compact_every = 0 then "off"
           else Printf.sprintf "every %d" p.compact_every);
          Table.cell_i p.appended; Table.cell_i p.live_at_kill;
          Table.cell_i p.compactions; Table.cell_f ~decimals:0 p.promote_ms;
          Table.cell_f ~decimals:0 p.resume_ms; Table.cell_i p.rebuild_replayed;
          (if An.errors p.findings_after = [] then "yes" else "NO") ])
    r.points;
  Table.print table;
  Printf.printf
    "Takeover is detection-bound: promote latency sits at ~2 beat intervals for every\n\
     journal size, because the standby tails continuously and only fences + resyncs on\n\
     promotion. The crash-rebuild replay suffix grows with total churn when compaction\n\
     is off, but stays under the compaction cadence when the standby snapshots — the\n\
     journal's disk footprint and a cold restart's work are both bounded.\n\n"
