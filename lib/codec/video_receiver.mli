(** Receiver-side decoder model for one SVC video stream.

    Reproduces the WebRTC receiver behaviour the paper's design hinges on
    (§6.2): sequence gaps are treated as network loss and trigger NACKs,
    while a sequence number that is reused for *different* data corrupts
    decoder state and freezes playback until the next key frame. Frames
    are assembled from packets, checked against their L1T3 dependencies,
    and counted into receive-fps / bitrate / jitter statistics — the
    quantities plotted in Figs. 3, 4 and 14. *)

type t

val create : ?nack_delay_ns:int -> ?pli_timeout_ns:int -> ssrc:int -> unit -> t
(** [nack_delay_ns] is the reordering tolerance before a gap is NACKed
    (default 30 ms); [pli_timeout_ns] the freeze duration before a PLI is
    requested (default 500 ms). *)

val receive : t -> time_ns:int -> Rtp.Packet.t -> unit

val set_qoe : t -> Scallop_obs.Qoe.t -> unit
(** Attach a QoE collector; the receiver then reports packets, gaps and
    recoveries, duplicates, per-layer decoded frames, mouth-to-ear
    samples, broken-playback freezes and decode stalls (> 250 ms between
    decodes) into it. *)

val qoe : t -> Scallop_obs.Qoe.t option

val poll_nacks : t -> time_ns:int -> int list
(** Sequence numbers overdue for retransmission; each is returned once. *)

val poll_pli : t -> time_ns:int -> bool
(** [true] if the decoder is broken/starved and a PLI should be sent now
    (throttled internally to one per timeout period). *)

(** Statistics *)

val frames_decoded : t -> int
val frames_incomplete : t -> int
val frames_undecodable : t -> int
val freezes : t -> int
val frozen : t -> bool
val nacks_sent : t -> int
val duplicates : t -> int
val packets_received : t -> int
val bytes_received : t -> int
val jitter_ms : t -> float
(** RFC 3550 interarrival jitter estimate, in milliseconds. *)

val fps_series : t -> Scallop_util.Timeseries.t
(** Decoded frames per 1 s bin. *)

val bitrate_series : t -> Scallop_util.Timeseries.t
(** Received media bytes per 1 s bin (all packets, decodable or not). *)

val jitter_percentile_series : t -> p:float -> (float * float) array
(** [(bin_start_seconds, pth-percentile jitter in ms)] per 1 s bin, from
    the per-packet jitter estimates observed in that bin. *)

val mouth_to_ear_ms : t -> p:float -> float
(** Percentile of the capture-to-decode delay over all decoded frames
    (computed from the 90 kHz RTP timestamp vs decode time) — the
    "mouth-to-ear" component the SFU contributes to (paper §2.2).
    @raise Invalid_argument if nothing decoded. *)
