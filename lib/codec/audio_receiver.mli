(** Receiver-side model for one audio stream: loss and jitter accounting
    (audio is never rate-adapted by the SFU, so unlike video there is no
    frame machinery — each packet is one 20 ms frame, and a missing packet
    is a concealment event at playout). *)

type t

val create : ssrc:int -> t
val receive : t -> time_ns:int -> Rtp.Packet.t -> unit

val set_qoe : t -> Scallop_obs.Qoe.t -> unit
(** Attach a QoE collector; the receiver then reports packets, gaps,
    late-fill recoveries and duplicates into it. *)

val qoe : t -> Scallop_obs.Qoe.t option

val packets_received : t -> int
val packets_lost : t -> int
(** Sequence-gap count (retransmitted packets arriving late still count as
    a concealment the playout already performed). *)

val loss_rate : t -> float
val jitter_ms : t -> float
(** RFC 3550 interarrival jitter (48 kHz clock), in milliseconds. *)

val duplicates : t -> int
