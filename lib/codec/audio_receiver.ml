module Packet = Rtp.Packet
module Qoe = Scallop_obs.Qoe

type t = {
  ssrc : int;
  mutable qoe : Qoe.t option;
  mutable started : bool;
  mutable highest_seq : int;
  mutable packets_received : int;
  mutable packets_lost : int;
  mutable duplicates : int;
  mutable last_arrival_ns : int;
  mutable last_rtp_ts : int;
  mutable jitter_ticks : float;
  seen : (int, unit) Hashtbl.t;  (** recent seqs, pruned by ring *)
  ring : int array;
  mutable ring_count : int;
}

let window = 512

let create ~ssrc =
  {
    ssrc;
    qoe = None;
    started = false;
    highest_seq = 0;
    packets_received = 0;
    packets_lost = 0;
    duplicates = 0;
    last_arrival_ns = 0;
    last_rtp_ts = 0;
    jitter_ticks = 0.0;
    seen = Hashtbl.create 256;
    ring = Array.make window (-1);
    ring_count = 0;
  }

let ticks_per_ns = 48_000.0 /. 1e9

let remember t seq =
  let slot = t.ring_count mod window in
  if t.ring.(slot) >= 0 then Hashtbl.remove t.seen t.ring.(slot);
  t.ring.(slot) <- seq;
  t.ring_count <- t.ring_count + 1;
  Hashtbl.replace t.seen seq ()

let set_qoe t q = t.qoe <- Some q
let qoe t = t.qoe

let receive t ~time_ns (pkt : Packet.t) =
  if pkt.ssrc = t.ssrc then begin
    if Hashtbl.mem t.seen pkt.sequence then begin
      t.duplicates <- t.duplicates + 1;
      match t.qoe with
      | Some q -> Qoe.on_duplicate q ~time_ns
      | None -> ()
    end
    else begin
      (* jitter over fresh packets only *)
      if t.packets_received > 0 then begin
        let arrival_ticks = float_of_int (time_ns - t.last_arrival_ns) *. ticks_per_ns in
        let d = arrival_ticks -. float_of_int (pkt.timestamp - t.last_rtp_ts) in
        t.jitter_ticks <- t.jitter_ticks +. ((Float.abs d -. t.jitter_ticks) /. 16.0)
      end;
      t.last_arrival_ns <- time_ns;
      t.last_rtp_ts <- pkt.timestamp;
      t.packets_received <- t.packets_received + 1;
      (match t.qoe with
      | Some q -> Qoe.on_packet q ~time_ns ~size:(Packet.wire_size pkt)
      | None -> ());
      remember t pkt.sequence;
      if not t.started then begin
        t.started <- true;
        t.highest_seq <- pkt.sequence
      end
      else begin
        let delta = Packet.seq_sub pkt.sequence t.highest_seq in
        if delta > 0 then begin
          if delta > 1 && delta < 1000 then begin
            t.packets_lost <- t.packets_lost + delta - 1;
            match t.qoe with
            | Some q -> Qoe.on_gap q ~time_ns ~count:(delta - 1)
            | None -> ()
          end;
          t.highest_seq <- pkt.sequence
        end
        else if t.packets_lost > 0 then begin
          (* a late (reordered) packet fills a gap we already counted *)
          t.packets_lost <- t.packets_lost - 1;
          match t.qoe with
          | Some q -> Qoe.on_gap_filled q ~time_ns
          | None -> ()
        end
      end
    end
  end

let packets_received t = t.packets_received
let packets_lost t = t.packets_lost

let loss_rate t =
  let total = t.packets_received + t.packets_lost in
  if total = 0 then 0.0 else float_of_int t.packets_lost /. float_of_int total

let jitter_ms t = t.jitter_ticks /. 48.0
let duplicates t = t.duplicates
