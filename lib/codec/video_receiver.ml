module Dd = Av1.Dd
module Packet = Rtp.Packet
module Timeseries = Scallop_util.Timeseries
module Stats = Scallop_util.Stats
module Qoe = Scallop_obs.Qoe

(* Assembly state for one frame. *)
type frame_state = {
  template_id : int;
  mutable seqs : int list;  (** sequence numbers received for this frame *)
  mutable got_start : bool;
  mutable got_end : bool;
  mutable bytes : int;
  mutable keyframe : bool;
}

type gap = {
  seq : int;
  noticed_at : int;
  mutable attempts : int;
  mutable last_nack : int;
}

type t = {
  ssrc : int;
  nack_delay_ns : int;
  pli_timeout_ns : int;
  (* sequence tracking *)
  mutable started : bool;
  mutable highest_seq : int;
  seq_to_frame : (int, int) Hashtbl.t;  (** recent seq -> frame number *)
  seq_ring : int array;  (** insertion ring, for pruning seq_to_frame *)
  mutable seq_ring_count : int;
  mutable gaps : gap list;
  (* frame assembly *)
  frames : (int, frame_state) Hashtbl.t;
  waiting : (int, frame_state) Hashtbl.t;
      (** complete frames whose reference has not been decoded yet (e.g.
          the reference is being retransmitted) *)
  decoded : (int, unit) Hashtbl.t;
  mutable broken : bool;
  mutable broken_since : int;
  mutable last_pli : int;
  mutable decoded_any : bool;
  mutable last_decode_time : int;
  mutable first_packet_at : int;
  (* jitter *)
  mutable last_arrival_ns : int;
  mutable last_rtp_ts : int;
  mutable jitter_ticks : float;  (** RFC 3550 estimate in 90 kHz ticks *)
  (* statistics *)
  mutable frames_decoded : int;
  mutable frames_incomplete : int;
  mutable frames_undecodable : int;
  mutable freezes : int;
  mutable nacks_sent : int;
  mutable duplicates : int;
  mutable packets_received : int;
  mutable bytes_received : int;
  fps_series : Timeseries.t;
  bitrate_series : Timeseries.t;
  jitter_bins : (int, Stats.Samples.t) Hashtbl.t;
  mouth_to_ear : Stats.Samples.t;
  capture_ts : (int, int) Hashtbl.t;  (** frame -> capture time (ns, from RTP ts) *)
  mutable qoe : Qoe.t option;  (** per-stream QoE collector, attached by the client *)
}

(* A decode gap longer than this counts as a playback stall for QoE. The
   floor must clear the legitimate T0-only cadence (one frame per 133 ms
   when rate adaptation drops both enhancement layers) plus jitter. *)
let stall_threshold_ns = 250_000_000

let seq_window_size = 2048

let create ?(nack_delay_ns = 30_000_000) ?(pli_timeout_ns = 500_000_000) ~ssrc () =
  {
    ssrc;
    nack_delay_ns;
    pli_timeout_ns;
    started = false;
    highest_seq = 0;
    seq_to_frame = Hashtbl.create 512;
    seq_ring = Array.make seq_window_size (-1);
    seq_ring_count = 0;
    gaps = [];
    frames = Hashtbl.create 64;
    waiting = Hashtbl.create 16;
    decoded = Hashtbl.create 256;
    broken = false;
    broken_since = 0;
    last_pli = min_int / 2;
    decoded_any = false;
    last_decode_time = 0;
    first_packet_at = 0;
    last_arrival_ns = 0;
    last_rtp_ts = 0;
    jitter_ticks = 0.0;
    frames_decoded = 0;
    frames_incomplete = 0;
    frames_undecodable = 0;
    freezes = 0;
    nacks_sent = 0;
    duplicates = 0;
    packets_received = 0;
    bytes_received = 0;
    fps_series = Timeseries.create ~bin_ns:1_000_000_000;
    bitrate_series = Timeseries.create ~bin_ns:1_000_000_000;
    jitter_bins = Hashtbl.create 64;
    mouth_to_ear = Stats.Samples.create ();
    capture_ts = Hashtbl.create 64;
    qoe = None;
  }

let set_qoe t q = t.qoe <- Some q
let qoe t = t.qoe

(* --- jitter (RFC 3550 §6.4.1, 90 kHz video clock) ----------------------- *)

let ticks_per_ns = 90_000.0 /. 1e9

let update_jitter t ~time_ns ~rtp_ts =
  if t.packets_received > 1 then begin
    let arrival_ticks = float_of_int (time_ns - t.last_arrival_ns) *. ticks_per_ns in
    let d = arrival_ticks -. float_of_int (rtp_ts - t.last_rtp_ts) in
    t.jitter_ticks <- t.jitter_ticks +. ((Float.abs d -. t.jitter_ticks) /. 16.0)
  end;
  t.last_arrival_ns <- time_ns;
  t.last_rtp_ts <- rtp_ts;
  let ms = t.jitter_ticks /. 90.0 in
  let bin = time_ns / 1_000_000_000 in
  let samples =
    match Hashtbl.find_opt t.jitter_bins bin with
    | Some s -> s
    | None ->
        let s = Stats.Samples.create () in
        Hashtbl.replace t.jitter_bins bin s;
        s
  in
  Stats.Samples.observe samples ms

(* --- dependency structure (paper Fig. 9) --------------------------------

   Template ids and the frame they reference, as a frame-number delta in
   the full 30 fps stream: template 0 (key) none; 1 (T0) -4; 2 (T1) -2;
   3 (T2, cycle pos 1) -1; 4 (T2, cycle pos 3) -1. *)
let reference_delta = function
  | 0 -> None
  | 1 -> Some 4
  | 2 -> Some 2
  | 3 -> Some 1
  | 4 -> Some 1
  | _ -> None

let dependencies_met t fs ~frame_number =
  if fs.keyframe then true
  else
    match reference_delta fs.template_id with
    | None -> true
    | Some delta ->
        (* The referenced frame must have been decoded. When the SFU drops
           enhancement layers the reference of a surviving frame is always
           another surviving frame (T2 frames are never references), so
           checking the direct reference is sufficient. *)
        Hashtbl.mem t.decoded ((frame_number - delta) land 0xFFFF)

(* --- frame assembly ------------------------------------------------------ *)

let contiguous seqs =
  let sorted = List.sort_uniq compare seqs in
  match sorted with
  | [] -> false
  | first :: _ ->
      (* handle 16-bit wraparound by normalizing against the first seq *)
      let norm = List.map (fun s -> Packet.seq_sub s first) (List.tl sorted) in
      let rec check expected = function
        | [] -> true
        | d :: rest -> d = expected && check (expected + 1) rest
      in
      check 1 norm

(* Temporal layer actually delivered by a decoded frame: templates 0
   (key) and 1 are T0, 2 is T1, 3 and 4 are T2 (paper Fig. 9). *)
let layer_of_template = function 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let mark_decoded t ~time_ns ~frame_number fs =
  (match Hashtbl.find_opt t.capture_ts frame_number with
  | Some captured_ns ->
      Hashtbl.remove t.capture_ts frame_number;
      let ms = float_of_int (time_ns - captured_ns) /. 1e6 in
      Stats.Samples.observe t.mouth_to_ear ms;
      (match t.qoe with
      | Some q -> Qoe.on_mouth_to_ear q ~time_ns ~ms
      | None -> ())
  | None -> ());
  (match t.qoe with
  | Some q ->
      (* a long decode gap is a playback stall, visible only now that the
         next frame finally landed; skip while broken — the open freeze
         interval already covers that span *)
      if
        t.decoded_any && (not t.broken)
        && time_ns - t.last_decode_time > stall_threshold_ns
      then Qoe.on_stall q ~from_ns:t.last_decode_time ~until_ns:time_ns;
      Qoe.on_frame q ~time_ns ~layer:(layer_of_template fs.template_id)
  | None -> ());
  Hashtbl.replace t.decoded frame_number ();
  (* prune the decoded set to a window *)
  Hashtbl.remove t.decoded ((frame_number - 256) land 0xFFFF);
  t.frames_decoded <- t.frames_decoded + 1;
  t.decoded_any <- true;
  t.last_decode_time <- time_ns;
  Timeseries.incr t.fps_series time_ns;
  if fs.keyframe && t.broken then begin
    t.broken <- false;
    match t.qoe with
    | Some q -> Qoe.on_freeze_end q ~time_ns
    | None -> ()
  end

(* Frames whose reference decodes later (it was being retransmitted, or
   arrived out of order) park in [waiting] and are retried after every
   successful decode; hopeless ones are evicted once the stream has moved
   a window past them. *)
let waiting_window = 64

let rec drain_waiting t ~time_ns =
  let candidates =
    Hashtbl.fold (fun fn fs acc -> (fn, fs) :: acc) t.waiting []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let progressed = ref false in
  List.iter
    (fun (frame_number, fs) ->
      if (not t.broken) || fs.keyframe then
        if dependencies_met t fs ~frame_number then begin
          Hashtbl.remove t.waiting frame_number;
          mark_decoded t ~time_ns ~frame_number fs;
          progressed := true
        end)
    candidates;
  if !progressed then drain_waiting t ~time_ns

let evict_stale_waiting t ~newest_frame =
  Hashtbl.iter
    (fun fn _ ->
      let age = (newest_frame - fn) land 0xFFFF in
      if age > waiting_window && age < 0x8000 then begin
        Hashtbl.remove t.waiting fn;
        t.frames_undecodable <- t.frames_undecodable + 1
      end)
    (Hashtbl.copy t.waiting)

let try_decode t ~time_ns ~frame_number =
  match Hashtbl.find_opt t.frames frame_number with
  | None -> ()
  | Some fs ->
      if fs.got_start && fs.got_end && contiguous fs.seqs then begin
        Hashtbl.remove t.frames frame_number;
        if t.broken && not fs.keyframe then t.frames_undecodable <- t.frames_undecodable + 1
        else if dependencies_met t fs ~frame_number then begin
          mark_decoded t ~time_ns ~frame_number fs;
          drain_waiting t ~time_ns
        end
        else begin
          Hashtbl.replace t.waiting frame_number fs;
          evict_stale_waiting t ~newest_frame:frame_number
        end
      end

let freeze t ~time_ns =
  if not t.broken then begin
    t.broken <- true;
    t.broken_since <- time_ns;
    t.freezes <- t.freezes + 1;
    match t.qoe with
    | Some q -> Qoe.on_freeze_begin q ~time_ns
    | None -> ()
  end

(* --- gap / NACK management ----------------------------------------------- *)

let note_gaps t ~time_ns ~from_seq ~to_seq =
  (* sequence numbers strictly between the old highest and the new arrival *)
  let missing = Packet.seq_sub to_seq from_seq - 1 in
  if missing > 0 && missing < 1000 then begin
    let gaps =
      List.init missing (fun i ->
          { seq = Packet.seq_add from_seq (i + 1); noticed_at = time_ns; attempts = 0;
            last_nack = 0 })
    in
    t.gaps <- t.gaps @ gaps;
    match t.qoe with
    | Some q -> Qoe.on_gap q ~time_ns ~count:missing
    | None -> ()
  end

let clear_gap t ~time_ns seq =
  let before = List.length t.gaps in
  t.gaps <- List.filter (fun g -> g.seq <> seq) t.gaps;
  if List.length t.gaps < before then
    match t.qoe with
    | Some q -> Qoe.on_gap_filled q ~time_ns
    | None -> ()

let remember_seq t seq =
  let slot = t.seq_ring_count mod seq_window_size in
  let evicted = t.seq_ring.(slot) in
  if evicted >= 0 then Hashtbl.remove t.seq_to_frame evicted;
  t.seq_ring.(slot) <- seq;
  t.seq_ring_count <- t.seq_ring_count + 1

(* --- main entry ---------------------------------------------------------- *)

let receive t ~time_ns (pkt : Packet.t) =
  if pkt.ssrc <> t.ssrc then ()
  else begin
    t.packets_received <- t.packets_received + 1;
    let size = Packet.wire_size pkt in
    t.bytes_received <- t.bytes_received + size;
    (match t.qoe with
    | Some q -> Qoe.on_packet q ~time_ns ~size
    | None -> ());
    Timeseries.add t.bitrate_series time_ns (float_of_int size);
    update_jitter t ~time_ns ~rtp_ts:pkt.timestamp;
    let dd =
      match Packet.find_extension pkt Dd.extension_id with
      | Some data -> ( try Some (Dd.parse data) with Rtp.Wire.Parse_error _ -> None)
      | None -> None
    in
    match dd with
    | None -> ()
    | Some dd -> (
        match Hashtbl.find_opt t.seq_to_frame pkt.sequence with
        | Some prev_frame when prev_frame <> dd.frame_number ->
            (* Same sequence number, different frame: broken rewrite. This
               is the catastrophic case of §6.2 — decoder state corrupts. *)
            t.duplicates <- t.duplicates + 1;
            (match t.qoe with
            | Some q -> Qoe.on_duplicate q ~time_ns
            | None -> ());
            freeze t ~time_ns
        | Some _ ->
            (* plain retransmission duplicate: harmless *)
            t.duplicates <- t.duplicates + 1;
            (match t.qoe with
            | Some q -> Qoe.on_duplicate q ~time_ns
            | None -> ())
        | None ->
            Hashtbl.replace t.seq_to_frame pkt.sequence dd.frame_number;
            remember_seq t pkt.sequence;
            if not t.started then begin
              t.started <- true;
              t.first_packet_at <- time_ns;
              t.highest_seq <- pkt.sequence
            end
            else if Packet.seq_newer pkt.sequence t.highest_seq then begin
              note_gaps t ~time_ns ~from_seq:t.highest_seq ~to_seq:pkt.sequence;
              t.highest_seq <- pkt.sequence
            end
            else clear_gap t ~time_ns pkt.sequence;
            let fs =
              match Hashtbl.find_opt t.frames dd.frame_number with
              | Some fs -> fs
              | None ->
                  let fs =
                    {
                      template_id = dd.template_id;
                      seqs = [];
                      got_start = false;
                      got_end = false;
                      bytes = 0;
                      keyframe = false;
                    }
                  in
                  Hashtbl.replace t.frames dd.frame_number fs;
                  fs
            in
            (* 90 kHz ticks back to capture time for mouth-to-ear *)
            if not (Hashtbl.mem t.capture_ts dd.frame_number) then
              Hashtbl.replace t.capture_ts dd.frame_number (pkt.timestamp * 11111);
            fs.seqs <- pkt.sequence :: fs.seqs;
            fs.bytes <- fs.bytes + Bytes.length pkt.payload;
            if dd.start_of_frame then fs.got_start <- true;
            if dd.end_of_frame then fs.got_end <- true;
            if dd.structure <> None then fs.keyframe <- true;
            try_decode t ~time_ns ~frame_number:dd.frame_number)
  end

(* A gap is retried up to [max_nack_attempts] times (a retransmission can
   itself be lost), with a back-off of several nack-delays between tries. *)
let max_nack_attempts = 3

let poll_nacks t ~time_ns =
  let due g =
    if g.attempts = 0 then time_ns - g.noticed_at >= t.nack_delay_ns
    else g.attempts < max_nack_attempts && time_ns - g.last_nack >= 4 * t.nack_delay_ns
  in
  let fired = List.filter due t.gaps in
  List.iter
    (fun g ->
      g.attempts <- g.attempts + 1;
      g.last_nack <- time_ns)
    fired;
  (* drop gaps that exhausted their retries a while ago *)
  t.gaps <-
    List.filter
      (fun g ->
        g.attempts < max_nack_attempts || time_ns - g.last_nack < 4 * t.nack_delay_ns)
      t.gaps;
  let seqs = List.map (fun g -> g.seq) fired in
  t.nacks_sent <- t.nacks_sent + List.length seqs;
  seqs

let poll_pli t ~time_ns =
  (* starved covers both a stalled decoder and a receiver that joined
     mid-stream and is still waiting for its first key frame *)
  let last_progress = if t.decoded_any then t.last_decode_time else t.first_packet_at in
  let starved = t.started && time_ns - last_progress > t.pli_timeout_ns in
  let broken_long = t.broken && time_ns - t.broken_since > t.pli_timeout_ns in
  if (starved || broken_long) && time_ns - t.last_pli > t.pli_timeout_ns then begin
    t.last_pli <- time_ns;
    true
  end
  else false

let frames_decoded t = t.frames_decoded
let frames_incomplete t = Hashtbl.length t.frames + t.frames_incomplete
let frames_undecodable t = t.frames_undecodable
let freezes t = t.freezes
let frozen t = t.broken
let nacks_sent t = t.nacks_sent
let duplicates t = t.duplicates
let packets_received t = t.packets_received
let bytes_received t = t.bytes_received
let jitter_ms t = t.jitter_ticks /. 90.0
let fps_series t = t.fps_series
let bitrate_series t = t.bitrate_series

let mouth_to_ear_ms t ~p = Stats.Samples.percentile t.mouth_to_ear p

let jitter_percentile_series t ~p =
  Hashtbl.fold (fun bin samples acc -> (bin, samples) :: acc) t.jitter_bins []
  |> List.sort compare
  |> List.map (fun (bin, samples) -> (float_of_int bin, Stats.Samples.percentile samples p))
  |> Array.of_list
