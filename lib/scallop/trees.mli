(** Replication-tree construction for the Tofino PRE (paper §6.1, Fig. 11).

    Four designs, trading replication-engine resources against rate-
    adaptation granularity:

    - {b Two_party}: no tree at all; the single peer's media is unicast.
    - {b Nra} (non-rate-adapted): one tree per [m = 2] meetings; one L1
      node per participant, tagged with its meeting's L1-XID so packets of
      one meeting prune the other's branches; senders are suppressed from
      their own traffic by L2 (RID, egress-port) exclusion.
    - {b Ra_r} (receiver-specific rate adaptation): [q = 3] trees per
      [m = 2] meetings, one per quality. A packet is steered to the tree
      of {e its own} temporal layer; a receiver's node is a member of
      exactly the trees at or below the receiver's decode target, so layer
      suppression happens by tree membership.
    - {b Ra_sr} (sender-receiver-specific): per meeting, senders are
      paired; each pair gets [q] trees holding one L1 node per
      (sender, receiver) with the sender's tag as L1-XID.

    The module also implements the paper's disruption-free migration:
    build the new design's trees, flip the routing metadata, then free the
    old trees. *)

type t

type design = Two_party | Nra | Ra_r | Ra_sr

val meetings_per_tree : int
(** m = 2. *)

val qualities : int
(** q = 3 (L1T3 temporal layers). *)

val create : Tofino.Pre.t -> t

type handle
(** One registered meeting. *)

exception Capacity of string
(** Raised when the PRE cannot fit the requested design
    (wraps {!Tofino.Pre.Resource_exhausted}). *)

val register_meeting :
  t -> design -> participants:(int * int) list -> senders:int list -> handle
(** [register_meeting t design ~participants ~senders] with
    [participants = (participant_id, egress_port) list]. Two_party
    requires exactly two participants. *)

val unregister_meeting : t -> handle -> unit

val design_of : handle -> design

val add_participant : t -> handle -> int * int -> sends:bool -> unit
val remove_participant : t -> handle -> int -> unit

val set_receiver_target :
  t -> handle -> receiver:int -> Av1.Dd.decode_target -> unit
(** Receiver-specific target (Ra_r semantics). In Ra_sr, applies the
    target to this receiver across all senders. *)

val set_pair_target :
  t -> handle -> sender:int -> receiver:int -> Av1.Dd.decode_target -> unit
(** Sender-specific target; only meaningful under Ra_sr.
    @raise Invalid_argument under other designs. *)

val receiver_target : t -> handle -> receiver:int -> Av1.Dd.decode_target

val migrate : t -> handle -> design -> handle
(** Paper's three-step migration: the returned handle replaces the old
    one; media routed during the call never sees a missing tree. *)

type route =
  | Unicast of { port : int; receiver : int }
  | Replicate of { mgid : int; l1_xid : int; rid : int; l2_xid : int }
  | No_receivers

val route_media :
  t -> handle -> sender:int -> layer:Av1.Dd.temporal_layer -> route
(** The PRE invocation metadata for a media packet of [layer] from
    [sender] (paper: assigned in the ingress pipeline). *)

val receiver_of_replica : t -> handle -> mgid:int -> rid:int -> int option
(** Egress-side lookup: which participant a replica addresses. *)

val participants : handle -> (int * int) list
val senders : handle -> int list

(** {1 Introspection (read-only, for the {!Scallop_analysis} snapshot layer)} *)

val handle_id : handle -> int
(** Stable identifier of this registration; a data-plane uplink's
    [meeting] handle can be matched against the agent's by id. *)

val handle_mgids : handle -> int list
(** Every MGID this meeting's media can be steered to. Shared-group
    designs (NRA/RA-R) aggregate [meetings_per_tree] meetings per tree,
    so two handles may legitimately report the same MGID. *)

type node_binding = {
  nb_node : Tofino.Pre.node_id;
  nb_receiver : int;
  nb_sender : int option;  (** [Some s] only under Ra_sr *)
  nb_quality : int;
}

val node_bindings : handle -> node_binding list
(** Every L1 node this meeting owns, with the (sender,) receiver and
    quality tree it was built for. Empty for Two_party. *)

val l2_xid_refs : t -> (int * int) list
(** Programmed L2-XIDs with their reference counts (one per live
    participant registration excluding on that port). *)
