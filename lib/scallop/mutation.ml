type t =
  | Heal_without_quiesce
  | Corrupt_replay
  | Reverse_batch
  | Exec_while_offline
  | Skip_fencing_check

let all =
  [
    Heal_without_quiesce;
    Corrupt_replay;
    Reverse_batch;
    Exec_while_offline;
    Skip_fencing_check;
  ]

let name = function
  | Heal_without_quiesce -> "heal-without-quiesce"
  | Corrupt_replay -> "corrupt-replay"
  | Reverse_batch -> "reverse-batch"
  | Exec_while_offline -> "exec-while-offline"
  | Skip_fencing_check -> "skip-fencing-check"

let of_name s = List.find_opt (fun m -> name m = s) all

let describe = function
  | Heal_without_quiesce ->
      "revert the heal-race fix: heal on pong even while a blocking call \
       is in flight on the channel"
  | Corrupt_replay ->
      "answer replayed requests with a fresh Error instead of the cached \
       reply (breaks replay-cache byte-identity)"
  | Reverse_batch -> "execute Batch ops in reverse submission order"
  | Exec_while_offline ->
      "keep executing requests while the agent process is crashed"
  | Skip_fencing_check ->
      "ignore fencing epochs everywhere: the journal accepts appends \
       from a deposed primary and agents execute stale-fenced requests"

let enabled : (t, unit) Hashtbl.t = Hashtbl.create 4

let enable m = Hashtbl.replace enabled m ()
let disable m = Hashtbl.remove enabled m
let disable_all () = Hashtbl.reset enabled
let on m = Hashtbl.mem enabled m
