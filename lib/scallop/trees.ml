module Pre = Tofino.Pre
module Dd = Av1.Dd

type design = Two_party | Nra | Ra_r | Ra_sr

let meetings_per_tree = 2
let qualities = 3

exception Capacity of string

(* Participant index inside a meeting slot; RIDs must be unique per tree, so
   slot k uses the range [k * rid_stride, (k+1) * rid_stride). *)
let rid_stride = 1024

type group = {
  g_design : design;
  mgids : int array;  (** 1 for Nra; [qualities] for Ra_r *)
  mutable slot_used : bool array;  (** length [meetings_per_tree] *)
}

type ra_sr_pair = {
  pair_mgids : int array;  (** per quality *)
  mutable pair_senders : int list;
      (** 1 or 2 sender ids; tag = position + 1, so positions are stable:
          a removed sender becomes a [-1] hole, refilled before new pairs
          open *)
}

type impl =
  | I_two_party
  | I_shared of {
      group : group;
      slot : int;
      pidx : (int, int) Hashtbl.t;  (** participant -> index *)
      nodes : (int * int, Pre.node_id) Hashtbl.t;  (** (participant, quality) -> node *)
    }
  | I_ra_sr of {
      mutable pairs : ra_sr_pair list;
      ridx : (int, int) Hashtbl.t;  (** participant -> receiver index *)
      nodes : (int * int * int, Pre.node_id) Hashtbl.t;
          (** (sender, receiver, quality) -> node *)
    }

type handle = {
  id : int;
  mutable h_design : design;
  mutable h_participants : (int * int) list;
  mutable h_senders : int list;
  targets : (int, Dd.decode_target) Hashtbl.t;  (** receiver -> target *)
  pair_targets : (int * int, Dd.decode_target) Hashtbl.t;  (** (sender, receiver) *)
  mutable impl : impl;
  mutable next_pidx : int;
  mutable free_pidx : int list;  (** indices reclaimed from removed participants *)
  mutable rev : int array;
      (** index -> participant (-1 = hole): the inverse of the impl's
          pidx/ridx table, consulted once per fan-out replica on the data
          path — an O(participants) fold there would make every packet
          O(receivers x participants) *)
  mutable rev_valid : bool;
}

type t = {
  pre : Pre.t;
  mutable next_mgid : int;
  mutable free_mgids : int list;
  mutable half_open : (design * group) list;
  mutable next_handle : int;
  l2_refs : (int, int ref) Hashtbl.t;
      (** L2-XID -> number of live L1 nodes excluding on it; the PRE entry
          is released when the count drops to zero *)
}

let create pre =
  {
    pre;
    next_mgid = 1;
    free_mgids = [];
    half_open = [];
    next_handle = 0;
    l2_refs = Hashtbl.create 64;
  }

let alloc_mgid t =
  match t.free_mgids with
  | m :: rest ->
      t.free_mgids <- rest;
      m
  | [] ->
      let m = t.next_mgid in
      t.next_mgid <- t.next_mgid + 1;
      m

let free_mgid t m = t.free_mgids <- m :: t.free_mgids

let wrap_capacity f = try f () with Pre.Resource_exhausted what -> raise (Capacity what)

let port_of h p =
  match List.assoc_opt p h.h_participants with
  | Some port -> port
  | None -> invalid_arg (Printf.sprintf "Trees: participant %d not in meeting %d" p h.id)

let layer_index = Dd.layer_index

let target_of h receiver =
  Option.value (Hashtbl.find_opt h.targets receiver) ~default:Dd.DT_30fps

let pair_target_of h sender receiver =
  match Hashtbl.find_opt h.pair_targets (sender, receiver) with
  | Some dt -> dt
  | None -> target_of h receiver

(* Ensure an L2 XID exists that excludes exactly this port. Reference-
   counted per participant registration: migration registers the new
   design's nodes before the old ones are torn down, so the count covers
   the overlap and the PRE entry survives exactly as long as some tree
   membership needs it. *)
let ensure_l2_xid t port =
  match Hashtbl.find_opt t.l2_refs port with
  | Some r -> incr r
  | None ->
      Hashtbl.replace t.l2_refs port (ref 1);
      Pre.set_l2_xid_ports t.pre ~xid:port ~ports:[ port ]

let release_l2_xid t port =
  match Hashtbl.find_opt t.l2_refs port with
  | None -> ()
  | Some r ->
      decr r;
      if !r <= 0 then begin
        Hashtbl.remove t.l2_refs port;
        Pre.remove_l2_xid t.pre ~xid:port
      end

(* --- shared-group designs (Nra, Ra_r) ------------------------------------ *)

let group_tree_count = function Nra -> 1 | Ra_r -> qualities | _ -> assert false

(* Which quality-trees a receiver belongs to, given its target. Tree 0
   carries T0 packets (everyone needs those); tree [i] only members whose
   target index >= i. Nra has the single tree 0. *)
let member_trees design target_idx =
  match design with
  | Nra -> [ 0 ]
  | Ra_r -> List.filter (fun i -> i <= target_idx) [ 0; 1; 2 ]
  | _ -> assert false

let take_slot t design =
  let rec find = function
    | [] -> None
    | (d, g) :: rest when d = design -> (
        match Array.to_list g.slot_used |> List.mapi (fun i u -> (i, u)) |> List.find_opt (fun (_, u) -> not u) with
        | Some (slot, _) -> Some (g, slot, rest)
        | None -> find rest)
    | _ :: rest -> find rest
  in
  match find t.half_open with
  | Some (g, slot, _) ->
      g.slot_used.(slot) <- true;
      if Array.for_all Fun.id g.slot_used then
        t.half_open <- List.filter (fun (_, g') -> g' != g) t.half_open;
      (g, slot)
  | None ->
      wrap_capacity (fun () ->
          let n = group_tree_count design in
          let mgids = Array.init n (fun _ -> alloc_mgid t) in
          Array.iter (fun m -> Pre.create_tree t.pre ~mgid:m ~nodes:[]) mgids;
          let g = { g_design = design; mgids; slot_used = Array.make meetings_per_tree false } in
          g.slot_used.(0) <- true;
          t.half_open <- (design, g) :: t.half_open;
          (g, 0))

let release_slot t g slot =
  g.slot_used.(slot) <- false;
  if Array.exists Fun.id g.slot_used then begin
    if not (List.exists (fun (_, g') -> g' == g) t.half_open) then
      t.half_open <- (g.g_design, g) :: t.half_open
  end
  else begin
    t.half_open <- List.filter (fun (_, g') -> g' != g) t.half_open;
    Array.iter
      (fun m ->
        Pre.destroy_tree t.pre m;
        free_mgid t m)
      g.mgids
  end

let pidx_of h tbl p =
  match Hashtbl.find_opt tbl p with
  | Some i -> i
  | None ->
      let i =
        match h.free_pidx with
        | i :: rest ->
            h.free_pidx <- rest;
            i
        | [] ->
            if h.next_pidx >= rid_stride then
              raise (Capacity "participants per meeting slot");
            let i = h.next_pidx in
            h.next_pidx <- i + 1;
            i
      in
      Hashtbl.replace tbl p i;
      h.rev_valid <- false;
      i

(* Reclaim a departed participant's index (and thus its RID) for reuse —
   without this, a long-lived meeting with churn exhausts its slot's
   [rid_stride] after 1024 cumulative joins. *)
let free_pidx_of h tbl p =
  match Hashtbl.find_opt tbl p with
  | None -> ()
  | Some i ->
      Hashtbl.remove tbl p;
      h.free_pidx <- i :: h.free_pidx;
      h.rev_valid <- false

let shared_add_participant t h group slot pidx nodes (p, port) =
  ensure_l2_xid t port;
  let idx = pidx_of h pidx p in
  let rid = (slot * rid_stride) + idx in
  let tag = slot + 1 in
  let tidx = Dd.index_of_target (target_of h p) in
  List.iter
    (fun q ->
      wrap_capacity (fun () ->
          let node =
            Pre.create_l1_node t.pre ~rid ~l1_xid:tag ~prune_enabled:true ~ports:[ port ] ()
          in
          Pre.add_node_to_tree t.pre group.mgids.(q) node;
          Hashtbl.replace nodes (p, q) node))
    (member_trees group.g_design tidx)

let shared_remove_participant t group nodes p =
  let released = ref false in
  List.iter
    (fun q ->
      match Hashtbl.find_opt nodes (p, q) with
      | Some node ->
          if not !released then begin
            (* one ensure_l2_xid per registration; release it once, on the
               port this participant's nodes were built for *)
            List.iter (release_l2_xid t) (Pre.node_ports t.pre node);
            released := true
          end;
          Pre.remove_node_from_tree t.pre group.mgids.(q) node;
          Pre.destroy_l1_node t.pre node;
          Hashtbl.remove nodes (p, q)
      | None -> ())
    [ 0; 1; 2 ]

(* --- Ra_sr ----------------------------------------------------------------- *)

let ridx_of h tbl p = pidx_of h tbl p

let ra_sr_pair_of pairs sender =
  List.find_opt (fun pair -> List.mem sender pair.pair_senders) pairs

let ra_sr_node_sync t h (impl_pairs, ridx, nodes) ~sender ~receiver ~port =
  (* ensure the (sender, receiver) node set matches the pair target *)
  match ra_sr_pair_of impl_pairs sender with
  | None -> ()
  | Some pair ->
      let tag =
        match pair.pair_senders with
        | [ s ] when s = sender -> 1
        | [ _; s ] when s = sender -> 2
        | s :: _ when s = sender -> 1
        | _ -> 1
      in
      let target_idx = Dd.index_of_target (pair_target_of h sender receiver) in
      let idx = ridx_of h ridx receiver in
      let rid = (tag * rid_stride) + idx in
      List.iter
        (fun q ->
          let key = (sender, receiver, q) in
          let want = q <= target_idx in
          match (Hashtbl.find_opt nodes key, want) with
          | None, true ->
              wrap_capacity (fun () ->
                  let node =
                    Pre.create_l1_node t.pre ~rid ~l1_xid:tag ~prune_enabled:true
                      ~ports:[ port ] ()
                  in
                  Pre.add_node_to_tree t.pre pair.pair_mgids.(q) node;
                  Hashtbl.replace nodes key node)
          | Some node, false ->
              Pre.remove_node_from_tree t.pre pair.pair_mgids.(q) node;
              Pre.destroy_l1_node t.pre node;
              Hashtbl.remove nodes key
          | None, false | Some _, true -> ())
        [ 0; 1; 2 ]

let ra_sr_add_sender t h (pairs_ref, ridx, nodes) sender =
  (* A sender's tag (and with it the RID range and L1-XID of all its
     nodes) is its *position* in the pair, so positions must stay stable
     across removals: departed senders leave a [-1] hole, refilled here
     before any new pair is opened. *)
  let fill_hole p =
    let filled = ref false in
    p.pair_senders <-
      List.map
        (fun s ->
          if s = -1 && not !filled then begin
            filled := true;
            sender
          end
          else s)
        p.pair_senders
  in
  (match List.find_opt (fun p -> List.mem (-1) p.pair_senders) !pairs_ref with
  | Some p -> fill_hole p
  | None -> (
      match List.find_opt (fun p -> List.length p.pair_senders < 2) !pairs_ref with
      | Some p -> p.pair_senders <- p.pair_senders @ [ sender ]
      | None ->
          wrap_capacity (fun () ->
              let mgids = Array.init qualities (fun _ -> alloc_mgid t) in
              Array.iter (fun m -> Pre.create_tree t.pre ~mgid:m ~nodes:[]) mgids;
              pairs_ref := !pairs_ref @ [ { pair_mgids = mgids; pair_senders = [ sender ] } ])));
  (* add nodes towards every other participant *)
  List.iter
    (fun (r, port) ->
      if r <> sender then
        ra_sr_node_sync t h (!pairs_ref, ridx, nodes) ~sender ~receiver:r ~port)
    h.h_participants

(* --- registration ----------------------------------------------------------- *)

let register_meeting t design ~participants ~senders =
  let h =
    {
      id = t.next_handle;
      h_design = design;
      h_participants = [];
      h_senders = [];
      targets = Hashtbl.create 8;
      pair_targets = Hashtbl.create 8;
      impl = I_two_party;
      next_pidx = 0;
      free_pidx = [];
      rev = [||];
      rev_valid = false;
    }
  in
  t.next_handle <- t.next_handle + 1;
  (match design with
  | Two_party ->
      if List.length participants <> 2 then
        invalid_arg "Trees.register_meeting: Two_party needs exactly 2 participants";
      h.impl <- I_two_party;
      h.h_participants <- participants;
      h.h_senders <- senders
  | Nra | Ra_r ->
      let group, slot = take_slot t design in
      let pidx = Hashtbl.create 8 and nodes = Hashtbl.create 16 in
      h.impl <- I_shared { group; slot; pidx; nodes };
      h.h_senders <- senders;
      List.iter
        (fun (p, port) ->
          h.h_participants <- h.h_participants @ [ (p, port) ];
          shared_add_participant t h group slot pidx nodes (p, port))
        participants
  | Ra_sr ->
      let pairs = ref [] and ridx = Hashtbl.create 8 and nodes = Hashtbl.create 32 in
      h.impl <- I_ra_sr { pairs = []; ridx; nodes };
      h.h_participants <- participants;
      h.h_senders <- [];
      List.iter
        (fun s ->
          h.h_senders <- h.h_senders @ [ s ];
          ra_sr_add_sender t h (pairs, ridx, nodes) s)
        senders;
      h.impl <- I_ra_sr { pairs = !pairs; ridx; nodes });
  h

let unregister_meeting t h =
  match h.impl with
  | I_two_party -> ()
  | I_shared { group; slot; nodes; _ } ->
      List.iter (fun (p, _) -> shared_remove_participant t group nodes p) h.h_participants;
      release_slot t group slot
  | I_ra_sr { pairs; nodes; _ } ->
      Hashtbl.iter
        (fun (sender, _, q) node ->
          match ra_sr_pair_of pairs sender with
          | Some pair ->
              Pre.remove_node_from_tree t.pre pair.pair_mgids.(q) node;
              Pre.destroy_l1_node t.pre node
          | None -> ())
        nodes;
      Hashtbl.reset nodes;
      List.iter
        (fun pair ->
          Array.iter
            (fun m ->
              Pre.destroy_tree t.pre m;
              free_mgid t m)
            pair.pair_mgids)
        pairs

let design_of h = h.h_design

let add_participant t h (p, port) ~sends =
  (match h.impl with
  | I_two_party ->
      if List.length h.h_participants >= 2 then
        invalid_arg "Trees.add_participant: Two_party is full"
  | _ -> ());
  h.h_participants <- h.h_participants @ [ (p, port) ];
  if sends then h.h_senders <- h.h_senders @ [ p ];
  match h.impl with
  | I_two_party -> ()
  | I_shared { group; slot; pidx; nodes } ->
      shared_add_participant t h group slot pidx nodes (p, port)
  | I_ra_sr ({ ridx; nodes; _ } as impl) ->
      (* new participant receives from every existing sender *)
      List.iter
        (fun s ->
          if s <> p then ra_sr_node_sync t h (impl.pairs, ridx, nodes) ~sender:s ~receiver:p ~port)
        h.h_senders;
      if sends then begin
        let pairs_ref = ref impl.pairs in
        ra_sr_add_sender t h (pairs_ref, ridx, nodes) p;
        impl.pairs <- !pairs_ref
      end

let remove_participant t h p =
  h.h_participants <- List.filter (fun (x, _) -> x <> p) h.h_participants;
  h.h_senders <- List.filter (fun x -> x <> p) h.h_senders;
  Hashtbl.remove h.targets p;
  match h.impl with
  | I_two_party -> ()
  | I_shared { group; pidx; nodes; _ } ->
      shared_remove_participant t group nodes p;
      free_pidx_of h pidx p
  | I_ra_sr ({ pairs; ridx; nodes; _ } as impl) ->
      let snapshot = Hashtbl.copy nodes in
      Hashtbl.iter
        (fun (s, r, q) node ->
          if s = p || r = p then begin
            (match ra_sr_pair_of pairs s with
            | Some pair ->
                Pre.remove_node_from_tree t.pre pair.pair_mgids.(q) node;
                Pre.destroy_l1_node t.pre node
            | None -> ());
            Hashtbl.remove nodes (s, r, q)
          end)
        snapshot;
      free_pidx_of h ridx p;
      (* leave a hole so the surviving sender keeps its position — the
         position encodes its tag, i.e. the RID range and L1-XID its
         nodes were created under; compacting the list would make the
         sender's own route exclude its own branches *)
      List.iter
        (fun pair ->
          pair.pair_senders <-
            List.map (fun s -> if s = p then -1 else s) pair.pair_senders)
        pairs;
      let live, dead =
        List.partition (fun pair -> List.exists (fun s -> s >= 0) pair.pair_senders) pairs
      in
      List.iter
        (fun pair -> Array.iter (fun m -> Pre.destroy_tree t.pre m) pair.pair_mgids)
        dead;
      impl.pairs <- live

(* --- targets ------------------------------------------------------------- *)

let resync_receiver t h receiver =
  match h.impl with
  | I_two_party -> ()
  | I_shared { group; slot; pidx; nodes } ->
      if group.g_design = Ra_r then begin
        let port = port_of h receiver in
        shared_remove_participant t group nodes receiver;
        (* re-add with current target; pidx is stable so the RID persists *)
        ignore (pidx_of h pidx receiver);
        shared_add_participant t h group slot pidx nodes (receiver, port)
      end
  | I_ra_sr ({ ridx; nodes; _ } as impl) ->
      let port = port_of h receiver in
      List.iter
        (fun s ->
          if s <> receiver then
            ra_sr_node_sync t h (impl.pairs, ridx, nodes) ~sender:s ~receiver ~port)
        h.h_senders

let set_receiver_target t h ~receiver target =
  Hashtbl.replace h.targets receiver target;
  (match h.impl with
  | I_ra_sr _ ->
      List.iter (fun s -> Hashtbl.replace h.pair_targets (s, receiver) target) h.h_senders
  | _ -> ());
  resync_receiver t h receiver

let set_pair_target t h ~sender ~receiver target =
  (match h.impl with
  | I_ra_sr _ -> ()
  | _ -> invalid_arg "Trees.set_pair_target: meeting is not Ra_sr");
  Hashtbl.replace h.pair_targets (sender, receiver) target;
  resync_receiver t h receiver

let receiver_target _t h ~receiver = target_of h receiver

(* --- routing --------------------------------------------------------------- *)

type route =
  | Unicast of { port : int; receiver : int }
  | Replicate of { mgid : int; l1_xid : int; rid : int; l2_xid : int }
  | No_receivers

let route_media _t h ~sender ~layer =
  match h.impl with
  | I_two_party -> (
      match List.find_opt (fun (p, _) -> p <> sender) h.h_participants with
      | Some (receiver, port) -> Unicast { port; receiver }
      | None -> No_receivers)
  | I_shared { group; slot; pidx; _ } ->
      let q = match group.g_design with Nra -> 0 | _ -> layer_index layer in
      (* the packet's L1-XID names the *other* slot so its branches prune *)
      let other_tag = meetings_per_tree - slot in
      let rid =
        match Hashtbl.find_opt pidx sender with
        | Some idx -> (slot * rid_stride) + idx
        | None -> -1
      in
      let l2_xid = try port_of h sender with Invalid_argument _ -> 0 in
      Replicate { mgid = group.mgids.(q); l1_xid = other_tag; rid; l2_xid }
  | I_ra_sr { pairs; _ } -> (
      match ra_sr_pair_of pairs sender with
      | None -> No_receivers
      | Some pair ->
          let q = layer_index layer in
          let tag =
            match pair.pair_senders with
            | [ a; _ ] when a = sender -> 1
            | [ _; b ] when b = sender -> 2
            | _ -> 1
          in
          let other_tag = 3 - tag in
          Replicate { mgid = pair.pair_mgids.(q); l1_xid = other_tag; rid = -1; l2_xid = 0 })

(* Lazily (re)built inverse of the handle's participant-index table;
   invalidated by [pidx_of]/[free_pidx_of]. The indices are injective, so
   the array holds at most one participant per slot. *)
let rev_of h tbl =
  if not h.rev_valid then begin
    if Array.length h.rev < rid_stride then h.rev <- Array.make rid_stride (-1)
    else Array.fill h.rev 0 rid_stride (-1);
    Hashtbl.iter (fun p i -> h.rev.(i) <- p) tbl;
    h.rev_valid <- true
  end;
  h.rev

let receiver_of_replica _t h ~mgid ~rid =
  ignore mgid;
  match h.impl with
  | I_two_party -> None
  | I_shared { slot; pidx; _ } ->
      if rid / rid_stride <> slot then None
      else
        let p = (rev_of h pidx).(rid mod rid_stride) in
        if p < 0 then None else Some p
  | I_ra_sr { ridx; _ } ->
      let p = (rev_of h ridx).(rid mod rid_stride) in
      if p < 0 then None else Some p

let participants h = h.h_participants
let senders h = h.h_senders

(* --- introspection (snapshot layer) ---------------------------------------- *)

let handle_id h = h.id

let handle_mgids h =
  match h.impl with
  | I_two_party -> []
  | I_shared { group; _ } -> Array.to_list group.mgids
  | I_ra_sr { pairs; _ } ->
      List.concat_map (fun pair -> Array.to_list pair.pair_mgids) pairs

type node_binding = {
  nb_node : Pre.node_id;
  nb_receiver : int;
  nb_sender : int option;  (** [Some s] only under Ra_sr *)
  nb_quality : int;
}

let node_bindings h =
  match h.impl with
  | I_two_party -> []
  | I_shared { nodes; _ } ->
      Hashtbl.fold
        (fun (p, q) node acc ->
          { nb_node = node; nb_receiver = p; nb_sender = None; nb_quality = q } :: acc)
        nodes []
  | I_ra_sr { nodes; _ } ->
      Hashtbl.fold
        (fun (s, r, q) node acc ->
          { nb_node = node; nb_receiver = r; nb_sender = Some s; nb_quality = q } :: acc)
        nodes []

let l2_xid_refs t = Hashtbl.fold (fun xid r acc -> (xid, !r) :: acc) t.l2_refs []

let migrate t h design =
  (* step 1: build the new trees; step 2 is the caller swapping handles;
     step 3: free the old trees *)
  let h' = register_meeting t design ~participants:h.h_participants ~senders:h.h_senders in
  Hashtbl.iter (fun r dt -> set_receiver_target t h' ~receiver:r dt) h.targets;
  if design = Ra_sr then
    Hashtbl.iter (fun (s, r) dt -> set_pair_target t h' ~sender:s ~receiver:r dt) h.pair_targets;
  unregister_meeting t h;
  h'
