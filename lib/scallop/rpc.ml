module Addr = Scallop_util.Addr
module Dd = Av1.Dd

type request =
  | New_meeting of { two_party : bool }
  | Register_participant of {
      meeting : int;
      participant : int;
      egress_port : int;
      sends : bool;
    }
  | Register_uplink of {
      meeting : int;
      sender : int;
      port : int;
      video_ssrc : int;
      audio_ssrc : int;
      full_bitrate : int;
      renditions : (int * int) array;
    }
  | Register_leg of {
      meeting : int;
      sender : int;
      uplink_port : int option;
      receiver : int;
      leg_port : int;
      dst : Addr.t;
      adaptive : bool;
    }
  | Remove_participant of { meeting : int; participant : int }
  | Unregister_uplink of { meeting : int; port : int }
  | Set_pair_target of {
      meeting : int;
      sender : int;
      receiver : int;
      target : Dd.decode_target;
    }
  | Ping
  | Reset
  | Batch of request list
  | Fenced of { fence : int; op : request }

type reply =
  | Meeting_created of { meeting : int }
  | Ack
  | Pong of { epoch : int }
  | Error of string
  | Batch_reply of reply list
  | Stale_fence of { fence : int }

type message =
  | Request of { seq : int; request : request }
  | Reply of { seq : int; reply : reply }

exception Decode_error of string

let rec request_name = function
  | New_meeting _ -> "new-meeting"
  | Register_participant _ -> "register-participant"
  | Register_uplink _ -> "register-uplink"
  | Register_leg _ -> "register-leg"
  | Remove_participant _ -> "remove-participant"
  | Unregister_uplink _ -> "unregister-uplink"
  | Set_pair_target _ -> "set-pair-target"
  | Ping -> "ping"
  | Reset -> "reset"
  | Batch _ -> "batch"
  | Fenced { op; _ } -> request_name op

(* --- wire codec --------------------------------------------------------------

   Space-separated text, one message per datagram: a direction tag, the
   sequence number, the operation name, then the operation's fields in
   declaration order. Textual like the SDP path so control traffic is
   inspectable in traces and its wire size is honest. *)

let bool_field b = if b then "1" else "0"

(* Frame one sub-message inside a batch: retokenize its encoding (an
   [Error] reply may itself contain spaces) and prefix the token count,
   so the flat outer field list parses unambiguously. Splitting the
   joined fields is an isomorphism, so round-trips are exact. *)
let framed fields =
  let tokens = String.split_on_char ' ' (String.concat " " fields) in
  string_of_int (List.length tokens) :: tokens

let rec encode_request r =
  match r with
  | New_meeting { two_party } -> [ "new-meeting"; bool_field two_party ]
  | Register_participant { meeting; participant; egress_port; sends } ->
      [
        "register-participant";
        string_of_int meeting;
        string_of_int participant;
        string_of_int egress_port;
        bool_field sends;
      ]
  | Register_uplink
      { meeting; sender; port; video_ssrc; audio_ssrc; full_bitrate; renditions } ->
      [
        "register-uplink";
        string_of_int meeting;
        string_of_int sender;
        string_of_int port;
        string_of_int video_ssrc;
        string_of_int audio_ssrc;
        string_of_int full_bitrate;
        string_of_int (Array.length renditions);
      ]
      @ List.concat_map
          (fun (ssrc, bitrate) -> [ string_of_int ssrc; string_of_int bitrate ])
          (Array.to_list renditions)
  | Register_leg { meeting; sender; uplink_port; receiver; leg_port; dst; adaptive } ->
      [
        "register-leg";
        string_of_int meeting;
        string_of_int sender;
        string_of_int (Option.value uplink_port ~default:(-1));
        string_of_int receiver;
        string_of_int leg_port;
        string_of_int dst.Addr.ip;
        string_of_int dst.Addr.port;
        bool_field adaptive;
      ]
  | Remove_participant { meeting; participant } ->
      [ "remove-participant"; string_of_int meeting; string_of_int participant ]
  | Unregister_uplink { meeting; port } ->
      [ "unregister-uplink"; string_of_int meeting; string_of_int port ]
  | Set_pair_target { meeting; sender; receiver; target } ->
      [
        "set-pair-target";
        string_of_int meeting;
        string_of_int sender;
        string_of_int receiver;
        string_of_int (Dd.index_of_target target);
      ]
  | Ping -> [ "ping" ]
  | Reset -> [ "reset" ]
  | Batch ops ->
      "batch"
      :: string_of_int (List.length ops)
      :: List.concat_map (fun op -> framed (encode_request op)) ops
  | Fenced { fence; op } -> "fenced" :: string_of_int fence :: encode_request op

let rec encode_reply = function
  | Meeting_created { meeting } -> [ "meeting-created"; string_of_int meeting ]
  | Ack -> [ "ack" ]
  | Pong { epoch } -> [ "pong"; string_of_int epoch ]
  | Error msg -> [ "error"; msg ]
  | Stale_fence { fence } -> [ "stale-fence"; string_of_int fence ]
  | Batch_reply replies ->
      "batch-reply"
      :: string_of_int (List.length replies)
      :: List.concat_map (fun r -> framed (encode_reply r)) replies

let encode msg =
  let fields =
    match msg with
    | Request { seq; request } -> "req" :: string_of_int seq :: encode_request request
    | Reply { seq; reply } -> "rep" :: string_of_int seq :: encode_reply reply
  in
  Bytes.of_string (String.concat " " fields)

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let int_field name s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad %s field %S" name s

let bool_of_field name = function
  | "0" -> false
  | "1" -> true
  | s -> fail "bad %s field %S" name s

(* Parse [count] token-count-prefixed groups, consuming the whole list
   (a batch is always the last element of its message). *)
let framed_groups name count tokens =
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | tok :: tl -> take (k - 1) (tok :: acc) tl
      | [] -> fail "truncated %s frame" name
  in
  let rec go n tokens acc =
    if n = 0 then
      if tokens = [] then List.rev acc else fail "%s: trailing tokens" name
    else
      match tokens with
      | len :: rest ->
          let len = int_field (name ^ " frame length") len in
          if len < 0 then fail "%s: negative frame length" name;
          let group, rest = take len [] rest in
          go (n - 1) rest (group :: acc)
      | [] -> fail "truncated %s" name
  in
  go count tokens []

let rec decode_request = function
  | [ "new-meeting"; tp ] -> New_meeting { two_party = bool_of_field "two_party" tp }
  | [ "register-participant"; m; p; e; s ] ->
      Register_participant
        {
          meeting = int_field "meeting" m;
          participant = int_field "participant" p;
          egress_port = int_field "egress_port" e;
          sends = bool_of_field "sends" s;
        }
  | "register-uplink" :: m :: s :: port :: v :: a :: f :: n :: rest ->
      let n = int_field "renditions" n in
      if List.length rest <> 2 * n then fail "register-uplink: rendition count mismatch";
      let rec pairs = function
        | [] -> []
        | ssrc :: bitrate :: tl ->
            (int_field "rendition ssrc" ssrc, int_field "rendition bitrate" bitrate)
            :: pairs tl
        | [ _ ] -> fail "register-uplink: odd rendition list"
      in
      Register_uplink
        {
          meeting = int_field "meeting" m;
          sender = int_field "sender" s;
          port = int_field "port" port;
          video_ssrc = int_field "video_ssrc" v;
          audio_ssrc = int_field "audio_ssrc" a;
          full_bitrate = int_field "full_bitrate" f;
          renditions = Array.of_list (pairs rest);
        }
  | [ "register-leg"; m; s; up; r; lp; ip; port; ad ] ->
      let up = int_field "uplink_port" up in
      Register_leg
        {
          meeting = int_field "meeting" m;
          sender = int_field "sender" s;
          uplink_port = (if up < 0 then None else Some up);
          receiver = int_field "receiver" r;
          leg_port = int_field "leg_port" lp;
          dst = Addr.v (int_field "dst ip" ip) (int_field "dst port" port);
          adaptive = bool_of_field "adaptive" ad;
        }
  | [ "remove-participant"; m; p ] ->
      Remove_participant
        { meeting = int_field "meeting" m; participant = int_field "participant" p }
  | [ "unregister-uplink"; m; p ] ->
      Unregister_uplink { meeting = int_field "meeting" m; port = int_field "port" p }
  | [ "set-pair-target"; m; s; r; t ] ->
      Set_pair_target
        {
          meeting = int_field "meeting" m;
          sender = int_field "sender" s;
          receiver = int_field "receiver" r;
          target = Dd.target_of_index (int_field "target" t);
        }
  | [ "ping" ] -> Ping
  | [ "reset" ] -> Reset
  | "batch" :: n :: rest ->
      Batch (List.map decode_request (framed_groups "batch" (int_field "batch size" n) rest))
  | "fenced" :: fence :: rest ->
      Fenced { fence = int_field "fence" fence; op = decode_request rest }
  | op :: _ -> fail "unknown or malformed request %S" op
  | [] -> fail "empty request"

let rec decode_reply = function
  | [ "meeting-created"; m ] -> Meeting_created { meeting = int_field "meeting" m }
  | [ "ack" ] -> Ack
  | [ "pong"; e ] -> Pong { epoch = int_field "epoch" e }
  | [ "stale-fence"; f ] -> Stale_fence { fence = int_field "fence" f }
  | "batch-reply" :: n :: rest ->
      Batch_reply
        (List.map decode_reply (framed_groups "batch-reply" (int_field "batch size" n) rest))
  | "error" :: rest -> Error (String.concat " " rest)
  | op :: _ -> fail "unknown or malformed reply %S" op
  | [] -> fail "empty reply"

let decode bytes =
  match String.split_on_char ' ' (Bytes.to_string bytes) with
  | "req" :: seq :: rest ->
      Request { seq = int_field "seq" seq; request = decode_request rest }
  | "rep" :: seq :: rest -> Reply { seq = int_field "seq" seq; reply = decode_reply rest }
  | tag :: _ -> fail "unknown message tag %S" tag
  | [] -> fail "empty message"
