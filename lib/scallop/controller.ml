module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Client = Webrtc.Client
module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace

type meeting_id = int
type participant_id = int

type stream_kind = Camera | Screen

type participant = {
  pid : participant_id;
  meeting : meeting_id;
  client : Client.t;
  home : int;  (** index of the switch this participant attaches to *)
  egress_port : int;
  sends : bool;
  video_ssrc : int;
  audio_ssrc : int;
  renditions : (int * int) array;  (** simulcast (ssrc, bitrate); [||] for SVC *)
  send_conn : Client.connection option;
  mutable recv_conns : (participant_id * Client.connection) list;
  mutable sites : int list;  (** switches where this participant is registered *)
  mutable cam_ports : (int * int) list;  (** switch -> camera uplink port there *)
  mutable screen_ports : (int * int) list;  (** switch -> screen uplink port *)
  mutable screen : (int * Client.connection) option;  (** (screen ssrc, send conn) *)
  mutable screen_recv_conns : (participant_id * Client.connection) list;
}

(* A meeting's presence on one switch. All session mutation flows to the
   switch agent through the control-plane RPC client for that switch
   index — never by calling agent functions directly. *)
type site = {
  s_idx : int;  (** switch index, selects the RPC client *)
  dp : Dataplane.t;
  agent_mid : Switch_agent.meeting_id;
}

(* Everything needed to re-issue one Register_leg verbatim during a
   resync. Recorded at leg creation because the values (allocated SFU
   ports, the receiver connection's address) exist nowhere else in
   controller state once the original RPC has been sent. *)
type leg_intent = {
  li_idx : int;  (** switch the leg lives on *)
  li_kind : stream_kind;
  li_sender : participant_id;
  li_uplink_port : int;
  li_receiver : participant_id;  (** real pid, or relay pseudo pid *)
  li_leg_port : int;
  li_dst : Addr.t;
  li_adaptive : bool;
}

type meeting = {
  mid : meeting_id;
  primary : int;  (** default home switch for joiners *)
  sites : (int, site) Hashtbl.t;
  mutable members : participant_id list;
  mutable leg_intents : leg_intent list;  (** creation order *)
  mutable pair_targets : ((participant_id * participant_id) * Av1.Dd.decode_target) list;
}

(* --- failure-detector state ---------------------------------------------------

   Per-agent health is a three-state machine driven by heartbeat probes:
   Healthy -(missed probes)-> Suspect -(more)-> Dead -(pong)-> Healthy.
   While an agent is Dead its session mutations are queued (bounded,
   oldest dropped first); a pong carrying the known epoch drains the
   queue in order, a pong with a new epoch means the agent rebooted
   blank and triggers a full intent replay instead. *)

type agent_health = Healthy | Suspect | Dead

type health_config = {
  heartbeat_every_ns : int;
  probe_timeout_ns : int;
  suspect_after : int;  (** consecutive missed probes before Suspect *)
  dead_after : int;  (** consecutive missed probes before Dead *)
  deferred_cap : int;  (** max ops queued per Dead agent *)
}

let default_health_config =
  {
    heartbeat_every_ns = Engine.ms 500;
    probe_timeout_ns = Engine.ms 250;
    suspect_after = 2;
    dead_after = 4;
    deferred_cap = 256;
  }

type recovery_event = {
  re_agent : int;
  re_kind : [ `Resync | `Drain ];
  re_detected_ns : int;  (** when the agent was declared Dead *)
  re_recovered_ns : int;  (** when replay/drain finished *)
  re_ops : int;  (** RPCs it took *)
}

type deferred_op = {
  d_mid : meeting_id;
  d_build : agent_mid:int -> Rpc.request;
      (** closes over everything but the agent-side meeting id, which may
          still be provisional at queue time *)
}

(* One wire op waiting in a per-agent batch buffer (batched mode only).
   Same shape as a deferred op — and for the same reason: the agent-side
   meeting id is resolved at flush time, not at buffering time, so a
   buffered op can be pushed onto the deferred queue unchanged when the
   flush hits a dead channel. *)
type buffered_op = {
  b_mid : meeting_id;
  b_build : agent_mid:int -> Rpc.request;
}

type agent_state = {
  mutable ah : agent_health;
  mutable ah_epoch : int;  (** last epoch seen in a Pong; -1 before the first *)
  mutable ah_missed : int;  (** consecutive missed probes *)
  mutable ah_detected_ns : int;
  mutable ah_healing : bool;  (** a resync/drain is in flight; ignore probe results *)
  mutable ah_observed : int;
      (** latest epoch any pong carried, tracked even while a heal is in
          flight — a change mid-resync means the agent rebooted under the
          replay and the resync must abort *)
  ah_deferred : deferred_op Queue.t;
  mutable ah_dropped : int;  (** ops lost to the cap since the last replay *)
  ah_gauge : Metrics.gauge;
  ah_transitions : Metrics.counter array;
      (** detector transitions into each state, indexed by
          {!health_rank} — a flapping agent shows up as matched
          suspect/healthy increments *)
}

type health_state = {
  hc : health_config;
  hs_agents : agent_state array;
  mutable hs_running : bool;
  hb_sent : Metrics.counter;
  hb_missed : Metrics.counter;
  hs_resync_full : Metrics.counter;
  hs_repair_ops : Metrics.counter;
  hs_deferred : Metrics.gauge;
  mutable hs_recovery : recovery_event list;  (** newest first *)
  hs_recovery_dropped : Metrics.counter;
      (** recovery events pushed out of the bounded ring *)
}

(* The recovery log is a ring: under sustained churn it would otherwise
   grow without bound inside a long-lived controller. *)
let recovery_log_cap = 64

type role = Acting | Standby | Deposed
(** Where this controller instance stands in the cluster. [Acting] owns
    the current fencing epoch and is the only instance that may mutate;
    a [Standby] tails the journal (rejecting direct API calls); a
    [Deposed] instance discovered a newer fence and refuses everything
    until restarted. A journal-less controller is a cluster of one,
    permanently [Acting]. *)

exception Unavailable
(** The controller cannot take this operation: it is killed, or it is a
    standby. Callers route the op to the acting instance and retry. *)

exception Deposed_primary
(** The controller was the acting primary but has been fenced off by a
    promoted standby; it will never act again. *)

(* Everything the journal's snapshot persists: the controller's intent
   (meetings/participants/relays) plus every allocator counter, so that
   replaying the journal suffix on top of a restored snapshot draws the
   same pids/ports/mids the original execution did. Client and
   connection values are shared by reference — they model live endpoints
   in the simulated world, not controller-private state. *)
type persisted = {
  ps_meetings : (meeting_id, meeting) Hashtbl.t;
  ps_participants : (participant_id, participant) Hashtbl.t;
  ps_egress_ports : (int, int) Hashtbl.t;
  ps_relay_receivers : (meeting_id * int * int, unit) Hashtbl.t;
  ps_next_agent : int;
  ps_next_meeting : int;
  ps_next_pid : int;
  ps_next_sfu_port : int;
  ps_next_egress_port : int;
  ps_next_provisional : int;
}

type t = {
  engine : Engine.t;
  network : Network.t;
  rng : Rng.t;
  label : string;  (** names this instance on traces and metrics *)
  agents : (Switch_agent.t * Dataplane.t) array;
  rpcs : Rpc_transport.Client.t array;  (** one control channel per switch *)
  mutable next_agent : int;
  meetings : (meeting_id, meeting) Hashtbl.t;
  participants : (participant_id, participant) Hashtbl.t;
  egress_ports : (int, int) Hashtbl.t;  (** client ip (or pseudo key) -> switch port *)
  relay_receivers : (meeting_id * int * int, unit) Hashtbl.t;
      (** (meeting, source switch, destination switch) pseudo receivers *)
  mutable next_meeting : int;
  mutable next_pid : int;
  mutable next_sfu_port : int;
  mutable next_egress_port : int;
  mutable sdp_messages : int;
  mutable health : health_state option;  (** None until {!start_health} *)
  mutable next_provisional : int;  (** provisional agent meeting ids, < -1 *)
  batch : bool;  (** buffer session mutations and flush them as [Rpc.Batch]es *)
  buffers : buffered_op Queue.t array;  (** per-agent batch buffer (FIFO) *)
  flushing : bool array;  (** per-agent reentrancy guard around a flush *)
  journal : persisted Journal.t option;  (** None = cluster of one *)
  mutable role : role;
  mutable fence : int;  (** fencing epoch this instance acts under *)
  mutable recovering : bool;
      (** replaying the journal: execute intent mutations only — no wire
          ops, no SDP, no rng draws; client connections are adopted by
          address instead of created *)
  mutable killed : bool;  (** crashed process: mute the wire, refuse ops *)
  mutable applied : int;  (** highest journal index reflected in intent *)
}

(* The controller's address on the management network — a label on
   control datagrams; the channels themselves are point-to-point. *)
let controller_ip = Addr.ip_of_string "10.255.0.1"
let control_port = 6633

let create engine network rng ~agents ?(control = Rpc_transport.default)
    ?(batch = false) ?journal ?(standby = false) ?(label = "ctl")
    ?(ip = controller_ip) () =
  if agents = [] then invalid_arg "Controller.create: need at least one switch agent";
  if standby && journal = None then
    invalid_arg "Controller.create: a standby needs a journal to tail";
  let agents = Array.of_list agents in
  let rpcs =
    Array.mapi
      (fun idx (agent, dp) ->
        (* the default instance keeps the historic per-switch metric
           label; extra instances prefix theirs so a standby's clients
           never displace the primary's series in the registry *)
        let rpc_label =
          if label = "ctl" then Printf.sprintf "sw%d" idx
          else Printf.sprintf "%s-sw%d" label idx
        in
        Rpc_transport.Client.connect engine (Rng.split rng) ~config:control
          ~label:rpc_label
          ~local:(Addr.v ip (control_port + idx))
          ~remote:(Addr.v (Dataplane.ip dp) control_port)
          (Switch_agent.rpc_server agent))
      agents
  in
  let t =
    {
      engine;
      network;
      rng;
      label;
      agents;
      rpcs;
      next_agent = 0;
      meetings = Hashtbl.create 16;
      participants = Hashtbl.create 64;
      egress_ports = Hashtbl.create 64;
      relay_receivers = Hashtbl.create 16;
      next_meeting = 0;
      next_pid = 0;
      next_sfu_port = 40_000;
      next_egress_port = 1;
      sdp_messages = 0;
      health = None;
      next_provisional = -2;
      batch;
      buffers = Array.map (fun _ -> Queue.create ()) agents;
      flushing = Array.map (fun _ -> false) agents;
      journal;
      role = (if standby then Standby else Acting);
      fence = 0;
      recovering = false;
      killed = false;
      applied = -1;
    }
  in
  (match journal with
  | Some j when not standby ->
      (* fresh primary over a (possibly pre-populated) journal: own the
         next fencing epoch from the start *)
      t.fence <- Journal.acquire_fence j
  | _ -> ());
  t

let fresh_sfu_port t =
  let p = t.next_sfu_port in
  t.next_sfu_port <- p + 1;
  p

let egress_port_of t key =
  match Hashtbl.find_opt t.egress_ports key with
  | Some p -> p
  | None ->
      let p = t.next_egress_port in
      t.next_egress_port <- p + 1;
      Hashtbl.replace t.egress_ports key p;
      p

(* A pseudo participant id standing for "everything behind switch [idx]"
   when it appears as a receiver of another switch's replication trees. *)
let relay_pid idx = 900_000 + idx

(* Pseudo keys into the egress-port allocator for a sender registered on a
   non-home switch, and for a relay receiver. *)
let sender_site_key pid idx = 0x7E000000 + (pid * 64) + idx
let relay_site_key mid idx = 0x7F000000 + (mid * 64) + idx

(* Placement across cascaded switches: meetings get a round-robin primary
   switch; participants may be homed elsewhere (Appendix A), in which case
   cascade relays carry the media between switches.

   The [_exec] body below (like every [_exec] in this file) is the
   execution half of a state mutation: the public entry point validates,
   journals the op under the current fence, then runs the exec — and a
   journal replay runs the same exec directly. *)
let create_meeting_exec t =
  let primary = t.next_agent in
  t.next_agent <- (t.next_agent + 1) mod Array.length t.agents;
  let mid = t.next_meeting in
  t.next_meeting <- mid + 1;
  Hashtbl.replace t.meetings mid
    { mid; primary; sites = Hashtbl.create 2; members = []; leg_intents = []; pair_targets = [] };
  mid

let find_meeting t mid =
  match Hashtbl.find_opt t.meetings mid with
  | Some m -> m
  | None -> invalid_arg "Controller: unknown meeting"

let find_participant t pid =
  match Hashtbl.find_opt t.participants pid with
  | Some p -> p
  | None -> invalid_arg "Controller: unknown participant"

(* --- fencing ---------------------------------------------------------------

   With a journal present every wire op carries the instance's fencing
   epoch ([Rpc.Fenced]); agents reject anything older than the highest
   fence they have seen ([Rpc.Stale_fence]), and the journal itself
   rejects appends under a superseded fence. Either rejection deposes
   this instance: a standby has been promoted and owns a higher epoch. *)

let ctrl_arg t = ("ctrl", Trace.S t.label)

let depose t ~fence =
  if t.role <> Deposed then begin
    t.role <- Deposed;
    (* the deposed primary's heartbeats stop; the new acting instance
       runs its own detector *)
    (match t.health with Some h -> h.hs_running <- false | None -> ());
    if Trace.enabled Trace.Rpc then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "ctrl_deposed"
        ~args:[ ctrl_arg t; ("fence", Trace.I fence) ]
  end

let ensure_usable t =
  if t.killed then raise Unavailable;
  match t.role with
  | Acting -> ()
  | Standby -> raise Unavailable
  | Deposed -> raise Deposed_primary

(* Durably record one intent mutation before executing it. Raising here
   (stale fence) means the op was neither journaled nor executed — the
   caller retries against the acting instance. *)
let journaled t op =
  match t.journal with
  | Some j when not t.recovering -> (
      match Journal.append j ~fence:t.fence op with
      | idx -> t.applied <- idx
      | exception Journal.Deposed { current; _ } ->
          depose t ~fence:current;
          raise Deposed_primary)
  | _ -> ()

(* Wrap a wire op in the instance's fencing epoch — only in cluster
   mode, so a journal-less controller's wire bytes stay exactly as they
   always were. *)
let wire t req =
  match t.journal with None -> req | Some _ -> Rpc.Fenced { fence = t.fence; op = req }

(* Check the journal for a newer fence and self-depose if one exists —
   the lease check the cluster beat timer runs on the acting primary, so
   a falsely-suspected (but alive) primary stands down within one beat
   of a standby's promotion instead of waiting to collide on the wire.
   The skip-fencing mutation disables this too: the model checker must
   be able to drive the resulting split brain to a double execution. *)
let refresh_role t =
  match t.journal with
  | Some j
    when t.role = Acting
         && (not (Mutation.on Mutation.Skip_fencing_check))
         && Journal.fence j > t.fence ->
      depose t ~fence:(Journal.fence j)
  | _ -> ()

let create_meeting t =
  ensure_usable t;
  journaled t Journal.Create_meeting;
  create_meeting_exec t

(* --- control-plane RPC ------------------------------------------------------

   Every agent operation is a typed message shipped over that switch's
   control channel; the call blocks (in virtual time) until the agent's
   reply lands. An [Error] reply surfaces as [Invalid_argument]. A dead
   channel depends on whether health tracking runs: with it, the agent
   is marked Dead and the op is queued for the heal/restart replay;
   without it (the pre-failure-detector contract), the transport error
   surfaces as [Rpc_transport.Timed_out]. *)

let health_rank = function Healthy -> 0 | Suspect -> 1 | Dead -> 2
let health_name = function Healthy -> "healthy" | Suspect -> "suspect" | Dead -> "dead"

let is_dead t idx =
  match t.health with Some h -> h.hs_agents.(idx).ah = Dead | None -> false

(* A switch mid-heal must not take new direct ops either: the resync or
   drain in flight is replaying controller intent, and a straddling
   direct op races that replay — double-executing its effect (the member
   shows up from both the direct call and the intent replay) or
   colliding with half-replayed agent bookkeeping. Ops arriving while a
   heal is in flight are deferred like ops for a dead switch; a
   successful resync then discards them as covered by the replayed
   intent, and a drain re-issues them in order. *)
let is_healing t idx =
  match t.health with Some h -> h.hs_agents.(idx).ah_healing | None -> false

let unavailable t idx = is_dead t idx || is_healing t idx

let set_agent_health h idx st =
  let a = h.hs_agents.(idx) in
  if a.ah <> st then Metrics.incr a.ah_transitions.(health_rank st);
  a.ah <- st;
  Metrics.set a.ah_gauge (float_of_int (health_rank st))

let refresh_deferred_gauge h =
  let depth =
    Array.fold_left (fun acc a -> acc + Queue.length a.ah_deferred) 0 h.hs_agents
  in
  Metrics.set h.hs_deferred (float_of_int depth)

let mark_dead t h idx =
  let a = h.hs_agents.(idx) in
  if a.ah <> Dead then begin
    a.ah_detected_ns <- Engine.now t.engine;
    set_agent_health h idx Dead;
    if Trace.enabled Trace.Rpc then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "agent_dead"
        ~args:[ ctrl_arg t; ("agent", Trace.I idx) ]
  end

let push_deferred t h idx op =
  let a = h.hs_agents.(idx) in
  Queue.push op a.ah_deferred;
  let overflowed = Queue.length a.ah_deferred > h.hc.deferred_cap in
  if overflowed then begin
    (* oldest-first drop: the queue keeps the most recent intent; the
       hole it leaves forces a full resync instead of a drain on heal *)
    ignore (Queue.pop a.ah_deferred);
    a.ah_dropped <- a.ah_dropped + 1
  end;
  if Trace.enabled Trace.Rpc then begin
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "op_defer"
      ~args:
        [
          ctrl_arg t;
          ("agent", Trace.I idx);
          ("depth", Trace.I (Queue.length a.ah_deferred));
        ];
    if overflowed then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "defer_drop"
        ~args:[ ctrl_arg t; ("agent", Trace.I idx) ]
  end;
  refresh_deferred_gauge h

let raise_timed_out req err =
  let attempts = match err with `Gave_up n -> n | `Timeout -> 0 in
  raise (Rpc_transport.Timed_out { op = Rpc.request_name req; seq = -1; attempts })

(* An [Error] reply from an agent that should know the state we installed
   means the agent answered from a fresh boot (a restart raced an in-flight
   call, so we saw the reply before any Pong carried the new epoch) or has
   otherwise drifted. With the failure detector on we don't raise: the
   agent is declared Dead and the op queued — the next heartbeat answers
   with the bumped epoch and the whole switch is replayed from intent. *)
let desync t idx msg =
  match t.health with
  | Some h ->
      mark_dead t h idx;
      None
  | None -> invalid_arg msg

let provisional_mid t =
  let mid = t.next_provisional in
  t.next_provisional <- mid - 1;
  mid

(* One blocking call with failure-detector semantics: [None] means the
   transport gave up and the agent is now Dead. Flushes the agent's
   batch buffer first, so a direct call can never overtake ops buffered
   before it — per-agent order is preserved across both paths. *)
let rec call_reply t idx req =
  flush_agent t idx;
  match Rpc_transport.Client.call t.rpcs.(idx) (wire t req) with
  | Ok (Rpc.Stale_fence { fence }) ->
      (* the agent has seen a higher fencing epoch: a standby was
         promoted over us — stand down instead of retrying *)
      depose t ~fence;
      raise Deposed_primary
  | Ok reply -> Some reply
  | Error err -> (
      match t.health with
      | Some h ->
          mark_dead t h idx;
          None
      | None -> raise_timed_out req err)

(* Ship everything buffered for switch [idx] as a single [Rpc.Batch]
   call (batched mode; a no-op otherwise since the buffer stays empty).
   The buffer drains FIFO into the batch's op list, so agent-side
   execution order equals buffering order. Failure handling mirrors the
   per-op path op-for-op: an [Error] slot in the reply marks the agent
   Dead and defers that op for the post-heal drain/replay; a transport
   failure defers the whole batch (or raises without a failure
   detector). The [flushing] guard breaks reentrancy: the blocking batch
   call pumps the engine, where a heartbeat-triggered resync can land on
   this same agent and come back through [call_reply]. *)
and flush_agent t idx =
  if not (Queue.is_empty t.buffers.(idx)) && not t.flushing.(idx) then begin
    t.flushing.(idx) <- true;
    Fun.protect
      ~finally:(fun () -> t.flushing.(idx) <- false)
      (fun () ->
        let buf = t.buffers.(idx) in
        let ops = List.of_seq (Queue.to_seq buf) in
        Queue.clear buf;
        let defer_op op =
          match t.health with
          | Some h -> push_deferred t h idx { d_mid = op.b_mid; d_build = op.b_build }
          | None -> ()
        in
        if unavailable t idx then List.iter defer_op ops
        else begin
          (* resolve agent-side meeting ids now: a site created during a
             Dead spell still carries a provisional id and must be
             materialized (a synchronous New_meeting) before its ops can
             be encoded *)
          let rec resolve acc = function
            | [] -> Some (List.rev acc)
            | op :: rest -> (
                let m = find_meeting t op.b_mid in
                match materialize_site t m idx with
                | Some site ->
                    resolve ((op, op.b_build ~agent_mid:site.agent_mid) :: acc) rest
                | None -> None)
          in
          match resolve [] ops with
          | None ->
              (* the switch died under us; keep every op, in order *)
              List.iter defer_op ops
          | Some resolved -> (
              let reqs = List.map snd resolved in
              match Rpc_transport.Client.call t.rpcs.(idx) (wire t (Rpc.Batch reqs)) with
              | Ok (Rpc.Stale_fence { fence }) ->
                  depose t ~fence;
                  raise Deposed_primary
              | Ok (Rpc.Batch_reply replies)
                when List.length replies = List.length resolved ->
                  List.iter2
                    (fun (op, req) reply ->
                      match reply with
                      | Rpc.Ack -> ()
                      | Rpc.Error msg -> (
                          (* same desync logic as the per-op path; the op
                             must survive for the drain-or-replay *)
                          match t.health with
                          | Some h ->
                              mark_dead t h idx;
                              push_deferred t h idx
                                { d_mid = op.b_mid; d_build = op.b_build }
                          | None -> invalid_arg msg)
                      | Rpc.Meeting_created _ | Rpc.Pong _ | Rpc.Batch_reply _
                      | Rpc.Stale_fence _ ->
                          invalid_arg
                            (Printf.sprintf
                               "Controller: unexpected reply to %s in batch"
                               (Rpc.request_name req)))
                    resolved replies
              | Ok (Rpc.Error msg) -> (
                  match t.health with
                  | Some h ->
                      mark_dead t h idx;
                      List.iter defer_op ops
                  | None -> invalid_arg msg)
              | Ok (Rpc.Ack | Rpc.Pong _ | Rpc.Meeting_created _ | Rpc.Batch_reply _) ->
                  invalid_arg "Controller: unexpected reply to batch"
              | Error err -> (
                  match t.health with
                  | Some h ->
                      mark_dead t h idx;
                      List.iter defer_op ops
                  | None -> raise_timed_out (Rpc.Batch reqs) err))
        end)
  end

and rpc_new_meeting t idx ~two_party =
  match call_reply t idx (Rpc.New_meeting { two_party }) with
  | Some (Rpc.Meeting_created { meeting }) -> Some meeting
  | Some (Rpc.Error msg) -> desync t idx msg
  | Some (Rpc.Ack | Rpc.Pong _ | Rpc.Batch_reply _ | Rpc.Stale_fence _) ->
      invalid_arg "Controller: missing meeting id in new-meeting reply"
  | None -> None

(* Lazily bring a meeting up on a switch. While the switch is Dead the
   site carries a provisional (negative) agent meeting id, swapped for a
   real one when the deferred queue drains or a resync replays it. *)
and site_of t m idx =
  match Hashtbl.find_opt m.sites idx with
  | Some s -> s
  | None ->
      let _, dp = t.agents.(idx) in
      let agent_mid =
        (* a journal replay reconstructs intent only: sites get
           provisional ids; the fenced resync at promotion is what
           materializes them on the agents *)
        if t.recovering || unavailable t idx then provisional_mid t
        else
          match rpc_new_meeting t idx ~two_party:false with
          | Some mid -> mid
          | None -> provisional_mid t
      in
      let s = { s_idx = idx; dp; agent_mid } in
      Hashtbl.replace m.sites idx s;
      s

(* Turn a provisional site (created while its switch was Dead) into a real
   agent-side meeting; [None] when the switch died again under us. *)
and materialize_site t m idx =
  let site = site_of t m idx in
  if site.agent_mid >= 0 then Some site
  else
    match rpc_new_meeting t idx ~two_party:false with
    | Some agent_mid ->
        let s = { site with agent_mid } in
        Hashtbl.replace m.sites idx s;
        Some s
    | None -> None

(* Flush every per-agent batch buffer — the operation-boundary hook:
   public session mutations buffer their wire ops and call this before
   returning, so one [join]/[leave]/share change becomes one [Rpc.Batch]
   per touched switch instead of a blocking round trip per op. *)
let flush_buffers t = Array.iteri (fun idx _ -> flush_agent t idx) t.rpcs

(* Issue one agent-state mutation on switch [idx] of meeting [m], or
   queue it while the switch is Dead. Intent (the caller's bookkeeping)
   is always updated by the caller regardless — the queue only carries
   the wire side, so a leave or target change against an unreachable
   switch never raises and never forks controller state. *)
let agent_op t m idx (build : agent_mid:int -> Rpc.request) =
  let defer h =
    ignore (site_of t m idx);
    push_deferred t h idx { d_mid = m.mid; d_build = build }
  in
  if t.recovering then
    (* journal replay: record that the meeting has a site here and skip
       the wire — the agents' state is the promotion resync's concern *)
    ignore (site_of t m idx)
  else
  match t.health with
  | Some h when h.hs_agents.(idx).ah = Dead -> defer h
  | _ when t.batch ->
      (* batched mode: record the op (the site is created eagerly so its
         New_meeting keeps its place in the op order) and return; the
         flush at the operation boundary ships the whole buffer as one
         [Rpc.Batch] *)
      ignore (site_of t m idx);
      Queue.push { b_mid = m.mid; b_build = build } t.buffers.(idx)
  | _ -> (
      let site = site_of t m idx in
      if unavailable t idx then
        (* the New_meeting inside site_of just hit a dead channel (or
           the switch is mid-heal and must not take direct ops) *)
        match t.health with Some h -> defer h | None -> ()
      else
        let req = build ~agent_mid:site.agent_mid in
        match call_reply t idx req with
        | Some Rpc.Ack -> ()
        | Some (Rpc.Error msg) -> (
            (* same desync logic, but the op itself must survive for the
               post-resync drain-or-replay *)
            match t.health with
            | Some h ->
                mark_dead t h idx;
                defer h
            | None -> invalid_arg msg)
        | Some (Rpc.Meeting_created _ | Rpc.Pong _ | Rpc.Batch_reply _ | Rpc.Stale_fence _) ->
            invalid_arg
              (Printf.sprintf "Controller: unexpected reply to %s" (Rpc.request_name req))
        | None -> (
            (* the agent died on this very call; keep the op for the drain *)
            match t.health with Some h -> defer h | None -> ()))

(* --- SDP plumbing -----------------------------------------------------------

   Offers/answers really travel through the textual codec so the signaling
   path is exercised end to end: build -> to_string -> of_string (the
   "wire") -> candidate rewrite -> answer. *)

let ship t (sdp : Sdp.t) =
  t.sdp_messages <- t.sdp_messages + 1;
  Sdp.of_string (Sdp.to_string sdp)

let build_offer t ~ip ~port ~video_ssrc ~audio_ssrc ~sends =
  let addr = Addr.v ip port in
  let direction = if sends then Sdp.Sendonly else Sdp.Recvonly in
  {
    Sdp.session_id = Rng.int t.rng 1_000_000_000;
    origin_addr = Addr.v ip 0;
    ice_ufrag = Printf.sprintf "uf%06x" (Rng.int t.rng 0xFFFFFF);
    ice_pwd = Printf.sprintf "pw%08x" (Rng.int t.rng 0xFFFFFFF);
    medias =
      [
        Sdp.make_media ~direction ~extmaps:[ (Av1.Dd.extension_id, "urn:av1:dependency-descriptor") ]
          ~svc_mode:(Some "L1T3") ~kind:Sdp.Video ~mid:"0" ~payload_type:96 ~codec:"AV1"
          ~clock_rate:90000 ~ssrc:video_ssrc ~cname:"scallop" ~candidates:[ Sdp.host_candidate addr ]
          ();
        Sdp.make_media ~direction ~kind:Sdp.Audio ~mid:"1" ~payload_type:111 ~codec:"opus"
          ~clock_rate:48000 ~ssrc:audio_ssrc ~cname:"scallop"
          ~candidates:[ Sdp.host_candidate addr ] ();
      ];
  }

(* The controller's splice: the participant's offer is answered with the
   SFU's address as the only candidate (paper §5.1). *)
let splice_answer t offer ~sfu_addr =
  let intercepted = Sdp.rewrite_candidates offer sfu_addr in
  let answer =
    Sdp.answer ~offer:intercepted ~session_id:(Rng.int t.rng 1_000_000_000) ~origin:sfu_addr
      ~ice_ufrag:"sfuuf" ~ice_pwd:"sfupw" ~media_for:(fun m -> Some m)
  in
  ship t answer

(* During a journal replay the client endpoints already exist in the
   simulated world — they were created by the original execution. The
   rebuilding controller must adopt them, not create doubles. SFU ports
   strictly increase and are never reused, so the connection whose remote
   is [sfu_addr] is unambiguous. [None] means this connection was never
   created (or was closed): the replaying exec path creates it. *)
let adopt_connection t client ~sfu_addr =
  if t.recovering then
    List.find_opt (fun c -> Client.remote_addr c = sfu_addr) (Client.connections client)
  else None

(* The client-side port for a connection this exec is about to create.
   During a journal replay, failing to adopt means the original
   connection was already closed — a later entry in the history being
   replayed tears this one down again — so the ghost must not advance
   the client's real port allocator (the counter is shared, observable
   state; burning it would make a rebuilt world allocate differently
   from one that never failed over). Borrow the SFU port number
   instead: globally unique, never reused, and outside the client
   range. *)
let fresh_local_port t client ~sfu_addr =
  if t.recovering then sfu_addr.Addr.port else Client.fresh_port client

(* Run the offer/answer exchange for a new connection — skipped during a
   journal replay (no rng draws, no SDP counters: signaling happened in
   the original execution). The answer's candidate is always the spliced
   [sfu_addr], so callers use that address directly. *)
let signal_connection t ~ip ~port ~video_ssrc ~audio_ssrc ~sfu_addr =
  if not t.recovering then begin
    let offer = build_offer t ~ip ~port ~video_ssrc ~audio_ssrc ~sends:true in
    ignore (splice_answer t (ship t offer) ~sfu_addr)
  end

(* Per-stream identifiers: a participant's camera bundle and its optional
   screen-share bundle are independent streams with their own SSRCs,
   uplinks and (when cascaded) relays. *)
let stream_ssrcs (p : participant) = function
  | Camera -> (p.video_ssrc, p.audio_ssrc)
  | Screen -> (0x300000 + (p.pid * 2), 0x300001 + (p.pid * 2))

let stream_bitrate = function Camera -> 2_500_000 | Screen -> 1_500_000

let stream_ports (p : participant) = function
  | Camera -> p.cam_ports
  | Screen -> p.screen_ports

let add_stream_port (p : participant) kind site port =
  match kind with
  | Camera -> p.cam_ports <- (site, port) :: p.cam_ports
  | Screen -> p.screen_ports <- (site, port) :: p.screen_ports

(* --- cascading (Appendix A) --------------------------------------------------

   A sender homed on switch A reaches receivers homed on switch B through a
   cascade relay: A treats "switch B" as one more receiver of the sender's
   streams (a non-adaptive leg, full quality), and B treats the relay as
   the sender's uplink, replicating and rate-adapting for its local
   receivers exactly as if the sender were attached directly. Feedback
   composes through the existing paths: B forwards its best receiver's
   REMB (and NACKs/PLIs) upstream, where it arrives on A's relay leg and
   flows to the real sender under A's filter. *)

let ensure_relay t m ~(sender : participant) ~kind ~to_switch =
  if not (List.mem_assoc to_switch (stream_ports sender kind)) then begin
    let dst_site = site_of t m to_switch in
    let video_ssrc, audio_ssrc = stream_ssrcs sender kind in
    (* the downstream switch sees the sender as a sending participant whose
       uplink is the relay port (its own copies are self-suppressed, so the
       pseudo egress port never carries traffic) *)
    let relay_port = fresh_sfu_port t in
    if not (List.mem to_switch sender.sites) then begin
      let sender_pid = sender.pid in
      let egress_port = egress_port_of t (sender_site_key sender.pid to_switch) in
      agent_op t m to_switch (fun ~agent_mid ->
          Rpc.Register_participant
            { meeting = agent_mid; participant = sender_pid; egress_port; sends = true });
      sender.sites <- to_switch :: sender.sites
    end;
    (let sender_pid = sender.pid in
     let full_bitrate = stream_bitrate kind in
     agent_op t m to_switch (fun ~agent_mid ->
         Rpc.Register_uplink
           {
             meeting = agent_mid;
             sender = sender_pid;
             port = relay_port;
             video_ssrc;
             audio_ssrc;
             full_bitrate;
             renditions = [||];
           }));
    add_stream_port sender kind to_switch relay_port;
    (* the upstream switch sees the downstream switch as one receiver *)
    let rpid = relay_pid to_switch in
    let rkey = (m.mid, sender.home, to_switch) in
    if not (Hashtbl.mem t.relay_receivers rkey) then begin
      Hashtbl.replace t.relay_receivers rkey ();
      let egress_port = egress_port_of t (relay_site_key m.mid to_switch) in
      agent_op t m sender.home (fun ~agent_mid ->
          Rpc.Register_participant
            { meeting = agent_mid; participant = rpid; egress_port; sends = false })
    end;
    let leg_port = fresh_sfu_port t in
    let li =
      {
        li_idx = sender.home;
        li_kind = kind;
        li_sender = sender.pid;
        li_uplink_port = List.assoc sender.home (stream_ports sender kind);
        li_receiver = rpid;
        li_leg_port = leg_port;
        li_dst = Addr.v (Dataplane.ip dst_site.dp) relay_port;
        li_adaptive = false;
      }
    in
    m.leg_intents <- m.leg_intents @ [ li ];
    agent_op t m sender.home (fun ~agent_mid ->
        Rpc.Register_leg
          {
            meeting = agent_mid;
            sender = li.li_sender;
            uplink_port = Some li.li_uplink_port;
            receiver = li.li_receiver;
            leg_port = li.li_leg_port;
            dst = li.li_dst;
            adaptive = false;
          })
  end

(* Wire one (sender -> receiver) leg on the receiver's home switch:
   signaling towards the receiver plus agent/data-plane registration. *)
let create_stream_leg t m ~kind ~(sender : participant) ~(receiver : participant) =
  let site = site_of t m receiver.home in
  if sender.home <> receiver.home then ensure_relay t m ~sender ~kind ~to_switch:receiver.home;
  let video_ssrc, audio_ssrc = stream_ssrcs sender kind in
  let leg_port = fresh_sfu_port t in
  let sfu_addr = Addr.v (Dataplane.ip site.dp) leg_port in
  let conn =
    match adopt_connection t receiver.client ~sfu_addr with
    | Some conn -> conn
    | None ->
        (* the sender's streams are re-offered to the receiver, with
           candidates rewritten to the leg address *)
        signal_connection t ~ip:(Client.ip sender.client) ~port:leg_port ~video_ssrc
          ~audio_ssrc ~sfu_addr;
        let local_port = fresh_local_port t receiver.client ~sfu_addr in
        let conn =
          Client.add_recv_connection receiver.client ~local_port ~remote:sfu_addr
            ~video_ssrc ~audio_ssrc
        in
        (* the controller is the only party that knows whose media this leg
           carries — attach the QoE collectors here, keyed by that identity *)
        Client.attach_qoe conn ~meeting:m.mid ~receiver:receiver.pid ~sender:sender.pid
          ~media:
            (match kind with
            | Camera -> Scallop_obs.Qoe.Camera
            | Screen -> Scallop_obs.Qoe.Screen);
        conn
  in
  (match kind with
  | Camera -> receiver.recv_conns <- (sender.pid, conn) :: receiver.recv_conns
  | Screen -> receiver.screen_recv_conns <- (sender.pid, conn) :: receiver.screen_recv_conns);
  let li =
    {
      li_idx = receiver.home;
      li_kind = kind;
      li_sender = sender.pid;
      li_uplink_port = List.assoc receiver.home (stream_ports sender kind);
      li_receiver = receiver.pid;
      li_leg_port = leg_port;
      li_dst = Client.local_addr conn;
      li_adaptive = true;
    }
  in
  m.leg_intents <- m.leg_intents @ [ li ];
  agent_op t m receiver.home (fun ~agent_mid ->
      Rpc.Register_leg
        {
          meeting = agent_mid;
          sender = li.li_sender;
          uplink_port = Some li.li_uplink_port;
          receiver = li.li_receiver;
          leg_port = li.li_leg_port;
          dst = li.li_dst;
          adaptive = true;
        })

let create_leg t m ~sender ~receiver = create_stream_leg t m ~kind:Camera ~sender ~receiver

(* Relay receivers are reference-counted implicitly by need: the pseudo
   participant standing for switch [dst] on switch [src] must exist while
   some current member homed on [src] still has a stream relayed to [dst].
   Every teardown path that can retire the last such stream calls this to
   unregister the stale pseudo participants (otherwise their egress legs
   and tree slots leak on the source switch). *)
let gc_relays t m =
  let needed src dst =
    List.exists
      (fun pid ->
        match Hashtbl.find_opt t.participants pid with
        | None -> false
        | Some p ->
            p.home = src
            && (List.mem_assoc dst p.cam_ports || List.mem_assoc dst p.screen_ports))
      m.members
  in
  let stale =
    Hashtbl.fold
      (fun (mid, src, dst) () acc ->
        if mid = m.mid && not (needed src dst) then (src, dst) :: acc else acc)
      t.relay_receivers []
  in
  List.iter
    (fun (src, dst) ->
      Hashtbl.remove t.relay_receivers (m.mid, src, dst);
      let rpid = relay_pid dst in
      m.leg_intents <-
        List.filter
          (fun l -> not (l.li_idx = src && l.li_receiver = rpid))
          m.leg_intents;
      agent_op t m src (fun ~agent_mid ->
          Rpc.Remove_participant { meeting = agent_mid; participant = rpid }))
    stale

let join_exec ?home ?(simulcast = false) t mid client ~send_media =
  let m = find_meeting t mid in
  let home =
    match home with
    | Some h when h >= 0 && h < Array.length t.agents -> h
    | Some h -> invalid_arg (Printf.sprintf "Controller.join: no switch %d" h)
    | None -> m.primary
  in
  let site = site_of t m home in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let ip = Client.ip client in
  let egress_port = egress_port_of t ip in
  (* stride 8 leaves room for a simulcast sender's rendition SSRCs
     (base, base+2, base+4) next to its audio (base+1) *)
  let video_ssrc = 0x200000 + (pid * 8) in
  let audio_ssrc = video_ssrc + 1 in
  let renditions =
    if send_media && simulcast then
      let cfg = Codec.Simulcast_source.default_config ~base_ssrc:video_ssrc in
      Array.mapi
        (fun i bitrate -> (video_ssrc + (2 * i), bitrate))
        cfg.Codec.Simulcast_source.bitrates
    else [||]
  in
  agent_op t m home (fun ~agent_mid ->
      Rpc.Register_participant
        { meeting = agent_mid; participant = pid; egress_port; sends = send_media });
  let cam_ports = ref [] in
  let send_conn =
    if send_media then begin
      let uplink_port = fresh_sfu_port t in
      cam_ports := [ (home, uplink_port) ];
      agent_op t m home (fun ~agent_mid ->
          Rpc.Register_uplink
            {
              meeting = agent_mid;
              sender = pid;
              port = uplink_port;
              video_ssrc;
              audio_ssrc;
              full_bitrate = 2_500_000;
              renditions;
            });
      let sfu_addr = Addr.v (Dataplane.ip site.dp) uplink_port in
      match adopt_connection t client ~sfu_addr with
      | Some conn -> Some conn
      | None ->
          (* the participant's own offer, spliced to the uplink *)
          let local_port = fresh_local_port t client ~sfu_addr in
          signal_connection t ~ip ~port:local_port ~video_ssrc ~audio_ssrc ~sfu_addr;
          Some
            (if simulcast then
               Client.add_simulcast_send_connection client ~local_port ~remote:sfu_addr
                 ~base_ssrc:video_ssrc ~audio_ssrc
             else
               Client.add_send_connection client ~local_port ~remote:sfu_addr ~video_ssrc
                 ~audio_ssrc)
    end
    else None
  in
  let p =
    {
      pid;
      meeting = mid;
      client;
      home;
      egress_port;
      sends = send_media;
      video_ssrc;
      audio_ssrc;
      renditions;
      send_conn;
      recv_conns = [];
      sites = [ home ];
      cam_ports = !cam_ports;
      screen_ports = [];
      screen = None;
      screen_recv_conns = [];
    }
  in
  Hashtbl.replace t.participants pid p;
  (* legs with all existing members, possibly across switches — including
     any screen share already in progress, which a late joiner must
     receive just like camera media *)
  List.iter
    (fun other_pid ->
      let other = find_participant t other_pid in
      if other.sends then create_leg t m ~sender:other ~receiver:p;
      if other.screen <> None then
        create_stream_leg t m ~kind:Screen ~sender:other ~receiver:p;
      if send_media then create_leg t m ~sender:p ~receiver:other)
    m.members;
  m.members <- m.members @ [ pid ];
  flush_buffers t;
  pid

let join ?home ?(simulcast = false) t mid client ~send_media =
  ensure_usable t;
  ignore (find_meeting t mid);
  (match home with
  | Some h when h < 0 || h >= Array.length t.agents ->
      invalid_arg (Printf.sprintf "Controller.join: no switch %d" h)
  | _ -> ());
  journaled t (Journal.Join { mid; home; simulcast; client; send_media });
  join_exec ?home ~simulcast t mid client ~send_media

(* --- screen sharing: the controller's third trigger ("a participant
   starts or stops sharing a particular media type", §4) ----------------- *)

let start_screen_share_exec t pid =
  let p = find_participant t pid in
  if p.screen <> None then invalid_arg "Controller.start_screen_share: already sharing";
  let m = find_meeting t p.meeting in
  let site = site_of t m p.home in
  let video_ssrc, audio_ssrc = stream_ssrcs p Screen in
  let uplink_port = fresh_sfu_port t in
  agent_op t m p.home (fun ~agent_mid ->
      Rpc.Register_uplink
        {
          meeting = agent_mid;
          sender = pid;
          port = uplink_port;
          video_ssrc;
          audio_ssrc;
          full_bitrate = stream_bitrate Screen;
          renditions = [||];
        });
  add_stream_port p Screen p.home uplink_port;
  let sfu_addr = Addr.v (Dataplane.ip site.dp) uplink_port in
  let conn =
    match adopt_connection t p.client ~sfu_addr with
    | Some conn -> conn
    | None ->
        (* the sharer's own offer for the new media section, spliced as usual *)
        let local_port = fresh_local_port t p.client ~sfu_addr in
        signal_connection t ~ip:(Client.ip p.client) ~port:local_port ~video_ssrc
          ~audio_ssrc ~sfu_addr;
        Client.add_send_connection ~send_audio:false
          ~video_bitrate:(stream_bitrate Screen) p.client ~local_port ~remote:sfu_addr
          ~video_ssrc ~audio_ssrc
  in
  p.screen <- Some (video_ssrc, conn);
  List.iter
    (fun other_pid ->
      if other_pid <> pid then
        create_stream_leg t m ~kind:Screen ~sender:p
          ~receiver:(find_participant t other_pid))
    m.members;
  flush_buffers t

let start_screen_share t pid =
  ensure_usable t;
  let p = find_participant t pid in
  if p.screen <> None then invalid_arg "Controller.start_screen_share: already sharing";
  journaled t (Journal.Start_screen { pid });
  start_screen_share_exec t pid

let stop_screen_share_exec t pid =
  let p = find_participant t pid in
  match p.screen with
  | None -> ()
  | Some (_, conn) ->
      let m = find_meeting t p.meeting in
      (* tear the stream down on every switch it was relayed to *)
      List.iter
        (fun (idx, port) ->
          agent_op t m idx (fun ~agent_mid ->
              Rpc.Unregister_uplink { meeting = agent_mid; port }))
        p.screen_ports;
      p.screen_ports <- [];
      m.leg_intents <-
        List.filter
          (fun l -> not (l.li_sender = pid && l.li_kind = Screen))
          m.leg_intents;
      Client.close_connection p.client conn;
      p.screen <- None;
      List.iter
        (fun other_pid ->
          let other = find_participant t other_pid in
          let mine, rest =
            List.partition (fun (from, _) -> from = pid) other.screen_recv_conns
          in
          other.screen_recv_conns <- rest;
          List.iter (fun (_, c) -> Client.close_connection other.client c) mine)
        m.members;
      gc_relays t m;
      flush_buffers t

let stop_screen_share t pid =
  ensure_usable t;
  let p = find_participant t pid in
  if p.screen <> None then begin
    journaled t (Journal.Stop_screen { pid });
    stop_screen_share_exec t pid
  end

let screen_connection t pid ~from =
  let p = find_participant t pid in
  List.assoc_opt from p.screen_recv_conns

let leave_exec t pid =
  match Hashtbl.find_opt t.participants pid with
  | None -> ()
  | Some p ->
      stop_screen_share_exec t pid;
      let m = find_meeting t p.meeting in
      m.members <- List.filter (fun x -> x <> pid) m.members;
      m.leg_intents <-
        List.filter (fun l -> l.li_sender <> pid && l.li_receiver <> pid) m.leg_intents;
      m.pair_targets <-
        List.filter (fun ((s, r), _) -> s <> pid && r <> pid) m.pair_targets;
      (* retire the participant everywhere it is registered — its home plus
         any switch it was relayed onto as a sender *)
      List.iter
        (fun idx ->
          agent_op t m idx (fun ~agent_mid ->
              Rpc.Remove_participant { meeting = agent_mid; participant = pid }))
        (List.sort_uniq compare p.sites);
      gc_relays t m;
      Option.iter (fun c -> Client.close_connection p.client c) p.send_conn;
      List.iter (fun (_, c) -> Client.close_connection p.client c) p.recv_conns;
      (* drop the recv connections other participants had for p's media *)
      List.iter
        (fun other_pid ->
          let other = find_participant t other_pid in
          let mine, rest = List.partition (fun (from, _) -> from = pid) other.recv_conns in
          other.recv_conns <- rest;
          List.iter (fun (_, c) -> Client.close_connection other.client c) mine)
        m.members;
      Hashtbl.remove t.participants pid;
      flush_buffers t

let leave t pid =
  ensure_usable t;
  if Hashtbl.mem t.participants pid then begin
    journaled t (Journal.Leave { pid });
    leave_exec t pid
  end

type sender_info = { egress_port : int; video_ssrc : int; audio_ssrc : int }

let participant_sender_info t pid =
  let p = find_participant t pid in
  if p.sends then
    Some { egress_port = p.egress_port; video_ssrc = p.video_ssrc; audio_ssrc = p.audio_ssrc }
  else None

let set_pair_target_exec t ~sender ~receiver target =
  let s = find_participant t sender in
  let r = find_participant t receiver in
  if s.meeting <> r.meeting then
    invalid_arg "Controller.set_pair_target: participants in different meetings";
  let m = find_meeting t s.meeting in
  m.pair_targets <-
    ((sender, receiver), target) :: List.remove_assoc (sender, receiver) m.pair_targets;
  agent_op t m r.home (fun ~agent_mid ->
      Rpc.Set_pair_target { meeting = agent_mid; sender; receiver; target });
  flush_buffers t

let set_pair_target t ~sender ~receiver target =
  ensure_usable t;
  let s = find_participant t sender in
  let r = find_participant t receiver in
  if s.meeting <> r.meeting then
    invalid_arg "Controller.set_pair_target: participants in different meetings";
  journaled t (Journal.Set_pair_target { sender; receiver; target });
  set_pair_target_exec t ~sender ~receiver target

let recv_connection t pid ~from =
  let p = find_participant t pid in
  List.assoc_opt from p.recv_conns

let send_connection t pid = (find_participant t pid).send_conn

let agent_meeting_id t mid =
  let m = find_meeting t mid in
  (site_of t m m.primary).agent_mid

let agent_participant_id _t pid = pid

type stats = {
  sdp_messages : int;
  control_requests : int;
  control_replies : int;
  control_retries : int;
  control_failures : int;
}

let stats (t : t) =
  let sum f = Array.fold_left (fun acc c -> acc + f (Rpc_transport.Client.stats c)) 0 t.rpcs in
  {
    sdp_messages = t.sdp_messages;
    control_requests = sum (fun (s : Rpc_transport.Client.stats) -> s.wire_requests);
    control_replies = sum (fun (s : Rpc_transport.Client.stats) -> s.replies_received);
    control_retries = sum (fun (s : Rpc_transport.Client.stats) -> s.retries);
    control_failures = sum (fun (s : Rpc_transport.Client.stats) -> s.failures);
  }

let control_channel t idx =
  if idx < 0 || idx >= Array.length t.rpcs then
    invalid_arg (Printf.sprintf "Controller.control_channel: no switch %d" idx);
  t.rpcs.(idx)

let meeting_participants t mid = (find_meeting t mid).members

let meeting_switch t mid =
  let m = find_meeting t mid in
  (site_of t m m.primary).dp

let switch_count t = Array.length t.agents
let participant_home t pid = (find_participant t pid).home

let switch_agent t idx =
  if idx < 0 || idx >= Array.length t.agents then
    invalid_arg (Printf.sprintf "Controller.switch_agent: no switch %d" idx);
  t.agents.(idx)

(* --- failure recovery --------------------------------------------------------

   Two repair paths bring a switch back in line with controller intent:

   - {b resync}: [Reset] the agent, then replay every meeting that has a
     site there from scratch — New_meeting, participants (members first,
     relay pseudo receivers after), uplinks (camera then screen per
     member), legs in creation order, pair targets. Because it starts
     from a wipe it converges from {e any} agent state: a post-reboot
     blank slate, a drift the verifier found, or a deferred queue that
     overflowed and lost ops.

   - {b drain}: the switch was merely unreachable (same epoch in its
     Pong) and its state is intact, so the ops queued while it was Dead
     are re-issued in order.

   Both run inside blocking RPCs that pump the engine, so probe results
   for the agent being repaired are suppressed ([ah_healing]) until the
   repair commits or aborts. *)

exception Resync_aborted

let resync t idx =
  let t0 = Engine.now t.engine in
  let ops = ref 0 in
  (* An [Error] reply mid-resync means the agent crashed and restarted
     again while one of our ops was in flight: the retransmit landed on
     a blank next-epoch agent that legitimately rejects ops against the
     wiped state. Abort — the switch is marked Dead and the next pong
     carries the bumped epoch, triggering a fresh replay from intent.
     (Schedule that hits this: drop an op's first transmission, crash
     the agent before the retransmit, restart it before the retry
     ladder gives up.) Without a failure detector there is no retry
     path, so [desync] raises as before. *)
  let error_reply msg =
    ignore (desync t idx ("Controller.resync: " ^ msg));
    raise Resync_aborted
  in
  (* A replay is only meaningful against the epoch it started healing.
     Each blocking op pumps the engine, where heartbeat pongs keep
     landing; if one carries a newer epoch the agent rebooted under the
     replay — everything installed so far is gone, and blindly
     continuing would race any straddling retransmits against the
     half-replayed blank state. Abort; the next pong restarts a full
     heal, and the quiet-channel rule holds it back until the stragglers
     settle. *)
  let observed () =
    match t.health with Some h -> h.hs_agents.(idx).ah_observed | None -> -1
  in
  let epoch0 = observed () in
  let check_epoch () =
    if observed () <> epoch0 then
      error_reply "agent rebooted mid-replay (newer epoch observed)"
  in
  let send req =
    incr ops;
    match call_reply t idx req with
    | Some Rpc.Ack -> check_epoch ()
    | Some (Rpc.Error msg) -> error_reply msg
    | Some (Rpc.Meeting_created _ | Rpc.Pong _ | Rpc.Batch_reply _ | Rpc.Stale_fence _) ->
        invalid_arg
          (Printf.sprintf "Controller.resync: unexpected reply to %s"
             (Rpc.request_name req))
    | None -> raise Resync_aborted
  in
  let replay_meeting m =
    match Hashtbl.find_opt m.sites idx with
    | None -> ()
    | Some site ->
        let agent_mid =
          incr ops;
          match call_reply t idx (Rpc.New_meeting { two_party = false }) with
          | Some (Rpc.Meeting_created { meeting }) ->
              check_epoch ();
              meeting
          | Some (Rpc.Error msg) -> error_reply msg
          | Some (Rpc.Ack | Rpc.Pong _ | Rpc.Batch_reply _ | Rpc.Stale_fence _) ->
              invalid_arg "Controller.resync: missing meeting id in new-meeting reply"
          | None -> raise Resync_aborted
        in
        Hashtbl.replace m.sites idx { site with agent_mid };
        (* participants registered on this switch, in join order; a sender
           on a non-home switch is there to feed a relay uplink *)
        List.iter
          (fun pid ->
            let p = find_participant t pid in
            if List.mem idx p.sites then
              let egress_port =
                if idx = p.home then p.egress_port
                else egress_port_of t (sender_site_key pid idx)
              in
              let sends = if idx = p.home then p.sends else true in
              send
                (Rpc.Register_participant
                   { meeting = agent_mid; participant = pid; egress_port; sends }))
          m.members;
        (* relay pseudo receivers this switch fans out to, by destination *)
        Hashtbl.fold
          (fun (mid, src, dst) () acc ->
            if mid = m.mid && src = idx then dst :: acc else acc)
          t.relay_receivers []
        |> List.sort compare
        |> List.iter (fun dst ->
               let egress_port = egress_port_of t (relay_site_key m.mid dst) in
               send
                 (Rpc.Register_participant
                    {
                      meeting = agent_mid;
                      participant = relay_pid dst;
                      egress_port;
                      sends = false;
                    }));
        (* uplinks: camera then screen per member, in join order *)
        List.iter
          (fun pid ->
            let p = find_participant t pid in
            List.iter
              (fun kind ->
                match List.assoc_opt idx (stream_ports p kind) with
                | None -> ()
                | Some port ->
                    let video_ssrc, audio_ssrc = stream_ssrcs p kind in
                    let renditions =
                      if kind = Camera && idx = p.home then p.renditions else [||]
                    in
                    send
                      (Rpc.Register_uplink
                         {
                           meeting = agent_mid;
                           sender = pid;
                           port;
                           video_ssrc;
                           audio_ssrc;
                           full_bitrate = stream_bitrate kind;
                           renditions;
                         }))
              [ Camera; Screen ])
          m.members;
        (* legs in creation order *)
        List.iter
          (fun li ->
            if li.li_idx = idx then
              send
                (Rpc.Register_leg
                   {
                     meeting = agent_mid;
                     sender = li.li_sender;
                     uplink_port = Some li.li_uplink_port;
                     receiver = li.li_receiver;
                     leg_port = li.li_leg_port;
                     dst = li.li_dst;
                     adaptive = li.li_adaptive;
                   }))
          m.leg_intents;
        (* forced pair targets whose receiver leg lives here *)
        List.sort compare m.pair_targets
        |> List.iter (fun ((sender, receiver), target) ->
               match Hashtbl.find_opt t.participants receiver with
               | Some r when r.home = idx ->
                   send (Rpc.Set_pair_target { meeting = agent_mid; sender; receiver; target })
               | Some _ | None -> ())
  in
  try
    send Rpc.Reset;
    Hashtbl.fold (fun _ m acc -> m :: acc) t.meetings []
    |> List.sort (fun a b -> compare a.mid b.mid)
    |> List.iter replay_meeting;
    if Trace.enabled Trace.Rpc then
      Trace.complete ~ts:t0 ~dur:(Engine.now t.engine - t0) ~cat:"ctrl" "resync"
        ~args:[ ctrl_arg t; ("agent", Trace.I idx); ("ops", Trace.I !ops) ];
    Some !ops
  with Resync_aborted -> None

(* Re-issue queued ops in order. Stops (keeping the rest queued) if the
   switch dies again. A queued op re-issued under a fresh sequence number
   can double-execute when the original's reply was lost in the partition;
   the agent answers those with [Error], which the drain tolerates — the
   anti-entropy reconcile pass is what repairs any residual drift. *)
let drain_deferred t h idx =
  let a = h.hs_agents.(idx) in
  let ops = ref 0 in
  let alive = ref true in
  while !alive && not (Queue.is_empty a.ah_deferred) do
    let op = Queue.peek a.ah_deferred in
    let m = find_meeting t op.d_mid in
    match materialize_site t m idx with
    | None -> alive := false
    | Some site -> (
        incr ops;
        match call_reply t idx (op.d_build ~agent_mid:site.agent_mid) with
        | Some (Rpc.Ack | Rpc.Error _) ->
            ignore (Queue.pop a.ah_deferred);
            if Trace.enabled Trace.Rpc then
              Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "op_drained"
                ~args:
                  [
                    ctrl_arg t;
                    ("agent", Trace.I idx);
                    ("depth", Trace.I (Queue.length a.ah_deferred));
                  ]
        | Some (Rpc.Meeting_created _ | Rpc.Pong _ | Rpc.Batch_reply _ | Rpc.Stale_fence _) ->
            invalid_arg "Controller: unexpected reply to deferred op"
        | None -> alive := false)
  done;
  !ops

let record_recovery t h idx ~kind ~ops =
  let a = h.hs_agents.(idx) in
  h.hs_recovery <-
    {
      re_agent = idx;
      re_kind = kind;
      re_detected_ns = a.ah_detected_ns;
      re_recovered_ns = Engine.now t.engine;
      re_ops = ops;
    }
    :: h.hs_recovery;
  if List.length h.hs_recovery > recovery_log_cap then begin
    h.hs_recovery <- List.filteri (fun i _ -> i < recovery_log_cap) h.hs_recovery;
    Metrics.incr h.hs_recovery_dropped
  end;
  if Trace.enabled Trace.Rpc then
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "heal_done"
      ~args:
        [
          ctrl_arg t;
          ("agent", Trace.I idx);
          ("kind", Trace.S (match kind with `Resync -> "resync" | `Drain -> "drain"));
          ("ops", Trace.I ops);
        ]

let on_pong t h idx ~epoch =
  let a = h.hs_agents.(idx) in
  (* maintained even while a heal suppresses the rest of pong handling:
     an in-flight resync polls this to detect a reboot under its feet *)
  a.ah_observed <- epoch;
  if not a.ah_healing then begin
    a.ah_missed <- 0;
    let prev = a.ah in
    let first = a.ah_epoch < 0 in
    let rebooted = (not first) && epoch <> a.ah_epoch in
    if (not rebooted) && prev <> Dead then begin
      (* steady state (or Suspect clearing up); just track the epoch *)
      a.ah_epoch <- epoch;
      if prev <> Healthy then set_agent_health h idx Healthy;
      (* ops can land in the deferred queue while a heal is in progress
         (the switch stays marked Dead until the replay finishes); they
         arrive after the heal cleared the queue and no later heal would
         ever pick them up. Drain them on the next quiet-channel pong —
         same quiet rule as a heal, and [ah_healing] keeps the drain's
         own pongs from re-entering. *)
      if
        (not (Queue.is_empty a.ah_deferred))
        && Rpc_transport.Client.in_flight t.rpcs.(idx) = 0
      then begin
        a.ah_healing <- true;
        Fun.protect
          ~finally:(fun () -> a.ah_healing <- false)
          (fun () ->
            let ops = drain_deferred t h idx in
            refresh_deferred_gauge h;
            if ops > 0 then Metrics.add h.hs_repair_ops ops)
      end
    end
    else if
      Rpc_transport.Client.in_flight t.rpcs.(idx) > 0
      && not (Mutation.on Mutation.Heal_without_quiesce)
    then
      (* A heal must not overlap a blocking mutation call on this
         channel (this pong arrived inside that call's engine pump): a
         resync would replay the op's intent, and then the in-flight
         request's retransmit would land on the healed agent and
         double-execute — the replay cache can't help, the straddling
         request never executed before the reboot wiped the cache.
         Leave the agent as-is; the stale submission settles within its
         retry ladder (a blank agent answers [Error]) and a later
         heartbeat heals the then-quiet channel. Probes are oob and
         never hold the window, so they cannot postpone a heal. *)
      ()
    else begin
      (* the switch is back — blank (new epoch) or intact (same epoch) *)
      if prev <> Dead then a.ah_detected_ns <- Engine.now t.engine;
      a.ah_healing <- true;
      if Trace.enabled Trace.Rpc then
        Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "heal_begin"
          ~args:
            [
              ctrl_arg t;
              ("agent", Trace.I idx);
              ("rebooted", Trace.S (if rebooted then "true" else "false"));
              (* the quiet-channel rule: this must always be 0 *)
              ("in_flight", Trace.I (Rpc_transport.Client.in_flight t.rpcs.(idx)));
            ];
      Fun.protect
        ~finally:(fun () -> a.ah_healing <- false)
        (fun () ->
          let need_resync = rebooted || first || a.ah_dropped > 0 in
          if need_resync then begin
            (* controller intent already reflects every queued op, so the
               replay regenerates them; the queue itself is obsolete —
               and so is any batch buffer still waiting for this switch *)
            let discarded = Queue.length a.ah_deferred in
            Queue.clear a.ah_deferred;
            Queue.clear t.buffers.(idx);
            a.ah_dropped <- 0;
            if Trace.enabled Trace.Rpc && discarded > 0 then
              Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "defer_discard"
                ~args:
                  [ ctrl_arg t; ("agent", Trace.I idx); ("n", Trace.I discarded) ];
            refresh_deferred_gauge h;
            match resync t idx with
            | Some ops ->
                (* ops deferred while the replay itself was in flight are
                   already reflected in the intent it read (any gap is
                   the anti-entropy pass's to repair); re-issuing them
                   against the freshly replayed state would double-execute *)
                let late = Queue.length a.ah_deferred in
                if late > 0 then begin
                  Queue.clear a.ah_deferred;
                  if Trace.enabled Trace.Rpc then
                    Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl"
                      "defer_discard"
                      ~args:
                        [ ctrl_arg t; ("agent", Trace.I idx); ("n", Trace.I late) ];
                  refresh_deferred_gauge h
                end;
                a.ah_epoch <- epoch;
                Metrics.incr h.hs_resync_full;
                Metrics.add h.hs_repair_ops ops;
                set_agent_health h idx Healthy;
                record_recovery t h idx ~kind:`Resync ~ops
            | None -> ()  (* died again mid-replay; retried on its next pong *)
          end
          else begin
            let ops = drain_deferred t h idx in
            refresh_deferred_gauge h;
            if Queue.is_empty a.ah_deferred then begin
              a.ah_epoch <- epoch;
              Metrics.add h.hs_repair_ops ops;
              set_agent_health h idx Healthy;
              record_recovery t h idx ~kind:`Drain ~ops
            end
            (* else: died again mid-drain; the rest stays queued *)
          end)
    end
  end

let on_miss t h idx =
  let a = h.hs_agents.(idx) in
  if not a.ah_healing then begin
    a.ah_missed <- a.ah_missed + 1;
    Metrics.incr h.hb_missed;
    if a.ah_missed >= h.hc.dead_after then mark_dead t h idx
    else if a.ah_missed >= h.hc.suspect_after && a.ah = Healthy then
      set_agent_health h idx Suspect
  end

let heartbeat_tick t h =
  if Trace.enabled Trace.Rpc then
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "hb_tick"
      ~args:[ ctrl_arg t; ("interval", Trace.I h.hc.heartbeat_every_ns) ];
  Array.iteri
    (fun idx _ ->
      Metrics.incr h.hb_sent;
      Rpc_transport.Client.probe t.rpcs.(idx) ~timeout_ns:h.hc.probe_timeout_ns Rpc.Ping
        ~on_result:(fun result ->
          if h.hs_running then
            match result with
            | Ok (Rpc.Pong { epoch }) ->
                if Trace.enabled Trace.Rpc then
                  Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "hb_pong"
                    ~args:
                      [ ctrl_arg t; ("agent", Trace.I idx); ("epoch", Trace.I epoch) ];
                on_pong t h idx ~epoch
            | Ok (Rpc.Ack | Rpc.Error _ | Rpc.Meeting_created _ | Rpc.Batch_reply _
                 | Rpc.Stale_fence _) ->
                on_miss t h idx
            | Error (`Timeout | `Gave_up _) -> on_miss t h idx))
    h.hs_agents

let arm_heartbeats t h =
  if Trace.enabled Trace.Rpc then
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "hb_start"
      ~args:[ ctrl_arg t; ("interval", Trace.I h.hc.heartbeat_every_ns) ];
  Engine.every t.engine ~interval:h.hc.heartbeat_every_ns (fun () ->
      if h.hs_running then heartbeat_tick t h;
      h.hs_running)

let start_health ?(config = default_health_config) t =
  match t.health with
  | Some h -> if not h.hs_running then begin h.hs_running <- true; arm_heartbeats t h end
  | None ->
      let hs_agents =
        Array.init (Array.length t.agents) (fun idx ->
            {
              ah = Healthy;
              ah_epoch = -1;
              ah_missed = 0;
              ah_detected_ns = 0;
              ah_healing = false;
              ah_observed = -1;
              ah_deferred = Queue.create ();
              ah_dropped = 0;
              ah_gauge =
                Metrics.gauge
                  ~labels:[ ("agent", Printf.sprintf "sw%d" idx) ]
                  ~help:"Failure-detector state (0 healthy, 1 suspect, 2 dead)"
                  "scallop_ctrl_agent_state";
              ah_transitions =
                [| Healthy; Suspect; Dead |]
                |> Array.map (fun st ->
                       Metrics.counter
                         ~labels:
                           [
                             ("agent", Printf.sprintf "sw%d" idx);
                             ("to", health_name st);
                           ]
                         ~help:"Failure-detector state transitions"
                         "scallop_ctrl_health_transitions");
            })
      in
      let h =
        {
          hc = config;
          hs_agents;
          hs_running = true;
          hb_sent =
            Metrics.counter ~help:"Heartbeat probes sent" "scallop_ctrl_heartbeat_sent";
          hb_missed =
            Metrics.counter ~help:"Heartbeat probes that timed out"
              "scallop_ctrl_heartbeat_missed";
          hs_resync_full =
            Metrics.counter ~help:"Full intent replays onto a switch"
              "scallop_ctrl_resync_full";
          hs_repair_ops =
            Metrics.counter ~help:"RPCs issued by resyncs and deferred-queue drains"
              "scallop_ctrl_resync_repair_ops";
          hs_deferred =
            Metrics.gauge ~help:"Ops currently queued for Dead switches"
              "scallop_ctrl_deferred_ops";
          hs_recovery = [];
          hs_recovery_dropped =
            Metrics.counter ~help:"Recovery events evicted from the bounded log"
              "scallop_ctrl_recovery_log_dropped";
        }
      in
      t.health <- Some h;
      arm_heartbeats t h

let stop_health t =
  match t.health with
  | Some h ->
      if h.hs_running && Trace.enabled Trace.Rpc then
        Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "hb_stop"
          ~args:[ ctrl_arg t ];
      h.hs_running <- false
  | None -> ()
let health_running t = match t.health with Some h -> h.hs_running | None -> false

let agent_health t idx =
  if idx < 0 || idx >= Array.length t.agents then
    invalid_arg (Printf.sprintf "Controller.agent_health: no switch %d" idx);
  match t.health with Some h -> h.hs_agents.(idx).ah | None -> Healthy

let recovery_log t = match t.health with Some h -> h.hs_recovery | None -> []

let recovery_log_dropped t =
  match t.health with Some h -> Metrics.value h.hs_recovery_dropped | None -> 0

let health_transitions t idx st =
  if idx < 0 || idx >= Array.length t.agents then
    invalid_arg (Printf.sprintf "Controller.health_transitions: no switch %d" idx);
  match t.health with
  | Some h -> Metrics.value h.hs_agents.(idx).ah_transitions.(health_rank st)
  | None -> 0

(* Anti-entropy entry point: replay intent onto one switch regardless of
   its health state (the verifier calls this for a live-but-drifted
   switch). [None] if the switch went Dead during the replay. *)
let resync_switch t idx =
  if idx < 0 || idx >= Array.length t.agents then
    invalid_arg (Printf.sprintf "Controller.resync_switch: no switch %d" idx);
  match resync t idx with
  | Some ops ->
      (match t.health with
      | Some h ->
          Metrics.incr h.hs_resync_full;
          Metrics.add h.hs_repair_ops ops
      | None -> ());
      Some ops
  | None -> None

(* --- introspection: the controller's intent, for Scallop_analysis -------- *)

type participant_view = {
  pv_pid : participant_id;
  pv_meeting : meeting_id;
  pv_home : int;
  pv_sends : bool;
  pv_video_ssrc : int;
  pv_audio_ssrc : int;
  pv_screen_ssrc : int option;
  pv_sites : (int * int) list;
  pv_cam_ports : (int * int) list;
  pv_screen_ports : (int * int) list;
}

type relay_view = {
  rv_meeting : meeting_id;
  rv_src : int;
  rv_dst : int;
  rv_pid : participant_id;
  rv_egress_port : int;
}

type meeting_view = {
  cmv_mid : meeting_id;
  cmv_primary : int;
  cmv_members : participant_id list;
  cmv_sites : (int * int) list;
}

type health_view = {
  hv_agent : int;
  hv_state : agent_health;
  hv_epoch : int;
  hv_deferred : int;  (** ops queued for this (Dead) switch *)
  hv_dropped : int;  (** ops lost to the deferred-queue cap since last replay *)
}

type intent = {
  in_participants : participant_view list;
  in_meetings : meeting_view list;
  in_relays : relay_view list;
  in_health : health_view list;  (** [] until {!start_health} *)
}

let introspect t =
  let port_on (p : participant) idx =
    if idx = p.home then p.egress_port
    else
      Option.value ~default:(-1)
        (Hashtbl.find_opt t.egress_ports (sender_site_key p.pid idx))
  in
  let participants =
    Hashtbl.fold
      (fun _ (p : participant) acc ->
        {
          pv_pid = p.pid;
          pv_meeting = p.meeting;
          pv_home = p.home;
          pv_sends = p.sends;
          pv_video_ssrc = p.video_ssrc;
          pv_audio_ssrc = p.audio_ssrc;
          pv_screen_ssrc = Option.map fst p.screen;
          pv_sites =
            List.map (fun idx -> (idx, port_on p idx)) (List.sort_uniq compare p.sites);
          pv_cam_ports = List.sort compare p.cam_ports;
          pv_screen_ports = List.sort compare p.screen_ports;
        }
        :: acc)
      t.participants []
    |> List.sort (fun a b -> compare a.pv_pid b.pv_pid)
  in
  let meetings =
    Hashtbl.fold
      (fun _ m acc ->
        {
          cmv_mid = m.mid;
          cmv_primary = m.primary;
          cmv_members = m.members;
          cmv_sites =
            Hashtbl.fold (fun idx s acc -> (idx, s.agent_mid) :: acc) m.sites []
            |> List.sort compare;
        }
        :: acc)
      t.meetings []
    |> List.sort (fun a b -> compare a.cmv_mid b.cmv_mid)
  in
  let relays =
    Hashtbl.fold
      (fun (mid, src, dst) () acc ->
        {
          rv_meeting = mid;
          rv_src = src;
          rv_dst = dst;
          rv_pid = relay_pid dst;
          rv_egress_port =
            Option.value ~default:(-1)
              (Hashtbl.find_opt t.egress_ports (relay_site_key mid dst));
        }
        :: acc)
      t.relay_receivers []
    |> List.sort compare
  in
  let health =
    match t.health with
    | None -> []
    | Some h ->
        Array.to_list
          (Array.mapi
             (fun idx a ->
               {
                 hv_agent = idx;
                 hv_state = a.ah;
                 hv_epoch = a.ah_epoch;
                 hv_deferred = Queue.length a.ah_deferred;
                 hv_dropped = a.ah_dropped;
               })
             h.hs_agents)
  in
  {
    in_participants = participants;
    in_meetings = meetings;
    in_relays = relays;
    in_health = health;
  }

(* --- controller fault tolerance ---------------------------------------------

   The journal (write-ahead intent log) makes controller state
   reconstructible: every public mutation is appended under the current
   fence before it executes, and periodic snapshots bound replay length.
   [capture]/[restore] move the persisted slice of [t] in and out of
   those snapshots; [apply_tail] replays the journal suffix through the
   same [_exec] bodies the original execution ran, with [t.recovering]
   set so no wire ops, SDP exchanges or rng draws happen — intent
   reconstruction is purely deterministic. *)

(* Hashtbls and records with mutable fields are deep-copied; clients,
   connections and immutable records (sites, leg intents) are shared. *)
let copy_participant (p : participant) = { p with pid = p.pid }
let copy_meeting (m : meeting) = { m with sites = Hashtbl.copy m.sites }

let copy_table copy src =
  let dst = Hashtbl.create (max 16 (Hashtbl.length src)) in
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k (copy v)) src;
  dst

let capture t =
  {
    ps_meetings = copy_table copy_meeting t.meetings;
    ps_participants = copy_table copy_participant t.participants;
    ps_egress_ports = Hashtbl.copy t.egress_ports;
    ps_relay_receivers = Hashtbl.copy t.relay_receivers;
    ps_next_agent = t.next_agent;
    ps_next_meeting = t.next_meeting;
    ps_next_pid = t.next_pid;
    ps_next_sfu_port = t.next_sfu_port;
    ps_next_egress_port = t.next_egress_port;
    ps_next_provisional = t.next_provisional;
  }

(* Copy-on-restore as well: two controllers restoring the same snapshot
   (or one restoring it twice) must never alias its tables. *)
let restore t (ps : persisted) =
  let load tbl copy src =
    Hashtbl.reset tbl;
    Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (copy v)) src
  in
  load t.meetings copy_meeting ps.ps_meetings;
  load t.participants copy_participant ps.ps_participants;
  load t.egress_ports Fun.id ps.ps_egress_ports;
  load t.relay_receivers Fun.id ps.ps_relay_receivers;
  t.next_agent <- ps.ps_next_agent;
  t.next_meeting <- ps.ps_next_meeting;
  t.next_pid <- ps.ps_next_pid;
  t.next_sfu_port <- ps.ps_next_sfu_port;
  t.next_egress_port <- ps.ps_next_egress_port;
  t.next_provisional <- ps.ps_next_provisional

(* The canonical rendering of controller intent, for equality checks
   across instances. Excludes anything legitimately instance-local:
   agent-side meeting ids (a rebuilt instance holds provisional ones
   until its promotion resync) and failure-detector state. *)
let intent_fingerprint t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pair_list ps =
    String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) ps)
  in
  let i = introspect t in
  List.iter
    (fun pv ->
      add "p %d m=%d h=%d s=%b v=%d a=%d scr=%s sites=%s cam=%s sp=%s\n" pv.pv_pid
        pv.pv_meeting pv.pv_home pv.pv_sends pv.pv_video_ssrc pv.pv_audio_ssrc
        (match pv.pv_screen_ssrc with None -> "-" | Some s -> string_of_int s)
        (pair_list pv.pv_sites) (pair_list pv.pv_cam_ports)
        (pair_list pv.pv_screen_ports))
    i.in_participants;
  List.iter
    (fun mv ->
      add "m %d pri=%d members=%s sites=%s\n" mv.cmv_mid mv.cmv_primary
        (String.concat "," (List.map string_of_int mv.cmv_members))
        (* site presence only — the agent-side ids differ by design *)
        (String.concat "," (List.map (fun (idx, _) -> string_of_int idx) mv.cmv_sites)))
    i.in_meetings;
  List.iter
    (fun rv ->
      add "r m=%d %d->%d port=%d\n" rv.rv_meeting rv.rv_src rv.rv_dst rv.rv_egress_port)
    i.in_relays;
  Hashtbl.fold (fun _ m acc -> m :: acc) t.meetings []
  |> List.sort (fun a b -> compare a.mid b.mid)
  |> List.iter (fun m ->
         List.iter
           (fun li ->
             add "leg m=%d sw=%d k=%s s=%d up=%d r=%d lp=%d dst=%s ad=%b\n" m.mid
               li.li_idx
               (match li.li_kind with Camera -> "cam" | Screen -> "scr")
               li.li_sender li.li_uplink_port li.li_receiver li.li_leg_port
               (Addr.to_string li.li_dst) li.li_adaptive)
           m.leg_intents;
         List.sort compare m.pair_targets
         |> List.iter (fun ((s, r), target) ->
                add "pt m=%d %d->%d t=%d\n" m.mid s r (Av1.Dd.index_of_target target)));
  Buffer.contents buf

let apply_journal_op t (op : Journal.op) =
  match op with
  | Journal.Create_meeting -> ignore (create_meeting_exec t)
  | Journal.Join { mid; home; simulcast; client; send_media } ->
      ignore (join_exec ?home ~simulcast t mid client ~send_media)
  | Journal.Leave { pid } -> leave_exec t pid
  | Journal.Start_screen { pid } -> start_screen_share_exec t pid
  | Journal.Stop_screen { pid } -> stop_screen_share_exec t pid
  | Journal.Set_pair_target { sender; receiver; target } ->
      set_pair_target_exec t ~sender ~receiver target

(* Catch up with the journal: jump to its snapshot if that is ahead of
   us, then replay the entries past our high-water mark. Returns the
   number of entries applied. This is both the standby's tailing step
   and the restarted controller's crash rebuild. *)
let apply_tail t =
  match t.journal with
  | None -> 0
  | Some j ->
      (match Journal.snapshot j with
      | Some (ps, index) when index > t.applied ->
          restore t ps;
          t.applied <- index
      | Some _ | None -> ());
      let entries = Journal.entries_after j t.applied in
      if entries <> [] then begin
        let was = t.recovering in
        t.recovering <- true;
        Fun.protect
          ~finally:(fun () -> t.recovering <- was)
          (fun () ->
            List.iter
              (fun (e : Journal.entry) ->
                apply_journal_op t e.Journal.e_op;
                t.applied <- e.Journal.e_index)
              entries)
      end;
      List.length entries

let alive t = not t.killed

(* Crash the controller process: its wire goes silent (including
   retransmits of in-flight requests — they settle by timeout on the
   agents' side of nothing), its failure detector stops, and every public
   entry point raises [Unavailable]. An op that already passed its
   journal append completes its local bookkeeping harmlessly — the
   journal has it, so the standby's rebuild executes it for real. *)
let kill t =
  if not t.killed then begin
    t.killed <- true;
    (* the process dying takes its heartbeats with it: emit the stop so
       liveness rules don't hold a dead detector to its tick schedule *)
    stop_health t;
    Array.iter (fun c -> Rpc_transport.Client.set_muted c true) t.rpcs;
    if Trace.enabled Trace.Rpc then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "ctrl_kill"
        ~args:[ ctrl_arg t ]
  end

(* Restart after a crash: memory is gone, so intent is rebuilt from the
   journal alone (snapshot + suffix replay). The instance comes back as
   a standby — it must win a {!promote} before acting again, which is
   also what re-fences the agents and re-materializes their state. *)
let restart t =
  if t.journal = None then
    invalid_arg "Controller.restart: no journal to rebuild from";
  if t.killed then begin
    t.killed <- false;
    Array.iter (fun c -> Rpc_transport.Client.set_muted c false) t.rpcs;
    t.role <- Standby;
    t.fence <- 0;
    Hashtbl.reset t.meetings;
    Hashtbl.reset t.participants;
    Hashtbl.reset t.egress_ports;
    Hashtbl.reset t.relay_receivers;
    t.next_agent <- 0;
    t.next_meeting <- 0;
    t.next_pid <- 0;
    t.next_sfu_port <- 40_000;
    t.next_egress_port <- 1;
    t.next_provisional <- -2;
    t.applied <- -1;
    Array.iter Queue.clear t.buffers;
    (match t.health with
    | Some h ->
        h.hs_running <- false;
        Array.iter
          (fun a ->
            a.ah <- Healthy;
            Metrics.set a.ah_gauge 0.;
            a.ah_epoch <- -1;
            a.ah_missed <- 0;
            a.ah_healing <- false;
            a.ah_observed <- -1;
            a.ah_dropped <- 0;
            Queue.clear a.ah_deferred)
          h.hs_agents;
        refresh_deferred_gauge h
    | None -> ());
    if Trace.enabled Trace.Rpc then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "ctrl_restart"
        ~args:[ ctrl_arg t ];
    ignore (apply_tail t)
  end

(* Take over as the acting primary: catch up with the journal, mint a
   strictly higher fencing epoch, then push a fenced full resync at every
   switch — the [Reset] installs the new fence on each agent, atomically
   invalidating any in-flight request the previous primary still has on
   the wire, and the intent replay erases whatever half-applied state it
   left. The detector starts first so a switch that is down during the
   takeover is simply marked Dead and healed by its next pong. *)
let promote ?health_config t =
  match t.journal with
  | None -> invalid_arg "Controller.promote: no journal"
  | Some j ->
      if t.killed then invalid_arg "Controller.promote: controller is killed";
      ignore (apply_tail t);
      t.fence <- Journal.acquire_fence j;
      t.role <- Acting;
      t.recovering <- false;
      if Trace.enabled Trace.Rpc then
        Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "ctrl_activate"
          ~args:[ ctrl_arg t; ("fence", Trace.I t.fence) ];
      (match health_config with
      | Some config -> start_health ~config t
      | None -> start_health t);
      Array.iteri (fun idx _ -> ignore (resync_switch t idx)) t.agents

let role t = t.role
let fence t = t.fence
let label t = t.label
let journal t = t.journal
let journal_applied t = t.applied
let recovering t = t.recovering

(* Compact the journal behind the cluster's most caught-up follower:
   snapshot [t]'s state at its high-water mark, dropping the entries it
   covers. Callers pass the standby (after a tail step), never an acting
   instance that might be mid-operation. *)
let compact_journal t =
  match t.journal with
  | None -> ()
  | Some j -> Journal.install_snapshot j ~index:t.applied (capture t)
