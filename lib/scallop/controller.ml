module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Client = Webrtc.Client

type meeting_id = int
type participant_id = int

type stream_kind = Camera | Screen

type participant = {
  pid : participant_id;
  meeting : meeting_id;
  client : Client.t;
  home : int;  (** index of the switch this participant attaches to *)
  egress_port : int;
  sends : bool;
  video_ssrc : int;
  audio_ssrc : int;
  send_conn : Client.connection option;
  mutable recv_conns : (participant_id * Client.connection) list;
  mutable sites : int list;  (** switches where this participant is registered *)
  mutable cam_ports : (int * int) list;  (** switch -> camera uplink port there *)
  mutable screen_ports : (int * int) list;  (** switch -> screen uplink port *)
  mutable screen : (int * Client.connection) option;  (** (screen ssrc, send conn) *)
  mutable screen_recv_conns : (participant_id * Client.connection) list;
}

(* A meeting's presence on one switch. All session mutation flows to the
   switch agent through the control-plane RPC client for that switch
   index — never by calling agent functions directly. *)
type site = {
  s_idx : int;  (** switch index, selects the RPC client *)
  dp : Dataplane.t;
  agent_mid : Switch_agent.meeting_id;
}

type meeting = {
  mid : meeting_id;
  primary : int;  (** default home switch for joiners *)
  sites : (int, site) Hashtbl.t;
  mutable members : participant_id list;
}

type t = {
  engine : Engine.t;
  network : Network.t;
  rng : Rng.t;
  agents : (Switch_agent.t * Dataplane.t) array;
  rpcs : Rpc_transport.Client.t array;  (** one control channel per switch *)
  mutable next_agent : int;
  meetings : (meeting_id, meeting) Hashtbl.t;
  participants : (participant_id, participant) Hashtbl.t;
  egress_ports : (int, int) Hashtbl.t;  (** client ip (or pseudo key) -> switch port *)
  relay_receivers : (meeting_id * int * int, unit) Hashtbl.t;
      (** (meeting, source switch, destination switch) pseudo receivers *)
  mutable next_meeting : int;
  mutable next_pid : int;
  mutable next_sfu_port : int;
  mutable next_egress_port : int;
  mutable sdp_messages : int;
}

(* The controller's address on the management network — a label on
   control datagrams; the channels themselves are point-to-point. *)
let controller_ip = Addr.ip_of_string "10.255.0.1"
let control_port = 6633

let create engine network rng ~agents ?(control = Rpc_transport.default) () =
  if agents = [] then invalid_arg "Controller.create: need at least one switch agent";
  let agents = Array.of_list agents in
  let rpcs =
    Array.mapi
      (fun idx (agent, dp) ->
        Rpc_transport.Client.connect engine (Rng.split rng) ~config:control
          ~label:(Printf.sprintf "sw%d" idx)
          ~local:(Addr.v controller_ip (control_port + idx))
          ~remote:(Addr.v (Dataplane.ip dp) control_port)
          (Switch_agent.rpc_server agent))
      agents
  in
  {
    engine;
    network;
    rng;
    agents;
    rpcs;
    next_agent = 0;
    meetings = Hashtbl.create 16;
    participants = Hashtbl.create 64;
    egress_ports = Hashtbl.create 64;
    relay_receivers = Hashtbl.create 16;
    next_meeting = 0;
    next_pid = 0;
    next_sfu_port = 40_000;
    next_egress_port = 1;
    sdp_messages = 0;
  }

let fresh_sfu_port t =
  let p = t.next_sfu_port in
  t.next_sfu_port <- p + 1;
  p

let egress_port_of t key =
  match Hashtbl.find_opt t.egress_ports key with
  | Some p -> p
  | None ->
      let p = t.next_egress_port in
      t.next_egress_port <- p + 1;
      Hashtbl.replace t.egress_ports key p;
      p

(* A pseudo participant id standing for "everything behind switch [idx]"
   when it appears as a receiver of another switch's replication trees. *)
let relay_pid idx = 900_000 + idx

(* Pseudo keys into the egress-port allocator for a sender registered on a
   non-home switch, and for a relay receiver. *)
let sender_site_key pid idx = 0x7E000000 + (pid * 64) + idx
let relay_site_key mid idx = 0x7F000000 + (mid * 64) + idx

(* Placement across cascaded switches: meetings get a round-robin primary
   switch; participants may be homed elsewhere (Appendix A), in which case
   cascade relays carry the media between switches. *)
let create_meeting t =
  let primary = t.next_agent in
  t.next_agent <- (t.next_agent + 1) mod Array.length t.agents;
  let mid = t.next_meeting in
  t.next_meeting <- mid + 1;
  Hashtbl.replace t.meetings mid
    { mid; primary; sites = Hashtbl.create 2; members = [] };
  mid

let find_meeting t mid =
  match Hashtbl.find_opt t.meetings mid with
  | Some m -> m
  | None -> invalid_arg "Controller: unknown meeting"

let find_participant t pid =
  match Hashtbl.find_opt t.participants pid with
  | Some p -> p
  | None -> invalid_arg "Controller: unknown participant"

(* --- control-plane RPC ------------------------------------------------------

   Every agent operation is a typed message shipped over that switch's
   control channel; the call blocks (in virtual time) until the agent's
   reply lands. An [Error] reply surfaces as [Invalid_argument], a dead
   channel as [Rpc_transport.Timed_out]. *)

let rpc t idx req =
  match Rpc_transport.Client.call t.rpcs.(idx) req with
  | Rpc.Ack -> ()
  | Rpc.Meeting_created _ ->
      invalid_arg
        (Printf.sprintf "Controller: unexpected meeting-created reply to %s"
           (Rpc.request_name req))
  | Rpc.Error msg -> invalid_arg msg

let rpc_new_meeting t idx ~two_party =
  match Rpc_transport.Client.call t.rpcs.(idx) (Rpc.New_meeting { two_party }) with
  | Rpc.Meeting_created { meeting } -> meeting
  | Rpc.Ack -> invalid_arg "Controller: missing meeting id in new-meeting reply"
  | Rpc.Error msg -> invalid_arg msg

(* Lazily bring a meeting up on a switch. *)
let site_of t m idx =
  match Hashtbl.find_opt m.sites idx with
  | Some s -> s
  | None ->
      let _, dp = t.agents.(idx) in
      let agent_mid = rpc_new_meeting t idx ~two_party:false in
      let s = { s_idx = idx; dp; agent_mid } in
      Hashtbl.replace m.sites idx s;
      s

(* --- SDP plumbing -----------------------------------------------------------

   Offers/answers really travel through the textual codec so the signaling
   path is exercised end to end: build -> to_string -> of_string (the
   "wire") -> candidate rewrite -> answer. *)

let ship t (sdp : Sdp.t) =
  t.sdp_messages <- t.sdp_messages + 1;
  Sdp.of_string (Sdp.to_string sdp)

let build_offer t ~ip ~port ~video_ssrc ~audio_ssrc ~sends =
  let addr = Addr.v ip port in
  let direction = if sends then Sdp.Sendonly else Sdp.Recvonly in
  {
    Sdp.session_id = Rng.int t.rng 1_000_000_000;
    origin_addr = Addr.v ip 0;
    ice_ufrag = Printf.sprintf "uf%06x" (Rng.int t.rng 0xFFFFFF);
    ice_pwd = Printf.sprintf "pw%08x" (Rng.int t.rng 0xFFFFFFF);
    medias =
      [
        Sdp.make_media ~direction ~extmaps:[ (Av1.Dd.extension_id, "urn:av1:dependency-descriptor") ]
          ~svc_mode:(Some "L1T3") ~kind:Sdp.Video ~mid:"0" ~payload_type:96 ~codec:"AV1"
          ~clock_rate:90000 ~ssrc:video_ssrc ~cname:"scallop" ~candidates:[ Sdp.host_candidate addr ]
          ();
        Sdp.make_media ~direction ~kind:Sdp.Audio ~mid:"1" ~payload_type:111 ~codec:"opus"
          ~clock_rate:48000 ~ssrc:audio_ssrc ~cname:"scallop"
          ~candidates:[ Sdp.host_candidate addr ] ();
      ];
  }

(* The controller's splice: the participant's offer is answered with the
   SFU's address as the only candidate (paper §5.1). *)
let splice_answer t offer ~sfu_addr =
  let intercepted = Sdp.rewrite_candidates offer sfu_addr in
  let answer =
    Sdp.answer ~offer:intercepted ~session_id:(Rng.int t.rng 1_000_000_000) ~origin:sfu_addr
      ~ice_ufrag:"sfuuf" ~ice_pwd:"sfupw" ~media_for:(fun m -> Some m)
  in
  ship t answer

(* Per-stream identifiers: a participant's camera bundle and its optional
   screen-share bundle are independent streams with their own SSRCs,
   uplinks and (when cascaded) relays. *)
let stream_ssrcs (p : participant) = function
  | Camera -> (p.video_ssrc, p.audio_ssrc)
  | Screen -> (0x300000 + (p.pid * 2), 0x300001 + (p.pid * 2))

let stream_bitrate = function Camera -> 2_500_000 | Screen -> 1_500_000

let stream_ports (p : participant) = function
  | Camera -> p.cam_ports
  | Screen -> p.screen_ports

let add_stream_port (p : participant) kind site port =
  match kind with
  | Camera -> p.cam_ports <- (site, port) :: p.cam_ports
  | Screen -> p.screen_ports <- (site, port) :: p.screen_ports

(* --- cascading (Appendix A) --------------------------------------------------

   A sender homed on switch A reaches receivers homed on switch B through a
   cascade relay: A treats "switch B" as one more receiver of the sender's
   streams (a non-adaptive leg, full quality), and B treats the relay as
   the sender's uplink, replicating and rate-adapting for its local
   receivers exactly as if the sender were attached directly. Feedback
   composes through the existing paths: B forwards its best receiver's
   REMB (and NACKs/PLIs) upstream, where it arrives on A's relay leg and
   flows to the real sender under A's filter. *)

let ensure_relay t m ~(sender : participant) ~kind ~to_switch =
  if not (List.mem_assoc to_switch (stream_ports sender kind)) then begin
    let src_site = site_of t m sender.home in
    let dst_site = site_of t m to_switch in
    let video_ssrc, audio_ssrc = stream_ssrcs sender kind in
    (* the downstream switch sees the sender as a sending participant whose
       uplink is the relay port (its own copies are self-suppressed, so the
       pseudo egress port never carries traffic) *)
    let relay_port = fresh_sfu_port t in
    if not (List.mem to_switch sender.sites) then begin
      rpc t dst_site.s_idx
        (Rpc.Register_participant
           {
             meeting = dst_site.agent_mid;
             participant = sender.pid;
             egress_port = egress_port_of t (sender_site_key sender.pid to_switch);
             sends = true;
           });
      sender.sites <- to_switch :: sender.sites
    end;
    rpc t dst_site.s_idx
      (Rpc.Register_uplink
         {
           meeting = dst_site.agent_mid;
           sender = sender.pid;
           port = relay_port;
           video_ssrc;
           audio_ssrc;
           full_bitrate = stream_bitrate kind;
           renditions = [||];
         });
    add_stream_port sender kind to_switch relay_port;
    (* the upstream switch sees the downstream switch as one receiver *)
    let rpid = relay_pid to_switch in
    let rkey = (m.mid, sender.home, to_switch) in
    if not (Hashtbl.mem t.relay_receivers rkey) then begin
      Hashtbl.replace t.relay_receivers rkey ();
      rpc t src_site.s_idx
        (Rpc.Register_participant
           {
             meeting = src_site.agent_mid;
             participant = rpid;
             egress_port = egress_port_of t (relay_site_key m.mid to_switch);
             sends = false;
           })
    end;
    let leg_port = fresh_sfu_port t in
    rpc t src_site.s_idx
      (Rpc.Register_leg
         {
           meeting = src_site.agent_mid;
           sender = sender.pid;
           uplink_port = Some (List.assoc sender.home (stream_ports sender kind));
           receiver = rpid;
           leg_port;
           dst = Addr.v (Dataplane.ip dst_site.dp) relay_port;
           adaptive = false;
         })
  end

(* Wire one (sender -> receiver) leg on the receiver's home switch:
   signaling towards the receiver plus agent/data-plane registration. *)
let create_stream_leg t m ~kind ~(sender : participant) ~(receiver : participant) =
  let site = site_of t m receiver.home in
  if sender.home <> receiver.home then ensure_relay t m ~sender ~kind ~to_switch:receiver.home;
  let video_ssrc, audio_ssrc = stream_ssrcs sender kind in
  let leg_port = fresh_sfu_port t in
  let sfu_addr = Addr.v (Dataplane.ip site.dp) leg_port in
  (* the sender's streams are re-offered to the receiver, with candidates
     rewritten to the leg address *)
  let offer =
    build_offer t ~ip:(Client.ip sender.client) ~port:leg_port ~video_ssrc ~audio_ssrc
      ~sends:true
  in
  let answer = splice_answer t (ship t offer) ~sfu_addr in
  let remote =
    match answer.Sdp.medias with
    | m :: _ -> ( match m.Sdp.candidates with c :: _ -> c.Sdp.addr | [] -> sfu_addr)
    | [] -> sfu_addr
  in
  let local_port = Client.fresh_port receiver.client in
  let conn =
    Client.add_recv_connection receiver.client ~local_port ~remote ~video_ssrc ~audio_ssrc
  in
  (match kind with
  | Camera -> receiver.recv_conns <- (sender.pid, conn) :: receiver.recv_conns
  | Screen -> receiver.screen_recv_conns <- (sender.pid, conn) :: receiver.screen_recv_conns);
  rpc t site.s_idx
    (Rpc.Register_leg
       {
         meeting = site.agent_mid;
         sender = sender.pid;
         uplink_port = Some (List.assoc receiver.home (stream_ports sender kind));
         receiver = receiver.pid;
         leg_port;
         dst = Client.local_addr conn;
         adaptive = true;
       })

let create_leg t m ~sender ~receiver = create_stream_leg t m ~kind:Camera ~sender ~receiver

(* Relay receivers are reference-counted implicitly by need: the pseudo
   participant standing for switch [dst] on switch [src] must exist while
   some current member homed on [src] still has a stream relayed to [dst].
   Every teardown path that can retire the last such stream calls this to
   unregister the stale pseudo participants (otherwise their egress legs
   and tree slots leak on the source switch). *)
let gc_relays t m =
  let needed src dst =
    List.exists
      (fun pid ->
        match Hashtbl.find_opt t.participants pid with
        | None -> false
        | Some p ->
            p.home = src
            && (List.mem_assoc dst p.cam_ports || List.mem_assoc dst p.screen_ports))
      m.members
  in
  let stale =
    Hashtbl.fold
      (fun (mid, src, dst) () acc ->
        if mid = m.mid && not (needed src dst) then (src, dst) :: acc else acc)
      t.relay_receivers []
  in
  List.iter
    (fun (src, dst) ->
      Hashtbl.remove t.relay_receivers (m.mid, src, dst);
      let site = site_of t m src in
      rpc t site.s_idx
        (Rpc.Remove_participant { meeting = site.agent_mid; participant = relay_pid dst }))
    stale

let join ?home ?(simulcast = false) t mid client ~send_media =
  let m = find_meeting t mid in
  let home =
    match home with
    | Some h when h >= 0 && h < Array.length t.agents -> h
    | Some h -> invalid_arg (Printf.sprintf "Controller.join: no switch %d" h)
    | None -> m.primary
  in
  let site = site_of t m home in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let ip = Client.ip client in
  let egress_port = egress_port_of t ip in
  (* stride 8 leaves room for a simulcast sender's rendition SSRCs
     (base, base+2, base+4) next to its audio (base+1) *)
  let video_ssrc = 0x200000 + (pid * 8) in
  let audio_ssrc = video_ssrc + 1 in
  rpc t site.s_idx
    (Rpc.Register_participant
       { meeting = site.agent_mid; participant = pid; egress_port; sends = send_media });
  let cam_ports = ref [] in
  let send_conn =
    if send_media then begin
      let uplink_port = fresh_sfu_port t in
      cam_ports := [ (home, uplink_port) ];
      let renditions =
        if simulcast then
          let cfg = Codec.Simulcast_source.default_config ~base_ssrc:video_ssrc in
          Array.mapi
            (fun i bitrate -> (video_ssrc + (2 * i), bitrate))
            cfg.Codec.Simulcast_source.bitrates
        else [||]
      in
      rpc t site.s_idx
        (Rpc.Register_uplink
           {
             meeting = site.agent_mid;
             sender = pid;
             port = uplink_port;
             video_ssrc;
             audio_ssrc;
             full_bitrate = 2_500_000;
             renditions;
           });
      (* the participant's own offer, spliced to the uplink *)
      let local_port = Client.fresh_port client in
      let offer =
        build_offer t ~ip ~port:local_port ~video_ssrc ~audio_ssrc ~sends:send_media
      in
      let sfu_addr = Addr.v (Dataplane.ip site.dp) uplink_port in
      let answer = splice_answer t (ship t offer) ~sfu_addr in
      let remote =
        match answer.Sdp.medias with
        | am :: _ -> (
            match am.Sdp.candidates with c :: _ -> c.Sdp.addr | [] -> sfu_addr)
        | [] -> sfu_addr
      in
      Some
        (if simulcast then
           Client.add_simulcast_send_connection client ~local_port ~remote
             ~base_ssrc:video_ssrc ~audio_ssrc
         else Client.add_send_connection client ~local_port ~remote ~video_ssrc ~audio_ssrc)
    end
    else None
  in
  let p =
    {
      pid;
      meeting = mid;
      client;
      home;
      egress_port;
      sends = send_media;
      video_ssrc;
      audio_ssrc;
      send_conn;
      recv_conns = [];
      sites = [ home ];
      cam_ports = !cam_ports;
      screen_ports = [];
      screen = None;
      screen_recv_conns = [];
    }
  in
  Hashtbl.replace t.participants pid p;
  (* legs with all existing members, possibly across switches — including
     any screen share already in progress, which a late joiner must
     receive just like camera media *)
  List.iter
    (fun other_pid ->
      let other = find_participant t other_pid in
      if other.sends then create_leg t m ~sender:other ~receiver:p;
      if other.screen <> None then
        create_stream_leg t m ~kind:Screen ~sender:other ~receiver:p;
      if send_media then create_leg t m ~sender:p ~receiver:other)
    m.members;
  m.members <- m.members @ [ pid ];
  pid

(* --- screen sharing: the controller's third trigger ("a participant
   starts or stops sharing a particular media type", §4) ----------------- *)

let start_screen_share t pid =
  let p = find_participant t pid in
  if p.screen <> None then invalid_arg "Controller.start_screen_share: already sharing";
  let m = find_meeting t p.meeting in
  let site = site_of t m p.home in
  let video_ssrc, audio_ssrc = stream_ssrcs p Screen in
  let uplink_port = fresh_sfu_port t in
  rpc t site.s_idx
    (Rpc.Register_uplink
       {
         meeting = site.agent_mid;
         sender = pid;
         port = uplink_port;
         video_ssrc;
         audio_ssrc;
         full_bitrate = stream_bitrate Screen;
         renditions = [||];
       });
  add_stream_port p Screen p.home uplink_port;
  (* the sharer's own offer for the new media section, spliced as usual *)
  let local_port = Client.fresh_port p.client in
  let offer =
    build_offer t ~ip:(Client.ip p.client) ~port:local_port ~video_ssrc ~audio_ssrc
      ~sends:true
  in
  let sfu_addr = Addr.v (Dataplane.ip site.dp) uplink_port in
  let answer = splice_answer t (ship t offer) ~sfu_addr in
  let remote =
    match answer.Sdp.medias with
    | am :: _ -> ( match am.Sdp.candidates with c :: _ -> c.Sdp.addr | [] -> sfu_addr)
    | [] -> sfu_addr
  in
  let conn =
    Client.add_send_connection ~send_audio:false ~video_bitrate:(stream_bitrate Screen)
      p.client ~local_port ~remote ~video_ssrc ~audio_ssrc
  in
  p.screen <- Some (video_ssrc, conn);
  List.iter
    (fun other_pid ->
      if other_pid <> pid then
        create_stream_leg t m ~kind:Screen ~sender:p
          ~receiver:(find_participant t other_pid))
    m.members

let stop_screen_share t pid =
  let p = find_participant t pid in
  match p.screen with
  | None -> ()
  | Some (_, conn) ->
      let m = find_meeting t p.meeting in
      (* tear the stream down on every switch it was relayed to *)
      List.iter
        (fun (idx, port) ->
          let site = site_of t m idx in
          rpc t site.s_idx (Rpc.Unregister_uplink { meeting = site.agent_mid; port }))
        p.screen_ports;
      p.screen_ports <- [];
      Client.close_connection p.client conn;
      p.screen <- None;
      List.iter
        (fun other_pid ->
          let other = find_participant t other_pid in
          let mine, rest =
            List.partition (fun (from, _) -> from = pid) other.screen_recv_conns
          in
          other.screen_recv_conns <- rest;
          List.iter (fun (_, c) -> Client.close_connection other.client c) mine)
        m.members;
      gc_relays t m

let screen_connection t pid ~from =
  let p = find_participant t pid in
  List.assoc_opt from p.screen_recv_conns

let leave t pid =
  match Hashtbl.find_opt t.participants pid with
  | None -> ()
  | Some p ->
      stop_screen_share t pid;
      let m = find_meeting t p.meeting in
      m.members <- List.filter (fun x -> x <> pid) m.members;
      (* retire the participant everywhere it is registered — its home plus
         any switch it was relayed onto as a sender *)
      List.iter
        (fun idx ->
          let site = site_of t m idx in
          rpc t site.s_idx
            (Rpc.Remove_participant { meeting = site.agent_mid; participant = pid }))
        (List.sort_uniq compare p.sites);
      gc_relays t m;
      Option.iter (fun c -> Client.close_connection p.client c) p.send_conn;
      List.iter (fun (_, c) -> Client.close_connection p.client c) p.recv_conns;
      (* drop the recv connections other participants had for p's media *)
      List.iter
        (fun other_pid ->
          let other = find_participant t other_pid in
          let mine, rest = List.partition (fun (from, _) -> from = pid) other.recv_conns in
          other.recv_conns <- rest;
          List.iter (fun (_, c) -> Client.close_connection other.client c) mine)
        m.members;
      Hashtbl.remove t.participants pid

type sender_info = { egress_port : int; video_ssrc : int; audio_ssrc : int }

let participant_sender_info t pid =
  let p = find_participant t pid in
  if p.sends then
    Some { egress_port = p.egress_port; video_ssrc = p.video_ssrc; audio_ssrc = p.audio_ssrc }
  else None

let set_pair_target t ~sender ~receiver target =
  let s = find_participant t sender in
  let r = find_participant t receiver in
  if s.meeting <> r.meeting then
    invalid_arg "Controller.set_pair_target: participants in different meetings";
  let m = find_meeting t s.meeting in
  let site = site_of t m r.home in
  rpc t site.s_idx
    (Rpc.Set_pair_target { meeting = site.agent_mid; sender; receiver; target })

let recv_connection t pid ~from =
  let p = find_participant t pid in
  List.assoc_opt from p.recv_conns

let send_connection t pid = (find_participant t pid).send_conn

let agent_meeting_id t mid =
  let m = find_meeting t mid in
  (site_of t m m.primary).agent_mid

let agent_participant_id _t pid = pid

type stats = {
  sdp_messages : int;
  control_requests : int;
  control_replies : int;
  control_retries : int;
  control_failures : int;
}

let stats (t : t) =
  let sum f = Array.fold_left (fun acc c -> acc + f (Rpc_transport.Client.stats c)) 0 t.rpcs in
  {
    sdp_messages = t.sdp_messages;
    control_requests = sum (fun (s : Rpc_transport.Client.stats) -> s.wire_requests);
    control_replies = sum (fun (s : Rpc_transport.Client.stats) -> s.replies_received);
    control_retries = sum (fun (s : Rpc_transport.Client.stats) -> s.retries);
    control_failures = sum (fun (s : Rpc_transport.Client.stats) -> s.failures);
  }

let control_channel t idx =
  if idx < 0 || idx >= Array.length t.rpcs then
    invalid_arg (Printf.sprintf "Controller.control_channel: no switch %d" idx);
  t.rpcs.(idx)

let meeting_participants t mid = (find_meeting t mid).members

let meeting_switch t mid =
  let m = find_meeting t mid in
  (site_of t m m.primary).dp

let switch_count t = Array.length t.agents
let participant_home t pid = (find_participant t pid).home

let switch_agent t idx =
  if idx < 0 || idx >= Array.length t.agents then
    invalid_arg (Printf.sprintf "Controller.switch_agent: no switch %d" idx);
  t.agents.(idx)

(* --- introspection: the controller's intent, for Scallop_analysis -------- *)

type participant_view = {
  pv_pid : participant_id;
  pv_meeting : meeting_id;
  pv_home : int;
  pv_sends : bool;
  pv_video_ssrc : int;
  pv_audio_ssrc : int;
  pv_screen_ssrc : int option;
  pv_sites : (int * int) list;
  pv_cam_ports : (int * int) list;
  pv_screen_ports : (int * int) list;
}

type relay_view = {
  rv_meeting : meeting_id;
  rv_src : int;
  rv_dst : int;
  rv_pid : participant_id;
  rv_egress_port : int;
}

type meeting_view = {
  cmv_mid : meeting_id;
  cmv_primary : int;
  cmv_members : participant_id list;
  cmv_sites : (int * int) list;
}

type intent = {
  in_participants : participant_view list;
  in_meetings : meeting_view list;
  in_relays : relay_view list;
}

let introspect t =
  let port_on (p : participant) idx =
    if idx = p.home then p.egress_port
    else
      Option.value ~default:(-1)
        (Hashtbl.find_opt t.egress_ports (sender_site_key p.pid idx))
  in
  let participants =
    Hashtbl.fold
      (fun _ (p : participant) acc ->
        {
          pv_pid = p.pid;
          pv_meeting = p.meeting;
          pv_home = p.home;
          pv_sends = p.sends;
          pv_video_ssrc = p.video_ssrc;
          pv_audio_ssrc = p.audio_ssrc;
          pv_screen_ssrc = Option.map fst p.screen;
          pv_sites =
            List.map (fun idx -> (idx, port_on p idx)) (List.sort_uniq compare p.sites);
          pv_cam_ports = List.sort compare p.cam_ports;
          pv_screen_ports = List.sort compare p.screen_ports;
        }
        :: acc)
      t.participants []
    |> List.sort (fun a b -> compare a.pv_pid b.pv_pid)
  in
  let meetings =
    Hashtbl.fold
      (fun _ m acc ->
        {
          cmv_mid = m.mid;
          cmv_primary = m.primary;
          cmv_members = m.members;
          cmv_sites =
            Hashtbl.fold (fun idx s acc -> (idx, s.agent_mid) :: acc) m.sites []
            |> List.sort compare;
        }
        :: acc)
      t.meetings []
    |> List.sort (fun a b -> compare a.cmv_mid b.cmv_mid)
  in
  let relays =
    Hashtbl.fold
      (fun (mid, src, dst) () acc ->
        {
          rv_meeting = mid;
          rv_src = src;
          rv_dst = dst;
          rv_pid = relay_pid dst;
          rv_egress_port =
            Option.value ~default:(-1)
              (Hashtbl.find_opt t.egress_ports (relay_site_key mid dst));
        }
        :: acc)
      t.relay_receivers []
    |> List.sort compare
  in
  { in_participants = participants; in_meetings = meetings; in_relays = relays }
