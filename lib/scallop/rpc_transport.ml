module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace
module Engine = Netsim.Engine
module Link = Netsim.Link
module Dgram = Netsim.Dgram
module Control_channel = Netsim.Control_channel

type config = {
  link : Link.config;
  timeout_ns : int;
  max_retries : int;
  backoff : float;
  max_backoff_ns : int;
  window : int;
}

(* An ideal management network: the seam is real (every call is encoded,
   shipped and decoded) but costs nothing, so experiments that don't
   study the control plane are unaffected by its existence. *)
let ideal_link =
  {
    Link.default with
    rate_bps = infinity;
    propagation_ns = 0;
    queue_bytes = max_int / 2;
  }

let default =
  {
    link = ideal_link;
    timeout_ns = Engine.ms 250;
    max_retries = 6;
    backoff = 2.0;
    max_backoff_ns = Engine.ms 2_000;
    window = 8;
  }

let degraded ?(loss = 0.0) ~rtt_ns () =
  { default with link = { ideal_link with propagation_ns = rtt_ns / 2; loss } }

type fault = Pass | Drop | Delay of int | Duplicate
type error = [ `Timeout | `Gave_up of int ]

exception
  Timed_out of {
    op : string;
    seq : int;
    attempts : int;
  }

let () =
  Printexc.register_printer (function
    | Timed_out { op; seq; attempts } ->
        Some
          (Printf.sprintf "Rpc_transport.Timed_out(%s, seq %d, %d attempts)" op seq
             attempts)
    | _ -> None)

(* --- server (agent side) --------------------------------------------------- *)

module Server = struct
  type stats = {
    requests_received : int;
    executed : int;
    replayed : int;
    replies_sent : int;
    decode_errors : int;
    dropped_offline : int;
  }

  type t = {
    engine : Engine.t;
    handler : Rpc.request -> Rpc.reply;
    on_receive : unit -> unit;
    label : string;  (** agent identity stamped on [rpc_exec] trace events *)
    seen : (Addr.t * int, Rpc.reply) Hashtbl.t;
        (** reply cache keyed by (requester, seq): controller instances
            allocate seqs independently, so two controllers (primary and
            a promoted standby) sharing one seq space must not collide
            in the cache — each runs under its own source address *)
    seen_order : (Addr.t * int) Queue.t;
    mutable reply_fault : (seq:int -> Rpc.reply -> fault) option;
    mutable online : bool;
    mutable requests_received : int;
    mutable executed : int;
    mutable replayed : int;
    mutable replies_sent : int;
    mutable decode_errors : int;
    mutable dropped_offline : int;
  }

  let cache_capacity = 1024

  let create engine ?(on_receive = fun () -> ()) ?(label = "agent") ~handler () =
    {
      engine;
      handler;
      on_receive;
      label;
      seen = Hashtbl.create 64;
      seen_order = Queue.create ();
      reply_fault = None;
      online = true;
      requests_received = 0;
      executed = 0;
      replayed = 0;
      replies_sent = 0;
      decode_errors = 0;
      dropped_offline = 0;
    }

  let set_reply_fault t f = t.reply_fault <- f
  let set_online t up = t.online <- up
  let online t = t.online

  (* A freshly restarted agent process has no memory of past sequence
     numbers; dropping the cache models that. Retransmits of pre-crash
     requests then re-execute, which is exactly the hazard the
     controller's post-restart full resync exists to repair. *)
  let flush_cache t =
    Hashtbl.reset t.seen;
    Queue.clear t.seen_order

  let remember t key reply =
    Hashtbl.replace t.seen key reply;
    Queue.push key t.seen_order;
    if Queue.length t.seen_order > cache_capacity then
      Hashtbl.remove t.seen (Queue.pop t.seen_order)

  let transmit t ~reply_via ~seq ~reply dgram =
    let action =
      match t.reply_fault with Some f -> f ~seq reply | None -> Pass
    in
    match action with
    | Drop -> ()
    | Delay ns -> Engine.schedule t.engine ~after:ns (fun () -> reply_via dgram)
    | Duplicate ->
        t.replies_sent <- t.replies_sent + 1;
        reply_via dgram;
        reply_via dgram
    | Pass -> reply_via dgram

  (* At-most-once execution: a seq already answered is replayed from the
     cache, so duplicate deliveries (retries, network duplication) never
     mutate agent state twice. *)
  let deliver t ~reply_via (dgram : Dgram.t) =
    if (not t.online) && not (Mutation.on Mutation.Exec_while_offline) then
      t.dropped_offline <- t.dropped_offline + 1
    else
    match Rpc.decode dgram.payload with
    | exception Rpc.Decode_error _ -> t.decode_errors <- t.decode_errors + 1
    | Rpc.Reply _ -> t.decode_errors <- t.decode_errors + 1
    | Rpc.Request { seq; request } ->
        t.requests_received <- t.requests_received + 1;
        t.on_receive ();
        let key = (dgram.src, seq) in
        let replayed = Hashtbl.mem t.seen key in
        let reply =
          match Hashtbl.find_opt t.seen key with
          | Some cached ->
              t.replayed <- t.replayed + 1;
              if Mutation.on Mutation.Corrupt_replay then Rpc.Error "replay-corrupt"
              else cached
          | None ->
              let reply =
                match t.handler request with
                | r -> r
                | exception Invalid_argument msg -> Rpc.Error msg
              in
              t.executed <- t.executed + 1;
              remember t key reply;
              reply
        in
        t.replies_sent <- t.replies_sent + 1;
        let payload = Rpc.encode (Rpc.Reply { seq; reply }) in
        if Trace.enabled Trace.Rpc then begin
          let fence_args =
            match request with
            | Rpc.Fenced { fence; _ } ->
                [
                  ("fence", Trace.I fence);
                  (* a [Stale_fence] answer means the op was refused, not
                     executed — the deposed-epoch rule keys on this *)
                  ( "rejected",
                    Trace.S
                      (match reply with
                      | Rpc.Stale_fence _ -> "true"
                      | _ -> "false") );
                ]
            | _ -> []
          in
          Trace.instant ~ts:(Engine.now t.engine) ~cat:"rpc" "rpc_exec"
            ~args:
              ([
                 ("name", Trace.S (Rpc.request_name request));
                 ("seq", Trace.I seq);
                 ("replayed", Trace.S (if replayed then "true" else "false"));
                 ("src", Trace.S (Addr.to_string dgram.src));
                 ("agent", Trace.S t.label);
                 (* digest of the encoded reply: the replay-identity rule
                    compares a replay's digest against the original's *)
                 ("digest", Trace.I (Hashtbl.hash payload));
               ]
              @ fence_args)
        end;
        transmit t ~reply_via ~seq ~reply (Dgram.v ~src:dgram.dst ~dst:dgram.src payload)

  let stats t =
    {
      requests_received = t.requests_received;
      executed = t.executed;
      replayed = t.replayed;
      replies_sent = t.replies_sent;
      decode_errors = t.decode_errors;
      dropped_offline = t.dropped_offline;
    }
end

(* --- client (controller side) ---------------------------------------------- *)

module Client = struct
  type stats = {
    calls : int;
    wire_requests : int;
    retries : int;
    replies_received : int;
    stale_replies : int;
    failures : int;
    batches : int;
    batched_ops : int;
  }

  (* One submission, from [submit] to settlement. Every entry point —
     blocking [call], pipelined async [submit], single-shot [probe] — is
     this same record with different retry/window parameters. *)
  type pend = {
    p_seq : int;
    p_request : Rpc.request;
    p_max_retries : int;
    p_timeout_ns : int;  (** first attempt's timeout *)
    p_oob : bool;  (** out-of-band: bypasses the pipeline window *)
    p_start_ns : int;
    mutable p_attempts : int;
    mutable p_state : [ `Queued | `In_flight | `Settled ];
    p_on_result : (Rpc.reply, error) result -> unit;
  }

  type t = {
    engine : Engine.t;
    cfg : config;
    local : Addr.t;
    remote : Addr.t;
    label : string;
    channel : Control_channel.t;
    pending : (int, pend) Hashtbl.t;
    backlog : pend Queue.t;  (** submissions waiting for a window slot *)
    mutable in_flight : int;  (** window-occupying submissions on the wire *)
    mutable request_fault : (seq:int -> attempt:int -> Rpc.request -> fault) option;
    mutable next_seq : int;
    mutable muted : bool;
        (** a killed controller transmits nothing — not even retransmits
            of in-flight requests or probes; its pending calls just time
            out in virtual time *)
    (* registry-backed (label [client="..."]); the stats record is the view *)
    calls : Metrics.counter;
    wire_requests : Metrics.counter;
    retries : Metrics.counter;
    replies_received : Metrics.counter;
    stale_replies : Metrics.counter;
    failures : Metrics.counter;
    batch_flushes : Metrics.counter;
    batched_ops_c : Metrics.counter;
    batch_size : Scallop_util.Stats.Histogram.t;
    pipeline_depth : Metrics.gauge;
  }

  let backoff_ns t ~base attempt =
    let scaled = float_of_int base *. (t.cfg.backoff ** float_of_int attempt) in
    min t.cfg.max_backoff_ns (int_of_float scaled)

  let transmit t ~seq ~attempt request dgram =
    if t.muted then ()
    else
    let action =
      match t.request_fault with
      | Some f -> f ~seq ~attempt request
      | None -> Pass
    in
    match action with
    | Drop -> ()
    | Delay ns ->
        Metrics.incr t.wire_requests;
        Engine.schedule t.engine ~after:ns (fun () ->
            Control_channel.send_fwd t.channel dgram)
    | Duplicate ->
        Metrics.add t.wire_requests 2;
        Control_channel.send_fwd t.channel dgram;
        Control_channel.send_fwd t.channel dgram
    | Pass ->
        Metrics.incr t.wire_requests;
        Control_channel.send_fwd t.channel dgram

  (* one complete span per submission, stamped whether it settled or
     timed out — retries stay inside the span rather than becoming
     events *)
  let span t p ~ok =
    if Trace.enabled Trace.Rpc then
      Trace.complete ~ts:p.p_start_ns
        ~dur:(Engine.now t.engine - p.p_start_ns)
        ~cat:"rpc"
        (Rpc.request_name p.p_request)
        ~args:
          [
            ("client", Trace.S t.label);
            ("seq", Trace.I p.p_seq);
            ("attempts", Trace.I p.p_attempts);
            ("ok", Trace.S (if ok then "true" else "false"));
          ]

  (* Settle a submission (at most once), free its window slot, and start
     as many backlogged submissions as now fit. *)
  let rec settle t p result =
    if p.p_state <> `Settled then begin
      let held_slot = p.p_state = `In_flight && not p.p_oob in
      p.p_state <- `Settled;
      Hashtbl.remove t.pending p.p_seq;
      if held_slot then begin
        t.in_flight <- t.in_flight - 1;
        Metrics.set t.pipeline_depth (float_of_int t.in_flight)
      end;
      span t p ~ok:(Result.is_ok result);
      p.p_on_result result;
      if held_slot then pump_backlog t
    end

  and pump_backlog t =
    while t.in_flight < t.cfg.window && not (Queue.is_empty t.backlog) do
      let p = Queue.pop t.backlog in
      if p.p_state = `Queued then start_pend t p
    done

  and start_pend t p =
    p.p_state <- `In_flight;
    if not p.p_oob then begin
      t.in_flight <- t.in_flight + 1;
      Metrics.set t.pipeline_depth (float_of_int t.in_flight)
    end;
    send_attempt t p ~attempt:0

  (* One attempt: (maybe) put the request on the wire, and arm the retry
     timer. Retries reuse the seq — the agent's replay cache depends on
     it — with exponentially backed-off timeouts. *)
  and send_attempt t p ~attempt =
    let payload = Rpc.encode (Rpc.Request { seq = p.p_seq; request = p.p_request }) in
    transmit t ~seq:p.p_seq ~attempt p.p_request
      (Dgram.v ~src:t.local ~dst:t.remote payload);
    Engine.schedule t.engine
      ~after:(backoff_ns t ~base:p.p_timeout_ns attempt)
      (fun () ->
        if p.p_state = `In_flight then
          if attempt >= p.p_max_retries then
            if p.p_max_retries = 0 then
              (* single shot (the probe lane): a missed reply is a data
                 point, not a failure worth the retry ladder *)
              settle t p (Error `Timeout)
            else begin
              Metrics.incr t.failures;
              settle t p (Error (`Gave_up p.p_attempts))
            end
          else begin
            Metrics.incr t.retries;
            p.p_attempts <- p.p_attempts + 1;
            send_attempt t p ~attempt:(attempt + 1)
          end)

  let on_reply t (dgram : Dgram.t) =
    match Rpc.decode dgram.payload with
    | exception Rpc.Decode_error _ -> Metrics.incr t.stale_replies
    | Rpc.Request _ -> Metrics.incr t.stale_replies
    | Rpc.Reply { seq; reply } -> (
        match Hashtbl.find_opt t.pending seq with
        | Some p when p.p_state = `In_flight ->
            Metrics.incr t.replies_received;
            settle t p (Ok reply)
        | Some _ | None ->
            (* duplicate or post-timeout reply; the call already settled *)
            Metrics.incr t.stale_replies)

  let connect engine rng ?(config = default) ?(label = "ctl") ~local ~remote server =
    if config.window < 1 then invalid_arg "Rpc_transport.Client.connect: window < 1";
    let channel =
      Control_channel.create engine rng ~fwd:config.link ~rev:config.link ()
    in
    let labels = [ ("client", label) ] in
    let counter help name = Metrics.counter ~labels ~help name in
    let t =
      {
        engine;
        cfg = config;
        local;
        remote;
        label;
        channel;
        pending = Hashtbl.create 8;
        backlog = Queue.create ();
        in_flight = 0;
        request_fault = None;
        next_seq = 0;
        muted = false;
        calls = counter "RPC calls issued" "scallop_rpc_calls";
        wire_requests =
          counter "request datagrams put on the wire (retries/dups included)"
            "scallop_rpc_wire_requests";
        retries = counter "retransmissions after a timeout" "scallop_rpc_retries";
        replies_received = counter "replies that settled a call" "scallop_rpc_replies";
        stale_replies =
          counter "late/duplicate replies for settled calls" "scallop_rpc_stale_replies";
        failures = counter "calls that exhausted every retry" "scallop_rpc_failures";
        batch_flushes =
          counter "Batch requests submitted (one per controller buffer flush)"
            "scallop_rpc_batch_flushes";
        batched_ops_c =
          counter "ops carried inside Batch requests" "scallop_rpc_batched_ops";
        batch_size =
          Metrics.histogram ~labels ~help:"ops per Batch request"
            ~bounds:(Scallop_util.Stats.Histogram.log_bounds ~lo:1.0 ~hi:1000.0 ~per_decade:5)
            "scallop_rpc_batch_size";
        pipeline_depth =
          Metrics.gauge ~labels ~help:"window-occupying requests currently in flight"
            "scallop_rpc_batch_pipeline_depth";
      }
    in
    Control_channel.set_fwd_sink channel (fun dgram ->
        Server.deliver server ~reply_via:(Control_channel.send_rev channel) dgram);
    Control_channel.set_rev_sink channel (fun dgram -> on_reply t dgram);
    t

  let set_request_fault t f = t.request_fault <- f
  let set_muted t m = t.muted <- m
  let muted t = t.muted

  (* The unified asynchronous entry point. A submission takes a window
     slot and goes on the wire immediately when fewer than [window]
     (non-OOB) submissions are in flight; otherwise it waits its turn in
     the backlog — in-flight pipelining up to the window. [oob] bypasses
     the window entirely (the heartbeat lane: a probe must not starve
     behind a stuck pipeline). Note that under loss the server can
     execute pipelined requests out of submission order (an earlier
     request's retransmit can land after a later request); callers that
     need ordering either keep one submission in flight or put the
     ordered ops inside a single [Rpc.Batch]. *)
  let submit t ?(oob = false) ?max_retries ?timeout_ns request ~on_result =
    Metrics.incr t.calls;
    (match request with
    | Rpc.Batch ops ->
        Metrics.incr t.batch_flushes;
        let n = List.length ops in
        Metrics.add t.batched_ops_c n;
        Scallop_util.Stats.Histogram.observe t.batch_size (float_of_int n)
    | _ -> ());
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let p =
      {
        p_seq = seq;
        p_request = request;
        p_max_retries = Option.value max_retries ~default:t.cfg.max_retries;
        p_timeout_ns = Option.value timeout_ns ~default:t.cfg.timeout_ns;
        p_oob = oob;
        p_start_ns = Engine.now t.engine;
        p_attempts = 1;
        p_state = `Queued;
        p_on_result = on_result;
      }
    in
    Hashtbl.replace t.pending seq p;
    if oob || t.in_flight < t.cfg.window then start_pend t p
    else Queue.push p t.backlog;
    seq

  (* Block (in simulation terms) until the reply lands: pump the engine
     one event at a time, which lets the rest of the simulated world —
     media, timers, other meetings — keep running while this call is in
     flight. With the ideal default link the reply arrives at the same
     instant and no virtual time passes. *)
  let call_seq t request =
    let cell = ref None in
    let seq = submit t request ~on_result:(fun r -> cell := Some r) in
    let rec pump () =
      match !cell with
      | Some r -> (r, seq)
      | None ->
          if Engine.step t.engine then pump ()
          else begin
            (* the world ran dry while the reply (or its retry timer) was
               still outstanding — nothing can settle this call anymore *)
            (match Hashtbl.find_opt t.pending seq with
            | Some p -> settle t p (Error `Timeout)
            | None -> ());
            match !cell with Some r -> (r, seq) | None -> (Error `Timeout, seq)
          end
    in
    pump ()

  let call t request = fst (call_seq t request)

  (* the exception face of [call]: a thin wrapper over the typed result *)
  let call_exn t request =
    match call_seq t request with
    | Ok reply, _ -> reply
    | Error err, seq ->
        let attempts =
          match err with `Gave_up n -> n | `Timeout -> 0
        in
        raise (Timed_out { op = Rpc.request_name request; seq; attempts })

  (* One shot, no retries, never blocks: the heartbeat primitive as a
     special case of [submit] — out of band (window-exempt) with an
     empty retry ladder. *)
  let probe t ?timeout_ns request ~on_result =
    ignore (submit t ~oob:true ~max_retries:0 ?timeout_ns request ~on_result)

  let in_flight t = t.in_flight
  let backlog_depth t = Queue.length t.backlog

  let channel t = t.channel
  let request_link t = Control_channel.fwd_link t.channel
  let reply_link t = Control_channel.rev_link t.channel

  let stats t =
    {
      calls = Metrics.value t.calls;
      wire_requests = Metrics.value t.wire_requests;
      retries = Metrics.value t.retries;
      replies_received = Metrics.value t.replies_received;
      stale_replies = Metrics.value t.stale_replies;
      failures = Metrics.value t.failures;
      batches = Metrics.value t.batch_flushes;
      batched_ops = Metrics.value t.batched_ops_c;
    }
end
