(** The control-plane API between the controller (tier 1) and a switch
    agent (tier 2) as a first-class message vocabulary (paper §5).

    Each constructor of {!request} mirrors one {!Switch_agent} session
    operation; a request travels inside a sequence-numbered envelope
    ({!message}) over a simulated control link (see {!Rpc_transport}),
    so control-plane latency, loss and failure are visible to
    experiments instead of being a counted-but-free function call. *)

type request =
  | New_meeting of { two_party : bool }
  | Register_participant of {
      meeting : int;
      participant : int;
      egress_port : int;
      sends : bool;
    }
  | Register_uplink of {
      meeting : int;
      sender : int;
      port : int;
      video_ssrc : int;
      audio_ssrc : int;
      full_bitrate : int;
      renditions : (int * int) array;  (** simulcast (ssrc, bitrate), best first *)
    }
  | Register_leg of {
      meeting : int;
      sender : int;
      uplink_port : int option;
      receiver : int;
      leg_port : int;
      dst : Scallop_util.Addr.t;
      adaptive : bool;
    }
  | Remove_participant of { meeting : int; participant : int }
  | Unregister_uplink of { meeting : int; port : int }
  | Set_pair_target of {
      meeting : int;
      sender : int;
      receiver : int;
      target : Av1.Dd.decode_target;
    }
  | Ping
      (** controller heartbeat; answered with {!Pong} carrying the
          agent's restart epoch so the controller can tell a healed
          partition (same epoch, state intact) from a fresh restart
          (bumped epoch, state lost) *)
  | Reset
      (** wipe every meeting, stream and leg on the agent and its data
          plane — the first step of a full resync, making intent replay
          convergent from any drifted state *)
  | Batch of request list
      (** an ordered list of operations shipped under a single sequence
          number and executed in list order; answered by {!Batch_reply}
          with one reply per op in the same order. Because the whole
          batch shares one seq, the agent's reply cache makes batch
          replay idempotent exactly like a single op: a retransmitted
          batch replays the cached reply list without re-executing any
          member. Nesting is permitted by the codec but the controller
          never sends it. *)
  | Fenced of { fence : int; op : request }
      (** [op] carried under a fencing epoch: the agent executes it only
          if [fence] is at least the highest fence it has ever observed,
          and answers {!Stale_fence} otherwise — how a deposed primary's
          in-flight or retransmitted ops are kept from double-executing
          after a failover (split-brain prevention, paper-adjacent
          carrier-grade control-plane requirement) *)

type reply =
  | Meeting_created of { meeting : int }  (** answers [New_meeting] *)
  | Ack
  | Pong of { epoch : int }  (** answers [Ping] *)
  | Error of string
      (** the agent rejected the request (e.g. unknown meeting); carried
          back as data, not an exception, so it survives the wire *)
  | Batch_reply of reply list
      (** answers [Batch]: the i-th element answers the i-th op; a
          failed op contributes its [Error] in place while later ops
          still execute (partial failure is per-op, never all-or-nothing) *)
  | Stale_fence of { fence : int }
      (** the agent refused a {!Fenced} request because it has already
          seen a higher fence ([fence] is the agent's current one); the
          sender is deposed and must stop acting as primary *)

type message =
  | Request of { seq : int; request : request }
  | Reply of { seq : int; reply : reply }
      (** a reply echoes its request's [seq]; retransmitted requests
          reuse their original [seq], which is what lets the agent
          replay cached replies instead of re-executing (at-most-once
          execution under at-least-once delivery) *)

exception Decode_error of string

val request_name : request -> string

val encode : message -> bytes
(** Space-separated textual wire format (inspectable, honestly sized).
    Batch members are framed recursively with token-count prefixes, so
    sub-messages whose fields contain spaces (an [Error] text) still
    round-trip exactly. *)

val decode : bytes -> message
(** @raise Decode_error on malformed input. *)
