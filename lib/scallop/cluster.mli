(** A packaged primary/standby controller pair sharing one intent
    {!Journal}, with a heartbeat-driven failure detector.

    The cluster runs a beat timer (default every 250 ms of virtual
    time). Each beat:

    - runs the lease check ({!Controller.refresh_role}) on whichever
      instance believes it is acting, so a fenced-out primary deposes
      itself within one beat even if it never writes;
    - tails the journal on the standby ({!Controller.apply_tail}) and,
      every [compact_every] applied entries, compacts the journal from
      the standby's caught-up state ({!Controller.compact_journal});
    - counts consecutive beats with no live acting primary, and
      promotes the standby ({!Controller.promote}) after
      [promote_after] missed beats.

    {!kill_primary} and {!promote} are also directly callable — the
    bounded explorer uses them as fault-grid events ({!promote} with a
    live primary models a false-positive failure detection, the
    split-brain seed the fencing protocol must contain). *)

type config = {
  beat_every_ns : int;  (** beat interval (virtual time) *)
  promote_after : int;
      (** consecutive missed beats before the standby is promoted *)
  compact_every : int;
      (** journal entries between standby-driven compactions; 0 never
          compacts *)
}

val default : config
(** 250 ms beats, promote after 2 missed, compact every 32 entries. *)

type t

val create :
  ?config:config ->
  Netsim.Engine.t ->
  Netsim.Network.t ->
  Scallop_util.Rng.t ->
  agents:(Switch_agent.t * Dataplane.t) list ->
  ?control:Rpc_transport.config ->
  ?batch:bool ->
  unit ->
  t
(** Build the pair: an acting primary (label ["ctl"], the default
    controller address) and a tailing standby (label ["ctl1"], its own
    address 10.255.0.2), both over a fresh shared journal, and start
    the beat timer. *)

val endpoint : t -> Controller.t
(** The instance a workload should call: the live acting primary with
    the freshest fence. Mid-failover (primary dead, standby not yet
    promoted) this still returns the dead primary — callers see
    {!Controller.Unavailable} and retry, the client-library contract. *)

val acting : t -> Controller.t option
(** Whichever instance currently holds the [Acting] role, dead or not. *)

val standby_instance : t -> Controller.t option
(** The live tailing standby, if any. *)

val primary : t -> Controller.t
val standby : t -> Controller.t
(** The two instances by their initial role (the roles themselves
    migrate on failover). *)

val journal : t -> Controller.persisted Journal.t
val promotions : t -> int
(** Promotions performed so far (detector-driven and forced). *)

val start_health : ?config:Controller.health_config -> t -> unit
(** Start the agent failure detector on the current acting instance;
    the config is remembered and re-used when a promotion starts the
    detector on the new primary. *)

val stop_health : t -> unit

val kill_primary : t -> unit
(** Kill the live acting instance (no-op if none). The beat timer's
    missed-beat counter then drives the standby's promotion. *)

val promote : t -> unit
(** Promote the live standby immediately, even if the primary is
    healthy — a false-positive failure detection. Fencing guarantees
    the deposed primary can commit no new intent afterwards. *)

val restart_killed : t -> unit
(** Restart any killed instance; it rejoins as a tailing standby. *)

val stop : t -> unit
(** Stop the beat timer and both instances' failure detectors. *)
