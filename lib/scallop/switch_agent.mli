(** Scallop's switch agent — the latency-sensitive middle tier that runs on
    the switch CPU (paper §4, §5).

    The agent receives CPU-port copies from the data plane and never
    touches media. Its jobs:

    - {b STUN}: answer connectivity checks (too complex for the parser,
      not latency-critical, §5.1);
    - {b feedback filtering} (§5.3): keep an EWMA of every receiver leg's
      REMB estimates per sender stream, select the best-performing
      downlink, and configure the data plane to forward only that leg's
      REMB to the sender;
    - {b layer selection} (§5.4): run the pluggable
      [select_decode_target(currDT, estHist, newEst)] function per
      receiver leg and reconfigure the data plane / replication trees when
      the target changes;
    - {b key-frame analysis}: consume RTP packets carrying an extended
      AV1 dependency descriptor and refresh the template→layer mapping;
    - {b tree migration} (§6.1): move meetings between Two_party / NRA /
      RA-R / RA-SR designs as their adaptation needs change, by building
      the new trees before retiring the old ones.

    The controller (tier 1) drives session state through the {!Rpc}
    message vocabulary, delivered by this agent's {!Rpc_transport.Server}
    over a simulated control link; the registration functions below are
    the agent-local operations those messages dispatch to. *)

type t

type select_decode_target =
  current:Av1.Dd.decode_target ->
  history:float list ->
  estimate_bps:int ->
  full_bitrate_bps:int ->
  Av1.Dd.decode_target
(** The paper's [selectDecodeTarget(currDT, estHist, newEst) -> newDT]
    extension point. *)

val default_select : select_decode_target
(** The fixed-threshold heuristic ({!Codec.Rate_policy}). *)

val create :
  Netsim.Engine.t ->
  Dataplane.t ->
  ?rewrite:Seq_rewrite.variant ->
  ?select:select_decode_target ->
  ?migration_enabled:bool ->
  ?rewriting_enabled:bool ->
  ?feedback_filter:bool ->
  unit ->
  t
(** Installs itself as the data plane's CPU sink. [rewrite] (default S_LM)
    is used for rate-adapted legs.

    The last two switches exist for ablation studies:
    [rewriting_enabled:false] registers legs without sequence-rewriting
    state, so rate adaptation leaves raw gaps (the naive design §6.2
    argues against); [feedback_filter:false] forwards {e every} receiver's
    REMB to the sender instead of the best downlink's, recreating the
    mixed-feedback collapse of §5.3/Fig. 8. *)

(** {1 Session registration (the targets of the {!Rpc} vocabulary)} *)

type meeting_id = int

val new_meeting : t -> two_party:bool -> meeting_id
val meeting_design : t -> meeting_id -> Trees.design

val register_participant :
  t -> meeting:meeting_id -> participant:int -> egress_port:int -> sends:bool -> unit

val remove_participant : t -> meeting:meeting_id -> participant:int -> unit

val unregister_uplink : t -> meeting:meeting_id -> port:int -> unit
(** Tear down one stream (and its legs) without removing the participant —
    the paper's "participant stops sharing a media type" trigger. *)

val register_uplink :
  ?renditions:(int * int) array -> t -> meeting:meeting_id -> sender:int -> port:int ->
  video_ssrc:int -> audio_ssrc:int -> full_bitrate:int -> unit
(** [renditions] declares a simulcast uplink: (ssrc, bitrate) pairs, best
    first. Legs of such a stream are spliced between renditions by the
    agent instead of SVC layer-dropping. *)

val register_leg :
  t -> meeting:meeting_id -> sender:int -> ?uplink_port:int -> receiver:int ->
  leg_port:int -> dst:Scallop_util.Addr.t -> ?adaptive:bool -> unit -> unit
(** Wires the (sender → receiver) egress leg into the data plane, with
    sequence rewriting enabled per the agent's [rewrite] variant.
    [uplink_port] selects among a sender's streams when it has several
    (camera vs screen share); it defaults to the sender's only stream.

    [adaptive:false] marks a cascade leg towards a downstream switch
    (Appendix A): its REMB still feeds the best-downlink filter — the
    downstream switch only reports its best receiver — but the leg itself
    always carries the full-quality stream, because the downstream switch
    performs its own per-receiver adaptation. *)

val set_pair_target :
  t -> meeting:meeting_id -> sender:int -> receiver:int ->
  Av1.Dd.decode_target -> unit
(** Force a sender-specific target (drives the meeting towards RA-SR). *)

(** {1 Control-plane endpoint} *)

val dispatch : t -> Rpc.request -> Rpc.reply
(** Execute one control-plane request against agent state. Normally
    invoked by {!rpc_server} for each message off the wire; exposed for
    tests that drive the agent without a transport. An [Rpc.Batch] runs
    its ops in list order and answers with an [Rpc.Batch_reply] holding
    one reply per op; a member that fails contributes an [Rpc.Error]
    slot while the remaining ops still execute. *)

val rpc_server : t -> Rpc_transport.Server.t
(** The agent's control-plane endpoint, created with the agent. The
    controller connects an {!Rpc_transport.Client} to it; duplicate
    deliveries are answered from the server's replay cache, keeping
    every operation idempotent on the wire. *)

(** {1 Crash and restart}

    The failure model is a whole-switch power loss: agent process and
    ASIC tables die together. {!crash} takes the switch down — session
    state and data-plane tables are wiped (the memory is gone with the
    power), the RPC endpoint stops answering, the CPU port goes deaf.
    {!restart} is a fresh boot: empty state, empty RPC replay cache,
    and a bumped {!epoch}, which the agent reports in every heartbeat
    [Pong] so the controller can tell "rebooted and blank" (full
    resync needed) from "was merely unreachable" (deferred ops can
    simply drain). *)

val crash : t -> unit
(** Idempotent: crashing a dead switch does nothing. *)

val restart : t -> unit
(** Boot (back) up with empty state and [epoch + 1]. Restarting a
    running switch models a reboot — the crash happens implicitly. *)

val alive : t -> bool
val epoch : t -> int

val fence : t -> int
(** Highest fencing epoch seen on any [Rpc.Fenced] request (0 until one
    arrives). Requests under a lower fence are answered [Stale_fence]
    without executing — a deposed primary cannot double-execute here.
    Reset to 0 by {!restart} (fence memory dies with the power); the
    acting controller's fenced resync re-installs it. *)

(** {1 Statistics} *)

type stats = {
  rpc_calls : int;
      (** control-plane request messages received on the wire,
          duplicate deliveries included *)
  cpu_packets : int;
  cpu_bytes : int;
  stun_answered : int;
  rembs_analyzed : int;
  target_changes : int;
  filter_switches : int;  (** times the best-downlink selection changed *)
  migrations : int;
}

val stats : t -> stats

val current_target : t -> meeting:meeting_id -> sender:int -> receiver:int ->
  Av1.Dd.decode_target

val meeting_members : t -> meeting_id -> int list
(** Participants currently registered in a meeting, in registration
    order (introspection for state-equivalence tests). *)

(** {1 Introspection (read-only, for the {!Scallop_analysis} snapshot layer)}

    The agent's shadow of every session it manages: meetings, members,
    sender streams and their legs, as the agent believes the data plane is
    programmed. The verifier diffs this against controller intent on one
    side and data-plane ground truth on the other. *)

type leg_view = {
  alv_port : int;
  alv_receiver : int;
  alv_adaptive : bool;
  alv_target : Av1.Dd.decode_target;
}

type stream_view = {
  asv_uplink_port : int;
  asv_sender : int;
  asv_video_ssrc : int;
  asv_audio_ssrc : int;
  asv_renditions : (int * int) array;
  asv_best_leg : int option;  (** the leg whose REMB is forwarded upstream *)
  asv_legs : leg_view list;
}

type meeting_view = {
  amv_id : meeting_id;
  amv_design : Trees.design;
  amv_handle : Trees.handle;
  amv_members : (int * int) list;  (** participant, egress port *)
  amv_senders : int list;
  amv_pair_specific : bool;
  amv_streams : stream_view list;
}

val introspect : t -> meeting_view list
(** Every meeting the agent manages, sorted by id. *)

val feedback_filter_enabled : t -> bool
