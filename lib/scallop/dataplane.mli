(** The Scallop data plane — the behavioural equivalent of the paper's
    ~2000 lines of P4 (paper §6, Appendix E).

    Attached to the simulated network as the switch host, it processes
    every packet addressed to the SFU:

    - {b classification} by UDP-payload lookahead (RTP / RTCP / STUN);
    - {b media path}: parse the RTP header and the AV1 dependency
      descriptor extension; look up the sender's uplink entry; obtain PRE
      metadata from {!Trees}; replicate; per replica, look up the
      (receiver, SSRC) egress entry; if the leg is rate-adapted, drop
      suppressed layers and run the {!Seq_rewrite} heuristic; rewrite
      source/destination addresses (true-proxy addressing) and emit after
      a fixed pipeline latency;
    - {b feedback path}: NACK / PLI / REMB arriving on a leg port are
      forwarded upstream to the sender without delay — REMB only when the
      switch agent has selected this leg as the best downlink — and copied
      to the CPU port; sender reports are replicated downstream;
    - {b control path}: STUN, and key frames carrying an extended
      dependency descriptor, are copied to the CPU port for the agent.

    The module is configured exclusively through the table-write style API
    below, which is how the switch agent and controller drive it. *)

type t

type mode =
  | Fast  (** zero-copy: ingress view + per-replica copy-and-patch (default) *)
  | Slow  (** the record-based parse/reserialize path — the executable spec *)
  | Paranoid
      (** run both, assert byte-equality of every emitted datagram; raises
          {!Differential_mismatch} on divergence. Always on in tests. *)

exception Differential_mismatch of string
(** Paranoid mode found an egress datagram where the fast path's bytes
    differ from the slow path's. *)

val create :
  Netsim.Engine.t ->
  Netsim.Network.t ->
  ip:int ->
  ?pre_limits:Tofino.Pre.limits ->
  ?pipeline_latency_ns:int ->
  ?cpu_port_latency_ns:int ->
  ?header_auth:bool ->
  ?mode:mode ->
  ?obs_label:string ->
  unit ->
  t
(** Defaults: 600 ns pipeline, 50 µs CPU port, [Fast] forwarding mode.

    [obs_label] (default ["sw0"]) names this switch in the metrics
    registry (label [switch="..."] on the [scallop_dp_*] series) and is
    forwarded to the embedded {!Tofino.Pre} instance; re-creating a
    switch under the same label replaces its registry entries rather
    than aggregating into them.

    [header_auth] enables the paper's §8 extension: recomputing an HMAC
    over the (rewritten) RTP header of every egress replica, as the paper
    argues is feasible on programmable hardware. The model charges extra
    pipeline latency and match-action resources; payloads stay opaque
    (SRTP-compatible), so nothing else changes. *)

val ip : t -> int

val obs_label : t -> string
(** The metrics-registry label this switch was created with (reused by
    {!Switch_agent} for its own per-switch series). *)

val trees : t -> Trees.t
val pre : t -> Tofino.Pre.t

val mode : t -> mode
val set_mode : t -> mode -> unit
(** Switching modes is safe at any quiescent point; per-leg rewriter
    state is shared by both paths, so the choice only affects how egress
    bytes are materialized. *)

(** {1 Control-plane configuration API} *)

val set_cpu_sink : t -> (Netsim.Dgram.t -> unit) -> unit
(** Where CPU-port copies go (the switch agent). *)

val inject : t -> Netsim.Dgram.t -> unit
(** Agent/controller sends a packet out through the switch. *)

type uplink = {
  sender : int;
  meeting : Trees.handle;
  video_ssrc : int;
  audio_ssrc : int;
  renditions : int array;  (** simulcast SSRCs; [| |] for plain SVC uplinks *)
  mutable feedback_dst : Scallop_util.Addr.t option;
      (** Learned from the first uplink packet: where the sender's own
          feedback (REMB/NACK/PLI towards it) must be sent. *)
}

val register_uplink :
  ?renditions:int array -> t -> port:int -> sender:int -> meeting:Trees.handle ->
  video_ssrc:int -> audio_ssrc:int -> unit

val unregister_uplink : t -> port:int -> unit
val uplink_entry : t -> port:int -> uplink option
val swap_meeting_handle : t -> port:int -> Trees.handle -> unit
(** Migration step 2: repoint an uplink at a new tree set. *)

val register_leg :
  ?simulcast:int array -> t -> receiver:int -> video_ssrc:int -> audio_ssrc:int ->
  dst:Scallop_util.Addr.t -> src_port:int -> uplink_port:int ->
  rewrite:Seq_rewrite.variant option -> unit
(** One (sender stream → receiver) egress leg. [src_port] is the switch
    port the receiver believes its peer lives at; feedback arriving there
    is matched back to the sender via [uplink_port]. [rewrite] enables the
    sequence-rewriting state for rate-adapted legs.
    @raise Tofino.Table.Table_full-equivalent [Failure] when the stream
    index table is exhausted (65,536 rate-adapted streams). *)

val unregister_leg : t -> receiver:int -> video_ssrc:int -> unit

val reset : t -> unit
(** Power-cycle the match-action state: clear the uplink/egress/feedback
    tables, zero every stream-tracker cell, rewind the stream-index
    allocator. Does {e not} touch the PRE — tree teardown belongs to the
    agent's meeting records ({!Switch_agent} wipes those first). The
    crash half of the crash/resync story. *)

val set_leg_target : t -> receiver:int -> video_ssrc:int -> Av1.Dd.decode_target -> unit
(** Update the frame-skip cadence of a leg's rewriter. *)

val set_leg_rendition : t -> leg_port:int -> int -> unit
(** Simulcast: ask the leg to splice onto another rendition (takes effect
    at that rendition's next key frame). *)

val leg_rendition : t -> leg_port:int -> int option

val request_keyframe : t -> uplink_port:int -> ssrc:int -> unit
(** Send a PLI towards the sender for one of its streams — how the agent
    obtains the key frame a pending rendition switch needs. *)

val set_remb_forwarding : t -> leg_port:int -> bool -> unit
(** The agent's filter function output (paper §5.3): only the selected
    best-downlink leg forwards its REMBs to the sender. *)

(** {1 Statistics} *)

type counters = {
  mutable rtp_audio_pkts : int;
  mutable rtp_audio_bytes : int;
  mutable rtp_video_pkts : int;
  mutable rtp_video_bytes : int;
  mutable rtp_av1_ds_pkts : int;
  mutable rtp_av1_ds_bytes : int;
  mutable rtcp_sr_sdes_pkts : int;
  mutable rtcp_sr_sdes_bytes : int;
  mutable rtcp_rr_pkts : int;
  mutable rtcp_rr_bytes : int;
  mutable rtcp_remb_pkts : int;
  mutable rtcp_remb_bytes : int;
  mutable stun_pkts : int;
  mutable stun_bytes : int;
  mutable other_pkts : int;
  mutable other_bytes : int;
}

val ingress_counters : t -> counters
(** Classification of everything arriving at the switch — the Table 1
    breakdown. *)

val cpu_pkts : t -> int
val cpu_bytes : t -> int
val egress_pkts : t -> int
val egress_bytes : t -> int
val replicas_suppressed : t -> int
val forward_delay_samples : t -> Scallop_util.Stats.Samples.t

type fastpath_stats = {
  fp_fast_pkts : int;  (** ingress media packets forwarded via copy-and-patch *)
  fp_slow_pkts : int;
      (** ingress media packets that took the record path (Slow mode, or
          non-canonical encodings the fast path must not touch) *)
  fp_replica_copies : int;
      (** fan-out replicas materialized by the fast path (blits into
          pooled buffers) *)
  fp_paranoid_checks : int;  (** egress datagrams byte-compared across both paths *)
  fp_paranoid_mismatches : int;  (** comparisons that failed (0 or the run raised) *)
  fp_cache_hits : int;
  fp_cache_misses : int;
  fp_cache_invalidations : int;
  fp_cache_entries : int;  (** resident PRE fan-out cache entries *)
  fp_pool_live : int;  (** replica buffers currently checked out of the pool *)
  fp_pool_high_water : int;  (** peak simultaneously-live replica buffers *)
  fp_pool_recycled : int;  (** replica checkouts served from a free list *)
  fp_pool_fresh : int;  (** replica checkouts that had to allocate *)
}

val fastpath_stats : t -> fastpath_stats
(** Fast-path and PRE fan-out cache counters, for experiments and
    [scallop_cli check]. A view over the registry-backed
    [scallop_dp_*] / [scallop_pre_cache_*] series (see
    {!Scallop_obs.Metrics}). *)

val pool_stats : t -> Scallop_util.Bufpool.stats
(** The replica buffer pool's full accounting (see {!Scallop_util.Bufpool}).
    After the simulation drains, [live] must be back to 0: every pooled
    replica was terminated by the network layer exactly once. *)

val alloc_budget_bytes_per_packet : int
(** Pinned steady-state allocation ceiling for the fast path, in bytes of
    minor-heap allocation per ingress packet for the canonical 30-receiver
    fan-out (replica buffers pooled, egress batches recycled). The bench's
    GC-pressure gate and the regression test both check against this one
    constant; raising it is an explicit, reviewed decision. *)

val set_egress_hook :
  t -> (receiver:int -> ssrc:int -> template:int option -> size:int -> unit) -> unit
(** Per-replica observation point for Figs. 23–25. *)

val header_auth_enabled : t -> bool
val headers_authenticated : t -> int
(** Egress replicas whose header HMAC was recomputed (0 unless
    [header_auth]). *)

val parser_stats : t -> Tofino.Parser.t
(** Depth statistics of the Appendix-E parse graph over every packet that
    arrived at the switch. *)

val resource_program : t -> Tofino.Resources.program
(** Static description of this program for the Table 3 model. *)

val stream_index_capacity : int
(** 65,536 concurrent rate-adapted streams (paper §6.3). *)

(** {1 Introspection (read-only, for the {!Scallop_analysis} snapshot layer)}

    The uplink / egress-leg / feedback state lives in capacity-enforced
    {!Tofino.Table}s; these views expose programmed contents and occupancy
    without exposing the mutable records themselves. *)

type table_occupancy = { tbl_name : string; tbl_size : int; tbl_capacity : int }

val table_occupancy : t -> table_occupancy list
(** Size vs capacity of every match-action table (plus the stream-index
    allocator, reported in the same shape). *)

type uplink_view = {
  uv_port : int;
  uv_sender : int;
  uv_meeting : Trees.handle;
  uv_video_ssrc : int;
  uv_audio_ssrc : int;
  uv_renditions : int array;
}

val uplinks_view : t -> uplink_view list

type leg_view = {
  lv_receiver : int;
  lv_video_ssrc : int;
  lv_dst : Scallop_util.Addr.t;
  lv_src_port : int;
  lv_uplink_port : int;
  lv_stream_index : int;  (** -1 when not rate-adapted *)
  lv_forward_remb : bool;
  lv_target : Av1.Dd.decode_target;
  lv_ssrc_keys : int list;  (** every SSRC the egress table maps to this leg *)
}

val legs_view : t -> leg_view list
(** One entry per distinct leg (the egress table holds one key per SSRC of
    the leg's stream; those keys are collapsed into [lv_ssrc_keys]). *)

val feedback_view : t -> (int * int) list
(** Every feedback-table entry as [(src_port, receiver)]. *)

val stream_index_state : t -> int list * int
(** The stream-index allocator's [(free list, next fresh index)]. *)

(** Deliberate state corruption for the {!Scallop_analysis} mutation
    harness. Never used by the control path. *)
module Unsafe : sig
  val drop_feedback_entry : t -> src_port:int -> unit
  (** Delete a feedback rule behind the agent's back. *)

  val push_free_stream_index : t -> int -> unit
  (** Push a bogus index onto the allocator's free list. *)
end
