(** Test-only protocol mutations.

    Each switch seeds one deliberate protocol bug into the control plane,
    so the {!Scallop_mc} explorer's mutation gate can prove its temporal
    rules have teeth: with a mutation enabled, bounded exploration must
    find a violating schedule within the CI budget.

    All switches default to off, in which case every consulting site
    behaves exactly as production code. Nothing outside tests and the
    [explore --mutate] CLI path may enable one. *)

type t =
  | Heal_without_quiesce
      (** revert the heal-race fix: {!Controller}'s pong handler heals
          even while a blocking call is in flight on the channel *)
  | Corrupt_replay
      (** {!Rpc_transport.Server} answers replayed requests with a fresh
          [Error] instead of the cached reply *)
  | Reverse_batch
      (** {!Switch_agent} executes [Batch] ops in reverse order *)
  | Exec_while_offline
      (** {!Rpc_transport.Server} keeps executing requests while the
          agent process is crashed *)
  | Skip_fencing_check
      (** {!Journal} accepts appends under a stale fence and
          {!Switch_agent} executes stale-fenced requests — a deposed
          primary can double-execute (split-brain) *)

val all : t list
val name : t -> string
val of_name : string -> t option
val describe : t -> string
val enable : t -> unit
val disable : t -> unit
val disable_all : unit -> unit
val on : t -> bool
