(** Durable intent journal for the controller tier (write-ahead log).

    Every state-mutating controller operation is appended here {e
    before} it executes, under the appender's fencing epoch. Replaying
    the journal on top of the latest compacted snapshot reconstructs the
    controller's intent state exactly — the allocators (pids, meeting
    ids, SFU ports) are deterministic counters restored by the snapshot,
    so re-executing the op sequence re-derives every identifier.

    {b Fencing.} The journal is also the cluster's arbiter of who may
    write. {!acquire_fence} mints a strictly larger fencing epoch;
    {!append} refuses (raises {!Deposed}) any append under an older
    fence. A primary that was failed over therefore discovers its own
    deposition on its next write — before executing anything — and a
    promoted standby can never interleave with it in the log.
    ({!Mutation.Skip_fencing_check} disables the refusal so the bounded
    explorer can rediscover the resulting split-brain.)

    {b Compaction.} {!install_snapshot} records a state snapshot
    covering a prefix of the log and drops the covered entries. The
    cluster drives compaction from its standby — only entries every
    tailer has already applied are dropped.

    The snapshot payload is a type parameter so this module can sit
    below {!Controller} in the build (the controller instantiates
    ['s] with its own persisted-state record). *)

type op =
  | Create_meeting
  | Join of {
      mid : int;
      home : int option;
      simulcast : bool;
      client : Webrtc.Client.t;
      send_media : bool;
    }
  | Leave of { pid : int }
  | Start_screen of { pid : int }
  | Stop_screen of { pid : int }
  | Set_pair_target of {
      sender : int;
      receiver : int;
      target : Av1.Dd.decode_target;
    }

type entry = {
  e_index : int;  (** position in the log, dense from 0, never reused *)
  e_fence : int;  (** fencing epoch the op was appended under *)
  e_op : op;
}

type 's t

exception Deposed of { held : int; current : int }
(** Raised by {!append} when [held] is older than the journal's
    [current] fence: the appender has been failed over. *)

val create : unit -> 's t

val fence : 's t -> int
(** The highest fencing epoch ever granted (0 before the first
    {!acquire_fence}); only this epoch may append. *)

val acquire_fence : 's t -> int
(** Mint and return a new, strictly larger fencing epoch. The previous
    holder's next {!append} raises {!Deposed}. *)

val append : 's t -> fence:int -> op -> int
(** Append [op] under [fence]; returns its log index.
    @raise Deposed if [fence] is not the current fence. *)

val head : 's t -> int
(** Index of the most recent entry, [-1] if nothing was ever appended.
    Compaction never moves this backwards. *)

val entries_after : 's t -> int -> entry list
(** Live entries with index strictly greater than the argument, in log
    order. Entries at or below the snapshot's covered index are gone. *)

val snapshot : 's t -> ('s * int) option
(** The latest compacted snapshot and the log index it covers through. *)

val install_snapshot : 's t -> index:int -> 's -> unit
(** Record [s] as covering the log through [index] and drop the covered
    entries. [index] must not exceed {!head}. *)

val length : 's t -> int
(** Live (uncompacted) entries. *)

val appended : 's t -> int
(** Total appends ever, compacted or not. *)

val compactions : 's t -> int

val truncated : 's t -> int
(** Entries dropped by compaction so far. *)

val op_name : op -> string

val dump : 's t -> string
(** Human-readable rendering of the live log (one line per entry,
    snapshot marker first) — the CI chaos gate uploads this as the
    journal artifact. *)
