type op =
  | Create_meeting
  | Join of {
      mid : int;
      home : int option;
      simulcast : bool;
      client : Webrtc.Client.t;
      send_media : bool;
    }
  | Leave of { pid : int }
  | Start_screen of { pid : int }
  | Stop_screen of { pid : int }
  | Set_pair_target of {
      sender : int;
      receiver : int;
      target : Av1.Dd.decode_target;
    }

type entry = { e_index : int; e_fence : int; e_op : op }

type 's t = {
  mutable fence : int;
  mutable rev_entries : entry list;  (** newest first *)
  mutable snap : ('s * int) option;
  mutable next_index : int;
  mutable appended : int;
  mutable compactions : int;
  mutable truncated : int;
}

exception Deposed of { held : int; current : int }

let create () =
  {
    fence = 0;
    rev_entries = [];
    snap = None;
    next_index = 0;
    appended = 0;
    compactions = 0;
    truncated = 0;
  }

let fence t = t.fence

let acquire_fence t =
  t.fence <- t.fence + 1;
  t.fence

let append t ~fence op =
  if fence <> t.fence && not (Mutation.on Mutation.Skip_fencing_check) then
    raise (Deposed { held = fence; current = t.fence });
  let e = { e_index = t.next_index; e_fence = fence; e_op = op } in
  t.next_index <- t.next_index + 1;
  t.appended <- t.appended + 1;
  t.rev_entries <- e :: t.rev_entries;
  e.e_index

let head t = t.next_index - 1

let entries_after t idx =
  List.filter (fun e -> e.e_index > idx) (List.rev t.rev_entries)

let snapshot t = t.snap

let install_snapshot t ~index s =
  if index > head t then
    invalid_arg
      (Printf.sprintf "Journal.install_snapshot: index %d beyond head %d" index
         (head t));
  let kept, dropped =
    List.partition (fun e -> e.e_index > index) t.rev_entries
  in
  t.rev_entries <- kept;
  t.snap <- Some (s, index);
  t.compactions <- t.compactions + 1;
  t.truncated <- t.truncated + List.length dropped

let length t = List.length t.rev_entries
let appended t = t.appended
let compactions t = t.compactions
let truncated t = t.truncated

let op_name = function
  | Create_meeting -> "create-meeting"
  | Join _ -> "join"
  | Leave _ -> "leave"
  | Start_screen _ -> "start-screen"
  | Stop_screen _ -> "stop-screen"
  | Set_pair_target _ -> "set-pair-target"

let describe_op = function
  | Create_meeting -> "create-meeting"
  | Join { mid; home; simulcast; client; send_media } ->
      Printf.sprintf "join mid=%d home=%s simulcast=%b send=%b client=%s" mid
        (match home with Some h -> string_of_int h | None -> "-")
        simulcast send_media
        (Scallop_util.Addr.ip_to_string (Webrtc.Client.ip client))
  | Leave { pid } -> Printf.sprintf "leave pid=%d" pid
  | Start_screen { pid } -> Printf.sprintf "start-screen pid=%d" pid
  | Stop_screen { pid } -> Printf.sprintf "stop-screen pid=%d" pid
  | Set_pair_target { sender; receiver; target } ->
      Printf.sprintf "set-pair-target sender=%d receiver=%d target=%d" sender
        receiver
        (Av1.Dd.index_of_target target)

let dump t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "journal fence=%d appended=%d compactions=%d truncated=%d\n"
       t.fence t.appended t.compactions t.truncated);
  (match t.snap with
  | Some (_, idx) ->
      Buffer.add_string buf (Printf.sprintf "snapshot through=%d\n" idx)
  | None -> Buffer.add_string buf "snapshot none\n");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%06d fence=%d %s\n" e.e_index e.e_fence
           (describe_op e.e_op)))
    (List.rev t.rev_entries);
  Buffer.contents buf
