module Engine = Netsim.Engine
module Addr = Scallop_util.Addr
module Trace = Scallop_obs.Trace

type config = {
  beat_every_ns : int;
  promote_after : int;
  compact_every : int;
}

let default = { beat_every_ns = 250_000_000; promote_after = 2; compact_every = 32 }

let standby_ip = Addr.ip_of_string "10.255.0.2"

type t = {
  engine : Engine.t;
  cfg : config;
  journal : Controller.persisted Journal.t;
  primary : Controller.t;
  standby : Controller.t;
  mutable missed : int;  (** consecutive beats with no live acting primary *)
  mutable promotions : int;
  mutable last_compacted : int;  (** journal index the latest snapshot covers *)
  mutable health_config : Controller.health_config option;
  mutable running : bool;
}

let instances t = [ t.primary; t.standby ]

(* The instance a workload should talk to: the live acting primary. Under
   [Mutation.Skip_fencing_check] two instances can both believe they are
   acting — route to the freshest fence, like a client following the
   cluster's advertised leader; the deposed one keeps executing whatever
   is already in flight, which is exactly the split-brain the explorer
   must catch. With no live acting instance (primary killed, standby not
   yet promoted) fall back to the primary: callers get [Unavailable] and
   retry, the same contract a real client library exposes mid-failover. *)
let endpoint t =
  let acting =
    List.filter
      (fun c -> Controller.role c = Controller.Acting && Controller.alive c)
      (instances t)
  in
  match
    List.sort (fun a b -> compare (Controller.fence b) (Controller.fence a)) acting
  with
  | c :: _ -> c
  | [] -> t.primary

let acting t =
  List.find_opt (fun c -> Controller.role c = Controller.Acting) (instances t)

let standby_instance t =
  List.find_opt
    (fun c -> Controller.role c = Controller.Standby && Controller.alive c)
    (instances t)

let primary t = t.primary
let standby t = t.standby
let journal t = t.journal
let promotions t = t.promotions

let tail_standby t =
  match standby_instance t with
  | None -> ()
  | Some sb ->
      ignore (Controller.apply_tail sb);
      if
        t.cfg.compact_every > 0
        && Controller.journal_applied sb - t.last_compacted >= t.cfg.compact_every
      then begin
        Controller.compact_journal sb;
        t.last_compacted <- Controller.journal_applied sb
      end

let do_promote t sb =
  Controller.promote ?health_config:t.health_config sb;
  t.promotions <- t.promotions + 1;
  t.missed <- 0

(* One heartbeat of the cluster manager: lease check on whoever is
   acting, tail (and periodically compact) the journal on the standby,
   and count missed beats against a dead primary until the standby is
   promoted. *)
let beat t =
  if not t.running then false
  else begin
    List.iter
      (fun c -> if Controller.role c = Controller.Acting then Controller.refresh_role c)
      (instances t);
    tail_standby t;
    (match acting t with
    | Some c when Controller.alive c -> t.missed <- 0
    | _ -> (
        t.missed <- t.missed + 1;
        if t.missed >= t.cfg.promote_after then
          match standby_instance t with
          | Some sb ->
              Trace.instant ~ts:(Engine.now t.engine) ~cat:"ctrl" "ctrl_failover"
                ~args:
                  [
                    ("ctrl", Trace.S (Controller.label sb));
                    ("missed", Trace.I t.missed);
                  ];
              do_promote t sb
          | None -> ()));
    t.running
  end

let create ?(config = default) engine network rng ~agents ?control ?(batch = false) ()
    =
  let journal = Journal.create () in
  let primary =
    Controller.create engine network rng ~agents ?control ~batch ~journal ()
  in
  let standby =
    Controller.create engine network rng ~agents ?control ~batch ~journal
      ~standby:true ~label:"ctl1" ~ip:standby_ip ()
  in
  let t =
    {
      engine;
      cfg = config;
      journal;
      primary;
      standby;
      missed = 0;
      promotions = 0;
      last_compacted = -1;
      health_config = None;
      running = true;
    }
  in
  Engine.every engine ~interval:config.beat_every_ns (fun () -> beat t);
  t

let start_health ?config t =
  t.health_config <- config;
  Controller.start_health ?config (endpoint t)

let stop_health t = List.iter Controller.stop_health (instances t)

let kill_primary t =
  match acting t with
  | Some c when Controller.alive c -> Controller.kill c
  | _ -> ()

let promote t =
  match standby_instance t with
  | Some sb -> do_promote t sb
  | None -> ()

let restart_killed t =
  List.iter
    (fun c -> if not (Controller.alive c) then Controller.restart c)
    (instances t)

let stop t =
  t.running <- false;
  stop_health t
