module Addr = Scallop_util.Addr
module Stats = Scallop_util.Stats
module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace
module Engine = Netsim.Engine
module Network = Netsim.Network
module Dgram = Netsim.Dgram
module Packet = Rtp.Packet
module Dd = Av1.Dd
module Bufpool = Scallop_util.Bufpool

let stream_index_capacity = 65_536

(* Steady-state fast-path allocation ceiling, in bytes of minor-heap
   allocation per ingress packet for the canonical 30-receiver fan-out
   (replica buffers pooled, batches recycled). The bench gate and the
   regression test both pin against this one constant. What remains is
   per-replica scaffolding — the [Dgram.t] record, table-lookup options,
   the decide action — at ~40 words per replica (measured ~11 KB for 30
   receivers); payload copies are out of the picture, so reintroducing a
   per-replica [Bytes.copy] (~1.2 KB each) blows this ceiling
   immediately. *)
let alloc_budget_bytes_per_packet = 16_384

(* Match-action table sizes of the programmed pipeline (§6.2): exceeding
   one is the same hard failure a real switch would report at insert. *)
let uplink_table_capacity = 4_096
let egress_table_capacity = 65_536
let feedback_table_capacity = 65_536

let table_insert tbl k v =
  match Tofino.Table.insert tbl k v with
  | Ok () -> ()
  | Error `Table_full ->
      failwith (Printf.sprintf "Dataplane: %s table full" (Tofino.Table.name tbl))

type counters = {
  mutable rtp_audio_pkts : int;
  mutable rtp_audio_bytes : int;
  mutable rtp_video_pkts : int;
  mutable rtp_video_bytes : int;
  mutable rtp_av1_ds_pkts : int;
  mutable rtp_av1_ds_bytes : int;
  mutable rtcp_sr_sdes_pkts : int;
  mutable rtcp_sr_sdes_bytes : int;
  mutable rtcp_rr_pkts : int;
  mutable rtcp_rr_bytes : int;
  mutable rtcp_remb_pkts : int;
  mutable rtcp_remb_bytes : int;
  mutable stun_pkts : int;
  mutable stun_bytes : int;
  mutable other_pkts : int;
  mutable other_bytes : int;
}

let fresh_counters () =
  {
    rtp_audio_pkts = 0;
    rtp_audio_bytes = 0;
    rtp_video_pkts = 0;
    rtp_video_bytes = 0;
    rtp_av1_ds_pkts = 0;
    rtp_av1_ds_bytes = 0;
    rtcp_sr_sdes_pkts = 0;
    rtcp_sr_sdes_bytes = 0;
    rtcp_rr_pkts = 0;
    rtcp_rr_bytes = 0;
    rtcp_remb_pkts = 0;
    rtcp_remb_bytes = 0;
    stun_pkts = 0;
    stun_bytes = 0;
    other_pkts = 0;
    other_bytes = 0;
  }

type mode = Fast | Slow | Paranoid

exception Differential_mismatch of string

type uplink = {
  sender : int;
  meeting : Trees.handle;
  video_ssrc : int;
  audio_ssrc : int;
  renditions : int array;  (** simulcast SSRCs; [||] for plain SVC uplinks *)
  mutable feedback_dst : Addr.t option;
}

type uplink_slot = { mutable entry : uplink }

type leg = {
  leg_receiver : int;
  leg_video_ssrc : int;
  dst : Addr.t;
  src_port : int;
  uplink_port : int;
  mutable target : Dd.decode_target;
  mutable forward_remb : bool;
  rewriter : Seq_rewrite.t option;
  simulcast : Simulcast.t option;
  stream_index : int;  (** -1 when not rate-adapted *)
}

(* One ingress media packet, as both paths see it. The decision phase
   (simulcast splice, layer suppression, sequence rewrite — all stateful)
   runs exactly once per replica on the scalar fields below; only the
   materialization of the egress bytes differs between paths, so the
   paranoid mode can run both without double-advancing rewriter state.
   A single instance lives in [t] and is overwritten per ingress packet:
   the fan-out completes before the handler returns, so one scratch
   record suffices and the per-packet context allocation disappears. *)
type media_ctx = {
  mutable c_ssrc : int;
  mutable c_seq : int;
  mutable c_fields : Dd.fields option;
  mutable c_view : Packet.View.t option;
      (** [Some] iff fast materialization is sound *)
  mutable c_payload : bytes;  (** ingress wire bytes, for the record parse *)
  mutable c_is_video : bool;
  mutable c_parsed : (Packet.t * Dd.t option) option;
      (** memoized record parse, forced only for non-canonical ingress or
          paranoid checking (and eager in [Slow] mode) *)
  mutable c_trace : int;  (** causal trace id; -1 = untraced *)
}

let fresh_scratch () =
  {
    c_ssrc = 0;
    c_seq = 0;
    c_fields = None;
    c_view = None;
    c_payload = Bytes.empty;
    c_is_video = false;
    c_parsed = None;
    c_trace = -1;
  }

(* Every replica of one ingress packet leaves the pipeline at the same
   departure instant, so replicas are staged into a [batch] and sent by a
   single scheduled flush — one event-queue operation per ingress packet
   instead of one per replica. Batches recycle through an intrusive free
   list and carry a preallocated fire closure, so steady-state staging
   allocates nothing (the slots array only grows past new fan-out
   high-water marks). *)
type batch = {
  mutable slots : Dgram.t array;
  mutable b_n : int;
  mutable fire : unit -> unit;
      (** sends slots [0..b_n-1] in staging order, then recycles the batch *)
  mutable b_link : batch;  (** free-list thread, [nil_batch]-terminated *)
}

let rec nil_batch = { slots = [||]; b_n = 0; fire = (fun () -> ()); b_link = nil_batch }
let dummy_dgram = Dgram.v ~src:(Addr.v 0 0) ~dst:(Addr.v 0 0) Bytes.empty

type t = {
  engine : Engine.t;
  network : Network.t;
  ip : int;
  obs_label : string;
  pre : Tofino.Pre.t;
  trees : Trees.t;
  pipeline_latency_ns : int;
  pipeline_latency_f : float;
      (** [float_of_int pipeline_latency_ns], preboxed: the per-replica
          latency sample must not box a float per emit *)
  cpu_port_latency_ns : int;
  header_auth : bool;
  mutable headers_authenticated : int;
  uplinks : (int, uplink_slot) Tofino.Table.t;  (** dst port -> uplink *)
  legs : (int * int, leg) Tofino.Table.t;  (** (receiver, ssrc) -> leg *)
  leg_by_port : (int, leg) Tofino.Table.t;  (** src_port -> leg (feedback match) *)
  mutable free_stream_indices : int list;
  mutable next_stream_index : int;
  (* the six Stream Tracker register arrays of §6.3, kept for resource
     accounting; the rewriter objects hold the live state *)
  trackers : Tofino.Register.t array;
  mutable cpu_sink : Dgram.t -> unit;
  ingress : counters;
  mutable cpu_pkts : int;
  mutable cpu_bytes : int;
  mutable egress_pkts : int;
  mutable egress_bytes : int;
  mutable replicas_suppressed : int;
  mutable mode : mode;
  (* registry-backed fast-path counters (O(1) field increments; the
     fastpath_stats record stays the read view) *)
  fast_pkts : Metrics.counter;
  slow_pkts : Metrics.counter;
  replica_copies : Metrics.counter;
  paranoid_checks : Metrics.counter;
  paranoid_mismatches : Metrics.counter;
  forward_delay : Stats.Samples.t;
  parser_stats : Tofino.Parser.t;
  mutable egress_hook : receiver:int -> ssrc:int -> template:int option -> size:int -> unit;
  (* allocation-free fast-path scaffolding *)
  pool : Bufpool.t;  (** replica buffer pool; debug (poison) iff Paranoid *)
  pool_some : Bufpool.t option;
      (** preallocated [Some pool] — emitting a pooled replica must not
          cons a fresh option per datagram *)
  mutable free_batches : batch;
  scratch : media_ctx;
}

(* Recomputing a short-header HMAC (SipHash-style over ~20 bytes) costs a
   couple of extra stages' worth of latency on the Tofino. *)
let hmac_latency_ns = 150

let create engine network ~ip ?pre_limits ?(pipeline_latency_ns = 600)
    ?(cpu_port_latency_ns = 50_000) ?(header_auth = false) ?(mode = Fast)
    ?(obs_label = "sw0") () =
  let pre =
    match pre_limits with
    | Some limits -> Tofino.Pre.create ~limits ~obs_label ()
    | None -> Tofino.Pre.create ~obs_label ()
  in
  let labels = [ ("switch", obs_label) ] in
  (* Paranoid doubles as the pool's debug mode: released buffers are
     poisoned, so any reader still aliasing a recycled replica fails the
     byte-differential loudly instead of forwarding stale bytes. *)
  let pool = Bufpool.create ~debug:(mode = Paranoid) () in
  let pipeline_latency_ns =
    pipeline_latency_ns + if header_auth then hmac_latency_ns else 0
  in
  let t =
    {
      engine;
      network;
      ip;
      obs_label;
      pre;
      trees = Trees.create pre;
      pipeline_latency_ns;
      pipeline_latency_f = float_of_int pipeline_latency_ns;
      cpu_port_latency_ns;
      header_auth;
      headers_authenticated = 0;
      uplinks = Tofino.Table.create ~name:"uplink" ~capacity:uplink_table_capacity;
      legs = Tofino.Table.create ~name:"egress_leg" ~capacity:egress_table_capacity;
      leg_by_port = Tofino.Table.create ~name:"feedback" ~capacity:feedback_table_capacity;
      free_stream_indices = [];
      next_stream_index = 0;
      trackers =
        Array.init 6 (fun i ->
            Tofino.Register.create
              ~name:(Printf.sprintf "stream_tracker_%d" i)
              ~cells:stream_index_capacity);
      cpu_sink = (fun _ -> ());
      ingress = fresh_counters ();
      cpu_pkts = 0;
      cpu_bytes = 0;
      egress_pkts = 0;
      egress_bytes = 0;
      replicas_suppressed = 0;
      mode;
      fast_pkts =
        Metrics.counter ~labels ~help:"ingress media packets forwarded via copy-and-patch"
          "scallop_dp_fast_pkts";
      slow_pkts =
        Metrics.counter ~labels ~help:"ingress media packets that took the record path"
          "scallop_dp_slow_pkts";
      replica_copies =
        Metrics.counter ~labels ~help:"fast-path fan-out replica buffer copies"
          "scallop_dp_replica_copies";
      paranoid_checks =
        Metrics.counter ~labels ~help:"egress datagrams byte-compared across both paths"
          "scallop_dp_paranoid_checks";
      paranoid_mismatches =
        Metrics.counter ~labels ~help:"paranoid byte comparisons that failed"
          "scallop_dp_paranoid_mismatches";
      forward_delay = Stats.Samples.create ();
      parser_stats = Tofino.Parser.create ();
      egress_hook = (fun ~receiver:_ ~ssrc:_ ~template:_ ~size:_ -> ());
      pool;
      pool_some = Some pool;
      free_batches = nil_batch;
      scratch = fresh_scratch ();
    }
  in
  let pool_gauge name help field =
    Metrics.register_callback ~labels ~help name (fun () ->
        float_of_int (field (Bufpool.stats pool)))
  in
  pool_gauge "scallop_dp_pool_live" "replica buffers checked out right now"
    (fun s -> s.Bufpool.live);
  pool_gauge "scallop_dp_pool_high_water" "peak simultaneously-live replica buffers"
    (fun s -> s.Bufpool.high_water);
  pool_gauge "scallop_dp_pool_parked_bytes" "bytes parked in replica free lists"
    (fun s -> s.Bufpool.parked_bytes);
  pool_gauge "scallop_dp_alloc_recycled_buffers"
    "replica checkouts served from a free list" (fun s -> s.Bufpool.recycled);
  pool_gauge "scallop_dp_alloc_fresh_buffers" "replica checkouts that had to allocate"
    (fun s -> s.Bufpool.fresh);
  t

let ip t = t.ip
let obs_label t = t.obs_label
let trees t = t.trees
let pre t = t.pre
let mode t = t.mode

let set_mode t mode =
  t.mode <- mode;
  Bufpool.set_debug t.pool (mode = Paranoid)

let set_cpu_sink t sink = t.cpu_sink <- sink
let set_egress_hook t hook = t.egress_hook <- hook

let to_cpu t dgram =
  t.cpu_pkts <- t.cpu_pkts + 1;
  t.cpu_bytes <- t.cpu_bytes + Dgram.wire_size dgram;
  (* the CPU sink runs after this handler has returned, by which point a
     pooled payload (cascade-relay ingress) is already recycled — detach
     it with a copy; the ordinary client-ingress case stays zero-copy *)
  let dgram =
    match dgram.Dgram.pool with
    | None -> dgram
    | Some _ ->
        Dgram.v ~trace:dgram.Dgram.trace ~src:dgram.Dgram.src ~dst:dgram.Dgram.dst
          (Bytes.copy dgram.Dgram.payload)
  in
  Engine.schedule t.engine ~after:t.cpu_port_latency_ns (fun () -> t.cpu_sink dgram)

let inject t dgram = Network.send t.network dgram

let new_batch t =
  let b =
    { slots = Array.make 64 dummy_dgram; b_n = 0; fire = (fun () -> ()); b_link = nil_batch }
  in
  b.fire <-
    (fun () ->
      for i = 0 to b.b_n - 1 do
        Network.send t.network b.slots.(i);
        b.slots.(i) <- dummy_dgram
      done;
      b.b_n <- 0;
      b.b_link <- t.free_batches;
      t.free_batches <- b);
  b

let take_batch t =
  let b = t.free_batches in
  if b == nil_batch then new_batch t
  else begin
    t.free_batches <- b.b_link;
    b.b_link <- nil_batch;
    b
  end

let recycle_batch t b =
  b.b_link <- t.free_batches;
  t.free_batches <- b

let batch_add b dgram =
  let cap = Array.length b.slots in
  if b.b_n = cap then begin
    let grown = Array.make (2 * cap) dummy_dgram in
    Array.blit b.slots 0 grown 0 b.b_n;
    b.slots <- grown
  end;
  b.slots.(b.b_n) <- dgram;
  b.b_n <- b.b_n + 1

(* [pool] is [t.pool_some] for replica buffers the pool owns (released by
   the network layer when the datagram's life ends) and [None] for
   GC-owned payloads. *)
let emit t ~batch ~pool ~trace ~receiver ~ssrc ~template ~src_port ~dst payload =
  let size = Bytes.length payload + 42 in
  if t.header_auth then t.headers_authenticated <- t.headers_authenticated + 1;
  t.egress_pkts <- t.egress_pkts + 1;
  t.egress_bytes <- t.egress_bytes + size;
  t.egress_hook ~receiver ~ssrc ~template ~size;
  Stats.Samples.observe t.forward_delay t.pipeline_latency_f;
  batch_add batch (Dgram.v ~trace ?pool ~src:(Addr.v t.ip src_port) ~dst payload)

let flush_egress t ~ingress_ns batch =
  if batch.b_n = 0 then recycle_batch t batch
  else begin
    let time = max (ingress_ns + t.pipeline_latency_ns) (Engine.now t.engine) in
    Engine.at t.engine ~time batch.fire
  end

(* --- configuration -------------------------------------------------------- *)

let register_uplink ?(renditions = [||]) t ~port ~sender ~meeting ~video_ssrc ~audio_ssrc =
  table_insert t.uplinks port
    { entry = { sender; meeting; video_ssrc; audio_ssrc; renditions; feedback_dst = None } }

let unregister_uplink t ~port = Tofino.Table.remove t.uplinks port

let uplink_entry t ~port =
  Option.map (fun slot -> slot.entry) (Tofino.Table.lookup t.uplinks port)

let swap_meeting_handle t ~port handle =
  match Tofino.Table.lookup t.uplinks port with
  | Some slot -> slot.entry <- { slot.entry with meeting = handle }
  | None -> invalid_arg "Dataplane.swap_meeting_handle: unknown uplink"

let alloc_stream_index t =
  match t.free_stream_indices with
  | i :: rest ->
      t.free_stream_indices <- rest;
      i
  | [] ->
      if t.next_stream_index >= stream_index_capacity then
        failwith "Dataplane: stream index table full (65,536 rate-adapted streams)";
      let i = t.next_stream_index in
      t.next_stream_index <- i + 1;
      i

let register_leg ?simulcast t ~receiver ~video_ssrc ~audio_ssrc ~dst ~src_port ~uplink_port
    ~rewrite =
  let rewriter, stream_index =
    match rewrite with
    | None -> (None, -1)
    | Some variant ->
        let idx = alloc_stream_index t in
        (Some (Seq_rewrite.create variant ~target:Dd.DT_30fps), idx)
  in
  let simulcast_state = Option.map (fun renditions -> Simulcast.create ~renditions) simulcast in
  let leg =
    {
      leg_receiver = receiver;
      leg_video_ssrc = video_ssrc;
      dst;
      src_port;
      uplink_port;
      target = Dd.DT_30fps;
      forward_remb = false;
      rewriter;
      simulcast = simulcast_state;
      stream_index;
    }
  in
  table_insert t.legs (receiver, video_ssrc) leg;
  table_insert t.legs (receiver, audio_ssrc) leg;
  Option.iter
    (Array.iter (fun ssrc -> table_insert t.legs (receiver, ssrc) leg))
    simulcast;
  table_insert t.leg_by_port src_port leg

let unregister_leg t ~receiver ~video_ssrc =
  match Tofino.Table.lookup t.legs (receiver, video_ssrc) with
  | None -> ()
  | Some leg ->
      if leg.stream_index >= 0 then begin
        t.free_stream_indices <- leg.stream_index :: t.free_stream_indices;
        Array.iter (fun r -> Tofino.Register.clear_index r leg.stream_index) t.trackers
      end;
      Tofino.Table.remove t.leg_by_port leg.src_port;
      let keys =
        Tofino.Table.fold t.legs (fun k l acc -> if l == leg then k :: acc else acc) []
      in
      List.iter (Tofino.Table.remove t.legs) keys

(* Power-cycle the match-action state: every table entry gone, every
   stream-tracker cell zeroed, the stream-index allocator back to a
   fresh boot. PRE trees are NOT touched here — they belong to the
   agent's meeting records, and {!Switch_agent}'s wipe unregisters them
   meeting by meeting before calling this. *)
let reset t =
  Tofino.Table.iter t.leg_by_port (fun _ leg ->
      if leg.stream_index >= 0 then
        Array.iter (fun r -> Tofino.Register.clear_index r leg.stream_index) t.trackers);
  Tofino.Table.clear t.uplinks;
  Tofino.Table.clear t.legs;
  Tofino.Table.clear t.leg_by_port;
  t.free_stream_indices <- [];
  t.next_stream_index <- 0

let set_leg_target t ~receiver ~video_ssrc target =
  match Tofino.Table.lookup t.legs (receiver, video_ssrc) with
  | None -> ()
  | Some leg ->
      leg.target <- target;
      Option.iter (fun rw -> Seq_rewrite.set_target rw target) leg.rewriter

let set_leg_rendition t ~leg_port rendition =
  match Tofino.Table.lookup t.leg_by_port leg_port with
  | Some { simulcast = Some sc; _ } -> Simulcast.request_switch sc rendition
  | Some _ | None -> ()

let leg_rendition t ~leg_port =
  match Tofino.Table.lookup t.leg_by_port leg_port with
  | Some { simulcast = Some sc; _ } -> Some (Simulcast.active sc)
  | Some _ | None -> None

(* Ask the sender for a key frame of one stream: a PLI from the switch,
   used to drive simulcast rendition switches. *)
let request_keyframe t ~uplink_port ~ssrc =
  match Tofino.Table.lookup t.uplinks uplink_port with
  | Some { entry = { feedback_dst = Some dst; _ }; _ } ->
      let buf = Rtp.Rtcp.serialize_compound [ Rtp.Rtcp.Pli { sender_ssrc = 0; media_ssrc = ssrc } ] in
      Network.send t.network (Dgram.v ~src:(Addr.v t.ip uplink_port) ~dst buf)
  | Some _ | None -> ()

let set_remb_forwarding t ~leg_port enabled =
  match Tofino.Table.lookup t.leg_by_port leg_port with
  | Some leg -> leg.forward_remb <- enabled
  | None -> ()

(* --- media path ------------------------------------------------------------ *)

let parse_dd pkt =
  match Packet.find_extension pkt Dd.extension_id with
  | None -> None
  | Some data -> ( try Some (Dd.parse data) with Rtp.Wire.Parse_error _ -> None)

(* Memoized record parse of the scratch context's ingress bytes. *)
let parsed ctx =
  match ctx.c_parsed with
  | Some p -> p
  | None ->
      let pkt = Packet.parse ctx.c_payload in
      let dd = if ctx.c_is_video then parse_dd pkt else None in
      let p = (pkt, dd) in
      ctx.c_parsed <- Some p;
      p

(* What the pipeline does to one forwarded replica's header. Keeping the
   rewrite separate from the forward/suppress decision makes
   "materialize a suppressed replica" unrepresentable: [materialize] only
   accepts a [rewrite], so the suppress arm can never reach a buffer
   checkout. *)
type rewrite =
  | Verbatim  (** audio / descriptor-less video: bytes unchanged *)
  | Patch_seq of { seq : int; template : int }  (** patch the sequence number *)
  | Patch_splice of { ssrc : int; seq : int; frame : int; template : int }
      (** simulcast splice: patch SSRC, sequence and AV1 frame number *)

type egress_action = Suppress | Forward of rewrite

(* preallocated: the audio-dominant verbatim arm must not cons *)
let forward_verbatim = Forward Verbatim

let decide leg ~ssrc ~seq (fields : Dd.fields option) =
  match fields with
  | None -> forward_verbatim
  | Some f when leg.simulcast <> None -> (
      let sc = Option.get leg.simulcast in
      let keyframe_start = f.Dd.f_start_of_frame && f.Dd.f_template_id = 0 in
      match
        Simulcast.on_packet sc ~ssrc ~seq ~frame:f.Dd.f_frame_number ~keyframe_start
      with
      | Simulcast.Drop -> Suppress
      | Simulcast.Forward { ssrc; seq; frame } ->
          Forward (Patch_splice { ssrc; seq; frame; template = f.Dd.f_template_id }))
  | Some f ->
      if not (Dd.template_in_target_l1t3 f.Dd.f_template_id leg.target) then Suppress
      else begin
        let action =
          match leg.rewriter with
          | Some rw ->
              Seq_rewrite.on_packet rw ~seq ~frame:f.Dd.f_frame_number
                ~start_of_frame:f.Dd.f_start_of_frame ~end_of_frame:f.Dd.f_end_of_frame
          | None -> Seq_rewrite.Forward seq
        in
        match action with
        | Seq_rewrite.Drop -> Suppress
        | Seq_rewrite.Forward seq -> Forward (Patch_seq { seq; template = f.Dd.f_template_id })
      end

(* Fast materialization: blit the ingress bytes into a pooled buffer, then
   fixed-offset patches — the model equivalent of the hardware header
   rewrite. The pool serves the checkout from a free list in steady state
   (media streams use few distinct packet sizes), so the fan-out's
   dominant allocation cost disappears; the buffer returns to the pool
   when the network layer terminates the datagram. *)
let materialize_fast t (view : Packet.View.t) rw =
  Metrics.incr t.replica_copies;
  let src = view.Packet.View.buf in
  let len = Bytes.length src in
  let buf = Bufpool.checkout t.pool len in
  Bytes.blit src 0 buf 0 len;
  (match rw with
  | Verbatim -> ()
  | Patch_seq { seq; _ } -> Rtp.Wire.Patch.u16 buf ~pos:Packet.View.sequence_pos seq
  | Patch_splice { ssrc; seq; frame; _ } ->
      Rtp.Wire.Patch.u16 buf ~pos:Packet.View.sequence_pos seq;
      Rtp.Wire.Patch.u32 buf ~pos:Packet.View.ssrc_pos ssrc;
      Rtp.Wire.Patch.u16 buf
        ~pos:(view.Packet.View.ext_off + Dd.frame_number_pos)
        frame);
  buf

(* Slow materialization: the record-based path, kept verbatim as the
   executable spec the fast path is byte-checked against. *)
let materialize_slow (pkt, dd) rw =
  match rw with
  | Verbatim -> Packet.serialize pkt
  | Patch_seq { seq; _ } -> Packet.serialize (Packet.with_sequence pkt seq)
  | Patch_splice { ssrc; seq; frame; _ } ->
      let dd = Option.get dd in
      let dd' = { dd with Dd.frame_number = frame } in
      let data = Dd.serialize dd' in
      let pkt' =
        {
          (Packet.with_sequence (Packet.with_ssrc pkt ssrc) seq) with
          Packet.extensions =
            List.map
              (fun (e : Packet.extension) ->
                if e.Packet.id = Dd.extension_id then { e with Packet.data } else e)
              pkt.Packet.extensions;
        }
      in
      Packet.serialize pkt'

let materialize t ctx rw =
  match (t.mode, ctx.c_view) with
  | Slow, _ | _, None -> materialize_slow (parsed ctx) rw
  | Fast, Some view -> materialize_fast t view rw
  | Paranoid, Some view ->
      let fast = materialize_fast t view rw in
      let slow = materialize_slow (parsed ctx) rw in
      Metrics.incr t.paranoid_checks;
      if not (Bytes.equal fast slow) then begin
        Metrics.incr t.paranoid_mismatches;
        raise
          (Differential_mismatch
             (Printf.sprintf
                "ssrc=%#x seq=%d: fast path emitted %d bytes, slow path %d bytes"
                ctx.c_ssrc ctx.c_seq (Bytes.length fast) (Bytes.length slow)))
      end;
      fast

(* Deliver one replica of a media packet to a receiver's leg. *)
let egress_media t ~batch ~receiver ctx =
  match Tofino.Table.lookup t.legs (receiver, ctx.c_ssrc) with
  | None -> ()
  | Some leg -> (
      match decide leg ~ssrc:ctx.c_ssrc ~seq:ctx.c_seq ctx.c_fields with
      | Suppress ->
          t.replicas_suppressed <- t.replicas_suppressed + 1;
          if ctx.c_trace >= 0 && Trace.enabled Trace.Verbose then
            Trace.instant ~ts:(Engine.now t.engine) ~trace:ctx.c_trace ~cat:"dp"
              "suppress" ~args:[ ("receiver", Trace.I receiver) ]
      | Forward rw ->
          let ssrc =
            match rw with Patch_splice { ssrc; _ } -> ssrc | _ -> ctx.c_ssrc
          in
          let template =
            match rw with
            | Verbatim -> None
            | Patch_seq { template; _ } | Patch_splice { template; _ } -> Some template
          in
          if ctx.c_trace >= 0 && Trace.enabled Trace.Packet then
            Trace.instant ~ts:(Engine.now t.engine) ~trace:ctx.c_trace ~cat:"dp"
              "egress"
              ~args:[ ("receiver", Trace.I receiver); ("ssrc", Trace.I ssrc) ];
          let payload = materialize t ctx rw in
          (* pooled iff the fast materializer produced it *)
          let pool =
            match (t.mode, ctx.c_view) with
            | Slow, _ | _, None -> None
            | _ -> t.pool_some
          in
          emit t ~batch ~pool ~trace:ctx.c_trace ~receiver ~ssrc ~template
            ~src_port:leg.src_port ~dst:leg.dst payload)

let fanout t ~ingress_ns uplink ctx =
  let layer =
    match ctx.c_fields with
    | Some f -> (
        try Dd.layer_of_template_l1t3 f.Dd.f_template_id
        with Rtp.Wire.Parse_error _ -> Dd.T0)
    | None -> Dd.T0
  in
  let batch = take_batch t in
  (match Trees.route_media t.trees uplink.meeting ~sender:uplink.sender ~layer with
  | Trees.No_receivers -> ()
  | Trees.Unicast { receiver; _ } -> egress_media t ~batch ~receiver ctx
  | Trees.Replicate { mgid; l1_xid; rid; l2_xid } ->
      let traced = ctx.c_trace >= 0 && Trace.enabled Trace.Packet in
      let fanout_event ~replicas ~cache =
        Trace.instant ~ts:ingress_ns ~trace:ctx.c_trace ~cat:"pre" "pre_fanout"
          ~args:
            [
              ("mgid", Trace.I mgid);
              ("l1_xid", Trace.I l1_xid);
              ("rid", Trace.I rid);
              ("l2_xid", Trace.I l2_xid);
              ("replicas", Trace.I replicas);
              ("cache", Trace.S cache);
            ]
      in
      let each (r : Tofino.Pre.replica) =
        match Trees.receiver_of_replica t.trees uplink.meeting ~mgid ~rid:r.rid with
        | Some receiver -> egress_media t ~batch ~receiver ctx
        | None -> ()
      in
      if t.mode = Slow then begin
        let replicas = Tofino.Pre.replicate t.pre ~mgid ~l1_xid ~rid ~l2_xid in
        if traced then fanout_event ~replicas:(List.length replicas) ~cache:"bypass";
        List.iter each replicas
      end
      else begin
        let hits_before = if traced then Tofino.Pre.cache_hit_count t.pre else 0 in
        let replicas = Tofino.Pre.replicate_cached t.pre ~mgid ~l1_xid ~rid ~l2_xid in
        if traced then
          fanout_event ~replicas:(Array.length replicas)
            ~cache:
              (if Tofino.Pre.cache_hit_count t.pre > hits_before then "hit" else "miss");
        Array.iter each replicas
      end);
  flush_egress t ~ingress_ns batch

(* Fill the scratch context from one ingress datagram. In [Slow] mode
   this is the pre-fast-path pipeline unchanged (full parse, no view);
   otherwise a single pass of [Packet.View.of_bytes] + [Dd.read_fields]
   supplies everything the decision phase needs, and the record parse
   stays memoized-on-demand (forced only for non-canonical ingress or
   paranoid checking). Returns [false] exactly when [Packet.parse] would
   reject the datagram. *)
let ingest t uplink (dgram : Dgram.t) =
  let ctx = t.scratch in
  ctx.c_trace <- -1;
  ctx.c_parsed <- None;
  ctx.c_view <- None;
  ctx.c_fields <- None;
  ctx.c_payload <- dgram.payload;
  if t.mode = Slow then
    match Packet.parse dgram.payload with
    | exception Rtp.Wire.Parse_error _ -> false
    | pkt ->
        let is_rendition =
          Array.exists (fun ssrc -> ssrc = pkt.Packet.ssrc) uplink.renditions
        in
        let is_video = pkt.Packet.ssrc = uplink.video_ssrc || is_rendition in
        let dd = if is_video then parse_dd pkt else None in
        ctx.c_ssrc <- pkt.Packet.ssrc;
        ctx.c_seq <- pkt.Packet.sequence;
        ctx.c_fields <- Option.map Dd.fields_of_t dd;
        ctx.c_is_video <- is_video;
        ctx.c_parsed <- Some (pkt, dd);
        true
  else
    match Packet.View.of_bytes ~ext_id:Dd.extension_id dgram.payload with
    | exception Rtp.Wire.Parse_error _ -> false
    | view ->
        let ssrc = view.Packet.View.ssrc in
        let is_rendition = Array.exists (fun s -> s = ssrc) uplink.renditions in
        let is_video = ssrc = uplink.video_ssrc || is_rendition in
        let fields =
          if is_video && view.Packet.View.ext_off >= 0 then
            Dd.read_fields view.Packet.View.buf ~off:view.Packet.View.ext_off
              ~len:view.Packet.View.ext_len
          else None
        in
        (* a non-canonical descriptor only matters if the splice path
           would reserialize it, but routing those rare packets through
           the slow path keeps the equivalence argument unconditional *)
        let dd_canonical =
          match fields with Some f -> f.Dd.f_canonical | None -> true
        in
        let fast_ok = view.Packet.View.canonical && dd_canonical in
        ctx.c_ssrc <- ssrc;
        ctx.c_seq <- view.Packet.View.sequence;
        ctx.c_fields <- fields;
        ctx.c_view <- (if fast_ok then Some view else None);
        ctx.c_is_video <- is_video;
        true

let handle_media t uplink (dgram : Dgram.t) =
  let ingress_ns = Engine.now t.engine in
  let size = Dgram.wire_size dgram in
  if not (ingest t uplink dgram) then begin
    t.ingress.other_pkts <- t.ingress.other_pkts + 1;
    t.ingress.other_bytes <- t.ingress.other_bytes + size
  end
  else begin
    let ctx = t.scratch in
      if uplink.feedback_dst = None then uplink.feedback_dst <- Some dgram.src;
      let has_structure =
        match ctx.c_fields with Some f -> f.Dd.f_has_structure | None -> false
      in
      if ctx.c_ssrc = uplink.audio_ssrc then begin
        t.ingress.rtp_audio_pkts <- t.ingress.rtp_audio_pkts + 1;
        t.ingress.rtp_audio_bytes <- t.ingress.rtp_audio_bytes + size
      end
      else if has_structure then begin
        (* extended dependency descriptor: the data plane cannot parse the
           template structure; copy to the agent (Appendix E) *)
        t.ingress.rtp_av1_ds_pkts <- t.ingress.rtp_av1_ds_pkts + 1;
        t.ingress.rtp_av1_ds_bytes <- t.ingress.rtp_av1_ds_bytes + size;
        to_cpu t dgram
      end
      else begin
        t.ingress.rtp_video_pkts <- t.ingress.rtp_video_pkts + 1;
        t.ingress.rtp_video_bytes <- t.ingress.rtp_video_bytes + size
      end;
      if ctx.c_view <> None then Metrics.incr t.fast_pkts
      else Metrics.incr t.slow_pkts;
      (* Causal tracing: adopt the ingress datagram's id when the sender
         stamped one, else sample a fresh id. Both tests are false when
         tracing is off, so the untraced path pays two comparisons. *)
      (if Trace.enabled Trace.Packet then begin
         ctx.c_trace <-
           (if dgram.Dgram.trace >= 0 then dgram.Dgram.trace
            else Trace.next_packet_id ());
         if ctx.c_trace >= 0 then
           Trace.instant ~ts:ingress_ns ~trace:ctx.c_trace ~cat:"dp" "ingress"
             ~args:
               [
                 ("ssrc", Trace.I ctx.c_ssrc);
                 ("seq", Trace.I ctx.c_seq);
                 ("size", Trace.I size);
                 ("path", Trace.S (if ctx.c_view <> None then "fast" else "slow"));
               ]
       end);
      fanout t ~ingress_ns uplink ctx
  end

(* --- feedback path ----------------------------------------------------------- *)

(* Sender-side RTCP (SR/SDES): replicated downstream to every receiver of
   this sender's streams, re-addressed per leg. *)
let handle_sender_rtcp t uplink (dgram : Dgram.t) =
  let ingress_ns = Engine.now t.engine in
  let size = Dgram.wire_size dgram in
  (* Table 1 counts RTCP packets, several of which share one compound
     datagram. *)
  let subpackets =
    match Rtp.Rtcp.parse_compound dgram.payload with
    | exception Rtp.Wire.Parse_error _ -> 1
    | ps -> max 1 (List.length ps)
  in
  t.ingress.rtcp_sr_sdes_pkts <- t.ingress.rtcp_sr_sdes_pkts + subpackets;
  t.ingress.rtcp_sr_sdes_bytes <- t.ingress.rtcp_sr_sdes_bytes + size;
  if uplink.feedback_dst = None then uplink.feedback_dst <- Some dgram.src;
  (* Every replica shares the one ingress payload (RTCP is forwarded
     verbatim), so these egress datagrams are GC-owned, not pooled. A
     pooled ingress buffer (cascade-relay hop) is recycled when this
     handler returns, before the flush fires — detach it with a copy. *)
  let payload =
    match dgram.Dgram.pool with
    | None -> dgram.payload
    | Some _ -> Bytes.copy dgram.payload
  in
  let batch = take_batch t in
  (match
     Trees.route_media t.trees uplink.meeting ~sender:uplink.sender ~layer:Dd.T0
   with
  | Trees.No_receivers -> ()
  | Trees.Unicast { receiver; _ } -> (
      match Tofino.Table.lookup t.legs (receiver, uplink.video_ssrc) with
      | Some leg ->
          emit t ~batch ~pool:None ~trace:dgram.Dgram.trace ~receiver
            ~ssrc:uplink.video_ssrc ~template:None ~src_port:leg.src_port
            ~dst:leg.dst payload
      | None -> ())
  | Trees.Replicate { mgid; l1_xid; rid; l2_xid } ->
      let each (r : Tofino.Pre.replica) =
        match Trees.receiver_of_replica t.trees uplink.meeting ~mgid ~rid:r.rid with
        | Some receiver -> (
            match Tofino.Table.lookup t.legs (receiver, uplink.video_ssrc) with
            | Some leg ->
                emit t ~batch ~pool:None ~trace:dgram.Dgram.trace ~receiver
                  ~ssrc:uplink.video_ssrc ~template:None ~src_port:leg.src_port
                  ~dst:leg.dst payload
            | None -> ())
        | None -> ()
      in
      if t.mode = Slow then
        List.iter each (Tofino.Pre.replicate t.pre ~mgid ~l1_xid ~rid ~l2_xid)
      else Array.iter each (Tofino.Pre.replicate_cached t.pre ~mgid ~l1_xid ~rid ~l2_xid));
  flush_egress t ~ingress_ns batch

(* Receiver-side RTCP (RR/REMB/NACK/PLI) arriving on a leg port: forward
   the actionable parts upstream (REMB gated by the agent's filter) and
   copy everything to the CPU port for analysis. *)
let handle_receiver_rtcp t leg (dgram : Dgram.t) =
  let ingress_ns = Engine.now t.engine in
  let size = Dgram.wire_size dgram in
  let packets =
    match Rtp.Rtcp.parse_compound dgram.payload with
    | exception Rtp.Wire.Parse_error _ -> []
    | ps -> ps
  in
  let has_remb = List.exists (function Rtp.Rtcp.Remb _ -> true | _ -> false) packets in
  let subpackets = max 1 (List.length packets) in
  if has_remb then begin
    t.ingress.rtcp_remb_pkts <- t.ingress.rtcp_remb_pkts + subpackets;
    t.ingress.rtcp_remb_bytes <- t.ingress.rtcp_remb_bytes + size
  end
  else begin
    t.ingress.rtcp_rr_pkts <- t.ingress.rtcp_rr_pkts + subpackets;
    t.ingress.rtcp_rr_bytes <- t.ingress.rtcp_rr_bytes + size
  end;
  (match Tofino.Table.lookup t.uplinks leg.uplink_port with
  | None -> ()
  | Some slot -> (
      let uplink = slot.entry in
      match uplink.feedback_dst with
      | None -> ()
      | Some dst ->
          let forwardable =
            List.filter_map
              (fun p ->
                match p with
                | Rtp.Rtcp.Nack n -> (
                    match leg.simulcast with
                    | Some sc ->
                        (* a spliced stream cannot serve retransmissions
                           (the sequence spaces were joined); refresh the
                           active rendition instead *)
                        let active = Simulcast.active sc in
                        let ssrc =
                          match Tofino.Table.lookup t.uplinks leg.uplink_port with
                          | Some { entry = { renditions; _ }; _ }
                            when active < Array.length renditions ->
                              renditions.(active)
                          | _ -> n.media_ssrc
                        in
                        Some (Rtp.Rtcp.Pli { sender_ssrc = 0; media_ssrc = ssrc })
                    | None ->
                        (* The receiver names sequence numbers in the
                           rewritten space; translate back by the leg's
                           current offset so the sender's retransmission
                           buffer can find them. *)
                        let offset =
                          match leg.rewriter with
                          | Some rw -> Seq_rewrite.offset rw
                          | None -> 0
                        in
                        let lost = List.map (fun s -> (s + offset) land 0xFFFF) n.lost in
                        Some (Rtp.Rtcp.Nack { n with lost }))
                | Rtp.Rtcp.Pli _ | Rtp.Rtcp.Twcc _ -> Some p
                | Rtp.Rtcp.Remb _ | Rtp.Rtcp.Receiver_report _ ->
                    if leg.forward_remb then Some p else None
                | Rtp.Rtcp.Sender_report _ | Rtp.Rtcp.Sdes _ | Rtp.Rtcp.Bye _ -> None)
              packets
          in
          if forwardable <> [] then begin
            let payload = Rtp.Rtcp.serialize_compound forwardable in
            let out_size = Bytes.length payload + 42 in
            t.egress_pkts <- t.egress_pkts + 1;
            t.egress_bytes <- t.egress_bytes + out_size;
            (* the forwarded compound inherits the inbound RTCP's trace id:
               a retained copy must never orphan the packet's timeline *)
            let out =
              Dgram.v ~trace:dgram.Dgram.trace
                ~src:(Addr.v t.ip leg.uplink_port)
                ~dst payload
            in
            Engine.at t.engine
              ~time:(max (ingress_ns + t.pipeline_latency_ns) (Engine.now t.engine))
              (fun () -> Network.send t.network out)
          end));
  to_cpu t dgram

(* --- top-level classification ------------------------------------------------ *)

let handler t (dgram : Dgram.t) =
  ignore (Tofino.Parser.observe t.parser_stats dgram.payload);
  let size = Dgram.wire_size dgram in
  let port = dgram.dst.Addr.port in
  match Rtp.Demux.classify dgram.payload with
  | Rtp.Demux.Rtp_media -> (
      match Tofino.Table.lookup t.uplinks port with
      | Some slot -> handle_media t slot.entry dgram
      | None ->
          t.ingress.other_pkts <- t.ingress.other_pkts + 1;
          t.ingress.other_bytes <- t.ingress.other_bytes + size)
  | Rtp.Demux.Rtcp_feedback -> (
      match Tofino.Table.lookup t.uplinks port with
      | Some slot -> handle_sender_rtcp t slot.entry dgram
      | None -> (
          match Tofino.Table.lookup t.leg_by_port port with
          | Some leg -> handle_receiver_rtcp t leg dgram
          | None ->
              t.ingress.other_pkts <- t.ingress.other_pkts + 1;
              t.ingress.other_bytes <- t.ingress.other_bytes + size))
  | Rtp.Demux.Stun_packet ->
      t.ingress.stun_pkts <- t.ingress.stun_pkts + 1;
      t.ingress.stun_bytes <- t.ingress.stun_bytes + size;
      to_cpu t dgram
  | Rtp.Demux.Unknown ->
      t.ingress.other_pkts <- t.ingress.other_pkts + 1;
      t.ingress.other_bytes <- t.ingress.other_bytes + size

let create engine network ~ip ?pre_limits ?pipeline_latency_ns ?cpu_port_latency_ns
    ?header_auth ?mode ?obs_label () =
  let t =
    create engine network ~ip ?pre_limits ?pipeline_latency_ns ?cpu_port_latency_ns
      ?header_auth ?mode ?obs_label ()
  in
  Network.bind_host network ~ip (handler t);
  t

(* --- stats ---------------------------------------------------------------- *)

let ingress_counters t = t.ingress
let cpu_pkts t = t.cpu_pkts
let cpu_bytes t = t.cpu_bytes
let egress_pkts t = t.egress_pkts
let egress_bytes t = t.egress_bytes
let replicas_suppressed t = t.replicas_suppressed
let forward_delay_samples t = t.forward_delay

type fastpath_stats = {
  fp_fast_pkts : int;
  fp_slow_pkts : int;
  fp_replica_copies : int;
  fp_paranoid_checks : int;
  fp_paranoid_mismatches : int;
  fp_cache_hits : int;
  fp_cache_misses : int;
  fp_cache_invalidations : int;
  fp_cache_entries : int;
  fp_pool_live : int;
  fp_pool_high_water : int;
  fp_pool_recycled : int;
  fp_pool_fresh : int;
}

let fastpath_stats t =
  let c = Tofino.Pre.cache_stats t.pre in
  let p = Bufpool.stats t.pool in
  {
    fp_fast_pkts = Metrics.value t.fast_pkts;
    fp_slow_pkts = Metrics.value t.slow_pkts;
    fp_replica_copies = Metrics.value t.replica_copies;
    fp_paranoid_checks = Metrics.value t.paranoid_checks;
    fp_paranoid_mismatches = Metrics.value t.paranoid_mismatches;
    fp_cache_hits = c.Tofino.Pre.hits;
    fp_cache_misses = c.Tofino.Pre.misses;
    fp_cache_invalidations = c.Tofino.Pre.invalidations;
    fp_cache_entries = c.Tofino.Pre.entries;
    fp_pool_live = p.Bufpool.live;
    fp_pool_high_water = p.Bufpool.high_water;
    fp_pool_recycled = p.Bufpool.recycled;
    fp_pool_fresh = p.Bufpool.fresh;
  }

let pool_stats t = Bufpool.stats t.pool
let header_auth_enabled t = t.header_auth
let headers_authenticated t = t.headers_authenticated

let parser_stats t = t.parser_stats

(* --- introspection (snapshot layer) ---------------------------------------- *)

type table_occupancy = { tbl_name : string; tbl_size : int; tbl_capacity : int }

let table_occupancy t =
  let of_table : 'k 'v. ('k, 'v) Tofino.Table.t -> table_occupancy =
   fun tbl ->
    {
      tbl_name = Tofino.Table.name tbl;
      tbl_size = Tofino.Table.size tbl;
      tbl_capacity = Tofino.Table.capacity tbl;
    }
  in
  [
    of_table t.uplinks;
    of_table t.legs;
    of_table t.leg_by_port;
    {
      tbl_name = "stream_index";
      tbl_size = t.next_stream_index - List.length t.free_stream_indices;
      tbl_capacity = stream_index_capacity;
    };
  ]

type uplink_view = {
  uv_port : int;
  uv_sender : int;
  uv_meeting : Trees.handle;
  uv_video_ssrc : int;
  uv_audio_ssrc : int;
  uv_renditions : int array;
}

let uplinks_view t =
  Tofino.Table.fold t.uplinks
    (fun port slot acc ->
      {
        uv_port = port;
        uv_sender = slot.entry.sender;
        uv_meeting = slot.entry.meeting;
        uv_video_ssrc = slot.entry.video_ssrc;
        uv_audio_ssrc = slot.entry.audio_ssrc;
        uv_renditions = slot.entry.renditions;
      }
      :: acc)
    []

type leg_view = {
  lv_receiver : int;
  lv_video_ssrc : int;
  lv_dst : Addr.t;
  lv_src_port : int;
  lv_uplink_port : int;
  lv_stream_index : int;
  lv_forward_remb : bool;
  lv_target : Dd.decode_target;
  lv_ssrc_keys : int list;  (** every SSRC the egress table maps to this leg *)
}

let legs_view t =
  let by_leg = Hashtbl.create 64 in
  Tofino.Table.iter t.legs (fun (receiver, ssrc) leg ->
      let keys =
        match Hashtbl.find_opt by_leg (receiver, leg.src_port) with
        | Some (_, keys) -> ssrc :: keys
        | None -> [ ssrc ]
      in
      Hashtbl.replace by_leg (receiver, leg.src_port) (leg, keys));
  Hashtbl.fold
    (fun (receiver, _) (leg, keys) acc ->
      {
        lv_receiver = receiver;
        lv_video_ssrc = leg.leg_video_ssrc;
        lv_dst = leg.dst;
        lv_src_port = leg.src_port;
        lv_uplink_port = leg.uplink_port;
        lv_stream_index = leg.stream_index;
        lv_forward_remb = leg.forward_remb;
        lv_target = leg.target;
        lv_ssrc_keys = List.sort compare keys;
      }
      :: acc)
    by_leg []

let feedback_view t =
  Tofino.Table.fold t.leg_by_port
    (fun port leg acc -> (port, leg.leg_receiver) :: acc)
    []

let stream_index_state t = (t.free_stream_indices, t.next_stream_index)

(* Deliberate corruption hooks for the analysis mutation harness — each
   breaks a bookkeeping invariant the registration API maintains. *)
module Unsafe = struct
  let drop_feedback_entry t ~src_port = Tofino.Table.remove t.leg_by_port src_port
  let push_free_stream_index t idx = t.free_stream_indices <- idx :: t.free_stream_indices
end

let resource_program t =
  let open Tofino.Resources in
  {
    (* depth-aware RTP-extension parse tree (Appendix E) dominates ingress *)
    ingress_parser_depth = Tofino.Parser.graph_depth;
    egress_parser_depth = 7;
    ingress_stages = 7;
    egress_stages = 5;
    tables =
      [
        {
          t_name = "uplink";
          entries = max 1024 (Tofino.Table.size t.uplinks);
          key_bytes = 2;
          value_bytes = 12;
          ternary = false;
        };
        {
          t_name = "egress_leg";
          entries = max 4096 (Tofino.Table.size t.legs);
          key_bytes = 8;
          value_bytes = 10;
          ternary = false;
        };
        {
          t_name = "feedback";
          entries = max 4096 (Tofino.Table.size t.leg_by_port);
          key_bytes = 2;
          value_bytes = 8;
          ternary = false;
        };
        {
          t_name = "stream_index";
          entries = stream_index_capacity;
          key_bytes = 12;
          value_bytes = 2;
          ternary = false;
        };
        { t_name = "classify"; entries = 64; key_bytes = 4; value_bytes = 1; ternary = true };
      ]
      @
      (* SipHash over the 20-byte header uses a small round-key table and
         extra VLIW work, per the feasibility argument of §8 *)
      (if t.header_auth then
         [ { t_name = "hmac_keys"; entries = 256; key_bytes = 4; value_bytes = 16; ternary = false } ]
       else []);
    registers =
      Array.to_list t.trackers
      |> List.map (fun r ->
             { r_name = Tofino.Register.name r; r_cells = Tofino.Register.cells r; width_bytes = 4 });
    phv_bits_used = (if t.header_auth then 1044 else 916);
    vliw_used = (if t.header_auth then 61 else 47);
  }
