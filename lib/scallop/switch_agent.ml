module Addr = Scallop_util.Addr
module Ewma = Scallop_util.Ewma
module Engine = Netsim.Engine
module Dgram = Netsim.Dgram
module Dd = Av1.Dd
module Trace = Scallop_obs.Trace

type select_decode_target =
  current:Dd.decode_target ->
  history:float list ->
  estimate_bps:int ->
  full_bitrate_bps:int ->
  Dd.decode_target

let default_select ~current ~history:_ ~estimate_bps ~full_bitrate_bps =
  Codec.Rate_policy.select_decode_target ~current ~estimate_bps ~full_bitrate_bps

type meeting_id = int

type leg_info = {
  leg_port : int;
  receiver : int;
  adaptive : bool;  (** false for cascade legs towards another switch *)
  mutable ewma : Ewma.t;
  mutable history : float list;  (** recent raw estimates, newest first *)
  mutable target : Dd.decode_target;
  mutable last_target_change_ns : int;
}

type sender_stream = {
  uplink_port : int;
  sender : int;
  s_meeting : meeting_id;
  video_ssrc : int;
  audio_ssrc : int;
  full_bitrate : int;
  renditions : (int * int) array;  (** simulcast (ssrc, bitrate), best first *)
  mutable legs : leg_info list;
  mutable best_leg : int option;  (** leg_port of the selected downlink *)
}

type meeting_state = {
  mid : meeting_id;
  mutable handle : Trees.handle;
  mutable design : Trees.design;
  mutable streams : sender_stream list;
  mutable members : (int * int) list;  (** participant, egress port *)
  mutable sender_members : int list;
  mutable pair_specific : bool;  (** a pair target was explicitly set *)
}

type t = {
  engine : Engine.t;
  dp : Dataplane.t;
  rewrite : Seq_rewrite.variant;
  select : select_decode_target;
  migration_enabled : bool;
  rewriting_enabled : bool;
  feedback_filter : bool;
  meetings : (meeting_id, meeting_state) Hashtbl.t;
  stream_by_uplink : (int, sender_stream) Hashtbl.t;
  leg_index : (int, sender_stream * leg_info) Hashtbl.t;  (** by leg_port *)
  mutable next_meeting : int;
  mutable alive : bool;
  mutable epoch : int;  (** bumped on every restart; carried in Pong *)
  mutable fence : int;
      (** highest fencing epoch observed on any {!Rpc.Fenced} request;
          requests under a lower fence answer [Stale_fence]. Lost on
          restart like all agent memory — the acting controller's fenced
          resync re-installs it. *)
  rpc_calls : Scallop_obs.Metrics.counter;
  mutable cpu_packets : int;
  mutable cpu_bytes : int;
  mutable stun_answered : int;
  mutable rembs_analyzed : int;
  mutable target_changes : int;
  mutable filter_switches : int;
  mutable migrations : int;
  mutable structures_seen : int;
  mutable rpc_server : Rpc_transport.Server.t option;
}

(* --- migration policy ------------------------------------------------------ *)

let desired_design _t m =
  if List.length m.members < 2 then Trees.Nra
  else if List.length m.members = 2 then Trees.Two_party
  else if m.pair_specific then Trees.Ra_sr
  else begin
    let adapted =
      List.exists
        (fun s -> List.exists (fun l -> l.target <> Dd.DT_30fps) s.legs)
        m.streams
    in
    if adapted then Trees.Ra_r else Trees.Nra
  end

(* Rebuild the meeting's trees under [want] from the agent's authoritative
   membership — the paper's three migration steps: build the new trees,
   repoint the uplinks, free the old trees. *)
let rebuild t m want =
  let handle' =
    Trees.register_meeting (Dataplane.trees t.dp) want ~participants:m.members
      ~senders:m.sender_members
  in
  List.iter
    (fun s ->
      List.iter
        (fun l ->
          if l.target <> Dd.DT_30fps then
            (* [pair_specific] is sticky across membership changes, but
               pair-level targets only exist in Ra_sr trees — under any
               other design (e.g. the meeting shrank to two-party) the
               pair target degrades to a per-receiver target *)
            if m.pair_specific && want = Trees.Ra_sr then
              Trees.set_pair_target (Dataplane.trees t.dp) handle' ~sender:s.sender
                ~receiver:l.receiver l.target
            else
              Trees.set_receiver_target (Dataplane.trees t.dp) handle' ~receiver:l.receiver
                l.target)
        s.legs)
    m.streams;
  List.iter
    (fun s -> Dataplane.swap_meeting_handle t.dp ~port:s.uplink_port handle')
    m.streams;
  Trees.unregister_meeting (Dataplane.trees t.dp) m.handle;
  m.handle <- handle';
  m.design <- want;
  t.migrations <- t.migrations + 1

let maybe_migrate t m =
  if t.migration_enabled then begin
    let want = desired_design t m in
    if want <> m.design then rebuild t m want
  end

(* --- registration API --------------------------------------------------------

   These are the agent-local session operations. The controller reaches
   them through {!dispatch}, driven by the RPC server over the control
   link; [rpc_calls] counts the request messages that actually arrived
   on the wire (duplicates included), not local function entries. *)

let new_meeting t ~two_party =
  ignore two_party;
  (* Meetings always start as an (empty) NRA registration; the migration
     policy moves them to Two_party once exactly two members are present,
     and onwards as adaptation state evolves. *)
  let mid = t.next_meeting in
  t.next_meeting <- mid + 1;
  let handle =
    Trees.register_meeting (Dataplane.trees t.dp) Trees.Nra ~participants:[] ~senders:[]
  in
  Hashtbl.replace t.meetings mid
    {
      mid;
      handle;
      design = Trees.Nra;
      streams = [];
      members = [];
      sender_members = [];
      pair_specific = false;
    };
  mid

let meeting t mid =
  match Hashtbl.find_opt t.meetings mid with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Switch_agent: unknown meeting %d" mid)

let meeting_design t mid = (meeting t mid).design

let register_participant t ~meeting:mid ~participant ~egress_port ~sends =
  let m = meeting t mid in
  m.members <- m.members @ [ (participant, egress_port) ];
  if sends then m.sender_members <- m.sender_members @ [ participant ];
  if Trace.enabled Trace.Rpc then
    (* [count] is this participant's multiplicity after the add; the
       exactly-once-effect rule requires it to always be 1 (a duplicate
       registration is the observable damage of a double-executed op) *)
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "member_add"
      ~args:
        [
          ("agent", Trace.S (Dataplane.obs_label t.dp));
          ("meeting", Trace.I mid);
          ("participant", Trace.I participant);
          ( "count",
            Trace.I
              (List.length (List.filter (fun (p, _) -> p = participant) m.members))
          );
        ];
  let want = if t.migration_enabled then desired_design t m else m.design in
  if want <> m.design then rebuild t m want
  else Trees.add_participant (Dataplane.trees t.dp) m.handle (participant, egress_port) ~sends

let remove_participant t ~meeting:mid ~participant =
  let m = meeting t mid in
  m.members <- List.filter (fun (p, _) -> p <> participant) m.members;
  if Trace.enabled Trace.Rpc then
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "member_del"
      ~args:
        [
          ("agent", Trace.S (Dataplane.obs_label t.dp));
          ("meeting", Trace.I mid);
          ("participant", Trace.I participant);
        ];
  m.sender_members <- List.filter (fun p -> p <> participant) m.sender_members;
  (* retire this participant's sender stream and legs *)
  let gone, kept = List.partition (fun s -> s.sender = participant) m.streams in
  m.streams <- kept;
  List.iter
    (fun s ->
      Hashtbl.remove t.stream_by_uplink s.uplink_port;
      Dataplane.unregister_uplink t.dp ~port:s.uplink_port;
      List.iter
        (fun l ->
          Hashtbl.remove t.leg_index l.leg_port;
          Dataplane.unregister_leg t.dp ~receiver:l.receiver ~video_ssrc:s.video_ssrc)
        s.legs)
    gone;
  (* drop legs other senders had towards this participant *)
  List.iter
    (fun s ->
      let mine, others = List.partition (fun l -> l.receiver = participant) s.legs in
      s.legs <- others;
      List.iter
        (fun l ->
          Hashtbl.remove t.leg_index l.leg_port;
          Dataplane.unregister_leg t.dp ~receiver:participant ~video_ssrc:s.video_ssrc;
          if s.best_leg = Some l.leg_port then s.best_leg <- None)
        mine)
    kept;
  let want = if t.migration_enabled then desired_design t m else m.design in
  if want <> m.design then rebuild t m want
  else Trees.remove_participant (Dataplane.trees t.dp) m.handle participant

(* Tear one stream down: its data-plane legs, feedback state, and uplink. *)
let unregister_uplink t ~meeting:mid ~port =
  let m = meeting t mid in
  let gone, kept = List.partition (fun s -> s.uplink_port = port) m.streams in
  m.streams <- kept;
  List.iter
    (fun s ->
      Hashtbl.remove t.stream_by_uplink s.uplink_port;
      Dataplane.unregister_uplink t.dp ~port:s.uplink_port;
      List.iter
        (fun l ->
          Hashtbl.remove t.leg_index l.leg_port;
          Dataplane.unregister_leg t.dp ~receiver:l.receiver ~video_ssrc:s.video_ssrc)
        s.legs)
    gone

let register_uplink ?(renditions = [||]) t ~meeting:mid ~sender ~port ~video_ssrc
    ~audio_ssrc ~full_bitrate =
  let m = meeting t mid in
  let stream =
    {
      uplink_port = port;
      sender;
      s_meeting = mid;
      video_ssrc;
      audio_ssrc;
      full_bitrate;
      renditions;
      legs = [];
      best_leg = None;
    }
  in
  m.streams <- m.streams @ [ stream ];
  Hashtbl.replace t.stream_by_uplink port stream;
  Dataplane.register_uplink t.dp ~port ~sender ~meeting:m.handle ~video_ssrc ~audio_ssrc
    ~renditions:(Array.map fst renditions)

let register_leg t ~meeting:mid ~sender ?uplink_port ~receiver ~leg_port ~dst
    ?(adaptive = true) () =
  let m = meeting t mid in
  let wanted s =
    s.sender = sender
    && match uplink_port with Some p -> s.uplink_port = p | None -> true
  in
  match List.find_opt wanted m.streams with
  | None -> invalid_arg "Switch_agent.register_leg: sender has no such uplink"
  | Some stream ->
      let leg =
        {
          leg_port;
          receiver;
          adaptive;
          ewma = Ewma.create ~alpha:0.3;
          history = [];
          target = Dd.DT_30fps;
          last_target_change_ns = min_int / 2;
        }
      in
      stream.legs <- stream.legs @ [ leg ];
      Hashtbl.replace t.leg_index leg_port (stream, leg);
      let simulcast =
        if Array.length stream.renditions = 0 then None
        else Some (Array.map fst stream.renditions)
      in
      Dataplane.register_leg ?simulcast t.dp ~receiver ~video_ssrc:stream.video_ssrc
        ~audio_ssrc:stream.audio_ssrc ~dst ~src_port:leg_port ~uplink_port:stream.uplink_port
        ~rewrite:(if t.rewriting_enabled then Some t.rewrite else None);
      if not t.feedback_filter then
        (* ablation: naive split-less forwarding of every receiver's REMB *)
        Dataplane.set_remb_forwarding t.dp ~leg_port true
      else if stream.best_leg = None then begin
        (* the first leg of a stream is the initial best downlink *)
        stream.best_leg <- Some leg_port;
        Dataplane.set_remb_forwarding t.dp ~leg_port true
      end

let set_pair_target t ~meeting:mid ~sender ~receiver target =
  let m = meeting t mid in
  m.pair_specific <- true;
  maybe_migrate t m;
  (match List.find_opt (fun s -> s.sender = sender) m.streams with
  | Some stream -> (
      match List.find_opt (fun l -> l.receiver = receiver) stream.legs with
      | Some leg ->
          leg.target <- target;
          Dataplane.set_leg_target t.dp ~receiver ~video_ssrc:stream.video_ssrc target
      | None -> ())
  | None -> ());
  if m.design = Trees.Ra_sr then
    Trees.set_pair_target (Dataplane.trees t.dp) m.handle ~sender ~receiver target
  else Trees.set_receiver_target (Dataplane.trees t.dp) m.handle ~receiver target

(* --- CPU-port packet handling ------------------------------------------------ *)

let answer_stun t (dgram : Dgram.t) =
  match Rtp.Stun.parse dgram.payload with
  | exception Rtp.Wire.Parse_error _ -> ()
  | msg when msg.Rtp.Stun.cls = Rtp.Stun.Request ->
      t.stun_answered <- t.stun_answered + 1;
      let reply =
        Rtp.Stun.binding_success ~transaction_id:msg.Rtp.Stun.transaction_id
          ~mapped_ip:dgram.src.Addr.ip ~mapped_port:dgram.src.Addr.port
      in
      Dataplane.inject t.dp
        (Dgram.v ~src:dgram.dst ~dst:dgram.src (Rtp.Stun.serialize reply))
  | _ -> ()

(* The §5.3 filter function: smooth each leg's estimates, pick the max. *)
let run_filter t stream =
  if not t.feedback_filter then ()
  else
  let best =
    List.fold_left
      (fun acc leg ->
        match Ewma.value_opt leg.ewma with
        | None -> acc
        | Some v -> (
            match acc with
            | Some (_, best_v) when best_v >= v -> acc
            | _ -> Some (leg, v)))
      None stream.legs
  in
  match best with
  | None -> ()
  | Some (leg, _) ->
      if stream.best_leg <> Some leg.leg_port then begin
        (match stream.best_leg with
        | Some old -> Dataplane.set_remb_forwarding t.dp ~leg_port:old false
        | None -> ());
        Dataplane.set_remb_forwarding t.dp ~leg_port:leg.leg_port true;
        stream.best_leg <- Some leg.leg_port;
        t.filter_switches <- t.filter_switches + 1
      end

(* Downgrades apply immediately (QoE-critical); upgrades hold down for a
   while after any change, so a borderline link settles on a clean step
   instead of oscillating as GCC repeatedly probes the next layer up. *)
let upgrade_hold_down_ns = 20_000_000_000

let apply_target t m stream leg target =
  let upgrade = Dd.index_of_target target > Dd.index_of_target leg.target in
  let held =
    upgrade && Engine.now t.engine - leg.last_target_change_ns < upgrade_hold_down_ns
  in
  if target <> leg.target && not held then begin
    leg.target <- target;
    leg.last_target_change_ns <- Engine.now t.engine;
    t.target_changes <- t.target_changes + 1;
    Dataplane.set_leg_target t.dp ~receiver:leg.receiver ~video_ssrc:stream.video_ssrc target;
    if m.pair_specific && m.design = Trees.Ra_sr then
      Trees.set_pair_target (Dataplane.trees t.dp) m.handle ~sender:stream.sender
        ~receiver:leg.receiver target
    else
      Trees.set_receiver_target (Dataplane.trees t.dp) m.handle ~receiver:leg.receiver target;
    maybe_migrate t m
  end

(* Simulcast rendition selection: the best rendition whose bitrate fits
   under the smoothed estimate (10% headroom), with the same upgrade
   hold-down used for SVC targets; the switch engages at the key frame the
   PLI provokes. *)
let select_rendition t stream leg ~smoothed =
  match Dataplane.leg_rendition t.dp ~leg_port:leg.leg_port with
  | None -> ()
  | Some current ->
      let n = Array.length stream.renditions in
      let affordable i = float_of_int (snd stream.renditions.(i)) *. 1.1 <= float_of_int smoothed in
      let rec best i = if i >= n - 1 then n - 1 else if affordable i then i else best (i + 1) in
      let desired = best 0 in
      let upgrading = desired < current in
      let held =
        upgrading && Engine.now t.engine - leg.last_target_change_ns < upgrade_hold_down_ns
      in
      if desired <> current && not held then begin
        leg.last_target_change_ns <- Engine.now t.engine;
        t.target_changes <- t.target_changes + 1;
        Dataplane.set_leg_rendition t.dp ~leg_port:leg.leg_port desired;
        Dataplane.request_keyframe t.dp ~uplink_port:stream.uplink_port
          ~ssrc:(fst stream.renditions.(desired))
      end

let on_remb t stream leg estimate =
  t.rembs_analyzed <- t.rembs_analyzed + 1;
  Ewma.observe leg.ewma (float_of_int estimate);
  leg.history <- float_of_int estimate :: leg.history;
  if List.length leg.history > 16 then
    leg.history <- List.filteri (fun i _ -> i < 16) leg.history;
  run_filter t stream;
  let m = meeting t stream.s_meeting in
  (* select on the smoothed estimate: a single keyframe-burst dip must not
     cost the receiver a quality layer *)
  let smoothed = int_of_float (Ewma.value leg.ewma) in
  if Array.length stream.renditions > 0 then select_rendition t stream leg ~smoothed
  else if leg.adaptive then begin
    let target =
      t.select ~current:leg.target ~history:leg.history ~estimate_bps:smoothed
        ~full_bitrate_bps:stream.full_bitrate
    in
    apply_target t m stream leg target
  end

let on_rtcp_copy t (dgram : Dgram.t) =
  match Hashtbl.find_opt t.leg_index dgram.dst.Addr.port with
  | None -> ()
  | Some (stream, leg) -> (
      match Rtp.Rtcp.parse_compound dgram.payload with
      | exception Rtp.Wire.Parse_error _ -> ()
      | packets ->
          List.iter
            (fun p ->
              match p with
              | Rtp.Rtcp.Remb { bitrate_bps; _ } -> on_remb t stream leg bitrate_bps
              | Rtp.Rtcp.Twcc _ | Rtp.Rtcp.Receiver_report _ | Rtp.Rtcp.Nack _
              | Rtp.Rtcp.Pli _ | Rtp.Rtcp.Sender_report _ | Rtp.Rtcp.Sdes _
              | Rtp.Rtcp.Bye _ -> ())
            packets)

let on_av1_structure t (dgram : Dgram.t) =
  match Rtp.Packet.parse dgram.payload with
  | exception Rtp.Wire.Parse_error _ -> ()
  | pkt -> (
      match Rtp.Packet.find_extension pkt Dd.extension_id with
      | None -> ()
      | Some data -> (
          match Dd.parse data with
          | exception Rtp.Wire.Parse_error _ -> ()
          | dd -> if dd.Dd.structure <> None then t.structures_seen <- t.structures_seen + 1))

let cpu_handler t (dgram : Dgram.t) =
  if not t.alive then ()
  else begin
  t.cpu_packets <- t.cpu_packets + 1;
  t.cpu_bytes <- t.cpu_bytes + Dgram.wire_size dgram;
  match Rtp.Demux.classify dgram.payload with
  | Rtp.Demux.Stun_packet -> answer_stun t dgram
  | Rtp.Demux.Rtcp_feedback -> on_rtcp_copy t dgram
  | Rtp.Demux.Rtp_media -> on_av1_structure t dgram
  | Rtp.Demux.Unknown -> ()
  end

(* --- control-plane endpoint --------------------------------------------------

   Maps each wire request onto its agent-local operation. Raised
   [Invalid_argument]s are converted to [Rpc.Error] replies by the
   server, so a bad request degrades into a typed error at the
   controller instead of an exception inside the agent. *)

(* Forget every session: meeting records (releasing their PRE trees),
   stream/leg indexes, then the data-plane tables. Shared by the Reset
   request (resync step one) and the crash path (a dead switch keeps no
   state). *)
let wipe t =
  Hashtbl.iter
    (fun _ m -> Trees.unregister_meeting (Dataplane.trees t.dp) m.handle)
    t.meetings;
  Hashtbl.reset t.meetings;
  Hashtbl.reset t.stream_by_uplink;
  Hashtbl.reset t.leg_index;
  Dataplane.reset t.dp

let rec dispatch t (req : Rpc.request) : Rpc.reply =
  match req with
  | Rpc.Batch ops ->
      (* ops run in list order; a member's failure becomes its [Error]
         slot in the reply list and the rest still execute, so partial
         failure is visible per-op instead of poisoning the batch *)
      let n = List.length ops in
      let traced = Trace.enabled Trace.Rpc in
      let label = if traced then Dataplane.obs_label t.dp else "" in
      if traced then
        Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "batch_begin"
          ~args:[ ("agent", Trace.S label); ("n", Trace.I n) ];
      let indexed = List.mapi (fun i op -> (i, op)) ops in
      let order =
        if Mutation.on Mutation.Reverse_batch then List.rev indexed else indexed
      in
      let results =
        List.map
          (fun (i, op) ->
            let reply =
              match dispatch t op with
              | reply -> reply
              | exception Invalid_argument msg -> Rpc.Error msg
            in
            if traced then
              Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "batch_op"
                ~args:
                  [
                    ("agent", Trace.S label);
                    ("idx", Trace.I i);
                    ( "ok",
                      Trace.S
                        (match reply with Rpc.Error _ -> "false" | _ -> "true") );
                  ];
            (i, reply))
          order
      in
      if traced then
        Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "batch_end"
          ~args:[ ("agent", Trace.S label) ];
      (* replies always in submission order, so the controller's reply
         matching is oblivious to the (test-only) execution-order mutation *)
      Rpc.Batch_reply
        (List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) results))
  | Rpc.New_meeting { two_party } ->
      Rpc.Meeting_created { meeting = new_meeting t ~two_party }
  | Rpc.Register_participant { meeting; participant; egress_port; sends } ->
      register_participant t ~meeting ~participant ~egress_port ~sends;
      Rpc.Ack
  | Rpc.Register_uplink
      { meeting; sender; port; video_ssrc; audio_ssrc; full_bitrate; renditions } ->
      register_uplink ~renditions t ~meeting ~sender ~port ~video_ssrc ~audio_ssrc
        ~full_bitrate;
      Rpc.Ack
  | Rpc.Register_leg { meeting; sender; uplink_port; receiver; leg_port; dst; adaptive }
    ->
      register_leg t ~meeting ~sender ?uplink_port ~receiver ~leg_port ~dst ~adaptive ();
      Rpc.Ack
  | Rpc.Remove_participant { meeting; participant } ->
      remove_participant t ~meeting ~participant;
      Rpc.Ack
  | Rpc.Unregister_uplink { meeting; port } ->
      unregister_uplink t ~meeting ~port;
      Rpc.Ack
  | Rpc.Set_pair_target { meeting; sender; receiver; target } ->
      set_pair_target t ~meeting ~sender ~receiver target;
      Rpc.Ack
  | Rpc.Ping -> Rpc.Pong { epoch = t.epoch }
  | Rpc.Reset ->
      wipe t;
      Rpc.Ack
  | Rpc.Fenced { fence; op } ->
      if fence >= t.fence || Mutation.on Mutation.Skip_fencing_check then begin
        if fence > t.fence then t.fence <- fence;
        dispatch t op
      end
      else Rpc.Stale_fence { fence = t.fence }

let create engine dp ?(rewrite = Seq_rewrite.S_LM) ?(select = default_select)
    ?(migration_enabled = true) ?(rewriting_enabled = true) ?(feedback_filter = true) () =
  let t =
    {
      engine;
      dp;
      rewrite;
      select;
      migration_enabled;
      rewriting_enabled;
      feedback_filter;
      meetings = Hashtbl.create 32;
      stream_by_uplink = Hashtbl.create 64;
      leg_index = Hashtbl.create 256;
      next_meeting = 0;
      alive = true;
      epoch = 0;
      fence = 0;
      rpc_calls =
        Scallop_obs.Metrics.counter
          ~labels:[ ("switch", Dataplane.obs_label dp) ]
          ~help:"control requests the agent received on the wire (dups included)"
          "scallop_agent_rpc_calls";
      cpu_packets = 0;
      cpu_bytes = 0;
      stun_answered = 0;
      rembs_analyzed = 0;
      target_changes = 0;
      filter_switches = 0;
      migrations = 0;
      structures_seen = 0;
      rpc_server = None;
    }
  in
  Dataplane.set_cpu_sink dp (cpu_handler t);
  t.rpc_server <-
    Some
      (Rpc_transport.Server.create engine
         ~on_receive:(fun () -> Scallop_obs.Metrics.incr t.rpc_calls)
         ~label:(Dataplane.obs_label dp)
         ~handler:(fun req -> dispatch t req)
         ());
  t

let rpc_server t = Option.get t.rpc_server

(* --- crash / restart ---------------------------------------------------------

   The failure model is a whole-switch power loss: the agent process and
   the ASIC tables die together (the memory is gone the instant the
   lights go out), and a later restart is a fresh boot — empty state, no
   reply cache, and a bumped epoch so the controller's next heartbeat
   can tell "rebooted and blank" from "was merely unreachable". *)

let alive t = t.alive
let epoch t = t.epoch
let fence t = t.fence

let crash t =
  if t.alive then begin
    t.alive <- false;
    Rpc_transport.Server.set_online (rpc_server t) false;
    wipe t;
    if Trace.enabled Trace.Rpc then
      Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "agent_crash"
        ~args:[ ("agent", Trace.S (Dataplane.obs_label t.dp)) ]
  end

let restart t =
  crash t;
  t.epoch <- t.epoch + 1;
  t.next_meeting <- 0;
  t.fence <- 0;
  t.alive <- true;
  let server = rpc_server t in
  Rpc_transport.Server.flush_cache server;
  Rpc_transport.Server.set_online server true;
  if Trace.enabled Trace.Rpc then
    Trace.instant ~ts:(Engine.now t.engine) ~cat:"agent" "agent_restart"
      ~args:
        [
          ("agent", Trace.S (Dataplane.obs_label t.dp));
          ("epoch", Trace.I t.epoch);
        ]

type stats = {
  rpc_calls : int;
  cpu_packets : int;
  cpu_bytes : int;
  stun_answered : int;
  rembs_analyzed : int;
  target_changes : int;
  filter_switches : int;
  migrations : int;
}

let stats (t : t) =
  {
    rpc_calls = Scallop_obs.Metrics.value t.rpc_calls;
    cpu_packets = t.cpu_packets;
    cpu_bytes = t.cpu_bytes;
    stun_answered = t.stun_answered;
    rembs_analyzed = t.rembs_analyzed;
    target_changes = t.target_changes;
    filter_switches = t.filter_switches;
    migrations = t.migrations;
  }

let meeting_members t mid = List.map fst (meeting t mid).members

(* --- introspection (snapshot layer) ---------------------------------------- *)

type leg_view = {
  alv_port : int;
  alv_receiver : int;
  alv_adaptive : bool;
  alv_target : Dd.decode_target;
}

type stream_view = {
  asv_uplink_port : int;
  asv_sender : int;
  asv_video_ssrc : int;
  asv_audio_ssrc : int;
  asv_renditions : (int * int) array;
  asv_best_leg : int option;
  asv_legs : leg_view list;
}

type meeting_view = {
  amv_id : meeting_id;
  amv_design : Trees.design;
  amv_handle : Trees.handle;
  amv_members : (int * int) list;
  amv_senders : int list;
  amv_pair_specific : bool;
  amv_streams : stream_view list;
}

let introspect t =
  Hashtbl.fold
    (fun _ m acc ->
      {
        amv_id = m.mid;
        amv_design = m.design;
        amv_handle = m.handle;
        amv_members = m.members;
        amv_senders = m.sender_members;
        amv_pair_specific = m.pair_specific;
        amv_streams =
          List.map
            (fun s ->
              {
                asv_uplink_port = s.uplink_port;
                asv_sender = s.sender;
                asv_video_ssrc = s.video_ssrc;
                asv_audio_ssrc = s.audio_ssrc;
                asv_renditions = s.renditions;
                asv_best_leg = s.best_leg;
                asv_legs =
                  List.map
                    (fun l ->
                      {
                        alv_port = l.leg_port;
                        alv_receiver = l.receiver;
                        alv_adaptive = l.adaptive;
                        alv_target = l.target;
                      })
                    s.legs;
              })
            m.streams;
      }
      :: acc)
    t.meetings []
  |> List.sort (fun a b -> compare a.amv_id b.amv_id)

let feedback_filter_enabled t = t.feedback_filter

let current_target t ~meeting:mid ~sender ~receiver =
  let m = meeting t mid in
  match List.find_opt (fun s -> s.sender = sender) m.streams with
  | None -> Dd.DT_30fps
  | Some stream -> (
      match List.find_opt (fun l -> l.receiver = receiver) stream.legs with
      | Some leg -> leg.target
      | None -> Dd.DT_30fps)
