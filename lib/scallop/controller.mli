(** Scallop's centralized controller — the signaling server (paper §5.1).

    The controller exchanges SDP with participants, {e intercepts} each
    message and rewrites its connection candidates so that the switch
    appears to every participant as its sole peer, then programs the
    switch agent with the resulting session state. It is involved only
    when a session is created, a participant joins or leaves, or a media
    stream starts/stops — never on the media path.

    One controller can manage several switch agents (the cascading-SFU
    architecture of Appendix A); [create] takes the agent list.

    All controller→agent programming travels as typed {!Rpc} messages
    over a per-switch {!Rpc_transport.Client}: every call is encoded,
    shipped over a simulated control link, decoded and dispatched by the
    agent's RPC server, with timeouts and idempotent retries. [control]
    sets that channel's latency/loss and retry policy; the default is an
    ideal link, under which results are identical to direct calls. *)

type t

type persisted
(** The slice of controller state a journal snapshot carries (intent
    tables plus allocator counters). Abstract — produced and consumed
    via {!compact_journal} and journal replay only. *)

val create :
  Netsim.Engine.t ->
  Netsim.Network.t ->
  Scallop_util.Rng.t ->
  agents:(Switch_agent.t * Dataplane.t) list ->
  ?control:Rpc_transport.config ->
  ?batch:bool ->
  ?journal:persisted Journal.t ->
  ?standby:bool ->
  ?label:string ->
  ?ip:int ->
  unit ->
  t
(** Meetings are placed round-robin across the given switches; each
    meeting lives wholly on one switch (splitting a meeting across
    switches — true cascading — is future work in the paper as well).

    [batch] (default [false]) turns on control-plane batching: session
    mutations append their wire ops to a per-switch buffer instead of
    issuing one blocking RPC each, and the buffer is flushed as a single
    [Rpc.Batch] at the end of each public operation ([join], [leave],
    screen-share changes, [set_pair_target]) — one round trip per
    touched switch per operation. Per-switch op order, at-most-once
    replay (the whole batch reply is cached under its sequence number)
    and the failure-detector semantics are unchanged: an op that hits a
    Dead or dying switch is queued for the post-heal drain or replay
    exactly as in per-op mode.

    [journal] puts the instance in cluster mode: every mutation is
    write-ahead logged there under the instance's fencing epoch, and
    every wire op is fenced (see the fault-tolerance section below). A
    journal-less controller behaves exactly as before — unfenced wire
    ops, no write-ahead logging.

    [standby] (default [false], requires [journal]) creates the instance
    as a tailing standby instead of an acting primary. [label] (default
    ["ctl"]) names the instance on traces; non-default labels also
    prefix its per-switch RPC metric labels so two instances never
    collide in the registry. [ip] (default 10.255.0.1) is the instance's
    address on the management network — give the standby its own so the
    agents' reply-path caches keyed by (address, seq) never conflate the
    two. *)

type meeting_id = int
type participant_id = int

val create_meeting : t -> meeting_id

val join :
  ?home:int -> ?simulcast:bool -> t -> meeting_id -> Webrtc.Client.t ->
  send_media:bool -> participant_id
(** Full signaling round: the participant's SDP offer is built, shipped
    through the textual SDP codec, candidate-rewritten to splice in the
    SFU, answered — and every existing participant receives a rewritten
    offer for the new sender's streams. All data-plane/agent state is
    installed before the answer returns.

    [home] attaches the participant to a specific switch (by index into
    the agent list); when it differs from other participants' homes the
    controller builds cascade relays between the switches (Appendix A):
    the upstream switch forwards the sender's full-quality stream once to
    the downstream switch, which replicates and rate-adapts for its local
    receivers. Defaults to the meeting's primary switch.

    [simulcast] makes the participant send three renditions instead of
    one SVC stream; the switch splices each receiver onto the best
    rendition its downlink affords (no cascade support for simulcast
    uplinks). *)

val leave : t -> participant_id -> unit

val start_screen_share : t -> participant_id -> unit
(** The paper's third controller trigger: a participant starts sharing a
    new media type mid-call. A fresh stream (own SSRCs, own uplink, own
    legs — and own cascade relays when the meeting spans switches) is
    signalled to every other participant. *)

val stop_screen_share : t -> participant_id -> unit

val screen_connection :
  t -> participant_id -> from:participant_id -> Webrtc.Client.connection option
(** The receive connection carrying [from]'s screen share, if any. *)

type sender_info = { egress_port : int; video_ssrc : int; audio_ssrc : int }

val participant_sender_info : t -> participant_id -> sender_info option
(** The participant's uplink identifiers, if it sends. *)

val set_pair_target :
  t -> sender:participant_id -> receiver:participant_id ->
  Av1.Dd.decode_target -> unit
(** Pin the layer [receiver] gets from [sender] (drives the meeting
    towards RA-SR), via a [Set_pair_target] RPC to the receiver's home
    switch. *)

val recv_connection :
  t -> participant_id -> from:participant_id -> Webrtc.Client.connection option
(** The receive connection carrying [from]'s media at this participant. *)

val send_connection : t -> participant_id -> Webrtc.Client.connection option

val agent_meeting_id : t -> meeting_id -> Switch_agent.meeting_id
val agent_participant_id : t -> participant_id -> int

type stats = {
  sdp_messages : int;
      (** SDP messages exchanged (each parsed and re-serialized through
          the {!Sdp} codec) *)
  control_requests : int;
      (** request datagrams put on the control links, retries included *)
  control_replies : int;
  control_retries : int;
  control_failures : int;  (** calls that exhausted every retry *)
}

val stats : t -> stats

val control_channel : t -> int -> Rpc_transport.Client.t
(** The RPC client for the switch at the given agent-list index
    (fault-injection and wire-count introspection). *)

val meeting_participants : t -> meeting_id -> participant_id list

val meeting_switch : t -> meeting_id -> Dataplane.t
(** The switch hosting a meeting (placement introspection). *)

val switch_count : t -> int
val participant_home : t -> participant_id -> int

val switch_agent : t -> int -> Switch_agent.t * Dataplane.t
(** The agent and data plane at the given agent-list index. *)

val relay_pid : int -> participant_id
(** The pseudo participant id standing for "everything behind switch
    [idx]" when a cascaded meeting registers one switch as a receiver on
    another (Appendix A). *)

(** {1 Failure detection and recovery}

    Opt-in: until {!start_health} is called the controller keeps its
    original contract — a control channel that exhausts its retries
    raises {!Rpc_transport.Timed_out} out of the mutating call.

    With health tracking on, the controller probes every agent with a
    [Ping] heartbeat each [heartbeat_every_ns] of virtual time and runs
    a per-agent state machine: [Healthy] → (missed probes ≥
    [suspect_after]) → [Suspect] → (≥ [dead_after]) → [Dead]. Session
    mutations against a [Dead] switch no longer raise: the wire side of
    the op is queued (bounded by [deferred_cap]; overflow drops the
    oldest op and forces a full resync on heal) while controller intent
    updates normally. The data plane of a merely-partitioned switch
    keeps forwarding its last-known state throughout.

    When a probe answers again, the [Pong]'s epoch decides the repair:
    same epoch — the switch was unreachable but intact, so the queue
    drains in order; new epoch — the switch rebooted blank
    ({!Switch_agent.restart}), so the controller replays every affected
    meeting from intent ({e full resync}). Detection and recovery
    timestamps land in {!recovery_log}. *)

type agent_health = Healthy | Suspect | Dead

type health_config = {
  heartbeat_every_ns : int;
  probe_timeout_ns : int;
  suspect_after : int;  (** consecutive missed probes before Suspect *)
  dead_after : int;  (** consecutive missed probes before Dead *)
  deferred_cap : int;  (** max ops queued per Dead agent *)
}

val default_health_config : health_config
(** 500 ms heartbeats, 250 ms probe timeout, Suspect after 2 misses,
    Dead after 4, 256 queued ops per agent. *)

val start_health : ?config:health_config -> t -> unit
(** Arm the heartbeat loop. The loop keeps the engine's event queue
    non-empty, so callers that [Engine.run] to quiescence must
    {!stop_health} (or run [~until:]) to terminate. Restarting after
    {!stop_health} re-arms the loop; [config] is only read the first
    time. *)

val stop_health : t -> unit
(** Stop probing (idempotent). Agent states and queued ops survive a
    stop/start cycle. *)

val health_running : t -> bool

val agent_health : t -> int -> agent_health
(** State of the switch at the given agent-list index ([Healthy] when
    health tracking was never started). *)

val health_name : agent_health -> string
(** ["healthy"] / ["suspect"] / ["dead"] — for logs and CLI output. *)

type recovery_event = {
  re_agent : int;
  re_kind : [ `Resync | `Drain ];
  re_detected_ns : int;  (** when the agent was declared Dead *)
  re_recovered_ns : int;  (** when the replay/drain committed *)
  re_ops : int;  (** RPCs the repair took *)
}

val recovery_log : t -> recovery_event list
(** Completed repairs, newest first — bounded to the 64 most recent;
    older events are evicted (counted in {!recovery_log_dropped} and the
    [scallop_ctrl_recovery_log_dropped] metric). [re_recovered_ns -
    re_detected_ns] is the recovery latency the failover experiment
    reports. *)

val recovery_log_dropped : t -> int
(** Recovery events evicted from the bounded log so far. *)

val health_transitions : t -> int -> agent_health -> int
(** How many times the failure detector has transitioned the switch at
    the given index {e into} the given state (also the
    [scallop_ctrl_health_transitions] counter, labelled by agent and
    target state). A flapping agent shows up as matched suspect/healthy
    increments. *)

val resync_switch : t -> int -> int option
(** Anti-entropy entry point: [Reset] the switch at the given index and
    replay every meeting with a site there from controller intent,
    regardless of health state — the repair for a live-but-drifted agent
    (see {!Scallop_analysis}). Returns the number of RPCs issued, or
    [None] if the switch went Dead mid-replay (with health tracking on,
    the replay re-runs when its heartbeat answers again). *)

(** {1 Introspection (read-only, for the {!Scallop_analysis} snapshot layer)}

    The controller's session {e intent}: what it believes it has
    programmed into every switch agent. The verifier diffs this against
    the agents' shadow state and the data-plane ground truth, so a lost
    or misapplied control-plane update surfaces as a named finding. *)

type participant_view = {
  pv_pid : participant_id;
  pv_meeting : meeting_id;
  pv_home : int;  (** index of the participant's home switch *)
  pv_sends : bool;
  pv_video_ssrc : int;
  pv_audio_ssrc : int;
  pv_screen_ssrc : int option;  (** video SSRC of the live screen share *)
  pv_sites : (int * int) list;
      (** every switch the participant is registered on, with the egress
          port used there (home switch first in allocation order) *)
  pv_cam_ports : (int * int) list;  (** switch → camera uplink port there *)
  pv_screen_ports : (int * int) list;  (** switch → screen uplink port *)
}

type relay_view = {
  rv_meeting : meeting_id;
  rv_src : int;  (** switch replicating towards the relay *)
  rv_dst : int;  (** switch consuming the relayed stream *)
  rv_pid : participant_id;  (** = [relay_pid rv_dst] *)
  rv_egress_port : int;  (** the pseudo receiver's port on [rv_src] *)
}

type meeting_view = {
  cmv_mid : meeting_id;
  cmv_primary : int;
  cmv_members : participant_id list;  (** join order *)
  cmv_sites : (int * int) list;  (** switch index → agent meeting id there *)
}

type health_view = {
  hv_agent : int;
  hv_state : agent_health;
  hv_epoch : int;  (** last epoch seen in a Pong; -1 before the first *)
  hv_deferred : int;  (** ops queued for this (Dead) switch *)
  hv_dropped : int;  (** ops lost to the deferred-queue cap since last replay *)
}

type intent = {
  in_participants : participant_view list;  (** sorted by pid *)
  in_meetings : meeting_view list;  (** sorted by mid *)
  in_relays : relay_view list;
  in_health : health_view list;  (** one per switch; [] until {!start_health} *)
}

val introspect : t -> intent

(** {1 Controller fault tolerance: journal, crash-rebuild, fenced failover}

    In cluster mode (a [journal] was passed to {!create}) the controller
    tier survives the loss of the controller itself:

    - {b Write-ahead intent journal} — every public mutation is appended
      to the journal under the instance's fencing epoch {e before} it
      executes. Replaying the journal (on top of its latest compacted
      snapshot) through the same execution paths reconstructs intent
      byte-identically: the allocators are deterministic counters the
      snapshot restores.
    - {b Fencing} — {!promote} mints a strictly larger epoch from the
      journal. Agents remember the highest fence they have seen and
      answer anything older with a stale-fence rejection, so an in-flight
      (or retransmitted) request from a deposed primary can never execute
      after the new primary's takeover [Reset]. The journal refuses
      appends under an old fence, so the deposed primary can never log
      {e new} intent either; both rejections flip it to [Deposed].
    - {b Crash-rebuild} — {!kill} silences the instance ({!restart}
      rebuilds it from the journal as a standby); {!promote} turns a
      caught-up standby (or rebuilt instance) into the acting primary and
      pushes a fenced full resync at every switch.

    See {!Cluster} for the packaged primary/standby pair with heartbeat
    failover. *)

type role = Acting | Standby | Deposed

exception Unavailable
(** Raised by mutating entry points when the instance is killed or a
    standby — the caller routes the op to the acting instance. The op
    was neither journaled nor executed; retrying elsewhere is safe. *)

exception Deposed_primary
(** Raised when the instance discovers (via journal or agent rejection)
    that it has been fenced off. Same retry contract as {!Unavailable}:
    nothing was journaled or executed under the stale fence. *)

val role : t -> role
val fence : t -> int
(** The fencing epoch this instance acts under (0 for a journal-less
    controller and for a standby that has never been promoted). *)

val label : t -> string
val journal : t -> persisted Journal.t option
val journal_applied : t -> int
(** Highest journal index reflected in this instance's intent, [-1]
    before anything was applied. *)

val recovering : t -> bool

val alive : t -> bool
val kill : t -> unit
(** Crash the instance: its control channels transmit nothing (not even
    retransmits of in-flight requests), its failure detector stops, and
    every mutating entry point raises {!Unavailable}. Idempotent. *)

val restart : t -> unit
(** Restart a {!kill}ed instance with blank memory: intent is rebuilt
    from the journal alone (snapshot restore + suffix replay, no wire
    traffic), and the instance comes back as a [Standby] — it must be
    {!promote}d before acting. Requires a journal. *)

val promote : ?health_config:health_config -> t -> unit
(** Take over as acting primary: catch up with the journal, mint a new
    fencing epoch, start the failure detector, then push a fenced full
    resync at every switch — installing the new fence on the agents and
    erasing any half-applied state the previous primary left. *)

val apply_tail : t -> int
(** One tailing step: restore the journal's snapshot if it is ahead,
    then replay entries past {!journal_applied} through the normal
    execution paths (intent only — no wire ops, no signaling). Returns
    the number of entries applied. *)

val refresh_role : t -> unit
(** Acting-primary lease check: if the journal's fence has moved past
    this instance's, a standby has been promoted — depose ourselves now
    instead of discovering it on the next wire op. The cluster beat
    timer calls this. *)

val compact_journal : t -> unit
(** Snapshot this instance's state into the journal at its high-water
    mark, dropping the covered entries. Call on a tailing standby after
    {!apply_tail} — never on an acting instance, which may be
    mid-operation with the journal ahead of its intent. *)

val intent_fingerprint : t -> string
(** Canonical rendering of the controller's session intent, for equality
    checks across instances (the killed-vs-never-killed property and the
    cluster drift invariant). Excludes instance-local detail: agent-side
    meeting ids (provisional on a rebuilt instance until its promotion
    resync) and failure-detector state. *)
