(** Control-plane RPC transport: carries {!Rpc} messages between the
    controller and a switch agent over a {!Netsim.Control_channel}
    (an out-of-band link pair with its own latency/loss/queueing).

    Reliability is the classic request/response recipe:

    - per-request timeout with bounded exponential-backoff retry
      (client side);
    - sequence numbers, reused across retries of the same request;
    - an agent-side reply cache keyed by sequence number, so duplicate
      deliveries replay the original reply instead of re-executing —
      at-most-once execution under at-least-once delivery;
    - a fault-injection hook on each side (drop / delay / duplicate by
      predicate) for experiments on a degraded control plane.

    {!Client.call} blocks in simulation terms: it pumps the event
    engine one event at a time until its reply lands (or it gives up),
    so media and timers elsewhere in the simulated world keep running
    while a call is in flight. With the ideal default link the round
    trip completes at the same virtual instant. *)

type config = {
  link : Netsim.Link.config;  (** both directions of the control channel *)
  timeout_ns : int;  (** first attempt's timeout *)
  max_retries : int;  (** retransmissions after the first attempt *)
  backoff : float;  (** timeout multiplier per retry *)
  max_backoff_ns : int;  (** backoff ceiling *)
}

val default : config
(** Ideal link (zero latency/loss, infinite rate), 250 ms initial
    timeout, 6 retries, 2x backoff capped at 2 s. *)

val degraded : ?loss:float -> rtt_ns:int -> unit -> config
(** [default] with the given round-trip propagation and iid loss on
    each direction of the control link. *)

type fault = Pass | Drop | Delay of int | Duplicate

exception Timed_out of { op : string; seq : int; attempts : int }
(** Raised by {!Client.call} after every retry is exhausted — the
    controller-visible face of a dead control channel. *)

module Server : sig
  type t

  val create :
    Netsim.Engine.t ->
    ?on_receive:(unit -> unit) ->
    handler:(Rpc.request -> Rpc.reply) ->
    unit ->
    t
  (** [handler] executes a request against agent state; an
      [Invalid_argument] it raises is shipped back as [Rpc.Error].
      [on_receive] fires once per request datagram delivered on the
      wire (duplicates included) — how the agent counts real control
      messages. *)

  val deliver : t -> reply_via:(Netsim.Dgram.t -> unit) -> Netsim.Dgram.t -> unit
  (** Wire-side entry point (the control channel's sink). *)

  val set_reply_fault : t -> (seq:int -> Rpc.reply -> fault) option -> unit

  type stats = {
    requests_received : int;  (** datagrams decoded as requests, dups included *)
    executed : int;  (** requests that ran the handler *)
    replayed : int;  (** duplicates answered from the reply cache *)
    replies_sent : int;
    decode_errors : int;
  }

  val stats : t -> stats
end

module Client : sig
  type t

  val connect :
    Netsim.Engine.t ->
    Scallop_util.Rng.t ->
    ?config:config ->
    ?label:string ->
    local:Scallop_util.Addr.t ->
    remote:Scallop_util.Addr.t ->
    Server.t ->
    t
  (** Builds the control channel to [Server] and wires both sinks.
      [local]/[remote] only label the datagrams (the channel is
      point-to-point). [label] (default ["ctl"]) names this client in
      the metrics registry (label [client="..."] on the
      [scallop_rpc_*] series) and in its trace spans. *)

  val call : t -> Rpc.request -> Rpc.reply
  (** Send, retry on timeout, return the (possibly replayed) reply.
      When tracing is at level [Rpc] or above, each call emits one
      complete span (category ["rpc"], named after the request) whose
      duration covers every retry, with [seq]/[attempts]/[ok] args.
      @raise Timed_out when [max_retries] retransmissions all expire. *)

  val set_request_fault :
    t -> (seq:int -> attempt:int -> Rpc.request -> fault) option -> unit

  val channel : t -> Netsim.Control_channel.t

  val request_link : t -> Netsim.Link.t
  (** The controller->agent direction — its [Link.delivered] is the
      message count the agent observed. *)

  val reply_link : t -> Netsim.Link.t

  type stats = {
    calls : int;
    wire_requests : int;  (** request datagrams put on the wire (retries/dups incl.) *)
    retries : int;
    replies_received : int;
    stale_replies : int;  (** late/duplicate replies for settled calls *)
    failures : int;  (** calls that exhausted every retry *)
  }

  val stats : t -> stats
end
