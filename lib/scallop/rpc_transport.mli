(** Control-plane RPC transport: carries {!Rpc} messages between the
    controller and a switch agent over a {!Netsim.Control_channel}
    (an out-of-band link pair with its own latency/loss/queueing).

    Reliability is the classic request/response recipe:

    - per-request timeout with bounded exponential-backoff retry
      (client side);
    - sequence numbers, reused across retries of the same request;
    - an agent-side reply cache keyed by (requester address, sequence
      number), so duplicate deliveries replay the original reply
      instead of re-executing — at-most-once execution under
      at-least-once delivery, even with several controller instances
      (primary and standby) allocating sequence numbers independently;
    - a fault-injection hook on each side (drop / delay / duplicate by
      predicate) for experiments on a degraded control plane.

    {!Client.call} blocks in simulation terms: it pumps the event
    engine one event at a time until its reply lands (or it gives up),
    so media and timers elsewhere in the simulated world keep running
    while a call is in flight. With the ideal default link the round
    trip completes at the same virtual instant. *)

type config = {
  link : Netsim.Link.config;  (** both directions of the control channel *)
  timeout_ns : int;  (** first attempt's timeout *)
  max_retries : int;  (** retransmissions after the first attempt *)
  backoff : float;  (** timeout multiplier per retry *)
  max_backoff_ns : int;  (** backoff ceiling *)
  window : int;
      (** in-flight pipelining limit for {!Client.submit}: submissions
          beyond this many outstanding requests wait in a backlog queue
          until a slot frees (≥ 1; probes are exempt) *)
}

val default : config
(** Ideal link (zero latency/loss, infinite rate), 250 ms initial
    timeout, 6 retries, 2x backoff capped at 2 s, window 8. *)

val degraded : ?loss:float -> rtt_ns:int -> unit -> config
(** [default] with the given round-trip propagation and iid loss on
    each direction of the control link. *)

type fault = Pass | Drop | Delay of int | Duplicate

type error = [ `Timeout | `Gave_up of int ]
(** How a call can fail without a reply: [`Gave_up n] after [n]
    attempts exhausted every retry; [`Timeout] when the simulated
    world ran dry (or a single-shot {!Client.probe} expired) with the
    reply still outstanding. Values, not exceptions — an unreachable
    agent is an expected input to the controller's failure detector,
    not an error condition. *)

exception Timed_out of { op : string; seq : int; attempts : int }
(** Raised by {!Client.call_exn} after every retry is exhausted — the
    exception face of {!error} for callers (CLI, tests) that treat a
    dead control channel as fatal. *)

module Server : sig
  type t

  val create :
    Netsim.Engine.t ->
    ?on_receive:(unit -> unit) ->
    ?label:string ->
    handler:(Rpc.request -> Rpc.reply) ->
    unit ->
    t
  (** [handler] executes a request against agent state; an
      [Invalid_argument] it raises is shipped back as [Rpc.Error].
      [on_receive] fires once per request datagram delivered on the
      wire (duplicates included) — how the agent counts real control
      messages. [label] (default ["agent"]) identifies this server on
      its [rpc_exec] trace events, correlating them with controller-side
      health events about the same switch. *)

  val deliver : t -> reply_via:(Netsim.Dgram.t -> unit) -> Netsim.Dgram.t -> unit
  (** Wire-side entry point (the control channel's sink). *)

  val set_reply_fault : t -> (seq:int -> Rpc.reply -> fault) option -> unit

  val set_online : t -> bool -> unit
  (** [set_online t false] models a crashed agent process: every
      delivered request is dropped on the floor (counted in
      [dropped_offline]), so client calls time out exactly as they
      would against a dead host. *)

  val online : t -> bool

  val flush_cache : t -> unit
  (** Drop the reply cache — a freshly restarted process remembers no
      sequence numbers, so pre-crash retransmits re-execute instead of
      replaying (the drift the post-restart resync repairs). *)

  type stats = {
    requests_received : int;  (** datagrams decoded as requests, dups included *)
    executed : int;  (** requests that ran the handler *)
    replayed : int;  (** duplicates answered from the reply cache *)
    replies_sent : int;
    decode_errors : int;
    dropped_offline : int;  (** requests that arrived while offline *)
  }

  val stats : t -> stats
end

module Client : sig
  type t

  val connect :
    Netsim.Engine.t ->
    Scallop_util.Rng.t ->
    ?config:config ->
    ?label:string ->
    local:Scallop_util.Addr.t ->
    remote:Scallop_util.Addr.t ->
    Server.t ->
    t
  (** Builds the control channel to [Server] and wires both sinks.
      [local]/[remote] only label the datagrams (the channel is
      point-to-point). [label] (default ["ctl"]) names this client in
      the metrics registry (label [client="..."] on the
      [scallop_rpc_*] series) and in its trace spans. *)

  val submit :
    t ->
    ?oob:bool ->
    ?max_retries:int ->
    ?timeout_ns:int ->
    Rpc.request ->
    on_result:((Rpc.reply, error) result -> unit) ->
    int
  (** The unified asynchronous entry point every other call shape is
      built on; returns the submission's sequence number. The request
      goes on the wire immediately while fewer than [window]
      submissions are outstanding, and waits in a FIFO backlog
      otherwise — in-flight pipelining up to the window. [on_result]
      fires exactly once, from the reply event or after the retry
      ladder ([max_retries], default from config) expires — with
      [Error (`Gave_up n)], or [Error `Timeout] when [max_retries] is
      [0] (the single-shot probe semantics). [oob] (default false)
      bypasses the window — the heartbeat lane, so a probe is never
      starved behind a stuck pipeline.

      Ordering caveat: under loss, pipelined submissions can execute on
      the server out of submission order (an early request's retransmit
      may land after a later request). Callers needing server-side
      order keep one submission in flight (as the blocking {!call}
      does) or ship the ordered ops inside one [Rpc.Batch]. *)

  val call : t -> Rpc.request -> (Rpc.reply, error) result
  (** Blocking face of {!submit}: pumps the engine until its own
      submission settles. Returns the (possibly replayed) reply, or
      [Error (`Gave_up n)] once [max_retries] retransmissions all
      expire — never raises, so the controller can treat an
      unreachable agent as a state transition rather than an
      exception. When tracing is at level [Rpc] or above, each
      submission emits one complete span (category ["rpc"], named
      after the request) whose duration covers every retry, with
      [seq]/[attempts]/[ok] args. *)

  val call_exn : t -> Rpc.request -> Rpc.reply
  (** Thin wrapper over the typed-result {!call} for callers without a
      failure detector (CLI, tests).
      @raise Timed_out on any [Error]. *)

  val probe : t -> ?timeout_ns:int -> Rpc.request -> on_result:((Rpc.reply, error) result -> unit) -> unit
  (** [submit ~oob:true ~max_retries:0]: single attempt, window-exempt,
      never blocks; [on_result] fires from the reply event, or with
      [Error `Timeout] after [timeout_ns] (default: the config's
      first-attempt timeout). The heartbeat primitive — a missed probe
      is a data point for the failure detector, not a call worth the
      retry ladder. *)

  val in_flight : t -> int
  (** Window-occupying submissions currently on the wire. *)

  val backlog_depth : t -> int
  (** Submissions waiting for a window slot. *)

  val set_request_fault :
    t -> (seq:int -> attempt:int -> Rpc.request -> fault) option -> unit

  val set_muted : t -> bool -> unit
  (** [set_muted t true] silences the client entirely: nothing reaches
      the wire — not new requests, not retransmits of in-flight ones,
      not probes. Pending submissions settle through their normal
      timeout ladders in virtual time. Models a killed controller
      process whose channel endpoints still exist in the simulation. *)

  val muted : t -> bool

  val channel : t -> Netsim.Control_channel.t

  val request_link : t -> Netsim.Link.t
  (** The controller->agent direction — its [Link.delivered] is the
      message count the agent observed. *)

  val reply_link : t -> Netsim.Link.t

  type stats = {
    calls : int;
    wire_requests : int;  (** request datagrams put on the wire (retries/dups incl.) *)
    retries : int;
    replies_received : int;
    stale_replies : int;  (** late/duplicate replies for settled calls *)
    failures : int;  (** calls that exhausted every retry *)
    batches : int;  (** [Rpc.Batch] requests submitted *)
    batched_ops : int;  (** ops carried inside those batches *)
  }

  val stats : t -> stats
end
