module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let observe t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

let percentile_of_array sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p <= 0.0 then sorted.(0)
  else if p >= 100.0 then sorted.(n - 1)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; n = 0; sorted = true }

  let observe t x =
    (* A NaN sample would silently poison every percentile (NaN compares
       false against everything, so the sort leaves it stranded anywhere
       in the array); reject it at the door instead. *)
    if Float.is_nan x then invalid_arg "Stats.Samples.observe: NaN";
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0.0 in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.n in
      Array.sort Float.compare live;
      Array.blit live 0 t.data 0 t.n;
      t.sorted <- true
    end

  let mean t =
    if t.n = 0 then invalid_arg "Stats.Samples.mean: empty";
    let sum = ref 0.0 in
    for i = 0 to t.n - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.n

  let percentile t p =
    ensure_sorted t;
    percentile_of_array (Array.sub t.data 0 t.n) p

  let median t = percentile t 50.0
  let min t = percentile t 0.0
  let max t = percentile t 100.0

  let to_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.n

  let cdf t ~points =
    if points < 2 then invalid_arg "Stats.Samples.cdf: need at least 2 points";
    List.init points (fun i ->
        let frac = float_of_int i /. float_of_int (points - 1) in
        (percentile t (100.0 *. frac), frac))
end

module Histogram = struct
  type t = {
    bounds : float array;  (** ascending inclusive upper bounds *)
    counts : int array;  (** one per bound, plus a trailing overflow bucket *)
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let log_bounds ~lo ~hi ~per_decade =
    if not (lo > 0.0) || not (hi > lo) || per_decade <= 0 then
      invalid_arg "Stats.Histogram.log_bounds";
    let decades = Float.log10 (hi /. lo) in
    let n = int_of_float (Float.ceil (float_of_int per_decade *. decades)) in
    Array.init (n + 1) (fun i ->
        lo *. (10.0 ** (float_of_int i /. float_of_int per_decade)))

  (* 100 ns .. 10 s at 5 buckets per decade: covers everything from a
     single table lookup to a stalled control-plane retry. *)
  let default_bounds = log_bounds ~lo:100.0 ~hi:1e10 ~per_decade:5

  let create ?(bounds = default_bounds) () =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Stats.Histogram.create: no buckets";
    for i = 1 to n - 1 do
      if not (bounds.(i) > bounds.(i - 1)) then
        invalid_arg "Stats.Histogram.create: bounds not strictly ascending"
    done;
    {
      bounds = Array.copy bounds;
      counts = Array.make (n + 1) 0;
      n = 0;
      sum = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  (* Smallest bucket whose upper bound holds [x]; the trailing overflow
     bucket when [x] exceeds every bound. Fixed bucket count makes this a
     bounded binary search — constant time on the hot path. *)
  let bucket_index t x =
    let n = Array.length t.bounds in
    if x > t.bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe t x =
    if Float.is_nan x then invalid_arg "Stats.Histogram.observe: NaN";
    t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then invalid_arg "Stats.Histogram.mean: empty" else t.sum /. float_of_int t.n
  let min t = t.minv
  let max t = t.maxv

  let iter_buckets t f =
    let cum = ref 0 in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        let le = if i < Array.length t.bounds then t.bounds.(i) else infinity in
        f ~le ~count:!cum)
      t.counts

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Histogram.percentile: empty";
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = p /. 100.0 *. float_of_int t.n in
    let nb = Array.length t.bounds in
    let rec seek i cum =
      if i > nb then t.maxv
      else
        let cum' = cum + t.counts.(i) in
        if float_of_int cum' >= rank && t.counts.(i) > 0 then begin
          (* linear interpolation within the bucket's value span *)
          let lower = if i = 0 then t.minv else t.bounds.(i - 1) in
          let upper = if i < nb then Float.min t.bounds.(i) t.maxv else t.maxv in
          let lower = Float.max lower t.minv in
          if upper <= lower then lower
          else
            let frac =
              (rank -. float_of_int cum) /. float_of_int t.counts.(i)
            in
            lower +. (Float.min 1.0 (Float.max 0.0 frac) *. (upper -. lower))
        end
        else seek (i + 1) cum'
    in
    seek 0 0
end
