(** Size-classed [Bytes] buffer pools with explicit checkout/release.

    The software model of a forwarding pipeline that never allocates: the
    data plane checks a replica buffer out of the pool, patches it in
    place, and whoever terminates the packet's life (link drop, network
    undeliverable, post-delivery decode) releases it back. In steady
    state every checkout is served from a free list and the packet path
    allocates nothing.

    {2 Size classes}

    A class is one exact buffer length: media streams use a small set of
    packet sizes, so exact-length classes recycle perfectly without the
    length slack a rounded size class would add ([Bytes.length] must stay
    the wire truth — receivers decode it and links charge for it).
    Classes are created on demand and each keeps a stack of parked
    buffers, capped at [max_class_depth] (release beyond the cap lets the
    GC take the buffer instead of parking it forever).

    {2 Debug mode}

    With debug on, every release {e poisons} the buffer (fills it with
    {!poison_byte}) so any reader still aliasing it sees garbage — the
    Paranoid byte-differential then fails loudly instead of silently
    forwarding recycled bytes — and releasing a buffer that is already
    parked raises {!Double_release}. *)

type t

type stats = {
  live : int;  (** buffers checked out right now *)
  high_water : int;  (** maximum simultaneous [live] ever observed *)
  recycled : int;  (** checkouts served from a free list *)
  fresh : int;  (** checkouts that had to allocate *)
  released : int;  (** successful releases (parked or dropped) *)
  dropped : int;  (** releases discarded because the class was full *)
  classes : int;  (** distinct buffer lengths seen *)
  parked_bytes : int;  (** bytes currently sitting in free lists *)
}

exception Double_release of int
(** Raised (debug mode only) when releasing a buffer that is already
    parked in its free list; carries the buffer length. *)

val poison_byte : char
(** ['\xde'] — the fill value debug-mode releases stamp over the buffer. *)

val create : ?debug:bool -> ?max_class_depth:int -> unit -> t
(** Defaults: [debug:false], [max_class_depth:1024] parked buffers per
    class. *)

val set_debug : t -> bool -> unit
val debug : t -> bool

val checkout : t -> int -> bytes
(** [checkout t len] returns a buffer of exactly [len] bytes, recycled
    when the class has one parked. Contents are unspecified (possibly
    poisoned) — the caller must overwrite every byte it emits. *)

val release : t -> bytes -> unit
(** Park the buffer for reuse. The caller must not touch it afterwards.
    @raise Double_release in debug mode if the buffer is already parked. *)

val stats : t -> stats
