(** Streaming and batch summary statistics used by every experiment. *)

(** Welford online mean/variance accumulator. *)
module Online : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Reservoir of all samples, for exact quantiles on experiment-sized data. *)
module Samples : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** @raise Invalid_argument on NaN: a NaN sample would leave the sort
      order (and so every percentile) undefined, so it is rejected at
      observation time rather than poisoning later queries. *)

  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0, 100\]], linear interpolation.
      @raise Invalid_argument if empty. *)

  val median : t -> float
  val min : t -> float
  val max : t -> float
  val to_array : t -> float array
  (** Sorted copy of the samples. *)

  val cdf : t -> points:int -> (float * float) list
  (** [(value, cumulative fraction)] at [points] evenly spaced fractions —
      the series a CDF plot needs. *)
end

val percentile_of_array : float array -> float -> float
(** [percentile_of_array sorted p]: [sorted] must be sorted ascending. *)

(** Fixed-bucket histogram with log-spaced bounds: O(1) allocation-free
    [observe] on the hot path (a bounded binary search over a fixed bounds
    array plus integer increments), approximate percentiles by linear
    interpolation within a bucket. The shape the observability layer's
    latency metrics use. *)
module Histogram : sig
  type t

  val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
  (** Log-spaced upper bounds covering [\[lo, hi\]] with [per_decade]
      buckets per factor of ten. *)

  val default_bounds : float array
  (** 100 ns .. 10 s at 5 buckets/decade — nanosecond latencies. *)

  val create : ?bounds:float array -> unit -> t
  (** [bounds] must be strictly ascending; values above the last bound
      land in an implicit overflow bucket. *)

  val observe : t -> float -> unit
  (** @raise Invalid_argument on NaN. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** Approximate: exact bucket, linear interpolation inside it, clamped
      to the observed min/max. @raise Invalid_argument if empty. *)

  val iter_buckets : t -> (le:float -> count:int -> unit) -> unit
  (** Cumulative counts in ascending bound order, ending with the
      overflow bucket at [le = infinity] — the Prometheus exposition
      shape. *)
end
