type klass = { mutable bufs : bytes array; mutable n : int }

type stats = {
  live : int;
  high_water : int;
  recycled : int;
  fresh : int;
  released : int;
  dropped : int;
  classes : int;
  parked_bytes : int;
}

exception Double_release of int

let poison_byte = '\xde'

type t = {
  classes : (int, klass) Hashtbl.t;
  mutable debug : bool;
  max_class_depth : int;
  mutable live : int;
  mutable high_water : int;
  mutable recycled : int;
  mutable fresh : int;
  mutable released : int;
  mutable dropped : int;
  (* one-entry class cache: the hot path checks a single length over and
     over, so the common case skips the Hashtbl entirely *)
  mutable last_len : int;
  mutable last_class : klass;
}

let nil_class = { bufs = [||]; n = 0 }

let create ?(debug = false) ?(max_class_depth = 1024) () =
  {
    classes = Hashtbl.create 8;
    debug;
    max_class_depth;
    live = 0;
    high_water = 0;
    recycled = 0;
    fresh = 0;
    released = 0;
    dropped = 0;
    last_len = -1;
    last_class = nil_class;
  }

let set_debug t d = t.debug <- d
let debug t = t.debug

let class_of t len =
  if t.last_len = len then t.last_class
  else begin
    let c =
      match Hashtbl.find t.classes len with
      | c -> c
      | exception Not_found ->
          let c = { bufs = [||]; n = 0 } in
          Hashtbl.add t.classes len c;
          c
    in
    t.last_len <- len;
    t.last_class <- c;
    c
  end

let checkout t len =
  if len < 0 then invalid_arg "Bufpool.checkout: negative length";
  let c = class_of t len in
  t.live <- t.live + 1;
  if t.live > t.high_water then t.high_water <- t.live;
  if c.n > 0 then begin
    c.n <- c.n - 1;
    t.recycled <- t.recycled + 1;
    c.bufs.(c.n)
  end
  else begin
    t.fresh <- t.fresh + 1;
    Bytes.create len
  end

let release t buf =
  let len = Bytes.length buf in
  let c = class_of t len in
  if t.debug then begin
    for i = 0 to c.n - 1 do
      if c.bufs.(i) == buf then raise (Double_release len)
    done;
    if len > 0 then Bytes.fill buf 0 len poison_byte
  end;
  t.live <- t.live - 1;
  t.released <- t.released + 1;
  if c.n >= t.max_class_depth then t.dropped <- t.dropped + 1
  else begin
    if c.n = Array.length c.bufs then begin
      let bigger = Array.make (max 16 (2 * c.n)) buf in
      Array.blit c.bufs 0 bigger 0 c.n;
      c.bufs <- bigger
    end;
    c.bufs.(c.n) <- buf;
    c.n <- c.n + 1
  end

let stats t =
  let parked_bytes = Hashtbl.fold (fun len c acc -> acc + (len * c.n)) t.classes 0 in
  {
    live = t.live;
    high_water = t.high_water;
    recycled = t.recycled;
    fresh = t.fresh;
    released = t.released;
    dropped = t.dropped;
    classes = Hashtbl.length t.classes;
    parked_bytes;
  }
