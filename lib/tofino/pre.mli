(** Behavioural model of Tofino's Packet Replication Engine (paper §6.3,
    Fig. 13).

    The PRE is a hierarchical multicast engine: a packet is steered to a
    multicast tree by its MGID; the tree's level-1 (L1) nodes each carry a
    replication id (RID) and one or more egress ports (level-2). Pruning
    happens at both levels:

    - {b L1 exclusion}: an L1 node with pruning enabled is skipped when its
      L1-XID equals the packet's L1-XID (Scallop uses this to separate the
      [m] meetings aggregated in one tree);
    - {b L2 exclusion}: a replica is suppressed when the L1 node's RID
      equals the packet's RID {e and} the egress port is in the packet's
      L2-XID port set (Scallop uses this to stop senders receiving their
      own media).

    Resource limits are enforced exactly as the paper states them: 64K
    trees, 2^24 L1 nodes PRE-wide, 64K RIDs per tree. *)

type t

type limits = { max_trees : int; max_l1_nodes : int; max_rids_per_tree : int }

val tofino2_limits : limits
(** 65,536 trees; 16,777,216 L1 nodes; 65,536 RIDs per tree. *)

val create : ?limits:limits -> ?obs_label:string -> unit -> t
(** [obs_label] names this instance in the metrics registry (label
    [pre="..."] on the [scallop_pre_cache_*] series); re-creating an
    instance under the same label replaces its registry entries. *)

type node_id = int
type mgid = int

exception Resource_exhausted of string

val create_l1_node :
  t -> rid:int -> ?l1_xid:int -> ?prune_enabled:bool -> ports:int list -> unit -> node_id
(** Allocates a free-standing L1 node. @raise Resource_exhausted at the
    node limit. *)

val destroy_l1_node : t -> node_id -> unit
(** The node must not be a member of any tree. *)

val create_tree : t -> mgid:mgid -> nodes:node_id list -> unit
(** @raise Resource_exhausted at the tree limit.
    @raise Invalid_argument if the MGID is in use, a node is already in a
    tree, or per-tree RID uniqueness constraints are violated. *)

val destroy_tree : t -> mgid -> unit
(** Releases the tree; its nodes become free-standing again. *)

val add_node_to_tree : t -> mgid -> node_id -> unit
val remove_node_from_tree : t -> mgid -> node_id -> unit

val set_l2_xid_ports : t -> xid:int -> ports:int list -> unit
(** Define the egress-port set an L2-XID excludes. *)

val remove_l2_xid : t -> xid:int -> unit
(** Release an L2-XID's exclusion set (participant teardown). Unknown
    XIDs are ignored. *)

type replica = { rid : int; port : int }

val replicate : t -> mgid:mgid -> l1_xid:int -> rid:int -> l2_xid:int -> replica list
(** The data-plane invocation: all surviving replicas for a packet
    carrying the given metadata. Unknown MGIDs yield []. Always computed
    fresh — this is the executable spec that {!replicate_cached} and the
    analysis layer check against. *)

val replicate_cached : t -> mgid:mgid -> l1_xid:int -> rid:int -> l2_xid:int -> replica array
(** Memoized {!replicate}, returned as a flat array keyed by the full
    [(mgid, l1_xid, rid, l2_xid)] metadata tuple. Every tree/node/L2-XID
    mutation flushes the whole memo table, so a served entry is always
    equal to what {!replicate} would compute. Callers must not mutate the
    returned array. *)

type cache_stats = { hits : int; misses : int; invalidations : int; entries : int }

val cache_stats : t -> cache_stats
(** [invalidations] counts flushes that actually dropped entries;
    [entries] is the current resident entry count. A view over the
    registry-backed counters (see {!Scallop_obs.Metrics}). *)

val cache_hit_count : t -> int
(** Just the hit counter — cheap enough for the data plane to read
    before/after one {!replicate_cached} call when stamping a trace
    event with hit/miss. *)

val iter_cache :
  t ->
  (mgid:mgid -> l1_xid:int -> rid:int -> l2_xid:int -> replicas:replica array -> unit) ->
  unit
(** Visit every resident fan-out cache entry (for the analysis layer's
    staleness re-audit). Read-only: the callback must not mutate the
    PRE. *)

(** Introspection / resource accounting *)

val trees_used : t -> int
val l1_nodes_used : t -> int
val limits : t -> limits
val tree_nodes : t -> mgid -> node_id list
val node_rid : t -> node_id -> int
val node_ports : t -> node_id -> int list
val node_l1_xid : t -> node_id -> int
val node_prune_enabled : t -> node_id -> bool

val node_tree : t -> node_id -> mgid option
(** The tree a node is a member of, if any ([None] = free-standing). *)

val iter_trees : t -> (mgid:mgid -> nodes:node_id list -> unit) -> unit
(** Visit every programmed tree with its member nodes, in an unspecified
    order. Read-only: the callback must not mutate the PRE. *)

val iter_nodes : t -> (node_id -> unit) -> unit
(** Visit every allocated L1 node (tree members and free-standing alike).
    Read-only: the callback must not mutate the PRE. *)

val iter_l2_xids : t -> (xid:int -> ports:int list -> unit) -> unit
(** Visit every programmed L2-XID exclusion set. Read-only. *)

val l2_xid_ports : t -> xid:int -> int list option

(** Deliberate state corruption for the analysis-layer mutation harness
    ({!Scallop_analysis}) and fault-injection tests. Never called by the
    production control path: each entry point violates an invariant the
    normal API enforces. *)
module Unsafe : sig
  val set_node_rid : t -> node_id -> int -> unit
  (** Rewrite a node's RID in place, bypassing per-tree uniqueness. *)

  val set_node_ports : t -> node_id -> int list -> unit

  val drop_tree_record : t -> mgid -> unit
  (** Forget a tree without detaching its nodes — leaves every member
      pointing at a dangling MGID. *)

  val poison_cache :
    t -> mgid:mgid -> l1_xid:int -> rid:int -> l2_xid:int -> replicas:replica list -> unit
  (** Plant a fan-out cache entry that was never computed from the live
      trees — a stale entry the invalidation discipline should have made
      impossible. *)
end
