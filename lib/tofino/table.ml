type ('k, 'v) t = { name : string; capacity : int; tbl : ('k, 'v) Hashtbl.t }

let create ~name ~capacity =
  if capacity <= 0 then invalid_arg "Table.create: capacity";
  { name; capacity; tbl = Hashtbl.create (min capacity 1024) }

let name t = t.name
let capacity t = t.capacity
let size t = Hashtbl.length t.tbl

let insert t k v =
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.replace t.tbl k v;
    Ok ()
  end
  else if Hashtbl.length t.tbl >= t.capacity then Error `Table_full
  else begin
    Hashtbl.replace t.tbl k v;
    Ok ()
  end

let lookup t k = Hashtbl.find_opt t.tbl k
let remove t k = Hashtbl.remove t.tbl k
let clear t = Hashtbl.reset t.tbl
let iter t f = Hashtbl.iter f t.tbl
let fold t f init = Hashtbl.fold f t.tbl init
let mem t k = Hashtbl.mem t.tbl k
let utilization t = float_of_int (size t) /. float_of_int t.capacity
