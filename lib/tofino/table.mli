(** Exact-match match-action tables with fixed capacity.

    The Scallop data plane uses these for stream-index allocation, REMB
    forwarding rules and address rewriting (paper §6.2/§6.3). Capacity is
    enforced so experiments hit the same state limits hardware would. *)

type ('k, 'v) t

val create : name:string -> capacity:int -> ('k, 'v) t
val name : ('k, 'v) t -> string
val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int

val insert : ('k, 'v) t -> 'k -> 'v -> (unit, [ `Table_full ]) result
(** Replacing an existing key always succeeds. *)

val lookup : ('k, 'v) t -> 'k -> 'v option
val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit

val fold : ('k, 'v) t -> ('k -> 'v -> 'acc -> 'acc) -> 'acc -> 'acc
(** Fold over every entry, in an unspecified order — the snapshot
    layer's read-only view of programmed table state. *)

val mem : ('k, 'v) t -> 'k -> bool
val utilization : ('k, 'v) t -> float
