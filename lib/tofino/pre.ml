type limits = { max_trees : int; max_l1_nodes : int; max_rids_per_tree : int }

let tofino2_limits = { max_trees = 65_536; max_l1_nodes = 16_777_216; max_rids_per_tree = 65_536 }

type node_id = int
type mgid = int

exception Resource_exhausted of string

type node = {
  rid : int;
  l1_xid : int;
  prune_enabled : bool;
  ports : int list;
  mutable tree : mgid option;
}

type replica = { rid : int; port : int }

type cache_stats = { hits : int; misses : int; invalidations : int; entries : int }

module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace

type t = {
  lim : limits;
  obs_label : string;
  nodes : (node_id, node) Hashtbl.t;
  trees : (mgid, node_id list ref) Hashtbl.t;
  l2_xids : (int, int list) Hashtbl.t;
  mutable next_node_id : int;
  (* Fan-out memo: packet metadata tuple -> surviving replicas, flat.
     Any mutation of trees, nodes or L2-XID sets flushes the whole table —
     correctness over retention, mutations are control-plane-rare. *)
  cache : (int * int * int * int, replica array) Hashtbl.t;
  (* registry-backed (same O(1) field mutation as a plain int); the
     cache_stats record remains the read view *)
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  cache_invalidations : Metrics.counter;
}

let create ?(limits = tofino2_limits) ?(obs_label = "pre0") () =
  let labels = [ ("pre", obs_label) ] in
  let t =
    {
      lim = limits;
      obs_label;
      nodes = Hashtbl.create 1024;
      trees = Hashtbl.create 256;
      l2_xids = Hashtbl.create 64;
      next_node_id = 0;
      cache = Hashtbl.create 1024;
      cache_hits =
        Metrics.counter ~labels ~help:"PRE fan-out cache hits" "scallop_pre_cache_hits";
      cache_misses =
        Metrics.counter ~labels ~help:"PRE fan-out cache misses" "scallop_pre_cache_misses";
      cache_invalidations =
        Metrics.counter ~labels ~help:"PRE fan-out cache flushes that dropped entries"
          "scallop_pre_cache_invalidations";
    }
  in
  Metrics.register_callback ~labels ~help:"resident PRE fan-out cache entries"
    "scallop_pre_cache_entries" (fun () -> float_of_int (Hashtbl.length t.cache));
  t

let flush_cache t =
  if Hashtbl.length t.cache > 0 then begin
    Metrics.incr t.cache_invalidations;
    if Trace.enabled Trace.Packet then
      (* the PRE has no engine handle; Trace.now is the engine-installed
         shared clock — an invalidation storm here is attribution evidence *)
      Trace.instant ~ts:(Trace.now ()) ~cat:"pre" "pre_invalidate"
        ~args:
          [
            ("pre", Trace.S t.obs_label);
            ("entries", Trace.I (Hashtbl.length t.cache));
          ];
    Hashtbl.reset t.cache
  end

let create_l1_node t ~rid ?(l1_xid = 0) ?(prune_enabled = false) ~ports () =
  if Hashtbl.length t.nodes >= t.lim.max_l1_nodes then
    raise (Resource_exhausted "PRE L1 nodes");
  let id = t.next_node_id in
  t.next_node_id <- t.next_node_id + 1;
  Hashtbl.replace t.nodes id { rid; l1_xid; prune_enabled; ports; tree = None };
  id

let find_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Pre: unknown L1 node %d" id)

let destroy_l1_node t id =
  let n = find_node t id in
  if n.tree <> None then invalid_arg "Pre.destroy_l1_node: node is in a tree";
  Hashtbl.remove t.nodes id;
  flush_cache t

let check_rids t ids =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = find_node t id in
      if Hashtbl.mem seen n.rid then begin
        (* Same RID may appear on several nodes only with distinct ports;
           the paper relies on RID-uniqueness per sender, so keep strict. *)
        invalid_arg "Pre.create_tree: duplicate RID within tree"
      end;
      Hashtbl.replace seen n.rid ())
    ids;
  if Hashtbl.length seen > t.lim.max_rids_per_tree then
    raise (Resource_exhausted "PRE RIDs per tree")

(* Tree members are stored in insertion order, so replication never has to
   reverse the list on the per-packet path. *)
let create_tree t ~mgid ~nodes =
  if Hashtbl.mem t.trees mgid then invalid_arg "Pre.create_tree: MGID in use";
  if Hashtbl.length t.trees >= t.lim.max_trees then raise (Resource_exhausted "PRE trees");
  check_rids t nodes;
  List.iter
    (fun id ->
      let n = find_node t id in
      if n.tree <> None then invalid_arg "Pre.create_tree: node already in a tree")
    nodes;
  List.iter (fun id -> (find_node t id).tree <- Some mgid) nodes;
  Hashtbl.replace t.trees mgid (ref nodes);
  flush_cache t

let find_tree t mgid =
  match Hashtbl.find_opt t.trees mgid with
  | Some nodes -> nodes
  | None -> invalid_arg (Printf.sprintf "Pre: unknown MGID %d" mgid)

let destroy_tree t mgid =
  let nodes = find_tree t mgid in
  List.iter (fun id -> (find_node t id).tree <- None) !nodes;
  Hashtbl.remove t.trees mgid;
  flush_cache t

let add_node_to_tree t mgid id =
  let nodes = find_tree t mgid in
  let n = find_node t id in
  if n.tree <> None then invalid_arg "Pre.add_node_to_tree: node already in a tree";
  check_rids t (id :: !nodes);
  n.tree <- Some mgid;
  nodes := !nodes @ [ id ];
  flush_cache t

let remove_node_from_tree t mgid id =
  let nodes = find_tree t mgid in
  let n = find_node t id in
  if n.tree <> Some mgid then invalid_arg "Pre.remove_node_from_tree: not a member";
  n.tree <- None;
  nodes := List.filter (fun x -> not (Int.equal x id)) !nodes;
  flush_cache t

let set_l2_xid_ports t ~xid ~ports =
  Hashtbl.replace t.l2_xids xid ports;
  flush_cache t

let remove_l2_xid t ~xid =
  Hashtbl.remove t.l2_xids xid;
  flush_cache t

let replicate t ~mgid ~l1_xid ~rid ~l2_xid =
  match Hashtbl.find_opt t.trees mgid with
  | None -> []
  | Some nodes ->
      let excluded_ports =
        Option.value (Hashtbl.find_opt t.l2_xids l2_xid) ~default:[]
      in
      List.concat_map
        (fun id ->
          let n = find_node t id in
          if n.prune_enabled && n.l1_xid = l1_xid then []
          else
            List.filter_map
              (fun port ->
                if n.rid = rid && List.mem port excluded_ports then None
                else Some { rid = n.rid; port })
              n.ports)
        !nodes

let replicate_cached t ~mgid ~l1_xid ~rid ~l2_xid =
  let key = (mgid, l1_xid, rid, l2_xid) in
  match Hashtbl.find_opt t.cache key with
  | Some arr ->
      Metrics.incr t.cache_hits;
      arr
  | None ->
      Metrics.incr t.cache_misses;
      let arr = Array.of_list (replicate t ~mgid ~l1_xid ~rid ~l2_xid) in
      Hashtbl.replace t.cache key arr;
      arr

let cache_hit_count t = Metrics.value t.cache_hits

let cache_stats t =
  {
    hits = Metrics.value t.cache_hits;
    misses = Metrics.value t.cache_misses;
    invalidations = Metrics.value t.cache_invalidations;
    entries = Hashtbl.length t.cache;
  }

let iter_cache t f =
  Hashtbl.iter
    (fun (mgid, l1_xid, rid, l2_xid) replicas -> f ~mgid ~l1_xid ~rid ~l2_xid ~replicas)
    t.cache

let trees_used t = Hashtbl.length t.trees
let l1_nodes_used t = Hashtbl.length t.nodes
let limits t = t.lim
let tree_nodes t mgid = !(find_tree t mgid)
let node_rid t id = (find_node t id).rid
let node_ports t id = (find_node t id).ports
let node_l1_xid t id = (find_node t id).l1_xid
let node_prune_enabled t id = (find_node t id).prune_enabled
let node_tree t id = (find_node t id).tree

let iter_trees t f = Hashtbl.iter (fun mgid nodes -> f ~mgid ~nodes:!nodes) t.trees

let iter_nodes t f = Hashtbl.iter (fun id _ -> f id) t.nodes

let iter_l2_xids t f = Hashtbl.iter (fun xid ports -> f ~xid ~ports) t.l2_xids

let l2_xid_ports t ~xid = Hashtbl.find_opt t.l2_xids xid

module Unsafe = struct
  let set_node_rid t id rid =
    let n = find_node t id in
    Hashtbl.replace t.nodes id { n with rid };
    flush_cache t

  let set_node_ports t id ports =
    let n = find_node t id in
    Hashtbl.replace t.nodes id { n with ports };
    flush_cache t

  let drop_tree_record t mgid =
    Hashtbl.remove t.trees mgid;
    flush_cache t

  let poison_cache t ~mgid ~l1_xid ~rid ~l2_xid ~replicas =
    Hashtbl.replace t.cache (mgid, l1_xid, rid, l2_xid) (Array.of_list replicas)
end
