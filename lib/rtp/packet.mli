(** RTP packets (RFC 3550) with RFC 8285 header extensions.

    All media in the system — synthetic AV1 SVC video and Opus-like audio —
    is carried in these packets, and both the software SFU and the Scallop
    data plane parse and rewrite them at the byte level, exactly as the
    paper's P4 program does.

    Integers are plain [int]s constrained to their wire width; values are
    masked on serialization. Sequence numbers are 16-bit and wrap. *)

type extension = { id : int; data : bytes }
(** One RFC 8285 header-extension element. The AV1 dependency descriptor
    (module {!Av1}) travels as one of these. *)

type t = {
  marker : bool;  (** M bit; set on the last packet of a video frame. *)
  payload_type : int;  (** 7-bit payload type. *)
  sequence : int;  (** 16-bit sequence number. *)
  timestamp : int;  (** 32-bit media timestamp. *)
  ssrc : int;  (** 32-bit synchronization source. *)
  csrcs : int list;  (** Contributing sources (unused by WebRTC; kept for fidelity). *)
  extensions : extension list;
  payload : bytes;
}

val make :
  ?marker:bool ->
  ?csrcs:int list ->
  ?extensions:extension list ->
  payload_type:int ->
  sequence:int ->
  timestamp:int ->
  ssrc:int ->
  bytes ->
  t

val serialize : t -> bytes
(** Encodes with a one-byte extension profile (0xBEDE) when every element
    fits (id 1–14, length 1–16 bytes), otherwise the two-byte profile. *)

val parse : bytes -> t
(** @raise Wire.Parse_error on malformed input. *)

val find_extension : t -> int -> bytes option

(** Allocation-free view over a serialized RTP packet — the data-plane
    fast path's ingress representation. One pass records the fixed header
    fields plus byte offsets into the original buffer, without
    materializing a record, extension list, or payload copy; forwarding
    then works by [Bytes.copy] + {!Wire.Patch} at the recorded offsets,
    exactly like the hardware pipeline's header rewrite. *)
module View : sig
  type t = private {
    buf : bytes;  (** The underlying (unowned, unmodified) buffer. *)
    marker : bool;
    payload_type : int;
    sequence : int;
    timestamp : int;
    ssrc : int;
    ext_off : int;
        (** Byte offset of the requested extension element's data within
            [buf], or -1 when the element is absent. *)
    ext_len : int;  (** Its length in bytes (0 when absent). *)
    payload_off : int;
    payload_len : int;  (** Payload extent, excluding any RTP padding. *)
    canonical : bool;
        (** [buf] is byte-identical to [serialize (parse buf)]; when
            false (padding bit, extension terminator/interior padding,
            non-minimal profile...), copy-and-patch is not equivalent to
            parse-and-reserialize and callers must take the slow path. *)
  }

  val sequence_pos : int
  (** Fixed byte offset of the 16-bit sequence number (2). *)

  val ssrc_pos : int
  (** Fixed byte offset of the 32-bit SSRC (8). *)

  val of_bytes : ?ext_id:int -> bytes -> t
  (** [ext_id] selects which extension element's extent to record (e.g.
      the AV1 dependency descriptor's id). Accepts and rejects exactly
      the same inputs as {!parse}.
      @raise Wire.Parse_error on malformed input. *)
end
val with_sequence : t -> int -> t
val with_ssrc : t -> int -> t
val wire_size : t -> int
(** Size in bytes of [serialize t] without serializing. *)

val seq_succ : int -> int
val seq_add : int -> int -> int
val seq_sub : int -> int -> int
(** [seq_sub a b] is the signed distance from [b] to [a] in 16-bit sequence
    space, in [\[-32768, 32767\]]. Positive means [a] is newer. *)

val seq_newer : int -> int -> bool
(** [seq_newer a b] — [a] is strictly ahead of [b] modulo 2^16. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
