(** Big-endian binary readers/writers shared by all wire formats.

    The reader is a cursor over immutable [bytes]; all parse errors raise
    {!Parse_error} with a human-readable reason, so protocol modules can
    surface malformed packets without partial reads escaping. *)

exception Parse_error of string

val parse_error : ('a, unit, string, 'b) format4 -> 'a
(** [parse_error fmt ...] raises {!Parse_error} with a formatted message. *)

module Reader : sig
  type t

  val of_bytes : bytes -> t
  val of_sub : bytes -> pos:int -> len:int -> t
  val pos : t -> int
  val remaining : t -> int
  val eof : t -> bool

  val u8 : t -> int
  val u16 : t -> int
  val u24 : t -> int
  val u32 : t -> int32
  val u32_int : t -> int
  (** [u32] as a non-negative OCaml int. *)

  val take : t -> int -> bytes
  val skip : t -> int -> unit

  val peek_u8 : t -> int
  (** Read a byte without consuming it — the "lookahead" primitive used by
      the switch parser (paper Appendix E). *)
end

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u24 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32_int : t -> int -> unit
  val bytes : t -> bytes -> unit
  val contents : t -> bytes
end

(** In-place big-endian patching of an already-serialized buffer — the
    data-plane fast path's "header rewrite" primitive. Values are masked
    to field width; the caller guarantees the offsets are in bounds. *)
module Patch : sig
  val u16 : bytes -> pos:int -> int -> unit
  val u32 : bytes -> pos:int -> int -> unit
end
