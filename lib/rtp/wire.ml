exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

module Reader = struct
  type t = { buf : bytes; limit : int; mutable pos : int }

  let of_sub buf ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then
      invalid_arg "Wire.Reader.of_sub";
    { buf; limit = pos + len; pos }

  let of_bytes buf = of_sub buf ~pos:0 ~len:(Bytes.length buf)
  let pos t = t.pos
  let remaining t = t.limit - t.pos
  let eof t = t.pos >= t.limit

  let need t n =
    if remaining t < n then
      parse_error "truncated: need %d bytes, have %d" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u24 t =
    let hi = u16 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32_int t =
    let hi = u16 t in
    let lo = u16 t in
    (hi lsl 16) lor lo

  let u32 t = Int32.of_int (u32_int t)

  let take t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let skip t n =
    need t n;
    t.pos <- t.pos + n

  let peek_u8 t =
    need t 1;
    Char.code (Bytes.get t.buf t.pos)
end

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u24 t v =
    u8 t (v lsr 16);
    u8 t (v lsr 8);
    u8 t v

  let u32_int t v =
    u16 t (v lsr 16);
    u16 t v

  let u32 t v = u32_int t (Int32.to_int v land 0xFFFFFFFF)
  let bytes t b = Buffer.add_bytes t b
  let contents t = Buffer.to_bytes t
end

module Patch = struct
  let u16 buf ~pos v =
    Bytes.set buf pos (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (pos + 1) (Char.chr (v land 0xFF))

  let u32 buf ~pos v =
    u16 buf ~pos ((v lsr 16) land 0xFFFF);
    u16 buf ~pos:(pos + 2) (v land 0xFFFF)
end
