type extension = { id : int; data : bytes }

type t = {
  marker : bool;
  payload_type : int;
  sequence : int;
  timestamp : int;
  ssrc : int;
  csrcs : int list;
  extensions : extension list;
  payload : bytes;
}

let make ?(marker = false) ?(csrcs = []) ?(extensions = []) ~payload_type ~sequence
    ~timestamp ~ssrc payload =
  {
    marker;
    payload_type = payload_type land 0x7F;
    sequence = sequence land 0xFFFF;
    timestamp = timestamp land 0xFFFFFFFF;
    ssrc = ssrc land 0xFFFFFFFF;
    csrcs;
    extensions;
    payload;
  }

let one_byte_ok exts =
  List.for_all
    (fun { id; data } ->
      id >= 1 && id <= 14 && Bytes.length data >= 1 && Bytes.length data <= 16)
    exts

(* Serialize RFC 8285 extension elements, padded to a 32-bit boundary. *)
let serialize_extensions w exts =
  let body = Wire.Writer.create () in
  let one_byte = one_byte_ok exts in
  List.iter
    (fun { id; data } ->
      let len = Bytes.length data in
      if one_byte then Wire.Writer.u8 body ((id lsl 4) lor (len - 1))
      else begin
        Wire.Writer.u8 body id;
        Wire.Writer.u8 body len
      end;
      Wire.Writer.bytes body data)
    exts;
  let unpadded = Wire.Writer.length body in
  let padded = (unpadded + 3) land lnot 3 in
  for _ = unpadded + 1 to padded do
    Wire.Writer.u8 body 0
  done;
  Wire.Writer.u16 w (if one_byte then 0xBEDE else 0x1000);
  Wire.Writer.u16 w (padded / 4);
  Wire.Writer.bytes w (Wire.Writer.contents body)

let serialize t =
  let w = Wire.Writer.create () in
  let has_ext = t.extensions <> [] in
  let b0 =
    (2 lsl 6)
    lor (if has_ext then 1 lsl 4 else 0)
    lor List.length t.csrcs
  in
  Wire.Writer.u8 w b0;
  Wire.Writer.u8 w (((if t.marker then 1 else 0) lsl 7) lor t.payload_type);
  Wire.Writer.u16 w t.sequence;
  Wire.Writer.u32_int w t.timestamp;
  Wire.Writer.u32_int w t.ssrc;
  List.iter (fun c -> Wire.Writer.u32_int w c) t.csrcs;
  if has_ext then serialize_extensions w t.extensions;
  Wire.Writer.bytes w t.payload;
  Wire.Writer.contents w

let parse_extension_block r =
  let profile = Wire.Reader.u16 r in
  let words = Wire.Reader.u16 r in
  let block = Wire.Reader.take r (words * 4) in
  let br = Wire.Reader.of_bytes block in
  let one_byte =
    if profile = 0xBEDE then true
    else if profile land 0xFFF0 = 0x1000 then false
    else Wire.parse_error "unsupported RTP extension profile 0x%04X" profile
  in
  let rec elements acc =
    if Wire.Reader.remaining br = 0 then List.rev acc
    else begin
      let b = Wire.Reader.peek_u8 br in
      if b = 0 then begin
        (* padding byte *)
        Wire.Reader.skip br 1;
        elements acc
      end
      else if one_byte then begin
        let b = Wire.Reader.u8 br in
        let id = b lsr 4 and len = (b land 0xF) + 1 in
        if id = 15 then List.rev acc
        else
          let data = Wire.Reader.take br len in
          elements ({ id; data } :: acc)
      end
      else begin
        let id = Wire.Reader.u8 br in
        let len = Wire.Reader.u8 br in
        let data = Wire.Reader.take br len in
        elements ({ id; data } :: acc)
      end
    end
  in
  elements []

let parse buf =
  let r = Wire.Reader.of_bytes buf in
  let b0 = Wire.Reader.u8 r in
  let version = b0 lsr 6 in
  if version <> 2 then Wire.parse_error "RTP version %d" version;
  let padding = b0 land 0x20 <> 0 in
  let has_ext = b0 land 0x10 <> 0 in
  let cc = b0 land 0x0F in
  let b1 = Wire.Reader.u8 r in
  let marker = b1 land 0x80 <> 0 in
  let payload_type = b1 land 0x7F in
  let sequence = Wire.Reader.u16 r in
  let timestamp = Wire.Reader.u32_int r in
  let ssrc = Wire.Reader.u32_int r in
  let csrcs = List.init cc (fun _ -> Wire.Reader.u32_int r) in
  let extensions = if has_ext then parse_extension_block r else [] in
  let payload_len = Wire.Reader.remaining r in
  let payload_len =
    if padding then begin
      if payload_len = 0 then Wire.parse_error "padded RTP packet with no payload";
      let pad = Char.code (Bytes.get buf (Bytes.length buf - 1)) in
      if pad > payload_len then Wire.parse_error "RTP pad count %d too large" pad;
      payload_len - pad
    end
    else payload_len
  in
  let payload = Wire.Reader.take r payload_len in
  { marker; payload_type; sequence; timestamp; ssrc; csrcs; extensions; payload }

let find_extension t id =
  List.find_map (fun e -> if e.id = id then Some e.data else None) t.extensions

module View = struct
  type t = {
    buf : bytes;
    marker : bool;
    payload_type : int;
    sequence : int;
    timestamp : int;
    ssrc : int;
    ext_off : int;
    ext_len : int;
    payload_off : int;
    payload_len : int;
    canonical : bool;
  }

  let sequence_pos = 2
  let ssrc_pos = 8

  (* Single pass over the ingress buffer: fixed header fields, the byte
     extent of the [ext_id] element, the payload extent, and a
     canonicality verdict. Accepts and rejects exactly the inputs [parse]
     does (same Parse_error cases); [canonical] answers whether the buffer
     equals [serialize (parse buf)], i.e. whether a copy-and-patch of the
     raw bytes is interchangeable with a parse-and-reserialize. *)
  let of_bytes ?(ext_id = 0) buf =
    let len = Bytes.length buf in
    let need n pos =
      if pos < 0 || len - pos < n then
        Wire.parse_error "truncated: need %d bytes, have %d" n (len - pos)
    in
    let u8 pos = Char.code (Bytes.get buf pos) in
    let u16 pos = (u8 pos lsl 8) lor u8 (pos + 1) in
    let u32 pos = (u16 pos lsl 16) lor u16 (pos + 2) in
    need 1 0;
    let b0 = u8 0 in
    let version = b0 lsr 6 in
    if version <> 2 then Wire.parse_error "RTP version %d" version;
    let padding = b0 land 0x20 <> 0 in
    let has_ext = b0 land 0x10 <> 0 in
    let cc = b0 land 0x0F in
    need 12 0;
    let b1 = u8 1 in
    let marker = b1 land 0x80 <> 0 in
    let payload_type = b1 land 0x7F in
    let sequence = u16 sequence_pos in
    let timestamp = u32 4 in
    let ssrc = u32 ssrc_pos in
    need (4 * cc) 12;
    let pos = ref (12 + (4 * cc)) in
    (* serialize never sets the padding bit, so padded input can't
       round-trip byte-identically. *)
    let canonical = ref (not padding) in
    let ext_off = ref (-1) in
    let ext_len = ref 0 in
    if has_ext then begin
      need 4 !pos;
      let profile = u16 !pos in
      let words = u16 (!pos + 2) in
      let block_start = !pos + 4 in
      need (words * 4) block_start;
      let block_end = block_start + (words * 4) in
      let one_byte =
        if profile = 0xBEDE then true
        else if profile land 0xFFF0 = 0x1000 then false
        else Wire.parse_error "unsupported RTP extension profile 0x%04X" profile
      in
      (* serialize emits exactly 0x1000 for the two-byte profile. *)
      if (not one_byte) && profile <> 0x1000 then canonical := false;
      let p = ref block_start in
      let zeros = ref 0 in
      let n_elems = ref 0 in
      let all_fit_one_byte = ref true in
      let stop = ref false in
      while (not !stop) && !p < block_end do
        let b = u8 !p in
        if b = 0 then begin
          incr zeros;
          incr p
        end
        else begin
          (* a zero run followed by another element is interior padding,
             which serialize never produces *)
          if !zeros > 0 then canonical := false;
          zeros := 0;
          if one_byte then begin
            let id = b lsr 4 and elen = (b land 0xF) + 1 in
            if id = 15 then begin
              (* terminator: parse drops the rest of the block *)
              canonical := false;
              stop := true
            end
            else begin
              if block_end - (!p + 1) < elen then
                Wire.parse_error "truncated: need %d bytes, have %d" elen
                  (block_end - (!p + 1));
              if id = ext_id && !ext_off < 0 then begin
                ext_off := !p + 1;
                ext_len := elen
              end;
              incr n_elems;
              p := !p + 1 + elen
            end
          end
          else begin
            if block_end - !p < 2 then
              Wire.parse_error "truncated: need 2 bytes, have %d" (block_end - !p);
            let id = b in
            let elen = u8 (!p + 1) in
            if block_end - (!p + 2) < elen then
              Wire.parse_error "truncated: need %d bytes, have %d" elen
                (block_end - (!p + 2));
            if not (id >= 1 && id <= 14 && elen >= 1 && elen <= 16) then
              all_fit_one_byte := false;
            if id = ext_id && !ext_off < 0 then begin
              ext_off := !p + 2;
              ext_len := elen
            end;
            incr n_elems;
            p := !p + 2 + elen
          end
        end
      done;
      (* canonical padding is only the minimal 0-3 trailing zeros *)
      if (not !stop) && !zeros > 3 then canonical := false;
      if !n_elems = 0 then canonical := false
      else if (not one_byte) && !all_fit_one_byte then
        (* serialize would switch these elements to the one-byte profile *)
        canonical := false;
      pos := block_end
    end;
    let payload_off = !pos in
    let payload_len = len - !pos in
    let payload_len =
      if padding then begin
        if payload_len = 0 then Wire.parse_error "padded RTP packet with no payload";
        let pad = u8 (len - 1) in
        if pad > payload_len then Wire.parse_error "RTP pad count %d too large" pad;
        payload_len - pad
      end
      else payload_len
    in
    {
      buf;
      marker;
      payload_type;
      sequence;
      timestamp;
      ssrc;
      ext_off = !ext_off;
      ext_len = !ext_len;
      payload_off;
      payload_len;
      canonical = !canonical;
    }
end

let with_sequence t sequence = { t with sequence = sequence land 0xFFFF }
let with_ssrc t ssrc = { t with ssrc = ssrc land 0xFFFFFFFF }

let wire_size t =
  let ext_size =
    if t.extensions = [] then 0
    else begin
      let one_byte = one_byte_ok t.extensions in
      let body =
        List.fold_left
          (fun acc { data; _ } ->
            acc + (if one_byte then 1 else 2) + Bytes.length data)
          0 t.extensions
      in
      4 + ((body + 3) land lnot 3)
    end
  in
  12 + (4 * List.length t.csrcs) + ext_size + Bytes.length t.payload

let seq_succ s = (s + 1) land 0xFFFF
let seq_add s n = (s + n) land 0xFFFF

let seq_sub a b =
  let d = (a - b) land 0xFFFF in
  if d >= 0x8000 then d - 0x10000 else d

let seq_newer a b = seq_sub a b > 0

let pp fmt t =
  Format.fprintf fmt "RTP{pt=%d seq=%d ts=%d ssrc=%#x m=%b len=%d}" t.payload_type
    t.sequence t.timestamp t.ssrc t.marker (Bytes.length t.payload)

let equal a b =
  a.marker = b.marker && a.payload_type = b.payload_type && a.sequence = b.sequence
  && a.timestamp = b.timestamp && a.ssrc = b.ssrc && a.csrcs = b.csrcs
  && List.length a.extensions = List.length b.extensions
  && List.for_all2
       (fun x y -> x.id = y.id && Bytes.equal x.data y.data)
       a.extensions b.extensions
  && Bytes.equal a.payload b.payload
