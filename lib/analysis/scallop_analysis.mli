(** Static data-plane state verifier.

    Scallop's session state lives in three places that must agree: the
    controller's intent (what it believes it has programmed), each switch
    agent's shadow (meetings, streams, legs), and the data-plane ground
    truth (uplink/egress/feedback tables, PRE trees and exclusion sets).
    The RPC control plane retries and replays, so a lost or misapplied
    update leaves the layers {e silently} inconsistent — media just stops
    flowing, or flows to the wrong port.

    This module takes a typed snapshot of all three layers and statically
    checks the invariants that hold at every quiescent point:

    - per-tree RID uniqueness, node/tree membership consistency, and no
      leaked (orphan) L1 nodes after teardown paths;
    - L1/L2 exclusion consistency: every packet's self-prune L2-XID covers
      the sender's own egress port, exclusion sets are non-empty, subsets
      of the tree egress ports, and in sync with the tree layer's
      reference counts;
    - behavioural reachability: for every uplink, routing metadata through
      the PRE ([route_media] → [replicate] → [receiver_of_replica])
      delivers exactly one replica to every receiving member, none to the
      sender, and every replica lands on a live egress leg;
    - feedback rules point at live legs and vice versa;
    - match-action table occupancy within capacity, the stream-index
      allocator free of double-allocation/double-free;
    - a resource re-audit of the rebuilt {!Tofino.Resources.program}
      against the Tofino2 budget (stages, SRAM, PHV, VLIW, parser depth);
    - PRE fan-out cache coherence: every resident memo entry is
      re-derived from the live trees and must match exactly;
    - cross-layer diff: controller intent ≡ agent shadow ≡ data-plane
      ground truth, membership, uplinks and relay receivers included.

    Violations are structured {!finding}s, never exceptions, so a check
    over corrupted state reports {e every} problem at once. *)

(** {1 Findings} *)

type severity = Error | Warning

type layer = Controller | Agent | Dataplane | Pre | Resources
(** Which layer's state a finding is about. *)

type kind =
  | Duplicate_rid  (** two L1 nodes of one tree share a RID *)
  | Orphan_l1_node  (** allocated L1 node owned by no meeting — a leak *)
  | Dangling_tree_node  (** node/tree membership records disagree *)
  | Self_prune_mismatch  (** a sender would receive its own media *)
  | Xid_ports_invalid  (** L2 exclusion sets malformed or untracked *)
  | Unreachable_leg  (** a receiving member gets no replica / has no leg *)
  | Orphan_replica  (** a replica or leg no receiving member accounts for *)
  | Dangling_feedback  (** feedback rule and egress leg out of sync *)
  | Table_overflow  (** match-action table over (or near) capacity *)
  | Stream_index_corrupt  (** stream-index allocator double-free/use *)
  | Resource_budget  (** PRE or Tofino2 chip budget exceeded *)
  | Stale_pre_cache
      (** a resident PRE fan-out cache entry disagrees with what
          {!Tofino.Pre.replicate} computes from the live trees — the
          flush-on-mutation discipline was bypassed *)
  | Intent_drift  (** controller intent vs agent shadow mismatch *)
  | Shadow_drift  (** agent shadow vs data-plane ground truth mismatch *)
  | Deferred_overflow
      (** the controller's deferred-op queue for a Dead switch hit its
          cap and dropped ops (Warning: the heal path compensates with a
          full resync, but the operator should know) *)
  | Split_brain
      (** two live controller instances both hold the Acting role — the
          fencing protocol failed to depose the old primary *)
  | Journal_drift
      (** a standby that has applied every journal entry does not
          reproduce the acting primary's intent — the write-ahead log is
          not a faithful record of the mutations it claims to cover *)

type finding = {
  severity : severity;
  layer : layer;
  kind : kind;
  subject : string;  (** e.g. ["sw0/uplink:40001"] *)
  explanation : string;
  trace_ids : int list;
      (** causal trace ids of packets that exercised the faulty state
          (see {!Scallop_obs.Trace.timeline}); [[]] when tracing was off
          or no traced packet touched it. Currently populated for
          {!Stale_pre_cache}: every traced packet whose fan-out was
          served from the stale entry. *)
}

val severity_name : severity -> string
val layer_name : layer -> string
val kind_name : kind -> string

val pp_finding : Format.formatter -> finding -> unit

val report : finding list -> string
(** One pretty-printed finding per line. *)

val errors : finding list -> finding list
(** Just the [Error]-severity findings (the nonzero-exit set). *)

(** {1 Snapshots}

    Snapshot records are plain data so tests (and the mutation harness)
    can rebuild them with seeded corruption; the live [Trees.t] / [Pre.t]
    handles ride along for the behavioural replication checks. Taking a
    snapshot never mutates any layer. *)

type pre_node = {
  pn_id : Tofino.Pre.node_id;
  pn_rid : int;
  pn_l1_xid : int;
  pn_prune : bool;
  pn_ports : int list;
  pn_tree : Tofino.Pre.mgid option;
}

type pre_tree = { pt_mgid : Tofino.Pre.mgid; pt_nodes : Tofino.Pre.node_id list }

type pre_state = {
  ps_nodes : pre_node list;  (** sorted by node id *)
  ps_trees : pre_tree list;  (** sorted by MGID *)
  ps_l2_xids : (int * int list) list;
  ps_limits : Tofino.Pre.limits;
}

type switch_snapshot = {
  sw_index : int;
  sw_agent_meetings : Scallop.Switch_agent.meeting_view list;
  sw_uplinks : Scallop.Dataplane.uplink_view list;
  sw_legs : Scallop.Dataplane.leg_view list;
  sw_feedback : (int * int) list;
  sw_tables : Scallop.Dataplane.table_occupancy list;
  sw_stream_free : int list;
  sw_stream_next : int;
  sw_l2_refs : (int * int) list;
  sw_pre_state : pre_state;
  sw_program : Tofino.Resources.program;
  sw_trees : Scallop.Trees.t;  (** live, for behavioural checks *)
  sw_pre : Tofino.Pre.t;  (** live, for behavioural checks *)
}

type t = {
  snap_intent : Scallop.Controller.intent;
  snap_switches : switch_snapshot list;
}

val snapshot : Scallop.Controller.t -> t
(** Capture controller intent plus a per-switch snapshot of every agent
    and data plane the controller manages. *)

val snapshot_switch :
  index:int -> Scallop.Switch_agent.t -> Scallop.Dataplane.t -> switch_snapshot

(** {1 Checking} *)

val state_hash : t -> int
(** Structural hash of the snapshot's pure-data projection (controller
    intent, agent shadows, data-plane tables and PRE state; live handles
    excluded). Schedules that converge to identical three-layer state
    hash equal — the key for {!Scallop_mc}'s state-dedup pruning. *)

val check : ?totals:Tofino.Resources.totals -> t -> finding list
(** Run every invariant over the snapshot. [totals] overrides the chip
    budget for the resource re-audit (default {!Tofino.Resources.tofino2});
    the mutation harness passes shrunken budgets to force findings. *)

val verify : ?totals:Tofino.Resources.totals -> Scallop.Controller.t -> finding list
(** [check] of a fresh [snapshot]. *)

val assert_clean : ?what:string -> Scallop.Controller.t -> unit
(** Verify and raise [Failure] with the pretty-printed error findings if
    any invariant is violated — the one-liner for tests and experiment
    quiescent points. *)

(** {1 Anti-entropy}

    Checking is free of side effects; {!reconcile} is the active
    counterpart, pairing the verifier with the controller's
    {!Scallop.Controller.resync_switch} repair primitive. Switches the
    failure detector currently marks Dead are exempt both from
    intent-coupled checks (their drift is the failure model working —
    the data plane keeps forwarding last-known state while ops queue)
    and from repair (they are unreachable; their heal path replays
    intent anyway). *)

type repair_report = {
  rr_before : finding list;  (** what the first verification found *)
  rr_repairs : (int * int option) list;
      (** (switch, RPCs issued) per resync; [None] when the switch went
          Dead mid-replay *)
  rr_after : finding list;  (** the re-verification after repairs *)
}

val reconcile :
  ?totals:Tofino.Resources.totals -> Scallop.Controller.t -> repair_report
(** Verify; resync every reachable switch implicated in an error finding
    (subjects of the form ["sw<idx>/..."]) from controller intent;
    verify again. With no error findings (or none naming a reachable
    switch) nothing is repaired and [rr_after == rr_before]. *)

(** {1 Controller cluster invariants} *)

val check_cluster : Scallop.Cluster.t -> finding list
(** Check the controller tier's fault-tolerance invariants at a
    quiescent point: at most one live acting primary
    ({!Split_brain}), and journal-replay fidelity — the standby is
    tailed to the journal head ({!Scallop.Controller.apply_tail}, the
    one mutation this check performs) and its
    {!Scallop.Controller.intent_fingerprint} must match the acting
    primary's ({!Journal_drift}). The lease check
    ({!Scallop.Controller.refresh_role}) runs first on every acting
    instance, so a fenced-out primary that never wrote after its
    deposition is not miscounted. *)
