module P = Tofino.Pre
module R = Tofino.Resources
module C = Scallop.Controller
module A = Scallop.Switch_agent
module D = Scallop.Dataplane
module T = Scallop.Trees

(* --- findings --------------------------------------------------------------- *)

type severity = Error | Warning
type layer = Controller | Agent | Dataplane | Pre | Resources

type kind =
  | Duplicate_rid
  | Orphan_l1_node
  | Dangling_tree_node
  | Self_prune_mismatch
  | Xid_ports_invalid
  | Unreachable_leg
  | Orphan_replica
  | Dangling_feedback
  | Table_overflow
  | Stream_index_corrupt
  | Resource_budget
  | Stale_pre_cache
  | Intent_drift
  | Shadow_drift
  | Deferred_overflow
  | Split_brain
  | Journal_drift

type finding = {
  severity : severity;
  layer : layer;
  kind : kind;
  subject : string;
  explanation : string;
  trace_ids : int list;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let layer_name = function
  | Controller -> "controller"
  | Agent -> "agent"
  | Dataplane -> "dataplane"
  | Pre -> "pre"
  | Resources -> "resources"

let kind_name = function
  | Duplicate_rid -> "duplicate-rid"
  | Orphan_l1_node -> "orphan-l1-node"
  | Dangling_tree_node -> "dangling-tree-node"
  | Self_prune_mismatch -> "self-prune-mismatch"
  | Xid_ports_invalid -> "xid-ports-invalid"
  | Unreachable_leg -> "unreachable-leg"
  | Orphan_replica -> "orphan-replica"
  | Dangling_feedback -> "dangling-feedback"
  | Table_overflow -> "table-overflow"
  | Stream_index_corrupt -> "stream-index-corrupt"
  | Resource_budget -> "resource-budget"
  | Stale_pre_cache -> "stale-pre-cache"
  | Intent_drift -> "intent-drift"
  | Shadow_drift -> "shadow-drift"
  | Deferred_overflow -> "deferred-overflow"
  | Split_brain -> "split-brain"
  | Journal_drift -> "journal-drift"

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %-10s %-20s %-28s %s" (severity_name f.severity)
    (layer_name f.layer) (kind_name f.kind) f.subject f.explanation;
  if f.trace_ids <> [] then
    Format.fprintf ppf " [traces: %s]"
      (String.concat "," (List.map string_of_int f.trace_ids))

let report findings =
  String.concat "\n"
    (List.map (fun f -> Format.asprintf "%a" pp_finding f) findings)

let errors findings = List.filter (fun f -> f.severity = Error) findings

(* --- snapshots --------------------------------------------------------------

   A snapshot is plain data wherever a check is plain data (table
   occupancy, PRE structure, allocator state) so the mutation harness can
   tamper with records directly; the live [Trees.t]/[Pre.t] handles ride
   along for the behavioural checks (route -> replicate -> receiver) that
   must execute real data-plane lookups. *)

type pre_node = {
  pn_id : P.node_id;
  pn_rid : int;
  pn_l1_xid : int;
  pn_prune : bool;
  pn_ports : int list;
  pn_tree : P.mgid option;
}

type pre_tree = { pt_mgid : P.mgid; pt_nodes : P.node_id list }

type pre_state = {
  ps_nodes : pre_node list;
  ps_trees : pre_tree list;
  ps_l2_xids : (int * int list) list;
  ps_limits : P.limits;
}

type switch_snapshot = {
  sw_index : int;
  sw_agent_meetings : A.meeting_view list;
  sw_uplinks : D.uplink_view list;
  sw_legs : D.leg_view list;
  sw_feedback : (int * int) list;
  sw_tables : D.table_occupancy list;
  sw_stream_free : int list;
  sw_stream_next : int;
  sw_l2_refs : (int * int) list;
  sw_pre_state : pre_state;
  sw_program : R.program;
  sw_trees : T.t;
  sw_pre : P.t;
}

type t = { snap_intent : C.intent; snap_switches : switch_snapshot list }

let pre_state_of pre =
  let nodes = ref [] in
  P.iter_nodes pre (fun id ->
      nodes :=
        {
          pn_id = id;
          pn_rid = P.node_rid pre id;
          pn_l1_xid = P.node_l1_xid pre id;
          pn_prune = P.node_prune_enabled pre id;
          pn_ports = P.node_ports pre id;
          pn_tree = P.node_tree pre id;
        }
        :: !nodes);
  let trees = ref [] in
  P.iter_trees pre (fun ~mgid ~nodes ->
      trees := { pt_mgid = mgid; pt_nodes = nodes } :: !trees);
  let xids = ref [] in
  P.iter_l2_xids pre (fun ~xid ~ports -> xids := (xid, ports) :: !xids);
  {
    ps_nodes = List.sort (fun a b -> compare a.pn_id b.pn_id) !nodes;
    ps_trees = List.sort (fun a b -> compare a.pt_mgid b.pt_mgid) !trees;
    ps_l2_xids = List.sort compare !xids;
    ps_limits = P.limits pre;
  }

let snapshot_switch ~index agent dp =
  let free, next = D.stream_index_state dp in
  {
    sw_index = index;
    sw_agent_meetings = A.introspect agent;
    sw_uplinks = D.uplinks_view dp;
    sw_legs = D.legs_view dp;
    sw_feedback = D.feedback_view dp;
    sw_tables = D.table_occupancy dp;
    sw_stream_free = free;
    sw_stream_next = next;
    sw_l2_refs = T.l2_xid_refs (D.trees dp);
    sw_pre_state = pre_state_of (D.pre dp);
    sw_program = D.resource_program dp;
    sw_trees = D.trees dp;
    sw_pre = D.pre dp;
  }

let snapshot ctrl =
  {
    snap_intent = C.introspect ctrl;
    snap_switches =
      List.init (C.switch_count ctrl) (fun i ->
          let agent, dp = C.switch_agent ctrl i in
          snapshot_switch ~index:i agent dp);
  }

(* --- check plumbing --------------------------------------------------------- *)

type ctx = { mutable acc : finding list }

let add ?(trace_ids = []) ctx severity layer kind subject explanation =
  ctx.acc <- { severity; layer; kind; subject; explanation; trace_ids } :: ctx.acc

let errf ctx layer kind subject fmt =
  Printf.ksprintf (add ctx Error layer kind subject) fmt

let errf_traced ctx ~trace_ids layer kind subject fmt =
  Printf.ksprintf (add ~trace_ids ctx Error layer kind subject) fmt

let warnf ctx layer kind subject fmt =
  Printf.ksprintf (add ctx Warning layer kind subject) fmt

let ports_str ports = String.concat "," (List.map string_of_int ports)

(* A switch the controller's failure detector has declared Dead is
   {e expected} to lag intent — mutations towards it are queued, not
   applied, while its data plane keeps forwarding last-known state — so
   intent-coupled checks stand down for it until it heals. Switch-internal
   invariants (PRE structure, shadow vs ground truth, allocators) still
   apply: a partition must not corrupt anything. *)
let dead_in (intent : C.intent) idx =
  List.exists
    (fun (h : C.health_view) -> h.C.hv_agent = idx && h.C.hv_state = C.Dead)
    intent.C.in_health

(* --- PRE structure: trees, nodes, RIDs -------------------------------------- *)

let check_pre ctx sw =
  let st = sw.sw_pre_state in
  let lim = st.ps_limits in
  let subj_pre = Printf.sprintf "sw%d/pre" sw.sw_index in
  let subj_tree mgid = Printf.sprintf "sw%d/tree:%#x" sw.sw_index mgid in
  let subj_node id = Printf.sprintf "sw%d/node:%d" sw.sw_index id in
  let node_by_id = List.map (fun n -> (n.pn_id, n)) st.ps_nodes in
  let tree_by_mgid = List.map (fun tr -> (tr.pt_mgid, tr)) st.ps_trees in
  if List.length st.ps_trees > lim.P.max_trees then
    errf ctx Pre Resource_budget subj_pre "%d trees exceed the PRE limit of %d"
      (List.length st.ps_trees) lim.P.max_trees;
  if List.length st.ps_nodes > lim.P.max_l1_nodes then
    errf ctx Pre Resource_budget subj_pre "%d L1 nodes exceed the PRE limit of %d"
      (List.length st.ps_nodes) lim.P.max_l1_nodes;
  List.iter
    (fun tr ->
      let rids =
        List.filter_map
          (fun id -> Option.map (fun n -> n.pn_rid) (List.assoc_opt id node_by_id))
          tr.pt_nodes
      in
      let rec dups = function
        | a :: (b :: _ as tl) -> if a = b then a :: dups tl else dups tl
        | _ -> []
      in
      List.iter
        (fun rid ->
          errf ctx Pre Duplicate_rid (subj_tree tr.pt_mgid)
            "RID %d is assigned to more than one L1 node of the tree" rid)
        (List.sort_uniq compare (dups (List.sort compare rids)));
      if List.length (List.sort_uniq compare rids) > lim.P.max_rids_per_tree then
        errf ctx Pre Resource_budget (subj_tree tr.pt_mgid)
          "%d distinct RIDs exceed the per-tree limit of %d"
          (List.length (List.sort_uniq compare rids))
          lim.P.max_rids_per_tree;
      List.iter
        (fun id ->
          match List.assoc_opt id node_by_id with
          | None ->
              errf ctx Pre Dangling_tree_node (subj_tree tr.pt_mgid)
                "tree lists node %d, which is not allocated" id
          | Some n ->
              if n.pn_tree <> Some tr.pt_mgid then
                errf ctx Pre Dangling_tree_node (subj_tree tr.pt_mgid)
                  "node %d is listed here but records membership of %s" id
                  (match n.pn_tree with
                  | None -> "no tree"
                  | Some m -> Printf.sprintf "tree %#x" m))
        tr.pt_nodes)
    st.ps_trees;
  List.iter
    (fun n ->
      match n.pn_tree with
      | None -> ()
      | Some m -> (
          match List.assoc_opt m tree_by_mgid with
          | None ->
              errf ctx Pre Dangling_tree_node (subj_node n.pn_id)
                "node points at tree %#x, which does not exist" m
          | Some tr ->
              if not (List.mem n.pn_id tr.pt_nodes) then
                errf ctx Pre Dangling_tree_node (subj_node n.pn_id)
                  "tree %#x does not list this node as a member" m))
    st.ps_nodes;
  (* every allocated node must be owned by exactly one registered meeting *)
  let owned = Hashtbl.create 64 in
  List.iter
    (fun (am : A.meeting_view) ->
      List.iter
        (fun (nb : T.node_binding) ->
          (match Hashtbl.find_opt owned nb.T.nb_node with
          | Some owner when owner <> am.A.amv_id ->
              errf ctx Agent Shadow_drift (subj_node nb.T.nb_node)
                "L1 node is owned by both agent meeting %d and %d" owner am.A.amv_id
          | _ -> ());
          Hashtbl.replace owned nb.T.nb_node am.A.amv_id;
          if not (List.mem_assoc nb.T.nb_node node_by_id) then
            errf ctx Agent Shadow_drift
              (Printf.sprintf "sw%d/meeting:%d" sw.sw_index am.A.amv_id)
              "tree bookkeeping references PRE node %d, which is not allocated"
              nb.T.nb_node)
        (T.node_bindings am.A.amv_handle))
    sw.sw_agent_meetings;
  List.iter
    (fun n ->
      if not (Hashtbl.mem owned n.pn_id) then
        errf ctx Pre Orphan_l1_node (subj_node n.pn_id)
          "L1 node (rid %d, ports [%s]) is not owned by any registered meeting — leaked"
          n.pn_rid (ports_str n.pn_ports))
    st.ps_nodes

(* --- L2 exclusion sets ------------------------------------------------------ *)

let check_xids ctx sw =
  let st = sw.sw_pre_state in
  let subj xid = Printf.sprintf "sw%d/l2-xid:%d" sw.sw_index xid in
  let node_by_id = List.map (fun n -> (n.pn_id, n)) st.ps_nodes in
  let tree_ports =
    List.concat_map
      (fun tr ->
        List.concat_map
          (fun id ->
            match List.assoc_opt id node_by_id with
            | Some n -> n.pn_ports
            | None -> [])
          tr.pt_nodes)
      st.ps_trees
    |> List.sort_uniq compare
  in
  List.iter
    (fun (xid, ports) ->
      if ports = [] then
        errf ctx Pre Xid_ports_invalid (subj xid) "exclusion port set is empty";
      List.iter
        (fun p ->
          if not (List.mem p tree_ports) then
            errf ctx Pre Xid_ports_invalid (subj xid)
              "excludes port %d, which no replication tree egresses to" p)
        ports;
      match List.assoc_opt xid sw.sw_l2_refs with
      | None ->
          errf ctx Pre Xid_ports_invalid (subj xid)
            "programmed in the PRE but not tracked by the tree layer"
      | Some c when c <= 0 ->
          errf ctx Pre Xid_ports_invalid (subj xid)
            "tracked with non-positive reference count %d" c
      | Some _ -> ())
    st.ps_l2_xids;
  List.iter
    (fun (xid, count) ->
      if not (List.mem_assoc xid st.ps_l2_xids) then
        errf ctx Dataplane Xid_ports_invalid (subj xid)
          "tree layer holds %d reference(s) to an L2-XID the PRE does not program"
          count)
    sw.sw_l2_refs

(* --- behavioural reachability: route -> replicate -> receiver --------------- *)

(* Whether [pid]'s registration on switch [idx] is meant to receive the
   media of an uplink whose sender is homed on switch [sender_home]:

   - a participant homed on [idx] consumes every stream of its meeting;
   - a relay pseudo receiver on [idx] consumes only streams of senders
     {e homed} on [idx] — forwarding a relayed-in stream back out would
     loop it between switches, so the controller deliberately gives those
     replicas no egress leg and they die at the egress lookup;
   - senders registered on a remote switch only to anchor their relay
     uplink are members there but consume nothing. *)
let receives_on intent ~idx ~sender_home pid =
  List.exists
    (fun (p : C.participant_view) -> p.C.pv_pid = pid && p.C.pv_home = idx)
    intent.C.in_participants
  || (sender_home = Some idx
     && List.exists
          (fun (r : C.relay_view) -> r.C.rv_pid = pid && r.C.rv_src = idx)
          intent.C.in_relays)

let check_uplink ctx intent sw (uv : D.uplink_view) =
  let subj = Printf.sprintf "sw%d/uplink:%d" sw.sw_index uv.uv_port in
  let h = uv.uv_meeting in
  let members = T.participants h in
  let sender_home =
    Option.map
      (fun (p : C.participant_view) -> p.C.pv_home)
      (List.find_opt
         (fun (p : C.participant_view) -> p.C.pv_pid = uv.uv_sender)
         intent.C.in_participants)
  in
  let receives_on = receives_on intent ~idx:sw.sw_index ~sender_home in
  let expected =
    List.filter (fun (pid, _) -> pid <> uv.uv_sender && receives_on pid) members
  in
  let sender_ports =
    List.filter_map
      (fun (pid, port) -> if pid = uv.uv_sender then Some port else None)
      members
  in
  let delivered =
    match T.route_media sw.sw_trees h ~sender:uv.uv_sender ~layer:Av1.Dd.T0 with
    | T.No_receivers ->
        if expected <> [] then
          errf ctx Dataplane Unreachable_leg subj
            "routing yields no receivers but %d members expect sender %d's media"
            (List.length expected) uv.uv_sender;
        Some []
    | T.Unicast { port; receiver } -> Some [ (Some receiver, port) ]
    | T.Replicate { mgid; l1_xid; rid; l2_xid } ->
        (* the packet's self-prune metadata must name an exclusion set
           covering the sender's own egress port *)
        (if l2_xid <> 0 then
           match List.assoc_opt l2_xid sw.sw_pre_state.ps_l2_xids with
           | None ->
               errf ctx Pre Self_prune_mismatch subj
                 "packet L2-XID %d has no exclusion port set programmed" l2_xid
           | Some ports ->
               List.iter
                 (fun sp ->
                   if not (List.mem sp ports) then
                     errf ctx Pre Self_prune_mismatch subj
                       "L2-XID %d excludes ports [%s], not the sender's own port %d"
                       l2_xid (ports_str ports) sp)
                 sender_ports);
        Some
          (List.map
             (fun (r : P.replica) ->
               (T.receiver_of_replica sw.sw_trees h ~mgid ~rid:r.P.rid, r.P.port))
             (P.replicate sw.sw_pre ~mgid ~l1_xid ~rid ~l2_xid))
    | exception e ->
        errf ctx Dataplane Unreachable_leg subj "media routing failed: %s"
          (Printexc.to_string e);
        None
  in
  (match delivered with
  | None -> ()
  | Some delivered ->
      List.iter
        (fun (_, port) ->
          if List.mem port sender_ports then
            errf ctx Pre Self_prune_mismatch subj
              "a replica egresses on the sender's own port %d" port)
        delivered;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (rcv, port) ->
          match rcv with
          | None ->
              if not (List.mem port sender_ports) then
                errf ctx Pre Orphan_replica subj
                  "replica on port %d addresses no registered participant" port
          | Some pid -> (
              if Hashtbl.mem seen pid then
                errf ctx Pre Orphan_replica subj
                  "participant %d receives more than one replica" pid
              else Hashtbl.add seen pid ();
              match List.assoc_opt pid members with
              | None ->
                  errf ctx Pre Orphan_replica subj
                    "replica addresses %d, which is not a member of the meeting" pid
              | Some eport ->
                  if eport <> port && receives_on pid then
                    errf ctx Pre Orphan_replica subj
                      "replica for %d egresses on port %d; its registered egress is %d"
                      pid port eport))
        delivered;
      List.iter
        (fun (pid, eport) ->
          if not (Hashtbl.mem seen pid) then
            errf ctx Dataplane Unreachable_leg subj
              "member %d (egress %d) receives no replica of sender %d's media" pid
              eport uv.uv_sender)
        expected);
  (* every receiving member needs an egress leg; every leg a member *)
  let legs = List.filter (fun (l : D.leg_view) -> l.D.lv_uplink_port = uv.uv_port) sw.sw_legs in
  List.iter
    (fun (pid, _) ->
      if not (List.exists (fun (l : D.leg_view) -> l.D.lv_receiver = pid) legs) then
        errf ctx Dataplane Unreachable_leg subj
          "member %d has no egress leg for this stream" pid)
    expected;
  List.iter
    (fun (l : D.leg_view) ->
      if l.D.lv_receiver = uv.uv_sender then
        errf ctx Dataplane Orphan_replica subj
          "sender %d has an egress leg for its own stream" uv.uv_sender
      else if not (List.exists (fun (pid, _) -> pid = l.D.lv_receiver) expected) then
        errf ctx Dataplane Orphan_replica subj
          "egress leg for %d, which is not a receiving member of the meeting"
          l.D.lv_receiver)
    legs

(* --- dataplane table hygiene ------------------------------------------------ *)

let check_legs ctx sw =
  List.iter
    (fun (l : D.leg_view) ->
      if
        not
          (List.exists
             (fun (u : D.uplink_view) -> u.D.uv_port = l.D.lv_uplink_port)
             sw.sw_uplinks)
      then
        errf ctx Dataplane Orphan_replica
          (Printf.sprintf "sw%d/leg:%d" sw.sw_index l.D.lv_src_port)
          "egress leg (receiver %d) references unknown uplink port %d"
          l.D.lv_receiver l.D.lv_uplink_port)
    sw.sw_legs

let check_feedback ctx sw =
  List.iter
    (fun (src_port, receiver) ->
      if
        not
          (List.exists
             (fun (l : D.leg_view) ->
               l.D.lv_src_port = src_port && l.D.lv_receiver = receiver)
             sw.sw_legs)
      then
        errf ctx Dataplane Dangling_feedback
          (Printf.sprintf "sw%d/feedback:%d" sw.sw_index src_port)
          "feedback rule (receiver %d) matches no live egress leg" receiver)
    sw.sw_feedback;
  List.iter
    (fun (l : D.leg_view) ->
      if
        not
          (List.exists
             (fun (sp, r) -> sp = l.D.lv_src_port && r = l.D.lv_receiver)
             sw.sw_feedback)
      then
        errf ctx Dataplane Dangling_feedback
          (Printf.sprintf "sw%d/leg:%d" sw.sw_index l.D.lv_src_port)
          "egress leg (receiver %d) has no feedback rule on its port"
          l.D.lv_receiver)
    sw.sw_legs

let check_tables ctx sw =
  List.iter
    (fun (o : D.table_occupancy) ->
      let subj = Printf.sprintf "sw%d/table:%s" sw.sw_index o.D.tbl_name in
      if o.D.tbl_size > o.D.tbl_capacity then
        errf ctx Dataplane Table_overflow subj "%d entries exceed the capacity of %d"
          o.D.tbl_size o.D.tbl_capacity
      else if o.D.tbl_capacity > 0 && o.D.tbl_size * 10 >= o.D.tbl_capacity * 9 then
        warnf ctx Dataplane Table_overflow subj "%d entries, within 10%% of capacity %d"
          o.D.tbl_size o.D.tbl_capacity)
    sw.sw_tables

let check_stream_indices ctx sw =
  let subj = Printf.sprintf "sw%d/stream-index" sw.sw_index in
  let free = sw.sw_stream_free and next = sw.sw_stream_next in
  let rec dups = function
    | a :: (b :: _ as tl) -> if a = b then a :: dups tl else dups tl
    | _ -> []
  in
  List.iter
    (fun i -> errf ctx Dataplane Stream_index_corrupt subj "index %d is on the free list twice" i)
    (List.sort_uniq compare (dups (List.sort compare free)));
  List.iter
    (fun i ->
      if i < 0 || i >= next then
        errf ctx Dataplane Stream_index_corrupt subj
          "free index %d is outside the allocated range [0,%d)" i next)
    free;
  let used =
    List.filter_map
      (fun (l : D.leg_view) ->
        if l.D.lv_stream_index >= 0 then Some (l.D.lv_stream_index, l.D.lv_src_port)
        else None)
      sw.sw_legs
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (i, port) ->
      (match Hashtbl.find_opt seen i with
      | Some other ->
          errf ctx Dataplane Stream_index_corrupt subj
            "legs at ports %d and %d share stream index %d" other port i
      | None -> Hashtbl.add seen i port);
      if List.mem i free then
        errf ctx Dataplane Stream_index_corrupt subj
          "index %d is both in use (leg at port %d) and on the free list" i port;
      if i >= next then
        errf ctx Dataplane Stream_index_corrupt subj
          "leg at port %d uses index %d beyond the allocation frontier %d" port i next)
    used

(* --- resource re-audit ------------------------------------------------------ *)

let check_resources ctx ~totals sw =
  let p = sw.sw_program in
  let subj = Printf.sprintf "sw%d/resources" sw.sw_index in
  if p.R.ingress_parser_depth > totals.R.max_parser_depth then
    errf ctx Resources Resource_budget subj
      "ingress parser depth %d exceeds the chip limit of %d" p.R.ingress_parser_depth
      totals.R.max_parser_depth;
  if p.R.egress_parser_depth > totals.R.max_parser_depth then
    errf ctx Resources Resource_budget subj
      "egress parser depth %d exceeds the chip limit of %d" p.R.egress_parser_depth
      totals.R.max_parser_depth;
  if not (R.stages_ok ~totals p) then
    errf ctx Resources Resource_budget subj
      "pipeline needs more than the %d available stages" totals.R.stages;
  let sram = R.sram_blocks_used ~totals p in
  let sram_budget = totals.R.sram_blocks * totals.R.stages in
  if sram > sram_budget then
    errf ctx Resources Resource_budget subj "%d SRAM blocks exceed the chip budget of %d"
      sram sram_budget
  else if sram * 10 >= sram_budget * 9 then
    warnf ctx Resources Resource_budget subj "%d SRAM blocks, within 10%% of the budget %d"
      sram sram_budget;
  if p.R.phv_bits_used > totals.R.phv_bits then
    errf ctx Resources Resource_budget subj "%d PHV bits exceed the %d available"
      p.R.phv_bits_used totals.R.phv_bits;
  if p.R.vliw_used > totals.R.vliw_slots * totals.R.stages then
    errf ctx Resources Resource_budget subj "%d VLIW slots exceed the %d available"
      p.R.vliw_used
      (totals.R.vliw_slots * totals.R.stages)

(* --- agent shadow vs data-plane ground truth -------------------------------- *)

let check_shadow ctx sw =
  let subj_meeting amid = Printf.sprintf "sw%d/meeting:%d" sw.sw_index amid in
  List.iter
    (fun (am : A.meeting_view) ->
      let subj = subj_meeting am.A.amv_id in
      if T.design_of am.A.amv_handle <> am.A.amv_design then
        errf ctx Dataplane Shadow_drift subj
          "agent believes the meeting runs design %s; the trees run %s"
          (match am.A.amv_design with
          | T.Two_party -> "two-party"
          | T.Nra -> "nra"
          | T.Ra_r -> "ra-r"
          | T.Ra_sr -> "ra-sr")
          (match T.design_of am.A.amv_handle with
          | T.Two_party -> "two-party"
          | T.Nra -> "nra"
          | T.Ra_r -> "ra-r"
          | T.Ra_sr -> "ra-sr");
      let tree_members = T.participants am.A.amv_handle in
      List.iter
        (fun (pid, port) ->
          if not (List.mem (pid, port) tree_members) then
            errf ctx Dataplane Shadow_drift subj
              "agent member %d (egress %d) is not registered in the replication trees"
              pid port)
        am.A.amv_members;
      List.iter
        (fun (pid, port) ->
          if not (List.mem (pid, port) am.A.amv_members) then
            errf ctx Dataplane Shadow_drift subj
              "tree participant %d (egress %d) is unknown to the agent" pid port)
        tree_members;
      List.iter
        (fun (sv : A.stream_view) ->
          let subj = Printf.sprintf "%s/uplink:%d" subj sv.A.asv_uplink_port in
          (match
             List.find_opt
               (fun (u : D.uplink_view) -> u.D.uv_port = sv.A.asv_uplink_port)
               sw.sw_uplinks
           with
          | None ->
              errf ctx Dataplane Shadow_drift subj
                "agent stream (sender %d) has no data-plane uplink entry"
                sv.A.asv_sender
          | Some u ->
              if
                u.D.uv_sender <> sv.A.asv_sender
                || u.D.uv_video_ssrc <> sv.A.asv_video_ssrc
                || u.D.uv_audio_ssrc <> sv.A.asv_audio_ssrc
              then
                errf ctx Dataplane Shadow_drift subj
                  "uplink identifiers disagree (agent %d/%#x, data plane %d/%#x)"
                  sv.A.asv_sender sv.A.asv_video_ssrc u.D.uv_sender u.D.uv_video_ssrc;
              if T.handle_id u.D.uv_meeting <> T.handle_id am.A.amv_handle then
                errf ctx Dataplane Shadow_drift subj
                  "uplink points at tree handle %d; the agent meeting uses %d"
                  (T.handle_id u.D.uv_meeting)
                  (T.handle_id am.A.amv_handle);
              if
                List.map fst (Array.to_list sv.A.asv_renditions)
                <> Array.to_list u.D.uv_renditions
              then
                errf ctx Dataplane Shadow_drift subj
                  "simulcast renditions disagree between agent and data plane");
          List.iter
            (fun (al : A.leg_view) ->
              if
                not
                  (List.exists
                     (fun (l : D.leg_view) ->
                       l.D.lv_src_port = al.A.alv_port
                       && l.D.lv_receiver = al.A.alv_receiver
                       && l.D.lv_uplink_port = sv.A.asv_uplink_port)
                     sw.sw_legs)
              then
                errf ctx Dataplane Shadow_drift subj
                  "agent leg at port %d (receiver %d) has no data-plane egress entry"
                  al.A.alv_port al.A.alv_receiver)
            sv.A.asv_legs)
        am.A.amv_streams)
    sw.sw_agent_meetings;
  let agent_streams =
    List.concat_map
      (fun (am : A.meeting_view) ->
        List.map (fun (sv : A.stream_view) -> sv.A.asv_uplink_port) am.A.amv_streams)
      sw.sw_agent_meetings
  in
  List.iter
    (fun (u : D.uplink_view) ->
      if not (List.mem u.D.uv_port agent_streams) then
        errf ctx Dataplane Shadow_drift
          (Printf.sprintf "sw%d/uplink:%d" sw.sw_index u.D.uv_port)
          "data-plane uplink (sender %d) is unknown to the agent" u.D.uv_sender)
    sw.sw_uplinks;
  let agent_legs =
    List.concat_map
      (fun (am : A.meeting_view) ->
        List.concat_map
          (fun (sv : A.stream_view) ->
            List.map
              (fun (al : A.leg_view) -> (al.A.alv_port, al.A.alv_receiver))
              sv.A.asv_legs)
          am.A.amv_streams)
      sw.sw_agent_meetings
  in
  List.iter
    (fun (l : D.leg_view) ->
      if not (List.mem (l.D.lv_src_port, l.D.lv_receiver) agent_legs) then
        errf ctx Dataplane Shadow_drift
          (Printf.sprintf "sw%d/leg:%d" sw.sw_index l.D.lv_src_port)
          "data-plane egress leg (receiver %d) is unknown to the agent" l.D.lv_receiver)
    sw.sw_legs

(* --- controller intent vs agent shadow -------------------------------------- *)

let check_intent ctx snap =
  let intent = snap.snap_intent in
  let find_participant pid =
    List.find_opt (fun (p : C.participant_view) -> p.C.pv_pid = pid) intent.C.in_participants
  in
  let dead idx = dead_in intent idx in
  List.iter
    (fun (mv : C.meeting_view) ->
      List.iter
        (fun pid ->
          match find_participant pid with
          | None ->
              errf ctx Controller Intent_drift
                (Printf.sprintf "meeting:%d" mv.C.cmv_mid)
                "member %d has no participant record" pid
          | Some p ->
              if p.C.pv_meeting <> mv.C.cmv_mid then
                errf ctx Controller Intent_drift
                  (Printf.sprintf "meeting:%d" mv.C.cmv_mid)
                  "member %d records meeting %d instead" pid p.C.pv_meeting)
        mv.C.cmv_members;
      List.iter
        (fun (idx, agent_mid) ->
          if dead idx then ()
          else if agent_mid < 0 then
            errf ctx Controller Intent_drift
              (Printf.sprintf "sw%d/meeting:%d" idx mv.C.cmv_mid)
              "site still carries provisional agent meeting id %d though the switch is \
               not Dead"
              agent_mid
          else
          match List.find_opt (fun sw -> sw.sw_index = idx) snap.snap_switches with
          | None ->
              errf ctx Controller Intent_drift
                (Printf.sprintf "meeting:%d" mv.C.cmv_mid)
                "site on switch %d, which is not part of the snapshot" idx
          | Some sw -> (
              let subj = Printf.sprintf "sw%d/meeting:%d" idx mv.C.cmv_mid in
              match
                List.find_opt
                  (fun (am : A.meeting_view) -> am.A.amv_id = agent_mid)
                  sw.sw_agent_meetings
              with
              | None ->
                  errf ctx Agent Intent_drift subj
                    "controller intends agent meeting %d; the agent has no such meeting"
                    agent_mid
              | Some am ->
                  let expected_members =
                    List.filter_map
                      (fun pid ->
                        Option.bind (find_participant pid) (fun p ->
                            Option.map
                              (fun port -> (pid, port))
                              (List.assoc_opt idx p.C.pv_sites)))
                      mv.C.cmv_members
                    @ List.filter_map
                        (fun (r : C.relay_view) ->
                          if r.C.rv_meeting = mv.C.cmv_mid && r.C.rv_src = idx then
                            Some (r.C.rv_pid, r.C.rv_egress_port)
                          else None)
                        intent.C.in_relays
                  in
                  List.iter
                    (fun (pid, port) ->
                      if not (List.mem (pid, port) am.A.amv_members) then
                        errf ctx Agent Intent_drift subj
                          "controller intends participant %d (egress %d); the agent does not register it"
                          pid port)
                    expected_members;
                  List.iter
                    (fun (pid, port) ->
                      if not (List.mem (pid, port) expected_members) then
                        errf ctx Agent Intent_drift subj
                          "agent registers participant %d (egress %d) the controller does not intend"
                          pid port)
                    am.A.amv_members;
                  let expected_streams =
                    List.concat_map
                      (fun pid ->
                        match find_participant pid with
                        | None -> []
                        | Some p ->
                            let cam =
                              match List.assoc_opt idx p.C.pv_cam_ports with
                              | Some port ->
                                  [ (port, pid, p.C.pv_video_ssrc, p.C.pv_audio_ssrc) ]
                              | None -> []
                            in
                            let screen =
                              match
                                (List.assoc_opt idx p.C.pv_screen_ports, p.C.pv_screen_ssrc)
                              with
                              | Some port, Some vs -> [ (port, pid, vs, vs + 1) ]
                              | Some port, None -> [ (port, pid, -1, -1) ]
                              | None, _ -> []
                            in
                            cam @ screen)
                      mv.C.cmv_members
                  in
                  List.iter
                    (fun (port, sender, vs, audio) ->
                      match
                        List.find_opt
                          (fun (s : A.stream_view) -> s.A.asv_uplink_port = port)
                          am.A.amv_streams
                      with
                      | None ->
                          errf ctx Agent Intent_drift subj
                            "controller intends an uplink at port %d (sender %d); the agent has none"
                            port sender
                      | Some s ->
                          if
                            s.A.asv_sender <> sender
                            || vs >= 0
                               && (s.A.asv_video_ssrc <> vs || s.A.asv_audio_ssrc <> audio)
                          then
                            errf ctx Agent Intent_drift subj
                              "uplink at port %d disagrees with intent (sender %d vs %d, video SSRC %#x vs %#x)"
                              port sender s.A.asv_sender vs s.A.asv_video_ssrc)
                    expected_streams;
                  List.iter
                    (fun (s : A.stream_view) ->
                      if
                        not
                          (List.exists
                             (fun (port, _, _, _) -> port = s.A.asv_uplink_port)
                             expected_streams)
                      then
                        errf ctx Agent Intent_drift subj
                          "agent carries an uplink at port %d (sender %d) the controller does not intend"
                          s.A.asv_uplink_port s.A.asv_sender)
                    am.A.amv_streams))
        mv.C.cmv_sites)
    intent.C.in_meetings;
  List.iter
    (fun sw ->
      if dead sw.sw_index then ()
      else
      List.iter
        (fun (am : A.meeting_view) ->
          let referenced =
            List.exists
              (fun (mv : C.meeting_view) ->
                List.exists
                  (fun (idx, amid) -> idx = sw.sw_index && amid = am.A.amv_id)
                  mv.C.cmv_sites)
              intent.C.in_meetings
          in
          if not referenced then
            errf ctx Agent Intent_drift
              (Printf.sprintf "sw%d/meeting:%d" sw.sw_index am.A.amv_id)
              "agent meeting is not part of any controller meeting")
        sw.sw_agent_meetings)
    snap.snap_switches;
  List.iter
    (fun (r : C.relay_view) ->
      if r.C.rv_egress_port < 0 then
        errf ctx Controller Intent_drift
          (Printf.sprintf "relay:%d->%d" r.C.rv_src r.C.rv_dst)
          "relay receiver for meeting %d has no egress port allocated" r.C.rv_meeting)
    intent.C.in_relays

(* --- PRE fan-out cache re-audit ---------------------------------------------

   The data plane serves replication results from a memo table keyed by
   the packet metadata tuple; the invalidation discipline (flush on every
   tree/node/L2-XID mutation) is supposed to make a stale entry
   impossible. Re-derive every resident entry from the live trees and
   diff — the cache-coherence analogue of the behavioural reachability
   check. *)

(* Traced packets whose fan-out was served for this exact cache key: the
   per-packet timelines that let an operator see where a stale entry's
   replicas actually went. *)
let fanout_trace_ids ~mgid ~l1_xid ~rid ~l2_xid =
  let module Tr = Scallop_obs.Trace in
  let matches (e : Tr.event) =
    e.Tr.name = "pre_fanout" && e.Tr.trace >= 0
    && List.for_all
         (fun (k, v) ->
           match List.assoc_opt k e.Tr.args with Some (Tr.I x) -> x = v | _ -> false)
         [ ("mgid", mgid); ("l1_xid", l1_xid); ("rid", rid); ("l2_xid", l2_xid) ]
  in
  List.sort_uniq compare
    (List.filter_map
       (fun e -> if matches e then Some e.Tr.trace else None)
       (Tr.events ()))

let check_pre_cache ctx sw =
  P.iter_cache sw.sw_pre (fun ~mgid ~l1_xid ~rid ~l2_xid ~replicas ->
      let fresh = P.replicate sw.sw_pre ~mgid ~l1_xid ~rid ~l2_xid in
      if Array.to_list replicas <> fresh then
        errf_traced ctx
          ~trace_ids:(fanout_trace_ids ~mgid ~l1_xid ~rid ~l2_xid)
          Pre Stale_pre_cache
          (Printf.sprintf "sw%d/pre-cache:%#x" sw.sw_index mgid)
          "cached fan-out for (mgid=%#x, l1_xid=%d, rid=%d, l2_xid=%d) has %d \
           replicas; recomputing from the live trees yields %d — invalidation \
           discipline violated"
          mgid l1_xid rid l2_xid (Array.length replicas) (List.length fresh))

(* --- failure-detector state --------------------------------------------------

   Losing ops to the deferred-queue cap is tolerated (the heal path falls
   back to a full resync) but worth surfacing: an operator seeing it should
   raise the cap or shorten outages. Warning severity — [assert_clean]
   gates on errors only, and a forced resync converges regardless. *)

let check_health ctx snap =
  List.iter
    (fun (h : C.health_view) ->
      if h.C.hv_dropped > 0 then
        warnf ctx Controller Deferred_overflow
          (Printf.sprintf "sw%d/deferred" h.C.hv_agent)
          "deferred queue overflowed: %d op(s) dropped (%d still queued) — heal will \
           use a full resync instead of a drain"
          h.C.hv_dropped h.C.hv_deferred)
    snap.snap_intent.C.in_health

(* --- entry points ------------------------------------------------------------ *)

let check ?(totals = R.tofino2) snap =
  let ctx = { acc = [] } in
  List.iter
    (fun sw ->
      check_pre ctx sw;
      check_pre_cache ctx sw;
      check_xids ctx sw;
      if not (dead_in snap.snap_intent sw.sw_index) then
        List.iter (check_uplink ctx snap.snap_intent sw) sw.sw_uplinks;
      check_legs ctx sw;
      check_feedback ctx sw;
      check_tables ctx sw;
      check_stream_indices ctx sw;
      check_resources ctx ~totals sw;
      check_shadow ctx sw)
    snap.snap_switches;
  check_intent ctx snap;
  check_health ctx snap;
  List.rev ctx.acc

let verify ?totals ctrl = check ?totals (snapshot ctrl)

(* Structural hash of the pure-data projection of the snapshot triple —
   live [Trees.t]/[Pre.t] handles and the resource program are excluded
   (they are derived or carry closures). Two schedules converging to the
   same controller intent + agent shadow + data-plane tables hash equal,
   which is what the explorer's state-dedup pruning keys on. *)
let state_hash snap =
  let pure_switch sw =
    ( sw.sw_index,
      sw.sw_agent_meetings,
      sw.sw_uplinks,
      sw.sw_legs,
      sw.sw_feedback,
      sw.sw_stream_free,
      sw.sw_stream_next,
      sw.sw_l2_refs,
      sw.sw_pre_state.ps_nodes,
      sw.sw_pre_state.ps_trees,
      sw.sw_pre_state.ps_l2_xids )
  in
  Hashtbl.hash_param 256 1024
    (snap.snap_intent, List.map pure_switch snap.snap_switches)

let assert_clean ?(what = "state verification") ctrl =
  match errors (verify ctrl) with
  | [] -> ()
  | errs ->
      failwith
        (Printf.sprintf "%s: %d invariant violation(s)\n%s" what (List.length errs)
           (report errs))

(* --- anti-entropy -------------------------------------------------------------

   Periodic reconciliation: verify, replay intent onto every reachable
   switch an error finding implicates, verify again. Per-switch finding
   subjects follow the ["sw<idx>/..."] convention, which is how a finding
   names its repair target; controller-only findings (bad member records)
   have no switch to repair and are left to surface. *)

type repair_report = {
  rr_before : finding list;
  rr_repairs : (int * int option) list;
  rr_after : finding list;
}

let finding_switch f =
  try Some (Scanf.sscanf f.subject "sw%d/" (fun i -> i))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let reconcile ?totals ctrl =
  let before = check ?totals (snapshot ctrl) in
  let targets =
    errors before
    |> List.filter_map finding_switch
    |> List.sort_uniq compare
    |> List.filter (fun idx -> C.agent_health ctrl idx <> C.Dead)
  in
  let repairs = List.map (fun idx -> (idx, C.resync_switch ctrl idx)) targets in
  let after = if repairs = [] then before else check ?totals (snapshot ctrl) in
  { rr_before = before; rr_repairs = repairs; rr_after = after }

(* --- controller cluster invariants -------------------------------------------

   Two invariants tie the fault-tolerance design together. First, at
   most one live instance may hold the Acting role at a quiescent point
   — the lease check is run here first, so a fenced-out primary that
   has not written since its deposition gets its chance to notice
   before being counted (under [Mutation.Skip_fencing_check] the lease
   check is inert and a genuine split brain surfaces). Second, the
   journal must be a faithful record of intent: a standby that has
   applied every entry must reconstruct the acting primary's
   introspection state exactly. *)

let check_cluster cluster =
  let module Cl = Scallop.Cluster in
  let ctx = { acc = [] } in
  let insts = [ Cl.primary cluster; Cl.standby cluster ] in
  List.iter (fun c -> if C.role c = C.Acting then C.refresh_role c) insts;
  let acting = List.filter (fun c -> C.role c = C.Acting && C.alive c) insts in
  (match acting with
  | _ :: _ :: _ ->
      errf ctx Controller Split_brain "cluster/roles"
        "multiple live acting primaries: %s — fencing failed to depose the old \
         primary"
        (String.concat ", "
           (List.map
              (fun c -> Printf.sprintf "%s(fence=%d)" (C.label c) (C.fence c))
              acting))
  | _ -> ());
  (match (Cl.standby_instance cluster, acting) with
  | Some sb, [ act ] ->
      ignore (C.apply_tail sb);
      let fa = C.intent_fingerprint act and fs = C.intent_fingerprint sb in
      if fa <> fs then
        errf ctx Controller Journal_drift "cluster/journal"
          "caught-up standby %s (applied=%d) does not reproduce acting %s \
           (fence=%d): journal replay diverges from live intent"
          (C.label sb) (C.journal_applied sb) (C.label act) (C.fence act)
  | _ -> ());
  List.rev ctx.acc
