(** Process-wide metrics registry: named counters, gauges and log-bucketed
    histograms with a Prometheus-style text dump and a JSON export.

    Hot-path discipline: a handle returned by {!counter} / {!gauge} /
    {!histogram} is a plain mutable record the caller keeps; {!incr},
    {!add} and {!set} are O(1) field mutations with zero allocation. The
    registry is only consulted at registration and dump time, never on
    the update path.

    Registration has {e replace} semantics: registering a (name, labels)
    pair that already exists installs a fresh zeroed handle and detaches
    the previous one (its holder can keep mutating it; dumps show the new
    instance). Components that are created per simulated world — data
    planes, PRE instances, RPC clients — therefore own their metrics
    without cross-world aggregation: the dump always reflects the most
    recently created instance under each name. *)

type counter
type gauge

val counter : ?labels:(string * string) list -> ?help:string -> string -> counter
(** Register (or replace) a counter starting at 0. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?labels:(string * string) list -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?labels:(string * string) list ->
  ?help:string ->
  ?bounds:float array ->
  string ->
  Scallop_util.Stats.Histogram.t
(** Register (or replace) a {!Scallop_util.Stats.Histogram}; observe on
    the returned handle directly. *)

val register_callback :
  ?labels:(string * string) list -> ?help:string -> string -> (unit -> float) -> unit
(** A gauge whose value is polled at dump time — for quantities another
    data structure already maintains (cache residency, table occupancy). *)

val register_histogram :
  ?labels:(string * string) list ->
  ?help:string ->
  string ->
  Scallop_util.Stats.Histogram.t ->
  unit
(** Register a histogram handle the caller already owns and keeps
    observing into — unlike {!histogram}, which mints a fresh zeroed one. *)

val unregister : ?labels:(string * string) list -> string -> unit

val dump : unit -> string
(** Prometheus text exposition format, entries sorted by name then
    labels — deterministic for a deterministic run. *)

val dump_json : unit -> string
(** One JSON object keyed by [name{labels}]; histograms expand to
    [{count, sum, p50, p99, buckets}] where [buckets] is the cumulative
    [["le", count], ...] list (only non-empty cumulative buckets; ["+Inf"]
    for the overflow bound). *)

val reset : unit -> unit
(** Drop every registered entry (tests / fresh worlds). Existing handles
    keep working but are no longer dumped. *)
