(** Deterministic structured tracing: spans and instant events stamped
    with virtual time, collected in a ring buffer and exported as Chrome
    trace-event JSON (open the file in [chrome://tracing] or Perfetto).

    Determinism contract: timestamps are supplied by callers from
    {!Netsim.Engine.now} virtual time, trace ids come from a resettable
    monotonic allocator, and the exporter serializes the ring buffer in
    insertion order with integer-only arithmetic — so two runs with the
    same seed produce byte-identical trace files.

    Gating: {!enabled} is a single integer comparison against the current
    level; every instrumentation site guards with it, so a disabled
    tracer costs one predictable branch per site and performs no
    allocation and no sink writes. Packet-level events can additionally
    be sampled 1-in-N via {!set_sample_every}. *)

(** Levels are cumulative: [Rpc] captures control-plane spans only,
    [Packet] adds per-packet causal events, [Verbose] adds suppressed
    replicas, per-attempt RPC retries and other high-volume detail. *)
type level = Off | Rpc | Packet | Verbose

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** [enabled l] — the current level is at least [l]. The hot-path gate. *)

type value = I of int | S of string

type event = {
  ts : int;  (** virtual nanoseconds *)
  dur : int;  (** span duration in ns; [-1] for instant events *)
  cat : string;  (** component: "dp", "pre", "link", "client", "rpc" *)
  name : string;
  trace : int;  (** per-packet trace id; [-1] when unrelated to a packet *)
  args : (string * value) list;
}

val instant :
  ts:int -> ?trace:int -> ?args:(string * value) list -> cat:string -> string -> unit

val complete :
  ts:int ->
  dur:int ->
  ?trace:int ->
  ?args:(string * value) list ->
  cat:string ->
  string ->
  unit
(** A span that already finished: begin time [ts], duration [dur]. *)

val next_packet_id : unit -> int
(** Allocate the next per-packet trace id, honouring the sampling rate:
    returns [-1] for packets sampled out (callers skip all events for
    them). Ids are dense and start at 0 after {!reset}. *)

val set_sample_every : int -> unit
(** Trace every Nth packet (default 1 = all). Deterministic counter-based
    sampling, not random. *)

val set_capacity : int -> unit
(** Resize the ring buffer (drops buffered events). Default 262,144. *)

val writes : unit -> int
(** Total events written to the sink since the last {!reset} — 0 proves a
    disabled-tracing run never touched the buffer. *)

val dropped : unit -> int
(** Events overwritten after the ring wrapped. *)

val first_retained : unit -> int
(** Global index (0-based since reset) of the oldest event still in the
    buffer — equals {!dropped}. Evidence windows reaching below this
    index are truncated. *)

val register_metrics : unit -> unit
(** (Re-)register [scallop_trace_dropped_total] / [scallop_trace_writes_total]
    callback metrics in {!Metrics}. Done once at module init; call again
    after a [Metrics.reset]. *)

val set_clock : (unit -> int) -> unit
(** Install the virtual-time source used by {!now} — wired to
    [Netsim.Engine.now] at engine creation so components without an
    engine handle (e.g. the PRE) can stamp events. *)

val now : unit -> int
(** Current virtual time per the installed clock (0 before any engine
    exists). *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val events_indexed : unit -> (int * event) list
(** Buffered events paired with their global write index (stable across
    ring wraparound) — the coordinate system attribution findings cite. *)

val timeline : trace:int -> event list
(** Every buffered event carrying the given per-packet trace id, in
    order — the causal ingress → fan-out → egress → link → receiver
    timeline of one packet. *)

val to_chrome_json : unit -> string
(** The whole buffer in Chrome trace-event format (JSON object with a
    [traceEvents] array). Byte-deterministic for identical event
    sequences. *)

val write_chrome_json : string -> unit
(** [to_chrome_json] into a file. *)

val set_listener : (event -> unit) option -> unit
(** Install (or clear) an online event tap, called synchronously for every
    event as it is written — the hook {!Scallop_mc}'s temporal checker
    evaluates rules through, immune to ring-buffer wraparound. The
    listener must not emit events itself. Default: none. *)

val reset : unit -> unit
(** Clear the buffer, counters and the trace-id allocator. Keeps the
    level and capacity (and any installed listener). *)
