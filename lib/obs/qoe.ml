module Stats = Scallop_util.Stats
module Timeseries = Scallop_util.Timeseries

type media = Camera | Screen
type kind = Video | Audio

type key = {
  k_meeting : int;
  k_receiver : int;
  k_sender : int;
  k_media : media;
  k_kind : kind;
}

let media_str = function Camera -> "cam" | Screen -> "screen"
let kind_str = function Video -> "video" | Audio -> "audio"

let media_of_str = function
  | "cam" -> Some Camera
  | "screen" -> Some Screen
  | _ -> None

let kind_of_str = function
  | "video" -> Some Video
  | "audio" -> Some Audio
  | _ -> None

let key_str k =
  Printf.sprintf "m%d/p%d<-p%d/%s/%s" k.k_meeting k.k_receiver k.k_sender
    (media_str k.k_media) (kind_str k.k_kind)

let layers = 3
let default_bin_ns = 1_000_000_000
let m2e_ring = 16384
let trace_ring = 8192

(* Mouth-to-ear is milliseconds: 1 ms .. 10 s at 10 buckets/decade. *)
let m2e_bounds = Stats.Histogram.log_bounds ~lo:1.0 ~hi:1e4 ~per_decade:10

type t = {
  key : key;
  bin_ns : int;
  mutable host : string;
      (* receiver host address ("10.0.1.3"); names the victim's access
         links ("up:<host>"/"down:<host>") for attribution *)
  mutable first_ns : int;  (* -1 until the first observation *)
  mutable last_ns : int;
  mutable packets : int;
  mutable bytes : int;
  mutable gap_packets : int;
  mutable recovered : int;
  mutable duplicates : int;
  mutable frames : int;
  layer_frames : int array;
  layer_series : Timeseries.t array;
  mutable freeze_count : int;
  mutable frozen_closed_ns : int;
  mutable freeze_since : int;  (* -1 = not frozen *)
  mutable freeze_intervals : (int * int) list;  (* closed, newest first *)
  m2e : Stats.Histogram.t;
  (* Ring of timestamped m2e samples for windowed percentiles; the
     histogram above keeps the all-time distribution for /metrics. *)
  m2e_ts : int array;
  m2e_v : float array;
  mutable m2e_next : int;
  mutable m2e_written : int;
  loss_series : Timeseries.t;
  recovered_series : Timeseries.t;
  packet_series : Timeseries.t;
  (* Ring of (trace id, arrival time) — the causal hooks attribution
     walks backwards from. *)
  tr_id : int array;
  tr_ts : int array;
  mutable tr_next : int;
  mutable tr_written : int;
}

let registry : (key, t) Hashtbl.t = Hashtbl.create 32

let labels_of_key k =
  [
    ("meeting", string_of_int k.k_meeting);
    ("receiver", string_of_int k.k_receiver);
    ("sender", string_of_int k.k_sender);
    ("media", media_str k.k_media);
    ("kind", kind_str k.k_kind);
  ]

let register_metrics t =
  let labels = labels_of_key t.key in
  let cb name help f = Metrics.register_callback ~labels ~help name f in
  cb "scallop_qoe_packets_total" "Media packets received" (fun () ->
      float_of_int t.packets);
  cb "scallop_qoe_gap_packets_total" "Sequence-gap packets noticed" (fun () ->
      float_of_int t.gap_packets);
  cb "scallop_qoe_recovered_total" "Gaps later filled (retransmit/reorder)"
    (fun () -> float_of_int t.recovered);
  cb "scallop_qoe_frames_total" "Frames decoded" (fun () -> float_of_int t.frames);
  cb "scallop_qoe_freezes_total" "Playback freeze intervals begun" (fun () ->
      float_of_int t.freeze_count);
  cb "scallop_qoe_frozen_ms" "Total frozen playback time (closed intervals)"
    (fun () -> float_of_int t.frozen_closed_ns /. 1e6);
  Metrics.register_histogram ~labels
    ~help:"Capture-to-decode latency (virtual-time ms)"
    "scallop_qoe_mouth_to_ear_ms" t.m2e

let create_collector ?(bin_ns = default_bin_ns) key =
  let t =
    {
      key;
      bin_ns;
      host = "";
      first_ns = -1;
      last_ns = -1;
      packets = 0;
      bytes = 0;
      gap_packets = 0;
      recovered = 0;
      duplicates = 0;
      frames = 0;
      layer_frames = Array.make layers 0;
      layer_series = Array.init layers (fun _ -> Timeseries.create ~bin_ns);
      freeze_count = 0;
      frozen_closed_ns = 0;
      freeze_since = -1;
      freeze_intervals = [];
      m2e = Stats.Histogram.create ~bounds:m2e_bounds ();
      m2e_ts = Array.make m2e_ring 0;
      m2e_v = Array.make m2e_ring 0.0;
      m2e_next = 0;
      m2e_written = 0;
      loss_series = Timeseries.create ~bin_ns;
      recovered_series = Timeseries.create ~bin_ns;
      packet_series = Timeseries.create ~bin_ns;
      tr_id = Array.make trace_ring (-1);
      tr_ts = Array.make trace_ring 0;
      tr_next = 0;
      tr_written = 0;
    }
  in
  Hashtbl.replace registry key t;
  register_metrics t;
  t

let collector ?bin_ns key =
  match Hashtbl.find_opt registry key with
  | Some t -> t
  | None -> create_collector ?bin_ns key

let find key = Hashtbl.find_opt registry key
let key_of t = t.key
let set_host t host = t.host <- host
let host t = t.host

let all () =
  Hashtbl.fold (fun _ t acc -> t :: acc) registry []
  |> List.sort (fun a b -> compare a.key b.key)

let reset () = Hashtbl.reset registry

let touch t time_ns =
  if t.first_ns < 0 then t.first_ns <- time_ns;
  if time_ns > t.last_ns then t.last_ns <- time_ns

(* --- collection hooks ------------------------------------------------------ *)

let on_packet t ~time_ns ~size =
  touch t time_ns;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + size;
  Timeseries.incr t.packet_series time_ns

let on_gap t ~time_ns ~count =
  if count > 0 then begin
    touch t time_ns;
    t.gap_packets <- t.gap_packets + count;
    Timeseries.add t.loss_series time_ns (float_of_int count)
  end

let on_gap_filled t ~time_ns =
  touch t time_ns;
  t.recovered <- t.recovered + 1;
  Timeseries.incr t.recovered_series time_ns

let on_duplicate t ~time_ns =
  touch t time_ns;
  t.duplicates <- t.duplicates + 1

let on_frame t ~time_ns ~layer =
  touch t time_ns;
  t.frames <- t.frames + 1;
  let l = if layer < 0 then 0 else if layer >= layers then layers - 1 else layer in
  t.layer_frames.(l) <- t.layer_frames.(l) + 1;
  Timeseries.incr t.layer_series.(l) time_ns

let on_mouth_to_ear t ~time_ns ~ms =
  if not (Float.is_nan ms) then begin
    touch t time_ns;
    Stats.Histogram.observe t.m2e ms;
    t.m2e_ts.(t.m2e_next) <- time_ns;
    t.m2e_v.(t.m2e_next) <- ms;
    t.m2e_next <- (t.m2e_next + 1) mod m2e_ring;
    t.m2e_written <- t.m2e_written + 1
  end

let on_freeze_begin t ~time_ns =
  touch t time_ns;
  if t.freeze_since < 0 then begin
    t.freeze_count <- t.freeze_count + 1;
    t.freeze_since <- time_ns
  end

let on_freeze_end t ~time_ns =
  touch t time_ns;
  if t.freeze_since >= 0 then begin
    let from = t.freeze_since in
    let until = Stdlib.max from time_ns in
    t.freeze_since <- -1;
    t.frozen_closed_ns <- t.frozen_closed_ns + (until - from);
    t.freeze_intervals <- (from, until) :: t.freeze_intervals
  end

(* A decode stall detected retroactively (the receiver only learns the
   playback was starved when the next frame finally decodes): record the
   closed interval directly without touching the open-freeze state. *)
let on_stall t ~from_ns ~until_ns =
  if until_ns > from_ns then begin
    touch t until_ns;
    t.freeze_count <- t.freeze_count + 1;
    t.frozen_closed_ns <- t.frozen_closed_ns + (until_ns - from_ns);
    t.freeze_intervals <- (from_ns, until_ns) :: t.freeze_intervals
  end

let note_trace t ~time_ns ~trace =
  if trace >= 0 then begin
    t.tr_id.(t.tr_next) <- trace;
    t.tr_ts.(t.tr_next) <- time_ns;
    t.tr_next <- (t.tr_next + 1) mod trace_ring;
    t.tr_written <- t.tr_written + 1
  end

(* --- windowed queries ------------------------------------------------------ *)

let overlap (a0, a1) (b0, b1) = Stdlib.max 0 (Stdlib.min a1 b1 - Stdlib.max a0 b0)

let frozen_ns_between t ~from_ns ~until_ns =
  let closed =
    List.fold_left
      (fun acc iv -> acc + overlap iv (from_ns, until_ns))
      0 t.freeze_intervals
  in
  if t.freeze_since >= 0 then
    closed + overlap (t.freeze_since, until_ns) (from_ns, until_ns)
  else closed

(* Fraction of the window this stream existed for and was frozen. The
   denominator clamps to the stream's lifetime so a freshly created
   stream isn't judged over history it wasn't alive for. *)
let freeze_ratio_between t ~from_ns ~until_ns =
  if t.first_ns < 0 then None
  else
    let from_ns = Stdlib.max from_ns t.first_ns in
    let span = until_ns - from_ns in
    if span <= 0 then None
    else Some (float_of_int (frozen_ns_between t ~from_ns ~until_ns) /. float_of_int span)

let ring_fold ~written ~next ~cap ~f init =
  let n = Stdlib.min written cap in
  let start = if written <= cap then 0 else next in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc ((start + i) mod cap)
  done;
  !acc

let m2e_samples_between t ~from_ns ~until_ns =
  ring_fold ~written:t.m2e_written ~next:t.m2e_next ~cap:m2e_ring
    ~f:(fun acc i ->
      let ts = t.m2e_ts.(i) in
      if ts >= from_ns && ts <= until_ns then t.m2e_v.(i) :: acc else acc)
    []

let m2e_percentile_between t ~from_ns ~until_ns ~p =
  match m2e_samples_between t ~from_ns ~until_ns with
  | [] -> None
  | l ->
      let a = Array.of_list l in
      Array.sort Float.compare a;
      Some (Stats.percentile_of_array a p)

let m2e_bad_fraction_between t ~from_ns ~until_ns ~threshold_ms =
  match m2e_samples_between t ~from_ns ~until_ns with
  | [] -> None
  | l ->
      let total = List.length l in
      let bad = List.length (List.filter (fun v -> v > threshold_ms) l) in
      Some (float_of_int bad /. float_of_int total)

let series_sum_between series ~from_ns ~until_ns =
  Timeseries.fold series ~init:0.0 ~f:(fun acc time v ->
      if time + Timeseries.bin_ns series > from_ns && time <= until_ns then acc +. v
      else acc)

let loss_ratio_between t ~from_ns ~until_ns =
  let gaps = series_sum_between t.loss_series ~from_ns ~until_ns in
  let rec_ = series_sum_between t.recovered_series ~from_ns ~until_ns in
  let pkts = series_sum_between t.packet_series ~from_ns ~until_ns in
  let unrecovered = Float.max 0.0 (gaps -. rec_) in
  if pkts +. gaps <= 0.0 then None else Some (unrecovered /. (pkts +. gaps))

let traces_between t ~from_ns ~until_ns =
  ring_fold ~written:t.tr_written ~next:t.tr_next ~cap:trace_ring
    ~f:(fun acc i ->
      let ts = t.tr_ts.(i) in
      if ts >= from_ns && ts <= until_ns && t.tr_id.(i) >= 0 then t.tr_id.(i) :: acc
      else acc)
    []
  |> List.sort_uniq compare

(* --- summaries ------------------------------------------------------------- *)

type summary = {
  s_key : key;
  s_packets : int;
  s_bytes : int;
  s_gap_packets : int;
  s_recovered : int;
  s_duplicates : int;
  s_frames : int;
  s_layer_share : float array;  (** decoded-frame share per temporal layer *)
  s_freeze_count : int;
  s_frozen_ms : float;
  s_freeze_ratio : float;
  s_m2e_p50_ms : float option;
  s_m2e_p99_ms : float option;
  s_loss_ratio : float;
}

let summary t ~now_ns =
  let from_ns = if t.first_ns < 0 then 0 else t.first_ns in
  let span = Stdlib.max 1 (now_ns - from_ns) in
  let frozen = frozen_ns_between t ~from_ns ~until_ns:now_ns in
  let layer_share =
    if t.frames = 0 then Array.make layers 0.0
    else Array.map (fun n -> float_of_int n /. float_of_int t.frames) t.layer_frames
  in
  let pct p =
    if Stats.Histogram.count t.m2e = 0 then None
    else Some (Stats.Histogram.percentile t.m2e p)
  in
  let unrecovered = Stdlib.max 0 (t.gap_packets - t.recovered) in
  let loss_ratio =
    if t.packets + t.gap_packets = 0 then 0.0
    else float_of_int unrecovered /. float_of_int (t.packets + t.gap_packets)
  in
  {
    s_key = t.key;
    s_packets = t.packets;
    s_bytes = t.bytes;
    s_gap_packets = t.gap_packets;
    s_recovered = t.recovered;
    s_duplicates = t.duplicates;
    s_frames = t.frames;
    s_layer_share = layer_share;
    s_freeze_count = t.freeze_count;
    s_frozen_ms = float_of_int frozen /. 1e6;
    s_freeze_ratio = float_of_int frozen /. float_of_int span;
    s_m2e_p50_ms = pct 50.0;
    s_m2e_p99_ms = pct 99.0;
    s_loss_ratio = loss_ratio;
  }

let first_ns t = t.first_ns
let last_ns t = t.last_ns
let layer_series t l = t.layer_series.(l)
let m2e_histogram t = t.m2e
