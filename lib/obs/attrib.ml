type severity = Error | Warning

type cause =
  | Link_loss of { link : string; drops : int; victim_hits : int }
  | Link_queue of { link : string; drops : int; victim_hits : int }
  | Pre_invalidation of { pre : string; flushes : int }
  | Resync of { agent : int; ops : int }
  | Rpc_retries of { client : string; spans : int; attempts : int }

type finding = {
  f_severity : severity;
  f_component : string;
  f_kind : string;
  f_subject : string;
  f_explanation : string;
  f_victim : Qoe.key;
  f_cause : cause;
  f_trace_ids : int list;
  f_first_event : int;
  f_last_event : int;
  f_from_ns : int;
  f_until_ns : int;
  f_truncated : bool;
}

let severity_str = function Error -> "error" | Warning -> "warning"

let severity_of_str = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

module IntSet = Set.Make (Int)

let arg_s args k =
  List.fold_left
    (fun acc (name, v) ->
      match (acc, v) with
      | None, Trace.S s when name = k -> Some s
      | _ -> acc)
    None args

let arg_i args k =
  List.fold_left
    (fun acc (name, v) ->
      match (acc, v) with
      | None, Trace.I i when name = k -> Some i
      | _ -> acc)
    None args

(* Accumulator per grouped evidence source: counts plus the global
   trace-event index range and the victim trace ids it implicates. *)
type acc = {
  mutable n : int;
  mutable extra : int;
  mutable hits : IntSet.t;
  mutable first_ev : int;
  mutable last_ev : int;
}

let acc_make () =
  { n = 0; extra = 0; hits = IntSet.empty; first_ev = max_int; last_ev = -1 }

let acc_touch a idx =
  a.n <- a.n + 1;
  if idx < a.first_ev then a.first_ev <- idx;
  if idx > a.last_ev then a.last_ev <- idx

let group tbl key = match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a = acc_make () in
      Hashtbl.replace tbl key a;
      a

let finding_of ~victim ~from_ns ~until_ns ~truncated ~severity ~component ~kind
    ~subject ~explanation ~cause (a : acc) =
  {
    f_severity = severity;
    f_component = component;
    f_kind = kind;
    f_subject = subject;
    f_explanation = explanation;
    f_victim = victim;
    f_cause = cause;
    f_trace_ids = IntSet.elements a.hits;
    f_first_event = a.first_ev;
    f_last_event = a.last_ev;
    f_from_ns = from_ns;
    f_until_ns = until_ns;
    f_truncated = truncated;
  }

let sec ns = float_of_int ns /. 1e9

(* Walk the retained trace window backwards from the victim's noted trace
   ids to the causal events that plausibly produced the burn. Link drops
   that hit the victim's own packet timelines are ranked Error; ambient
   evidence (drop storms elsewhere, PRE invalidation storms, controller
   resync epochs, RPC retry storms) surfaces as Warning context. *)
let attribute ?(min_victim_hits = 3) ?(min_ambient = 20) ?(min_pre_flushes = 10)
    ?(min_rpc_spans = 5) ~victim ~from_ns ~until_ns () =
  let vkey = Qoe.key_of victim in
  let victim_ids =
    IntSet.of_list (Qoe.traces_between victim ~from_ns ~until_ns)
  in
  (* The victim's own access links: every drop there is, by construction,
     a packet addressed to the victim — the gap in its timeline. Drops
     elsewhere only implicate the victim when the dropped replica's trace
     id matches a packet the victim did receive (replicas of one ingress
     packet share its id), i.e. shared-fate evidence. *)
  let victim_links =
    match Qoe.host victim with
    | "" -> []
    | host -> [ "up:" ^ host; "down:" ^ host ]
  in
  let truncated =
    Trace.dropped () > 0
    &&
    match Trace.events () with
    | [] -> true
    | oldest :: _ -> oldest.Trace.ts > from_ns
  in
  let link_loss : (string, acc) Hashtbl.t = Hashtbl.create 8 in
  let link_queue : (string, acc) Hashtbl.t = Hashtbl.create 8 in
  let pre : (string, acc) Hashtbl.t = Hashtbl.create 4 in
  let resync : (int, acc) Hashtbl.t = Hashtbl.create 4 in
  let rpc : (string, acc) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (idx, ev) ->
      let ts = ev.Trace.ts in
      let ends = if ev.Trace.dur >= 0 then ts + ev.Trace.dur else ts in
      if ends >= from_ns && ts <= until_ns then
        match (ev.Trace.cat, ev.Trace.name) with
        | "link", "link_drop" ->
            let linkname =
              Option.value (arg_s ev.Trace.args "link") ~default:"?"
            in
            let tbl =
              match arg_s ev.Trace.args "reason" with
              | Some "queue" -> link_queue
              | _ -> link_loss
            in
            let a = group tbl linkname in
            acc_touch a idx;
            if List.mem linkname victim_links then a.extra <- a.extra + 1;
            if
              ev.Trace.trace >= 0
              && (List.mem linkname victim_links
                 || IntSet.mem ev.Trace.trace victim_ids)
            then a.hits <- IntSet.add ev.Trace.trace a.hits
        | "pre", "pre_invalidate" ->
            let label = Option.value (arg_s ev.Trace.args "pre") ~default:"?" in
            acc_touch (group pre label) idx
        | "ctrl", "resync" ->
            let agent = Option.value (arg_i ev.Trace.args "agent") ~default:(-1) in
            let a = group resync agent in
            acc_touch a idx;
            a.extra <- a.extra + Option.value (arg_i ev.Trace.args "ops") ~default:0
        | "rpc", _ -> (
            match (arg_s ev.Trace.args "client", arg_i ev.Trace.args "attempts") with
            | Some client, Some attempts when attempts >= 2 ->
                let a = group rpc client in
                acc_touch a idx;
                a.extra <- a.extra + (attempts - 1)
            | _ -> ())
        | _ -> ())
    (Trace.events_indexed ());
  let mk = finding_of ~victim:vkey ~from_ns ~until_ns ~truncated in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* [a.extra] counts drops on the victim's own access links (each one a
     victim-addressed packet); [a.hits] holds the implicated trace ids
     (victim-link drops plus shared-fate matches elsewhere). *)
  let link_findings ~kind ~what ~cause tbl =
    Hashtbl.iter
      (fun link (a : acc) ->
        let own = a.extra in
        let shared = IntSet.cardinal a.hits in
        let victim_hits = if own > 0 then own else shared in
        if own >= min_victim_hits || shared >= min_victim_hits || a.n >= min_ambient
        then
          emit
            (mk
               ~severity:(if own >= min_victim_hits then Error else Warning)
               ~component:"link" ~kind ~subject:link
               ~explanation:
                 (Printf.sprintf
                    "%d %s drops on link %s in [%.3fs, %.3fs]; %d were %s"
                    a.n what link (sec from_ns) (sec until_ns) victim_hits
                    (if own > 0 then "packets addressed to the victim"
                     else "replicas of packets the victim received (shared fate)"))
               ~cause:(cause ~link ~drops:a.n ~victim_hits)
               a))
      tbl
  in
  link_findings ~kind:"link_loss" ~what:"loss"
    ~cause:(fun ~link ~drops ~victim_hits -> Link_loss { link; drops; victim_hits })
    link_loss;
  link_findings ~kind:"link_queue" ~what:"queue-overflow"
    ~cause:(fun ~link ~drops ~victim_hits ->
      Link_queue { link; drops; victim_hits })
    link_queue;
  Hashtbl.iter
    (fun label (a : acc) ->
      if a.n >= min_pre_flushes then
        emit
          (mk ~severity:Warning ~component:"pre" ~kind:"pre_invalidation"
             ~subject:label
             ~explanation:
               (Printf.sprintf
                  "PRE %s flushed its fan-out cache %d times in the window \
                   (invalidation storm)"
                  label a.n)
             ~cause:(Pre_invalidation { pre = label; flushes = a.n })
             a))
    pre;
  Hashtbl.iter
    (fun agent (a : acc) ->
      emit
        (mk ~severity:Warning ~component:"ctrl" ~kind:"resync"
           ~subject:(Printf.sprintf "agent%d" agent)
           ~explanation:
             (Printf.sprintf
                "controller resynced agent %d (%d epochs, %d replayed ops) \
                 inside the window — media plumbing was being rebuilt"
                agent a.n a.extra)
           ~cause:(Resync { agent; ops = a.extra })
           a))
    resync;
  Hashtbl.iter
    (fun client (a : acc) ->
      if a.n >= min_rpc_spans then
        emit
          (mk ~severity:Warning ~component:"rpc" ~kind:"rpc_retries"
             ~subject:client
             ~explanation:
               (Printf.sprintf
                  "RPC client %s needed retries on %d calls (%d extra \
                   attempts) in the window — control channel degraded"
                  client a.n a.extra)
             ~cause:(Rpc_retries { client; spans = a.n; attempts = a.extra })
             a))
    rpc;
  (* Errors first, then by victim impact, then evidence volume; key as a
     last resort for a total deterministic order. *)
  let weight f =
    match f.f_cause with
    | Link_loss { victim_hits; drops; _ } | Link_queue { victim_hits; drops; _ }
      ->
        (victim_hits, drops)
    | Pre_invalidation { flushes; _ } -> (0, flushes)
    | Resync { ops; _ } -> (0, ops)
    | Rpc_retries { spans; _ } -> (0, spans)
  in
  List.sort
    (fun a b ->
      match compare a.f_severity b.f_severity with
      | 0 ->
          let wa = weight a and wb = weight b in
          if wa <> wb then compare wb wa
          else compare (a.f_component, a.f_subject) (b.f_component, b.f_subject)
      | c -> c)
    !findings

let of_alert ?min_victim_hits ?min_ambient ?min_pre_flushes ?min_rpc_spans
    (alert : Slo.alert) =
  match Qoe.find alert.Slo.a_key with
  | None -> []
  | Some victim ->
      attribute ?min_victim_hits ?min_ambient ?min_pre_flushes ?min_rpc_spans
        ~victim ~from_ns:alert.Slo.a_from_ns ~until_ns:alert.Slo.a_until_ns ()

let render f =
  Printf.sprintf "[%s] %s %s: %s (events %d..%d%s, window [%.3fs, %.3fs]%s)"
    (String.uppercase_ascii (severity_str f.f_severity))
    f.f_component f.f_subject f.f_explanation f.f_first_event f.f_last_event
    (match f.f_trace_ids with
    | [] -> ""
    | ids -> Printf.sprintf ", %d victim traces" (List.length ids))
    (sec f.f_from_ns) (sec f.f_until_ns)
    (if f.f_truncated then ", evidence TRUNCATED by ring wrap" else "")

(* --- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cause_fields = function
  | Link_loss { drops; victim_hits; _ } | Link_queue { drops; victim_hits; _ } ->
      [ ("drops", drops); ("victim_hits", victim_hits) ]
  | Pre_invalidation { flushes; _ } -> [ ("flushes", flushes) ]
  | Resync { agent; ops } -> [ ("agent", agent); ("ops", ops) ]
  | Rpc_retries { spans; attempts; _ } ->
      [ ("spans", spans); ("attempts", attempts) ]

let finding_to_json f =
  let k = f.f_victim in
  Printf.sprintf
    "{\"severity\": \"%s\", \"component\": \"%s\", \"kind\": \"%s\", \
     \"subject\": \"%s\", \"explanation\": \"%s\", \"victim\": {\"meeting\": \
     %d, \"receiver\": %d, \"sender\": %d, \"media\": \"%s\", \"kind\": \
     \"%s\"}, \"data\": {%s}, \"trace_ids\": [%s], \"events\": [%d, %d], \
     \"window_ns\": [%d, %d], \"truncated\": %b}"
    (severity_str f.f_severity)
    (json_escape f.f_component) (json_escape f.f_kind) (json_escape f.f_subject)
    (json_escape f.f_explanation) k.Qoe.k_meeting k.Qoe.k_receiver
    k.Qoe.k_sender
    (Qoe.media_str k.Qoe.k_media)
    (Qoe.kind_str k.Qoe.k_kind)
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\": %d" name v)
          (cause_fields f.f_cause)))
    (String.concat ", " (List.map string_of_int f.f_trace_ids))
    f.f_first_event f.f_last_event f.f_from_ns f.f_until_ns f.f_truncated

(* Minimal JSON reader covering exactly the subset the encoder above
   emits (objects, arrays, escaped strings, integers, bools) — enough to
   prove the report round-trips without a parser dependency. *)
module Json = struct
  type v =
    | Obj of (string * v) list
    | Arr of v list
    | Str of string
    | Int of int
    | Bool of bool

  exception Bad of string

  type st = { s : string; mutable i : int }

  let peek st = if st.i >= String.length st.s then '\000' else st.s.[st.i]

  let skip_ws st =
    while st.i < String.length st.s
          && (match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      st.i <- st.i + 1
    done

  let expect st c =
    skip_ws st;
    if peek st <> c then raise (Bad (Printf.sprintf "expected %c at %d" c st.i));
    st.i <- st.i + 1

  let parse_string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      if st.i >= String.length st.s then raise (Bad "unterminated string");
      match st.s.[st.i] with
      | '"' -> st.i <- st.i + 1
      | '\\' ->
          st.i <- st.i + 1;
          (match peek st with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'u' ->
              let code = int_of_string ("0x" ^ String.sub st.s (st.i + 1) 4) in
              st.i <- st.i + 4;
              Buffer.add_char b (Char.chr (code land 0xff))
          | c -> Buffer.add_char b c);
          st.i <- st.i + 1;
          go ()
      | c ->
          Buffer.add_char b c;
          st.i <- st.i + 1;
          go ()
    in
    go ();
    Buffer.contents b

  let rec parse st =
    skip_ws st;
    match peek st with
    | '{' ->
        st.i <- st.i + 1;
        skip_ws st;
        if peek st = '}' then (st.i <- st.i + 1; Obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws st;
            let k = parse_string st in
            expect st ':';
            let v = parse st in
            fields := (k, v) :: !fields;
            skip_ws st;
            match peek st with
            | ',' -> st.i <- st.i + 1; members ()
            | '}' -> st.i <- st.i + 1
            | _ -> raise (Bad "object")
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        st.i <- st.i + 1;
        skip_ws st;
        if peek st = ']' then (st.i <- st.i + 1; Arr [])
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse st :: !items;
            skip_ws st;
            match peek st with
            | ',' -> st.i <- st.i + 1; elems ()
            | ']' -> st.i <- st.i + 1
            | _ -> raise (Bad "array")
          in
          elems ();
          Arr (List.rev !items)
        end
    | '"' -> Str (parse_string st)
    | 't' -> st.i <- st.i + 4; Bool true
    | 'f' -> st.i <- st.i + 5; Bool false
    | _ ->
        let start = st.i in
        if peek st = '-' then st.i <- st.i + 1;
        while (match peek st with '0' .. '9' -> true | _ -> false) do
          st.i <- st.i + 1
        done;
        if st.i = start then raise (Bad (Printf.sprintf "value at %d" st.i));
        Int (int_of_string (String.sub st.s start (st.i - start)))

  let of_string s =
    let st = { s; i = 0 } in
    let v = parse st in
    skip_ws st;
    v

  let mem k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let str = function Str s -> Some s | _ -> None
  let int = function Int i -> Some i | _ -> None
  let bool = function Bool b -> Some b | _ -> None
end

let finding_of_json s =
  let ( let* ) = Option.bind in
  try
    let j = Json.of_string s in
    let* severity = Option.bind (Json.mem "severity" j) Json.str in
    let* f_severity = severity_of_str severity in
    let* f_component = Option.bind (Json.mem "component" j) Json.str in
    let* f_kind = Option.bind (Json.mem "kind" j) Json.str in
    let* f_subject = Option.bind (Json.mem "subject" j) Json.str in
    let* f_explanation = Option.bind (Json.mem "explanation" j) Json.str in
    let* victim = Json.mem "victim" j in
    let* k_meeting = Option.bind (Json.mem "meeting" victim) Json.int in
    let* k_receiver = Option.bind (Json.mem "receiver" victim) Json.int in
    let* k_sender = Option.bind (Json.mem "sender" victim) Json.int in
    let* k_media =
      Option.bind
        (Option.bind (Json.mem "media" victim) Json.str)
        Qoe.media_of_str
    in
    let* k_kind =
      Option.bind (Option.bind (Json.mem "kind" victim) Json.str) Qoe.kind_of_str
    in
    let* data = Json.mem "data" j in
    let di k = Option.value (Option.bind (Json.mem k data) Json.int) ~default:0 in
    let* f_cause =
      match f_kind with
      | "link_loss" ->
          Some
            (Link_loss
               {
                 link = f_subject;
                 drops = di "drops";
                 victim_hits = di "victim_hits";
               })
      | "link_queue" ->
          Some
            (Link_queue
               {
                 link = f_subject;
                 drops = di "drops";
                 victim_hits = di "victim_hits";
               })
      | "pre_invalidation" ->
          Some (Pre_invalidation { pre = f_subject; flushes = di "flushes" })
      | "resync" -> Some (Resync { agent = di "agent"; ops = di "ops" })
      | "rpc_retries" ->
          Some
            (Rpc_retries
               { client = f_subject; spans = di "spans"; attempts = di "attempts" })
      | _ -> None
    in
    let* trace_ids = Json.mem "trace_ids" j in
    let* f_trace_ids =
      match trace_ids with
      | Json.Arr items ->
          List.fold_left
            (fun acc it ->
              match (acc, Json.int it) with
              | Some l, Some i -> Some (i :: l)
              | _ -> None)
            (Some []) items
          |> Option.map List.rev
      | _ -> None
    in
    let pair k =
      match Json.mem k j with
      | Some (Json.Arr [ a; b ]) -> (
          match (Json.int a, Json.int b) with
          | Some a, Some b -> Some (a, b)
          | _ -> None)
      | _ -> None
    in
    let* f_first_event, f_last_event = pair "events" in
    let* f_from_ns, f_until_ns = pair "window_ns" in
    let* f_truncated = Option.bind (Json.mem "truncated" j) Json.bool in
    Some
      {
        f_severity;
        f_component;
        f_kind;
        f_subject;
        f_explanation;
        f_victim =
          { Qoe.k_meeting; k_receiver; k_sender; k_media; k_kind };
        f_cause;
        f_trace_ids;
        f_first_event;
        f_last_event;
        f_from_ns;
        f_until_ns;
        f_truncated;
      }
  with Json.Bad _ | Invalid_argument _ | Failure _ -> None
