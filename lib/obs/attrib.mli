(** Trace-linked root-cause attribution for QoE burns.

    When an SLO fires ({!Slo.alert}), {!of_alert} walks the deterministic
    trace window backwards from the victim receiver's noted trace ids
    ({!Qoe.note_trace}) to the culpable causal events, grouped by source:
    loss/queue drop bursts on a named {!Netsim.Link}, PRE fan-out-cache
    invalidation storms, controller resync epochs, and RPC retry storms.
    Each surviving group becomes a structured {!finding} naming the
    component, the global trace-event index range (the coordinates of
    {!Trace.events_indexed}), the replayable window, and whether the
    evidence was truncated by ring-buffer wraparound — the same shape
    [Scallop_analysis] findings use, so tooling can treat them uniformly.

    Determinism: the walk is a pure function of the trace buffer and the
    victim's collector, both deterministic for a seed, and the result is
    totally ordered — same seed ⇒ identical findings. *)

type severity = Error | Warning

type cause =
  | Link_loss of { link : string; drops : int; victim_hits : int }
  | Link_queue of { link : string; drops : int; victim_hits : int }
  | Pre_invalidation of { pre : string; flushes : int }
  | Resync of { agent : int; ops : int }
  | Rpc_retries of { client : string; spans : int; attempts : int }

type finding = {
  f_severity : severity;
      (** [Error] = drops on the victim's own access links (packets
          addressed to the victim, identified via {!Qoe.host});
          [Warning] = shared-fate or ambient correlation in the window *)
  f_component : string;  (** "link" | "pre" | "ctrl" | "rpc" *)
  f_kind : string;  (** stable cause tag, e.g. "link_loss" *)
  f_subject : string;  (** the named component, e.g. "down:10.0.1.3" *)
  f_explanation : string;
  f_victim : Qoe.key;
  f_cause : cause;
  f_trace_ids : int list;  (** victim packet trace ids implicated, ascending *)
  f_first_event : int;  (** global trace-event index range of the evidence *)
  f_last_event : int;
  f_from_ns : int;  (** replayable window *)
  f_until_ns : int;
  f_truncated : bool;  (** ring wrapped over part of the window *)
}

val severity_str : severity -> string

val attribute :
  ?min_victim_hits:int ->
  ?min_ambient:int ->
  ?min_pre_flushes:int ->
  ?min_rpc_spans:int ->
  victim:Qoe.t ->
  from_ns:int ->
  until_ns:int ->
  unit ->
  finding list
(** Findings for the window, most culpable first (Errors before
    Warnings, then by victim impact). A link needs [min_victim_hits]
    (default 3) drops on the victim's own access link for [Error] —
    every drop there is a packet addressed to the victim. It surfaces as
    a [Warning] on [min_victim_hits] shared-fate trace-id matches
    (replicas of packets the victim received, dropped towards someone
    else) or [min_ambient] (default 20) total drops. *)

val of_alert :
  ?min_victim_hits:int ->
  ?min_ambient:int ->
  ?min_pre_flushes:int ->
  ?min_rpc_spans:int ->
  Slo.alert ->
  finding list
(** {!attribute} over the alert's long window and victim collector. *)

val render : finding -> string
(** One-line human rendering. *)

val finding_to_json : finding -> string

val finding_of_json : string -> finding option
(** Parses exactly what {!finding_to_json} emits;
    [finding_of_json (finding_to_json f) = Some f] for every finding. *)
