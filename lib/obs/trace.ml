type level = Off | Rpc | Packet | Verbose

let rank = function Off -> 0 | Rpc -> 1 | Packet -> 2 | Verbose -> 3

(* The hot-path gate: one load + compare. *)
let current = ref 0

let set_level l = current := rank l
let level () = match !current with 0 -> Off | 1 -> Rpc | 2 -> Packet | _ -> Verbose
let enabled l = !current >= rank l

type value = I of int | S of string

type event = {
  ts : int;
  dur : int;
  cat : string;
  name : string;
  trace : int;
  args : (string * value) list;
}

let default_capacity = 1 lsl 18

type ring = {
  mutable buf : event option array;
  mutable next : int;  (** next write slot *)
  mutable written : int;  (** total sink writes since reset *)
}

let ring = { buf = Array.make default_capacity None; next = 0; written = 0 }

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity";
  ring.buf <- Array.make n None;
  ring.next <- 0;
  ring.written <- 0

let packet_counter = ref 0
let sample_every = ref 1

let set_sample_every n =
  if n <= 0 then invalid_arg "Trace.set_sample_every";
  sample_every := n

let next_trace_id = ref 0

let next_packet_id () =
  let k = !packet_counter in
  packet_counter := k + 1;
  if k mod !sample_every = 0 then (
    let id = !next_trace_id in
    next_trace_id := id + 1;
    id)
  else -1

let reset () =
  Array.fill ring.buf 0 (Array.length ring.buf) None;
  ring.next <- 0;
  ring.written <- 0;
  packet_counter := 0;
  next_trace_id := 0

(* Online listener: an optional tap on the single write point, so a
   checker can evaluate temporal rules as events stream in instead of
   post-processing the (lossy, ring-bounded) buffer. *)
let listener : (event -> unit) option ref = ref None
let set_listener f = listener := f

let emit ev =
  ring.buf.(ring.next) <- Some ev;
  ring.next <- (ring.next + 1) mod Array.length ring.buf;
  ring.written <- ring.written + 1;
  match !listener with None -> () | Some f -> f ev

let instant ~ts ?(trace = -1) ?(args = []) ~cat name =
  emit { ts; dur = -1; cat; name; trace; args }

let complete ~ts ~dur ?(trace = -1) ?(args = []) ~cat name =
  emit { ts; dur; cat; name; trace; args }

let writes () = ring.written
let dropped () = Stdlib.max 0 (ring.written - Array.length ring.buf)
let first_retained () = dropped ()

(* Export the evidence-truncation counter so attribution (and dashboards)
   can tell a quiet ring from one that silently overwrote its history.
   Re-invoked by dump sites because [Metrics.reset] detaches callbacks. *)
let register_metrics () =
  Metrics.register_callback "scallop_trace_dropped_total"
    ~help:"Trace events overwritten after the ring buffer wrapped"
    (fun () -> float_of_int (dropped ()));
  Metrics.register_callback "scallop_trace_writes_total"
    ~help:"Trace events written to the ring sink since reset"
    (fun () -> float_of_int (writes ()))

let () = register_metrics ()

(* Virtual-time source for emitters that have no engine handle in scope
   (e.g. [Tofino.Pre] cache invalidations). Installed by [Netsim.Engine]
   at creation; deterministic because the engine clock is. *)
let clock : (unit -> int) ref = ref (fun () -> 0)
let set_clock f = clock := f
let now () = !clock ()

let events () =
  let cap = Array.length ring.buf in
  let n = Stdlib.min ring.written cap in
  let start = if ring.written <= cap then 0 else ring.next in
  List.init n (fun i ->
      match ring.buf.((start + i) mod cap) with
      | Some ev -> ev
      | None -> assert false)

let events_indexed () =
  let base = first_retained () in
  List.mapi (fun i ev -> (base + i, ev)) (events ())

let timeline ~trace = List.filter (fun ev -> ev.trace = trace) (events ())

(* --- Chrome trace-event export --------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Stable thread-row assignment so the Perfetto view groups events by
   component instead of interleaving them on one row. *)
let tid_of_cat = function
  | "dp" -> 1
  | "pre" -> 2
  | "link" -> 3
  | "client" -> 4
  | "rpc" -> 5
  | _ -> 9

(* Chrome wants microsecond timestamps; virtual time is integer ns, so
   print [us.nnn] with integer arithmetic — no float formatting on the
   determinism-critical path. *)
let ts_str ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let add_args b trace args =
  Buffer.add_string b "\"args\":{";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b "," in
  if trace >= 0 then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "\"trace\":%d" trace)
  end;
  List.iter
    (fun (k, v) ->
      sep ();
      Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape k));
      match v with
      | I i -> Buffer.add_string b (string_of_int i)
      | S s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s)))
    args;
  Buffer.add_string b "}"

let to_chrome_json () =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun ev ->
      if !first then first := false else Buffer.add_string b ",";
      Buffer.add_string b "\n";
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
           (json_escape ev.name) (json_escape ev.cat) (tid_of_cat ev.cat) (ts_str ev.ts));
      if ev.dur >= 0 then
        Buffer.add_string b (Printf.sprintf "\"ph\":\"X\",\"dur\":%s," (ts_str ev.dur))
      else Buffer.add_string b "\"ph\":\"i\",\"s\":\"t\",";
      add_args b ev.trace ev.args;
      Buffer.add_string b "}")
    (events ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome_json path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc
