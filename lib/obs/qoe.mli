(** Per-receiver quality-of-experience collection.

    One collector per [(meeting, receiver, sender, media, kind)] stream
    leg, fed by hooks the codec receivers and the WebRTC client call as
    media arrives: freeze/stall intervals, temporal-layer residency,
    mouth-to-ear latency (virtual-time capture→decode), loss and
    out-of-order counts — aggregated into windowed
    {!Scallop_util.Timeseries} plus bounded sample rings so the SLO
    engine ({!Slo}) can evaluate sliding windows and attribution
    ({!Attrib}) can walk back from the victim's recent trace ids.

    Collectors register themselves as [scallop_qoe_*] metrics (labelled
    by key) on creation. All hooks are O(1); windowed queries are only
    run at evaluation/report time. *)

type media = Camera | Screen
type kind = Video | Audio

type key = {
  k_meeting : int;
  k_receiver : int;  (** participant id of the receiving client *)
  k_sender : int;  (** participant id of the stream's origin *)
  k_media : media;
  k_kind : kind;
}

val media_str : media -> string
val kind_str : kind -> string
val media_of_str : string -> media option
val kind_of_str : string -> kind option

val key_str : key -> string
(** ["m<meeting>/p<receiver><-p<sender>/<media>/<kind>"]. *)

type t

val collector : ?bin_ns:int -> key -> t
(** Get or create the collector for [key] (default 1 s bins). Creation
    registers its metrics. *)

val find : key -> t option
val key_of : t -> key

val set_host : t -> string -> unit
(** Record the receiving client's host address (e.g. ["10.0.1.3"]).
    Attribution ({!Attrib}) uses it to recognize the victim's own access
    links, which {!Netsim.Network} names ["up:<host>"]/["down:<host>"]. *)

val host : t -> string
(** The recorded host address; [""] until {!set_host}. *)

val all : unit -> t list
(** Every live collector, sorted by key — deterministic iteration order. *)

val reset : unit -> unit
(** Drop all collectors (fresh world / tests). Does not unregister their
    metrics; pair with [Metrics.reset]. *)

(** {2 Collection hooks} — all O(1), called from the media path. *)

val on_packet : t -> time_ns:int -> size:int -> unit
val on_gap : t -> time_ns:int -> count:int -> unit
(** [count] packets newly noticed missing (treated as loss until filled). *)

val on_gap_filled : t -> time_ns:int -> unit
(** A previously noticed gap was filled by a retransmission or a
    reordered arrival. *)

val on_duplicate : t -> time_ns:int -> unit
val on_frame : t -> time_ns:int -> layer:int -> unit
(** A frame decoded at temporal layer [layer] (0..2, clamped). *)

val on_mouth_to_ear : t -> time_ns:int -> ms:float -> unit
val on_freeze_begin : t -> time_ns:int -> unit
val on_freeze_end : t -> time_ns:int -> unit

val on_stall : t -> from_ns:int -> until_ns:int -> unit
(** A retroactively detected decode stall (noticed when the next frame
    finally decoded): records the closed interval without touching the
    open freeze state. *)

val note_trace : t -> time_ns:int -> trace:int -> unit
(** Record a per-packet trace id that reached this receiver — the causal
    anchors attribution starts from. No-op for untraced packets ([-1]). *)

(** {2 Windowed queries} *)

val frozen_ns_between : t -> from_ns:int -> until_ns:int -> int
val freeze_ratio_between : t -> from_ns:int -> until_ns:int -> float option
(** Frozen share of the window (clamped to the stream's lifetime);
    [None] when the stream did not exist in the window. *)

val m2e_percentile_between :
  t -> from_ns:int -> until_ns:int -> p:float -> float option

val m2e_bad_fraction_between :
  t -> from_ns:int -> until_ns:int -> threshold_ms:float -> float option
(** Fraction of mouth-to-ear samples in the window exceeding the
    threshold; [None] when the window holds no samples. *)

val loss_ratio_between : t -> from_ns:int -> until_ns:int -> float option
(** Unrecovered-gap share of expected packets in the window. *)

val traces_between : t -> from_ns:int -> until_ns:int -> int list
(** Distinct trace ids noted in the window, ascending. *)

(** {2 Summaries} *)

type summary = {
  s_key : key;
  s_packets : int;
  s_bytes : int;
  s_gap_packets : int;
  s_recovered : int;
  s_duplicates : int;
  s_frames : int;
  s_layer_share : float array;  (** decoded-frame share per temporal layer *)
  s_freeze_count : int;
  s_frozen_ms : float;
  s_freeze_ratio : float;
  s_m2e_p50_ms : float option;
  s_m2e_p99_ms : float option;
  s_loss_ratio : float;
}

val summary : t -> now_ns:int -> summary

val first_ns : t -> int
(** Time of the first observation; [-1] before any. *)

val last_ns : t -> int
val layer_series : t -> int -> Scallop_util.Timeseries.t
val m2e_histogram : t -> Scallop_util.Stats.Histogram.t
