module Stats = Scallop_util.Stats

type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Stats.Histogram.t
  | Callback of (unit -> float)

type entry = { help : string; metric : metric }

(* Keyed by (name, canonically rendered label set). *)
let registry : (string * string, entry) Hashtbl.t = Hashtbl.create 64

let render_labels labels =
  match List.sort compare labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let register ?(labels = []) ?(help = "") name metric =
  Hashtbl.replace registry (name, render_labels labels) { help; metric }

let counter ?labels ?help name =
  let c = { c = 0 } in
  register ?labels ?help name (Counter c);
  c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let gauge ?labels ?help name =
  let g = { g = 0.0 } in
  register ?labels ?help name (Gauge g);
  g

let set g v = g.g <- v
let gauge_value g = g.g

let histogram ?labels ?help ?bounds name =
  let h = Stats.Histogram.create ?bounds () in
  register ?labels ?help name (Histogram h);
  h

let register_callback ?labels ?help name f = register ?labels ?help name (Callback f)

(* Adopt a histogram the caller already owns (and keeps observing into)
   instead of minting a fresh zeroed one like {!histogram} does. *)
let register_histogram ?labels ?help name h = register ?labels ?help name (Histogram h)

let unregister ?(labels = []) name = Hashtbl.remove registry (name, render_labels labels)

let reset () = Hashtbl.reset registry

(* %.17g round-trips every float but prints integers as integers via the
   shortest-representation check below; keep it simple and deterministic. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let sorted_entries () =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) registry []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let dump () =
  let b = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun ((name, labels), e) ->
      if name <> !last_name then begin
        last_name := name;
        if e.help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name e.help);
        let ty =
          match e.metric with
          | Counter _ -> "counter"
          | Gauge _ | Callback _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)
      end;
      match e.metric with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" name labels c.c)
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%s%s %s\n" name labels (float_str g.g))
      | Callback f -> Buffer.add_string b (Printf.sprintf "%s%s %s\n" name labels (float_str (f ())))
      | Histogram h ->
          let label_prefix =
            if labels = "" then "{" else String.sub labels 0 (String.length labels - 1) ^ ","
          in
          Stats.Histogram.iter_buckets h (fun ~le ~count ->
              let le_str = if le = infinity then "+Inf" else float_str le in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%sle=\"%s\"} %d\n" name label_prefix le_str count));
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name labels (float_str (Stats.Histogram.sum h)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name labels (Stats.Histogram.count h)))
    (sorted_entries ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  let first = ref true in
  List.iter
    (fun ((name, labels), e) ->
      if !first then first := false else Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\n  \"%s\": " (json_escape (name ^ labels)));
      match e.metric with
      | Counter c -> Buffer.add_string b (string_of_int c.c)
      | Gauge g -> Buffer.add_string b (float_str g.g)
      | Callback f -> Buffer.add_string b (float_str (f ()))
      | Histogram h ->
          (* Cumulative buckets in the JSON too, mirroring the Prometheus
             text form, so offline consumers can re-derive any quantile.
             [le] is a string because JSON has no Infinity literal. *)
          let buckets = Buffer.create 256 in
          let first_b = ref true in
          Stats.Histogram.iter_buckets h (fun ~le ~count ->
              if count > 0 then begin
                if !first_b then first_b := false else Buffer.add_string buckets ", ";
                let le_str = if le = infinity then "+Inf" else float_str le in
                Buffer.add_string buckets (Printf.sprintf "[\"%s\", %d]" le_str count)
              end);
          if Stats.Histogram.count h = 0 then
            Buffer.add_string b "{\"count\": 0, \"sum\": 0, \"buckets\": []}"
          else
            Buffer.add_string b
              (Printf.sprintf
                 "{\"count\": %d, \"sum\": %s, \"p50\": %s, \"p99\": %s, \"buckets\": [%s]}"
                 (Stats.Histogram.count h)
                 (float_str (Stats.Histogram.sum h))
                 (float_str (Stats.Histogram.percentile h 50.0))
                 (float_str (Stats.Histogram.percentile h 99.0))
                 (Buffer.contents buckets)))
    (sorted_entries ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b
