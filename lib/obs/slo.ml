type objective =
  | Mouth_to_ear of { threshold_ms : float }
  | Freeze_ratio
  | Loss_ratio

type spec = {
  slo : string;
  objective : objective;
  kinds : Qoe.kind list;
  budget : float;
  long_ns : int;
  short_ns : int;
  fire_burn : float;
}

let sec n = n * 1_000_000_000

(* "p99 mouth-to-ear <= 150 ms" is budget 0.01 over the samples-above-
   threshold fraction; "freeze ratio <= 0.5%" is budget 0.005 over frozen
   time share. Windows are short relative to production SRE practice
   because simulated meetings run tens of seconds, not weeks; the
   long/short ratio (4:1) and the >= 1x-burn double condition are the
   standard multi-window burn-rate shape. *)
let default_specs () =
  [
    {
      slo = "m2e_p99_150ms";
      objective = Mouth_to_ear { threshold_ms = 150.0 };
      kinds = [ Qoe.Video ];
      budget = 0.01;
      long_ns = sec 8;
      short_ns = sec 2;
      fire_burn = 1.0;
    };
    {
      slo = "freeze_ratio_0.5pct";
      objective = Freeze_ratio;
      kinds = [ Qoe.Video ];
      budget = 0.005;
      long_ns = sec 8;
      short_ns = sec 2;
      fire_burn = 1.0;
    };
    {
      slo = "loss_ratio_1pct";
      objective = Loss_ratio;
      kinds = [ Qoe.Video; Qoe.Audio ];
      budget = 0.01;
      long_ns = sec 8;
      short_ns = sec 2;
      fire_burn = 1.0;
    };
  ]

type alert = {
  a_slo : string;
  a_key : Qoe.key;
  a_at_ns : int;
  a_burn_long : float;
  a_burn_short : float;
  a_from_ns : int;  (** long-window start — the attribution window *)
  a_until_ns : int;
}

type t = {
  specs : spec list;
  mutable fired : alert list;  (* newest first *)
  active : (string * Qoe.key, unit) Hashtbl.t;
  counters : (string, Metrics.counter) Hashtbl.t;
}

let create ?(specs = default_specs ()) () =
  let counters = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem counters s.slo) then
        Hashtbl.replace counters s.slo
          (Metrics.counter ~labels:[ ("slo", s.slo) ]
             ~help:"SLO burn-rate alerts fired" "scallop_slo_alerts_total"))
    specs;
  { specs; fired = []; active = Hashtbl.create 16; counters }

let specs t = t.specs

let bad_fraction spec q ~from_ns ~until_ns =
  match spec.objective with
  | Mouth_to_ear { threshold_ms } ->
      Qoe.m2e_bad_fraction_between q ~from_ns ~until_ns ~threshold_ms
  | Freeze_ratio -> Qoe.freeze_ratio_between q ~from_ns ~until_ns
  | Loss_ratio -> Qoe.loss_ratio_between q ~from_ns ~until_ns

let burn_rates ~now_ns q spec =
  let window w =
    bad_fraction spec q ~from_ns:(Stdlib.max 0 (now_ns - w)) ~until_ns:now_ns
  in
  match (window spec.long_ns, window spec.short_ns) with
  | Some long, Some short -> Some (long /. spec.budget, short /. spec.budget)
  | _ -> None

let evaluate t ~now_ns =
  let fresh = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun q ->
          let key = Qoe.key_of q in
          if List.mem key.Qoe.k_kind spec.kinds then
            match burn_rates ~now_ns q spec with
            | None -> ()
            | Some (burn_long, burn_short) ->
                let burning =
                  burn_long >= spec.fire_burn && burn_short >= spec.fire_burn
                in
                let akey = (spec.slo, key) in
                if burning && not (Hashtbl.mem t.active akey) then begin
                  Hashtbl.replace t.active akey ();
                  (match Hashtbl.find_opt t.counters spec.slo with
                  | Some c -> Metrics.incr c
                  | None -> ());
                  let alert =
                    {
                      a_slo = spec.slo;
                      a_key = key;
                      a_at_ns = now_ns;
                      a_burn_long = burn_long;
                      a_burn_short = burn_short;
                      a_from_ns = Stdlib.max 0 (now_ns - spec.long_ns);
                      a_until_ns = now_ns;
                    }
                  in
                  t.fired <- alert :: t.fired;
                  fresh := alert :: !fresh
                end
                else if not burning then Hashtbl.remove t.active akey)
        (Qoe.all ()))
    t.specs;
  List.rev !fresh

let alerts t = List.rev t.fired

let alert_str a =
  Printf.sprintf "SLO %s burning on %s: burn %.1fx/%.1fx (long/short) at %.3fs"
    a.a_slo (Qoe.key_str a.a_key) a.a_burn_long a.a_burn_short
    (float_of_int a.a_at_ns /. 1e9)
