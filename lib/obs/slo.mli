(** Declarative QoE service-level objectives with multi-window burn-rate
    alerting over the live {!Qoe} collectors.

    A spec states an objective ("p99 mouth-to-ear ≤ 150 ms" is: at most
    [budget] = 1% of samples above the threshold), and two sliding
    windows. {!evaluate} computes the bad-event fraction over both
    windows for every matching collector; when {e both} burn rates
    (bad/budget) reach [fire_burn] the SLO fires one alert (deduplicated
    while it keeps burning, re-armed once it stops). Alerts increment
    [scallop_slo_alerts_total{slo=...}] and are surfaced by
    [scallop_cli check] / [scallop_cli qoe]. *)

type objective =
  | Mouth_to_ear of { threshold_ms : float }
      (** bad = mouth-to-ear sample above the threshold *)
  | Freeze_ratio  (** bad = frozen playback time share *)
  | Loss_ratio  (** bad = unrecovered-loss share of expected packets *)

type spec = {
  slo : string;  (** stable alert/metric label *)
  objective : objective;
  kinds : Qoe.kind list;  (** which stream kinds the SLO applies to *)
  budget : float;  (** allowed bad fraction, e.g. 0.01 for a p99 target *)
  long_ns : int;
  short_ns : int;
  fire_burn : float;  (** fire when both window burn rates reach this *)
}

val default_specs : unit -> spec list
(** p99 mouth-to-ear ≤ 150 ms, freeze ratio ≤ 0.5%, loss ratio ≤ 1%;
    8 s / 2 s windows scaled to simulated-meeting horizons. *)

type alert = {
  a_slo : string;
  a_key : Qoe.key;
  a_at_ns : int;
  a_burn_long : float;
  a_burn_short : float;
  a_from_ns : int;  (** long-window start — the attribution window *)
  a_until_ns : int;
}

type t

val create : ?specs:spec list -> unit -> t
(** Registers one [scallop_slo_alerts_total{slo=...}] counter per spec. *)

val specs : t -> spec list

val evaluate : t -> now_ns:int -> alert list
(** Evaluate every spec against every live collector; returns the alerts
    that fired {e this} evaluation (all alerts accumulate in {!alerts}).
    Call periodically (e.g. [Engine.every] 500 ms). *)

val alerts : t -> alert list
(** Every alert fired since creation, oldest first. *)

val alert_str : alert -> string
