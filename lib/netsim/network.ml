module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng

type host = { uplink : Link.t; downlink : Link.t }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  hosts : (int, host) Hashtbl.t;
  handlers : (Addr.t, Dgram.t -> unit) Hashtbl.t;
  host_handlers : (int, Dgram.t -> unit) Hashtbl.t;
  mutable undeliverable : int;
}

let create engine rng =
  {
    engine;
    rng;
    hosts = Hashtbl.create 64;
    handlers = Hashtbl.create 64;
    host_handlers = Hashtbl.create 8;
    undeliverable = 0;
  }

(* The delivery point is where a datagram's life ends: once the bound
   handler returns (receivers parse the payload into their own records),
   a pooled replica buffer is recycled. A handler that must retain the
   raw payload past its return — none does today — would have to copy. *)
let deliver t dgram =
  (match Hashtbl.find_opt t.handlers dgram.Dgram.dst with
  | Some handler -> handler dgram
  | None -> (
      match Hashtbl.find_opt t.host_handlers dgram.Dgram.dst.ip with
      | Some handler -> handler dgram
      | None -> t.undeliverable <- t.undeliverable + 1));
  Dgram.release dgram

(* Uplink hands off to the destination host's downlink; the core itself is
   assumed over-provisioned (zero extra delay beyond the two links). *)
let route t dgram =
  match Hashtbl.find_opt t.hosts dgram.Dgram.dst.ip with
  | Some host -> Link.send host.downlink dgram
  | None ->
      t.undeliverable <- t.undeliverable + 1;
      Dgram.release dgram

let add_host t ~ip ?(uplink = Link.default) ?(downlink = Link.default) () =
  (* Links carry a stable name ("up:<ip>" / "down:<ip>") so drop trace
     events identify the culpable edge — what QoE attribution cites. *)
  let ip_s = Addr.ip_to_string ip in
  let up =
    Link.create ~name:("up:" ^ ip_s) t.engine (Rng.split t.rng) uplink
      ~sink:(fun d -> route t d)
  in
  let down =
    Link.create ~name:("down:" ^ ip_s) t.engine (Rng.split t.rng) downlink
      ~sink:(fun d -> deliver t d)
  in
  Hashtbl.replace t.hosts ip { uplink = up; downlink = down }

let bind t addr handler = Hashtbl.replace t.handlers addr handler
let unbind t addr = Hashtbl.remove t.handlers addr
let bind_host t ~ip handler = Hashtbl.replace t.host_handlers ip handler
let unbind_host t ~ip = Hashtbl.remove t.host_handlers ip

let send t dgram =
  match Hashtbl.find_opt t.hosts dgram.Dgram.src.ip with
  | Some host ->
      (* A destination with no host can never be delivered: count the drop
         up front instead of simulating an uplink transit whose only
         outcome is the same counter bump two events later. *)
      if Hashtbl.mem t.hosts dgram.Dgram.dst.ip then Link.send host.uplink dgram
      else begin
        t.undeliverable <- t.undeliverable + 1;
        Dgram.release dgram
      end
  | None ->
      t.undeliverable <- t.undeliverable + 1;
      Dgram.release dgram

let uplink t ~ip =
  match Hashtbl.find_opt t.hosts ip with
  | Some h -> h.uplink
  | None -> raise Not_found

let downlink t ~ip =
  match Hashtbl.find_opt t.hosts ip with
  | Some h -> h.downlink
  | None -> raise Not_found

let engine t = t.engine
let undeliverable t = t.undeliverable
