(** Discrete-event simulation engine.

    Time is an [int] count of nanoseconds since simulation start. All
    simulated components (links, endpoints, SFUs, switches) schedule
    callbacks here; running the engine advances the virtual clock to each
    event in order. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val schedule : t -> after:int -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + after]. [after >= 0]. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Absolute-time variant. [time] must not be in the past. *)

val every : t -> ?start:int -> interval:int -> (unit -> bool) -> unit
(** [every t ~interval f] runs [f] at [start] (default [now + interval])
    and then every [interval] ns for as long as [f] returns [true]. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Processes events in time order. Stops when the queue is empty, when
    virtual time would exceed [until], or after [max_events] events. The
    clock is advanced to [until] if given. *)

val step : ?until:int -> t -> bool
(** Process the single earliest event, advancing the clock to it; [false]
    if the queue is empty or the next event lies beyond [until]. Lets a
    component block on a simulated round trip (e.g. a control-plane RPC)
    by pumping events until its reply lands, without running past it. *)

val pending : t -> int

val ready : t -> int
(** Number of events tied at the earliest timestamp (see
    {!Eventq.ready_count}). *)

val set_chooser : t -> (ready:int -> int) option -> unit
(** Install (or clear) a same-timestamp scheduling chooser. When several
    events are tied at the minimum timestamp, [choose ~ready:n] picks which
    of the [n] tied events (0-based, insertion order) fires next; out-of-
    range answers fall back to [0]. With no chooser — the default — ties
    fire in insertion order, which is the engine's documented deterministic
    behavior. Used by {!Scallop_mc} to turn the scheduler into an explicit
    choice point. *)

(* Time unit helpers — readable literals for callers. *)
val ns : int -> int
val us : int -> int
val ms : int -> int
val sec : float -> int
val to_sec : int -> float
