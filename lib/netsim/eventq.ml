(* Calendar-queue event queue: a timing wheel of [wheel_slots] buckets
   (granularity [1 lsl slot_bits] ns) over preallocated arena storage,
   with a binary min-heap spill for events beyond the wheel's window.

   Entries live in parallel arrays ([e_time]/[e_seq]/[e_next]/[e_val])
   linked through an intrusive free list, so steady-state push/pop
   allocates nothing — the arena only grows (by doubling) when more
   events are simultaneously pending than ever before.

   Invariants:
   - a wheel bucket [s land wheel_mask] holds exactly the entries whose
     absolute slot ([time asr slot_bits]) is [s], for [s] in
     [wbase, wbase + wheel_slots); the window base [wbase] only moves
     when the wheel drains (jump to the heap minimum) or an
     earlier-than-[wbase] push forces a rebase;
   - the heap holds exactly the entries with slot >= wbase + wheel_slots,
     so a slot's entries are never split across the two structures and
     the wheel minimum is always the global minimum;
   - each bucket's list is sorted by (time, seq), so equal-time entries
     form a contiguous head run in insertion order — the documented
     tie-break contract — and pushes at the tail (monotone times, or
     same-time bursts, the common case) append in O(1);
   - [cursor] (wbase <= cursor) lower-bounds the minimum occupied slot;
     pops slide it forward, a push below it pulls it back. *)

let slot_bits = 12 (* 4096 ns per slot *)
let wheel_slots = 2048 (* window = 2048 slots ~ 8.4 ms *)
let wheel_mask = wheel_slots - 1
let slot_of time = time asr slot_bits

type 'a t = {
  (* entry arena *)
  mutable e_time : int array;
  mutable e_seq : int array;
  mutable e_next : int array;
  mutable e_val : 'a array;  (* [||] until the first push supplies a filler *)
  mutable free : int;  (* arena free-list head; -1 = grow *)
  (* wheel *)
  bhead : int array;
  btail : int array;
  mutable wbase : int;  (* absolute slot of the window base *)
  mutable cursor : int;  (* scan position; no occupied slot below it *)
  mutable wcount : int;
  (* far-future spill: min-heap of arena indices, ordered by (time, seq) *)
  mutable heap : int array;
  mutable hsize : int;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    e_time = [||];
    e_seq = [||];
    e_next = [||];
    e_val = [||];
    free = -1;
    bhead = Array.make wheel_slots (-1);
    btail = Array.make wheel_slots (-1);
    wbase = 0;
    cursor = 0;
    wcount = 0;
    heap = [||];
    hsize = 0;
    size = 0;
    next_seq = 0;
  }

let is_empty t = t.size = 0
let length t = t.size

let before t a b =
  t.e_time.(a) < t.e_time.(b)
  || (t.e_time.(a) = t.e_time.(b) && t.e_seq.(a) < t.e_seq.(b))

(* --- arena ---------------------------------------------------------------- *)

let grow_arena t v =
  let cap = Array.length t.e_time in
  let ncap = max 16 (2 * cap) in
  let nt = Array.make ncap 0 and ns = Array.make ncap 0 and nn = Array.make ncap (-1) in
  Array.blit t.e_time 0 nt 0 cap;
  Array.blit t.e_seq 0 ns 0 cap;
  Array.blit t.e_next 0 nn 0 cap;
  let nv = Array.make ncap (if cap = 0 then v else t.e_val.(0)) in
  Array.blit t.e_val 0 nv 0 cap;
  t.e_time <- nt;
  t.e_seq <- ns;
  t.e_next <- nn;
  t.e_val <- nv;
  for j = cap to ncap - 2 do
    nn.(j) <- j + 1
  done;
  nn.(ncap - 1) <- -1;
  t.free <- cap

let arena_alloc t ~time ~seq v =
  if t.free < 0 then grow_arena t v;
  let i = t.free in
  t.free <- t.e_next.(i);
  t.e_time.(i) <- time;
  t.e_seq.(i) <- seq;
  t.e_next.(i) <- -1;
  t.e_val.(i) <- v;
  i

let arena_free t i =
  t.e_next.(i) <- t.free;
  t.free <- i

(* --- heap spill ----------------------------------------------------------- *)

let heap_push t i =
  if t.hsize = Array.length t.heap then begin
    let bigger = Array.make (max 16 (2 * t.hsize)) i in
    Array.blit t.heap 0 bigger 0 t.hsize;
    t.heap <- bigger
  end;
  t.heap.(t.hsize) <- i;
  t.hsize <- t.hsize + 1;
  let j = ref (t.hsize - 1) in
  let continue = ref (!j > 0) in
  while !continue do
    let parent = (!j - 1) / 2 in
    if before t t.heap.(!j) t.heap.(parent) then begin
      let tmp = t.heap.(!j) in
      t.heap.(!j) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      j := parent;
      continue := !j > 0
    end
    else continue := false
  done

let heap_pop t =
  let top = t.heap.(0) in
  t.hsize <- t.hsize - 1;
  if t.hsize > 0 then begin
    t.heap.(0) <- t.heap.(t.hsize);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.hsize && before t t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.hsize && before t t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

(* --- wheel ---------------------------------------------------------------- *)

let insert_wheel t i =
  let s = slot_of t.e_time.(i) in
  let b = s land wheel_mask in
  t.wcount <- t.wcount + 1;
  if s < t.cursor then t.cursor <- s;
  let head = t.bhead.(b) in
  if head < 0 then begin
    t.bhead.(b) <- i;
    t.btail.(b) <- i;
    t.e_next.(i) <- -1
  end
  else begin
    let tl = t.btail.(b) in
    if before t tl i then begin
      (* monotone or same-time push: O(1) append *)
      t.e_next.(tl) <- i;
      t.e_next.(i) <- -1;
      t.btail.(b) <- i
    end
    else if before t i head then begin
      t.e_next.(i) <- head;
      t.bhead.(b) <- i
    end
    else begin
      let p = ref head in
      while t.e_next.(!p) >= 0 && before t t.e_next.(!p) i do
        p := t.e_next.(!p)
      done;
      t.e_next.(i) <- t.e_next.(!p);
      t.e_next.(!p) <- i;
      if t.e_next.(i) < 0 then t.btail.(b) <- i
    end
  end

(* A push below the window base (arbitrary time orders are legal for a
   standalone queue; the engine never does this). Re-home the window at
   the new minimum and re-insert every wheel entry — entries now beyond
   the shrunk window spill to the heap. O(wheel occupancy), rare. *)
let rebase t new_base =
  let moved = ref [] in
  for b = 0 to wheel_slots - 1 do
    let i = ref t.bhead.(b) in
    while !i >= 0 do
      let next = t.e_next.(!i) in
      moved := !i :: !moved;
      i := next
    done;
    t.bhead.(b) <- -1;
    t.btail.(b) <- -1
  done;
  t.wcount <- 0;
  t.wbase <- new_base;
  t.cursor <- new_base;
  List.iter
    (fun i ->
      if slot_of t.e_time.(i) >= t.wbase + wheel_slots then heap_push t i
      else insert_wheel t i)
    !moved

(* Make the global minimum the head of the bucket at [cursor]. Requires
   [size > 0]. If the wheel drained, jump the window to the heap minimum
   and migrate everything now inside it. *)
let reposition t =
  if t.wcount = 0 then begin
    t.wbase <- slot_of t.e_time.(t.heap.(0));
    t.cursor <- t.wbase;
    let wend = t.wbase + wheel_slots in
    while t.hsize > 0 && slot_of t.e_time.(t.heap.(0)) < wend do
      insert_wheel t (heap_pop t)
    done
  end;
  while t.bhead.(t.cursor land wheel_mask) < 0 do
    t.cursor <- t.cursor + 1
  done

(* --- public API ------------------------------------------------------------ *)

let push t ~time value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = arena_alloc t ~time ~seq value in
  let s = slot_of time in
  if t.size = 0 then begin
    (* anchor the window on the first event *)
    t.wbase <- s;
    t.cursor <- s;
    t.size <- 1;
    insert_wheel t i
  end
  else begin
    t.size <- t.size + 1;
    if s < t.wbase then begin
      rebase t s;
      insert_wheel t i
    end
    else if s >= t.wbase + wheel_slots then heap_push t i
    else insert_wheel t i
  end

let pop t =
  if t.size = 0 then None
  else begin
    reposition t;
    let b = t.cursor land wheel_mask in
    let i = t.bhead.(b) in
    t.bhead.(b) <- t.e_next.(i);
    if t.e_next.(i) < 0 then t.btail.(b) <- -1;
    t.wcount <- t.wcount - 1;
    t.size <- t.size - 1;
    let time = t.e_time.(i) and v = t.e_val.(i) in
    arena_free t i;
    Some (time, v)
  end

let peek_time t =
  if t.size = 0 then None
  else begin
    reposition t;
    Some t.e_time.(t.bhead.(t.cursor land wheel_mask))
  end

let ready_count t =
  if t.size = 0 then 0
  else begin
    reposition t;
    let i = ref t.bhead.(t.cursor land wheel_mask) in
    let tmin = t.e_time.(!i) in
    let n = ref 0 in
    while !i >= 0 && t.e_time.(!i) = tmin do
      incr n;
      i := t.e_next.(!i)
    done;
    !n
  end

let pop_nth t k =
  if t.size = 0 || k < 0 then None
  else begin
    reposition t;
    let b = t.cursor land wheel_mask in
    let tmin = t.e_time.(t.bhead.(b)) in
    (* walk the equal-time head run (sorted by seq = insertion order) *)
    let prev = ref (-1) and i = ref t.bhead.(b) and j = ref 0 in
    while !j < k && !i >= 0 && t.e_time.(!i) = tmin do
      prev := !i;
      i := t.e_next.(!i);
      incr j
    done;
    if !i < 0 || t.e_time.(!i) <> tmin then None
    else begin
      let x = !i in
      if !prev < 0 then t.bhead.(b) <- t.e_next.(x)
      else t.e_next.(!prev) <- t.e_next.(x);
      if t.btail.(b) = x then t.btail.(b) <- !prev;  (* -1 when x was alone *)
      t.wcount <- t.wcount - 1;
      t.size <- t.size - 1;
      let time = t.e_time.(x) and v = t.e_val.(x) in
      arena_free t x;
      Some (time, v)
    end
  end
