type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * t.size) in
    let bigger = Array.make cap entry in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let ready_count t =
  if t.size = 0 then 0
  else begin
    let tmin = t.heap.(0).time in
    let n = ref 0 in
    for i = 0 to t.size - 1 do
      if t.heap.(i).time = tmin then incr n
    done;
    !n
  end

(* Remove the entry at heap index [i], restoring the heap property. The
   entry moved into the hole may need to travel either direction. *)
let remove_at t i =
  let e = t.heap.(i) in
  t.size <- t.size - 1;
  if i < t.size then begin
    t.heap.(i) <- t.heap.(t.size);
    sift_down t i;
    sift_up t i
  end;
  e

let pop_nth t k =
  if t.size = 0 || k < 0 then None
  else begin
    let tmin = t.heap.(0).time in
    let tied = ref [] in
    for i = t.size - 1 downto 0 do
      if t.heap.(i).time = tmin then tied := i :: !tied
    done;
    let tied =
      List.sort (fun a b -> compare t.heap.(a).seq t.heap.(b).seq) !tied
    in
    match List.nth_opt tied k with
    | None -> None
    | Some i ->
        let e = remove_at t i in
        Some (e.time, e.value)
  end
