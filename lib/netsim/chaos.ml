module Rng = Scallop_util.Rng

type fault =
  | Crash_restart of { node : int; at_ns : int; down_ns : int }
  | Partition of { node : int; from_ns : int; until_ns : int }
  | Control_loss of { node : int; from_ns : int; until_ns : int; loss : float }

type schedule = fault list

let fault_start = function
  | Crash_restart { at_ns; _ } -> at_ns
  | Partition { from_ns; _ } | Control_loss { from_ns; _ } -> from_ns

let fault_node = function
  | Crash_restart { node; _ } | Partition { node; _ } | Control_loss { node; _ } -> node

let fault_end = function
  | Crash_restart { at_ns; down_ns; _ } -> at_ns + down_ns
  | Partition { until_ns; _ } | Control_loss { until_ns; _ } -> until_ns

let pp_fault ppf = function
  | Crash_restart { node; at_ns; down_ns } ->
      Format.fprintf ppf "crash node=%d at=%dns down=%dns" node at_ns down_ns
  | Partition { node; from_ns; until_ns } ->
      Format.fprintf ppf "partition node=%d [%dns, %dns)" node from_ns until_ns
  | Control_loss { node; from_ns; until_ns; loss } ->
      Format.fprintf ppf "control-loss node=%d [%dns, %dns) loss=%.2f" node from_ns
        until_ns loss

let describe schedule =
  String.concat "\n" (List.map (fun f -> Format.asprintf "%a" pp_fault f) schedule)

(* Deterministic ordering for a generated schedule: by start time, then
   node, then the full structural comparison — so two runs from the same
   seed print and install the same fault sequence. *)
let sort schedule =
  List.sort
    (fun a b ->
      match compare (fault_start a) (fault_start b) with
      | 0 -> ( match compare (fault_node a) (fault_node b) with 0 -> compare a b | c -> c)
      | c -> c)
    schedule

(* Default placement: starts uniform in the middle [10%, 70%) of the
   horizon, durations up to ~1/4 of it — faults land while the workload
   is active and every outage heals with time left to recover and verify.
   [disjoint] instead gives each fault its own horizon slot (start within
   the slot's first 40%, duration under half a slot), so no two faults
   overlap and each repair path is exercised in isolation. *)
let generate rng ~nodes ~horizon_ns ?(crashes = 1) ?(partitions = 1) ?(loss_bursts = 0)
    ?(loss = 0.3) ?(disjoint = false) () =
  if nodes <= 0 then invalid_arg "Chaos.generate: need at least one node";
  if horizon_ns <= 0 then invalid_arg "Chaos.generate: horizon must be positive";
  let kinds =
    List.concat
      [
        List.init crashes (fun _ -> `Crash);
        List.init partitions (fun _ -> `Partition);
        List.init loss_bursts (fun _ -> `Loss);
      ]
  in
  let total = List.length kinds in
  let place i =
    if disjoint then begin
      let w = horizon_ns / max 1 total in
      let base = i * w in
      let start = base + (w / 10) + Rng.int rng (max 1 (w * 3 / 10)) in
      let dur = 1 + (w / 10) + Rng.int rng (max 1 (w * 4 / 10)) in
      (start, dur)
    end
    else
      let start = (horizon_ns / 10) + Rng.int rng (horizon_ns * 6 / 10) in
      let dur = 1 + (horizon_ns / 20) + Rng.int rng (horizon_ns / 5) in
      (start, dur)
  in
  let faults =
    List.mapi
      (fun i kind ->
        let start, dur = place i in
        let node = Rng.int rng nodes in
        match kind with
        | `Crash -> Crash_restart { node; at_ns = start; down_ns = dur }
        | `Partition -> Partition { node; from_ns = start; until_ns = start + dur }
        | `Loss -> Control_loss { node; from_ns = start; until_ns = start + dur; loss })
      kinds
  in
  sort faults

let shift delta schedule =
  List.map
    (fun fault ->
      match fault with
      | Crash_restart { node; at_ns; down_ns } ->
          Crash_restart { node; at_ns = at_ns + delta; down_ns }
      | Partition { node; from_ns; until_ns } ->
          Partition { node; from_ns = from_ns + delta; until_ns = until_ns + delta }
      | Control_loss { node; from_ns; until_ns; loss } ->
          Control_loss
            { node; from_ns = from_ns + delta; until_ns = until_ns + delta; loss })
    schedule

let install engine schedule ~crash ~restart ~set_loss =
  List.iter
    (fun fault ->
      match fault with
      | Crash_restart { node; at_ns; down_ns } ->
          Engine.at engine ~time:at_ns (fun () -> crash node);
          Engine.at engine ~time:(at_ns + down_ns) (fun () -> restart node)
      | Partition { node; from_ns; until_ns } ->
          Engine.at engine ~time:from_ns (fun () -> set_loss node 1.0);
          Engine.at engine ~time:until_ns (fun () -> set_loss node 0.0)
      | Control_loss { node; from_ns; until_ns; loss } ->
          Engine.at engine ~time:from_ns (fun () -> set_loss node loss);
          Engine.at engine ~time:until_ns (fun () -> set_loss node 0.0))
    schedule

let horizon_end schedule = List.fold_left (fun acc f -> max acc (fault_end f)) 0 schedule
