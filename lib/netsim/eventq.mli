(** Calendar-queue event queue for the discrete-event engine: a bucketed
    timing wheel over preallocated arena storage, spilling far-future
    events to a binary heap. Steady-state [push]/[pop] allocates nothing —
    entries live in parallel arrays threaded through an intrusive free
    list, and the arena only grows when more events are simultaneously
    pending than ever before (see DESIGN.md §13 for the layout).

    {2 Tie-breaking contract (stable public API)}

    Events with equal timestamps fire in {b insertion order}: every [push]
    stamps the entry with a monotonically increasing sequence number, and
    ordering is lexicographic on [(time, seq)] — including across the
    wheel/heap spill boundary. This is a documented, tested contract —
    deterministic replay, the trace-determinism CI gate, and the
    {!Scallop_mc} explorer's permutation choice points all depend on it.
    [pop t] is always equivalent to [pop_nth t 0]. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** [time] is an absolute timestamp in nanoseconds. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the earliest event; ties broken by insertion
    order (see the tie-breaking contract above). *)

val peek_time : 'a t -> int option

val ready_count : 'a t -> int
(** Number of events tied at the minimum timestamp — the size of the
    "ready set" an explorer may permute. [0] iff the queue is empty.
    O(ready): equal-time events share one sorted wheel bucket, so the
    tied run is counted without scanning the rest of the queue. *)

val pop_nth : 'a t -> int -> (int * 'a) option
(** [pop_nth t k] removes and returns the [k]-th event (0-based, in
    insertion order) among those tied at the minimum timestamp. [None] if
    the queue is empty or [k >= ready_count t]. [pop_nth t 0] behaves
    exactly like [pop]. O(ready). *)
