module Rng = Scallop_util.Rng
module Trace = Scallop_obs.Trace

type jitter =
  | No_jitter
  | Uniform of int
  | Heavy_tail of { median_ns : float; sigma : float }

type loss_model =
  | Iid of float
  | Gilbert of { avg : float; burst_len : float }

type config = {
  rate_bps : float;
  propagation_ns : int;
  queue_bytes : int;
  loss : float;
  loss_model : loss_model option;
  jitter : jitter;
  reorder : float;
}

let default =
  {
    rate_bps = 100e6;
    propagation_ns = 5_000_000;
    queue_bytes = 256 * 1024;
    loss = 0.0;
    loss_model = None;
    jitter = No_jitter;
    reorder = 0.0;
  }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable cfg : config;
  mutable name : string;  (** identity cited by drop events / attribution *)
  sink : Dgram.t -> unit;
  mutable busy_until : int;
  mutable queued_bytes : int;
  mutable in_bad_state : bool;  (** Gilbert-Elliott chain state *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_delivered : int;
}

let create ?(name = "") engine rng cfg ~sink =
  {
    engine;
    rng;
    cfg;
    name;
    sink;
    busy_until = 0;
    queued_bytes = 0;
    in_bad_state = false;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes_delivered = 0;
  }

let set_name t name = t.name <- name
let name t = t.name

let tx_time_ns cfg size =
  if cfg.rate_bps = infinity then 0
  else int_of_float (float_of_int (size * 8) /. cfg.rate_bps *. 1e9)

(* Reordered packets are held back roughly one to two packet-train times,
   enough to land behind their successors. *)
let reorder_extra_ns t = 500_000 + Rng.int t.rng 1_500_000

(* Advance the loss process one packet and decide this packet's fate. *)
let lose_packet t cfg =
  match cfg.loss_model with
  | None | Some (Iid _) ->
      let p = match cfg.loss_model with Some (Iid p) -> p | _ -> cfg.loss in
      Rng.bernoulli t.rng p
  | Some (Gilbert { avg; burst_len }) ->
      let p_bad_to_good = 1.0 /. Float.max 1.0 burst_len in
      let stationary_bad = Float.min 0.95 avg in
      let p_good_to_bad =
        stationary_bad *. p_bad_to_good /. Float.max 0.001 (1.0 -. stationary_bad)
      in
      if t.in_bad_state then begin
        if Rng.bernoulli t.rng p_bad_to_good then t.in_bad_state <- false
      end
      else if Rng.bernoulli t.rng p_good_to_bad then t.in_bad_state <- true;
      t.in_bad_state

let send t dgram =
  t.sent <- t.sent + 1;
  let cfg = t.cfg in
  let size = Dgram.wire_size dgram in
  (* the causal timeline only follows packets that carry a trace id, so
     untraced traffic costs exactly this one comparison *)
  let traced = dgram.Dgram.trace >= 0 && Trace.enabled Trace.Packet in
  if lose_packet t cfg then begin
    t.dropped <- t.dropped + 1;
    if traced then
      Trace.instant ~ts:(Engine.now t.engine) ~trace:dgram.Dgram.trace ~cat:"link"
        "link_drop" ~args:[ ("reason", Trace.S "loss"); ("link", Trace.S t.name) ];
    (* the datagram dies here: recycle a pooled payload *)
    Dgram.release dgram
  end
  else if t.queued_bytes + size > cfg.queue_bytes then begin
    t.dropped <- t.dropped + 1;
    if traced then
      Trace.instant ~ts:(Engine.now t.engine) ~trace:dgram.Dgram.trace ~cat:"link"
        "link_drop"
        ~args:
          [
            ("reason", Trace.S "queue");
            ("link", Trace.S t.name);
            ("queued_bytes", Trace.I t.queued_bytes);
          ];
    Dgram.release dgram
  end
  else begin
    let now = Engine.now t.engine in
    let start = max now t.busy_until in
    let tx = tx_time_ns cfg size in
    let departure = start + tx in
    t.busy_until <- departure;
    if traced then
      Trace.instant ~ts:now ~trace:dgram.Dgram.trace ~cat:"link" "link_enqueue"
        ~args:
          [
            ("size", Trace.I size);
            ("departure_ns", Trace.I departure);
            ("queued_bytes", Trace.I t.queued_bytes);
          ];
    (* zero serialization time means zero queue occupancy: the release
       event would fire at the same instant it was scheduled, so skip the
       bookkeeping entirely rather than pay two event-queue operations per
       datagram on ideal links *)
    if tx > 0 then begin
      t.queued_bytes <- t.queued_bytes + size;
      Engine.at t.engine ~time:departure (fun () ->
          t.queued_bytes <- t.queued_bytes - size)
    end;
    let jitter =
      match cfg.jitter with
      | No_jitter -> 0
      | Uniform n -> if n > 0 then Rng.int t.rng (n + 1) else 0
      | Heavy_tail { median_ns; sigma } ->
          int_of_float (Rng.lognormal t.rng ~mu:(log median_ns) ~sigma)
    in
    let extra = if Rng.bernoulli t.rng cfg.reorder then reorder_extra_ns t else 0 in
    let arrival = departure + cfg.propagation_ns + jitter + extra in
    Engine.at t.engine ~time:arrival (fun () ->
        t.delivered <- t.delivered + 1;
        t.bytes_delivered <- t.bytes_delivered + size;
        if dgram.Dgram.trace >= 0 && Trace.enabled Trace.Packet then
          Trace.instant ~ts:arrival ~trace:dgram.Dgram.trace ~cat:"link" "link_deliver"
            ~args:[ ("size", Trace.I size) ];
        t.sink dgram)
  end

let set_rate t rate = t.cfg <- { t.cfg with rate_bps = rate }
let set_loss t loss = t.cfg <- { t.cfg with loss }
let config t = t.cfg
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let bytes_delivered t = t.bytes_delivered
