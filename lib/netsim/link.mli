(** A unidirectional link with a drop-tail queue, serialization delay,
    propagation delay, and optional iid loss, jitter and reordering.

    Clients in the paper's experiments are characterized by their uplink
    and downlink to the SFU; constraining a downlink at runtime (see
    {!set_rate}) is how the Fig. 14 rate-adaptation scenario emulates a
    deteriorating receiver connection. *)

type jitter =
  | No_jitter
  | Uniform of int  (** extra delay uniform in [0, n] ns *)
  | Heavy_tail of { median_ns : float; sigma : float }
      (** lognormal extra delay — models end-host stack/NIC noise whose
          tail far exceeds its median *)

type loss_model =
  | Iid of float  (** independent loss probability per packet *)
  | Gilbert of { avg : float; burst_len : float }
      (** two-state Gilbert-Elliott chain with [avg] long-run loss rate
          and mean loss-burst length [burst_len] packets (bad state drops
          everything) — wireless-style correlated loss *)

type config = {
  rate_bps : float;  (** Serialization rate. [infinity] = no serialization delay. *)
  propagation_ns : int;
  queue_bytes : int;  (** Drop-tail capacity; packets past this are dropped. *)
  loss : float;  (** iid loss probability in [0,1]; see also [loss_model]. *)
  loss_model : loss_model option;
      (** overrides [loss] when set (kept separate so `{ default with
          loss = p }` stays the common idiom). *)
  jitter : jitter;
  reorder : float;  (** Probability a packet is held back past its successor. *)
}

val default : config
(** 100 Mb/s, 5 ms propagation, 256 KiB queue, no loss/jitter/reorder. *)

type t

val create :
  ?name:string ->
  Engine.t ->
  Scallop_util.Rng.t ->
  config ->
  sink:(Dgram.t -> unit) ->
  t
(** [sink] is invoked at the (virtual) time each surviving packet is
    delivered. [name] identifies the link in drop trace events so
    attribution can cite it (default [""]; {!Netsim.Network} names host
    links ["up:<ip>"] / ["down:<ip>"]). *)

val set_name : t -> string -> unit
val name : t -> string

val send : t -> Dgram.t -> unit
(** Enqueue a packet at the current engine time. *)

val set_rate : t -> float -> unit
(** Change the serialization rate at runtime (network deterioration). *)

val set_loss : t -> float -> unit
val config : t -> config

(** Delivery statistics since creation. *)
val sent : t -> int
val delivered : t -> int
val dropped : t -> int
val bytes_delivered : t -> int
