(** UDP-like datagrams — the unit the simulated network carries. The
    payload is opaque wire bytes; protocol layers above parse them. *)

type t = {
  src : Scallop_util.Addr.t;
  dst : Scallop_util.Addr.t;
  payload : bytes;
  trace : int;
      (** Per-packet trace id from {!Scallop_obs.Trace.next_packet_id};
          [-1] = untraced. Observability metadata only — it rides along
          with the datagram so links and receivers can stamp causal
          events, and is never part of the simulated wire bytes. *)
}

val v : ?trace:int -> src:Scallop_util.Addr.t -> dst:Scallop_util.Addr.t -> bytes -> t

val wire_size : t -> int
(** Payload plus the 42-byte Ethernet+IPv4+UDP overhead — what links and
    throughput accounting charge for. *)

val pp : Format.formatter -> t -> unit
