(** UDP-like datagrams — the unit the simulated network carries. The
    payload is opaque wire bytes; protocol layers above parse them. *)

type t = {
  src : Scallop_util.Addr.t;
  dst : Scallop_util.Addr.t;
  payload : bytes;
  trace : int;
      (** Per-packet trace id from {!Scallop_obs.Trace.next_packet_id};
          [-1] = untraced. Observability metadata only — it rides along
          with the datagram so links and receivers can stamp causal
          events, and is never part of the simulated wire bytes. *)
  pool : Scallop_util.Bufpool.t option;
      (** [Some p] when [payload] was checked out of buffer pool [p]
          (fan-out replicas on the data plane's fast path). The network
          layer calls {!release} at the point the datagram's life ends —
          link drop, undeliverable destination, or after the bound
          handler has consumed it — recycling the bytes. A handler that
          wants to {e retain} the payload past its own return must copy
          it. [None] (ordinary GC-owned payload) everywhere else. *)
}

val v :
  ?trace:int ->
  ?pool:Scallop_util.Bufpool.t ->
  src:Scallop_util.Addr.t ->
  dst:Scallop_util.Addr.t ->
  bytes ->
  t

val release : t -> unit
(** Return a pooled payload to its pool; no-op for [pool = None]. Called
    exactly once, by whoever terminates the datagram (the network layer
    on the delivery/drop paths). *)

val wire_size : t -> int
(** Payload plus the 42-byte Ethernet+IPv4+UDP overhead — what links and
    throughput accounting charge for. *)

val pp : Format.formatter -> t -> unit
