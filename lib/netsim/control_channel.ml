module Rng = Scallop_util.Rng

type t = {
  fwd : Link.t;
  rev : Link.t;
  fwd_sink : (Dgram.t -> unit) ref;
  rev_sink : (Dgram.t -> unit) ref;
  unclaimed : int ref;
}

let create engine rng ?(fwd = Link.default) ?(rev = Link.default) () =
  let unclaimed = ref 0 in
  let fwd_sink = ref (fun (_ : Dgram.t) -> incr unclaimed) in
  let rev_sink = ref (fun (_ : Dgram.t) -> incr unclaimed) in
  let fwd = Link.create engine (Rng.split rng) fwd ~sink:(fun d -> !fwd_sink d) in
  let rev = Link.create engine (Rng.split rng) rev ~sink:(fun d -> !rev_sink d) in
  { fwd; rev; fwd_sink; rev_sink; unclaimed }

let set_fwd_sink t f = t.fwd_sink := f
let set_rev_sink t f = t.rev_sink := f
let send_fwd t d = Link.send t.fwd d
let send_rev t d = Link.send t.rev d
let fwd_link t = t.fwd
let rev_link t = t.rev
let unclaimed t = !(t.unclaimed)
