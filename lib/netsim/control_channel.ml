module Rng = Scallop_util.Rng

type direction = Fwd | Rev
type verdict = Deliver | Delay of int | Drop

type t = {
  fwd : Link.t;
  rev : Link.t;
  fwd_sink : (Dgram.t -> unit) ref;
  rev_sink : (Dgram.t -> unit) ref;
  unclaimed : int ref;
  interpose : (dir:direction -> Dgram.t -> verdict) option ref;
  interposed_drops : int ref;
}

let create engine rng ?(fwd = Link.default) ?(rev = Link.default) () =
  let unclaimed = ref 0 in
  let fwd_sink = ref (fun (_ : Dgram.t) -> incr unclaimed) in
  let rev_sink = ref (fun (_ : Dgram.t) -> incr unclaimed) in
  let interpose = ref None in
  let interposed_drops = ref 0 in
  (* Deliveries pass through the interposer (when installed) after the
     link has decided to deliver; a [Delay] re-enters the event queue so
     the rescheduled delivery competes in later ready sets. *)
  let admit dir sink d =
    match !interpose with
    | None -> !sink d
    | Some f -> (
        match f ~dir d with
        | Deliver -> !sink d
        | Drop -> incr interposed_drops
        | Delay after ->
            let after = max 0 after in
            Engine.schedule engine ~after (fun () -> !sink d))
  in
  let fwd = Link.create engine (Rng.split rng) fwd ~sink:(admit Fwd fwd_sink) in
  let rev = Link.create engine (Rng.split rng) rev ~sink:(admit Rev rev_sink) in
  { fwd; rev; fwd_sink; rev_sink; unclaimed; interpose; interposed_drops }

let set_fwd_sink t f = t.fwd_sink := f
let set_rev_sink t f = t.rev_sink := f
let set_interposer t f = t.interpose := f
let interposed_drops t = !(t.interposed_drops)
let send_fwd t d = Link.send t.fwd d
let send_rev t d = Link.send t.rev d
let fwd_link t = t.fwd
let rev_link t = t.rev
let unclaimed t = !(t.unclaimed)
