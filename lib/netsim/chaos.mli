(** Deterministic fault-schedule harness.

    A chaos schedule is plain data: a seed-derived list of faults against
    integer-identified nodes, installed onto the {!Engine} as absolute-time
    callbacks. The module knows nothing about what a node {e is} — the
    caller supplies the [crash] / [restart] / [set_loss] actions (for
    Scallop: {!Switch_agent.crash}, {!Switch_agent.restart}, and setting
    the loss rate of both directions of a switch's control channel) — so
    the same schedule machinery drives any simulated component.

    Everything is deterministic: the same seed yields the same schedule,
    {!install} registers the same virtual-time callbacks, and a
    deterministic engine replays the identical run — which is what lets
    CI diff two executions byte for byte. *)

type fault =
  | Crash_restart of { node : int; at_ns : int; down_ns : int }
      (** power-cycle: down at [at_ns], fresh boot at [at_ns + down_ns] *)
  | Partition of { node : int; from_ns : int; until_ns : int }
      (** the node's control channel drops everything in [\[from, until)];
          the node itself stays up *)
  | Control_loss of { node : int; from_ns : int; until_ns : int; loss : float }
      (** degraded (not severed) control channel: iid loss at [loss] *)

type schedule = fault list

val fault_node : fault -> int
val fault_start : fault -> int

val fault_end : fault -> int
(** When the fault's effect is lifted (restart time / heal time). *)

val horizon_end : schedule -> int
(** Latest {!fault_end} — the earliest moment the whole system is
    fault-free again (0 for an empty schedule). *)

val pp_fault : Format.formatter -> fault -> unit

val describe : schedule -> string
(** One fault per line, in schedule order — stable across runs of the
    same seed, for golden output. *)

val generate :
  Scallop_util.Rng.t ->
  nodes:int ->
  horizon_ns:int ->
  ?crashes:int ->
  ?partitions:int ->
  ?loss_bursts:int ->
  ?loss:float ->
  ?disjoint:bool ->
  unit ->
  schedule
(** Draw a schedule: [crashes] crash/restart cycles (default 1),
    [partitions] full control partitions (default 1) and [loss_bursts]
    degraded-channel bursts at rate [loss] (defaults 0 and 0.3), spread
    over nodes [\[0, nodes)]. Starts land in the middle 60% of
    [horizon_ns] and durations stay under ~30% of it, so every fault
    heals with simulated time left to recover. [disjoint] (default
    false) gives each fault its own horizon slot instead, guaranteeing
    faults never overlap — each repair path exercised in isolation.
    Sorted by start time. *)

val shift : int -> schedule -> schedule
(** Displace every fault by the given delta — anchors a generated
    schedule at the engine's current virtual time when scenario setup
    (e.g. signaling over a lossy control channel) already consumed some
    of the clock. *)

val install :
  Engine.t ->
  schedule ->
  crash:(int -> unit) ->
  restart:(int -> unit) ->
  set_loss:(int -> float -> unit) ->
  unit
(** Register every fault as absolute-time engine callbacks. Faults whose
    times are already in the past raise (install before running). *)
