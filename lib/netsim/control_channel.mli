(** An out-of-band bidirectional channel: a pair of {!Link}s wired
    directly between two endpoints, without traversing {!Network} host
    links. This models a management/control network (the SDN control
    channel between a controller and a switch CPU) whose latency, loss
    and queueing are configured independently of the media path — and
    whose traffic does not perturb media-link state.

    Sinks may be attached after creation (the two endpoints typically
    come up in either order); datagrams arriving before a sink is set
    are counted in {!unclaimed} and dropped. *)

type t

type direction = Fwd | Rev

type verdict =
  | Deliver  (** hand the datagram to the sink now *)
  | Delay of int  (** re-deliver after [n] ns (clamped to >= 0) *)
  | Drop  (** discard; counted in {!interposed_drops} *)

val create :
  Engine.t ->
  Scallop_util.Rng.t ->
  ?fwd:Link.config ->
  ?rev:Link.config ->
  unit ->
  t
(** Both directions default to {!Link.default}. Each direction gets an
    independent split of [rng]. *)

val set_fwd_sink : t -> (Dgram.t -> unit) -> unit
(** Receive datagrams sent with {!send_fwd} (the "forward" endpoint). *)

val set_rev_sink : t -> (Dgram.t -> unit) -> unit

val set_interposer : t -> (dir:direction -> Dgram.t -> verdict) option -> unit
(** Install (or clear) a delivery interposer, consulted once per datagram
    {e after} the link has decided to deliver it (so link loss/jitter still
    apply first). Used by {!Scallop_mc} to turn control-plane delivery into
    bounded delay/reorder/drop choice points. Default: none — deliveries
    go straight to the sink. *)

val interposed_drops : t -> int
(** Datagrams discarded by the interposer ([Drop] verdicts). *)

val send_fwd : t -> Dgram.t -> unit
(** Enqueue on the forward-direction link at the current engine time. *)

val send_rev : t -> Dgram.t -> unit

val fwd_link : t -> Link.t
(** The underlying links, for delivery statistics and runtime
    degradation ({!Link.set_rate} / {!Link.set_loss}). *)

val rev_link : t -> Link.t

val unclaimed : t -> int
(** Datagrams delivered before any sink was attached. *)
