type t = {
  src : Scallop_util.Addr.t;
  dst : Scallop_util.Addr.t;
  payload : bytes;
  trace : int;
  pool : Scallop_util.Bufpool.t option;
}

let v ?(trace = -1) ?pool ~src ~dst payload = { src; dst; payload; trace; pool }

let release t =
  match t.pool with
  | Some pool -> Scallop_util.Bufpool.release pool t.payload
  | None -> ()

(* 14 B Ethernet + 20 B IPv4 + 8 B UDP *)
let header_overhead = 42
let wire_size t = header_overhead + Bytes.length t.payload

let pp fmt t =
  Format.fprintf fmt "%a -> %a (%d B)" Scallop_util.Addr.pp t.src Scallop_util.Addr.pp
    t.dst (Bytes.length t.payload)
