type t = {
  q : (unit -> unit) Eventq.t;
  mutable clock : int;
  mutable chooser : (ready:int -> int) option;
}

let create () =
  let t = { q = Eventq.create (); clock = 0; chooser = None } in
  (* Publish this engine's virtual clock to the tracer so components
     without an engine handle (e.g. the PRE) can stamp events. Worlds are
     created one at a time; the newest engine owns the shared clock. *)
  Scallop_obs.Trace.set_clock (fun () -> t.clock);
  t
let now t = t.clock
let set_chooser t c = t.chooser <- c

let at t ~time f =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  Eventq.push t.q ~time f

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  Eventq.push t.q ~time:(t.clock + after) f

let every t ?start ~interval f =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let first = match start with Some s -> s | None -> t.clock + interval in
  let rec tick () = if f () then schedule t ~after:interval tick in
  at t ~time:first tick

(* Pop the next event, consulting the chooser when several events are tied
   at the minimum timestamp. With no chooser installed (the default) this
   is exactly [Eventq.pop]: insertion order, byte-identical to the engine's
   historical behavior. *)
let take t =
  match t.chooser with
  | None -> Eventq.pop t.q
  | Some choose -> (
      match Eventq.ready_count t.q with
      | 0 -> None
      | 1 -> Eventq.pop t.q
      | n ->
          let k = choose ~ready:n in
          let k = if k < 0 || k >= n then 0 else k in
          Eventq.pop_nth t.q k)

let run ?until ?max_events t =
  let budget = ref (Option.value max_events ~default:max_int) in
  let fits time = match until with None -> true | Some u -> time <= u in
  let rec loop () =
    if !budget > 0 then
      match Eventq.peek_time t.q with
      | Some time when fits time ->
          let _, f = Option.get (take t) in
          t.clock <- max t.clock time;
          decr budget;
          f ();
          loop ()
      | Some _ | None -> ()
  in
  loop ();
  match until with Some u when u > t.clock -> t.clock <- u | _ -> ()

let step ?until t =
  match Eventq.peek_time t.q with
  | Some time when (match until with None -> true | Some u -> time <= u) ->
      let _, f = Option.get (take t) in
      t.clock <- max t.clock time;
      f ();
      true
  | Some _ | None -> false

let pending t = Eventq.length t.q
let ready t = Eventq.ready_count t.q
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = int_of_float (x *. 1e9)
let to_sec x = float_of_int x /. 1e9
