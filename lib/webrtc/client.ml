module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries
module Trace = Scallop_obs.Trace
module Engine = Netsim.Engine
module Network = Netsim.Network
module Dgram = Netsim.Dgram
module Packet = Rtp.Packet

type feedback_mode = Remb | Twcc

type config = {
  ip : int;
  send_video : bool;
  send_audio : bool;
  video_bitrate_bps : int;
  feedback_mode : feedback_mode;
  sr_interval_ns : int;
  remb_poll_interval_ns : int;
  nack_poll_interval_ns : int;
  stun_interval_ns : int;
  rr_interval_ns : int;
}

let default_config ~ip =
  {
    ip;
    send_video = true;
    send_audio = true;
    video_bitrate_bps = 2_500_000;
    feedback_mode = Remb;
    sr_interval_ns = 520_000_000;
    remb_poll_interval_ns = 100_000_000;
    nack_poll_interval_ns = 20_000_000;
    stun_interval_ns = 2_500_000_000;
    rr_interval_ns = 15_000_000_000;
  }

let history_size = 1024

type kind = Send | Recv

type connection = {
  local : Addr.t;
  remote : Addr.t;
  kind : kind;
  video_ssrc : int;
  audio_ssrc : int;
  (* sender side *)
  video_src : Codec.Video_source.t option;
  simulcast_src : Codec.Simulcast_source.t option;
  audio_src : Codec.Audio_source.t option;
  history : Packet.t option array;
  send_fps : Timeseries.t;
  mutable retransmissions : int;
  (* receiver side *)
  video_rx : Codec.Video_receiver.t option;
  audio_rx : Codec.Audio_receiver.t option;
  gcc : Gcc.Estimator.t option;
  mutable rembs_sent : int;
  mutable twccs_sent : int;
  mutable twcc_deltas : int list;  (** pending arrival deltas, newest first *)
  mutable twcc_base_seq : int;
  mutable twcc_last_arrival : int;
  mutable nacks_received : int;
  mutable plis_sent : int;
  mutable srs_received : int;
  mutable stun_rtt : float option;
  stun_pending : (bytes, int) Hashtbl.t;
  mutable connected : bool;
      (** ICE state: media is held until the first connectivity check
          succeeds, as in real WebRTC *)
  mutable open_ : bool;
}

type t = {
  engine : Engine.t;
  network : Network.t;
  rng : Rng.t;
  cfg : config;
  mutable connections : connection list;
  mutable next_port : int;
  mutable tx_hook : time_ns:int -> Dgram.t -> unit;
  mutable rx_hook : time_ns:int -> Dgram.t -> unit;
}

let create engine network rng cfg =
  {
    engine;
    network;
    rng;
    cfg;
    connections = [];
    next_port = 20_000;
    tx_hook = (fun ~time_ns:_ _ -> ());
    rx_hook = (fun ~time_ns:_ _ -> ());
  }

let ip t = t.cfg.ip

let fresh_port t =
  let p = t.next_port in
  t.next_port <- t.next_port + 1;
  p
let set_tx_hook t f = t.tx_hook <- f
let set_rx_hook t f = t.rx_hook <- f

let transmit t conn payload =
  let dgram = Dgram.v ~src:conn.local ~dst:conn.remote payload in
  t.tx_hook ~time_ns:(Engine.now t.engine) dgram;
  Network.send t.network dgram

let send_rtcp t conn packets = transmit t conn (Rtp.Rtcp.serialize_compound packets)

(* --- sender side --------------------------------------------------------- *)

let remember conn pkt = conn.history.(pkt.Packet.sequence mod history_size) <- Some pkt

(* WebRTC's pacer spreads a frame's packets instead of bursting them onto
   the wire; 500 µs spacing keeps even key frames inside a frame interval
   and stops audio from queueing behind video bursts. *)
let pacing_gap_ns = 500_000

let send_video_frame t conn src =
  let now = Engine.now t.engine in
  let frame = Codec.Video_source.next_frame src ~time_ns:now in
  Timeseries.incr conn.send_fps now;
  let n = List.length frame.Codec.Video_source.packets in
  (* large (key) frames compress their spacing so the whole frame still
     leaves before the next frame interval *)
  let gap = if n <= 1 then 0 else min pacing_gap_ns (28_000_000 / (n - 1)) in
  List.iteri
    (fun i pkt ->
      remember conn pkt;
      if i = 0 then transmit t conn (Packet.serialize pkt)
      else
        Engine.schedule t.engine ~after:(i * gap) (fun () ->
            if conn.open_ then transmit t conn (Packet.serialize pkt)))
    frame.Codec.Video_source.packets

let send_simulcast_frames t conn src =
  let now = Engine.now t.engine in
  Timeseries.incr conn.send_fps now;
  List.iter
    (fun (frame : Codec.Video_source.frame) ->
      let n = List.length frame.Codec.Video_source.packets in
      let gap = if n <= 1 then 0 else min pacing_gap_ns (28_000_000 / (n - 1)) in
      List.iteri
        (fun i pkt ->
          if i = 0 then transmit t conn (Packet.serialize pkt)
          else
            Engine.schedule t.engine ~after:(i * gap) (fun () ->
                if conn.open_ then transmit t conn (Packet.serialize pkt)))
        frame.Codec.Video_source.packets)
    (Codec.Simulcast_source.next_frames src ~time_ns:now)

let send_audio_packet t conn src =
  let now = Engine.now t.engine in
  let pkt = Codec.Audio_source.next_packet src ~time_ns:now in
  remember conn pkt;
  transmit t conn (Packet.serialize pkt)

let sender_report t conn =
  let now = Engine.now t.engine in
  let info ssrc clock =
    {
      Rtp.Rtcp.ntp_sec = now / 1_000_000_000;
      ntp_frac = now mod 1_000_000_000;
      rtp_ts = now / clock land 0xFFFFFFFF;
      packet_count = 0;
      octet_count = 0;
    }
    |> fun i -> Rtp.Rtcp.Sender_report { ssrc; info = i; reports = [] }
  in
  let srs =
    (if conn.video_src <> None then [ info conn.video_ssrc 11111 ] else [])
    @ if conn.audio_src <> None then [ info conn.audio_ssrc 20833 ] else []
  in
  if srs <> [] then
    send_rtcp t conn (srs @ [ Rtp.Rtcp.Sdes [ (conn.video_ssrc, [ Rtp.Rtcp.Cname "scallop-client" ]) ] ])

let retransmit t conn seqs =
  List.iter
    (fun seq ->
      match conn.history.(seq mod history_size) with
      | Some pkt when pkt.Packet.sequence = seq ->
          conn.retransmissions <- conn.retransmissions + 1;
          transmit t conn (Packet.serialize pkt)
      | Some _ | None -> ())
    seqs

(* --- receiver side ------------------------------------------------------- *)

let report_block conn : Rtp.Rtcp.report_block list =
  match conn.video_rx with
  | None -> []
  | Some rx ->
      [
        {
          Rtp.Rtcp.ssrc = conn.video_ssrc;
          fraction_lost = 0;
          cumulative_lost = 0;
          highest_seq = 0;
          jitter = int_of_float (Codec.Video_receiver.jitter_ms rx *. 90.0);
          last_sr = 0;
          dlsr = 0;
        };
      ]

let poll_feedback t conn =
  if t.cfg.feedback_mode = Twcc then ()
  else
  match conn.gcc with
  | None -> ()
  | Some gcc -> (
      let now = Engine.now t.engine in
      match Gcc.Estimator.poll_remb gcc ~time_ns:now with
      | None -> ()
      | Some estimate ->
          conn.rembs_sent <- conn.rembs_sent + 1;
          send_rtcp t conn
            [
              Rtp.Rtcp.Receiver_report { ssrc = conn.video_ssrc; reports = report_block conn };
              Rtp.Rtcp.Remb
                { sender_ssrc = conn.video_ssrc; bitrate_bps = estimate; ssrcs = [ conn.video_ssrc ] };
            ])

(* Sender-driven transport-wide feedback: one TWCC packet per ~15 media
   packets, carrying per-packet arrival deltas (the §5.2 comparison). *)
let twcc_batch = 15

let note_twcc t conn ~time_ns seq =
  if t.cfg.feedback_mode = Twcc then begin
    if conn.twcc_deltas = [] then begin
      conn.twcc_base_seq <- seq;
      conn.twcc_last_arrival <- time_ns
    end;
    let delta_ticks = min 255 ((time_ns - conn.twcc_last_arrival) / 250_000) in
    conn.twcc_last_arrival <- time_ns;
    conn.twcc_deltas <- delta_ticks :: conn.twcc_deltas;
    if List.length conn.twcc_deltas >= twcc_batch then begin
      conn.twccs_sent <- conn.twccs_sent + 1;
      send_rtcp t conn
        [
          Rtp.Rtcp.Twcc
            {
              sender_ssrc = 0;
              media_ssrc = conn.video_ssrc;
              base_seq = conn.twcc_base_seq;
              fb_count = conn.twccs_sent land 0xFF;
              deltas = List.rev conn.twcc_deltas;
            };
        ];
      conn.twcc_deltas <- []
    end
  end

(* standalone receiver reports, sent sparsely between REMB compounds *)
let send_plain_rr t conn =
  send_rtcp t conn
    [ Rtp.Rtcp.Receiver_report { ssrc = conn.video_ssrc; reports = report_block conn } ]

let poll_loss_recovery t conn =
  match conn.video_rx with
  | None -> ()
  | Some rx ->
      let now = Engine.now t.engine in
      let missing = Codec.Video_receiver.poll_nacks rx ~time_ns:now in
      if missing <> [] then
        send_rtcp t conn
          [ Rtp.Rtcp.Nack { sender_ssrc = 0; media_ssrc = conn.video_ssrc; lost = missing } ];
      if Codec.Video_receiver.poll_pli rx ~time_ns:now then begin
        conn.plis_sent <- conn.plis_sent + 1;
        send_rtcp t conn [ Rtp.Rtcp.Pli { sender_ssrc = 0; media_ssrc = conn.video_ssrc } ]
      end

let send_stun_check t conn =
  let tid = Bytes.init 12 (fun _ -> Char.chr (Rng.int t.rng 256)) in
  Hashtbl.replace conn.stun_pending tid (Engine.now t.engine);
  let req = Rtp.Stun.binding_request ~username:"scallop" ~transaction_id:tid () in
  transmit t conn (Rtp.Stun.serialize req)

(* --- QoE ------------------------------------------------------------------ *)

module Qoe = Scallop_obs.Qoe

(* Attach per-stream QoE collectors to a receive connection's decoders.
   The controller calls this when it creates the stream leg — it is the
   only party that knows the (meeting, receiver, sender) identity of the
   media this connection carries. *)
let attach_qoe conn ~meeting ~receiver ~sender ~media =
  let key kind =
    {
      Qoe.k_meeting = meeting;
      k_receiver = receiver;
      k_sender = sender;
      k_media = media;
      k_kind = kind;
    }
  in
  let attach collector =
    (* the collector learns its host so attribution can recognize the
       victim's own access links ("up:<ip>"/"down:<ip>") *)
    Qoe.set_host collector (Addr.ip_to_string conn.local.Addr.ip);
    collector
  in
  Option.iter
    (fun rx ->
      Codec.Video_receiver.set_qoe rx (attach (Qoe.collector (key Qoe.Video))))
    conn.video_rx;
  Option.iter
    (fun rx ->
      Codec.Audio_receiver.set_qoe rx (attach (Qoe.collector (key Qoe.Audio))))
    conn.audio_rx

(* --- dispatch ------------------------------------------------------------- *)

let handle_rtp t conn (dgram : Dgram.t) =
  let buf = dgram.Dgram.payload in
  match Packet.parse buf with
  | exception Rtp.Wire.Parse_error _ -> ()
  | pkt ->
      let now = Engine.now t.engine in
      if conn.kind = Recv then note_twcc t conn ~time_ns:now pkt.Packet.sequence;
      if pkt.Packet.ssrc = conn.video_ssrc then begin
        Option.iter (fun rx -> Codec.Video_receiver.receive rx ~time_ns:now pkt) conn.video_rx;
        Option.iter
          (fun gcc ->
            Gcc.Estimator.on_packet gcc ~time_ns:now ~rtp_ts:pkt.Packet.timestamp
              ~size:(Bytes.length buf))
          conn.gcc
      end
      else if pkt.Packet.ssrc = conn.audio_ssrc then
        Option.iter (fun rx -> Codec.Audio_receiver.receive rx ~time_ns:now pkt) conn.audio_rx;
      (* anchor the packet's trace id on the receiver's QoE timeline so
         attribution can walk from a burn back to these exact packets *)
      if dgram.Dgram.trace >= 0 then begin
        let note q = Qoe.note_trace q ~time_ns:now ~trace:dgram.Dgram.trace in
        if pkt.Packet.ssrc = conn.video_ssrc then
          Option.iter
            (fun rx -> Option.iter note (Codec.Video_receiver.qoe rx))
            conn.video_rx
        else if pkt.Packet.ssrc = conn.audio_ssrc then
          Option.iter
            (fun rx -> Option.iter note (Codec.Audio_receiver.qoe rx))
            conn.audio_rx
      end;
      (* terminal hop of the causal timeline: the packet reached the
         receiving endpoint and (for video) advanced the decoder *)
      if dgram.Dgram.trace >= 0 && Trace.enabled Trace.Packet then
        Trace.instant ~ts:now ~trace:dgram.Dgram.trace ~cat:"client" "client_rx"
          ~args:
            [
              ("ssrc", Trace.I pkt.Packet.ssrc);
              ("seq", Trace.I pkt.Packet.sequence);
              ( "frames_decoded",
                Trace.I
                  (match conn.video_rx with
                  | Some rx when pkt.Packet.ssrc = conn.video_ssrc ->
                      Codec.Video_receiver.frames_decoded rx
                  | Some _ | None -> -1) );
            ]

let handle_rtcp t conn buf =
  match Rtp.Rtcp.parse_compound buf with
  | exception Rtp.Wire.Parse_error _ -> ()
  | packets ->
      List.iter
        (fun p ->
          match p with
          | Rtp.Rtcp.Remb { bitrate_bps; _ } ->
              (* simulcast senders keep all renditions running; the SFU
                 picks which one a receiver gets *)
              Option.iter
                (fun src ->
                  Codec.Video_source.set_bitrate src (min bitrate_bps t.cfg.video_bitrate_bps))
                conn.video_src
          | Rtp.Rtcp.Nack { lost; _ } ->
              conn.nacks_received <- conn.nacks_received + 1;
              (* simulcast splicing invalidates retransmissions; recover by
                 refreshing the active rendition instead *)
              (match conn.simulcast_src with
              | Some src -> Codec.Simulcast_source.request_keyframe src ~rendition:0
              | None -> retransmit t conn lost)
          | Rtp.Rtcp.Pli { media_ssrc; _ } -> (
              Option.iter Codec.Video_source.request_keyframe conn.video_src;
              match conn.simulcast_src with
              | Some src -> (
                  match Codec.Simulcast_source.rendition_of_ssrc src media_ssrc with
                  | Some rendition -> Codec.Simulcast_source.request_keyframe src ~rendition
                  | None -> ())
              | None -> ())
          | Rtp.Rtcp.Sender_report _ -> conn.srs_received <- conn.srs_received + 1
          | Rtp.Rtcp.Twcc _ ->
              (* sender-driven congestion control is out of scope for the
                 endpoint model; the feedback is counted at the SFU *)
              ()
          | Rtp.Rtcp.Receiver_report _ | Rtp.Rtcp.Sdes _ | Rtp.Rtcp.Bye _ -> ())
        packets

let handle_stun t conn buf =
  match Rtp.Stun.parse buf with
  | exception Rtp.Wire.Parse_error _ -> ()
  | msg -> (
      match msg.Rtp.Stun.cls with
      | Rtp.Stun.Request ->
          let reply =
            Rtp.Stun.binding_success ~transaction_id:msg.Rtp.Stun.transaction_id
              ~mapped_ip:conn.remote.Addr.ip ~mapped_port:conn.remote.Addr.port
          in
          transmit t conn (Rtp.Stun.serialize reply)
      | Rtp.Stun.Success_response -> (
          match Hashtbl.find_opt conn.stun_pending msg.Rtp.Stun.transaction_id with
          | Some sent_at ->
              Hashtbl.remove conn.stun_pending msg.Rtp.Stun.transaction_id;
              conn.connected <- true;
              conn.stun_rtt <-
                Some (float_of_int (Engine.now t.engine - sent_at) /. 1e6)
          | None -> ())
      | Rtp.Stun.Error_response | Rtp.Stun.Indication -> ())

let handle_dgram t conn (dgram : Dgram.t) =
  if conn.open_ then begin
    t.rx_hook ~time_ns:(Engine.now t.engine) dgram;
    match Rtp.Demux.classify dgram.payload with
    | Rtp.Demux.Rtp_media -> handle_rtp t conn dgram
    | Rtp.Demux.Rtcp_feedback -> handle_rtcp t conn dgram.payload
    | Rtp.Demux.Stun_packet -> handle_stun t conn dgram.payload
    | Rtp.Demux.Unknown -> ()
  end

(* --- connection setup ----------------------------------------------------- *)

let start_timers t conn =
  let alive f () =
    if conn.open_ then begin
      f ();
      true
    end
    else false
  in
  (* media and feedback wait for ICE to connect *)
  let when_connected f () = if conn.connected then f () in
  (match conn.video_src with
  | Some src ->
      Engine.every t.engine ~interval:33_333_333
        (alive (when_connected (fun () -> send_video_frame t conn src)))
  | None -> ());
  (match conn.simulcast_src with
  | Some src ->
      Engine.every t.engine ~interval:33_333_333
        (alive (when_connected (fun () -> send_simulcast_frames t conn src)))
  | None -> ());
  (match conn.audio_src with
  | Some src ->
      Engine.every t.engine ~interval:Codec.Audio_source.interval_ns
        (alive (when_connected (fun () -> send_audio_packet t conn src)))
  | None -> ());
  if conn.kind = Send then
    Engine.every t.engine ~interval:t.cfg.sr_interval_ns
      (alive (when_connected (fun () -> sender_report t conn)));
  if conn.kind = Recv then begin
    Engine.every t.engine ~interval:t.cfg.remb_poll_interval_ns (alive (fun () -> poll_feedback t conn));
    Engine.every t.engine ~interval:t.cfg.nack_poll_interval_ns
      (alive (fun () -> poll_loss_recovery t conn));
    Engine.every t.engine ~interval:t.cfg.rr_interval_ns
      (alive (when_connected (fun () -> send_plain_rr t conn)))
  end;
  (* the first connectivity check fires immediately (ICE nomination);
     periodic keepalive checks follow at jittered intervals so clients do
     not synchronize *)
  send_stun_check t conn;
  let stun_start = Engine.now t.engine + Rng.int t.rng t.cfg.stun_interval_ns in
  Engine.every t.engine ~start:stun_start ~interval:t.cfg.stun_interval_ns
    (alive (fun () -> send_stun_check t conn))

let make_connection t ~kind ?send_audio ?video_bitrate ?(simulcast = false) ~local_port
    ~remote ~video_ssrc ~audio_ssrc () =
  let local = Addr.v t.cfg.ip local_port in
  let send_audio = Option.value send_audio ~default:t.cfg.send_audio in
  let video_bitrate = Option.value video_bitrate ~default:t.cfg.video_bitrate_bps in
  let conn =
    {
      local;
      remote;
      kind;
      video_ssrc;
      audio_ssrc;
      video_src =
        (if kind = Send && t.cfg.send_video && not simulcast then
           Some
             (Codec.Video_source.create (Rng.split t.rng)
                {
                  (Codec.Video_source.default_config ~ssrc:video_ssrc) with
                  target_bitrate_bps = video_bitrate;
                })
         else None);
      simulcast_src =
        (if kind = Send && t.cfg.send_video && simulcast then
           Some
             (Codec.Simulcast_source.create (Rng.split t.rng)
                (Codec.Simulcast_source.default_config ~base_ssrc:video_ssrc))
         else None);
      audio_src =
        (if kind = Send && send_audio then
           Some (Codec.Audio_source.create (Rng.split t.rng) (Codec.Audio_source.default_config ~ssrc:audio_ssrc))
         else None);
      history = Array.make history_size None;
      send_fps = Timeseries.create ~bin_ns:1_000_000_000;
      retransmissions = 0;
      video_rx = (if kind = Recv then Some (Codec.Video_receiver.create ~ssrc:video_ssrc ()) else None);
      audio_rx = (if kind = Recv then Some (Codec.Audio_receiver.create ~ssrc:audio_ssrc) else None);
      gcc = (if kind = Recv then Some (Gcc.Estimator.create ()) else None);
      rembs_sent = 0;
      twccs_sent = 0;
      twcc_deltas = [];
      twcc_base_seq = 0;
      twcc_last_arrival = 0;
      nacks_received = 0;
      plis_sent = 0;
      srs_received = 0;
      stun_rtt = None;
      stun_pending = Hashtbl.create 8;
      connected = false;
      open_ = true;
    }
  in
  Network.bind t.network local (handle_dgram t conn);
  t.connections <- conn :: t.connections;
  start_timers t conn;
  conn

let add_send_connection ?send_audio ?video_bitrate t ~local_port ~remote ~video_ssrc
    ~audio_ssrc =
  make_connection t ~kind:Send ?send_audio ?video_bitrate ~local_port ~remote ~video_ssrc
    ~audio_ssrc ()

let add_simulcast_send_connection t ~local_port ~remote ~base_ssrc ~audio_ssrc =
  make_connection t ~kind:Send ~simulcast:true ~local_port ~remote ~video_ssrc:base_ssrc
    ~audio_ssrc ()

let add_recv_connection t ~local_port ~remote ~video_ssrc ~audio_ssrc =
  make_connection t ~kind:Recv ~local_port ~remote ~video_ssrc ~audio_ssrc ()

let close_connection t conn =
  (* idempotent: two controller instances replaying the same intent (a
     promoted standby re-applying a journaled leave the primary already
     executed) may both close the shared connection *)
  if conn.open_ then begin
    (* say goodbye (RFC 3550 BYE) before tearing down *)
    if conn.connected then
      send_rtcp t conn [ Rtp.Rtcp.Bye { ssrcs = [ conn.video_ssrc; conn.audio_ssrc ]; reason = None } ];
    conn.open_ <- false;
    Network.unbind t.network conn.local;
    t.connections <- List.filter (fun c -> c != conn) t.connections
  end

let connected conn = conn.connected

let connections t = t.connections
let local_addr conn = conn.local
let remote_addr conn = conn.remote

let video_bitrate conn =
  match conn.video_src with Some src -> Codec.Video_source.bitrate src | None -> 0

let video_source conn = conn.video_src
let retransmissions conn = conn.retransmissions
let send_fps_series conn = if conn.kind = Send then Some conn.send_fps else None
let receiver conn = conn.video_rx
let gcc_estimate conn = Option.map Gcc.Estimator.estimate_bps conn.gcc
let audio_packets_received conn =
  match conn.audio_rx with
  | Some rx -> Codec.Audio_receiver.packets_received rx
  | None -> 0

let audio_receiver conn = conn.audio_rx
let rembs_sent conn = conn.rembs_sent
let twccs_sent conn = conn.twccs_sent
let nacks_received conn = conn.nacks_received
let plis_sent conn = conn.plis_sent
let srs_received conn = conn.srs_received
let stun_rtt_ms conn = conn.stun_rtt
