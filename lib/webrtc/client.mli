(** A WebRTC client endpoint (one meeting participant).

    A client owns one {e send connection} (its media uplink — the stream
    the SFU replicates) and one {e receive connection per remote sender},
    matching Scallop's per-participant stream split (paper §5.3, Fig. 8).
    Each connection runs the full protocol machinery a browser would:

    - paced media: 30 fps L1T3 SVC video and 50 pps audio;
    - RTCP sender reports + SDES on a timer while sending;
    - receiver-side GCC with RR+REMB compound feedback;
    - NACK generation from sequence gaps, retransmission from a history
      buffer on receipt;
    - PLI on decoder freeze/starvation, key-frame generation on PLI;
    - periodic STUN connectivity checks, answered by the remote side.

    Clients are deliberately ignorant of whether their "peer" is another
    client, a split-proxy SFU, or Scallop's spliced data plane — that is
    the P2P illusion the paper preserves. *)

type t

type feedback_mode =
  | Remb  (** receiver-driven: periodic aggregate estimates (what Scallop
              selects, §5.2) *)
  | Twcc  (** sender-driven: per-packet arrival feedback every ~15 media
              packets — the mode the paper rejects as control-plane load *)

type config = {
  ip : int;
  send_video : bool;
  send_audio : bool;
  video_bitrate_bps : int;
  feedback_mode : feedback_mode;
  sr_interval_ns : int;
  remb_poll_interval_ns : int;
  nack_poll_interval_ns : int;
  stun_interval_ns : int;
  rr_interval_ns : int;  (** cadence of standalone receiver reports *)
}

val default_config : ip:int -> config
(** Sends video (2.5 Mb/s) and audio; SR every 700 ms; REMB polled every
    100 ms; NACKs every 20 ms; STUN every 2.5 s. *)

val create :
  Netsim.Engine.t -> Netsim.Network.t -> Scallop_util.Rng.t -> config -> t

val ip : t -> int

val fresh_port : t -> int
(** Allocate an unused local UDP port (signaling helpers use this when
    creating connections on the client's behalf). *)

(** {1 Connections} *)

type connection

val add_send_connection :
  ?send_audio:bool -> ?video_bitrate:int -> t -> local_port:int ->
  remote:Scallop_util.Addr.t -> video_ssrc:int -> audio_ssrc:int -> connection
(** Starts media pacing immediately. The optional arguments override the
    client config for this connection — a screen-share stream, say, sends
    no audio and runs at its own bitrate. *)

val add_simulcast_send_connection :
  t -> local_port:int -> remote:Scallop_util.Addr.t -> base_ssrc:int ->
  audio_ssrc:int -> connection
(** A simulcast uplink: three renditions of the same video at descending
    bitrates (SSRCs [base_ssrc], [base_ssrc+2], [base_ssrc+4]), plus
    audio. The SFU decides which rendition each receiver gets. *)

val add_recv_connection :
  t -> local_port:int -> remote:Scallop_util.Addr.t -> video_ssrc:int ->
  audio_ssrc:int -> connection
(** [video_ssrc]/[audio_ssrc] are the remote sender's stream ids. *)

val attach_qoe :
  connection ->
  meeting:int ->
  receiver:int ->
  sender:int ->
  media:Scallop_obs.Qoe.media ->
  unit
(** Attach per-stream QoE collectors (video + audio) to a receive
    connection's decoders, keyed by the meeting/receiver/sender identity
    only the controller knows. Incoming traced packets are then anchored
    on the collector for root-cause attribution. *)

val close_connection : t -> connection -> unit
(** Sends an RTCP BYE for the connection's streams, then stops its timers
    and unbinds its port. Idempotent: closing an already-closed
    connection does nothing (controller failover replays can close the
    same shared connection twice). *)

val connections : t -> connection list

val connected : connection -> bool
(** ICE state: true once a connectivity check has succeeded. Media and
    reports are held until then. *)

val local_addr : connection -> Scallop_util.Addr.t
val remote_addr : connection -> Scallop_util.Addr.t

(** {1 Sender-side controls and stats} *)

val video_bitrate : connection -> int
val video_source : connection -> Codec.Video_source.t option
val retransmissions : connection -> int
(** Packets re-sent due to received NACKs. *)

val send_fps_series : connection -> Scallop_util.Timeseries.t option

(** {1 Receiver-side stats} *)

val receiver : connection -> Codec.Video_receiver.t option
val gcc_estimate : connection -> int option
val audio_packets_received : connection -> int
val audio_receiver : connection -> Codec.Audio_receiver.t option
val rembs_sent : connection -> int
val twccs_sent : connection -> int
val nacks_received : connection -> int
val plis_sent : connection -> int
val srs_received : connection -> int
val stun_rtt_ms : connection -> float option
(** Latest STUN round-trip measurement. *)

(** {1 Experiment hooks} *)

val set_tx_hook : t -> (time_ns:int -> Netsim.Dgram.t -> unit) -> unit
(** Called for every datagram the client sends. *)

val set_rx_hook : t -> (time_ns:int -> Netsim.Dgram.t -> unit) -> unit
