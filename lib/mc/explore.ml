type budget = {
  b_max_runs : int;
  b_max_depth : int;
  b_initial_depth : int;
}

let default_budget = { b_max_runs = 160; b_max_depth = 24; b_initial_depth = 8 }

type stats = {
  s_runs : int;  (** schedules actually simulated *)
  s_memo_hits : int;
  s_pruned : int;  (** schedules not expanded (converged end state) *)
  s_states : int;  (** distinct end-state hashes *)
  s_deepest : int;  (** deepest choice position branched on *)
}

type result = {
  r_counterexample : Scenario.outcome option;
  r_stats : stats;
}

let prefix_key p = Choice.to_string p

(* Bounded iterative-deepening DFS over choice-sequence prefixes.

   The root is the empty prefix (every decision defaults to 0, the
   production schedule). A run's successors are single-decision bumps:
   for each choice position [i] beyond the run's forced prefix and below
   the depth bound, and each non-default alternative [k] at that
   position's recorded arity, the prefix [chosen[0..i-1] @ [k]]. This
   enumerates the choice tree without duplicates. Runs whose end-state
   hash was already seen are not expanded (they converged to a visited
   state); a memo table keeps deepening passes from re-simulating
   prefixes they already ran. *)
let search ?(budget = default_budget) ?(bad = Scenario.failed) ~run () =
  let memo : (string, Scenario.outcome) Hashtbl.t = Hashtbl.create 64 in
  let seen_states : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let runs = ref 0 in
  let memo_hits = ref 0 in
  let pruned = ref 0 in
  let deepest = ref 0 in
  let counterexample = ref None in
  let exception Done in
  let execute prefix =
    let key = prefix_key prefix in
    match Hashtbl.find_opt memo key with
    | Some o ->
        incr memo_hits;
        o
    | None ->
        if !runs >= budget.b_max_runs then raise Done;
        incr runs;
        let o = run ~forced:prefix in
        Hashtbl.replace memo key o;
        o
  in
  let rec dfs ~depth prefix =
    let o = execute prefix in
    if bad o then begin
      counterexample := Some o;
      raise Done
    end;
    let fresh = not (Hashtbl.mem seen_states o.Scenario.o_state_hash) in
    Hashtbl.replace seen_states o.Scenario.o_state_hash ();
    if fresh then begin
      let log = Array.of_list o.Scenario.o_log in
      let horizon = min (Array.length log) depth in
      for i = Array.length prefix to horizon - 1 do
        let _, arity = log.(i) in
        for k = 1 to arity - 1 do
          if i > !deepest then deepest := i;
          let succ = Array.init (i + 1) (fun j -> if j < i then fst log.(j) else k) in
          dfs ~depth succ
        done
      done
    end
    else incr pruned
  in
  (try
     let depth = ref (min budget.b_initial_depth budget.b_max_depth) in
     let continue = ref true in
     while !continue do
       Hashtbl.reset seen_states;
       dfs ~depth:!depth [||];
       if !depth >= budget.b_max_depth then continue := false
       else depth := min (2 * !depth) budget.b_max_depth
     done
   with Done -> ());
  {
    r_counterexample = !counterexample;
    r_stats =
      {
        s_runs = !runs;
        s_memo_hits = !memo_hits;
        s_pruned = !pruned;
        s_states = Hashtbl.length seen_states;
        s_deepest = !deepest;
      };
  }

let search_scenario ?budget ?bad ?(config = Scenario.default) () =
  search ?budget ?bad ~run:(fun ~forced -> Scenario.run ~config ~forced ()) ()
