module Trace = Scallop_obs.Trace

type violation = {
  v_rule : string;
  v_detail : string;
  v_ts : int;
  v_events : int list;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s] t=%dns %s (events %s)" v.v_rule v.v_ts v.v_detail
    (String.concat "," (List.map string_of_int v.v_events))

type rule = {
  r_name : string;
  r_doc : string;
  r_step : idx:int -> Trace.event -> violation list;
  r_final : now:int -> violation list;
}

let rule_name r = r.r_name
let rule_doc r = r.r_doc

let make ~name ~doc ~step ~final =
  { r_name = name; r_doc = doc; r_step = step; r_final = final }

(* --- event accessors --- *)

let is (ev : Trace.event) name = String.equal ev.name name

let arg_i (ev : Trace.event) key =
  match List.assoc_opt key ev.args with
  | Some (Trace.I n) -> Some n
  | _ -> None

let arg_s (ev : Trace.event) key =
  match List.assoc_opt key ev.args with
  | Some (Trace.S s) -> Some s
  | Some (Trace.I n) -> Some (string_of_int n)
  | None -> None

(* --- combinators --- *)

let always ~name ~doc pred =
  let step ~idx (ev : Trace.event) =
    match pred ~idx ev with
    | None -> []
    | Some detail ->
        [ { v_rule = name; v_detail = detail; v_ts = ev.ts; v_events = [ idx ] } ]
  in
  make ~name ~doc ~step ~final:(fun ~now:_ -> [])

let eventually ~name ~doc ~trigger ~satisfy =
  let open_obs : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let step ~idx (ev : Trace.event) =
    (match satisfy ev with
    | Some key -> Hashtbl.remove open_obs key
    | None -> ());
    (match trigger ev with
    | Some key -> Hashtbl.replace open_obs key (idx, ev.ts)
    | None -> ());
    []
  in
  let final ~now =
    Hashtbl.fold
      (fun key (idx, ts) acc ->
        {
          v_rule = name;
          v_detail =
            Printf.sprintf "obligation %S opened at t=%dns never satisfied" key
              ts;
          v_ts = now;
          v_events = [ idx ];
        }
        :: acc)
      open_obs []
    |> List.sort (fun a b -> compare a.v_events b.v_events)
  in
  make ~name ~doc ~step ~final

let precedes ~name ~doc ~first ~then_ =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let step ~idx (ev : Trace.event) =
    let out =
      match then_ ev with
      | Some key when not (Hashtbl.mem seen key) ->
          [
            {
              v_rule = name;
              v_detail =
                Printf.sprintf "%S occurred with no preceding enabling event"
                  key;
              v_ts = ev.ts;
              v_events = [ idx ];
            };
          ]
      | _ -> []
    in
    (match first ev with
    | Some key -> Hashtbl.replace seen key ()
    | None -> ());
    out
  in
  make ~name ~doc ~step ~final:(fun ~now:_ -> [])

(* --- checker engine --- *)

type checker = {
  rules : rule list;
  mutable idx : int;
  mutable viols : violation list;  (** newest first *)
  max_violations : int;
}

let create ?(max_violations = 256) rules =
  { rules; idx = 0; viols = []; max_violations }

let feed c ev =
  let idx = c.idx in
  c.idx <- idx + 1;
  List.iter
    (fun r ->
      match r.r_step ~idx ev with
      | [] -> ()
      | vs ->
          if List.length c.viols < c.max_violations then
            c.viols <- List.rev_append vs c.viols)
    c.rules

let attach c = Trace.set_listener (Some (feed c))
let detach () = Trace.set_listener None
let events_seen c = c.idx
let violations c = List.rev c.viols

let finish ?(now = 0) c =
  let finals = List.concat_map (fun r -> r.r_final ~now) c.rules in
  violations c @ finals
