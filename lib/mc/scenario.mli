(** The explorer's system-under-test: one fully instrumented Scallop
    stack run under a replayable choice sequence.

    The workload mirrors the failover suite's harness — a 3-party
    meeting (2 senders) on a single batched switch, two quality pins and
    a late join at fixed virtual times — because that is the smallest
    workload known to exercise every control-plane path (batch flush,
    defer, resync, drain). Nondeterminism is injected at three kinds of
    choice point, all funneled through one {!Choice.t}:

    - {b faults}: a crash/restart/nothing decision on a fixed grid of
      virtual times inside the active window (all slots are decided up
      front, so these occupy the first choice-sequence positions and
      fault-only counterexamples stay shallow);
    - {b channel}: a deliver/delay/drop decision per control-channel
      datagram delivery (via {!Netsim.Control_channel.set_interposer});
    - {b ties}: a same-timestamp permutation decision whenever >= 2
      engine events are ready (via {!Netsim.Engine.set_chooser}).

    Outside the window every decision defaults to production behavior,
    keeping choice sequences short and the search focused on the
    crash/heal region. *)

type config = {
  sc_seed : int;  (** simulation seed (default 11, the failover suite's) *)
  sc_batch : bool;  (** batched wire mode (default true) *)
  sc_mutations : Scallop.Mutation.t list;
      (** seeded defects to enable for this run *)
  sc_ties : bool;  (** same-timestamp permutation choice points *)
  sc_channel : bool;  (** control-delivery fate choice points *)
  sc_faults : bool;  (** crash/restart grid choice points *)
  sc_window_ms : int * int;  (** active choice window, virtual ms *)
  sc_fault_every_ms : int;  (** fault-grid spacing *)
  sc_horizon_s : float;  (** run length, virtual seconds *)
  sc_reconcile : bool;
      (** run the anti-entropy reconcile pass before the final
          verification (default true: drift the protocol repairs by
          design is not a finding; what survives reconcile is) *)
  sc_cluster : bool;
      (** run the controller tier as the fault-tolerant primary/standby
          pair ({!Scallop.Cluster}). The fault grid gains two {e
          controller} slots decided before everything else (0 = nothing,
          1 = kill the acting primary, 2 = force-promote the standby — a
          false-positive failure detection); workload ops follow
          {!Scallop.Cluster.endpoint} and retry, order preserved, when a
          failover catches them mid-flight; the end-state check adds
          {!Scallop_analysis.check_cluster} (single acting primary,
          journal-replay fidelity). Default false — single-controller
          runs are byte-identical to before the cluster existed. *)
}

val default : config

type outcome = {
  o_violations : Temporal.violation list;  (** temporal-rule violations *)
  o_findings : Scallop_analysis.finding list;
      (** end-state verifier findings (post-reconcile when enabled) *)
  o_state_hash : int;  (** {!Scallop_analysis.state_hash} of the end state *)
  o_log : (int * int) list;  (** full (chosen, arity) decision log *)
  o_chosen : int array;  (** replay this via [~forced] to reproduce *)
  o_events : int;  (** trace events the checker saw *)
  o_now : int;  (** final virtual time, ns *)
}

val has_violations : outcome -> bool

val failed : outcome -> bool
(** Temporal violations or [Error]-severity end-state findings. *)

val run :
  ?config:config ->
  ?on_event:(Scallop_obs.Trace.event -> unit) ->
  forced:int array ->
  unit ->
  outcome
(** Execute one schedule. Deterministic: equal [config] and [forced]
    produce equal outcomes (including [o_chosen]). Saves and restores
    the global trace level, listener and mutation switches; resets the
    trace buffer. [on_event] taps the live event stream ahead of the
    checker — useful for dumping a counterexample's full timeline. *)
