(** Minimal JSON emission for machine-readable findings — shared by
    [scallop_cli check --json] and [scallop_cli explore]. Strings are
    escaped per RFC 8259; output is single-line and byte-deterministic
    for identical inputs (field order is fixed). *)

val str : string -> string
(** JSON string literal with escaping. *)

val int : int -> string
val bool : bool -> string
val obj : (string * string) list -> string
(** Keys are escaped; values must already be JSON. *)

val arr : string list -> string

val finding : Scallop_analysis.finding -> string
val violation : Temporal.violation -> string

val check_report : Scallop_analysis.finding list -> string
(** [{"findings":[...],"errors":N,"clean":bool}] *)

val outcome : Scenario.outcome -> string
(** One explored schedule: violations, findings, the replayable choice
    string, state hash. *)

val explore_report : Explore.result -> string
(** Search result: the counterexample (or null) plus search stats. *)
