(** Bounded systematic exploration of the scenario's schedule space.

    Iterative-deepening DFS over choice-sequence prefixes: the root is
    the all-defaults (production) schedule; successors bump one decision
    beyond the current prefix to each non-default alternative. Two
    prunes keep the walk tractable:

    - {b state-hash}: a run whose end-state hash
      ({!Scallop_analysis.state_hash}) was already visited in this
      deepening pass is not expanded — it converged to a known state;
    - {b memo}: outcomes are cached by prefix, so deepening passes never
      re-simulate a schedule they already ran.

    The search stops at the first outcome matching [bad], returning it
    with its full choice log — a replayable counterexample. *)

type budget = {
  b_max_runs : int;  (** total schedule simulations allowed *)
  b_max_depth : int;  (** deepest choice position ever branched on *)
  b_initial_depth : int;  (** first deepening pass's depth bound *)
}

val default_budget : budget
(** 160 runs, depths 8 -> 16 -> 24. *)

type stats = {
  s_runs : int;  (** schedules actually simulated *)
  s_memo_hits : int;
  s_pruned : int;  (** runs not expanded (converged end state) *)
  s_states : int;  (** distinct end-state hashes, last pass *)
  s_deepest : int;  (** deepest choice position branched on *)
}

type result = {
  r_counterexample : Scenario.outcome option;
      (** first outcome matching [bad]; its [o_chosen] replays it *)
  r_stats : stats;
}

val search :
  ?budget:budget ->
  ?bad:(Scenario.outcome -> bool) ->
  run:(forced:int array -> Scenario.outcome) ->
  unit ->
  result
(** [bad] defaults to {!Scenario.failed}. [run] must be deterministic in
    [forced] (as {!Scenario.run} is). *)

val search_scenario :
  ?budget:budget ->
  ?bad:(Scenario.outcome -> bool) ->
  ?config:Scenario.config ->
  unit ->
  result
(** {!search} over {!Scenario.run} with the given config. *)
