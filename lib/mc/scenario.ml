module Engine = Netsim.Engine
module Control_channel = Netsim.Control_channel
module C = Scallop.Controller
module A = Scallop.Switch_agent
module T = Scallop.Rpc_transport
module Mutation = Scallop.Mutation
module Trace = Scallop_obs.Trace
module An = Scallop_analysis
module Common = Experiments.Common

type config = {
  sc_seed : int;
  sc_batch : bool;
  sc_mutations : Mutation.t list;
  sc_ties : bool;
  sc_channel : bool;
  sc_faults : bool;
  sc_window_ms : int * int;
  sc_fault_every_ms : int;
  sc_horizon_s : float;
  sc_reconcile : bool;
  sc_cluster : bool;
}

let default =
  {
    sc_seed = 11;
    sc_batch = true;
    sc_mutations = [];
    sc_ties = false;
    sc_channel = true;
    sc_faults = true;
    sc_window_ms = (2000, 4200);
    sc_fault_every_ms = 250;
    sc_horizon_s = 10.0;
    sc_reconcile = true;
    sc_cluster = false;
  }

type outcome = {
  o_violations : Temporal.violation list;
  o_findings : An.finding list;
  o_state_hash : int;
  o_log : (int * int) list;
  o_chosen : int array;
  o_events : int;
  o_now : int;
}

let has_violations o = o.o_violations <> []

let failed o =
  has_violations o || List.exists (fun f -> f.An.severity = An.Error) o.o_findings

(* The workload mirrors test_failover's [execute] harness: a 3-party
   meeting (2 senders) against a single batched switch, with a join and
   two quality-pin ops fired at fixed virtual times. Ops serialize
   through a queue because a blocking controller call pumps the engine
   through its retries — a later op's timer can fire mid-call.

   In cluster mode each op targets whichever instance is currently the
   acting primary. An op that lands mid-failover (the primary is killed
   or freshly deposed) raises [Unavailable]/[Deposed_primary] {e before}
   journaling anything; it is re-queued at the {e front} — submission
   order, and therefore every replayed identifier, stays deterministic —
   and retried after the failure detector has had a beat to promote. *)
let install_workload ?cluster stack mid parts =
  let ctrl () =
    match cluster with
    | None -> stack.Common.controller
    | Some cl -> Scallop.Cluster.endpoint cl
  in
  let live = ref (List.map fst parts) in
  let pending = ref [] in
  let busy = ref false in
  let rec drain () =
    match !pending with
    | [] -> ()
    | f :: rest -> (
        pending := rest;
        match f (ctrl ()) with
        | () -> drain ()
        | exception (C.Unavailable | C.Deposed_primary) ->
            pending := f :: !pending;
            Engine.schedule stack.Common.engine ~after:(Engine.ms 300) pump)
  and pump () =
    if not !busy then begin
      busy := true;
      Fun.protect ~finally:(fun () -> busy := false) drain
    end
  in
  let enqueue f =
    pending := !pending @ [ f ];
    pump ()
  in
  let next_index = ref 10 in
  let op i f =
    Engine.at stack.Common.engine
      ~time:(Engine.sec (0.8 +. float_of_int i))
      (fun () -> enqueue f)
  in
  op 0 (fun ctrl ->
      match !live with
      | s :: _ :: r :: _ ->
          C.set_pair_target ctrl ~sender:s ~receiver:r (Av1.Dd.target_of_index 0)
      | _ -> ());
  op 1 (fun ctrl ->
      match !live with
      | _ :: s :: r :: _ ->
          C.set_pair_target ctrl ~sender:s ~receiver:r (Av1.Dd.target_of_index 2)
      | _ -> ());
  (* the late joiner's client is created once and remembered: a retry
     after a failover must re-issue the join, not re-register the host *)
  let joiner = ref None in
  op 2 (fun ctrl ->
      let client =
        match !joiner with
        | Some c -> c
        | None ->
            incr next_index;
            let c =
              Common.add_client stack.Common.engine stack.Common.network
                stack.Common.rng ~index:!next_index ()
            in
            joiner := Some c;
            c
      in
      let pid = C.join ctrl mid client ~send_media:false in
      live := !live @ [ pid ])

(* Crash/restart decision points: one ternary choice per grid slot in
   the active window — 0 = nothing, 1 = crash (if up), 2 = restart (if
   down). Redundant picks (crash a crashed agent) collapse to nothing,
   so every choice sequence is valid. All slots are decided up front,
   before the engine runs, so fault decisions occupy the earliest
   choice-sequence positions — counterexamples that only need fault
   timing stay shallow no matter how many channel/tie choice points the
   run consumes later. *)
(* Controller fault decision points (cluster mode): two ternary slots at
   the window's start and midpoint — 0 = nothing, 1 = kill the acting
   primary (the detector then promotes the standby), 2 = force-promote
   the standby with the primary still healthy (a false-positive failure
   detection, the split-brain seed fencing must contain). Decided before
   the agent grid, so controller-fault counterexamples occupy the very
   first choice-sequence positions. *)
let install_ctrl_faults stack cluster cfg choice =
  let w0, w1 = cfg.sc_window_ms in
  let times = [| w0; (w0 + w1) / 2 |] in
  let decided = Array.map (fun _ -> Choice.next choice ~arity:3) times in
  Array.iteri
    (fun i pick ->
      Engine.at stack.Common.engine ~time:(Engine.ms times.(i)) (fun () ->
          match pick with
          | 1 -> Scallop.Cluster.kill_primary cluster
          | 2 -> Scallop.Cluster.promote cluster
          | _ -> ()))
    decided

let install_faults stack cfg choice =
  let w0, w1 = cfg.sc_window_ms in
  let slots = (w1 - w0) / cfg.sc_fault_every_ms in
  let decided = Array.init slots (fun _ -> Choice.next choice ~arity:3) in
  let up = ref true in
  Array.iteri
    (fun i pick ->
      Engine.at stack.Common.engine
        ~time:(Engine.ms (w0 + (i * cfg.sc_fault_every_ms)))
        (fun () ->
          match pick with
          | 1 when !up ->
              A.crash stack.Common.agent;
              up := false
          | 2 when not !up ->
              A.restart stack.Common.agent;
              up := true
          | _ -> ()))
    decided

let run ?(config = default) ?on_event ~forced () =
  let cfg = config in
  let choice = Choice.create ~forced () in
  let prev_level = Trace.level () in
  if prev_level = Trace.Off then Trace.set_level Trace.Rpc;
  Trace.reset ();
  let checker = Temporal.create (Rules.all ()) in
  (match on_event with
  | None -> Temporal.attach checker
  | Some tap ->
      Trace.set_listener
        (Some
           (fun ev ->
             tap ev;
             Temporal.feed checker ev)));
  Mutation.disable_all ();
  List.iter Mutation.enable cfg.sc_mutations;
  Fun.protect
    ~finally:(fun () ->
      Temporal.detach ();
      Mutation.disable_all ();
      Trace.set_level prev_level)
    (fun () ->
      let stack, cluster =
        if cfg.sc_cluster then begin
          let cs = Common.make_cluster ~seed:cfg.sc_seed ~batch:cfg.sc_batch () in
          (cs.Common.base, Some cs.Common.cluster)
        end
        else (Common.make_scallop ~seed:cfg.sc_seed ~batch:cfg.sc_batch (), None)
      in
      let endpoint () =
        match cluster with
        | None -> stack.Common.controller
        | Some cl -> Scallop.Cluster.endpoint cl
      in
      let engine = stack.Common.engine in
      let w0, w1 = cfg.sc_window_ms in
      let in_window () =
        let now = Engine.now engine in
        now >= Engine.ms w0 && now <= Engine.ms w1
      in
      let finish ~findings ~state_hash ~crash =
        let now = Engine.now engine in
        let violations = Temporal.finish ~now checker in
        let violations =
          match crash with
          | None -> violations
          | Some msg ->
              violations
              @ [
                  {
                    Temporal.v_rule = "no-crash";
                    v_detail = "uncaught exception: " ^ msg;
                    v_ts = now;
                    v_events = [];
                  };
                ]
        in
        {
          o_violations = violations;
          o_findings = findings;
          o_state_hash = state_hash;
          o_log = Choice.log choice;
          o_chosen = Choice.chosen choice;
          o_events = Temporal.events_seen checker;
          o_now = now;
        }
      in
      try
        let mid, parts =
          Common.scallop_meeting stack ~participants:3 ~senders:2 ()
        in
        install_workload ?cluster stack mid parts;
        if cfg.sc_faults then begin
          (match cluster with
          | Some cl -> install_ctrl_faults stack cl cfg choice
          | None -> ());
          install_faults stack cfg choice
        end;
        if cfg.sc_ties then
          Engine.set_chooser engine
            (Some
               (fun ~ready ->
                 if in_window () then Choice.next choice ~arity:(min ready 3)
                 else 0));
        if cfg.sc_channel then begin
          let chan =
            T.Client.channel (C.control_channel stack.Common.controller 0)
          in
          Control_channel.set_interposer chan
            (Some
               (fun ~dir:_ _ ->
                 if in_window () then
                   match Choice.next choice ~arity:3 with
                   | 1 -> Control_channel.Delay 7_000_000
                   | 2 -> Control_channel.Drop
                   | _ -> Control_channel.Deliver
                 else Control_channel.Deliver))
        end;
        (match cluster with
        | Some cl -> Scallop.Cluster.start_health cl
        | None -> C.start_health stack.Common.controller);
        Engine.run engine ~until:(Engine.sec cfg.sc_horizon_s);
        (match cluster with
        | Some cl -> Scallop.Cluster.stop cl
        | None -> C.stop_health stack.Common.controller);
        (* settle any tail work the health shutdown scheduled *)
        Engine.run engine ~until:(Engine.now engine);
        Engine.set_chooser engine None;
        let ep = endpoint () in
        let findings =
          if cfg.sc_reconcile then
            (* the anti-entropy pass is part of the protocol: residual
               drift it repairs (e.g. a drain-path double-execute) is
               tolerated by design; what survives it is a real defect *)
            (An.reconcile ep).An.rr_after
          else An.verify ep
        in
        let findings =
          match cluster with
          | Some cl -> findings @ An.check_cluster cl
          | None -> findings
        in
        finish ~findings ~state_hash:(An.state_hash (An.snapshot ep)) ~crash:None
      with exn ->
        (* an uncaught exception is itself a finding — the schedule drove
           the system into a state the code never expected. The end state
           is unusable, so the hash covers only the crash identity. *)
        Engine.set_chooser engine None;
        let msg = Printexc.to_string exn in
        finish ~findings:[] ~state_hash:(Hashtbl.hash ("crash", msg))
          ~crash:(Some msg))
