type t = {
  forced : int array;
  mutable pos : int;  (** next choice-point index *)
  mutable log : (int * int) list;  (** (chosen, arity), newest first *)
}

let create ?(forced = [||]) () = { forced; pos = 0; log = [] }

let next t ~arity =
  if arity <= 0 then invalid_arg "Choice.next: arity must be positive";
  let k =
    if t.pos < Array.length t.forced then
      let k = t.forced.(t.pos) in
      if k >= 0 && k < arity then k else 0
    else 0
  in
  t.pos <- t.pos + 1;
  t.log <- (k, arity) :: t.log;
  k

let length t = t.pos
let log t = List.rev t.log
let chosen t = Array.of_list (List.rev_map fst t.log)

let to_string seq =
  String.concat "," (List.map string_of_int (Array.to_list seq))

let of_string s =
  match String.trim s with
  | "" -> [||]
  | s ->
      String.split_on_char ',' s
      |> List.map (fun tok ->
             match int_of_string_opt (String.trim tok) with
             | Some k when k >= 0 -> k
             | _ -> invalid_arg "Choice.of_string: not a choice sequence")
      |> Array.of_list

let pp_log ppf log =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map (fun (k, a) -> Printf.sprintf "%d/%d" k a) log))
