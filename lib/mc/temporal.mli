(** Temporal protocol checker: safety/liveness rules evaluated online
    over the {!Scallop_obs.Trace} event stream.

    Rules are plain data — a name, a human explanation, a per-event step
    function and an end-of-run finalizer — built from the [always] /
    [eventually] / [precedes] combinators (or [make] for custom stateful
    automata). A {!checker} taps the trace via
    {!Scallop_obs.Trace.set_listener}, so evaluation is immune to ring
    wraparound and adds no cost when tracing is off.

    Violations carry the rule name, a concrete detail string, the virtual
    timestamp, and the indices of the culpable events in the run's event
    stream (0-based, in emission order) — enough to pinpoint the failure
    inside a replayed schedule. *)

module Trace = Scallop_obs.Trace

type violation = {
  v_rule : string;
  v_detail : string;
  v_ts : int;  (** virtual ns at which the violation was detected *)
  v_events : int list;  (** culpable event indices in emission order *)
}

val pp_violation : Format.formatter -> violation -> unit

type rule

val rule_name : rule -> string
val rule_doc : rule -> string

val make :
  name:string ->
  doc:string ->
  step:(idx:int -> Trace.event -> violation list) ->
  final:(now:int -> violation list) ->
  rule
(** A custom stateful rule. [step] sees every event with its stream
    index; [final] runs once at end of run with the final virtual time.
    Rules carry mutable closure state — build a fresh list per run
    (see {!Rules.all}). *)

val always :
  name:string ->
  doc:string ->
  (idx:int -> Trace.event -> string option) ->
  rule
(** Safety: the predicate must never return [Some detail]. *)

val eventually :
  name:string ->
  doc:string ->
  trigger:(Trace.event -> string option) ->
  satisfy:(Trace.event -> string option) ->
  rule
(** Liveness: every [trigger] key must be closed by a later [satisfy] of
    the same key before the run ends. Re-triggering a key refreshes its
    obligation; satisfying an unopened key is a no-op. *)

val precedes :
  name:string ->
  doc:string ->
  first:(Trace.event -> string option) ->
  then_:(Trace.event -> string option) ->
  rule
(** Ordering: an event matching [then_] with key [k] requires an earlier
    event matching [first] with the same key. An event may match both;
    its own [first] does not enable its own [then_]. *)

(** {1 Event accessors} *)

val is : Trace.event -> string -> bool
val arg_i : Trace.event -> string -> int option

val arg_s : Trace.event -> string -> string option
(** Integer args are stringified rather than dropped. *)

(** {1 Checker engine} *)

type checker

val create : ?max_violations:int -> rule list -> checker
(** [max_violations] caps stored step-violations (default 256) so a
    badly broken run cannot accumulate unbounded reports. *)

val feed : checker -> Trace.event -> unit

val attach : checker -> unit
(** Install as the global trace listener ({!Trace.set_listener}). *)

val detach : unit -> unit
(** Clear the global trace listener. *)

val events_seen : checker -> int

val violations : checker -> violation list
(** Step violations so far, oldest first (finalizers not included). *)

val finish : ?now:int -> checker -> violation list
(** Step violations plus every rule's finalizer output. Does not detach;
    callers typically [detach] right before. *)
