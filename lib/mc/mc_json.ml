module An = Scallop_analysis

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let int = string_of_int
let bool = string_of_bool
let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"

let finding (f : An.finding) =
  obj
    [
      ("severity", str (An.severity_name f.An.severity));
      ("layer", str (An.layer_name f.An.layer));
      ("kind", str (An.kind_name f.An.kind));
      ("subject", str f.An.subject);
      ("explanation", str f.An.explanation);
      ("trace_ids", arr (List.map int f.An.trace_ids));
    ]

let violation (v : Temporal.violation) =
  obj
    [
      ("rule", str v.Temporal.v_rule);
      ("detail", str v.Temporal.v_detail);
      ("ts_ns", int v.Temporal.v_ts);
      ("events", arr (List.map int v.Temporal.v_events));
    ]

let check_report findings =
  obj
    [
      ("findings", arr (List.map finding findings));
      ("errors", int (List.length (An.errors findings)));
      ("clean", bool (An.errors findings = []));
    ]

let outcome (o : Scenario.outcome) =
  obj
    [
      ("violations", arr (List.map violation o.Scenario.o_violations));
      ("findings", arr (List.map finding o.Scenario.o_findings));
      ("choices", str (Choice.to_string o.Scenario.o_chosen));
      ("choice_points", int (List.length o.Scenario.o_log));
      ("state_hash", int o.Scenario.o_state_hash);
      ("events", int o.Scenario.o_events);
      ("end_ns", int o.Scenario.o_now);
    ]

let explore_report (r : Explore.result) =
  let s = r.Explore.r_stats in
  obj
    [
      ( "counterexample",
        match r.Explore.r_counterexample with
        | None -> "null"
        | Some o -> outcome o );
      ("runs", int s.Explore.s_runs);
      ("memo_hits", int s.Explore.s_memo_hits);
      ("pruned", int s.Explore.s_pruned);
      ("states", int s.Explore.s_states);
      ("deepest", int s.Explore.s_deepest);
    ]
