(* The control-plane protocol contract as data. Each rule is built fresh
   per run (closures carry mutable state). Event vocabulary: see the
   instrumentation in Rpc_transport.Server.deliver ("rpc_exec"),
   Switch_agent ("member_add/del", "batch_*", "agent_crash/restart") and
   Controller ("op_defer/op_drained/defer_drop/defer_discard",
   "heal_begin/heal_done", "hb_*", "agent_dead").

   Two namespaces identify agents: server-side events carry the
   data-plane label ("sw0"), controller-side events carry the switch
   index (0). No rule ever needs to join the two. *)

open Temporal

let req what = function
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Rules: event missing %s arg" what)

let agent_s ev = req "agent" (arg_s ev "agent")
let agent_i ev = req "agent" (arg_i ev "agent")

(* R1 — wire-level exactly-once: no (agent, client, seq) executes twice
   with [replayed=false] within one agent epoch. Replays served from the
   seq cache are fine; a cross-reboot re-execution is the agent-restart
   model (the wipe discards the cache together with the state the op
   acted on) and is judged by the effect rule instead. *)
let exactly_once_wire () =
  let restarts : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let seen : (string * string * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"exactly-once-wire"
    ~doc:
      "a (client, seq) request must not execute twice on the same agent \
       epoch; retransmits are answered from the replay cache"
    ~step:(fun ~idx ev ->
      if is ev "agent_restart" then begin
        let a = agent_s ev in
        Hashtbl.replace restarts a
          (1 + Option.value ~default:0 (Hashtbl.find_opt restarts a));
        []
      end
      else if is ev "rpc_exec" && arg_s ev "replayed" = Some "false" then begin
        let a = agent_s ev in
        let key = (a, req "src" (arg_s ev "src"), req "seq" (arg_i ev "seq")) in
        let era = Option.value ~default:0 (Hashtbl.find_opt restarts a) in
        match Hashtbl.find_opt seen key with
        | Some (era', first) when era' = era ->
            let _, src, seq = key in
            [
              {
                v_rule = "exactly-once-wire";
                v_detail =
                  Printf.sprintf
                    "agent %s re-executed %s seq=%d from %s (first execution \
                     at event %d, same epoch)"
                    a
                    (Option.value ~default:"?" (arg_s ev "name"))
                    seq src first;
                v_ts = ev.ts;
                v_events = [ first; idx ];
              };
            ]
        | _ ->
            Hashtbl.replace seen key (era, idx);
            []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R2 — effect-level exactly-once: registering a participant must never
   leave it in the member list twice. Scoped to agents that have
   restarted: that is the heal-race signature (a resync replays intent,
   then a straddling retransmit re-executes on the healed agent). A
   duplicate on a never-restarted agent is the documented drain hazard —
   a deferred op re-issued after its original's reply was lost — which
   the anti-entropy reconcile pass repairs. *)
let exactly_once_effect () =
  let restarted : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  make ~name:"exactly-once-effect"
    ~doc:
      "on a healed (restarted) agent a participant must never be appended \
       to a meeting's member list twice"
    ~step:(fun ~idx ev ->
      if is ev "agent_restart" then begin
        Hashtbl.replace restarted (agent_s ev) ();
        []
      end
      else if is ev "member_add" then begin
        let a = agent_s ev in
        let count = req "count" (arg_i ev "count") in
        if count > 1 && Hashtbl.mem restarted a then
          [
            {
              v_rule = "exactly-once-effect";
              v_detail =
                Printf.sprintf
                  "agent %s: participant %d added to meeting %d with \
                   multiplicity %d after a restart — a resync replay and a \
                   straddling retransmit both executed the join"
                  a
                  (req "participant" (arg_i ev "participant"))
                  (req "meeting" (arg_i ev "meeting"))
                  count;
              v_ts = ev.ts;
              v_events = [ idx ];
            };
          ]
        else []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R3 — epoch monotonicity: pong-observed epochs never regress per
   switch index; agent restarts strictly increase the epoch per label. *)
let epoch_monotone () =
  let pong : (int, int * int) Hashtbl.t = Hashtbl.create 4 in
  let boot : (string, int * int) Hashtbl.t = Hashtbl.create 4 in
  make ~name:"epoch-monotone"
    ~doc:
      "agent epochs are monotonic: heartbeat pongs never report a lower \
       epoch, restarts strictly increase it"
    ~step:(fun ~idx ev ->
      if is ev "hb_pong" then begin
        let a = agent_i ev and e = req "epoch" (arg_i ev "epoch") in
        match Hashtbl.find_opt pong a with
        | Some (e', at) when e < e' ->
            [
              {
                v_rule = "epoch-monotone";
                v_detail =
                  Printf.sprintf
                    "switch %d pong reported epoch %d after epoch %d" a e e';
                v_ts = ev.ts;
                v_events = [ at; idx ];
              };
            ]
        | _ ->
            Hashtbl.replace pong a (e, idx);
            []
      end
      else if is ev "agent_restart" then begin
        let a = agent_s ev and e = req "epoch" (arg_i ev "epoch") in
        match Hashtbl.find_opt boot a with
        | Some (e', at) when e <= e' ->
            [
              {
                v_rule = "epoch-monotone";
                v_detail =
                  Printf.sprintf
                    "agent %s restarted into epoch %d, not above epoch %d" a e
                    e';
                v_ts = ev.ts;
                v_events = [ at; idx ];
              };
            ]
        | _ ->
            Hashtbl.replace boot a (e, idx);
            []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R4 — no execution on a crashed agent: between agent_crash and the
   next agent_restart the server must not execute (or even answer)
   anything. *)
let no_exec_while_crashed () =
  let down : (string, int) Hashtbl.t = Hashtbl.create 4 in
  make ~name:"no-exec-while-crashed"
    ~doc:"a crashed agent must not execute or answer RPCs until it restarts"
    ~step:(fun ~idx ev ->
      if is ev "agent_crash" then begin
        Hashtbl.replace down (agent_s ev) idx;
        []
      end
      else if is ev "agent_restart" then begin
        Hashtbl.remove down (agent_s ev);
        []
      end
      else if is ev "rpc_exec" then begin
        let a = agent_s ev in
        match Hashtbl.find_opt down a with
        | Some crash_at ->
            [
              {
                v_rule = "no-exec-while-crashed";
                v_detail =
                  Printf.sprintf
                    "agent %s executed %s seq=%d while crashed (down since \
                     event %d)"
                    a
                    (Option.value ~default:"?" (arg_s ev "name"))
                    (req "seq" (arg_i ev "seq"))
                    crash_at;
                v_ts = ev.ts;
                v_events = [ crash_at; idx ];
              };
            ]
        | None -> []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R5 — batch discipline: ops execute in submission order (idx 0,1,...),
   every op runs exactly once (per-op errors are isolated, they must not
   abort the rest), and batches do not nest. *)
let batch_order () =
  let open_b : (string, int * int * int) Hashtbl.t = Hashtbl.create 4 in
  (* label -> (n, next expected idx, begin event) *)
  make ~name:"batch-order"
    ~doc:
      "batched ops execute in submission order and every op executes \
       exactly once, errors isolated per op"
    ~step:(fun ~idx ev ->
      let viol detail at =
        [
          {
            v_rule = "batch-order";
            v_detail = detail;
            v_ts = ev.ts;
            v_events = (if at = idx then [ idx ] else [ at; idx ]);
          };
        ]
      in
      if is ev "batch_begin" then begin
        let a = agent_s ev and n = req "n" (arg_i ev "n") in
        let out =
          match Hashtbl.find_opt open_b a with
          | Some (_, _, at) ->
              viol (Printf.sprintf "agent %s: batch_begin inside a batch" a) at
          | None -> []
        in
        Hashtbl.replace open_b a (n, 0, idx);
        out
      end
      else if is ev "batch_op" then begin
        let a = agent_s ev and i = req "idx" (arg_i ev "idx") in
        match Hashtbl.find_opt open_b a with
        | None ->
            viol (Printf.sprintf "agent %s: batch_op outside a batch" a) idx
        | Some (n, expect, at) ->
            Hashtbl.replace open_b a (n, expect + 1, at);
            if i <> expect then
              viol
                (Printf.sprintf
                   "agent %s: batch op %d executed out of submission order \
                    (expected op %d)"
                   a i expect)
                at
            else []
      end
      else if is ev "batch_end" then begin
        let a = agent_s ev in
        match Hashtbl.find_opt open_b a with
        | None ->
            viol (Printf.sprintf "agent %s: batch_end outside a batch" a) idx
        | Some (n, got, at) ->
            Hashtbl.remove open_b a;
            if got <> n then
              viol
                (Printf.sprintf
                   "agent %s: batch executed %d of %d ops — per-op error \
                    isolation broken"
                   a got n)
                at
            else []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R6 — deferred ops eventually drain: at end of run the deferred queue
   must be empty unless the switch is still marked dead (the run ended
   mid-outage). A liveness rule: ops may sit queued transiently — even
   across a heal_done, when they were deferred during the heal itself —
   but a healthy end state with a non-empty queue means they were
   forgotten. Uses the depth/n args as the authoritative counter. *)
let deferred_drain () =
  let depth : (int, int * int) Hashtbl.t = Hashtbl.create 4 in
  (* idx -> (outstanding, last defer event) *)
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  make ~name:"deferred-drain"
    ~doc:
      "ops deferred for a dead switch eventually drain (or are discarded \
       by a full resync): a healthy switch must not end the run with ops \
       still queued"
    ~step:(fun ~idx ev ->
      if is ev "op_defer" then begin
        Hashtbl.replace depth (agent_i ev) (req "depth" (arg_i ev "depth"), idx);
        []
      end
      else if is ev "op_drained" then begin
        let a = agent_i ev in
        let _, at =
          Option.value ~default:(0, idx) (Hashtbl.find_opt depth a)
        in
        Hashtbl.replace depth a (req "depth" (arg_i ev "depth"), at);
        []
      end
      else if is ev "defer_discard" then begin
        Hashtbl.remove depth (agent_i ev);
        []
      end
      else if is ev "agent_dead" then begin
        Hashtbl.replace dead (agent_i ev) ();
        []
      end
      else if is ev "heal_done" then begin
        (* ops deferred during the heal itself may still be queued here;
           they must drain before the run ends (checked in [final]) *)
        Hashtbl.remove dead (agent_i ev);
        []
      end
      else [])
    ~final:(fun ~now ->
      Hashtbl.fold
        (fun a (d, at) acc ->
          if d > 0 && not (Hashtbl.mem dead a) then
            {
              v_rule = "deferred-drain";
              v_detail =
                Printf.sprintf
                  "switch %d ended the run healthy with %d deferred op(s) \
                   never drained"
                  a d;
              v_ts = now;
              v_events = [ at ];
            }
            :: acc
          else acc)
        depth []
      |> List.sort (fun a b -> compare a.v_events b.v_events))

(* R7 — heartbeat liveness: while health monitoring runs, ticks arrive
   at least every 2x the configured interval. *)
let hb_liveness () =
  let running = ref false in
  let interval = ref 0 in
  let last = ref (-1, -1) in
  (* (ts, event idx) of last tick *)
  make ~name:"hb-liveness"
    ~doc:"heartbeat ticks keep firing (gap <= 2x interval) while health \
          monitoring is running"
    ~step:(fun ~idx ev ->
      if is ev "hb_start" then begin
        running := true;
        interval := req "interval" (arg_i ev "interval");
        last := (ev.ts, idx);
        []
      end
      else if is ev "hb_stop" then begin
        running := false;
        []
      end
      else if is ev "hb_tick" then begin
        let prev_ts, prev_idx = !last in
        last := (ev.ts, idx);
        if !running && prev_ts >= 0 && ev.ts - prev_ts > 2 * !interval then
          [
            {
              v_rule = "hb-liveness";
              v_detail =
                Printf.sprintf
                  "heartbeat gap of %dns exceeds 2x interval (%dns)"
                  (ev.ts - prev_ts) !interval;
              v_ts = ev.ts;
              v_events = [ prev_idx; idx ];
            };
          ]
        else []
      end
      else [])
    ~final:(fun ~now ->
      let prev_ts, prev_idx = !last in
      if !running && prev_ts >= 0 && now - prev_ts > 2 * !interval then
        [
          {
            v_rule = "hb-liveness";
            v_detail =
              Printf.sprintf
                "heartbeats stopped firing: %dns since last tick at end of \
                 run (interval %dns)"
                (now - prev_ts) !interval;
            v_ts = now;
            v_events = [ prev_idx ];
          };
        ]
      else [])

(* R8 — replay fidelity: a cache-served reply is byte-identical to the
   original execution's reply (compared via the payload digest). *)
let replay_identical () =
  let orig : (string * string * int, int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  make ~name:"replay-identical"
    ~doc:
      "a replayed (cache-served) reply must be byte-identical to the \
       reply produced by the original execution"
    ~step:(fun ~idx ev ->
      if is ev "rpc_exec" then begin
        let key =
          ( agent_s ev,
            req "src" (arg_s ev "src"),
            req "seq" (arg_i ev "seq") )
        in
        let digest = req "digest" (arg_i ev "digest") in
        if arg_s ev "replayed" = Some "false" then begin
          Hashtbl.replace orig key (digest, idx);
          []
        end
        else
          match Hashtbl.find_opt orig key with
          | Some (d, at) when d <> digest ->
              let _, src, seq = key in
              [
                {
                  v_rule = "replay-identical";
                  v_detail =
                    Printf.sprintf
                      "agent %s: replay of seq=%d from %s differs from the \
                       original reply"
                      (agent_s ev) seq src;
                  v_ts = ev.ts;
                  v_events = [ at; idx ];
                };
              ]
          | _ -> []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R9 — quiet channel before heal: a heal must never begin while a
   blocking call is in flight on that switch's channel (the guard whose
   absence causes the straddling-retransmit double-execution). *)
let quiet_heal () =
  always ~name:"quiet-heal"
    ~doc:
      "a heal never begins while a mutation call is in flight on the \
       channel (the quiet-channel rule)"
    (fun ~idx:_ ev ->
      if is ev "heal_begin" then
        match arg_i ev "in_flight" with
        | Some n when n > 0 ->
            Some
              (Printf.sprintf
                 "switch %d began healing with %d request(s) in flight"
                 (agent_i ev) n)
        | _ -> None
      else None)

(* R10 — fencing epochs strictly increase: every controller activation
   ([ctrl_activate], emitted by a promotion) mints a fence strictly above
   every fence activated before it. Two primaries acting under one epoch
   would make the agents' highest-fence-wins acceptance rule vacuous. *)
let fence_monotone () =
  let last = ref None in
  (* (fence, ctrl label, event idx) of the latest activation *)
  make ~name:"fence-monotone"
    ~doc:
      "controller activations mint strictly increasing fencing epochs: no \
       two primaries ever act under the same epoch"
    ~step:(fun ~idx ev ->
      if is ev "ctrl_activate" then begin
        let f = req "fence" (arg_i ev "fence") in
        let who = Option.value ~default:"?" (arg_s ev "ctrl") in
        match !last with
        | Some (f', who', at) when f <= f' ->
            [
              {
                v_rule = "fence-monotone";
                v_detail =
                  Printf.sprintf
                    "controller %s activated under fence %d, not above fence \
                     %d already activated by %s"
                    who f f' who';
                v_ts = ev.ts;
                v_events = [ at; idx ];
              };
            ]
        | _ ->
            last := Some (f, who, idx);
            []
      end
      else [])
    ~final:(fun ~now:_ -> [])

(* R11 — no op from a deposed epoch ever executes: once an agent accepts
   a fenced op under epoch f, it must reject (Stale_fence) anything
   fenced below f. Scoped per agent boot — a restarted agent forgets its
   fence (by design) and the acting primary's first fenced resync
   re-installs it. A fresh execution (replayed=false) that was not
   rejected and carries a fence below the agent's high-water mark is the
   split-brain signature the skip-fencing-check mutation plants. *)
let no_deposed_exec () =
  let restarts : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let hi : (string * int, int * int) Hashtbl.t = Hashtbl.create 8 in
  (* (agent, boot era) -> (max accepted fence, its event idx) *)
  make ~name:"no-deposed-exec"
    ~doc:
      "an agent never executes an op fenced under a deposed epoch: after \
       accepting fence f (within one boot), everything below f is refused"
    ~step:(fun ~idx ev ->
      if is ev "agent_restart" then begin
        let a = agent_s ev in
        Hashtbl.replace restarts a
          (1 + Option.value ~default:0 (Hashtbl.find_opt restarts a));
        []
      end
      else if
        is ev "rpc_exec"
        && arg_s ev "replayed" = Some "false"
        && arg_s ev "rejected" <> Some "true"
      then begin
        match arg_i ev "fence" with
        | None -> [] (* unfenced request: single-controller traffic *)
        | Some f -> (
            let a = agent_s ev in
            let era = Option.value ~default:0 (Hashtbl.find_opt restarts a) in
            match Hashtbl.find_opt hi (a, era) with
            | Some (f', at) when f < f' ->
                [
                  {
                    v_rule = "no-deposed-exec";
                    v_detail =
                      Printf.sprintf
                        "agent %s executed %s seq=%d under deposed fence %d \
                         after accepting fence %d (event %d, same boot)"
                        a
                        (Option.value ~default:"?" (arg_s ev "name"))
                        (req "seq" (arg_i ev "seq"))
                        f f' at;
                    v_ts = ev.ts;
                    v_events = [ at; idx ];
                  };
                ]
            | Some (f', _) when f > f' ->
                Hashtbl.replace hi (a, era) (f, idx);
                []
            | Some _ -> []
            | None ->
                Hashtbl.replace hi (a, era) (f, idx);
                [])
      end
      else [])
    ~final:(fun ~now:_ -> [])

let all () =
  [
    exactly_once_wire ();
    exactly_once_effect ();
    epoch_monotone ();
    no_exec_while_crashed ();
    batch_order ();
    deferred_drain ();
    hb_liveness ();
    replay_identical ();
    quiet_heal ();
    fence_monotone ();
    no_deposed_exec ();
  ]
