(** Replayable choice sequences — the explorer's source of controlled
    nondeterminism.

    Every nondeterministic decision in an explored run (same-timestamp
    event permutation, control-channel delivery fate, crash/restart
    injection) funnels through {!next}. The first choices replay a
    {e forced prefix}; past the prefix every decision defaults to [0]
    (the production behavior: insertion order, deliver, no fault).
    Every decision — forced or defaulted — is recorded with its arity,
    so the run's complete schedule is a printable, replayable artifact:
    re-running with [forced = chosen t] reproduces it exactly. *)

type t

val create : ?forced:int array -> unit -> t

val next : t -> arity:int -> int
(** Take the next decision among [0 .. arity-1]. Out-of-range forced
    values fall back to [0]. *)

val length : t -> int
(** Choice points consumed so far. *)

val log : t -> (int * int) list
(** Every [(chosen, arity)] pair, in decision order. *)

val chosen : t -> int array
(** Just the chosen values — feed back as [forced] to replay the run. *)

val to_string : int array -> string
(** Comma-separated ints, e.g. ["0,2,0,1"] — the printable artifact. *)

val of_string : string -> int array
(** Inverse of {!to_string}. @raise Invalid_argument on junk. *)

val pp_log : Format.formatter -> (int * int) list -> unit
