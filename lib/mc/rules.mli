(** The control-plane protocol contract, shipped as data.

    Nine temporal rules over the {!Scallop_obs.Trace} event stream (trace
    level [Rpc] or higher must be active for the events to exist):

    - {b exactly-once-wire} — no (client, seq) executes twice with
      [replayed=false] within one agent epoch.
    - {b exactly-once-effect} — on a restarted agent, a participant is
      never appended to a meeting's member list twice (the heal-race
      signature).
    - {b epoch-monotone} — pong-observed epochs never regress; restarts
      strictly increase the epoch.
    - {b no-exec-while-crashed} — a crashed agent executes nothing until
      it restarts.
    - {b batch-order} — batched ops run in submission order, each exactly
      once, per-op errors isolated.
    - {b deferred-drain} — ops deferred for a dead switch eventually
      drain (or are discarded by resync): a switch must not end the run
      healthy with ops still queued.
    - {b hb-liveness} — heartbeat ticks keep firing while monitoring runs.
    - {b replay-identical} — cache-served replies are byte-identical to
      the original (digest compare).
    - {b quiet-heal} — no heal begins while a call is in flight on the
      channel.

    Each call builds fresh rule instances (they carry per-run mutable
    state) — never share a list across runs. *)

val exactly_once_wire : unit -> Temporal.rule
val exactly_once_effect : unit -> Temporal.rule
val epoch_monotone : unit -> Temporal.rule
val no_exec_while_crashed : unit -> Temporal.rule
val batch_order : unit -> Temporal.rule
val deferred_drain : unit -> Temporal.rule
val hb_liveness : unit -> Temporal.rule
val replay_identical : unit -> Temporal.rule
val quiet_heal : unit -> Temporal.rule

val all : unit -> Temporal.rule list
(** Fresh instances of the full catalogue, in the order above. *)
