type temporal_layer = T0 | T1 | T2
type decode_target = DT_7_5fps | DT_15fps | DT_30fps

type structure = {
  template_layers : temporal_layer array;
  decode_target_count : int;
}

type t = {
  start_of_frame : bool;
  end_of_frame : bool;
  template_id : int;
  frame_number : int;
  structure : structure option;
}

let extension_id = 1

let l1t3_structure =
  { template_layers = [| T0; T0; T1; T2; T2 |]; decode_target_count = 3 }

(* 4-frame cycle at 30 fps (paper Fig. 9): positions 0..3 carry layers
   T0, T2, T1, T2. Templates 3 and 4 alternate for the two T2 positions. *)
let l1t3_template ~keyframe ~frame_in_cycle =
  match frame_in_cycle land 3 with
  | 0 -> if keyframe then 0 else 1
  | 1 -> 3
  | 2 -> 2
  | _ -> 4

let layer_of_template s id =
  if id < 0 || id >= Array.length s.template_layers then
    Rtp.Wire.parse_error "AV1 template id %d out of range" id
  else s.template_layers.(id)

let layer_of_template_l1t3 id = layer_of_template l1t3_structure id

let layer_index = function T0 -> 0 | T1 -> 1 | T2 -> 2
let index_of_target = function DT_7_5fps -> 0 | DT_15fps -> 1 | DT_30fps -> 2

let target_of_index = function
  | 0 -> DT_7_5fps
  | 1 -> DT_15fps
  | 2 -> DT_30fps
  | n -> invalid_arg (Printf.sprintf "Av1.Dd.target_of_index %d" n)

let target_includes dt layer = layer_index layer <= index_of_target dt
let template_in_target_l1t3 id dt = target_includes dt (layer_of_template_l1t3 id)
let fps_of_target = function DT_7_5fps -> 7.5 | DT_15fps -> 15.0 | DT_30fps -> 30.0

let layer_code = function T0 -> 0 | T1 -> 1 | T2 -> 2

let layer_of_code = function
  | 0 -> T0
  | 1 -> T1
  | 2 -> T2
  | c -> Rtp.Wire.parse_error "AV1 layer code %d" c

let serialize t =
  let w = Rtp.Wire.Writer.create () in
  let flags =
    (if t.start_of_frame then 0x80 else 0)
    lor (if t.end_of_frame then 0x40 else 0)
    lor (t.template_id land 0x3F)
  in
  Rtp.Wire.Writer.u8 w flags;
  Rtp.Wire.Writer.u16 w t.frame_number;
  (match t.structure with
  | None -> ()
  | Some s ->
      Rtp.Wire.Writer.u8 w 0x01;
      Rtp.Wire.Writer.u8 w (Array.length s.template_layers);
      Array.iter (fun l -> Rtp.Wire.Writer.u8 w (layer_code l)) s.template_layers;
      Rtp.Wire.Writer.u8 w s.decode_target_count);
  Rtp.Wire.Writer.contents w

let parse buf =
  let r = Rtp.Wire.Reader.of_bytes buf in
  let flags = Rtp.Wire.Reader.u8 r in
  let frame_number = Rtp.Wire.Reader.u16 r in
  let structure =
    if Rtp.Wire.Reader.eof r then None
    else begin
      let marker = Rtp.Wire.Reader.u8 r in
      if marker <> 0x01 then Rtp.Wire.parse_error "AV1 extended-descriptor marker %#x" marker;
      let n = Rtp.Wire.Reader.u8 r in
      let template_layers = Array.init n (fun _ -> layer_of_code (Rtp.Wire.Reader.u8 r)) in
      let decode_target_count = Rtp.Wire.Reader.u8 r in
      Some { template_layers; decode_target_count }
    end
  in
  {
    start_of_frame = flags land 0x80 <> 0;
    end_of_frame = flags land 0x40 <> 0;
    template_id = flags land 0x3F;
    frame_number;
    structure;
  }

type fields = {
  f_start_of_frame : bool;
  f_end_of_frame : bool;
  f_template_id : int;
  f_frame_number : int;
  f_has_structure : bool;
  f_canonical : bool;
}

let frame_number_pos = 1

(* Allocation-free mirror of [parse] over a sub-range: validates exactly
   the inputs [parse] accepts (None where it would raise) without
   materializing the record or structure arrays. *)
let read_fields buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then None
  else if len < 3 then None
  else begin
    let u8 i = Char.code (Bytes.get buf (off + i)) in
    let flags = u8 0 in
    let frame_number = (u8 1 lsl 8) lor u8 2 in
    (* canonical = re-serializing the parsed descriptor reproduces these
       exact bytes; parse tolerates trailing bytes after the structure,
       serialize never emits them *)
    let structure_ok =
      if len = 3 then Some (false, true)
      else if u8 3 <> 0x01 then None
      else if len < 5 then None
      else begin
        let n = u8 4 in
        if len < 5 + n + 1 then None
        else begin
          let ok = ref true in
          for i = 0 to n - 1 do
            if u8 (5 + i) > 2 then ok := false
          done;
          if !ok then Some (true, len = 5 + n + 1) else None
        end
      end
    in
    match structure_ok with
    | None -> None
    | Some (has_structure, canonical) ->
        Some
          {
            f_start_of_frame = flags land 0x80 <> 0;
            f_end_of_frame = flags land 0x40 <> 0;
            f_template_id = flags land 0x3F;
            f_frame_number = frame_number;
            f_has_structure = has_structure;
            f_canonical = canonical;
          }
  end

let fields_of_t t =
  {
    f_start_of_frame = t.start_of_frame;
    f_end_of_frame = t.end_of_frame;
    f_template_id = t.template_id;
    f_frame_number = t.frame_number;
    f_has_structure = t.structure <> None;
    f_canonical = true;
  }

let frame_number_succ n = (n + 1) land 0xFFFF

let pp fmt t =
  Format.fprintf fmt "DD{tpl=%d frame=%d sof=%b eof=%b%s}" t.template_id t.frame_number
    t.start_of_frame t.end_of_frame
    (if t.structure = None then "" else " +structure")

let equal a b =
  a.start_of_frame = b.start_of_frame && a.end_of_frame = b.end_of_frame
  && a.template_id = b.template_id && a.frame_number = b.frame_number
  && a.structure = b.structure
