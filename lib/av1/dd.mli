(** AV1 RTP dependency descriptor for the L1T3 SVC profile (paper §5.4,
    Fig. 9, Appendix E).

    Every RTP video packet carries this descriptor as a header extension;
    the template id identifies the temporal layer so the data plane can
    drop enhancement layers without touching the (opaque, potentially
    encrypted) payload. Key frames additionally carry the template
    dependency structure, which only the switch agent parses.

    Encoding note: the real AV1 descriptor is a bit-packed variable-length
    structure; we use a byte-aligned equivalent carrying the same fields
    (documented in DESIGN.md) so the data-plane parsing constraints —
    fixed-offset mandatory fields, variable extended part — are preserved. *)

type temporal_layer = T0 | T1 | T2

type decode_target = DT_7_5fps | DT_15fps | DT_30fps
(** The three decode targets of L1T3: 7.5, 15 and 30 frames/second. *)

type structure = {
  template_layers : temporal_layer array;
      (** [template_layers.(id)] is the temporal layer of template [id]. *)
  decode_target_count : int;
}
(** Template dependency structure, present on key frames only. *)

type t = {
  start_of_frame : bool;
  end_of_frame : bool;
  template_id : int;  (** 6-bit template id. *)
  frame_number : int;  (** 16-bit frame counter, wraps. *)
  structure : structure option;
}

val extension_id : int
(** RFC 8285 extension element id used for the descriptor (= 1). *)

val l1t3_structure : structure
(** The Fig. 9 structure: templates 0,1 → T0; 2 → T1; 3,4 → T2. *)

val l1t3_template : keyframe:bool -> frame_in_cycle:int -> int
(** Template id for position [frame_in_cycle] (0–3) of the 4-frame L1T3
    cycle at 30 fps: T0, T2, T1, T2. Frame 0 of a key-framed cycle uses
    template 0, otherwise 1. *)

val layer_of_template : structure -> int -> temporal_layer
val layer_of_template_l1t3 : int -> temporal_layer

val target_includes : decode_target -> temporal_layer -> bool
(** [target_includes dt layer] — packets of [layer] must be forwarded to a
    receiver decoding at [dt]. *)

val template_in_target_l1t3 : int -> decode_target -> bool
val fps_of_target : decode_target -> float
val target_of_index : int -> decode_target
val index_of_target : decode_target -> int
val layer_index : temporal_layer -> int

val serialize : t -> bytes
val parse : bytes -> t

type fields = {
  f_start_of_frame : bool;
  f_end_of_frame : bool;
  f_template_id : int;
  f_frame_number : int;
  f_has_structure : bool;
  f_canonical : bool;
      (** The bytes equal [serialize (parse bytes)] — no trailing slack
          after the structure. When false, an in-place frame-number patch
          is not interchangeable with a parse-and-reserialize. *)
}
(** The descriptor's scalar fields, without materializing the structure
    arrays — what the data-plane fast path needs. *)

val frame_number_pos : int
(** Byte offset of the 16-bit frame number within a serialized
    descriptor (= 1); the fast path patches it in place. *)

val read_fields : bytes -> off:int -> len:int -> fields option
(** Allocation-free validation + field extraction over a sub-range of a
    larger buffer (e.g. straight out of an {!Rtp.Packet.View}). Returns
    [None] exactly when {!parse} would raise on those bytes, [Some]
    otherwise — parity the paranoid differential mode depends on. *)

val fields_of_t : t -> fields
(** The same scalar fields read off a parsed descriptor (slow path);
    [f_canonical] is trivially true. *)

val frame_number_succ : int -> int
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
