(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via the Experiments registry), runs Bechamel
   microbenchmarks of the data-plane hot paths, and the fan-out
   throughput macro-benchmark gating the zero-copy fast path
   (results land in BENCH_3.json).

   Usage: main.exe [--quick] [--no-micro] [--no-experiments] [--ctrl-churn]
   [--gc-stats] [experiment ids...]. --ctrl-churn runs only the
   control-plane batching gate (BENCH_ctrl_churn.json, batched >= 5x
   per-op ops/sec). --gc-stats (or FANOUT_GC=1) additionally writes
   BENCH_gc.json with the fan-out loop's GC pressure breakdown. *)

let microbench () =
  print_endline "== Microbenchmarks: data-plane hot paths (model code) ==";
  let rng = Scallop_util.Rng.create 99 in
  let video_pkt =
    let src = Codec.Video_source.create rng (Codec.Video_source.default_config ~ssrc:7) in
    let frame = Codec.Video_source.next_frame src ~time_ns:0 in
    List.hd frame.Codec.Video_source.packets
  in
  let video_buf = Rtp.Packet.serialize video_pkt in
  let dd_buf = Option.get (Rtp.Packet.find_extension video_pkt Av1.Dd.extension_id) in
  let remb_buf =
    Rtp.Rtcp.serialize_compound
      [
        Rtp.Rtcp.Receiver_report { ssrc = 7; reports = [] };
        Rtp.Rtcp.Remb { sender_ssrc = 7; bitrate_bps = 2_000_000; ssrcs = [ 7 ] };
      ]
  in
  (* a populated PRE: one NRA-style tree with 10 participants *)
  let pre = Tofino.Pre.create () in
  let nodes =
    List.init 10 (fun i ->
        Tofino.Pre.create_l1_node pre ~rid:i ~l1_xid:1 ~prune_enabled:true ~ports:[ i ] ())
  in
  Tofino.Pre.create_tree pre ~mgid:1 ~nodes;
  Tofino.Pre.set_l2_xid_ports pre ~xid:3 ~ports:[ 3 ];
  let rewriter = Scallop.Seq_rewrite.create Scallop.Seq_rewrite.S_LR ~target:Av1.Dd.DT_15fps in
  let seq = ref 0 and frame = ref 0 in
  let stage = Bechamel.Staged.stage in
  let tests =
    Bechamel.Test.make_grouped ~name:"dataplane"
      [
        Bechamel.Test.make ~name:"rtp_parse" (stage (fun () -> ignore (Rtp.Packet.parse video_buf)));
        Bechamel.Test.make ~name:"rtp_serialize" (stage (fun () -> ignore (Rtp.Packet.serialize video_pkt)));
        Bechamel.Test.make ~name:"av1_dd_parse" (stage (fun () -> ignore (Av1.Dd.parse dd_buf)));
        Bechamel.Test.make ~name:"demux_classify" (stage (fun () -> ignore (Rtp.Demux.classify video_buf)));
        Bechamel.Test.make ~name:"rtcp_parse_remb" (stage (fun () -> ignore (Rtp.Rtcp.parse_compound remb_buf)));
        Bechamel.Test.make ~name:"pre_replicate_10way"
          (stage (fun () -> ignore (Tofino.Pre.replicate pre ~mgid:1 ~l1_xid:2 ~rid:3 ~l2_xid:3)));
        Bechamel.Test.make ~name:"seq_rewrite_slr"
          (stage (fun () ->
               seq := (!seq + 1) land 0xFFFF;
               if !seq land 7 = 0 then frame := (!frame + 1) land 0xFFFF;
               ignore
                 (Scallop.Seq_rewrite.on_packet rewriter ~seq:!seq ~frame:!frame
                    ~start_of_frame:(!seq land 7 = 1) ~end_of_frame:(!seq land 7 = 0))));
      ]
  in
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let cfg = Bechamel.Benchmark.cfg ~limit:1000 ~quota:(Bechamel.Time.second 0.5) () in
  let raw = Bechamel.Benchmark.all cfg [ instance ] tests in
  let analysis =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let table =
    Scallop_util.Table.create ~title:"nanoseconds per operation" ~columns:[ "op"; "ns/run" ]
  in
  let results =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) raw []
    |> List.sort compare
    |> List.filter_map (fun (name, r) ->
           let est = Bechamel.Analyze.one analysis instance r in
           match Bechamel.Analyze.OLS.estimates est with
           | Some (ns :: _) ->
               Scallop_util.Table.add_row table [ name; Printf.sprintf "%.1f" ns ];
               Some (name, ns)
           | Some [] | None -> None)
  in
  Scallop_util.Table.print table;
  results

(* --- fan-out throughput: the zero-copy fast-path gate ------------------------- *)

(* One sender fanning out to [receivers] legs through the full data plane
   (network ingress, PRE replication, per-leg egress). Slow mode
   reproduces the pre-fast-path pipeline exactly — full RTP/DD parse per
   ingress packet, record rewrite + reserialize per leg, uncached
   [Pre.replicate] — so [slow_pps] is an honest baseline. Receiver IPs
   are deliberately not hosted: every egress replica is a cheap
   undeliverable drop, keeping the network simulator out of the
   numerator. *)
let fanout_world ~mode ~receivers =
  let engine = Netsim.Engine.create () in
  let rng = Scallop_util.Rng.create 7 in
  let network = Netsim.Network.create engine rng in
  let module Addr = Scallop_util.Addr in
  let sfu_ip = Addr.ip_of_string "10.0.0.1" in
  let sender_ip = Addr.ip_of_string "10.0.1.1" in
  let fast =
    { Netsim.Link.default with rate_bps = infinity; propagation_ns = 100 }
  in
  Netsim.Network.add_host network ~ip:sfu_ip ~uplink:fast ~downlink:fast ();
  Netsim.Network.add_host network ~ip:sender_ip ~uplink:fast ~downlink:fast ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip ~mode () in
  let participants =
    (1, 41_000) :: List.init receivers (fun i -> (2 + i, 42_000 + i))
  in
  let meeting =
    Scallop.Trees.register_meeting (Scallop.Dataplane.trees dp) Scallop.Trees.Nra
      ~participants ~senders:[ 1 ]
  in
  Scallop.Dataplane.register_uplink dp ~port:41_000 ~sender:1 ~meeting ~video_ssrc:77
    ~audio_ssrc:78;
  let recv_ip = Addr.ip_of_string "10.0.2.1" in
  List.iteri
    (fun i (pid, port) ->
      Scallop.Dataplane.register_leg dp ~receiver:pid ~video_ssrc:77 ~audio_ssrc:78
        ~dst:(Addr.v recv_ip (6000 + i)) ~src_port:port ~uplink_port:41_000
        ~rewrite:None)
    (List.tl participants);
  (engine, network, dp)

(* Steady-state GC pressure of one run's hot loop, from [Gc.quick_stat]
   deltas around the timed loop (warm-up excluded). *)
type gc_sample = {
  gs_alloc_bytes_per_pkt : float;  (** total allocation / packets *)
  gs_minor_gcs : int;  (** minor collections during the loop *)
  gs_promoted_words : float;
}

let fanout_run ~mode ~receivers ~packets =
  let engine, network, dp = fanout_world ~mode ~receivers in
  let module Addr = Scallop_util.Addr in
  let sfu = Addr.v (Addr.ip_of_string "10.0.0.1") 41_000 in
  let src = Addr.v (Addr.ip_of_string "10.0.1.1") 5000 in
  let payload = Bytes.make 1200 'v' in
  let raw seq frame =
    let dd =
      {
        Av1.Dd.start_of_frame = true;
        end_of_frame = true;
        template_id = (frame mod 4) + 1;
        frame_number = frame land 0xFFFF;
        structure = None;
      }
    in
    Rtp.Packet.serialize
      (Rtp.Packet.make
         ~extensions:[ { Rtp.Packet.id = Av1.Dd.extension_id; data = Av1.Dd.serialize dd } ]
         ~payload_type:96 ~sequence:(seq land 0xFFFF) ~timestamp:(frame * 3000) ~ssrc:77
         payload)
  in
  (* pre-serialize the ingress stream so packet construction is not timed *)
  let stream = Array.init packets (fun i -> raw i (i / 2)) in
  let one buf =
    Netsim.Network.send network (Netsim.Dgram.v ~src ~dst:sfu buf);
    Netsim.Engine.run engine
  in
  (* Warm-up before measuring: fills the PRE fan-out cache, the replica
     buffer pool and the egress batch free list, so the GC numbers below
     are the steady state the alloc budget pins, not first-touch growth. *)
  let warmup = min 200 packets in
  let warm = Array.init warmup (fun i -> raw (60_000 + i) (30_000 + i / 2)) in
  Array.iter one warm;
  (* per-packet wall latency (ingress to full fan-out drained) lands in a
     log-bucketed histogram; chaining one clock read per packet keeps the
     instrumentation cost far below the ~10 µs a packet takes *)
  let hist = Scallop_util.Stats.Histogram.create () in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let t_prev = ref t0 in
  Array.iter
    (fun buf ->
      one buf;
      let t = Unix.gettimeofday () in
      Scallop_util.Stats.Histogram.observe hist ((t -. !t_prev) *. 1e9);
      t_prev := t)
    stream;
  let gc1 = Gc.quick_stat () in
  let elapsed = !t_prev -. t0 in
  let pps = float_of_int packets /. elapsed in
  (* total words allocated = minor + major - promoted (promoted words are
     counted in both the minor and major tallies) *)
  let words =
    gc1.Gc.minor_words -. gc0.Gc.minor_words
    +. (gc1.Gc.major_words -. gc0.Gc.major_words)
    -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)
  in
  let gc =
    {
      gs_alloc_bytes_per_pkt =
        words *. float_of_int (Sys.word_size / 8) /. float_of_int packets;
      gs_minor_gcs = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
      gs_promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
    }
  in
  (pps, hist, Scallop.Dataplane.fastpath_stats dp, gc)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fanout_bench ~quick ~micro ~gc_stats =
  print_endline "\n== Fan-out throughput: zero-copy fast path vs record slow path ==";
  let receivers = 30 in
  let packets = if quick then 2_000 else 20_000 in
  (* peak throughput over three runs per mode: one warm-up effect or a
     scheduler hiccup must not decide the gate *)
  let best mode =
    let runs = List.init 3 (fun _ -> fanout_run ~mode ~receivers ~packets) in
    List.fold_left
      (fun ((best_pps, _, _, _) as acc) ((pps, _, _, _) as r) ->
        if pps > best_pps then r else acc)
      (List.hd runs) (List.tl runs)
  in
  let p50 h = Scallop_util.Stats.Histogram.percentile h 50.0 in
  let p99 h = Scallop_util.Stats.Histogram.percentile h 99.0 in
  let slow_pps, slow_hist, _, slow_gc = best Scallop.Dataplane.Slow in
  let fast_pps, fast_hist, fast_stats, fast_gc = best Scallop.Dataplane.Fast in
  let paranoid_ok =
    (* differential gate: both paths over the same stream, byte-compared *)
    match fanout_run ~mode:Scallop.Dataplane.Paranoid ~receivers ~packets:(min packets 2_000) with
    | _, _, s, _ -> s.Scallop.Dataplane.fp_paranoid_mismatches = 0
    | exception Scallop.Dataplane.Differential_mismatch msg ->
        Printf.printf "DIFFERENTIAL MISMATCH: %s\n" msg;
        false
  in
  let speedup = fast_pps /. slow_pps in
  let alloc_budget = Scallop.Dataplane.alloc_budget_bytes_per_packet in
  (* GC-pressure gate: the fast path's steady-state allocation per packet
     must stay within the pinned budget, and pooling must not have cost
     the tail — fast p99 strictly under slow p99. *)
  let gate_alloc_ok = fast_gc.gs_alloc_bytes_per_pkt <= float_of_int alloc_budget in
  let gate_p99_ok = p99 fast_hist < p99 slow_hist in
  let gate_speedup_ok = speedup >= 4.5 in
  Printf.printf "receivers: %d  packets: %d\n" receivers packets;
  Printf.printf
    "slow path: %10.0f pps   (per-packet p50 %.0f ns, p99 %.0f ns; %.0f B alloc/pkt, %d minor GCs)\n"
    slow_pps (p50 slow_hist) (p99 slow_hist) slow_gc.gs_alloc_bytes_per_pkt
    slow_gc.gs_minor_gcs;
  Printf.printf
    "fast path: %10.0f pps   (per-packet p50 %.0f ns, p99 %.0f ns; %.0f B alloc/pkt, %d minor GCs; cache hits %d / misses %d)\n"
    fast_pps (p50 fast_hist) (p99 fast_hist) fast_gc.gs_alloc_bytes_per_pkt
    fast_gc.gs_minor_gcs
    fast_stats.Scallop.Dataplane.fp_cache_hits fast_stats.Scallop.Dataplane.fp_cache_misses;
  Printf.printf "speedup:   %10.2fx\n" speedup;
  Printf.printf "pool:      %d recycled / %d fresh checkouts, high water %d live\n"
    fast_stats.Scallop.Dataplane.fp_pool_recycled
    fast_stats.Scallop.Dataplane.fp_pool_fresh
    fast_stats.Scallop.Dataplane.fp_pool_high_water;
  Printf.printf "paranoid differential check: %s\n" (if paranoid_ok then "ok" else "FAILED");
  Printf.printf "alloc budget gate (<= %d B/pkt): %s\n" alloc_budget
    (if gate_alloc_ok then "ok" else "FAILED");
  Printf.printf "p99 ordering gate (fast < slow): %s\n"
    (if gate_p99_ok then "ok" else "FAILED");
  Printf.printf "speedup gate (>= 4.5x): %s\n" (if gate_speedup_ok then "ok" else "FAILED");
  let oc = open_out "BENCH_3.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"fanout_pps\",\n  \"receivers\": %d,\n  \"packets\": %d,\n  \
     \"slow_pps\": %.1f,\n  \"fast_pps\": %.1f,\n  \"speedup\": %.3f,\n  \
     \"slow_p50_ns\": %.1f,\n  \"slow_p99_ns\": %.1f,\n  \
     \"fast_p50_ns\": %.1f,\n  \"fast_p99_ns\": %.1f,\n  \
     \"slow_alloc_bytes_per_pkt\": %.1f,\n  \"fast_alloc_bytes_per_pkt\": %.1f,\n  \
     \"slow_minor_gcs\": %d,\n  \"fast_minor_gcs\": %d,\n  \
     \"alloc_budget_bytes_per_pkt\": %d,\n  \
     \"pool_recycled\": %d,\n  \"pool_fresh\": %d,\n  \"pool_high_water\": %d,\n  \
     \"paranoid_ok\": %b,\n  \"gate_alloc_ok\": %b,\n  \"gate_p99_ok\": %b,\n  \
     \"gate_speedup_ok\": %b,\n  \
     \"cache_hits\": %d,\n  \"cache_misses\": %d,\n  \
     \"microbench_ns_per_op\": {%s}\n}\n"
    receivers packets slow_pps fast_pps speedup
    (p50 slow_hist) (p99 slow_hist) (p50 fast_hist) (p99 fast_hist)
    slow_gc.gs_alloc_bytes_per_pkt fast_gc.gs_alloc_bytes_per_pkt
    slow_gc.gs_minor_gcs fast_gc.gs_minor_gcs alloc_budget
    fast_stats.Scallop.Dataplane.fp_pool_recycled
    fast_stats.Scallop.Dataplane.fp_pool_fresh
    fast_stats.Scallop.Dataplane.fp_pool_high_water
    paranoid_ok gate_alloc_ok gate_p99_ok gate_speedup_ok
    fast_stats.Scallop.Dataplane.fp_cache_hits
    fast_stats.Scallop.Dataplane.fp_cache_misses
    (String.concat ", "
       (List.map (fun (n, ns) -> Printf.sprintf "\"%s\": %.1f" (json_escape n) ns) micro));
  close_out oc;
  print_endline "wrote BENCH_3.json";
  if gc_stats then begin
    (* full process-level GC picture, for the CI artifact *)
    let s = Gc.stat () in
    let oc = open_out "BENCH_gc.json" in
    Printf.fprintf oc
      "{\n  \"benchmark\": \"fanout_gc\",\n  \
       \"slow\": { \"alloc_bytes_per_pkt\": %.1f, \"minor_gcs\": %d, \"promoted_words\": %.0f },\n  \
       \"fast\": { \"alloc_bytes_per_pkt\": %.1f, \"minor_gcs\": %d, \"promoted_words\": %.0f },\n  \
       \"alloc_budget_bytes_per_pkt\": %d,\n  \
       \"process\": { \"minor_collections\": %d, \"major_collections\": %d, \
       \"compactions\": %d, \"heap_words\": %d, \"top_heap_words\": %d }\n}\n"
      slow_gc.gs_alloc_bytes_per_pkt slow_gc.gs_minor_gcs slow_gc.gs_promoted_words
      fast_gc.gs_alloc_bytes_per_pkt fast_gc.gs_minor_gcs fast_gc.gs_promoted_words
      alloc_budget s.Gc.minor_collections s.Gc.major_collections s.Gc.compactions
      s.Gc.heap_words s.Gc.top_heap_words;
    close_out oc;
    print_endline "wrote BENCH_gc.json"
  end;
  if not (paranoid_ok && gate_alloc_ok && gate_p99_ok && gate_speedup_ok) then exit 1

(* --- control-plane churn: the batching gate ---------------------------------- *)

(* Replays the campus-churn schedule per-op and batched (virtual time, so
   the numbers are deterministic for a fixed seed) and gates batched
   throughput at >= 5x per-op at 30% control loss. Results land in
   BENCH_ctrl_churn.json. *)
let ctrl_churn_bench ~quick =
  print_endline "\n== Control-plane churn: batched vs per-op RPC throughput ==";
  let r = Experiments.Ctrl_churn.compute ~quick () in
  Experiments.Ctrl_churn.run ~quick ();
  let side name (s : Experiments.Ctrl_churn.side) =
    Printf.sprintf
      "\"%s\": {\n    \"ops\": %d,\n    \"virtual_s\": %.3f,\n    \
       \"ops_per_sec\": %.4f,\n    \"mean_ms\": %.1f,\n    \"p50_ms\": %.1f,\n    \
       \"p99_ms\": %.1f,\n    \"wire_requests\": %d,\n    \"retries\": %d,\n    \
       \"failures\": %d,\n    \"batches\": %d,\n    \"batched_ops\": %d\n  }"
      name s.ops s.elapsed_s s.ops_per_sec s.mean_ms s.p50_ms s.p99_ms
      s.wire_requests s.retries s.failures s.batches s.batched_ops
  in
  let oc = open_out "BENCH_ctrl_churn.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"ctrl_churn\",\n  \"events\": %d,\n  \"loss\": %.2f,\n  \
     \"rtt_ms\": %d,\n  %s,\n  %s,\n  \"speedup\": %.3f,\n  \"gate\": 5.0,\n  \
     \"gate_ok\": %b\n}\n"
    r.events r.loss r.rtt_ms (side "per_op" r.per_op) (side "batched" r.batched)
    r.speedup (r.speedup >= 5.0);
  close_out oc;
  print_endline "wrote BENCH_ctrl_churn.json";
  if r.speedup < 5.0 then begin
    Printf.printf "CTRL-CHURN GATE FAILED: %.2fx < 5x\n" r.speedup;
    exit 1
  end

(* --csv <dir>: every printed table is also written as <dir>/<title>.csv *)
let install_csv_sink dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sanitize title =
    String.map (fun c -> if ('a' <= Char.lowercase_ascii c && Char.lowercase_ascii c <= 'z') || ('0' <= c && c <= '9') then c else '_') title
  in
  Scallop_util.Table.set_csv_sink
    (Some
       (fun ~title ~csv ->
         let path = Filename.concat dir (sanitize title ^ ".csv") in
         let oc = open_out path in
         output_string oc csv;
         close_out oc))

let rec find_csv_dir = function
  | "--csv" :: dir :: _ -> Some dir
  | _ :: rest -> find_csv_dir rest
  | [] -> None

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_micro = List.mem "--no-micro" args in
  let no_experiments = List.mem "--no-experiments" args in
  let ctrl_churn_only = List.mem "--ctrl-churn" args in
  let gc_stats =
    List.mem "--gc-stats" args || Sys.getenv_opt "FANOUT_GC" = Some "1"
  in
  Option.iter install_csv_sink (find_csv_dir args);
  if ctrl_churn_only then begin
    (* the batching gate alone (used by CI): no figures, no microbench *)
    ctrl_churn_bench ~quick;
    exit 0
  end;
  let ids =
    let rec strip = function
      | "--csv" :: _ :: rest -> strip rest
      | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  print_endline "=== Scallop paper reproduction: all tables and figures ===";
  Printf.printf "mode: %s\n\n" (if quick then "quick" else "full");
  (if not no_experiments then
     match ids with
     | [] -> Experiments.Registry.run_all ~quick ()
     | ids ->
         List.iter
           (fun id ->
             match Experiments.Registry.find id with
             | Some e -> e.run ~quick ()
             | None -> Printf.printf "unknown experiment id %S\n" id)
           ids);
  let micro = if no_micro then [] else microbench () in
  fanout_bench ~quick ~micro ~gc_stats
