(* Analysis-layer tests: clean scenarios produce no findings, every
   invariant class is detected when its state is deliberately corrupted
   (the mutation harness), teardown paths leak nothing, and random churn
   under control-plane faults stays verifiably consistent. *)

module An = Scallop_analysis
module C = Scallop.Controller
module A = Scallop.Switch_agent
module D = Scallop.Dataplane
module T = Scallop.Trees
module P = Tofino.Pre
module R = Tofino.Resources
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link
module Rng = Scallop_util.Rng
module Addr = Scallop_util.Addr

let fast = { Link.default with rate_bps = infinity; propagation_ns = 100_000 }

type stack = {
  engine : Engine.t;
  rng : Rng.t;
  network : Network.t;
  controller : C.t;
}

let make ?(switches = 1) ?control ?(seed = 11) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  let sw i =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.0.%d" (i + 1)) in
    Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
    let dp = D.create engine network ~ip () in
    let agent = A.create engine dp () in
    (agent, dp)
  in
  let agents = List.init switches sw in
  let controller = C.create engine network (Rng.split rng) ~agents ?control () in
  { engine; rng; network; controller }

let client st idx =
  let ip = Addr.ip_of_string (Printf.sprintf "10.0.3.%d" (idx + 1)) in
  Network.add_host st.network ~ip ();
  Webrtc.Client.create st.engine st.network (Rng.split st.rng)
    (Webrtc.Client.default_config ~ip)

let run_for st seconds =
  Engine.run st.engine ~until:(Engine.now st.engine + Engine.sec seconds)

let errors_of st = An.errors (An.verify st.controller)

let check_baseline st =
  match errors_of st with
  | [] -> ()
  | errs -> Alcotest.failf "baseline scenario is dirty:\n%s" (An.report errs)

let expect kind findings =
  if not (List.exists (fun (f : An.finding) -> f.An.kind = kind) findings) then
    Alcotest.failf "expected a %s finding, got:\n%s" (An.kind_name kind)
      (if findings = [] then "(none)" else An.report findings)

(* One meeting on switch 0: 3 senders, 1 receiver, media flowing. *)
let scenario ?(participants = 4) ?(senders = 3) st =
  let mid = C.create_meeting st.controller in
  let pids =
    List.init participants (fun i ->
        C.join st.controller mid (client st i) ~send_media:(i < senders))
  in
  run_for st 1.0;
  (mid, pids)

let sw0 st = C.switch_agent st.controller 0

(* --- clean runs flag nothing ------------------------------------------------- *)

let clean_single_switch () =
  let st = make () in
  let _ = scenario st in
  match An.verify st.controller with
  | [] -> ()
  | fs -> Alcotest.failf "expected no findings:\n%s" (An.report fs)

let clean_two_party () =
  let st = make () in
  let _ = scenario ~participants:2 ~senders:2 st in
  check_baseline st;
  An.assert_clean st.controller

let clean_simulcast () =
  let st = make () in
  let mid = C.create_meeting st.controller in
  let _s = C.join ~simulcast:true st.controller mid (client st 0) ~send_media:true in
  let _r = C.join st.controller mid (client st 1) ~send_media:false in
  run_for st 1.0;
  An.assert_clean st.controller

(* --- mutation harness: every violation class is detected --------------------- *)

let mutation name expected mutate =
  Alcotest.test_case name `Quick (fun () ->
      let st = make () in
      let mid, pids = scenario st in
      check_baseline st;
      mutate st mid pids;
      expect expected (errors_of st))

(* A tree with at least two member nodes, from the live PRE. *)
let some_tree dp =
  let best = ref None in
  P.iter_trees (D.pre dp) (fun ~mgid ~nodes ->
      if !best = None && List.length nodes >= 2 then best := Some (mgid, nodes));
  match !best with
  | Some x -> x
  | None -> Alcotest.fail "scenario built no tree with two nodes"

let sender_port st pid =
  match C.participant_sender_info st.controller pid with
  | Some info -> info.C.egress_port
  | None -> Alcotest.fail "expected a sending participant"

let mutations =
  [
    mutation "duplicate RID" An.Duplicate_rid (fun st _ _ ->
        let _, dp = sw0 st in
        match some_tree dp with
        | _, a :: b :: _ -> P.Unsafe.set_node_rid (D.pre dp) b (P.node_rid (D.pre dp) a)
        | _ -> assert false);
    mutation "orphan L1 node" An.Orphan_l1_node (fun st _ _ ->
        let _, dp = sw0 st in
        ignore (P.create_l1_node (D.pre dp) ~rid:4242 ~ports:[ 4242 ] ()));
    mutation "dangling tree record" An.Dangling_tree_node (fun st _ _ ->
        let _, dp = sw0 st in
        let mgid, _ = some_tree dp in
        P.Unsafe.drop_tree_record (D.pre dp) mgid);
    mutation "self-prune mismatch" An.Self_prune_mismatch (fun st _ pids ->
        let _, dp = sw0 st in
        let port = sender_port st (List.hd pids) in
        (* repoint the sender's exclusion set at a port it does not use *)
        P.set_l2_xid_ports (D.pre dp) ~xid:port ~ports:[ port + 1000 ]);
    mutation "stray L2-XID" An.Xid_ports_invalid (fun st _ _ ->
        let _, dp = sw0 st in
        P.set_l2_xid_ports (D.pre dp) ~xid:424_242 ~ports:[ 9999 ]);
    mutation "member pruned out of its tree" An.Unreachable_leg (fun st _ _ ->
        let _, dp = sw0 st in
        let mgid, nodes = some_tree dp in
        P.remove_node_from_tree (D.pre dp) mgid (List.hd nodes));
    mutation "egress leg for a non-member" An.Orphan_replica (fun st _ _ ->
        let _, dp = sw0 st in
        let u = List.hd (D.uplinks_view dp) in
        D.register_leg dp ~receiver:555 ~video_ssrc:0x9999 ~audio_ssrc:0x999A
          ~dst:(Addr.v (Addr.ip_of_string "10.0.3.250") 5000)
          ~src_port:45_555 ~uplink_port:u.D.uv_port ~rewrite:None);
    mutation "dropped feedback rule" An.Dangling_feedback (fun st _ _ ->
        let _, dp = sw0 st in
        let leg = List.hd (D.legs_view dp) in
        D.Unsafe.drop_feedback_entry dp ~src_port:leg.D.lv_src_port);
    mutation "freed stream index still in use" An.Stream_index_corrupt (fun st _ _ ->
        let _, dp = sw0 st in
        match
          List.find_opt (fun (l : D.leg_view) -> l.D.lv_stream_index >= 0) (D.legs_view dp)
        with
        | Some l -> D.Unsafe.push_free_stream_index dp l.D.lv_stream_index
        | None -> Alcotest.fail "scenario built no rate-adapted leg");
    mutation "agent registration behind the controller's back" An.Intent_drift
      (fun st mid _ ->
        let agent, _ = sw0 st in
        A.register_participant agent
          ~meeting:(C.agent_meeting_id st.controller mid)
          ~participant:777 ~egress_port:777 ~sends:false);
    mutation "data-plane uplink dropped behind the agent's back" An.Shadow_drift
      (fun st _ _ ->
        let _, dp = sw0 st in
        let u = List.hd (D.uplinks_view dp) in
        D.unregister_uplink dp ~port:u.D.uv_port);
    mutation "data-plane leg dropped behind the agent's back" An.Shadow_drift
      (fun st _ _ ->
        let _, dp = sw0 st in
        let leg = List.hd (D.legs_view dp) in
        D.unregister_leg dp ~receiver:leg.D.lv_receiver ~video_ssrc:leg.D.lv_video_ssrc);
    mutation "poisoned PRE fan-out cache entry" An.Stale_pre_cache (fun st _ _ ->
        let _, dp = sw0 st in
        let mgid, _ = some_tree dp in
        (* an entry the flush-on-mutation discipline could never produce *)
        P.Unsafe.poison_cache (D.pre dp) ~mgid ~l1_xid:0 ~rid:424_242 ~l2_xid:0
          ~replicas:[ { P.rid = 424_242; port = 4242 } ]);
  ]

(* Pure-data invariants are exercised by tampering with the snapshot
   records themselves (the live tables enforce capacity, so an overflowing
   state can only be expressed, not reached). *)

let table_overflow_flagged () =
  let st = make () in
  let _ = scenario st in
  let snap = An.snapshot st.controller in
  let sw = List.hd snap.An.snap_switches in
  let sw' =
    {
      sw with
      An.sw_tables = [ { D.tbl_name = "uplink"; tbl_size = 5_000; tbl_capacity = 4_096 } ];
    }
  in
  expect An.Table_overflow
    (An.errors (An.check { snap with An.snap_switches = [ sw' ] }))

let near_capacity_warns () =
  let st = make () in
  let _ = scenario st in
  let snap = An.snapshot st.controller in
  let sw = List.hd snap.An.snap_switches in
  let sw' =
    {
      sw with
      An.sw_tables = [ { D.tbl_name = "uplink"; tbl_size = 4_000; tbl_capacity = 4_096 } ];
    }
  in
  let findings = An.check { snap with An.snap_switches = [ sw' ] } in
  expect An.Table_overflow findings;
  Alcotest.(check int) "warning, not error" 0 (List.length (An.errors findings))

let resource_budget_flagged () =
  let st = make () in
  let _ = scenario st in
  let snap = An.snapshot st.controller in
  expect An.Resource_budget
    (An.errors (An.check ~totals:{ R.tofino2 with R.sram_blocks = 1 } snap))

(* --- teardown leaks ----------------------------------------------------------- *)

(* Join, share, leave — repeatedly — and require the final snapshot to be
   literally empty: no L1 nodes, no exclusion sets, no uplinks, no legs,
   no feedback rules. Before the teardown fixes, L2-XIDs and relay
   receivers survived every round. *)
let churn_leaves_nothing () =
  let st = make ~switches:2 () in
  let mid = C.create_meeting st.controller in
  for round = 0 to 2 do
    let base = round * 6 in
    let pids =
      List.init 6 (fun i ->
          C.join ~home:(i mod 2) st.controller mid
            (client st (base + i))
            ~send_media:(i < 4))
    in
    run_for st 0.5;
    C.start_screen_share st.controller (List.hd pids);
    run_for st 0.5;
    An.assert_clean ~what:(Printf.sprintf "round %d" round) st.controller;
    C.stop_screen_share st.controller (List.hd pids);
    List.iter (C.leave st.controller) pids;
    run_for st 0.2;
    An.assert_clean ~what:(Printf.sprintf "round %d teardown" round) st.controller
  done;
  for idx = 0 to 1 do
    let _, dp = C.switch_agent st.controller idx in
    Alcotest.(check int)
      (Printf.sprintf "sw%d: no leaked L1 nodes" idx)
      0
      (P.l1_nodes_used (D.pre dp));
    Alcotest.(check int)
      (Printf.sprintf "sw%d: no uplinks" idx)
      0
      (List.length (D.uplinks_view dp));
    Alcotest.(check int)
      (Printf.sprintf "sw%d: no legs" idx)
      0
      (List.length (D.legs_view dp));
    Alcotest.(check int)
      (Printf.sprintf "sw%d: no feedback rules" idx)
      0
      (List.length (D.feedback_view dp));
    Alcotest.(check int)
      (Printf.sprintf "sw%d: no L2-XIDs" idx)
      0
      (List.length (T.l2_xid_refs (D.trees dp)));
    let xids = ref 0 in
    P.iter_l2_xids (D.pre dp) (fun ~xid:_ ~ports:_ -> incr xids);
    Alcotest.(check int) (Printf.sprintf "sw%d: PRE exclusion sets released" idx) 0 !xids
  done

(* Participant-index recycling inside a tree slot: before the free-list
   fix, 1024 cumulative (re)joins exhausted the slot's RID range. *)
let participant_index_recycled () =
  let pre = P.create () in
  let t = T.create pre in
  let h = T.register_meeting t T.Nra ~participants:[ (0, 100) ] ~senders:[ 0 ] in
  for i = 1 to 3_000 do
    T.add_participant t h (100_000 + i, 200 + (i mod 50)) ~sends:false;
    T.remove_participant t h (100_000 + i)
  done;
  Alcotest.(check int) "only the stable member's node remains" 1 (P.l1_nodes_used pre);
  Alcotest.(check int) "one exclusion set" 1 (List.length (T.l2_xid_refs t))

(* Under RA-SR a sender's tag — the RID range and L1-XID its nodes carry —
   is its position in the pair. Removing the pair's first sender used to
   compact the list, shifting the survivor to position 1 while its nodes
   stayed tagged 2: its own route then excluded every one of its branches
   and all receivers went dark. (Found by the churn-under-faults test.) *)
let ra_sr_sender_removal_keeps_routing () =
  let pre = P.create () in
  let t = T.create pre in
  let h =
    T.register_meeting t T.Ra_sr
      ~participants:[ (1, 101); (2, 102); (3, 103) ]
      ~senders:[ 1; 2 ]
  in
  T.remove_participant t h 1;
  match T.route_media t h ~sender:2 ~layer:Av1.Dd.T0 with
  | T.Replicate { mgid; l1_xid; rid; l2_xid } ->
      let receivers =
        P.replicate pre ~mgid ~l1_xid ~rid ~l2_xid
        |> List.filter_map (fun (r : P.replica) ->
               T.receiver_of_replica t h ~mgid ~rid:r.P.rid)
        |> List.sort compare
      in
      Alcotest.(check (list int)) "survivor still reaches receiver" [ 3 ] receivers
  | _ -> Alcotest.fail "expected a replicate route"

(* --- random churn under control-plane faults --------------------------------- *)

let random_churn_under_faults () =
  let control = Scallop.Rpc_transport.degraded ~loss:0.2 ~rtt_ns:(Engine.ms 2) () in
  let st = make ~switches:2 ~control ~seed:5 () in
  let rng = Rng.create 77 in
  let mid = C.create_meeting st.controller in
  let next_idx = ref 0 in
  let live = ref [] in
  let sharing = ref None in
  for step = 0 to 29 do
    let r = Rng.int rng 100 in
    (if r < 45 || !live = [] then begin
       let idx = !next_idx in
       incr next_idx;
       let pid =
         C.join ~home:(idx mod 2) st.controller mid (client st idx)
           ~send_media:(idx mod 3 <> 2)
       in
       live := !live @ [ pid ]
     end
     else if r < 70 then begin
       match !live with
       | pid :: rest ->
           if !sharing = Some pid then sharing := None;
           C.leave st.controller pid;
           live := rest
       | [] -> ()
     end
     else if r < 85 then begin
       match (!sharing, !live) with
       | None, pid :: _ ->
           C.start_screen_share st.controller pid;
           sharing := Some pid
       | Some pid, _ ->
           C.stop_screen_share st.controller pid;
           sharing := None
       | _ -> ()
     end
     else
       match !live with
       | a :: b :: _ -> (
           try C.set_pair_target st.controller ~sender:a ~receiver:b Av1.Dd.DT_7_5fps
           with Invalid_argument _ -> ())
       | _ -> ());
    run_for st 0.3;
    match errors_of st with
    | [] -> ()
    | errs -> Alcotest.failf "after step %d:\n%s" step (An.report errs)
  done;
  List.iter (C.leave st.controller) !live;
  run_for st 0.2;
  An.assert_clean ~what:"after final teardown" st.controller

(* --- suite -------------------------------------------------------------------- *)

let () =
  Alcotest.run "analysis"
    [
      ( "clean",
        [
          Alcotest.test_case "single switch meeting" `Quick clean_single_switch;
          Alcotest.test_case "two-party meeting" `Quick clean_two_party;
          Alcotest.test_case "simulcast meeting" `Quick clean_simulcast;
        ] );
      ("mutations", mutations);
      ( "snapshot tampering",
        [
          Alcotest.test_case "table overflow" `Quick table_overflow_flagged;
          Alcotest.test_case "near capacity warns" `Quick near_capacity_warns;
          Alcotest.test_case "shrunken chip budget" `Quick resource_budget_flagged;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "churn leaves nothing" `Quick churn_leaves_nothing;
          Alcotest.test_case "participant index recycled" `Quick participant_index_recycled;
          Alcotest.test_case "RA-SR sender removal keeps routing" `Quick
            ra_sr_sender_removal_keeps_routing;
        ] );
      ( "faults",
        [
          Alcotest.test_case "random churn under RPC loss" `Quick random_churn_under_faults;
        ] );
    ]
