(* Unit and property tests for the scallop_util library. *)

module Rng = Scallop_util.Rng
module Ewma = Scallop_util.Ewma
module Stats = Scallop_util.Stats
module Timeseries = Scallop_util.Timeseries
module Table = Scallop_util.Table
module Addr = Scallop_util.Addr

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual = Alcotest.(check (float tolerance)) msg expected actual

(* --- Rng ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs" false (Rng.int64 parent = Rng.int64 child)

let rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of bounds: %d" x
  done;
  (* large bounds that would overflow naive conversions *)
  for _ = 1 to 1_000 do
    let x = Rng.int rng 2_500_000_000 in
    if x < 0 then Alcotest.failf "negative from large bound: %d" x
  done

let rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 1.0 in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of bounds: %f" x
  done

let rng_bernoulli_rate () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close "bernoulli(0.3)" 0.01 0.3 (float_of_int !hits /. 100_000.0)

let rng_exponential_mean () =
  let rng = Rng.create 6 in
  let sum = ref 0.0 in
  for _ = 1 to 100_000 do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  check_close "exp mean" 0.15 5.0 (!sum /. 100_000.0)

let rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let stats = Stats.Online.create () in
  for _ = 1 to 100_000 do
    Stats.Online.observe stats (Rng.gaussian rng ~mu:3.0 ~sigma:2.0)
  done;
  check_close "gaussian mean" 0.05 3.0 (Stats.Online.mean stats);
  check_close "gaussian stddev" 0.05 2.0 (Stats.Online.stddev stats)

let rng_lognormal_median () =
  let rng = Rng.create 9 in
  let samples = Stats.Samples.create () in
  for _ = 1 to 50_000 do
    Stats.Samples.observe samples (Rng.lognormal rng ~mu:(log 10.0) ~sigma:1.0)
  done;
  check_close "lognormal median" 0.5 10.0 (Stats.Samples.median samples)

let rng_shuffle_permutes () =
  let rng = Rng.create 10 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

(* --- Ewma ----------------------------------------------------------------- *)

let ewma_first_value () =
  let e = Ewma.create ~alpha:0.5 in
  Ewma.observe e 10.0;
  check_float "first value" 10.0 (Ewma.value e)

let ewma_smoothing () =
  let e = Ewma.create ~alpha:0.5 in
  Ewma.observe e 10.0;
  Ewma.observe e 20.0;
  check_float "second" 15.0 (Ewma.value e)

let ewma_converges () =
  let e = Ewma.create ~alpha:0.3 in
  for _ = 1 to 100 do
    Ewma.observe e 42.0
  done;
  check_close "converged" 1e-6 42.0 (Ewma.value e)

let ewma_empty () =
  let e = Ewma.create ~alpha:0.3 in
  Alcotest.(check (option (float 0.0))) "no value" None (Ewma.value_opt e);
  Alcotest.check_raises "value raises" (Invalid_argument "Ewma.value: no observations")
    (fun () -> ignore (Ewma.value e))

let ewma_bad_alpha () =
  Alcotest.check_raises "alpha > 1" (Invalid_argument "Ewma.create: alpha must be in (0, 1]")
    (fun () -> ignore (Ewma.create ~alpha:1.5))

(* --- Stats ---------------------------------------------------------------- *)

let online_mean_variance () =
  let s = Stats.Online.create () in
  List.iter (Stats.Online.observe s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.Online.mean s);
  check_close "variance" 1e-9 4.571428571428571 (Stats.Online.variance s);
  check_float "min" 2.0 (Stats.Online.min s);
  check_float "max" 9.0 (Stats.Online.max s)

let samples_percentiles () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.observe s (float_of_int i)
  done;
  check_float "median" 50.5 (Stats.Samples.median s);
  check_float "p0" 1.0 (Stats.Samples.percentile s 0.0);
  check_float "p100" 100.0 (Stats.Samples.percentile s 100.0);
  check_close "p99" 0.01 99.01 (Stats.Samples.percentile s 99.0)

let samples_interleaved_sorting () =
  let s = Stats.Samples.create () in
  Stats.Samples.observe s 3.0;
  Stats.Samples.observe s 1.0;
  ignore (Stats.Samples.median s);
  Stats.Samples.observe s 2.0;
  check_float "median after more data" 2.0 (Stats.Samples.median s)

let samples_empty_raises () =
  let s = Stats.Samples.create () in
  Alcotest.check_raises "empty percentile" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.Samples.median s))

let samples_grows () =
  let s = Stats.Samples.create () in
  for i = 1 to 10_000 do
    Stats.Samples.observe s (float_of_int i)
  done;
  Alcotest.(check int) "count" 10_000 (Stats.Samples.count s)

let samples_nan_raises () =
  let s = Stats.Samples.create () in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.Samples.observe: NaN") (fun () ->
      Stats.Samples.observe s Float.nan)

(* Regression: sorting with polymorphic compare handled negative floats
   and -0.0/0.0 by structural comparison of their boxed representation;
   Float.compare must give a total numeric order, so percentiles over
   sign-mixed data stay correct. *)
let samples_negative_sort () =
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.observe s) [ 5.0; -3.0; 0.0; -0.0; 4.0; -7.0; 1.0 ];
  check_float "min" (-7.0) (Stats.Samples.percentile s 0.0);
  check_float "max" 5.0 (Stats.Samples.percentile s 100.0);
  check_float "median" 0.0 (Stats.Samples.median s)

(* --- Stats.Histogram -------------------------------------------------------- *)

let hist_basic () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.observe h) [ 150.0; 1_500.0; 1_500.0; 2e10 ];
  Alcotest.(check int) "count" 4 (Stats.Histogram.count h);
  check_float "sum" (150.0 +. 1_500.0 +. 1_500.0 +. 2e10) (Stats.Histogram.sum h);
  check_float "min" 150.0 (Stats.Histogram.min h);
  check_float "max" 2e10 (Stats.Histogram.max h)

let hist_percentile_interpolates () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1_000 do
    Stats.Histogram.observe h (float_of_int i *. 1_000.0)
  done;
  (* 1 µs .. 1 ms uniform: the log buckets are coarse, but interpolated
     percentiles must stay within a bucket width of the true value *)
  let p50 = Stats.Histogram.percentile h 50.0 in
  let p99 = Stats.Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p50 in range" true (p50 > 250_000.0 && p50 < 800_000.0);
  Alcotest.(check bool) "p99 in range" true (p99 > 700_000.0 && p99 <= 1_000_000.0);
  Alcotest.(check bool) "ordered" true (p50 <= p99)

let hist_buckets_cumulative () =
  let h = Stats.Histogram.create ~bounds:[| 10.0; 100.0; 1000.0 |] () in
  List.iter (Stats.Histogram.observe h) [ 5.0; 50.0; 500.0; 5000.0 ];
  let acc = ref [] in
  Stats.Histogram.iter_buckets h (fun ~le ~count -> acc := (le, count) :: !acc);
  match List.rev !acc with
  | [ (le0, c0); (le1, c1); (le2, c2); (le3, c3) ] ->
      check_float "le0" 10.0 le0;
      Alcotest.(check int) "cum count 0" 1 c0;
      check_float "le1" 100.0 le1;
      Alcotest.(check int) "cum count 1" 2 c1;
      check_float "le2" 1000.0 le2;
      Alcotest.(check int) "cum count 2" 3 c2;
      Alcotest.(check bool) "overflow le is inf" true (le3 = Float.infinity);
      Alcotest.(check int) "cum count 3" 4 c3
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l)

let hist_nan_raises () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.Histogram.observe: NaN") (fun () ->
      Stats.Histogram.observe h Float.nan)

let hist_bad_bounds () =
  Alcotest.check_raises "non-ascending bounds"
    (Invalid_argument "Stats.Histogram.create: bounds not strictly ascending")
    (fun () -> ignore (Stats.Histogram.create ~bounds:[| 1.0; 1.0 |] ()))

let hist_empty_percentile_raises () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile h 50.0))

let hist_single_sample () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.observe h 42.0;
  (* one sample: every percentile clamps to the observed min = max *)
  List.iter
    (fun p -> check_float (Printf.sprintf "p%g" p) 42.0 (Stats.Histogram.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let hist_all_equal () =
  let h = Stats.Histogram.create () in
  for _ = 1 to 100 do
    Stats.Histogram.observe h 7.0
  done;
  Alcotest.(check int) "count" 100 (Stats.Histogram.count h);
  (* identical samples: interpolation must not smear outside [min, max] *)
  List.iter
    (fun p -> check_float (Printf.sprintf "p%g" p) 7.0 (Stats.Histogram.percentile h p))
    [ 1.0; 50.0; 99.0 ]

(* --- Timeseries ------------------------------------------------------------ *)

let ts_binning () =
  let ts = Timeseries.create ~bin_ns:1000 in
  Timeseries.add ts 0 1.0;
  Timeseries.add ts 999 2.0;
  Timeseries.add ts 1000 5.0;
  let bins = Timeseries.bins ts in
  Alcotest.(check int) "two bins" 2 (Array.length bins);
  check_float "bin 0" 3.0 (snd bins.(0));
  check_float "bin 1" 5.0 (snd bins.(1))

let ts_empty_bins_filled () =
  let ts = Timeseries.create ~bin_ns:100 in
  Timeseries.incr ts 0;
  Timeseries.incr ts 500;
  let bins = Timeseries.bins ts in
  Alcotest.(check int) "six bins" 6 (Array.length bins);
  check_float "middle empty" 0.0 (snd bins.(2))

let ts_rates () =
  let ts = Timeseries.create ~bin_ns:1_000_000_000 in
  Timeseries.add ts 0 500.0;
  let rates = Timeseries.rates_per_second ts in
  check_float "rate" 500.0 (snd rates.(0))

let ts_out_of_order () =
  let ts = Timeseries.create ~bin_ns:10 in
  Timeseries.add ts 55 1.0;
  Timeseries.add ts 5 1.0;
  Alcotest.(check int) "bins span" 6 (Array.length (Timeseries.bins ts))

let ts_window_rollover () =
  (* samples straddling a bin boundary must land in distinct bins: the
     last nanosecond of bin 0 stays in bin 0, the first of bin 1 rolls
     over — the property the QoE sliding-window sums lean on *)
  let ts = Timeseries.create ~bin_ns:1000 in
  Timeseries.add ts 999 1.0;
  Timeseries.add ts 1000 2.0;
  Timeseries.add ts 1999 4.0;
  Timeseries.add ts 2000 8.0;
  let bins = Timeseries.bins ts in
  Alcotest.(check int) "three bins" 3 (Array.length bins);
  Alcotest.(check int) "bin 0 starts at 0" 0 (fst bins.(0));
  check_float "bin 0" 1.0 (snd bins.(0));
  Alcotest.(check int) "bin 1 starts at 1000" 1000 (fst bins.(1));
  check_float "bin 1 rolls over" 6.0 (snd bins.(1));
  check_float "bin 2" 8.0 (snd bins.(2));
  (* fold visits each non-empty bin exactly once with its bin start *)
  let visited =
    Timeseries.fold ts ~init:[] ~f:(fun acc time v -> (time, v) :: acc)
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "fold order and contents"
    [ (0, 1.0); (1000, 6.0); (2000, 8.0) ]
    (List.rev visited)

(* --- Table ------------------------------------------------------------------ *)

let table_renders () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "== t");
  (* all rows aligned: every line starting with | has the same length *)
  let lines = String.split_on_char '\n' s in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 && l.[0] = '|' then Some (String.length l) else None)
      lines
  in
  match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no rows rendered"

let table_arity_check () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: row arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "plain" ];
  Table.add_row t [ "2"; "with, comma" ];
  Table.add_row t [ "3"; "with \"quote\"" ];
  Alcotest.(check string) "csv escaping"
    "a,b\n1,plain\n2,\"with, comma\"\n3,\"with \"\"quote\"\"\"\n" (Table.to_csv t)

let table_csv_sink () =
  let captured = ref [] in
  Table.set_csv_sink (Some (fun ~title ~csv -> captured := (title, csv) :: !captured));
  let t = Table.create ~title:"sink me" ~columns:[ "x" ] in
  Table.add_row t [ "42" ];
  (* print goes to stdout AND the sink *)
  Table.print t;
  Table.set_csv_sink None;
  match !captured with
  | [ (title, csv) ] ->
      Alcotest.(check string) "title" "sink me" title;
      Alcotest.(check string) "csv" "x\n42\n" csv
  | _ -> Alcotest.fail "sink not called exactly once"

let table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "pct" "50.00%" (Table.cell_pct 0.5);
  Alcotest.(check string) "int" "7" (Table.cell_i 7)

(* --- Addr ------------------------------------------------------------------ *)

let addr_roundtrip () =
  let a = Addr.of_string "10.1.2.3:4567" in
  Alcotest.(check string) "roundtrip" "10.1.2.3:4567" (Addr.to_string a);
  Alcotest.(check int) "port" 4567 a.Addr.port

let addr_ip_conversion () =
  Alcotest.(check int) "ip value" 0x0A000001 (Addr.ip_of_string "10.0.0.1");
  Alcotest.(check string) "ip string" "255.255.255.255" (Addr.ip_to_string 0xFFFFFFFF)

let addr_invalid () =
  Alcotest.check_raises "bad ip" (Invalid_argument "Addr.ip_of_string: 300.0.0.1")
    (fun () -> ignore (Addr.ip_of_string "300.0.0.1"));
  Alcotest.check_raises "no port" (Invalid_argument "Addr.of_string: 1.2.3.4")
    (fun () -> ignore (Addr.of_string "1.2.3.4"))

let addr_ordering () =
  let a = Addr.v 1 5 and b = Addr.v 1 6 and c = Addr.v 2 0 in
  Alcotest.(check bool) "port order" true (Addr.compare a b < 0);
  Alcotest.(check bool) "ip order" true (Addr.compare b c < 0);
  Alcotest.(check bool) "equal" true (Addr.equal a (Addr.v 1 5))

(* --- Bufpool ---------------------------------------------------------------- *)

module Bufpool = Scallop_util.Bufpool

let bufpool_exact_length () =
  let p = Bufpool.create () in
  List.iter
    (fun len ->
      Alcotest.(check int) "exact length" len (Bytes.length (Bufpool.checkout p len)))
    [ 0; 1; 13; 1200; 65_536 ]

let bufpool_recycles_physically () =
  let p = Bufpool.create () in
  let a = Bufpool.checkout p 1200 in
  Bufpool.release p a;
  let b = Bufpool.checkout p 1200 in
  Alcotest.(check bool) "same buffer back" true (a == b);
  (* a different length is a different class: must not alias *)
  Bufpool.release p b;
  let c = Bufpool.checkout p 1201 in
  Alcotest.(check bool) "class isolation" false (Obj.repr b == Obj.repr c)

let bufpool_stats_accounting () =
  let p = Bufpool.create () in
  let a = Bufpool.checkout p 100 in
  let b = Bufpool.checkout p 100 in
  let s = Bufpool.stats p in
  Alcotest.(check int) "live" 2 s.Bufpool.live;
  Alcotest.(check int) "high water" 2 s.Bufpool.high_water;
  Alcotest.(check int) "fresh" 2 s.Bufpool.fresh;
  Alcotest.(check int) "recycled" 0 s.Bufpool.recycled;
  Bufpool.release p a;
  Bufpool.release p b;
  let c = Bufpool.checkout p 100 in
  let s = Bufpool.stats p in
  Alcotest.(check int) "live after cycle" 1 s.Bufpool.live;
  Alcotest.(check int) "high water sticky" 2 s.Bufpool.high_water;
  Alcotest.(check int) "recycled" 1 s.Bufpool.recycled;
  Alcotest.(check int) "released" 2 s.Bufpool.released;
  Alcotest.(check int) "classes" 1 s.Bufpool.classes;
  Alcotest.(check int) "parked bytes" 100 s.Bufpool.parked_bytes;
  Bufpool.release p c

let bufpool_double_release_debug () =
  let p = Bufpool.create ~debug:true () in
  let a = Bufpool.checkout p 64 in
  Bufpool.release p a;
  Alcotest.check_raises "double release" (Bufpool.Double_release 64) (fun () ->
      Bufpool.release p a)

let bufpool_poison_on_release () =
  let p = Bufpool.create ~debug:true () in
  let a = Bufpool.checkout p 32 in
  Bytes.fill a 0 32 'x';
  Bufpool.release p a;
  (* the parked buffer must be stamped so stale aliases read garbage *)
  Bytes.iter
    (fun c ->
      if c <> Bufpool.poison_byte then
        Alcotest.failf "unpoisoned byte %C after release" c)
    a

let bufpool_class_depth_cap () =
  let p = Bufpool.create ~max_class_depth:2 () in
  let bufs = List.init 5 (fun _ -> Bufpool.checkout p 10) in
  List.iter (Bufpool.release p) bufs;
  let s = Bufpool.stats p in
  Alcotest.(check int) "parked capped" (2 * 10) s.Bufpool.parked_bytes;
  Alcotest.(check int) "overflow dropped" 3 s.Bufpool.dropped;
  Alcotest.(check int) "all releases counted" 5 s.Bufpool.released

(* random checkout/release interleavings against a naive model: live count
   matches, checkouts always have the requested length, and nothing is
   handed out twice while still checked out *)
let prop_bufpool_model =
  QCheck.Test.make ~count:100 ~name:"bufpool checkout/release model"
    QCheck.(list_of_size Gen.(1 -- 200) (pair bool (int_bound 4)))
    (fun ops ->
      let p = Bufpool.create ~debug:true () in
      let lens = [| 10; 100; 1200; 1300; 65_536 |] in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_checkout, i) ->
          if is_checkout || !live = [] then begin
            let b = Bufpool.checkout p lens.(i) in
            if Bytes.length b <> lens.(i) then ok := false;
            if List.memq b !live then ok := false (* aliased while live *);
            live := b :: !live
          end
          else
            match !live with
            | b :: rest ->
                Bufpool.release p b;
                live := rest
            | [] -> ())
        ops;
      let s = Bufpool.stats p in
      !ok
      && s.Bufpool.live = List.length !live
      && s.Bufpool.fresh + s.Bufpool.recycled = s.Bufpool.live + s.Bufpool.released)

(* --- qcheck properties ------------------------------------------------------ *)

let prop_percentile_bounded =
  QCheck.Test.make ~count:200 ~name:"percentile within min/max"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = Stats.Samples.create () in
      List.iter (Stats.Samples.observe s) xs;
      let v = Stats.Samples.percentile s p in
      v >= Stats.Samples.min s && v <= Stats.Samples.max s)

let prop_online_mean_matches =
  QCheck.Test.make ~count:200 ~name:"online mean = batch mean"
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Stats.Online.create () in
      List.iter (Stats.Online.observe s) xs;
      let batch = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.Online.mean s -. batch) < 1e-6)

let prop_addr_roundtrip =
  QCheck.Test.make ~count:200 ~name:"addr to_string/of_string roundtrip"
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFF))
    (fun (ip, port) ->
      let a = Addr.v ip port in
      Addr.equal a (Addr.of_string (Addr.to_string a)))

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_percentile_bounded; prop_online_mean_matches; prop_addr_roundtrip;
      prop_bufpool_model ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick rng_split_independent;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick rng_float_bounds;
          Alcotest.test_case "bernoulli rate" `Quick rng_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
          Alcotest.test_case "lognormal median" `Quick rng_lognormal_median;
          Alcotest.test_case "shuffle permutes" `Quick rng_shuffle_permutes;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "first value" `Quick ewma_first_value;
          Alcotest.test_case "smoothing" `Quick ewma_smoothing;
          Alcotest.test_case "converges" `Quick ewma_converges;
          Alcotest.test_case "empty" `Quick ewma_empty;
          Alcotest.test_case "bad alpha" `Quick ewma_bad_alpha;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online mean/variance" `Quick online_mean_variance;
          Alcotest.test_case "percentiles" `Quick samples_percentiles;
          Alcotest.test_case "interleaved sorting" `Quick samples_interleaved_sorting;
          Alcotest.test_case "empty raises" `Quick samples_empty_raises;
          Alcotest.test_case "growth" `Quick samples_grows;
          Alcotest.test_case "NaN rejected" `Quick samples_nan_raises;
          Alcotest.test_case "negative sort regression" `Quick
            samples_negative_sort;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick hist_basic;
          Alcotest.test_case "percentile interpolates" `Quick
            hist_percentile_interpolates;
          Alcotest.test_case "cumulative buckets" `Quick hist_buckets_cumulative;
          Alcotest.test_case "NaN rejected" `Quick hist_nan_raises;
          Alcotest.test_case "bad bounds" `Quick hist_bad_bounds;
          Alcotest.test_case "empty percentile raises" `Quick
            hist_empty_percentile_raises;
          Alcotest.test_case "single sample" `Quick hist_single_sample;
          Alcotest.test_case "all equal" `Quick hist_all_equal;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "binning" `Quick ts_binning;
          Alcotest.test_case "empty bins filled" `Quick ts_empty_bins_filled;
          Alcotest.test_case "rates" `Quick ts_rates;
          Alcotest.test_case "out of order" `Quick ts_out_of_order;
          Alcotest.test_case "window rollover" `Quick ts_window_rollover;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders aligned" `Quick table_renders;
          Alcotest.test_case "arity check" `Quick table_arity_check;
          Alcotest.test_case "cell formatting" `Quick table_cells;
          Alcotest.test_case "csv" `Quick table_csv;
          Alcotest.test_case "csv sink" `Quick table_csv_sink;
        ] );
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick addr_roundtrip;
          Alcotest.test_case "ip conversion" `Quick addr_ip_conversion;
          Alcotest.test_case "invalid input" `Quick addr_invalid;
          Alcotest.test_case "ordering" `Quick addr_ordering;
        ] );
      ( "bufpool",
        [
          Alcotest.test_case "exact length" `Quick bufpool_exact_length;
          Alcotest.test_case "physical recycling" `Quick
            bufpool_recycles_physically;
          Alcotest.test_case "stats accounting" `Quick bufpool_stats_accounting;
          Alcotest.test_case "double release (debug)" `Quick
            bufpool_double_release_debug;
          Alcotest.test_case "poison on release (debug)" `Quick
            bufpool_poison_on_release;
          Alcotest.test_case "class depth cap" `Quick bufpool_class_depth_cap;
        ] );
      ("properties", qsuite);
    ]
