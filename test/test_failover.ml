(* Failure detection and recovery: crash/restart resync, partition
   tolerance (media keeps flowing while control is severed, deferred ops
   drain on heal), deferred-queue overflow, and anti-entropy repair.
   The QCheck property is the heart of it: a run that crashes mid-way
   and resyncs from intent must converge to the same agent state as the
   run that never crashed. *)

module Engine = Netsim.Engine
module Link = Netsim.Link
module Rng = Scallop_util.Rng
module C = Scallop.Controller
module A = Scallop.Switch_agent
module D = Scallop.Dataplane
module T = Scallop.Rpc_transport
module An = Scallop_analysis
module Cl = Scallop.Cluster
module Common = Experiments.Common

(* Canonical agent shadow state for equivalence checks: everything the
   control plane installed, minus media-driven fields — adaptive-leg
   targets and the best-downlink selection evolve with traffic the
   crashed run did not deliver, and meeting ids / tree handles are
   allocator artifacts of the replay. [amv_pair_specific] is also out:
   it is a sticky mode bit ("a pair target was ever set"), and when the
   pinned pair leaves before the crash the controller rightly drops the
   pin from intent, so the replayed agent cannot (and should not)
   reconstruct the stickiness. *)
let canon_agent agent =
  A.introspect agent
  |> List.map (fun (m : A.meeting_view) ->
         let streams =
           m.A.amv_streams
           |> List.map (fun (s : A.stream_view) ->
                  let legs =
                    s.A.asv_legs
                    |> List.map (fun (l : A.leg_view) ->
                           ( l.A.alv_port,
                             l.A.alv_receiver,
                             l.A.alv_adaptive,
                             if l.A.alv_adaptive then None else Some l.A.alv_target ))
                    |> List.sort compare
                  in
                  ( s.A.asv_uplink_port,
                    s.A.asv_sender,
                    s.A.asv_video_ssrc,
                    s.A.asv_audio_ssrc,
                    Array.to_list s.A.asv_renditions,
                    legs ))
           |> List.sort compare
         in
         ( List.sort compare m.A.amv_members,
           List.sort compare m.A.amv_senders,
           streams ))
  |> List.sort compare

let set_control_loss stack loss =
  let chan = C.control_channel stack.Common.controller 0 in
  Link.set_loss (T.Client.request_link chan) loss;
  Link.set_loss (T.Client.reply_link chan) loss

let run_to stack seconds =
  Engine.run stack.Common.engine ~until:(Engine.sec seconds)

let health_view stack =
  match (C.introspect stack.Common.controller).C.in_health with
  | [ h ] -> h
  | hs -> Alcotest.failf "expected one health view, got %d" (List.length hs)

(* --- crash + restart: epoch bump forces a full resync ------------------- *)

let crash_restart_resyncs () =
  let stack = Common.make_scallop ~seed:31 () in
  let mid, _parts = Common.scallop_meeting stack ~participants:4 ~senders:2 () in
  C.start_health stack.controller;
  run_to stack 1.5;
  A.crash stack.agent;
  run_to stack 4.0;
  Alcotest.(check string)
    "declared dead while down" "dead"
    (C.health_name (C.agent_health stack.controller 0));
  (* mutate intent while the switch is dead: must not raise, must queue *)
  let pids = C.meeting_participants stack.controller mid in
  C.set_pair_target stack.controller ~sender:(List.hd pids)
    ~receiver:(List.nth pids 2) Av1.Dd.DT_15fps;
  Alcotest.(check bool) "op deferred" true ((health_view stack).C.hv_deferred > 0);
  A.restart stack.agent;
  run_to stack 8.0;
  C.stop_health stack.controller;
  Alcotest.(check string)
    "healthy after heal" "healthy"
    (C.health_name (C.agent_health stack.controller 0));
  let resyncs =
    List.filter (fun e -> e.C.re_kind = `Resync) (C.recovery_log stack.controller)
  in
  Alcotest.(check bool) "a resync happened" true (resyncs <> []);
  Alcotest.(check int) "deferred queue empty" 0 (health_view stack).C.hv_deferred;
  (* the deferred pin was replayed: the meeting runs pair-specific trees
     (the target itself may keep adapting with feedback afterwards) *)
  Alcotest.(check bool)
    "pair pin survived the replay" true
    (List.exists
       (fun (m : A.meeting_view) -> m.A.amv_pair_specific)
       (A.introspect stack.agent));
  An.assert_clean ~what:"post crash/restart resync" stack.controller

(* --- partition: media continues, control ops defer and drain ------------ *)

let partition_keeps_media_flowing () =
  let stack = Common.make_scallop ~seed:32 () in
  let _mid, parts = Common.scallop_meeting stack ~participants:4 ~senders:2 () in
  C.start_health stack.controller;
  run_to stack 2.0;
  set_control_loss stack 1.0;
  run_to stack 5.0;
  Alcotest.(check string)
    "partition declared dead" "dead"
    (C.health_name (C.agent_health stack.controller 0));
  let epoch_before = A.epoch stack.agent in
  (* control-plane mutations while partitioned: defer, don't raise *)
  let pids = List.map fst parts in
  C.set_pair_target stack.controller ~sender:(List.hd pids)
    ~receiver:(List.nth pids 3) Av1.Dd.DT_7_5fps;
  C.leave stack.controller (List.nth pids 2);
  Alcotest.(check bool) "ops deferred" true ((health_view stack).C.hv_deferred >= 2);
  (* the data plane forwards last-known state through the outage *)
  let egress_mid = D.egress_pkts stack.dp in
  run_to stack 6.5;
  Alcotest.(check bool)
    "media flowed during the partition" true
    (D.egress_pkts stack.dp > egress_mid + 100);
  set_control_loss stack 0.0;
  run_to stack 9.0;
  C.stop_health stack.controller;
  Alcotest.(check int) "agent never rebooted" epoch_before (A.epoch stack.agent);
  let drains =
    List.filter (fun e -> e.C.re_kind = `Drain) (C.recovery_log stack.controller)
  in
  Alcotest.(check bool) "queue drained (no resync needed)" true (drains <> []);
  Alcotest.(check int) "deferred queue empty" 0 (health_view stack).C.hv_deferred;
  (* the deferred leave was applied on drain *)
  Alcotest.(check bool)
    "deferred leave applied" true
    (not
       (List.mem
          (C.agent_participant_id stack.controller (List.nth pids 2))
          (A.meeting_members stack.agent 0)));
  An.assert_clean ~what:"post partition drain" stack.controller

(* --- deferred-queue overflow: bounded, oldest dropped, resync on heal --- *)

let overflow_forces_resync () =
  let stack = Common.make_scallop ~seed:33 () in
  let _mid, parts = Common.scallop_meeting stack ~participants:4 ~senders:2 () in
  C.start_health
    ~config:{ C.default_health_config with C.deferred_cap = 3 }
    stack.controller;
  run_to stack 1.5;
  A.crash stack.agent;
  run_to stack 4.0;
  let pids = List.map fst parts in
  let targets = [ Av1.Dd.DT_7_5fps; Av1.Dd.DT_15fps; Av1.Dd.DT_30fps ] in
  List.iter
    (fun t ->
      List.iter
        (fun r ->
          if r <> List.hd pids then
            C.set_pair_target stack.controller ~sender:(List.hd pids) ~receiver:r t)
        pids)
    targets;
  let h = health_view stack in
  Alcotest.(check int) "queue capped" 3 h.C.hv_deferred;
  Alcotest.(check bool) "oldest ops dropped" true (h.C.hv_dropped > 0);
  let findings = An.verify stack.controller in
  Alcotest.(check bool)
    "overflow surfaces as a warning finding" true
    (List.exists
       (fun (f : An.finding) ->
         f.An.kind = An.Deferred_overflow && f.An.severity = An.Warning)
       findings);
  Alcotest.(check (list string)) "but not as an error" []
    (List.map (fun (f : An.finding) -> f.An.explanation) (An.errors findings));
  A.restart stack.agent;
  run_to stack 8.0;
  C.stop_health stack.controller;
  let resyncs =
    List.filter (fun e -> e.C.re_kind = `Resync) (C.recovery_log stack.controller)
  in
  Alcotest.(check bool) "drop forced a full resync" true (resyncs <> []);
  Alcotest.(check int) "drop counter cleared" 0 (health_view stack).C.hv_dropped;
  (* the last pinned target per pair came from intent, not the queue *)
  An.assert_clean ~what:"post overflow resync" stack.controller;
  Alcotest.(check bool)
    "no overflow warning after replay" true
    (not
       (List.exists
          (fun (f : An.finding) -> f.An.kind = An.Deferred_overflow)
          (An.verify stack.controller)))

(* --- anti-entropy: reconcile repairs a live-but-drifted switch ---------- *)

let reconcile_repairs_drift () =
  let stack = Common.make_scallop ~seed:34 () in
  let _mid, parts = Common.scallop_meeting stack ~participants:3 ~senders:2 () in
  run_to stack 2.0;
  An.assert_clean ~what:"steady state before drift" stack.controller;
  (* reach behind the agent's back and rip a leg out of the data plane *)
  let sender_pid = fst (List.hd parts) in
  let receiver_pid = fst (List.nth parts 2) in
  let info = Option.get (C.participant_sender_info stack.controller sender_pid) in
  D.unregister_leg stack.dp
    ~receiver:(C.agent_participant_id stack.controller receiver_pid)
    ~video_ssrc:info.C.video_ssrc;
  let report = An.reconcile stack.controller in
  Alcotest.(check bool) "drift detected" true (An.errors report.An.rr_before <> []);
  (match report.An.rr_repairs with
  | [ (0, Some ops) ] -> Alcotest.(check bool) "repair issued RPCs" true (ops > 0)
  | other ->
      Alcotest.failf "expected one successful repair of sw0, got %d"
        (List.length other));
  Alcotest.(check int) "clean after repair" 0 (List.length (An.errors report.An.rr_after));
  An.assert_clean ~what:"post reconcile" stack.controller

(* --- flapping switch: the detector counts every transition -------------- *)

let flapping_detector_counts_transitions () =
  let stack = Common.make_scallop ~seed:35 () in
  ignore (Common.scallop_meeting stack ~participants:3 ~senders:1 ());
  C.start_health stack.controller;
  run_to stack 1.0;
  (* two suspect/heal flaps: sever control long enough for Suspect
     (2 missed probes at the default 500 ms heartbeat) but heal before
     Dead (4 missed) *)
  set_control_loss stack 1.0;
  run_to stack 2.3;
  Alcotest.(check string) "first flap suspected" "suspect"
    (C.health_name (C.agent_health stack.controller 0));
  set_control_loss stack 0.0;
  run_to stack 3.3;
  Alcotest.(check string) "first flap healed" "healthy"
    (C.health_name (C.agent_health stack.controller 0));
  set_control_loss stack 1.0;
  run_to stack 4.6;
  Alcotest.(check string) "second flap suspected" "suspect"
    (C.health_name (C.agent_health stack.controller 0));
  set_control_loss stack 0.0;
  run_to stack 5.6;
  C.stop_health stack.controller;
  Alcotest.(check string) "second flap healed" "healthy"
    (C.health_name (C.agent_health stack.controller 0));
  (* the per-state transition counters behind scallop_ctrl_health_* see
     the matched suspect/healthy pairs; dead never fired *)
  Alcotest.(check int) "suspect transitions" 2
    (C.health_transitions stack.controller 0 C.Suspect);
  Alcotest.(check int) "healthy transitions" 2
    (C.health_transitions stack.controller 0 C.Healthy);
  Alcotest.(check int) "no dead transition" 0
    (C.health_transitions stack.controller 0 C.Dead);
  An.assert_clean ~what:"post flapping" stack.controller

(* --- recovery log: bounded ring, evictions counted ----------------------- *)

let recovery_log_is_bounded () =
  let stack = Common.make_scallop ~seed:36 () in
  ignore (Common.scallop_meeting stack ~participants:2 ~senders:0 ());
  (* an aggressive detector so 70 power-cycles complete their heal
     resyncs in a short virtual window *)
  C.start_health
    ~config:
      {
        C.heartbeat_every_ns = Engine.ms 50;
        probe_timeout_ns = Engine.ms 25;
        suspect_after = 1;
        dead_after = 2;
        deferred_cap = 256;
      }
    stack.controller;
  run_to stack 0.5;
  for i = 0 to 69 do
    let base = 0.5 +. (0.3 *. float_of_int i) in
    Engine.at stack.engine ~time:(Engine.sec base) (fun () ->
        A.crash stack.agent);
    Engine.at stack.engine
      ~time:(Engine.sec (base +. 0.15))
      (fun () -> A.restart stack.agent)
  done;
  run_to stack 23.0;
  C.stop_health stack.controller;
  let log = C.recovery_log stack.controller in
  Alcotest.(check int) "ring capped at 64" 64 (List.length log);
  Alcotest.(check bool) "evictions counted" true
    (C.recovery_log_dropped stack.controller > 0);
  (* newest-first: the surviving entries are the most recent heals *)
  (match log with
  | newest :: _ ->
      Alcotest.(check bool) "newest entry is from a late cycle" true
        (newest.C.re_recovered_ns > Engine.sec 15.0)
  | [] -> Alcotest.fail "empty recovery log")

(* --- cluster: kill the primary, the standby takes over ------------------- *)

let cluster_failover_resumes_service () =
  let cs = Common.make_cluster ~seed:41 () in
  let stack = cs.Common.base in
  let cluster = cs.Common.cluster in
  let mid, _parts = Common.scallop_meeting stack ~participants:4 ~senders:2 () in
  Cl.start_health cluster;
  run_to stack 1.5;
  Alcotest.(check string) "primary acting" "ctl" (C.label (Cl.endpoint cluster));
  Cl.kill_primary cluster;
  run_to stack 3.0;
  Alcotest.(check int) "standby promoted once" 1 (Cl.promotions cluster);
  let ep = Cl.endpoint cluster in
  Alcotest.(check string) "endpoint is the old standby" "ctl1" (C.label ep);
  Alcotest.(check bool) "fence advanced past the dead primary's" true
    (C.fence ep >= 2);
  (* the killed instance refuses new intent *)
  Alcotest.check_raises "killed primary unavailable" C.Unavailable (fun () ->
      ignore (C.create_meeting (Cl.primary cluster)));
  (* service continues through the new primary: the rebuilt intent
     resolves the pre-failover meeting and participant ids *)
  let pids = C.meeting_participants ep mid in
  C.set_pair_target ep ~sender:(List.hd pids) ~receiver:(List.nth pids 2)
    Av1.Dd.DT_15fps;
  C.leave ep (List.nth pids 3);
  run_to stack 5.0;
  (* the old primary rejoins as a tailing standby *)
  Cl.restart_killed cluster;
  run_to stack 7.0;
  Cl.stop cluster;
  Alcotest.(check bool) "restarted instance tails as standby" true
    (C.role (Cl.primary cluster) = C.Standby);
  (match An.errors (An.check_cluster cluster) with
  | [] -> ()
  | fs ->
      Alcotest.failf "cluster invariants violated: %s"
        (String.concat "; " (List.map (fun f -> f.An.explanation) fs)));
  Alcotest.(check string) "rebuilt standby reproduces the acting intent"
    (C.intent_fingerprint ep)
    (C.intent_fingerprint (Cl.primary cluster));
  An.assert_clean ~what:"post cluster failover" ep

(* --- QCheck: crash + resync-from-intent == never crashed ---------------- *)

type op = Join of bool | Leave of int | Target of int * int * int

let op_to_string = function
  | Join s -> Printf.sprintf "Join(send=%b)" s
  | Leave k -> Printf.sprintf "Leave(%d)" k
  | Target (s, r, t) -> Printf.sprintf "Target(%d,%d,%d)" s r t

type plan = { ops : op list; crash_ms : int; down_ms : int }

let plan_to_string p =
  Printf.sprintf "{ops=[%s]; crash=%dms; down=%dms}"
    (String.concat "; " (List.map op_to_string p.ops))
    p.crash_ms p.down_ms

let plan_gen =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (2, map (fun b -> Join b) bool);
        (1, map (fun k -> Leave k) (int_bound 10));
        ( 3,
          map3
            (fun s r t -> Target (s, r, t))
            (int_bound 10) (int_bound 10) (int_bound 2) );
      ]
  in
  map3
    (fun ops crash_ms down_ms -> { ops; crash_ms; down_ms })
    (list_size (int_range 3 6) op)
    (int_range 1000 2500) (int_range 800 2000)

let plan_arb = QCheck.make ~print:plan_to_string plan_gen

(* Replay [plan.ops] at fixed virtual times against a fresh 3-party
   meeting; when [crash] is set the switch power-cycles mid-sequence,
   and [batch] selects the controller's batched wire mode. Returns the
   canonical agent shadow after everything settles. *)
let execute ?(batch = false) plan ~crash =
  let stack = Common.make_scallop ~seed:11 ~batch () in
  let mid, parts = Common.scallop_meeting stack ~participants:3 ~senders:2 () in
  C.start_health stack.controller;
  let live = ref (List.map fst parts) in
  let senders = ref [ fst (List.hd parts); fst (List.nth parts 1) ] in
  let next_index = ref 10 in
  (* a blocking controller call pumps the engine through its retries, so a
     later op's timer can fire while an earlier op is still mid-call;
     serialize through a queue so ops always run whole and in order *)
  let pending = Queue.create () in
  let busy = ref false in
  let enqueue f =
    Queue.push f pending;
    if not !busy then begin
      busy := true;
      Fun.protect
        ~finally:(fun () -> busy := false)
        (fun () ->
          while not (Queue.is_empty pending) do
            (Queue.pop pending) ()
          done)
    end
  in
  List.iteri
    (fun i op ->
      Engine.at stack.engine
        ~time:(Engine.sec (0.8 +. (1.0 *. float_of_int i)))
        (fun () ->
          enqueue @@ fun () ->
          match op with
          | Join send ->
              incr next_index;
              let client =
                Common.add_client stack.engine stack.network stack.rng
                  ~index:!next_index ()
              in
              let pid = C.join stack.controller mid client ~send_media:send in
              live := !live @ [ pid ];
              if send then senders := !senders @ [ pid ]
          | Leave k ->
              if List.length !live > 1 then begin
                let pid = List.nth !live (k mod List.length !live) in
                C.leave stack.controller pid;
                live := List.filter (fun p -> p <> pid) !live;
                senders := List.filter (fun p -> p <> pid) !senders
              end
          | Target (s, r, t) -> (
              match List.filter (fun p -> List.mem p !live) !senders with
              | [] -> ()
              | ss -> (
                  let sender = List.nth ss (s mod List.length ss) in
                  match List.filter (fun p -> p <> sender) !live with
                  | [] -> ()
                  | rs ->
                      let receiver = List.nth rs (r mod List.length rs) in
                      C.set_pair_target stack.controller ~sender ~receiver
                        (Av1.Dd.target_of_index t)))))
    plan.ops;
  if crash then begin
    Engine.at stack.engine
      ~time:(Engine.ms plan.crash_ms)
      (fun () -> A.crash stack.agent);
    Engine.at stack.engine
      ~time:(Engine.ms (plan.crash_ms + plan.down_ms))
      (fun () -> A.restart stack.agent)
  end;
  run_to stack 10.0;
  C.stop_health stack.controller;
  An.assert_clean
    ~what:(if crash then "crashed run" else "baseline run")
    stack.controller;
  canon_agent stack.agent

let canon_to_string c =
  String.concat "\n"
    (List.map
       (fun (members, senders, streams) ->
         Printf.sprintf "members=%s senders=%s\n%s"
           (String.concat ","
              (List.map (fun (p, port) -> Printf.sprintf "%d@%d" p port) members))
           (String.concat "," (List.map string_of_int senders))
           (String.concat "\n"
              (List.map
                 (fun (up, s, v, a, rend, legs) ->
                   Printf.sprintf "  stream up=%d sender=%d v=%d a=%d rend=%d legs=[%s]"
                     up s v a (List.length rend)
                     (String.concat "; "
                        (List.map
                           (fun (port, r, ad, tgt) ->
                             Printf.sprintf "%d->%d ad=%b tgt=%s" port r ad
                               (match tgt with
                               | None -> "_"
                               | Some t -> string_of_float (Av1.Dd.fps_of_target t)))
                           legs)))
                 streams)))
       c)

let resync_equiv_prop =
  QCheck.Test.make ~count:4 ~name:"resync-from-intent == never-crashed" plan_arb
    (fun plan ->
      let crashed = execute plan ~crash:true in
      let baseline = execute plan ~crash:false in
      if crashed <> baseline then
        Printf.printf "--- crashed run:\n%s\n--- baseline run:\n%s\n"
          (canon_to_string crashed) (canon_to_string baseline);
      crashed = baseline)

(* The strongest form of the batching-equivalence claim: a batched run
   whose switch crashes mid-sequence (possibly mid-batch — buffered ops
   requeue through the deferred path and resync replays from intent)
   must land on the same canonical agent state as a per-op run that
   never crashed at all. *)
(* Regression (found by the property above): a batched join whose flush
   straddles the switch's power-cycle. The heartbeat's first pong after
   the restart used to trigger the resync while the join's batch was
   still retrying; the replay recreated the meeting from intent and the
   batch's retransmit then landed on the healed agent and re-executed —
   duplicating the member and its legs. The heal now waits for a quiet
   channel. *)
let straddling_flush_does_not_double_execute () =
  let plan =
    { ops = [ Target (2, 5, 0); Target (9, 3, 2); Join false ];
      crash_ms = 2325; down_ms = 1064 }
  in
  let batched_crashed = execute plan ~crash:true ~batch:true in
  let baseline = execute plan ~crash:false in
  if batched_crashed <> baseline then
    Alcotest.failf "batched crashed run diverged:\n%s\n--- baseline:\n%s"
      (canon_to_string batched_crashed) (canon_to_string baseline)

(* Like [execute], but against the primary/standby cluster, and the
   fault is a controller kill instead of a switch crash: the primary is
   killed at [plan.crash_ms] (the beat timer promotes the standby) and
   restarted as a tailing standby [plan.down_ms] later. Ops follow
   {!Cl.endpoint}; one caught mid-failover raises [Unavailable] or
   [Deposed_primary] {e before} journaling anything and is re-queued at
   the front — submission order, and therefore every replayed
   identifier, stays deterministic. Returns the acting instance's
   intent fingerprint plus the canonical agent shadow. *)
let execute_cluster plan ~kill =
  let cs = Common.make_cluster ~seed:11 () in
  let stack = cs.Common.base in
  let cluster = cs.Common.cluster in
  let ctrl () = Cl.endpoint cluster in
  let mid, parts = Common.scallop_meeting stack ~participants:3 ~senders:2 () in
  Cl.start_health cluster;
  let live = ref (List.map fst parts) in
  let senders = ref [ fst (List.hd parts); fst (List.nth parts 1) ] in
  let next_index = ref 10 in
  let pending = ref [] in
  let busy = ref false in
  let rec drain () =
    match !pending with
    | [] -> ()
    | f :: rest -> (
        pending := rest;
        match f (ctrl ()) with
        | () -> drain ()
        | exception (C.Unavailable | C.Deposed_primary) ->
            pending := f :: !pending;
            Engine.schedule stack.Common.engine ~after:(Engine.ms 300) pump)
  and pump () =
    if not !busy then begin
      busy := true;
      Fun.protect ~finally:(fun () -> busy := false) drain
    end
  in
  let enqueue f =
    pending := !pending @ [ f ];
    pump ()
  in
  List.iteri
    (fun i op ->
      Engine.at stack.engine
        ~time:(Engine.sec (0.8 +. (1.0 *. float_of_int i)))
        (fun () ->
          match op with
          | Join send ->
              (* the client is registered when the timer fires, outside
                 the retried closure: a retry after a failover re-issues
                 the join, never a second host registration *)
              incr next_index;
              let client =
                Common.add_client stack.engine stack.network stack.rng
                  ~index:!next_index ()
              in
              enqueue (fun ctrl ->
                  let pid = C.join ctrl mid client ~send_media:send in
                  live := !live @ [ pid ];
                  if send then senders := !senders @ [ pid ])
          | Leave k ->
              enqueue (fun ctrl ->
                  if List.length !live > 1 then begin
                    let pid = List.nth !live (k mod List.length !live) in
                    C.leave ctrl pid;
                    live := List.filter (fun p -> p <> pid) !live;
                    senders := List.filter (fun p -> p <> pid) !senders
                  end)
          | Target (s, r, t) ->
              enqueue (fun ctrl ->
                  match List.filter (fun p -> List.mem p !live) !senders with
                  | [] -> ()
                  | ss -> (
                      let sender = List.nth ss (s mod List.length ss) in
                      match List.filter (fun p -> p <> sender) !live with
                      | [] -> ()
                      | rs ->
                          let receiver = List.nth rs (r mod List.length rs) in
                          C.set_pair_target ctrl ~sender ~receiver
                            (Av1.Dd.target_of_index t)))))
    plan.ops;
  if kill then begin
    Engine.at stack.engine
      ~time:(Engine.ms plan.crash_ms)
      (fun () -> Cl.kill_primary cluster);
    Engine.at stack.engine
      ~time:(Engine.ms (plan.crash_ms + plan.down_ms))
      (fun () -> Cl.restart_killed cluster)
  end;
  run_to stack 10.0;
  Cl.stop cluster;
  let ep = ctrl () in
  An.assert_clean
    ~what:(if kill then "killed-primary run" else "never-killed run")
    ep;
  (match An.errors (An.check_cluster cluster) with
  | [] -> ()
  | fs ->
      Alcotest.failf "cluster invariants violated (%s): %s"
        (if kill then "killed" else "baseline")
        (String.concat "; " (List.map (fun f -> f.An.explanation) fs)));
  (C.intent_fingerprint ep, canon_agent stack.Common.agent)

let cluster_equiv_prop =
  QCheck.Test.make ~count:3
    ~name:"kill primary at any point + failover == never killed" plan_arb
    (fun plan ->
      let killed_fp, killed_agent = execute_cluster plan ~kill:true in
      let base_fp, base_agent = execute_cluster plan ~kill:false in
      if killed_fp <> base_fp then
        Printf.printf "--- killed-run intent:\n%s\n--- baseline intent:\n%s\n"
          killed_fp base_fp;
      if killed_agent <> base_agent then
        Printf.printf "--- killed-run agent:\n%s\n--- baseline agent:\n%s\n"
          (canon_to_string killed_agent)
          (canon_to_string base_agent);
      killed_fp = base_fp && killed_agent = base_agent)

let batched_equiv_prop =
  QCheck.Test.make ~count:3 ~name:"batched + crash mid-batch == per-op baseline"
    plan_arb
    (fun plan ->
      let batched_crashed = execute plan ~crash:true ~batch:true in
      let baseline = execute plan ~crash:false in
      if batched_crashed <> baseline then
        Printf.printf "--- batched crashed run:\n%s\n--- per-op baseline:\n%s\n"
          (canon_to_string batched_crashed) (canon_to_string baseline);
      batched_crashed = baseline)

let () =
  Alcotest.run "failover"
    [
      ( "recovery",
        [
          Alcotest.test_case "crash/restart resyncs from intent" `Quick
            crash_restart_resyncs;
          Alcotest.test_case "partition: media flows, ops drain" `Quick
            partition_keeps_media_flowing;
          Alcotest.test_case "deferred overflow forces resync" `Quick
            overflow_forces_resync;
          Alcotest.test_case "reconcile repairs live drift" `Quick
            reconcile_repairs_drift;
          Alcotest.test_case "straddling flush never double-executes" `Quick
            straddling_flush_does_not_double_execute;
          Alcotest.test_case "flapping detector counts transitions" `Quick
            flapping_detector_counts_transitions;
          Alcotest.test_case "recovery log is a bounded ring" `Quick
            recovery_log_is_bounded;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "failover resumes service" `Quick
            cluster_failover_resumes_service;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest ~verbose:false resync_equiv_prop;
          QCheck_alcotest.to_alcotest ~verbose:false batched_equiv_prop;
          QCheck_alcotest.to_alcotest ~verbose:false cluster_equiv_prop;
        ] );
    ]
