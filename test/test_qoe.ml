(* QoE pipeline: collector windowed queries, SLO multi-window burn-rate
   alerting (fire / dedup / re-arm), trace-linked attribution over
   synthesized evidence, the finding JSON round-trip contract, and the
   end-to-end determinism of the seeded chaos scenario behind
   `scallop_cli qoe`. *)

module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace
module Qoe = Scallop_obs.Qoe
module Slo = Scallop_obs.Slo
module Attrib = Scallop_obs.Attrib

let sec s = int_of_float (s *. 1e9)

let key ?(receiver = 3) ?(sender = 1) ?(kind = Qoe.Video) () =
  {
    Qoe.k_meeting = 0;
    k_receiver = receiver;
    k_sender = sender;
    k_media = Qoe.Camera;
    k_kind = kind;
  }

let fresh () =
  Metrics.reset ();
  Qoe.reset ();
  Trace.reset ();
  Trace.set_level Trace.Off;
  Trace.set_sample_every 1

let feed_packets q lo hi =
  (* ten packets per one-second bin, spread inside the bin *)
  for s = lo to hi - 1 do
    for i = 0 to 9 do
      Qoe.on_packet q ~time_ns:((s * 1_000_000_000) + (i * 50_000_000)) ~size:1000
    done
  done

(* --- collector windowed queries -------------------------------------------- *)

let qoe_loss_windows () =
  fresh ();
  let q = Qoe.collector (key ()) in
  feed_packets q 0 8;
  Qoe.on_gap q ~time_ns:(sec 4.2) ~count:20;
  Qoe.on_gap q ~time_ns:(sec 4.2) ~count:0 (* no-op *);
  for _ = 1 to 5 do
    Qoe.on_gap_filled q ~time_ns:(sec 4.3)
  done;
  Qoe.on_duplicate q ~time_ns:(sec 4.4);
  let ratio ~from_s ~until_s =
    Qoe.loss_ratio_between q ~from_ns:(sec from_s) ~until_ns:(sec until_s)
  in
  (match ratio ~from_s:0.0 ~until_s:8.0 with
  | Some r ->
      Alcotest.(check (float 1e-9)) "unrecovered share" ((20.0 -. 5.0) /. 100.0) r
  | None -> Alcotest.fail "expected a loss ratio over the full run");
  (match ratio ~from_s:0.0 ~until_s:2.0 with
  | Some r -> Alcotest.(check (float 1e-9)) "clean prefix" 0.0 r
  | None -> Alcotest.fail "expected a loss ratio over the prefix");
  Alcotest.(check bool) "empty window" true (ratio ~from_s:100.0 ~until_s:110.0 = None);
  let s = Qoe.summary q ~now_ns:(sec 8.0) in
  Alcotest.(check int) "packets" 80 s.Qoe.s_packets;
  Alcotest.(check int) "gap packets" 20 s.Qoe.s_gap_packets;
  Alcotest.(check int) "recovered" 5 s.Qoe.s_recovered;
  Alcotest.(check int) "duplicates" 1 s.Qoe.s_duplicates;
  Alcotest.(check (float 1e-9)) "lifetime loss" 0.15 s.Qoe.s_loss_ratio

let qoe_freeze_windows () =
  fresh ();
  let q = Qoe.collector (key ()) in
  Qoe.on_frame q ~time_ns:0 ~layer:0;
  Qoe.on_freeze_begin q ~time_ns:(sec 1.0);
  Qoe.on_freeze_begin q ~time_ns:(sec 1.2) (* already frozen: ignored *);
  Qoe.on_freeze_end q ~time_ns:(sec 2.0);
  Qoe.on_freeze_end q ~time_ns:(sec 2.5) (* not frozen: ignored *);
  Qoe.on_stall q ~from_ns:(sec 5.0) ~until_ns:(sec 5.5);
  Qoe.on_stall q ~from_ns:(sec 6.0) ~until_ns:(sec 6.0) (* empty: ignored *);
  let frozen ~from_s ~until_s =
    Qoe.frozen_ns_between q ~from_ns:(sec from_s) ~until_ns:(sec until_s)
  in
  Alcotest.(check int) "closed intervals" (sec 1.5) (frozen ~from_s:0.0 ~until_s:10.0);
  Alcotest.(check int) "partial overlap" (sec 0.75)
    (frozen ~from_s:1.5 ~until_s:5.25);
  Qoe.on_freeze_begin q ~time_ns:(sec 8.0);
  Alcotest.(check int) "open freeze counts to window end" (sec 3.5)
    (frozen ~from_s:0.0 ~until_s:10.0);
  (match Qoe.freeze_ratio_between q ~from_ns:(sec 0.0) ~until_ns:(sec 10.0) with
  | Some r -> Alcotest.(check (float 1e-9)) "freeze ratio" 0.35 r
  | None -> Alcotest.fail "expected a freeze ratio");
  let s = Qoe.summary q ~now_ns:(sec 10.0) in
  Alcotest.(check int) "freeze count" 3 s.Qoe.s_freeze_count;
  Alcotest.(check (float 1e-6)) "frozen ms" 3500.0 s.Qoe.s_frozen_ms;
  (* a collector born mid-window is judged only over its lifetime *)
  let q2 = Qoe.collector (key ~receiver:4 ()) in
  Alcotest.(check bool) "no life, no ratio" true
    (Qoe.freeze_ratio_between q2 ~from_ns:0 ~until_ns:(sec 8.0) = None);
  Qoe.on_packet q2 ~time_ns:(sec 4.0) ~size:100;
  Qoe.on_freeze_begin q2 ~time_ns:(sec 4.0);
  Qoe.on_freeze_end q2 ~time_ns:(sec 5.0);
  match Qoe.freeze_ratio_between q2 ~from_ns:0 ~until_ns:(sec 8.0) with
  | Some r -> Alcotest.(check (float 1e-9)) "clamped to lifetime" 0.25 r
  | None -> Alcotest.fail "expected a clamped freeze ratio"

let qoe_m2e_windows () =
  fresh ();
  let q = Qoe.collector (key ()) in
  Qoe.on_mouth_to_ear q ~time_ns:(sec 1.0) ~ms:100.0;
  Qoe.on_mouth_to_ear q ~time_ns:(sec 2.0) ~ms:200.0;
  Qoe.on_mouth_to_ear q ~time_ns:(sec 3.0) ~ms:300.0;
  Qoe.on_mouth_to_ear q ~time_ns:(sec 1.1) ~ms:Float.nan (* rejected *);
  let pct ~from_s ~until_s p =
    Qoe.m2e_percentile_between q ~from_ns:(sec from_s) ~until_ns:(sec until_s) ~p
  in
  Alcotest.(check (option (float 1e-9))) "p0" (Some 100.0) (pct ~from_s:0.0 ~until_s:10.0 0.0);
  Alcotest.(check (option (float 1e-9))) "p50" (Some 200.0) (pct ~from_s:0.0 ~until_s:10.0 50.0);
  Alcotest.(check (option (float 1e-9))) "p100" (Some 300.0)
    (pct ~from_s:0.0 ~until_s:10.0 100.0);
  Alcotest.(check (option (float 1e-9))) "windowed p50" (Some 300.0)
    (pct ~from_s:2.5 ~until_s:10.0 50.0);
  Alcotest.(check (option (float 1e-9))) "empty window" None
    (pct ~from_s:10.0 ~until_s:20.0 50.0);
  let bad ~from_s ~until_s =
    Qoe.m2e_bad_fraction_between q ~from_ns:(sec from_s) ~until_ns:(sec until_s)
      ~threshold_ms:150.0
  in
  Alcotest.(check (option (float 1e-9))) "bad fraction" (Some (2.0 /. 3.0))
    (bad ~from_s:0.0 ~until_s:10.0);
  Alcotest.(check (option (float 1e-9))) "windowed bad fraction" (Some 1.0)
    (bad ~from_s:2.5 ~until_s:10.0)

let qoe_traces_and_layers () =
  fresh ();
  let q = Qoe.collector (key ()) in
  List.iter
    (fun (t, id) -> Qoe.note_trace q ~time_ns:(sec t) ~trace:id)
    [ (1.0, 5); (1.0, 3); (2.0, 5); (2.0, -1); (3.0, 7) ];
  Alcotest.(check (list int)) "distinct ascending" [ 3; 5; 7 ]
    (Qoe.traces_between q ~from_ns:0 ~until_ns:(sec 10.0));
  Alcotest.(check (list int)) "windowed" [ 3; 5 ]
    (Qoe.traces_between q ~from_ns:0 ~until_ns:(sec 1.5));
  Alcotest.(check (list int)) "empty window" []
    (Qoe.traces_between q ~from_ns:(sec 3.5) ~until_ns:(sec 10.0));
  Qoe.on_frame q ~time_ns:(sec 1.0) ~layer:(-5);
  Qoe.on_frame q ~time_ns:(sec 1.1) ~layer:1;
  Qoe.on_frame q ~time_ns:(sec 1.2) ~layer:99;
  let s = Qoe.summary q ~now_ns:(sec 10.0) in
  Alcotest.(check int) "frames" 3 s.Qoe.s_frames;
  Array.iteri
    (fun l share ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "layer %d share (clamped)" l)
        (1.0 /. 3.0) share)
    s.Qoe.s_layer_share

(* --- SLO burn-rate engine --------------------------------------------------- *)

let loss_spec =
  {
    Slo.slo = "loss_test";
    objective = Slo.Loss_ratio;
    kinds = [ Qoe.Video ];
    budget = 0.01;
    long_ns = sec 8.0;
    short_ns = sec 2.0;
    fire_burn = 1.0;
  }

let slo_fire_dedup_rearm () =
  fresh ();
  let slo = Slo.create ~specs:[ loss_spec ] () in
  let q = Qoe.collector (key ()) in
  let qa = Qoe.collector (key ~kind:Qoe.Audio ()) in
  feed_packets q 0 8;
  feed_packets qa 0 8;
  (* an audio burn must not trip a Video-only spec *)
  Qoe.on_gap qa ~time_ns:(sec 7.5) ~count:8;
  Alcotest.(check int) "clean video: nothing fires" 0
    (List.length (Slo.evaluate slo ~now_ns:(sec 8.0)));
  Qoe.on_gap q ~time_ns:(sec 7.5) ~count:5;
  (match Slo.evaluate slo ~now_ns:(sec 8.0) with
  | [ a ] ->
      Alcotest.(check string) "slo label" "loss_test" a.Slo.a_slo;
      Alcotest.(check bool) "video key" true (a.Slo.a_key.Qoe.k_kind = Qoe.Video);
      Alcotest.(check int) "attribution window start" 0 a.Slo.a_from_ns;
      Alcotest.(check int) "attribution window end" (sec 8.0) a.Slo.a_until_ns;
      Alcotest.(check bool) "both windows burning" true
        (a.Slo.a_burn_long >= 1.0 && a.Slo.a_burn_short >= 1.0)
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l));
  Alcotest.(check int) "deduplicated while still burning" 0
    (List.length (Slo.evaluate slo ~now_ns:(sec 8.5)));
  feed_packets q 20 30;
  Alcotest.(check int) "healthy window re-arms silently" 0
    (List.length (Slo.evaluate slo ~now_ns:(sec 30.0)));
  Qoe.on_gap q ~time_ns:(sec 29.5) ~count:10;
  Alcotest.(check int) "second burn fires again" 1
    (List.length (Slo.evaluate slo ~now_ns:(sec 30.0)));
  Alcotest.(check int) "alert history" 2 (List.length (Slo.alerts slo))

let slo_m2e_burn () =
  fresh ();
  let spec =
    {
      loss_spec with
      Slo.slo = "m2e_test";
      objective = Slo.Mouth_to_ear { threshold_ms = 150.0 };
    }
  in
  let slo = Slo.create ~specs:[ spec ] () in
  let q = Qoe.collector (key ()) in
  for s = 0 to 7 do
    for i = 0 to 9 do
      Qoe.on_mouth_to_ear q
        ~time_ns:((s * 1_000_000_000) + (i * 50_000_000))
        ~ms:10.0
    done
  done;
  Alcotest.(check int) "tail within budget" 0
    (List.length (Slo.evaluate slo ~now_ns:(sec 8.0)));
  Qoe.on_mouth_to_ear q ~time_ns:(sec 7.2) ~ms:500.0;
  Qoe.on_mouth_to_ear q ~time_ns:(sec 7.4) ~ms:500.0;
  match Slo.evaluate slo ~now_ns:(sec 8.0) with
  | [ a ] -> Alcotest.(check string) "m2e slo fired" "m2e_test" a.Slo.a_slo
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l)

let slo_freeze_burn () =
  fresh ();
  let spec =
    { loss_spec with Slo.slo = "freeze_test"; objective = Slo.Freeze_ratio; budget = 0.005 }
  in
  let slo = Slo.create ~specs:[ spec ] () in
  let q = Qoe.collector (key ()) in
  Qoe.on_frame q ~time_ns:0 ~layer:0;
  Alcotest.(check int) "no freeze, no alert" 0
    (List.length (Slo.evaluate slo ~now_ns:(sec 8.0)));
  Qoe.on_freeze_begin q ~time_ns:(sec 6.0);
  Qoe.on_freeze_end q ~time_ns:(sec 7.5);
  match Slo.evaluate slo ~now_ns:(sec 8.0) with
  | [ a ] -> Alcotest.(check string) "freeze slo fired" "freeze_test" a.Slo.a_slo
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l)

(* --- attribution over synthesized trace evidence ---------------------------- *)

let drop ?(reason = "loss") ~link ~trace ts =
  Trace.instant ~ts ~trace ~cat:"link" "link_drop"
    ~args:[ ("reason", Trace.S reason); ("link", Trace.S link) ]

let attrib_victim_links () =
  fresh ();
  let q = Qoe.collector (key ()) in
  Qoe.set_host q "10.9.9.9";
  List.iter (fun id -> Qoe.note_trace q ~time_ns:(sec 1.0) ~trace:id) [ 1; 2; 3 ];
  (* the victim's own downlink: ids the victim never noted (the dropped
     replica never arrived), still Error by link identity — events 0..3 *)
  List.iter (fun i -> drop ~link:"down:10.9.9.9" ~trace:(100 + i) (sec 2.0)) [ 0; 1; 2; 3 ];
  (* queue overflow on the same link — events 4..6 *)
  List.iter
    (fun i -> drop ~reason:"queue" ~link:"down:10.9.9.9" ~trace:(200 + i) (sec 2.05))
    [ 0; 1; 2 ];
  (* shared fate: replicas of packets the victim received, dropped toward
     someone else — events 7..9 *)
  List.iter (fun id -> drop ~link:"down:10.0.2.2" ~trace:id (sec 2.1)) [ 1; 2; 3 ];
  (* ambient storm, untraced — events 10..29 *)
  for _ = 1 to 20 do
    drop ~link:"up:10.0.5.5" ~trace:(-1) (sec 2.2)
  done;
  (* below every threshold: must not surface *)
  drop ~link:"down:10.0.7.7" ~trace:(-1) (sec 2.3);
  (match Attrib.attribute ~victim:q ~from_ns:0 ~until_ns:(sec 4.0) () with
  | [ f1; f2; f3; f4 ] ->
      Alcotest.(check string) "worst first: victim loss" "down:10.9.9.9" f1.Attrib.f_subject;
      Alcotest.(check bool) "victim loss is Error" true (f1.Attrib.f_severity = Attrib.Error);
      Alcotest.(check bool) "loss cause" true
        (f1.Attrib.f_cause
        = Attrib.Link_loss { link = "down:10.9.9.9"; drops = 4; victim_hits = 4 });
      Alcotest.(check (list int)) "implicated victim traces" [ 100; 101; 102; 103 ]
        f1.Attrib.f_trace_ids;
      Alcotest.(check int) "first event" 0 f1.Attrib.f_first_event;
      Alcotest.(check int) "last event" 3 f1.Attrib.f_last_event;
      Alcotest.(check bool) "nothing truncated" false f1.Attrib.f_truncated;
      Alcotest.(check string) "then victim queue" "link_queue" f2.Attrib.f_kind;
      Alcotest.(check bool) "queue is Error too" true (f2.Attrib.f_severity = Attrib.Error);
      Alcotest.(check int) "queue events" 4 f2.Attrib.f_first_event;
      Alcotest.(check bool) "shared fate is Warning" true
        (f3.Attrib.f_severity = Attrib.Warning);
      Alcotest.(check bool) "shared-fate cause" true
        (f3.Attrib.f_cause
        = Attrib.Link_loss { link = "down:10.0.2.2"; drops = 3; victim_hits = 3 });
      Alcotest.(check (list int)) "shared-fate traces" [ 1; 2; 3 ] f3.Attrib.f_trace_ids;
      Alcotest.(check bool) "ambient last" true
        (f4.Attrib.f_cause
        = Attrib.Link_loss { link = "up:10.0.5.5"; drops = 20; victim_hits = 0 });
      Alcotest.(check (list int)) "ambient implicates no traces" [] f4.Attrib.f_trace_ids
  | fs -> Alcotest.failf "expected 4 findings, got %d" (List.length fs));
  Alcotest.(check int) "evidence outside the window is ignored" 0
    (List.length (Attrib.attribute ~victim:q ~from_ns:(sec 3.0) ~until_ns:(sec 4.0) ()))

let attrib_storms () =
  fresh ();
  let q = Qoe.collector (key ()) in
  for _ = 1 to 10 do
    Trace.instant ~ts:(sec 1.0) ~cat:"pre" "pre_invalidate" ~args:[ ("pre", Trace.S "pre0") ]
  done;
  for _ = 1 to 9 do
    Trace.instant ~ts:(sec 1.0) ~cat:"pre" "pre_invalidate" ~args:[ ("pre", Trace.S "pre1") ]
  done;
  for _ = 1 to 2 do
    Trace.instant ~ts:(sec 1.5) ~cat:"ctrl" "resync"
      ~args:[ ("agent", Trace.I 0); ("ops", Trace.I 7) ]
  done;
  for i = 0 to 4 do
    Trace.complete
      ~ts:(sec (1.0 +. (0.1 *. float_of_int i)))
      ~dur:1_000_000 ~cat:"rpc" "call"
      ~args:[ ("client", Trace.S "ctrl->agent0"); ("attempts", Trace.I 3) ]
  done;
  (* a clean first-attempt call is not retry evidence *)
  Trace.complete ~ts:(sec 1.9) ~dur:1_000_000 ~cat:"rpc" "call"
    ~args:[ ("client", Trace.S "ctrl->agent1"); ("attempts", Trace.I 1) ];
  match Attrib.attribute ~victim:q ~from_ns:0 ~until_ns:(sec 3.0) () with
  | [ f1; f2; f3 ] ->
      (* all Warnings, ordered by evidence volume: resync 14 ops, pre 10
         flushes, rpc 5 spans; pre1 stayed under min_pre_flushes *)
      Alcotest.(check bool) "no Errors from ambient storms" true
        (List.for_all (fun f -> f.Attrib.f_severity = Attrib.Warning) [ f1; f2; f3 ]);
      Alcotest.(check bool) "resync epochs merged" true
        (f1.Attrib.f_cause = Attrib.Resync { agent = 0; ops = 14 });
      Alcotest.(check string) "resync subject" "agent0" f1.Attrib.f_subject;
      Alcotest.(check bool) "invalidation storm" true
        (f2.Attrib.f_cause = Attrib.Pre_invalidation { pre = "pre0"; flushes = 10 });
      Alcotest.(check bool) "retry storm" true
        (f3.Attrib.f_cause
        = Attrib.Rpc_retries { client = "ctrl->agent0"; spans = 5; attempts = 10 })
  | fs -> Alcotest.failf "expected 3 findings, got %d" (List.length fs)

let attrib_truncated_by_ring_wrap () =
  fresh ();
  Trace.set_capacity 8;
  let q = Qoe.collector (key ()) in
  Qoe.set_host q "10.9.9.9";
  for i = 0 to 15 do
    drop ~link:"down:10.9.9.9" ~trace:i (sec (1.0 +. (0.1 *. float_of_int i)))
  done;
  let fs = Attrib.attribute ~victim:q ~from_ns:0 ~until_ns:(sec 5.0) () in
  Trace.set_capacity 262_144;
  match fs with
  | [ f ] ->
      Alcotest.(check bool) "only retained drops counted" true
        (f.Attrib.f_cause
        = Attrib.Link_loss { link = "down:10.9.9.9"; drops = 8; victim_hits = 8 });
      Alcotest.(check int) "evidence starts past the wrap" 8 f.Attrib.f_first_event;
      Alcotest.(check int) "through the newest event" 15 f.Attrib.f_last_event;
      Alcotest.(check bool) "flagged truncated" true f.Attrib.f_truncated;
      Alcotest.(check bool) "truncated finding round-trips" true
        (Attrib.finding_of_json (Attrib.finding_to_json f) = Some f)
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

(* --- finding JSON round-trip ------------------------------------------------ *)

let base_finding =
  {
    Attrib.f_severity = Attrib.Warning;
    f_component = "link";
    f_kind = "link_loss";
    f_subject = "down:10.0.1.3";
    f_explanation = "plain";
    f_victim = key ();
    f_cause = Attrib.Link_loss { link = "down:10.0.1.3"; drops = 1; victim_hits = 0 };
    f_trace_ids = [];
    f_first_event = 0;
    f_last_event = 5;
    f_from_ns = 0;
    f_until_ns = 1_000_000_000;
    f_truncated = false;
  }

let json_roundtrip_manual () =
  let cases =
    [
      {
        base_finding with
        Attrib.f_severity = Attrib.Error;
        f_explanation = "quote \" back\\slash\nnewline\ttab";
        f_cause = Attrib.Link_loss { link = "down:10.0.1.3"; drops = 10; victim_hits = 3 };
        f_trace_ids = [ 1; 2; 9 ];
      };
      {
        base_finding with
        Attrib.f_kind = "link_queue";
        f_cause = Attrib.Link_queue { link = "down:10.0.1.3"; drops = 4; victim_hits = 4 };
        f_truncated = true;
      };
      {
        base_finding with
        Attrib.f_component = "pre";
        f_kind = "pre_invalidation";
        f_subject = "pre[0]";
        f_cause = Attrib.Pre_invalidation { pre = "pre[0]"; flushes = 12 };
      };
      {
        base_finding with
        Attrib.f_component = "ctrl";
        f_kind = "resync";
        f_subject = "agent2";
        f_cause = Attrib.Resync { agent = 2; ops = 5 };
      };
      {
        base_finding with
        Attrib.f_component = "rpc";
        f_kind = "rpc_retries";
        f_subject = "ctrl->agent\"0\"";
        f_cause = Attrib.Rpc_retries { client = "ctrl->agent\"0\""; spans = 5; attempts = 9 };
      };
    ]
  in
  List.iter
    (fun f ->
      let js = Attrib.finding_to_json f in
      match Attrib.finding_of_json js with
      | Some g when g = f -> ()
      | Some _ -> Alcotest.failf "round-trip mismatch: %s" js
      | None -> Alcotest.failf "did not parse back: %s" js)
    cases;
  Alcotest.(check bool) "garbage rejected" true (Attrib.finding_of_json "nonsense" = None);
  Alcotest.(check bool) "partial object rejected" true
    (Attrib.finding_of_json "{\"severity\": \"error\"}" = None)

let finding_gen =
  let open QCheck.Gen in
  let chr = map Char.chr (int_range 0 255) in
  let str = string_size ~gen:chr (int_range 0 12) in
  let nat = int_range 0 1_000_000 in
  oneofl [ `Loss; `Queue; `Pre; `Resync; `Rpc ] >>= fun ck ->
  str >>= fun subject ->
  str >>= fun expl ->
  oneofl [ Attrib.Error; Attrib.Warning ] >>= fun sev ->
  nat >>= fun d1 ->
  nat >>= fun d2 ->
  list_size (int_range 0 5) nat >>= fun tids ->
  bool >>= fun trunc ->
  nat >>= fun meeting ->
  nat >>= fun receiver ->
  nat >>= fun sender ->
  oneofl [ Qoe.Camera; Qoe.Screen ] >>= fun media ->
  oneofl [ Qoe.Video; Qoe.Audio ] >>= fun kind ->
  nat >>= fun e1 ->
  nat >>= fun e2 ->
  let component, fkind, cause =
    match ck with
    | `Loss ->
        ("link", "link_loss", Attrib.Link_loss { link = subject; drops = d1; victim_hits = d2 })
    | `Queue ->
        ( "link",
          "link_queue",
          Attrib.Link_queue { link = subject; drops = d1; victim_hits = d2 } )
    | `Pre -> ("pre", "pre_invalidation", Attrib.Pre_invalidation { pre = subject; flushes = d1 })
    | `Resync -> ("ctrl", "resync", Attrib.Resync { agent = d1; ops = d2 })
    | `Rpc ->
        ( "rpc",
          "rpc_retries",
          Attrib.Rpc_retries { client = subject; spans = d1; attempts = d2 } )
  in
  return
    {
      Attrib.f_severity = sev;
      f_component = component;
      f_kind = fkind;
      f_subject = subject;
      f_explanation = expl;
      f_victim =
        {
          Qoe.k_meeting = meeting;
          k_receiver = receiver;
          k_sender = sender;
          k_media = media;
          k_kind = kind;
        };
      f_cause = cause;
      f_trace_ids = tids;
      f_first_event = e1;
      f_last_event = e2;
      f_from_ns = e1;
      f_until_ns = e2;
      f_truncated = trunc;
    }

let json_roundtrip_prop =
  QCheck.Test.make ~name:"finding json round-trips (any bytes)" ~count:300
    (QCheck.make ~print:Attrib.finding_to_json finding_gen)
    (fun f -> Attrib.finding_of_json (Attrib.finding_to_json f) = Some f)

(* --- end-to-end: the chaos scenario behind `scallop_cli qoe` ---------------- *)

let chaos_deterministic () =
  let r1 = Experiments.Qoe_chaos.compute ~quick:true () in
  let r2 = Experiments.Qoe_chaos.compute ~quick:true () in
  let open Experiments.Qoe_chaos in
  Alcotest.(check string) "injected link" "down:10.0.1.3" r1.victim_link;
  Alcotest.(check bool) "slo alerts fired" true (r1.alerts <> []);
  Alcotest.(check bool) "faulty link named" true r1.link_named;
  Alcotest.(check bool) "findings round-trip" true r1.roundtrip_ok;
  Alcotest.(check bool) "error finding blames the injected link" true
    (List.exists
       (fun f ->
         f.Attrib.f_severity = Attrib.Error
         && f.Attrib.f_kind = "link_loss"
         && f.Attrib.f_subject = r1.victim_link)
       r1.findings);
  Alcotest.(check (list string)) "same seed, same alerts"
    (List.map Slo.alert_str r1.alerts)
    (List.map Slo.alert_str r2.alerts);
  Alcotest.(check (list string)) "same seed, same findings"
    (List.map Attrib.finding_to_json r1.findings)
    (List.map Attrib.finding_to_json r2.findings)

let () =
  let t = Alcotest.test_case in
  Alcotest.run "qoe"
    [
      ( "collector",
        [
          t "loss windows" `Quick qoe_loss_windows;
          t "freeze windows" `Quick qoe_freeze_windows;
          t "mouth-to-ear windows" `Quick qoe_m2e_windows;
          t "traces and layer clamping" `Quick qoe_traces_and_layers;
        ] );
      ( "slo",
        [
          t "fire, dedup, re-arm" `Quick slo_fire_dedup_rearm;
          t "mouth-to-ear burn" `Quick slo_m2e_burn;
          t "freeze burn" `Quick slo_freeze_burn;
        ] );
      ( "attrib",
        [
          t "victim links vs shared fate vs ambient" `Quick attrib_victim_links;
          t "pre/resync/rpc storms" `Quick attrib_storms;
          t "ring wrap truncation" `Quick attrib_truncated_by_ring_wrap;
        ] );
      ( "json",
        [
          t "manual round-trips and rejects" `Quick json_roundtrip_manual;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
      ("chaos", [ t "same seed, same root cause" `Slow chaos_deterministic ]);
    ]
