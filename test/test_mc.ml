(* Model-checker tests: choice-sequence plumbing, temporal combinators,
   and the acceptance gate for the interleaving explorer — with the
   heal-race fix reverted (the heal-without-quiesce mutation), a bounded
   search must re-discover the exactly-once counterexample, and
   replaying its choice sequence must reproduce it byte-identically. *)

module Choice = Scallop_mc.Choice
module Temporal = Scallop_mc.Temporal
module Rules = Scallop_mc.Rules
module Scenario = Scallop_mc.Scenario
module Explore = Scallop_mc.Explore
module Mc_json = Scallop_mc.Mc_json
module Mutation = Scallop.Mutation
module Trace = Scallop_obs.Trace

(* --- choice sequences ------------------------------------------------------ *)

let choice_forced_then_default () =
  let c = Choice.create ~forced:[| 2; 1 |] () in
  Alcotest.(check int) "forced 0" 2 (Choice.next c ~arity:3);
  Alcotest.(check int) "forced 1" 1 (Choice.next c ~arity:3);
  Alcotest.(check int) "default beyond prefix" 0 (Choice.next c ~arity:3);
  Alcotest.(check int) "consumed" 3 (Choice.length c);
  Alcotest.(check (list (pair int int)))
    "full log" [ (2, 3); (1, 3); (0, 3) ] (Choice.log c)

let choice_out_of_range_falls_back () =
  let c = Choice.create ~forced:[| 7 |] () in
  Alcotest.(check int) "out-of-range forced -> 0" 0 (Choice.next c ~arity:3)

let choice_string_round_trip () =
  let chosen = [| 1; 2; 0; 0; 2 |] in
  Alcotest.(check (array int))
    "round trip" chosen
    (Choice.of_string (Choice.to_string chosen));
  Alcotest.(check (array int)) "empty" [||] (Choice.of_string "");
  Alcotest.check_raises "junk rejected"
    (Invalid_argument "Choice.of_string: not a choice sequence") (fun () ->
      ignore (Choice.of_string "1,x,2"))

(* --- temporal combinators -------------------------------------------------- *)

let ev ?(ts = 0) name args =
  {
    Trace.ts;
    dur = 0;
    cat = "test";
    name;
    trace = 0;
    args = List.map (fun (k, v) -> (k, Trace.S v)) args;
  }

let temporal_always () =
  let rule =
    Temporal.always ~name:"no-bang" ~doc:"" (fun ~idx:_ e ->
        if Temporal.is e "bang" then Some "saw bang" else None)
  in
  let c = Temporal.create [ rule ] in
  Temporal.feed c (ev "ok" []);
  Temporal.feed c (ev ~ts:7 "bang" []);
  match Temporal.finish c with
  | [ v ] ->
      Alcotest.(check string) "rule" "no-bang" v.Temporal.v_rule;
      Alcotest.(check int) "ts" 7 v.Temporal.v_ts;
      Alcotest.(check (list int)) "event index" [ 1 ] v.Temporal.v_events
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let temporal_eventually () =
  let mk () =
    Temporal.eventually ~name:"ack-everything" ~doc:""
      ~trigger:(fun e ->
        if Temporal.is e "req" then Temporal.arg_s e "id" else None)
      ~satisfy:(fun e ->
        if Temporal.is e "ack" then Temporal.arg_s e "id" else None)
  in
  let c = Temporal.create [ mk () ] in
  Temporal.feed c (ev "req" [ ("id", "a") ]);
  Temporal.feed c (ev "ack" [ ("id", "a") ]);
  Alcotest.(check int) "satisfied" 0 (List.length (Temporal.finish c));
  let c = Temporal.create [ mk () ] in
  Temporal.feed c (ev "req" [ ("id", "b") ]);
  Alcotest.(check int) "open obligation" 1 (List.length (Temporal.finish c))

let temporal_precedes () =
  let mk () =
    Temporal.precedes ~name:"grant-before-use" ~doc:""
      ~first:(fun e ->
        if Temporal.is e "grant" then Temporal.arg_s e "id" else None)
      ~then_:(fun e ->
        if Temporal.is e "use" then Temporal.arg_s e "id" else None)
  in
  let c = Temporal.create [ mk () ] in
  Temporal.feed c (ev "grant" [ ("id", "a") ]);
  Temporal.feed c (ev "use" [ ("id", "a") ]);
  Alcotest.(check int) "ordered" 0 (List.length (Temporal.finish c));
  let c = Temporal.create [ mk () ] in
  Temporal.feed c (ev "use" [ ("id", "b") ]);
  Alcotest.(check int) "unordered" 1 (List.length (Temporal.finish c))

(* --- the acceptance gate --------------------------------------------------- *)

(* Keep test budgets tight: the heal race is reachable with fault-grid
   choices alone (positions 0..7), so a shallow pass over a couple dozen
   schedules finds it in a few seconds. *)
let small = { Explore.b_max_runs = 40; b_max_depth = 8; b_initial_depth = 8 }

let heal_race_rediscovered () =
  let config =
    { Scenario.default with Scenario.sc_mutations = [ Mutation.Heal_without_quiesce ] }
  in
  let result = Explore.search_scenario ~budget:small ~config () in
  match result.Explore.r_counterexample with
  | None ->
      Alcotest.failf
        "heal-without-quiesce not found in %d schedule(s)"
        result.Explore.r_stats.Explore.s_runs
  | Some o ->
      let rules =
        List.map (fun v -> v.Temporal.v_rule) o.Scenario.o_violations
      in
      Alcotest.(check bool)
        "exactly-once-effect violated" true
        (List.mem "exactly-once-effect" rules);
      Alcotest.(check bool)
        "quiet-heal violated" true
        (List.mem "quiet-heal" rules);
      (* replay the emitted choice sequence twice: same violations, same
         end state, byte-identical JSON rendering *)
      let replay () =
        Mc_json.outcome (Scenario.run ~config ~forced:o.Scenario.o_chosen ())
      in
      let a = replay () and b = replay () in
      Alcotest.(check string) "replay deterministic" a b;
      Alcotest.(check string) "replay reproduces the counterexample" (Mc_json.outcome o) a

let baseline_shallow_clean () =
  let result = Explore.search_scenario ~budget:{ small with Explore.b_max_runs = 12 } () in
  (match result.Explore.r_counterexample with
  | None -> ()
  | Some o ->
      Alcotest.failf "baseline violation: %s"
        (String.concat "; "
           (List.map
              (fun v -> v.Temporal.v_rule ^ ": " ^ v.Temporal.v_detail)
              o.Scenario.o_violations)));
  Alcotest.(check bool) "ran schedules" true (result.Explore.r_stats.Explore.s_runs > 0)

let () =
  Alcotest.run "mc"
    [
      ( "choice",
        [
          Alcotest.test_case "forced then default" `Quick choice_forced_then_default;
          Alcotest.test_case "out of range" `Quick choice_out_of_range_falls_back;
          Alcotest.test_case "string round trip" `Quick choice_string_round_trip;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "always" `Quick temporal_always;
          Alcotest.test_case "eventually" `Quick temporal_eventually;
          Alcotest.test_case "precedes" `Quick temporal_precedes;
        ] );
      ( "explore",
        [
          Alcotest.test_case "heal race rediscovered and replayable" `Slow
            heal_race_rediscovered;
          Alcotest.test_case "shallow baseline clean" `Slow baseline_shallow_clean;
        ] );
    ]
