(* Observability layer: metrics registry semantics, trace gating /
   sampling / ring buffer, and the end-to-end determinism contract — two
   same-seed simulated meetings must serialize to byte-identical Chrome
   trace JSON, and a tracing-disabled run must never touch the sink. *)

module Metrics = Scallop_obs.Metrics
module Trace = Scallop_obs.Trace

let fresh () =
  Metrics.reset ();
  Trace.reset ();
  Trace.set_level Trace.Off;
  Trace.set_sample_every 1

(* --- Metrics registry ------------------------------------------------------ *)

let metrics_counter_basics () =
  fresh ();
  let c = Metrics.counter ~labels:[ ("k", "v") ] ~help:"test counter" "test_pkts" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c);
  let dump = Metrics.dump () in
  let has needle =
    let rec scan i =
      i + String.length needle <= String.length dump
      && (String.sub dump i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "dump has sample" true (has "test_pkts{k=\"v\"} 42");
  Alcotest.(check bool) "dump has help" true (has "# HELP test_pkts test counter")

let metrics_replace_semantics () =
  fresh ();
  let c1 = Metrics.counter "re_reg" in
  Metrics.add c1 7;
  let c2 = Metrics.counter "re_reg" in
  Alcotest.(check int) "new handle zeroed" 0 (Metrics.value c2);
  Alcotest.(check int) "old handle detached but live" 7 (Metrics.value c1);
  Metrics.incr c2;
  let dump = Metrics.dump () in
  Alcotest.(check bool) "dump shows replacement" true
    (let needle = "re_reg 1" in
     let rec scan i =
       i + String.length needle <= String.length dump
       && (String.sub dump i (String.length needle) = needle || scan (i + 1))
     in
     scan 0)

let metrics_dump_sorted_deterministic () =
  fresh ();
  Metrics.add (Metrics.counter "zeta") 1;
  Metrics.add (Metrics.counter "alpha") 2;
  Metrics.set (Metrics.gauge "mid") 3.5;
  let d1 = Metrics.dump () in
  let d2 = Metrics.dump () in
  Alcotest.(check string) "dump is stable" d1 d2;
  let idx needle =
    let rec scan i =
      if i + String.length needle > String.length d1 then -1
      else if String.sub d1 i (String.length needle) = needle then i
      else scan (i + 1)
    in
    scan 0
  in
  let a = idx "alpha" and m = idx "mid" and z = idx "zeta" in
  Alcotest.(check bool) "all present" true (a >= 0 && m >= 0 && z >= 0);
  Alcotest.(check bool) "sorted by name" true (a < m && m < z)

let metrics_callback_polls () =
  fresh ();
  let v = ref 1.0 in
  Metrics.register_callback "polled" (fun () -> !v);
  let has dump needle =
    let rec scan i =
      i + String.length needle <= String.length dump
      && (String.sub dump i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "first poll" true (has (Metrics.dump ()) "polled 1");
  v := 9.0;
  Alcotest.(check bool) "re-polled at dump" true (has (Metrics.dump ()) "polled 9")

let contains haystack needle =
  let rec scan i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || scan (i + 1))
  in
  scan 0

(* The exact Prometheus exposition of a histogram — cumulative
   [_bucket{le=...}] samples ending at +Inf, then [_sum]/[_count]. A
   golden string so any drift in the text form is a deliberate choice. *)
let metrics_histogram_golden_dump () =
  fresh ();
  let h =
    Metrics.histogram ~labels:[ ("q", "a") ] ~help:"test histogram"
      ~bounds:[| 1.0; 2.0; 4.0 |] "hist_gold"
  in
  List.iter (Scallop_util.Stats.Histogram.observe h) [ 0.5; 1.5; 3.0; 9.0 ];
  let expected =
    "# HELP hist_gold test histogram\n\
     # TYPE hist_gold histogram\n\
     hist_gold_bucket{q=\"a\",le=\"1\"} 1\n\
     hist_gold_bucket{q=\"a\",le=\"2\"} 2\n\
     hist_gold_bucket{q=\"a\",le=\"4\"} 3\n\
     hist_gold_bucket{q=\"a\",le=\"+Inf\"} 4\n\
     hist_gold_sum{q=\"a\"} 14\n\
     hist_gold_count{q=\"a\"} 4\n"
  in
  Alcotest.(check string) "golden text dump" expected (Metrics.dump ())

let metrics_histogram_json_buckets () =
  fresh ();
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0 |] "hist_json" in
  let empty = Metrics.dump_json () in
  Alcotest.(check bool) "empty histogram shape" true
    (contains empty "{\"count\": 0, \"sum\": 0, \"buckets\": []}");
  List.iter (Scallop_util.Stats.Histogram.observe h) [ 1.0; 5.0 ];
  let json = Metrics.dump_json () in
  Alcotest.(check bool) "cumulative buckets in JSON" true
    (contains json "\"buckets\": [[\"1\", 1], [\"2\", 1], [\"+Inf\", 2]]");
  Alcotest.(check bool) "count" true (contains json "\"count\": 2")

let metrics_adopted_histogram () =
  fresh ();
  let h = Scallop_util.Stats.Histogram.create ~bounds:[| 10.0 |] () in
  Scallop_util.Stats.Histogram.observe h 3.0;
  (* register_histogram adopts the live handle instead of zeroing it *)
  Metrics.register_histogram "adopted" h;
  Alcotest.(check bool) "prior observations visible" true
    (contains (Metrics.dump ()) "adopted_count 1")

(* --- Trace gating and sink ------------------------------------------------- *)

let trace_off_writes_nothing () =
  fresh ();
  Trace.set_level Trace.Off;
  if Trace.enabled Trace.Rpc then Trace.instant ~ts:0 ~cat:"rpc" "nope";
  if Trace.enabled Trace.Packet then Trace.instant ~ts:0 ~cat:"dp" "nope";
  Alcotest.(check int) "no sink writes when off" 0 (Trace.writes ());
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

let trace_level_ranking () =
  fresh ();
  Trace.set_level Trace.Rpc;
  Alcotest.(check bool) "rpc on" true (Trace.enabled Trace.Rpc);
  Alcotest.(check bool) "packet off" false (Trace.enabled Trace.Packet);
  Trace.set_level Trace.Packet;
  Alcotest.(check bool) "packet on" true (Trace.enabled Trace.Packet);
  Alcotest.(check bool) "verbose off" false (Trace.enabled Trace.Verbose);
  Trace.set_level Trace.Verbose;
  Alcotest.(check bool) "verbose on" true (Trace.enabled Trace.Verbose)

let trace_sampling () =
  fresh ();
  Trace.set_level Trace.Packet;
  Trace.set_sample_every 3;
  let ids = List.init 9 (fun _ -> Trace.next_packet_id ()) in
  let sampled = List.filter (fun id -> id >= 0) ids in
  Alcotest.(check int) "1-in-3 sampled" 3 (List.length sampled);
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2 ] sampled

let trace_timeline_filters () =
  fresh ();
  Trace.set_level Trace.Packet;
  Trace.instant ~ts:10 ~trace:0 ~cat:"dp" "ingress";
  Trace.instant ~ts:11 ~trace:1 ~cat:"dp" "ingress";
  Trace.instant ~ts:12 ~trace:0 ~cat:"dp" "egress";
  let tl = Trace.timeline ~trace:0 in
  Alcotest.(check int) "two events for trace 0" 2 (List.length tl);
  Alcotest.(check (list string)) "ordered" [ "ingress"; "egress" ]
    (List.map (fun (e : Trace.event) -> e.Trace.name) tl)

let trace_ring_drops () =
  fresh ();
  Trace.set_level Trace.Packet;
  Trace.set_capacity 4;
  for i = 0 to 9 do
    Trace.instant ~ts:i ~cat:"dp" "e"
  done;
  Alcotest.(check int) "all writes counted" 10 (Trace.writes ());
  Alcotest.(check int) "overwritten counted" 6 (Trace.dropped ());
  let evs = Trace.events () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length evs);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Trace.event) -> e.Trace.ts) evs);
  Trace.set_capacity 262_144

let trace_dropped_metric_exported () =
  fresh ();
  (* Metrics.reset in [fresh] wiped the module-init registration *)
  Trace.register_metrics ();
  Trace.set_level Trace.Packet;
  Trace.set_capacity 4;
  for i = 0 to 9 do
    Trace.instant ~ts:i ~cat:"dp" "e"
  done;
  let dump = Metrics.dump () in
  Alcotest.(check bool) "dropped total exported" true
    (contains dump "scallop_trace_dropped_total 6");
  Alcotest.(check bool) "writes total exported" true
    (contains dump "scallop_trace_writes_total 10");
  Alcotest.(check int) "first retained index" 6 (Trace.first_retained ());
  Alcotest.(check (list int)) "events indexed globally" [ 6; 7; 8; 9 ]
    (List.map fst (Trace.events_indexed ()));
  Trace.set_capacity 262_144

(* --- End-to-end determinism ------------------------------------------------ *)

let traced_meeting ~seed =
  fresh ();
  Trace.set_level Trace.Packet;
  let stack = Experiments.Common.make_scallop ~seed () in
  let _mid, _clients =
    Experiments.Common.scallop_meeting stack ~participants:3 ~senders:3 ()
  in
  Experiments.Common.run_for stack.Experiments.Common.engine ~seconds:1.0;
  let json = Trace.to_chrome_json () in
  Trace.set_level Trace.Off;
  json

let trace_same_seed_byte_identical () =
  let a = traced_meeting ~seed:5 in
  let b = traced_meeting ~seed:5 in
  Alcotest.(check int) "same length" (String.length a) (String.length b);
  Alcotest.(check bool) "byte-identical" true (String.equal a b);
  Alcotest.(check bool) "non-trivial" true (String.length a > 10_000)

let trace_covers_packet_lifecycle () =
  let json = traced_meeting ~seed:5 in
  let has needle =
    let rec scan i =
      i + String.length needle <= String.length json
      && (String.sub json i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (has needle))
    [
      "\"ingress\"";
      "\"pre_fanout\"";
      "\"egress\"";
      "\"link_enqueue\"";
      "\"link_deliver\"";
      "\"client_rx\"";
      "\"cat\":\"rpc\"";
      "\"traceEvents\"";
    ]

let trace_disabled_run_untouched () =
  fresh ();
  Trace.set_level Trace.Off;
  let stack = Experiments.Common.make_scallop ~seed:5 () in
  let _mid, _clients =
    Experiments.Common.scallop_meeting stack ~participants:3 ~senders:3 ()
  in
  Experiments.Common.run_for stack.Experiments.Common.engine ~seconds:1.0;
  Alcotest.(check int) "zero sink writes" 0 (Trace.writes ());
  Alcotest.(check int) "zero drops" 0 (Trace.dropped ())

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick metrics_counter_basics;
          Alcotest.test_case "replace semantics" `Quick metrics_replace_semantics;
          Alcotest.test_case "sorted deterministic dump" `Quick
            metrics_dump_sorted_deterministic;
          Alcotest.test_case "callback gauge" `Quick metrics_callback_polls;
          Alcotest.test_case "histogram golden text dump" `Quick
            metrics_histogram_golden_dump;
          Alcotest.test_case "histogram JSON buckets" `Quick
            metrics_histogram_json_buckets;
          Alcotest.test_case "adopted histogram" `Quick metrics_adopted_histogram;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off writes nothing" `Quick trace_off_writes_nothing;
          Alcotest.test_case "level ranking" `Quick trace_level_ranking;
          Alcotest.test_case "counter sampling" `Quick trace_sampling;
          Alcotest.test_case "timeline filter" `Quick trace_timeline_filters;
          Alcotest.test_case "ring overwrite" `Quick trace_ring_drops;
          Alcotest.test_case "dropped metric exported" `Quick
            trace_dropped_metric_exported;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed byte-identical" `Quick
            trace_same_seed_byte_identical;
          Alcotest.test_case "packet lifecycle coverage" `Quick
            trace_covers_packet_lifecycle;
          Alcotest.test_case "disabled run untouched" `Quick
            trace_disabled_run_untouched;
        ] );
    ]
