(* Unit tests for the durable intent journal: fencing arbitration
   (stale appenders are deposed, epochs are strictly monotone), dense
   log indices, suffix reads, snapshot compaction bookkeeping, the dump
   rendering the CI chaos gate archives, and the seeded
   skip-fencing-check defect that disables the deposition. *)

module J = Scallop.Journal
module Mutation = Scallop.Mutation

let op_names entries = List.map (fun (e : J.entry) -> J.op_name e.J.e_op) entries

(* --- fencing ------------------------------------------------------------- *)

let fencing_deposes_stale_appender () =
  let j : int J.t = J.create () in
  Alcotest.(check int) "no fence granted yet" 0 (J.fence j);
  let f1 = J.acquire_fence j in
  Alcotest.(check int) "first epoch" 1 f1;
  Alcotest.(check int) "append under the current fence" 0
    (J.append j ~fence:f1 J.Create_meeting);
  let f2 = J.acquire_fence j in
  Alcotest.(check bool) "epochs strictly increase" true (f2 > f1);
  Alcotest.(check int) "journal reports the new holder" f2 (J.fence j);
  Alcotest.check_raises "the old holder is deposed on its next write"
    (J.Deposed { held = f1; current = f2 })
    (fun () -> ignore (J.append j ~fence:f1 (J.Leave { pid = 3 })));
  Alcotest.(check int) "the refused append left no trace" 0 (J.head j);
  Alcotest.(check int) "refusals don't count as appends" 1 (J.appended j);
  Alcotest.(check int) "the new holder appends fine" 1
    (J.append j ~fence:f2 (J.Leave { pid = 3 }))

let acquire_fence_is_monotone () =
  let j : unit J.t = J.create () in
  let prev = ref 0 in
  for _ = 1 to 50 do
    let f = J.acquire_fence j in
    if f <= !prev then Alcotest.failf "fence regressed: %d after %d" f !prev;
    prev := f
  done

(* --- log shape ----------------------------------------------------------- *)

let indices_dense_and_suffix_ordered () =
  let j : unit J.t = J.create () in
  let f = J.acquire_fence j in
  List.iteri
    (fun i op ->
      Alcotest.(check int) "dense index" i (J.append j ~fence:f op))
    [
      J.Create_meeting;
      J.Start_screen { pid = 7 };
      J.Stop_screen { pid = 7 };
      J.Leave { pid = 7 };
    ];
  Alcotest.(check int) "head" 3 (J.head j);
  Alcotest.(check int) "live length" 4 (J.length j);
  Alcotest.(check (list string))
    "full replay from -1"
    [ "create-meeting"; "start-screen"; "stop-screen"; "leave" ]
    (op_names (J.entries_after j (-1)));
  Alcotest.(check (list string))
    "suffix past index 1"
    [ "stop-screen"; "leave" ]
    (op_names (J.entries_after j 1));
  Alcotest.(check (list string)) "empty past head" [] (op_names (J.entries_after j 3));
  (* every entry remembers the epoch it was appended under *)
  List.iter
    (fun (e : J.entry) -> Alcotest.(check int) "entry fence" f e.J.e_fence)
    (J.entries_after j (-1))

(* --- compaction ---------------------------------------------------------- *)

let compaction_drops_covered_prefix () =
  let j : int J.t = J.create () in
  let f = J.acquire_fence j in
  for i = 0 to 9 do
    ignore (J.append j ~fence:f (J.Leave { pid = i }))
  done;
  Alcotest.(check (option (pair int int))) "no snapshot yet" None (J.snapshot j);
  J.install_snapshot j ~index:5 42;
  Alcotest.(check (option (pair int int)))
    "snapshot recorded with its covered index"
    (Some (42, 5))
    (J.snapshot j);
  Alcotest.(check int) "head never moves backwards" 9 (J.head j);
  Alcotest.(check int) "covered entries dropped" 4 (J.length j);
  Alcotest.(check int) "truncated counter" 6 (J.truncated j);
  Alcotest.(check int) "compaction counter" 1 (J.compactions j);
  Alcotest.(check int) "total appends unaffected" 10 (J.appended j);
  (match J.entries_after j (-1) with
  | { J.e_index = 6; _ } :: _ -> ()
  | e :: _ -> Alcotest.failf "live log starts at %d, expected 6" e.J.e_index
  | [] -> Alcotest.fail "live log empty after partial compaction");
  (* appends continue with dense indices after the snapshot *)
  Alcotest.(check int) "post-snapshot index" 10
    (J.append j ~fence:f (J.Leave { pid = 10 }));
  Alcotest.check_raises "snapshot past head rejected"
    (Invalid_argument "Journal.install_snapshot: index 99 beyond head 10")
    (fun () -> J.install_snapshot j ~index:99 0)

let dump_renders_snapshot_then_live_log () =
  let j : int J.t = J.create () in
  let f = J.acquire_fence j in
  ignore (J.append j ~fence:f J.Create_meeting);
  ignore (J.append j ~fence:f (J.Start_screen { pid = 2 }));
  J.install_snapshot j ~index:0 7;
  let d = J.dump j in
  let has needle =
    let n = String.length needle and l = String.length d in
    let rec go i = i + n <= l && (String.sub d i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header line" true
    (has "journal fence=1 appended=2 compactions=1 truncated=1");
  Alcotest.(check bool) "snapshot marker" true (has "snapshot through=0");
  Alcotest.(check bool) "live entry line" true
    (has "000001 fence=1 start-screen pid=2");
  Alcotest.(check bool) "compacted entry gone" true (not (has "create-meeting"))

(* --- the seeded defect --------------------------------------------------- *)

let skip_fencing_check_admits_stale_appends () =
  let j : unit J.t = J.create () in
  let f1 = J.acquire_fence j in
  let f2 = J.acquire_fence j in
  Mutation.disable_all ();
  Mutation.enable Mutation.Skip_fencing_check;
  Fun.protect ~finally:Mutation.disable_all (fun () ->
      (* with the check disabled the deposed epoch writes anyway — the
         split-brain interleaving the explorer must rediscover *)
      Alcotest.(check int) "stale append admitted" 0
        (J.append j ~fence:f1 J.Create_meeting);
      Alcotest.(check int) "current epoch interleaves" 1
        (J.append j ~fence:f2 (J.Leave { pid = 0 })));
  (* and with the mutation off again, the same stale epoch is refused *)
  Alcotest.check_raises "refusal restored"
    (J.Deposed { held = f1; current = f2 })
    (fun () -> ignore (J.append j ~fence:f1 J.Create_meeting))

let () =
  Alcotest.run "journal"
    [
      ( "fencing",
        [
          Alcotest.test_case "stale appender deposed" `Quick
            fencing_deposes_stale_appender;
          Alcotest.test_case "epochs strictly monotone" `Quick
            acquire_fence_is_monotone;
          Alcotest.test_case "skip-fencing-check admits stale appends" `Quick
            skip_fencing_check_admits_stale_appends;
        ] );
      ( "log",
        [
          Alcotest.test_case "dense indices, ordered suffixes" `Quick
            indices_dense_and_suffix_ordered;
          Alcotest.test_case "compaction drops the covered prefix" `Quick
            compaction_drops_covered_prefix;
          Alcotest.test_case "dump renders snapshot then live log" `Quick
            dump_renders_snapshot_then_live_log;
        ] );
    ]
