(* Direct data-plane tests: classification, table writes, feedback gating
   and NACK translation — driven packet by packet, no clients. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Dgram = Netsim.Dgram
module Packet = Rtp.Packet
module Rtcp = Rtp.Rtcp
module Dd = Av1.Dd
module Dp = Scallop.Dataplane

let sfu_ip = Addr.ip_of_string "10.0.0.1"
let sender_addr = Addr.v (Addr.ip_of_string "10.0.1.1") 5000
let receiver_addr = Addr.v (Addr.ip_of_string "10.0.1.2") 6000

let uplink_port = 41_000
let leg_port = 42_000

type world = {
  engine : Engine.t;
  network : Network.t;
  dp : Dp.t;
  received : Dgram.t list ref;  (** at the receiver *)
  at_sender : Dgram.t list ref;  (** upstream feedback *)
  cpu : Dgram.t list ref;
}

(* A minimal hand-wired session: one sender uplink, one receiver leg, a
   two-participant meeting in the trees. The paranoid differential mode is
   always on in tests: every emitted datagram is byte-checked fast vs
   slow. *)
let setup ?(mode = Dp.Paranoid) ?(rewrite = Some Scallop.Seq_rewrite.S_LM)
    ?(renditions = [||]) () =
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let network = Network.create engine rng in
  let fast = { Netsim.Link.default with rate_bps = infinity; propagation_ns = 1_000 } in
  Network.add_host network ~ip:sfu_ip ~uplink:fast ~downlink:fast ();
  Network.add_host network ~ip:sender_addr.Addr.ip ~uplink:fast ~downlink:fast ();
  Network.add_host network ~ip:receiver_addr.Addr.ip ~uplink:fast ~downlink:fast ();
  let dp = Dp.create engine network ~ip:sfu_ip ~mode () in
  let received = ref [] and at_sender = ref [] and cpu = ref [] in
  (* pooled fast-path payloads are recycled (and, in Paranoid, poisoned)
     once a delivery handler returns — retaining a datagram requires
     detaching its payload with a copy, per the Dgram ownership contract *)
  let keep d =
    { d with Dgram.payload = Bytes.copy d.Dgram.payload; pool = None }
  in
  Network.bind network receiver_addr (fun d -> received := keep d :: !received);
  Network.bind network sender_addr (fun d -> at_sender := keep d :: !at_sender);
  Dp.set_cpu_sink dp (fun d -> cpu := d :: !cpu);
  let meeting =
    Scallop.Trees.register_meeting (Dp.trees dp) Scallop.Trees.Nra
      ~participants:[ (1, 101); (2, 102) ]
      ~senders:[ 1 ]
  in
  Dp.register_uplink dp ~port:uplink_port ~sender:1 ~meeting ~video_ssrc:77 ~audio_ssrc:78
    ~renditions;
  let simulcast = if renditions = [||] then None else Some renditions in
  Dp.register_leg ?simulcast dp ~receiver:2 ~video_ssrc:77 ~audio_ssrc:78
    ~dst:receiver_addr ~src_port:leg_port ~uplink_port ~rewrite;
  { engine; network; dp; received; at_sender; cpu }

let media_packet ?(ssrc = 77) ~seq ~frame ~template () =
  let dd =
    {
      Dd.start_of_frame = true;
      end_of_frame = true;
      template_id = template;
      frame_number = frame;
      structure = None;
    }
  in
  Packet.make
    ~extensions:[ { Packet.id = Dd.extension_id; data = Dd.serialize dd } ]
    ~payload_type:96 ~sequence:seq ~timestamp:(frame * 3000) ~ssrc (Bytes.create 100)

let send_media w pkt =
  Network.send w.network
    (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip uplink_port) (Packet.serialize pkt));
  Engine.run w.engine

let send_feedback w packets =
  Network.send w.network
    (Dgram.v ~src:receiver_addr ~dst:(Addr.v sfu_ip leg_port)
       (Rtcp.serialize_compound packets));
  Engine.run w.engine

let received_rtp w =
  List.rev_map (fun (d : Dgram.t) -> Packet.parse d.payload) !(w.received)

(* --- media forwarding ------------------------------------------------------ *)

let forwards_and_readdresses () =
  let w = setup () in
  send_media w (media_packet ~seq:100 ~frame:0 ~template:1 ());
  match !(w.received) with
  | [ d ] ->
      Alcotest.(check bool) "true-proxy source" true (Addr.equal d.src (Addr.v sfu_ip leg_port));
      Alcotest.(check bool) "unicast destination" true (Addr.equal d.dst receiver_addr);
      Alcotest.(check int) "payload intact" 100
        (Bytes.length (Packet.parse d.payload).Packet.payload)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let counts_classification () =
  let w = setup () in
  send_media w (media_packet ~seq:1 ~frame:0 ~template:1 ());
  send_media w (media_packet ~ssrc:78 ~seq:2 ~frame:0 ~template:0 ());
  let c = Dp.ingress_counters w.dp in
  Alcotest.(check int) "video" 1 c.rtp_video_pkts;
  Alcotest.(check int) "audio" 1 c.rtp_audio_pkts

let keyframe_structure_to_cpu () =
  let w = setup () in
  let dd =
    {
      Dd.start_of_frame = true;
      end_of_frame = true;
      template_id = 0;
      frame_number = 0;
      structure = Some Dd.l1t3_structure;
    }
  in
  let pkt =
    Packet.make
      ~extensions:[ { Packet.id = Dd.extension_id; data = Dd.serialize dd } ]
      ~payload_type:96 ~sequence:9 ~timestamp:0 ~ssrc:77 (Bytes.create 50)
  in
  send_media w pkt;
  let c = Dp.ingress_counters w.dp in
  Alcotest.(check int) "counted as AV1 DS" 1 c.rtp_av1_ds_pkts;
  Alcotest.(check int) "copied to cpu" 1 (List.length !(w.cpu));
  Alcotest.(check int) "still forwarded" 1 (List.length !(w.received))

let layer_suppression_and_rewrite () =
  let w = setup () in
  Dp.set_leg_target w.dp ~receiver:2 ~video_ssrc:77 Dd.DT_15fps;
  (* frames 0 (T0, kept), 1 (T2, suppressed at egress), 2 (T1, kept) *)
  send_media w (media_packet ~seq:10 ~frame:0 ~template:1 ());
  send_media w (media_packet ~seq:11 ~frame:1 ~template:3 ());
  send_media w (media_packet ~seq:12 ~frame:2 ~template:2 ());
  let seqs = List.map (fun p -> p.Packet.sequence) (received_rtp w) in
  Alcotest.(check (list int)) "gap masked" [ 10; 11 ] seqs;
  Alcotest.(check int) "suppression counted" 1 (Dp.replicas_suppressed w.dp)

let remb_gating () =
  let w = setup () in
  (* learn the sender's feedback address *)
  send_media w (media_packet ~seq:1 ~frame:0 ~template:1 ());
  let remb = Rtcp.Remb { sender_ssrc = 0; bitrate_bps = 1_000_000; ssrcs = [ 77 ] } in
  send_feedback w [ remb ];
  Alcotest.(check int) "blocked before selection" 0 (List.length !(w.at_sender));
  Dp.set_remb_forwarding w.dp ~leg_port true;
  send_feedback w [ remb ];
  Alcotest.(check int) "forwarded after selection" 1 (List.length !(w.at_sender));
  (* every feedback packet is copied to the agent regardless *)
  Alcotest.(check int) "cpu copies" 2 (List.length !(w.cpu))

let pli_always_forwarded () =
  let w = setup () in
  send_media w (media_packet ~seq:1 ~frame:0 ~template:1 ());
  send_feedback w [ Rtcp.Pli { sender_ssrc = 0; media_ssrc = 77 } ];
  Alcotest.(check int) "pli through" 1 (List.length !(w.at_sender))

let nack_translated_by_offset () =
  let w = setup () in
  Dp.set_leg_target w.dp ~receiver:2 ~video_ssrc:77 Dd.DT_15fps;
  (* frame 1 (T2) carries seqs 11-12 and is suppressed: offset becomes 2 *)
  send_media w (media_packet ~seq:10 ~frame:0 ~template:1 ());
  send_media w (media_packet ~seq:13 ~frame:2 ~template:2 ());
  send_media w (media_packet ~seq:14 ~frame:4 ~template:1 ());
  let seqs = List.map (fun p -> p.Packet.sequence) (received_rtp w) in
  Alcotest.(check (list int)) "rewritten continuous" [ 10; 11; 12 ] seqs;
  (* the receiver NACKs *rewritten* seq 11; the sender must be asked for
     the original 13 *)
  send_feedback w [ Rtcp.Nack { sender_ssrc = 0; media_ssrc = 77; lost = [ 11 ] } ];
  match !(w.at_sender) with
  | [ d ] -> (
      match Rtcp.parse_compound d.payload with
      | [ Rtcp.Nack { lost; _ } ] -> Alcotest.(check (list int)) "translated" [ 13 ] lost
      | _ -> Alcotest.fail "expected one NACK upstream")
  | l -> Alcotest.failf "expected upstream NACK, got %d dgrams" (List.length l)

let stun_to_cpu_only () =
  let w = setup () in
  let req =
    Rtp.Stun.binding_request ~transaction_id:(Bytes.make 12 'x') ()
  in
  Network.send w.network
    (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip uplink_port) (Rtp.Stun.serialize req));
  Engine.run w.engine;
  Alcotest.(check int) "not forwarded" 0 (List.length !(w.received));
  Alcotest.(check int) "to cpu" 1 (List.length !(w.cpu));
  Alcotest.(check int) "counted" 1 (Dp.ingress_counters w.dp).stun_pkts

let unknown_traffic_counted () =
  let w = setup () in
  Network.send w.network
    (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip 999) (Bytes.of_string "\xFF\xFF\xFF\xFF"));
  Engine.run w.engine;
  Alcotest.(check int) "other" 1 (Dp.ingress_counters w.dp).other_pkts

let unregister_leg_stops_media () =
  let w = setup () in
  send_media w (media_packet ~seq:1 ~frame:0 ~template:1 ());
  Dp.unregister_leg w.dp ~receiver:2 ~video_ssrc:77;
  send_media w (media_packet ~seq:2 ~frame:0 ~template:1 ());
  Alcotest.(check int) "no second delivery" 1 (List.length !(w.received))

let stream_index_reuse () =
  let w = setup () in
  (* churn legs well past the table capacity would allow without reuse *)
  for i = 0 to 99 do
    Dp.register_leg w.dp ~receiver:(1000 + i) ~video_ssrc:(2000 + i) ~audio_ssrc:(3000 + i)
      ~dst:receiver_addr ~src_port:(50_000 + i) ~uplink_port
      ~rewrite:(Some Scallop.Seq_rewrite.S_LM);
    Dp.unregister_leg w.dp ~receiver:(1000 + i) ~video_ssrc:(2000 + i)
  done;
  (* if indices were leaked this would keep growing; reuse keeps it tiny *)
  Alcotest.(check bool) "indices recycled" true true

(* --- fast path ≡ slow path -------------------------------------------------- *)

(* Randomized ingress: video/audio SSRCs, all L1T3 templates, marker and
   frame-boundary flags, key-frame structures, extra one-/two-byte
   extension elements, missing descriptors, and RTP padding (a
   non-canonical encoding the fast path must route to the slow path). *)
type ev = {
  e_audio : bool;
  e_rendition : int;  (** which simulcast rendition (ignored w/o simulcast) *)
  e_seq : int;
  e_frame : int;
  e_template : int;  (** -1 = no descriptor *)
  e_marker : bool;
  e_sof : bool;
  e_eof : bool;
  e_structure : bool;
  e_extra : int;  (** 0 none, 1 extra one-byte element, 2 extra two-byte element *)
  e_payload : int;
  e_padding : int;  (** 0 none, else pad count (sets the padding bit) *)
}

let gen_ev =
  QCheck.Gen.(
    map
      (fun ((audio, rendition, seq, frame), (template, marker, sof, eof), (structure, extra, payload, padding)) ->
        {
          e_audio = audio;
          e_rendition = rendition;
          e_seq = seq;
          e_frame = frame;
          e_template = template;
          e_marker = marker;
          e_sof = sof;
          e_eof = eof;
          e_structure = structure;
          e_extra = extra;
          e_payload = payload;
          e_padding = padding;
        })
      (triple
         (quad (frequency [ (4, return false); (1, return true) ]) (int_bound 1)
            (int_bound 0xFFFF) (int_bound 200))
         (quad (int_range (-1) 4) bool bool bool)
         (quad (frequency [ (6, return false); (1, return true) ])
            (frequency [ (4, return 0); (1, return 1); (1, return 2) ])
            (int_range 1 60)
            (frequency [ (6, return 0); (1, return 1); (1, return 3) ]))))

let raw_of_ev ~video_ssrcs ev =
  let ssrc =
    if ev.e_audio then 78 else video_ssrcs.(ev.e_rendition mod Array.length video_ssrcs)
  in
  let dd_ext =
    if ev.e_audio || ev.e_template < 0 then []
    else
      let dd =
        {
          Dd.start_of_frame = ev.e_sof;
          end_of_frame = ev.e_eof;
          template_id = ev.e_template;
          frame_number = ev.e_frame;
          structure = (if ev.e_structure then Some Dd.l1t3_structure else None);
        }
      in
      [ { Packet.id = Dd.extension_id; data = Dd.serialize dd } ]
  in
  let extra =
    match ev.e_extra with
    | 1 -> [ { Packet.id = 5; data = Bytes.make 3 '\xAB' } ]
    | 2 -> [ { Packet.id = 20; data = Bytes.make 2 '\xCD' } ]  (* forces two-byte profile *)
    | _ -> []
  in
  let pkt =
    Packet.make ~marker:ev.e_marker ~extensions:(dd_ext @ extra) ~payload_type:96
      ~sequence:ev.e_seq ~timestamp:(ev.e_frame * 3000) ~ssrc
      (Bytes.make ev.e_payload 'p')
  in
  let buf = Packet.serialize pkt in
  if ev.e_padding = 0 then buf
  else begin
    let n = ev.e_padding in
    let out = Bytes.make (Bytes.length buf + n) '\000' in
    Bytes.blit buf 0 out 0 (Bytes.length buf);
    Bytes.set out (Bytes.length out - 1) (Char.chr n);
    Bytes.set out 0 (Char.chr (Char.code (Bytes.get buf 0) lor 0x20));
    out
  end

(* Run one randomized stream through a world in the given mode; return the
   byte-exact egress as seen by the receiver. *)
let egress_of_stream ~mode ~simulcast evs =
  let renditions = if simulcast then [| 77; 177 |] else [||] in
  let rewrite = if simulcast then None else Some Scallop.Seq_rewrite.S_LR in
  let w = setup ~mode ~rewrite ~renditions () in
  if not simulcast then Dp.set_leg_target w.dp ~receiver:2 ~video_ssrc:77 Dd.DT_15fps;
  List.iteri
    (fun i ev ->
      (* exercise splice rebasing by toggling the requested rendition *)
      if simulcast && i mod 7 = 3 then
        Dp.set_leg_rendition w.dp ~leg_port ((i / 7) mod 2);
      Network.send w.network
        (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip uplink_port)
           (raw_of_ev ~video_ssrcs:(if simulcast then renditions else [| 77 |]) ev));
      Engine.run w.engine)
    evs;
  let stats = Dp.fastpath_stats w.dp in
  Alcotest.(check int) "no paranoid mismatches" 0 stats.Dp.fp_paranoid_mismatches;
  List.rev_map (fun (d : Dgram.t) -> Bytes.to_string d.Dgram.payload) !(w.received)

let prop_fast_slow_identical =
  QCheck.Test.make ~count:60 ~name:"fast and slow egress byte-identical (S-LR leg)"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_ev))
    (fun evs ->
      let fast = egress_of_stream ~mode:Dp.Fast ~simulcast:false evs in
      let slow = egress_of_stream ~mode:Dp.Slow ~simulcast:false evs in
      let paranoid = egress_of_stream ~mode:Dp.Paranoid ~simulcast:false evs in
      fast = slow && paranoid = slow)

let prop_fast_slow_identical_simulcast =
  QCheck.Test.make ~count:60 ~name:"fast and slow egress byte-identical (simulcast splice)"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_ev))
    (fun evs ->
      let fast = egress_of_stream ~mode:Dp.Fast ~simulcast:true evs in
      let slow = egress_of_stream ~mode:Dp.Slow ~simulcast:true evs in
      let paranoid = egress_of_stream ~mode:Dp.Paranoid ~simulcast:true evs in
      fast = slow && paranoid = slow)

let paranoid_checks_counted () =
  let w = setup () in
  send_media w (media_packet ~seq:100 ~frame:0 ~template:1 ());
  send_media w (media_packet ~seq:101 ~frame:1 ~template:3 ());
  let s = Dp.fastpath_stats w.dp in
  Alcotest.(check bool) "checks ran" true (s.Dp.fp_paranoid_checks > 0);
  Alcotest.(check int) "no mismatches" 0 s.Dp.fp_paranoid_mismatches;
  Alcotest.(check bool) "fast ingress counted" true (s.Dp.fp_fast_pkts >= 2)

let replica_copies_counted () =
  let w = setup ~mode:Dp.Fast () in
  send_media w (media_packet ~seq:1 ~frame:0 ~template:1 ());
  send_media w (media_packet ~seq:2 ~frame:4 ~template:1 ());
  let s = Dp.fastpath_stats w.dp in
  Alcotest.(check int) "replica copies counted" 2 s.Dp.fp_replica_copies;
  Alcotest.(check int) "fast ingress" 2 s.Dp.fp_fast_pkts;
  Alcotest.(check int) "no slow ingress" 0 s.Dp.fp_slow_pkts

(* A 3-receiver meeting goes through the PRE replicate path: the second
   packet with identical metadata must be a cache hit, and a tree
   mutation must invalidate before it can serve a stale fan-out. *)
let pre_cache_hit_miss_invalidate () =
  let w = setup ~mode:Dp.Fast () in
  let meeting =
    Scallop.Trees.register_meeting (Dp.trees w.dp) Scallop.Trees.Nra
      ~participants:[ (11, 111); (12, 112); (13, 113) ]
      ~senders:[ 11 ]
  in
  let up = 43_000 in
  Dp.register_uplink w.dp ~port:up ~sender:11 ~meeting ~video_ssrc:577 ~audio_ssrc:578;
  Dp.register_leg w.dp ~receiver:12 ~video_ssrc:577 ~audio_ssrc:578 ~dst:receiver_addr
    ~src_port:44_000 ~uplink_port:up ~rewrite:None;
  Dp.register_leg w.dp ~receiver:13 ~video_ssrc:577 ~audio_ssrc:578 ~dst:receiver_addr
    ~src_port:44_001 ~uplink_port:up ~rewrite:None;
  let send seq =
    Network.send w.network
      (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip up)
         (Packet.serialize (media_packet ~ssrc:577 ~seq ~frame:0 ~template:1 ())));
    Engine.run w.engine
  in
  send 1;
  let s1 = Dp.fastpath_stats w.dp in
  Alcotest.(check bool) "first packet misses" true (s1.Dp.fp_cache_misses >= 1);
  send 2;
  let s2 = Dp.fastpath_stats w.dp in
  Alcotest.(check bool) "second packet hits" true (s2.Dp.fp_cache_hits > s1.Dp.fp_cache_hits);
  (* mutate the tree: the resident entry must be flushed, not served *)
  Scallop.Trees.remove_participant (Dp.trees w.dp) meeting 13;
  let s3 = Dp.fastpath_stats w.dp in
  Alcotest.(check bool) "mutation invalidates" true
    (s3.Dp.fp_cache_invalidations > s2.Dp.fp_cache_invalidations);
  Dp.unregister_leg w.dp ~receiver:13 ~video_ssrc:577;
  let before = List.length !(w.received) in
  send 3;
  let after = List.length !(w.received) in
  Alcotest.(check int) "only the remaining receiver is served" 1 (after - before)

(* --- allocation & buffer pool ----------------------------------------------- *)

(* Suppressed replicas short-circuit before materialization: no replica
   buffer is checked out and no copy is counted for them. *)
let suppress_short_circuits () =
  let w = setup ~mode:Dp.Fast () in
  Dp.set_leg_target w.dp ~receiver:2 ~video_ssrc:77 Dd.DT_15fps;
  (* frames 0 (T0, kept), 1 (T2, suppressed), 2 (T1, kept) *)
  send_media w (media_packet ~seq:10 ~frame:0 ~template:1 ());
  send_media w (media_packet ~seq:11 ~frame:1 ~template:3 ());
  send_media w (media_packet ~seq:12 ~frame:2 ~template:2 ());
  let s = Dp.fastpath_stats w.dp in
  Alcotest.(check int) "one replica suppressed" 1 (Dp.replicas_suppressed w.dp);
  Alcotest.(check int) "copies only for forwarded replicas" 2 s.Dp.fp_replica_copies;
  Alcotest.(check int) "pool served only forwarded replicas" 2
    (s.Dp.fp_pool_recycled + s.Dp.fp_pool_fresh)

(* Every pooled replica must come back: once the engine drains, whoever
   terminated each datagram (the delivery handler returning, here) has
   released its buffer exactly once. *)
let pool_drains_to_zero () =
  let w = setup ~mode:Dp.Fast () in
  for i = 1 to 20 do
    send_media w (media_packet ~seq:i ~frame:i ~template:((i mod 4) + 1) ())
  done;
  let s = Dp.pool_stats w.dp in
  Alcotest.(check int) "all buffers returned" 0 s.Scallop_util.Bufpool.live;
  Alcotest.(check bool) "pool actually used" true
    (s.Scallop_util.Bufpool.high_water >= 1);
  Alcotest.(check bool) "steady state recycles" true
    (s.Scallop_util.Bufpool.recycled > 0)

(* Steady-state allocation regression gate: the canonical 30-receiver Fast
   fan-out must stay under the pinned budget. Mirrors the bench's GC gate
   so a regression fails in `dune runtest`, not only in CI's bench smoke.
   The receiver IP is unhosted, so the network terminates every replica
   (and must release its pooled buffer there). *)
let alloc_budget_regression () =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let network = Network.create engine rng in
  let fast = { Netsim.Link.default with rate_bps = infinity; propagation_ns = 100 } in
  Network.add_host network ~ip:sfu_ip ~uplink:fast ~downlink:fast ();
  Network.add_host network ~ip:sender_addr.Addr.ip ~uplink:fast ~downlink:fast ();
  let dp = Dp.create engine network ~ip:sfu_ip ~mode:Dp.Fast () in
  let receivers = 30 in
  let participants =
    (1, uplink_port) :: List.init receivers (fun i -> (2 + i, 50_000 + i))
  in
  let meeting =
    Scallop.Trees.register_meeting (Dp.trees dp) Scallop.Trees.Nra ~participants
      ~senders:[ 1 ]
  in
  Dp.register_uplink dp ~port:uplink_port ~sender:1 ~meeting ~video_ssrc:77
    ~audio_ssrc:78;
  let recv_ip = Addr.ip_of_string "10.0.2.1" in
  List.iteri
    (fun i (pid, port) ->
      Dp.register_leg dp ~receiver:pid ~video_ssrc:77 ~audio_ssrc:78
        ~dst:(Addr.v recv_ip (6000 + i)) ~src_port:port ~uplink_port ~rewrite:None)
    (List.tl participants);
  let payload = Bytes.make 1200 'v' in
  let raw seq frame =
    let dd =
      {
        Dd.start_of_frame = true;
        end_of_frame = true;
        template_id = (frame mod 4) + 1;
        frame_number = frame land 0xFFFF;
        structure = None;
      }
    in
    Packet.serialize
      (Packet.make
         ~extensions:[ { Packet.id = Dd.extension_id; data = Dd.serialize dd } ]
         ~payload_type:96 ~sequence:(seq land 0xFFFF) ~timestamp:(frame * 3000)
         ~ssrc:77 payload)
  in
  let one buf =
    Network.send network (Dgram.v ~src:sender_addr ~dst:(Addr.v sfu_ip uplink_port) buf);
    Engine.run engine
  in
  (* warm-up: fill the PRE cache, the replica pool and the batch free list *)
  Array.iter one (Array.init 100 (fun i -> raw (60_000 + i) (30_000 + (i / 2))));
  let packets = 200 in
  let stream = Array.init packets (fun i -> raw i (i / 2)) in
  let fresh0 = (Dp.pool_stats dp).Scallop_util.Bufpool.fresh in
  let a0 = Gc.allocated_bytes () in
  Array.iter one stream;
  let per_pkt = (Gc.allocated_bytes () -. a0) /. float_of_int packets in
  if per_pkt > float_of_int Dp.alloc_budget_bytes_per_packet then
    Alcotest.failf "fast path allocates %.0f B/packet (budget %d)" per_pkt
      Dp.alloc_budget_bytes_per_packet;
  let s = Dp.pool_stats dp in
  Alcotest.(check int) "no fresh checkouts in steady state" fresh0
    s.Scallop_util.Bufpool.fresh;
  Alcotest.(check int) "unhosted deliveries released every buffer" 0
    s.Scallop_util.Bufpool.live

let () =
  Alcotest.run "dataplane"
    [
      ( "media",
        [
          Alcotest.test_case "forwards and re-addresses" `Quick forwards_and_readdresses;
          Alcotest.test_case "classification" `Quick counts_classification;
          Alcotest.test_case "keyframe structure to cpu" `Quick keyframe_structure_to_cpu;
          Alcotest.test_case "layer suppression + rewrite" `Quick layer_suppression_and_rewrite;
          Alcotest.test_case "unregister leg" `Quick unregister_leg_stops_media;
          Alcotest.test_case "stream index reuse" `Quick stream_index_reuse;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "remb gating" `Quick remb_gating;
          Alcotest.test_case "pli always forwarded" `Quick pli_always_forwarded;
          Alcotest.test_case "nack offset translation" `Quick nack_translated_by_offset;
        ] );
      ( "control",
        [
          Alcotest.test_case "stun to cpu" `Quick stun_to_cpu_only;
          Alcotest.test_case "unknown counted" `Quick unknown_traffic_counted;
        ] );
      ( "fastpath",
        QCheck_alcotest.to_alcotest prop_fast_slow_identical
        :: QCheck_alcotest.to_alcotest prop_fast_slow_identical_simulcast
        :: [
             Alcotest.test_case "paranoid checks counted" `Quick paranoid_checks_counted;
             Alcotest.test_case "replica copies counted" `Quick replica_copies_counted;
             Alcotest.test_case "pre cache hit/miss/invalidate" `Quick
               pre_cache_hit_miss_invalidate;
           ] );
      ( "alloc",
        [
          Alcotest.test_case "suppress short-circuits materialization" `Quick
            suppress_short_circuits;
          Alcotest.test_case "pool drains to zero" `Quick pool_drains_to_zero;
          Alcotest.test_case "alloc budget regression" `Quick
            alloc_budget_regression;
        ] );
    ]
