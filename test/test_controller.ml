(* Controller (signaling) unit tests: session bookkeeping, SDP volumes,
   SSRC allocation, topology of the created connections. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link
module C = Scallop.Controller

let fast = { Link.default with rate_bps = infinity; propagation_ns = 100_000 }

let make ?(switches = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create 10 in
  let network = Network.create engine (Rng.split rng) in
  let agents =
    List.init switches (fun i ->
        let ip = Addr.ip_of_string (Printf.sprintf "10.0.0.%d" (i + 1)) in
        Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
        let dp = Scallop.Dataplane.create engine network ~ip () in
        (Scallop.Switch_agent.create engine dp (), dp))
  in
  let controller = C.create engine network (Rng.split rng) ~agents () in
  (engine, network, rng, controller)

let client engine network rng i =
  let ip = Addr.ip_of_string (Printf.sprintf "10.0.7.%d" (i + 1)) in
  Network.add_host network ~ip ();
  Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)

let join_n controller engine network rng n =
  let mid = C.create_meeting controller in
  (mid, List.init n (fun i -> C.join controller mid (client engine network rng i) ~send_media:true))

let membership_tracked () =
  let engine, network, rng, controller = make () in
  let mid, pids = join_n controller engine network rng 3 in
  Alcotest.(check int) "three members" 3 (List.length (C.meeting_participants controller mid));
  C.leave controller (List.hd pids);
  Alcotest.(check int) "two after leave" 2 (List.length (C.meeting_participants controller mid));
  Alcotest.(check bool) "leaver gone" false
    (List.mem (List.hd pids) (C.meeting_participants controller mid))

let sdp_volume () =
  (* joiner #k sends 2 SDP messages for its own uplink and 2 per leg; legs
     are created in both directions towards each existing sender *)
  let engine, network, rng, controller = make () in
  let before k =
    let _ = join_n controller engine network rng k in
    (C.stats controller).sdp_messages
  in
  let total = before 3 in
  (* p0: 2 (uplink). p1: 2 + 2 legs x 2 = 6. p2: 2 + 4 legs x 2 = 10. *)
  Alcotest.(check int) "sdp messages" 18 total

let ssrc_allocation_unique () =
  let engine, network, rng, controller = make () in
  let _, pids = join_n controller engine network rng 4 in
  let infos = List.filter_map (C.participant_sender_info controller) pids in
  let ssrcs =
    List.concat_map (fun (i : C.sender_info) -> [ i.video_ssrc; i.audio_ssrc ]) infos
  in
  Alcotest.(check int) "all distinct" (List.length ssrcs)
    (List.length (List.sort_uniq compare ssrcs))

let recv_topology_full_mesh () =
  let engine, network, rng, controller = make () in
  let _, pids = join_n controller engine network rng 4 in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let conn = C.recv_connection controller p ~from:q in
          if p = q then Alcotest.(check bool) "no self stream" true (conn = None)
          else Alcotest.(check bool) "full mesh" true (conn <> None))
        pids)
    pids

let receive_only_has_no_sender_info () =
  let engine, network, rng, controller = make () in
  let mid = C.create_meeting controller in
  let watcher = C.join controller mid (client engine network rng 0) ~send_media:false in
  Alcotest.(check bool) "no sender info" true
    (C.participant_sender_info controller watcher = None);
  Alcotest.(check bool) "no send connection" true (C.send_connection controller watcher = None)

let home_validation () =
  let engine, network, rng, controller = make ~switches:2 () in
  let mid = C.create_meeting controller in
  Alcotest.(check bool) "bad home rejected" true
    (try
       ignore (C.join ~home:7 controller mid (client engine network rng 0) ~send_media:true);
       false
     with Invalid_argument _ -> true);
  let p = C.join ~home:1 controller mid (client engine network rng 1) ~send_media:true in
  Alcotest.(check int) "home recorded" 1 (C.participant_home controller p)

let placement_round_robin () =
  let _, _, _, controller = make ~switches:3 () in
  let homes =
    List.init 6 (fun _ ->
        Scallop.Dataplane.ip (C.meeting_switch controller (C.create_meeting controller)))
  in
  Alcotest.(check int) "cycles through all three" 3
    (List.length (List.sort_uniq compare homes));
  Alcotest.(check bool) "wraps" true (List.nth homes 0 = List.nth homes 3)

let screen_share_bookkeeping () =
  let engine, network, rng, controller = make () in
  let _, pids = join_n controller engine network rng 2 in
  let sharer = List.hd pids and viewer = List.nth pids 1 in
  C.start_screen_share controller sharer;
  Alcotest.(check bool) "viewer has screen conn" true
    (C.screen_connection controller viewer ~from:sharer <> None);
  Alcotest.(check bool) "sharer has none of its own" true
    (C.screen_connection controller sharer ~from:sharer = None);
  Alcotest.(check bool) "double share rejected" true
    (try
       C.start_screen_share controller sharer;
       false
     with Invalid_argument _ -> true);
  C.stop_screen_share controller sharer;
  Alcotest.(check bool) "stopped" true (C.screen_connection controller viewer ~from:sharer = None);
  (* idempotent stop *)
  C.stop_screen_share controller sharer

let leave_closes_peer_connections () =
  let engine, network, rng, controller = make () in
  let engine_run s = Engine.run engine ~until:(Engine.now engine + Engine.sec s) in
  let mid = C.create_meeting controller in
  let c0 = client engine network rng 0 and c1 = client engine network rng 1 in
  let p0 = C.join controller mid c0 ~send_media:true in
  let _p1 = C.join controller mid c1 ~send_media:true in
  engine_run 2.0;
  let conns_before = List.length (Webrtc.Client.connections c1) in
  C.leave controller p0;
  Alcotest.(check bool) "peer's recv connection closed" true
    (List.length (Webrtc.Client.connections c1) < conns_before)

let () =
  Alcotest.run "controller"
    [
      ( "sessions",
        [
          Alcotest.test_case "membership" `Quick membership_tracked;
          Alcotest.test_case "sdp volume" `Quick sdp_volume;
          Alcotest.test_case "ssrc allocation" `Quick ssrc_allocation_unique;
          Alcotest.test_case "full-mesh topology" `Quick recv_topology_full_mesh;
          Alcotest.test_case "receive-only" `Quick receive_only_has_no_sender_info;
          Alcotest.test_case "leave closes connections" `Quick leave_closes_peer_connections;
        ] );
      ( "placement",
        [
          Alcotest.test_case "home validation" `Quick home_validation;
          Alcotest.test_case "round robin" `Quick placement_round_robin;
        ] );
      ( "screen share",
        [ Alcotest.test_case "bookkeeping" `Quick screen_share_bookkeeping ] );
    ]
