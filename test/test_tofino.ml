(* Tofino switch-model tests: PRE semantics (paper §6.3, Fig. 13),
   match-action tables, registers, and the resource model. *)

module Pre = Tofino.Pre
module Table = Tofino.Table
module Register = Tofino.Register
module Resources = Tofino.Resources

let small = { Pre.max_trees = 4; max_l1_nodes = 16; max_rids_per_tree = 8 }

let ports replicas = List.map (fun (r : Pre.replica) -> r.Pre.port) replicas |> List.sort compare

(* --- PRE construction ---------------------------------------------------------- *)

let pre_basic_replication () =
  let pre = Pre.create () in
  let nodes = List.init 3 (fun i -> Pre.create_l1_node pre ~rid:i ~ports:[ 10 + i ] ()) in
  Pre.create_tree pre ~mgid:1 ~nodes;
  let replicas = Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  Alcotest.(check (list int)) "all ports" [ 10; 11; 12 ] (ports replicas)

let pre_unknown_mgid () =
  let pre = Pre.create () in
  Alcotest.(check (list int)) "empty" [] (ports (Pre.replicate pre ~mgid:42 ~l1_xid:0 ~rid:0 ~l2_xid:0))

let pre_l1_pruning () =
  (* two meetings in one tree, separated by L1-XIDs (paper: m = 2) *)
  let pre = Pre.create () in
  let m1 = List.init 2 (fun i -> Pre.create_l1_node pre ~rid:i ~l1_xid:1 ~prune_enabled:true ~ports:[ 100 + i ] ()) in
  let m2 = List.init 2 (fun i -> Pre.create_l1_node pre ~rid:(10 + i) ~l1_xid:2 ~prune_enabled:true ~ports:[ 200 + i ] ()) in
  Pre.create_tree pre ~mgid:5 ~nodes:(m1 @ m2);
  (* a packet of meeting 1 sets l1_xid = 2 to exclude meeting 2's nodes *)
  let to_m1 = Pre.replicate pre ~mgid:5 ~l1_xid:2 ~rid:99 ~l2_xid:0 in
  Alcotest.(check (list int)) "meeting 1 only" [ 100; 101 ] (ports to_m1);
  let to_m2 = Pre.replicate pre ~mgid:5 ~l1_xid:1 ~rid:99 ~l2_xid:0 in
  Alcotest.(check (list int)) "meeting 2 only" [ 200; 201 ] (ports to_m2)

let pre_prune_disabled_ignores_xid () =
  let pre = Pre.create () in
  let n = Pre.create_l1_node pre ~rid:1 ~l1_xid:7 ~prune_enabled:false ~ports:[ 1 ] () in
  Pre.create_tree pre ~mgid:1 ~nodes:[ n ];
  Alcotest.(check int) "not pruned" 1
    (List.length (Pre.replicate pre ~mgid:1 ~l1_xid:7 ~rid:0 ~l2_xid:0))

let pre_l2_pruning_self_suppression () =
  (* the sender's own copy is suppressed by (RID, egress-port) exclusion *)
  let pre = Pre.create () in
  let nodes = List.init 3 (fun i -> Pre.create_l1_node pre ~rid:i ~ports:[ 10 + i ] ()) in
  Pre.create_tree pre ~mgid:1 ~nodes;
  Pre.set_l2_xid_ports pre ~xid:77 ~ports:[ 11 ];
  (* sender is the node with rid 1 / port 11 *)
  let replicas = Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:1 ~l2_xid:77 in
  Alcotest.(check (list int)) "self suppressed" [ 10; 12 ] (ports replicas)

let pre_l2_requires_rid_match () =
  let pre = Pre.create () in
  let nodes = List.init 2 (fun i -> Pre.create_l1_node pre ~rid:i ~ports:[ 10 + i ] ()) in
  Pre.create_tree pre ~mgid:1 ~nodes;
  Pre.set_l2_xid_ports pre ~xid:77 ~ports:[ 10; 11 ];
  (* RID 5 matches no node, so the L2 exclusion never applies *)
  Alcotest.(check int) "no suppression without rid match" 2
    (List.length (Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:5 ~l2_xid:77))

(* --- PRE resource limits -------------------------------------------------------- *)

let pre_tree_limit () =
  let pre = Pre.create ~limits:small () in
  for m = 1 to 4 do
    Pre.create_tree pre ~mgid:m ~nodes:[]
  done;
  Alcotest.(check bool) "fifth tree refused" true
    (try
       Pre.create_tree pre ~mgid:5 ~nodes:[];
       false
     with Pre.Resource_exhausted _ -> true)

let pre_node_limit () =
  let pre = Pre.create ~limits:small () in
  for _ = 1 to 16 do
    ignore (Pre.create_l1_node pre ~rid:0 ~ports:[ 1 ] ())
  done;
  Alcotest.(check bool) "17th node refused" true
    (try
       ignore (Pre.create_l1_node pre ~rid:0 ~ports:[ 1 ] ());
       false
     with Pre.Resource_exhausted _ -> true)

let pre_rid_uniqueness () =
  let pre = Pre.create () in
  let a = Pre.create_l1_node pre ~rid:3 ~ports:[ 1 ] () in
  let b = Pre.create_l1_node pre ~rid:3 ~ports:[ 2 ] () in
  Alcotest.(check bool) "duplicate rid in one tree rejected" true
    (try
       Pre.create_tree pre ~mgid:1 ~nodes:[ a; b ];
       false
     with Invalid_argument _ -> true)

let pre_destroy_frees () =
  let pre = Pre.create ~limits:small () in
  let n = Pre.create_l1_node pre ~rid:0 ~ports:[ 1 ] () in
  Pre.create_tree pre ~mgid:1 ~nodes:[ n ];
  Alcotest.(check int) "one tree" 1 (Pre.trees_used pre);
  Pre.destroy_tree pre 1;
  Alcotest.(check int) "freed" 0 (Pre.trees_used pre);
  (* the node is free-standing again and can join a new tree *)
  Pre.create_tree pre ~mgid:2 ~nodes:[ n ];
  Alcotest.(check int) "reused" 1 (Pre.trees_used pre)

let pre_node_membership_exclusive () =
  let pre = Pre.create () in
  let n = Pre.create_l1_node pre ~rid:0 ~ports:[ 1 ] () in
  Pre.create_tree pre ~mgid:1 ~nodes:[ n ];
  Alcotest.(check bool) "cannot join two trees" true
    (try
       Pre.create_tree pre ~mgid:2 ~nodes:[ n ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cannot destroy while member" true
    (try
       Pre.destroy_l1_node pre n;
       false
     with Invalid_argument _ -> true)

let pre_dynamic_membership () =
  let pre = Pre.create () in
  Pre.create_tree pre ~mgid:1 ~nodes:[];
  let n = Pre.create_l1_node pre ~rid:0 ~ports:[ 5 ] () in
  Pre.add_node_to_tree pre 1 n;
  Alcotest.(check int) "added" 1 (List.length (Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:9 ~l2_xid:0));
  Pre.remove_node_from_tree pre 1 n;
  Alcotest.(check int) "removed" 0 (List.length (Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:9 ~l2_xid:0))

let pre_insertion_order_preserved () =
  let pre = Pre.create () in
  Pre.create_tree pre ~mgid:1 ~nodes:[];
  let ns = List.map (fun r -> Pre.create_l1_node pre ~rid:r ~ports:[ 50 + r ] ()) [ 3; 1; 2 ] in
  List.iter (fun n -> Pre.add_node_to_tree pre 1 n) ns;
  Alcotest.(check (list int)) "members in insertion order" ns (Pre.tree_nodes pre 1);
  Alcotest.(check (list int)) "replicas in insertion order" [ 53; 51; 52 ]
    (List.map (fun (r : Pre.replica) -> r.Pre.port) (Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:9 ~l2_xid:0))

(* --- fan-out cache ------------------------------------------------------------- *)

let cached pre ~mgid ~l1_xid ~rid ~l2_xid =
  Array.to_list (Pre.replicate_cached pre ~mgid ~l1_xid ~rid ~l2_xid)

let pre_cache_hit_miss () =
  let pre = Pre.create () in
  let nodes = List.init 3 (fun i -> Pre.create_l1_node pre ~rid:i ~ports:[ 10 + i ] ()) in
  Pre.create_tree pre ~mgid:1 ~nodes;
  let spec = Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  let first = cached pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  let second = cached pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  Alcotest.(check bool) "cached = spec" true (first = spec && second = spec);
  let s = Pre.cache_stats pre in
  Alcotest.(check int) "one miss" 1 s.Pre.misses;
  Alcotest.(check int) "one hit" 1 s.Pre.hits;
  Alcotest.(check int) "one resident entry" 1 s.Pre.entries;
  (* a distinct metadata tuple is its own entry *)
  ignore (cached pre ~mgid:1 ~l1_xid:0 ~rid:1 ~l2_xid:0);
  Alcotest.(check int) "second entry" 2 (Pre.cache_stats pre).Pre.entries

let pre_cache_invalidated_on_mutation () =
  let pre = Pre.create () in
  Pre.create_tree pre ~mgid:1 ~nodes:[];
  let a = Pre.create_l1_node pre ~rid:0 ~ports:[ 10 ] () in
  let b = Pre.create_l1_node pre ~rid:1 ~ports:[ 11 ] () in
  Pre.add_node_to_tree pre 1 a;
  Pre.add_node_to_tree pre 1 b;
  let before = cached pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  Alcotest.(check int) "both ports" 2 (List.length before);
  (* every mutation class must flush the memo table *)
  Pre.remove_node_from_tree pre 1 b;
  let s = Pre.cache_stats pre in
  Alcotest.(check int) "flush counted" 1 s.Pre.invalidations;
  Alcotest.(check int) "no resident entries" 0 s.Pre.entries;
  let after = cached pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0 in
  Alcotest.(check bool) "stale entry not served" true
    (after = Pre.replicate pre ~mgid:1 ~l1_xid:0 ~rid:99 ~l2_xid:0
    && List.length after = 1);
  (* L2 exclusion-set updates are mutations too *)
  ignore (cached pre ~mgid:1 ~l1_xid:0 ~rid:0 ~l2_xid:7);
  Pre.set_l2_xid_ports pre ~xid:7 ~ports:[ 10 ];
  Alcotest.(check int) "l2 write flushes" 0 (Pre.cache_stats pre).Pre.entries;
  Alcotest.(check int) "exclusion applies" 0
    (List.length (cached pre ~mgid:1 ~l1_xid:0 ~rid:0 ~l2_xid:7));
  (* flushing an empty cache is not counted as an invalidation *)
  let inv = (Pre.cache_stats pre).Pre.invalidations in
  Pre.destroy_tree pre 1;
  Pre.set_l2_xid_ports pre ~xid:8 ~ports:[ 1 ];
  Alcotest.(check int) "empty flush not counted" (inv + 1)
    (Pre.cache_stats pre).Pre.invalidations

(* --- qcheck: pruning is exact --------------------------------------------------- *)

let prop_pruning_exact =
  QCheck.Test.make ~count:200 ~name:"replicas = members - own meeting tag - sender port"
    QCheck.(pair (int_bound 1) (int_bound 3))
    (fun (packet_meeting, sender_idx) ->
      let pre = Pre.create () in
      (* 2 meetings x 4 participants in one tree, tags 1 and 2 *)
      let node meeting i =
        Pre.create_l1_node pre
          ~rid:((meeting * 100) + i)
          ~l1_xid:(meeting + 1) ~prune_enabled:true
          ~ports:[ (meeting * 1000) + i ]
          ()
      in
      let nodes = List.concat_map (fun m -> List.init 4 (node m)) [ 0; 1 ] in
      Pre.create_tree pre ~mgid:1 ~nodes;
      let sender_port = (packet_meeting * 1000) + sender_idx in
      Pre.set_l2_xid_ports pre ~xid:sender_port ~ports:[ sender_port ];
      let replicas =
        Pre.replicate pre ~mgid:1
          ~l1_xid:(2 - packet_meeting) (* exclude the other meeting *)
          ~rid:((packet_meeting * 100) + sender_idx)
          ~l2_xid:sender_port
      in
      let expected =
        List.init 4 (fun i -> (packet_meeting * 1000) + i)
        |> List.filter (fun p -> p <> sender_port)
      in
      ports replicas = expected)

(* --- tables ----------------------------------------------------------------------- *)

let table_capacity () =
  let t = Table.create ~name:"t" ~capacity:2 in
  Alcotest.(check bool) "insert 1" true (Table.insert t 1 "a" = Ok ());
  Alcotest.(check bool) "insert 2" true (Table.insert t 2 "b" = Ok ());
  Alcotest.(check bool) "full" true (Table.insert t 3 "c" = Error `Table_full);
  Alcotest.(check bool) "replace ok when full" true (Table.insert t 1 "a2" = Ok ());
  Alcotest.(check (option string)) "replaced" (Some "a2") (Table.lookup t 1);
  Table.remove t 2;
  Alcotest.(check bool) "insert after remove" true (Table.insert t 3 "c" = Ok ())

let table_utilization () =
  let t = Table.create ~name:"t" ~capacity:4 in
  ignore (Table.insert t 1 ());
  Alcotest.(check (float 1e-9)) "25%" 0.25 (Table.utilization t)

(* --- registers ---------------------------------------------------------------------- *)

let register_rw () =
  let r = Register.create ~name:"r" ~cells:4 in
  Register.write r 2 0x1FFFFFFFF;
  Alcotest.(check int) "32-bit mask" 0xFFFFFFFF (Register.read r 2);
  Register.clear_index r 2;
  Alcotest.(check int) "cleared" 0 (Register.read r 2)

let register_bounds () =
  let r = Register.create ~name:"r" ~cells:4 in
  Alcotest.(check bool) "oob" true
    (try
       ignore (Register.read r 4);
       false
     with Invalid_argument _ -> true)

(* --- resources ------------------------------------------------------------------------ *)

let demo_program =
  {
    Resources.ingress_parser_depth = 27;
    egress_parser_depth = 7;
    ingress_stages = 7;
    egress_stages = 5;
    tables =
      [
        { Resources.t_name = "a"; entries = 1024; key_bytes = 4; value_bytes = 8; ternary = false };
        { Resources.t_name = "b"; entries = 512; key_bytes = 6; value_bytes = 2; ternary = true };
      ];
    registers = [ { Resources.r_name = "r"; r_cells = 65536; width_bytes = 4 } ];
    phv_bits_used = 900;
    vliw_used = 40;
  }

let resources_report_complete () =
  let rows = Resources.report demo_program in
  let names = List.map (fun (r : Resources.row) -> r.Resources.resource) rows in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "Parsing depth"; "No. of stages"; "PHV containers"; "SRAM"; "TCAM"; "Hash bits" ]

let resources_stage_check () =
  Alcotest.(check bool) "fits" true (Resources.stages_ok demo_program);
  Alcotest.(check bool) "too deep" false
    (Resources.stages_ok { demo_program with ingress_stages = 99 })

(* --- parser (Appendix E) --------------------------------------------------- *)

module Parser = Tofino.Parser

let mk_rtp ?(exts = []) () =
  Rtp.Packet.serialize
    (Rtp.Packet.make ~extensions:exts ~payload_type:96 ~sequence:1 ~timestamp:2 ~ssrc:3
       (Bytes.create 50))

let parser_classifies () =
  (match (Parser.walk (mk_rtp ())).Parser.kind with
  | Parser.Rtp { av1_template = None; elements = 0 } -> ()
  | _ -> Alcotest.fail "plain rtp");
  let rtcp =
    Rtp.Rtcp.serialize (Rtp.Rtcp.Receiver_report { ssrc = 1; reports = [] })
  in
  (match (Parser.walk rtcp).Parser.kind with
  | Parser.Rtcp { packet_type = 201 } -> ()
  | _ -> Alcotest.fail "rtcp");
  let stun =
    Rtp.Stun.serialize (Rtp.Stun.binding_request ~transaction_id:(Bytes.make 12 'a') ())
  in
  (match (Parser.walk stun).Parser.kind with
  | Parser.Stun -> ()
  | _ -> Alcotest.fail "stun");
  match (Parser.walk (Bytes.of_string "\xFF\xFF\xFF\xFF")).Parser.kind with
  | Parser.Other -> ()
  | _ -> Alcotest.fail "garbage"

let parser_extracts_av1_template () =
  let dd =
    Av1.Dd.serialize
      {
        Av1.Dd.start_of_frame = true;
        end_of_frame = true;
        template_id = 4;
        frame_number = 9;
        structure = None;
      }
  in
  let buf = mk_rtp ~exts:[ { Rtp.Packet.id = 1; data = dd } ] () in
  match (Parser.walk buf).Parser.kind with
  | Parser.Rtp { av1_template = Some 4; elements = 1 } -> ()
  | Parser.Rtp { av1_template; elements } ->
      Alcotest.failf "template %s, elements %d"
        (match av1_template with Some t -> string_of_int t | None -> "none")
        elements
  | _ -> Alcotest.fail "not rtp"

let parser_depth_grows_with_elements () =
  let ext i = { Rtp.Packet.id = 2 + i; data = Bytes.create 3 } in
  let d0 = (Parser.walk (mk_rtp ())).Parser.depth in
  let d1 = (Parser.walk (mk_rtp ~exts:[ ext 0 ] ())).Parser.depth in
  let d3 = (Parser.walk (mk_rtp ~exts:[ ext 0; ext 1; ext 2 ] ())).Parser.depth in
  Alcotest.(check bool) "monotone" true (d0 < d1 && d1 < d3);
  Alcotest.(check bool) "bounded by graph" true (d3 <= Parser.graph_depth)

let parser_element_cap () =
  (* 12 elements: the graph stops at its 10 slots without rejecting *)
  let exts = List.init 12 (fun i -> { Rtp.Packet.id = 1 + (i mod 13); data = Bytes.create 2 }) in
  let w = Parser.walk (mk_rtp ~exts ()) in
  (match w.Parser.kind with
  | Parser.Rtp { elements; _ } ->
      Alcotest.(check int) "capped" Parser.max_extension_elements elements
  | _ -> Alcotest.fail "not rtp");
  Alcotest.(check bool) "within graph depth" true (w.Parser.depth <= Parser.graph_depth)

let parser_tracker () =
  let t = Parser.create () in
  ignore (Parser.observe t (mk_rtp ()));
  ignore (Parser.observe t (mk_rtp ~exts:[ { Rtp.Packet.id = 1; data = Bytes.create 3 } ] ()));
  Alcotest.(check int) "packets" 2 (Parser.packets t);
  Alcotest.(check bool) "mean <= max" true (Parser.mean_depth t <= float_of_int (Parser.max_depth t))

let parser_graph_depth_is_paper_value () =
  Alcotest.(check int) "27" 27 Parser.graph_depth

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_pruning_exact ]

let () =
  Alcotest.run "tofino"
    [
      ( "pre",
        [
          Alcotest.test_case "basic replication" `Quick pre_basic_replication;
          Alcotest.test_case "unknown mgid" `Quick pre_unknown_mgid;
          Alcotest.test_case "L1 pruning" `Quick pre_l1_pruning;
          Alcotest.test_case "prune disabled" `Quick pre_prune_disabled_ignores_xid;
          Alcotest.test_case "L2 self suppression" `Quick pre_l2_pruning_self_suppression;
          Alcotest.test_case "L2 needs rid match" `Quick pre_l2_requires_rid_match;
          Alcotest.test_case "tree limit" `Quick pre_tree_limit;
          Alcotest.test_case "node limit" `Quick pre_node_limit;
          Alcotest.test_case "rid uniqueness" `Quick pre_rid_uniqueness;
          Alcotest.test_case "destroy frees" `Quick pre_destroy_frees;
          Alcotest.test_case "exclusive membership" `Quick pre_node_membership_exclusive;
          Alcotest.test_case "dynamic membership" `Quick pre_dynamic_membership;
          Alcotest.test_case "insertion order preserved" `Quick pre_insertion_order_preserved;
          Alcotest.test_case "cache hit/miss" `Quick pre_cache_hit_miss;
          Alcotest.test_case "cache invalidated on mutation" `Quick
            pre_cache_invalidated_on_mutation;
        ] );
      ( "table",
        [
          Alcotest.test_case "capacity" `Quick table_capacity;
          Alcotest.test_case "utilization" `Quick table_utilization;
        ] );
      ( "register",
        [
          Alcotest.test_case "read/write" `Quick register_rw;
          Alcotest.test_case "bounds" `Quick register_bounds;
        ] );
      ( "parser",
        [
          Alcotest.test_case "classification" `Quick parser_classifies;
          Alcotest.test_case "av1 template extraction" `Quick parser_extracts_av1_template;
          Alcotest.test_case "depth grows with elements" `Quick parser_depth_grows_with_elements;
          Alcotest.test_case "element cap" `Quick parser_element_cap;
          Alcotest.test_case "tracker" `Quick parser_tracker;
          Alcotest.test_case "graph depth = 27" `Quick parser_graph_depth_is_paper_value;
        ] );
      ( "resources",
        [
          Alcotest.test_case "report complete" `Quick resources_report_complete;
          Alcotest.test_case "stage check" `Quick resources_stage_check;
        ] );
      ("properties", qsuite);
    ]
