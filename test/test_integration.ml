module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network

let setup () =
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  let network = Network.create engine (Rng.split rng) in
  (engine, rng, network)

let add_client engine network rng ~ip =
  Network.add_host network ~ip ();
  Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)

let scallop_three_party () =
  let engine, rng, network = setup () in
  let sfu_ip = Addr.ip_of_string "10.0.0.1" in
  Network.add_host network ~ip:sfu_ip
    ~uplink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
    ~downlink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
    ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
  let agent = Scallop.Switch_agent.create engine dp () in
  let controller = Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] () in
  let mid = Scallop.Controller.create_meeting controller in
  let clients =
    List.map
      (fun i -> add_client engine network rng ~ip:(Addr.ip_of_string (Printf.sprintf "10.0.1.%d" i)))
      [ 1; 2; 3 ]
  in
  let pids = List.map (fun c -> Scallop.Controller.join controller mid c ~send_media:true) clients in
  Engine.run engine ~until:(Engine.sec 10.0);
  (* every participant must decode video from both others at ~30 fps *)
  List.iteri
    (fun i pid ->
      List.iteri
        (fun j from ->
          if i <> j then begin
            match Scallop.Controller.recv_connection controller pid ~from with
            | None -> Alcotest.failf "participant %d has no recv connection from %d" pid from
            | Some conn -> (
                match Webrtc.Client.receiver conn with
                | None -> Alcotest.fail "recv connection lacks a receiver"
                | Some rx ->
                    let decoded = Codec.Video_receiver.frames_decoded rx in
                    if decoded < 250 then
                      Alcotest.failf "participant %d decoded only %d frames from %d" pid decoded from;
                    if Codec.Video_receiver.freezes rx > 0 then
                      Alcotest.failf "participant %d froze on stream from %d" pid from)
          end)
        pids)
    pids;
  (* data-plane split sanity: most packets stayed in hardware *)
  let c = Scallop.Dataplane.ingress_counters dp in
  let dp_pkts = c.rtp_audio_pkts + c.rtp_video_pkts + c.rtcp_sr_sdes_pkts in
  let cpu_pkts = c.rtcp_rr_pkts + c.rtcp_remb_pkts + c.stun_pkts + c.rtp_av1_ds_pkts in
  let frac = float_of_int dp_pkts /. float_of_int (dp_pkts + cpu_pkts) in
  if frac < 0.90 then Alcotest.failf "only %.1f%% of packets in data plane" (100. *. frac);
  Printf.printf "data-plane fraction: %.2f%% (dp=%d cpu=%d) stun answered=%d\n"
    (100. *. frac) dp_pkts cpu_pkts (Scallop.Switch_agent.stats agent).stun_answered;
  (* the three layers must agree after 10 s of steady state *)
  Scallop_analysis.assert_clean ~what:"three-party steady state" controller

let sfu_three_party () =
  let engine, rng, network = setup () in
  let sfu_ip = Addr.ip_of_string "10.0.0.2" in
  Network.add_host network ~ip:sfu_ip
    ~uplink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
    ~downlink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
    ();
  let server = Sfu.Server.create engine network (Rng.split rng) ~ip:sfu_ip
      ~cpu:{ Netsim.Cpu_queue.default_server with cores = 8 } () in
  let meeting = Sfu.Server.create_meeting server in
  let clients =
    List.map
      (fun i -> add_client engine network rng ~ip:(Addr.ip_of_string (Printf.sprintf "10.0.2.%d" i)))
      [ 1; 2; 3 ]
  in
  let _ids = List.map (fun c -> Sfu.Server.join server ~meeting ~client:c ~send_media:true) clients in
  Engine.run engine ~until:(Engine.sec 10.0);
  if Sfu.Server.packets_processed server < 1000 then
    Alcotest.failf "software SFU processed only %d packets" (Sfu.Server.packets_processed server);
  Printf.printf "software SFU processed %d packets, %d stream legs\n"
    (Sfu.Server.packets_processed server) (Sfu.Server.out_stream_count server)

(* 7.3 faithfulness: at low load, a meeting through Scallop and the same
   meeting through the software split proxy must deliver equivalent QoE —
   the hardware redesign must not cost correctness. *)
let scallop_faithful_to_sfu () =
  let fps_through_scallop =
    let engine, rng, network = setup () in
    let sfu_ip = Addr.ip_of_string "10.0.0.1" in
    Network.add_host network ~ip:sfu_ip
      ~uplink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
      ~downlink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
      ();
    let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
    let agent = Scallop.Switch_agent.create engine dp () in
    let controller =
      Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ()
    in
    let mid = Scallop.Controller.create_meeting controller in
    let clients =
      List.init 3 (fun i ->
          add_client engine network rng ~ip:(Addr.ip_of_string (Printf.sprintf "10.0.1.%d" (i + 1))))
    in
    let pids = List.map (fun c -> Scallop.Controller.join controller mid c ~send_media:true) clients in
    Engine.run engine ~until:(Engine.sec 10.0);
    let p0 = List.hd pids and p1 = List.nth pids 1 in
    let rx =
      Scallop.Controller.recv_connection controller p0 ~from:p1
      |> Option.get |> Webrtc.Client.receiver |> Option.get
    in
    Codec.Video_receiver.frames_decoded rx
  in
  let fps_through_software =
    let engine, rng, network = setup () in
    let sfu_ip = Addr.ip_of_string "10.0.0.2" in
    Network.add_host network ~ip:sfu_ip
      ~uplink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
      ~downlink:{ Netsim.Link.default with rate_bps = infinity; propagation_ns = 100_000 }
      ();
    let server =
      Sfu.Server.create engine network (Rng.split rng) ~ip:sfu_ip
        ~cpu:{ Netsim.Cpu_queue.default_server with cores = 8 } ()
    in
    let meeting = Sfu.Server.create_meeting server in
    let clients =
      List.init 3 (fun i ->
          add_client engine network rng ~ip:(Addr.ip_of_string (Printf.sprintf "10.0.2.%d" (i + 1))))
    in
    List.iter (fun c -> ignore (Sfu.Server.join server ~meeting ~client:c ~send_media:true)) clients;
    Engine.run engine ~until:(Engine.sec 10.0);
    let c0 = List.hd clients in
    let rx = List.hd (Webrtc.Client.connections c0 |> List.filter_map Webrtc.Client.receiver) in
    Codec.Video_receiver.frames_decoded rx
  in
  (* both should sit within a few frames of the nominal 300 *)
  Alcotest.(check bool) "scallop near 30 fps" true (fps_through_scallop > 280);
  Alcotest.(check bool) "software near 30 fps" true (fps_through_software > 280);
  Alcotest.(check bool) "QoE parity" true
    (abs (fps_through_scallop - fps_through_software) < 20)

let () =
  Alcotest.run "integration"
    [
      ( "three-party",
        [
          Alcotest.test_case "scallop" `Quick scallop_three_party;
          Alcotest.test_case "software sfu" `Quick sfu_three_party;
          Alcotest.test_case "faithfulness (7.3)" `Quick scallop_faithful_to_sfu;
        ] );
    ]
