(* Control-plane RPC layer tests: wire codec, timeout/retry/backoff,
   duplicate-delivery idempotence, give-up surfacing at the controller,
   and rpc_calls as an honest count of messages on the wire. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link
module Rpc = Scallop.Rpc
module T = Scallop.Rpc_transport
module C = Scallop.Controller

(* --- codec ----------------------------------------------------------------- *)

let all_requests =
  [
    Rpc.New_meeting { two_party = true };
    Rpc.Register_participant { meeting = 3; participant = 7; egress_port = 140; sends = false };
    Rpc.Register_uplink
      {
        meeting = 0; sender = 1; port = 130; video_ssrc = 0xAA; audio_ssrc = 0xBB;
        full_bitrate = 2_500_000; renditions = [| (9, 2_500_000); (10, 600_000) |];
      };
    Rpc.Register_leg
      {
        meeting = 2; sender = 4; uplink_port = Some 131; receiver = 5; leg_port = 150;
        dst = Addr.v (Addr.ip_of_string "10.0.3.4") 4242; adaptive = true;
      };
    Rpc.Register_leg
      {
        meeting = 2; sender = 4; uplink_port = None; receiver = 6; leg_port = 151;
        dst = Addr.v (Addr.ip_of_string "10.0.3.5") 4242; adaptive = false;
      };
    Rpc.Remove_participant { meeting = 1; participant = 2 };
    Rpc.Unregister_uplink { meeting = 1; port = 133 };
    Rpc.Set_pair_target { meeting = 0; sender = 1; receiver = 2; target = Av1.Dd.DT_7_5fps };
    Rpc.Ping;
    Rpc.Reset;
  ]

let codec_roundtrip () =
  List.iteri
    (fun i request ->
      let msg = Rpc.Request { seq = 100 + i; request } in
      Alcotest.(check bool)
        (Rpc.request_name request) true
        (Rpc.decode (Rpc.encode msg) = msg))
    all_requests;
  List.iter
    (fun reply ->
      let msg = Rpc.Reply { seq = 9; reply } in
      Alcotest.(check bool) "reply roundtrip" true (Rpc.decode (Rpc.encode msg) = msg))
    [
      Rpc.Meeting_created { meeting = 12 };
      Rpc.Ack;
      Rpc.Error "no such meeting";
      Rpc.Pong { epoch = 3 };
    ]

let codec_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true
        (try
           let _ = Rpc.decode (Bytes.of_string s) in
           false
         with Rpc.Decode_error _ -> true))
    [ ""; "nonsense"; "req x new-meeting 0"; "req 1 new-meeting"; "rep 1 bogus" ]

(* --- raw client/server harness --------------------------------------------- *)

let harness ?(config = T.default) ?on_request () =
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let executed = ref 0 in
  let server =
    T.Server.create engine
      ~handler:(fun req ->
        incr executed;
        Option.iter (fun f -> f req) on_request;
        match req with
        | Rpc.New_meeting _ -> Rpc.Meeting_created { meeting = !executed }
        | _ -> Rpc.Ack)
      ()
  in
  let client =
    T.Client.connect engine rng ~config
      ~local:(Addr.v (Addr.ip_of_string "10.255.0.1") 6633)
      ~remote:(Addr.v (Addr.ip_of_string "10.0.0.1") 6633)
      server
  in
  (engine, server, client, executed)

let lossy_config = { T.default with T.timeout_ns = Engine.ms 10 }

let retry_after_timeout () =
  let engine, server, client, executed = harness ~config:lossy_config () in
  (* drop the first two attempts; the third gets through *)
  T.Client.set_request_fault client
    (Some (fun ~seq:_ ~attempt _ -> if attempt < 2 then T.Drop else T.Pass));
  let reply = T.Client.call client (Rpc.New_meeting { two_party = false }) in
  Alcotest.(check bool) "reply" true (reply = Ok (Rpc.Meeting_created { meeting = 1 }));
  Alcotest.(check int) "executed once" 1 !executed;
  let cs = T.Client.stats client in
  Alcotest.(check int) "two retries" 2 cs.retries;
  Alcotest.(check int) "no failures" 0 cs.failures;
  (* the retry timers actually waited: 10 ms + 20 ms of backoff passed *)
  Alcotest.(check bool) "time advanced" true (Engine.now engine >= Engine.ms 30);
  Alcotest.(check int) "server saw one" 1 (T.Server.stats server).requests_received

let duplicates_execute_once () =
  let engine, server, client, executed = harness () in
  T.Client.set_request_fault client (Some (fun ~seq:_ ~attempt:_ _ -> T.Duplicate));
  for i = 0 to 4 do
    let reply =
      T.Client.call client (Rpc.Remove_participant { meeting = 0; participant = i })
    in
    Alcotest.(check bool) "acked" true (reply = Ok Rpc.Ack)
  done;
  Alcotest.(check int) "each executed once" 5 !executed;
  (* the last duplicate reply is still in flight when its call settles *)
  while Engine.step engine do () done;
  let ss = T.Server.stats server in
  Alcotest.(check int) "wire saw doubles" 10 ss.requests_received;
  Alcotest.(check int) "replayed from cache" 5 ss.replayed;
  Alcotest.(check int) "stale second replies" 5 (T.Client.stats client).stale_replies

let delayed_reply_is_retried_then_reconciled () =
  (* the reply to attempt 0 is delayed past the timeout: the client
     retries, the server replays, and the late original is ignored *)
  let _, server, client, executed = harness ~config:lossy_config () in
  let first = ref true in
  T.Server.set_reply_fault server
    (Some
       (fun ~seq:_ _ ->
         if !first then begin
           first := false;
           T.Delay (Engine.ms 15)
         end
         else T.Pass));
  let reply = T.Client.call client (Rpc.New_meeting { two_party = false }) in
  Alcotest.(check bool) "reply" true (reply = Ok (Rpc.Meeting_created { meeting = 1 }));
  Alcotest.(check int) "executed once" 1 !executed;
  Alcotest.(check int) "one retry" 1 (T.Client.stats client).retries;
  Alcotest.(check int) "replayed once" 1 (T.Server.stats server).replayed

let gives_up_after_max_retries () =
  let config = { lossy_config with T.max_retries = 3 } in
  let _, server, client, executed = harness ~config () in
  T.Client.set_request_fault client (Some (fun ~seq:_ ~attempt:_ _ -> T.Drop));
  (* the typed surface: [call] returns the error instead of raising *)
  Alcotest.(check bool) "typed error" true
    (T.Client.call client (Rpc.New_meeting { two_party = false }) = Error (`Gave_up 4));
  (* the raising convenience wrapper preserves the old contract *)
  Alcotest.(check bool) "call_exn raises" true
    (try
       let _ = T.Client.call_exn client (Rpc.New_meeting { two_party = false }) in
       false
     with T.Timed_out { attempts; _ } -> attempts = 4);
  Alcotest.(check int) "never executed" 0 !executed;
  Alcotest.(check int) "failures counted" 2 (T.Client.stats client).failures;
  Alcotest.(check int) "nothing on the wire" 0 (T.Server.stats server).requests_received

(* --- through the controller ------------------------------------------------ *)

let fast = { Link.default with rate_bps = infinity; propagation_ns = 100_000 }

let make_stack ?control ?batch ~seed () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  let ip = Addr.ip_of_string "10.0.0.1" in
  Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
  let dp = Scallop.Dataplane.create engine network ~ip () in
  let agent = Scallop.Switch_agent.create engine dp () in
  let controller =
    C.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ?control ?batch ()
  in
  (engine, network, rng, agent, controller)

let join_n (engine, network, rng, _agent, controller) n =
  let mid = C.create_meeting controller in
  let pids =
    List.init n (fun i ->
        let ip = Addr.ip_of_string (Printf.sprintf "10.0.7.%d" (i + 1)) in
        Network.add_host network ~ip ();
        let client =
          Webrtc.Client.create engine network (Rng.split rng)
            (Webrtc.Client.default_config ~ip)
        in
        C.join controller mid client ~send_media:true)
  in
  (mid, pids)

let rpc_calls_count_wire_messages () =
  let ((_, _, _, agent, controller) as stack) = make_stack ~seed:11 () in
  let mid, pids = join_n stack 3 in
  C.start_screen_share controller (List.hd pids);
  C.leave controller (List.nth pids 2);
  let wire = Link.delivered (T.Client.request_link (C.control_channel controller 0)) in
  let agent_count = (Scallop.Switch_agent.stats agent).rpc_calls in
  Alcotest.(check bool) "some rpcs happened" true (wire > 10);
  Alcotest.(check int) "agent count = link deliveries" wire agent_count;
  Alcotest.(check int) "controller sent as many" wire (C.stats controller).control_requests;
  Alcotest.(check int) "members tracked" 2 (List.length (C.meeting_participants controller mid))

let ideal_channel_is_free () =
  let ((engine, _, _, _, _) as stack) = make_stack ~seed:12 () in
  let _ = join_n stack 4 in
  Alcotest.(check int) "no virtual time spent on control" 0 (Engine.now engine)

let lossy_control = { (T.degraded ~loss:0.25 ~rtt_ns:(Engine.ms 20) ()) with T.max_retries = 12 }

let lossy_join_converges_to_same_state () =
  let ((_, _, _, agent_a, ctrl_a) as clean) = make_stack ~seed:13 () in
  let mid_a, _ = join_n clean 4 in
  let ((engine_b, _, _, agent_b, ctrl_b) as lossy) =
    make_stack ~seed:13 ~control:lossy_control ()
  in
  let mid_b, _ = join_n lossy 4 in
  let cs = C.stats ctrl_b in
  Alcotest.(check bool) "loss forced retries" true (cs.control_retries > 0);
  Alcotest.(check int) "every call completed" 0 cs.control_failures;
  Alcotest.(check bool) "retries cost virtual time" true (Engine.now engine_b > 0);
  (* the replay cache kept retried operations idempotent: agent state
     matches the run with a perfect control channel *)
  let amid_a = C.agent_meeting_id ctrl_a mid_a in
  let amid_b = C.agent_meeting_id ctrl_b mid_b in
  Alcotest.(check (list int)) "same members"
    (Scallop.Switch_agent.meeting_members agent_a amid_a)
    (Scallop.Switch_agent.meeting_members agent_b amid_b);
  Alcotest.(check bool) "same design" true
    (Scallop.Switch_agent.meeting_design agent_a amid_a
    = Scallop.Switch_agent.meeting_design agent_b amid_b)

let dead_channel_surfaces_as_controller_error () =
  let ((_, _, _, _, controller) as stack) = make_stack ~seed:14 () in
  let _ = join_n stack 2 in
  let rpc = C.control_channel controller 0 in
  T.Client.set_request_fault rpc (Some (fun ~seq:_ ~attempt:_ _ -> T.Drop));
  Alcotest.(check bool) "join times out" true
    (try
       let _ = join_n stack 1 in
       false
     with T.Timed_out _ -> true)

(* --- QCheck: the whole vocabulary round-trips, batches included ------------ *)

let gen_target =
  QCheck.Gen.oneofl [ Av1.Dd.DT_7_5fps; Av1.Dd.DT_15fps; Av1.Dd.DT_30fps ]

let gen_base_request =
  let open QCheck.Gen in
  let i = int_bound 100_000 in
  oneof
    [
      map (fun two_party -> Rpc.New_meeting { two_party }) bool;
      map
        (fun ((meeting, participant), (egress_port, sends)) ->
          Rpc.Register_participant { meeting; participant; egress_port; sends })
        (pair (pair i i) (pair i bool));
      map
        (fun ((meeting, sender, port), (video_ssrc, audio_ssrc, full_bitrate), rend) ->
          Rpc.Register_uplink
            {
              meeting; sender; port; video_ssrc; audio_ssrc; full_bitrate;
              renditions = Array.of_list rend;
            })
        (triple (triple i i i) (triple i i i) (list_size (int_bound 3) (pair i i)));
      map
        (fun ((meeting, sender, up), (receiver, leg_port), ((ip, port), adaptive)) ->
          Rpc.Register_leg
            {
              meeting; sender;
              uplink_port = (if up = 0 then None else Some up);
              receiver; leg_port;
              dst = Addr.v ip port;
              adaptive;
            })
        (triple (triple i i (int_bound 5)) (pair i i)
           (pair (pair i (int_bound 65535)) bool));
      map
        (fun (meeting, participant) -> Rpc.Remove_participant { meeting; participant })
        (pair i i);
      map (fun (meeting, port) -> Rpc.Unregister_uplink { meeting; port }) (pair i i);
      map
        (fun ((meeting, sender, receiver), target) ->
          Rpc.Set_pair_target { meeting; sender; receiver; target })
        (pair (triple i i i) gen_target);
      return Rpc.Ping;
      return Rpc.Reset;
    ]

(* one level of nesting is enough to exercise the recursive frame codec;
   empty batches are generated on purpose *)
let gen_request =
  let open QCheck.Gen in
  let batch g = map (fun ops -> Rpc.Batch ops) (list_size (int_bound 4) g) in
  oneof
    [
      gen_base_request;
      batch gen_base_request;
      batch (oneof [ gen_base_request; batch gen_base_request ]);
    ]

(* error text is free-form: spaces, empty strings, even leading/trailing
   runs of spaces must survive the space-separated wire format *)
let gen_error_msg =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'e'; 'r'; ' '; ' '; '0'; '-'; ':' ])
      (int_bound 16))

let gen_base_reply =
  let open QCheck.Gen in
  oneof
    [
      map (fun meeting -> Rpc.Meeting_created { meeting }) (int_bound 100_000);
      return Rpc.Ack;
      map (fun epoch -> Rpc.Pong { epoch }) (int_bound 1000);
      map (fun msg -> Rpc.Error msg) gen_error_msg;
    ]

let gen_reply =
  let open QCheck.Gen in
  let batch g = map (fun rs -> Rpc.Batch_reply rs) (list_size (int_bound 4) g) in
  oneof
    [
      gen_base_reply;
      batch gen_base_reply;
      batch (oneof [ gen_base_reply; batch gen_base_reply ]);
    ]

let request_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"request roundtrip (incl. nested batches)"
    (QCheck.make
       ~print:(fun request ->
         Bytes.to_string (Rpc.encode (Rpc.Request { seq = 1; request })))
       gen_request)
    (fun request ->
      let msg = Rpc.Request { seq = 1; request } in
      Rpc.decode (Rpc.encode msg) = msg)

let reply_roundtrip_prop =
  QCheck.Test.make ~count:500
    ~name:"reply roundtrip (incl. batch replies and spaced errors)"
    (QCheck.make
       ~print:(fun reply -> Bytes.to_string (Rpc.encode (Rpc.Reply { seq = 2; reply })))
       gen_reply)
    (fun reply ->
      let msg = Rpc.Reply { seq = 2; reply } in
      Rpc.decode (Rpc.encode msg) = msg)

(* --- batch dispatch on the agent ------------------------------------------- *)

let batch_executes_in_order_with_error_isolation () =
  let _, _, _, agent, _ = make_stack ~seed:21 () in
  let reg participant meeting =
    Rpc.Register_participant { meeting; participant; egress_port = 140 + participant; sends = false }
  in
  (* op 3 targets a meeting that does not exist: its slot must carry the
     error while ops 1-2 and 4 still execute, in list order *)
  match
    Scallop.Switch_agent.dispatch agent
      (Rpc.Batch [ Rpc.New_meeting { two_party = false }; reg 1 0; reg 2 777; reg 3 0 ])
  with
  | Rpc.Batch_reply
      [ Rpc.Meeting_created { meeting }; Rpc.Ack; Rpc.Error _; Rpc.Ack ] ->
      Alcotest.(check (list int))
        "ops around the failed slot landed" [ 1; 3 ]
        (List.sort compare (Scallop.Switch_agent.meeting_members agent meeting))
  | _ -> Alcotest.fail "expected [Meeting_created; Ack; Error; Ack]"

(* --- pipelining: submit fills the window, FIFO backlog drains -------------- *)

let pipelining_respects_window () =
  let engine, _, client, executed =
    harness ~config:{ T.default with T.window = 3 } ()
  in
  let results = ref [] in
  let seqs =
    List.init 8 (fun i ->
        T.Client.submit client
          (Rpc.Remove_participant { meeting = 0; participant = i })
          ~on_result:(fun r -> results := (i, r) :: !results))
  in
  Alcotest.(check int) "distinct seqs" 8 (List.length (List.sort_uniq compare seqs));
  Alcotest.(check int) "window full" 3 (T.Client.in_flight client);
  Alcotest.(check int) "rest backlogged" 5 (T.Client.backlog_depth client);
  while Engine.step engine do () done;
  Alcotest.(check int) "all executed" 8 !executed;
  Alcotest.(check int) "in-flight drained" 0 (T.Client.in_flight client);
  Alcotest.(check int) "backlog drained" 0 (T.Client.backlog_depth client);
  let settled = List.rev !results in
  Alcotest.(check (list int))
    "settled in submission order" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.map fst settled);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "acked" true (r = Ok Rpc.Ack))
    settled

(* --- QCheck-adjacent equivalence: batched controller == per-op ------------- *)

let churn stack =
  let _, _, _, _, controller = stack in
  let mid, pids = join_n stack 4 in
  C.start_screen_share controller (List.hd pids);
  C.set_pair_target controller ~sender:(List.hd pids) ~receiver:(List.nth pids 2)
    Av1.Dd.DT_15fps;
  C.stop_screen_share controller (List.hd pids);
  C.leave controller (List.nth pids 3);
  mid

let batched_churn_matches_per_op () =
  let ((_, _, _, agent_a, ctrl_a) as per_op) = make_stack ~seed:15 ~control:lossy_control () in
  let mid_a = churn per_op in
  let ((_, _, _, agent_b, ctrl_b) as batched) =
    make_stack ~seed:15 ~control:lossy_control ~batch:true ()
  in
  let mid_b = churn batched in
  let bs = T.Client.stats (C.control_channel ctrl_b 0) in
  Alcotest.(check bool) "batches flowed" true (bs.batches > 0);
  Alcotest.(check bool) "each batch carried >1 op on average" true
    (bs.batched_ops > bs.batches);
  Alcotest.(check bool) "batching cut wire requests" true
    ((C.stats ctrl_b).control_requests < (C.stats ctrl_a).control_requests);
  Alcotest.(check int) "no failures either way" 0
    ((C.stats ctrl_a).control_failures + (C.stats ctrl_b).control_failures);
  let amid_a = C.agent_meeting_id ctrl_a mid_a in
  let amid_b = C.agent_meeting_id ctrl_b mid_b in
  Alcotest.(check (list int)) "same members"
    (Scallop.Switch_agent.meeting_members agent_a amid_a)
    (Scallop.Switch_agent.meeting_members agent_b amid_b);
  Alcotest.(check bool) "same design" true
    (Scallop.Switch_agent.meeting_design agent_a amid_a
    = Scallop.Switch_agent.meeting_design agent_b amid_b)

let () =
  Alcotest.run "rpc"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick codec_roundtrip;
          Alcotest.test_case "garbage" `Quick codec_rejects_garbage;
          QCheck_alcotest.to_alcotest ~verbose:false request_roundtrip_prop;
          QCheck_alcotest.to_alcotest ~verbose:false reply_roundtrip_prop;
        ] );
      ( "transport",
        [
          Alcotest.test_case "retry after timeout" `Quick retry_after_timeout;
          Alcotest.test_case "duplicates execute once" `Quick duplicates_execute_once;
          Alcotest.test_case "delayed reply" `Quick delayed_reply_is_retried_then_reconciled;
          Alcotest.test_case "give up" `Quick gives_up_after_max_retries;
          Alcotest.test_case "pipelining window" `Quick pipelining_respects_window;
        ] );
      ( "batch",
        [
          Alcotest.test_case "in-order with error isolation" `Quick
            batch_executes_in_order_with_error_isolation;
          Alcotest.test_case "batched churn == per-op churn" `Quick
            batched_churn_matches_per_op;
        ] );
      ( "controller",
        [
          Alcotest.test_case "rpc_calls = wire messages" `Quick rpc_calls_count_wire_messages;
          Alcotest.test_case "ideal channel free" `Quick ideal_channel_is_free;
          Alcotest.test_case "lossy join same state" `Quick lossy_join_converges_to_same_state;
          Alcotest.test_case "dead channel error" `Quick dead_channel_surfaces_as_controller_error;
        ] );
    ]
